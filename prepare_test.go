package repro

// Prepared-graph tests: Engine.Prepare must deduplicate by content, and a
// PreparedGraph solve must be bit-identical to the engine's Ctx entry points
// on the raw graph — the handle is a name for the same solve, never a
// different code path.

import (
	"context"
	"fmt"
	"testing"
)

// TestPrepareDedup: preparing the same content twice — even through a
// different *Graph built from a reordered edge list — returns the same
// handle; different content gets its own.
func TestPrepareDedup(t *testing.T) {
	eng := NewEngine(nil)
	g1, err := Generate("gnm", 256, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same content, separately parsed: rebuild from the edge list reversed.
	edges := g1.Edges()
	rev := make([]Edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = e
	}
	g2 := FromEdges(g1.N(), rev)

	pg1, err := eng.Prepare(g1)
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := eng.Prepare(g2)
	if err != nil {
		t.Fatal(err)
	}
	if pg1 != pg2 {
		t.Fatal("same content prepared to different handles")
	}
	if pg2.Graph() != g1 {
		t.Fatal("dedup did not keep the first parsed CSR")
	}
	if eng.PreparedCount() != 1 {
		t.Fatalf("PreparedCount = %d, want 1", eng.PreparedCount())
	}
	if got, ok := eng.Prepared(pg1.Fingerprint()); !ok || got != pg1 {
		t.Fatal("Prepared lookup missed the cached handle")
	}

	other, err := Generate("gnm", 256, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pgOther, err := eng.Prepare(other)
	if err != nil {
		t.Fatal(err)
	}
	if pgOther == pg1 || eng.PreparedCount() != 2 {
		t.Fatal("different content shared a handle")
	}

	if !eng.DropPrepared(pg1.Fingerprint()) {
		t.Fatal("DropPrepared missed a cached fingerprint")
	}
	if eng.DropPrepared(pg1.Fingerprint()) {
		t.Fatal("DropPrepared reported a second eviction")
	}
	if eng.PreparedCount() != 1 {
		t.Fatalf("PreparedCount after drop = %d, want 1", eng.PreparedCount())
	}
	// The outstanding handle stays usable after eviction.
	if _, err := pg1.MaximalMatching(); err != nil {
		t.Fatalf("evicted handle failed to solve: %v", err)
	}

	if _, err := eng.Prepare(nil); err != ErrNilGraph {
		t.Fatalf("Prepare(nil) = %v, want ErrNilGraph", err)
	}
}

// TestPreparedCacheLRU: an over-cap upload storm evicts the least recently
// touched entries first, lookups refresh LRU age, and re-uploading evicted
// content re-prepares a handle whose solves are bit-identical to the
// original's. DropPrepared stays the manual path regardless of the cap.
func TestPreparedCacheLRU(t *testing.T) {
	const cap = 4
	eng := NewEngine(&Options{PreparedCacheCap: cap, Parallelism: 1})
	graphs := make([]*Graph, 10)
	handles := make([]*PreparedGraph, 10)
	for i := range graphs {
		g, err := Generate("gnm", 64, 4, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	// Baseline solve through the first handle, taken before it is evicted.
	for i := 0; i < cap; i++ {
		pg, err := eng.Prepare(graphs[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = pg
	}
	want, err := handles[0].MaximalMatching()
	if err != nil {
		t.Fatal(err)
	}
	// Touch entry 0 via lookup, then storm past the cap: entry 0 must
	// survive longer than the untouched 1..3, and the count stays pinned.
	if _, ok := eng.Prepared(handles[0].Fingerprint()); !ok {
		t.Fatal("Prepared lookup missed a cached handle")
	}
	for i := cap; i < cap+2; i++ {
		pg, err := eng.Prepare(graphs[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = pg
	}
	if got := eng.PreparedCount(); got != cap {
		t.Fatalf("PreparedCount after storm = %d, want cap %d", got, cap)
	}
	if _, ok := eng.Prepared(handles[1].Fingerprint()); ok {
		t.Fatal("oldest untouched entry survived an over-cap insert")
	}
	if _, ok := eng.Prepared(handles[2].Fingerprint()); ok {
		t.Fatal("second-oldest untouched entry survived an over-cap insert")
	}
	if got, ok := eng.Prepared(handles[0].Fingerprint()); !ok || got != handles[0] {
		t.Fatal("recently touched entry was evicted before older ones")
	}
	// Storm the rest: everything early is gone, count still pinned.
	for i := cap + 2; i < len(graphs); i++ {
		if _, err := eng.Prepare(graphs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.PreparedCount(); got != cap {
		t.Fatalf("PreparedCount after full storm = %d, want cap %d", got, cap)
	}
	if _, ok := eng.Prepared(handles[0].Fingerprint()); ok {
		t.Fatal("entry 0 survived a storm that exceeded the cap after its last touch")
	}
	// The evicted outstanding handle still solves, and re-uploading the same
	// content re-prepares a fresh handle with bit-identical results.
	if _, err := handles[0].MaximalMatching(); err != nil {
		t.Fatalf("evicted handle failed to solve: %v", err)
	}
	again, err := eng.Prepare(graphs[0])
	if err != nil {
		t.Fatal(err)
	}
	if again == handles[0] {
		t.Fatal("re-upload after eviction returned the forgotten handle (stale cache entry)")
	}
	got, err := again.MaximalMatching()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("re-prepared solve drifted: %d edges, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("re-prepared solve drifted at edge %d: %v != %v", i, got.Edges[i], want.Edges[i])
		}
	}
	// Manual eviction still works under the cap.
	if !eng.DropPrepared(again.Fingerprint()) {
		t.Fatal("DropPrepared missed the re-prepared fingerprint")
	}

	// Unbounded cache: negative cap never evicts.
	unbounded := NewEngine(&Options{PreparedCacheCap: -1, Parallelism: 1})
	for i := range graphs {
		if _, err := unbounded.Prepare(graphs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := unbounded.PreparedCount(); got != len(graphs) {
		t.Fatalf("unbounded PreparedCount = %d, want %d", got, len(graphs))
	}
}

// TestFingerprintRoundTrip pins the wire form: String and ParseFingerprint
// invert each other, and FingerprintOf matches what Prepare caches under.
func TestFingerprintRoundTrip(t *testing.T) {
	g, err := Generate("powerlaw", 128, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	fp := FingerprintOf(g)
	parsed, err := ParseFingerprint(fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != fp {
		t.Fatalf("round trip %s → %s", fp, parsed)
	}
	if len(fp.String()) != 16 {
		t.Fatalf("fingerprint %q not 16 hex digits", fp.String())
	}
	if _, err := ParseFingerprint("not-hex"); err == nil {
		t.Fatal("ParseFingerprint accepted garbage")
	}
	pg, err := NewEngine(nil).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Fingerprint() != fp {
		t.Fatal("Prepare cached under a different fingerprint than FingerprintOf")
	}
	if pg.N() != g.N() || pg.M() != g.M() {
		t.Fatal("handle misreports graph dimensions")
	}
}

// TestPreparedSolveEquivalence is the equivalence table of the satellite:
// per (strategy × family) cell, a PreparedGraph solve is bit-identical to
// the engine's Ctx solve on the raw graph, for both problems.
func TestPreparedSolveEquivalence(t *testing.T) {
	eng := NewEngine(nil)
	ctx := context.Background()
	for _, w := range overrideWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/%s", w.family, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				pg, err := eng.Prepare(g)
				if err != nil {
					t.Fatal(err)
				}

				wantMM, err := eng.MaximalMatchingCtx(ctx, g, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				gotMM, err := pg.MaximalMatchingCtx(ctx, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				if len(gotMM.Edges) != len(wantMM.Edges) || gotMM.Iterations != wantMM.Iterations ||
					gotMM.Strategy != wantMM.Strategy {
					t.Fatalf("prepared matching differs: %d edges/%d iters, want %d/%d",
						len(gotMM.Edges), gotMM.Iterations, len(wantMM.Edges), wantMM.Iterations)
				}
				for i := range gotMM.Edges {
					if gotMM.Edges[i] != wantMM.Edges[i] {
						t.Fatalf("prepared matching edge %d is %v, want %v", i, gotMM.Edges[i], wantMM.Edges[i])
					}
				}

				wantIS, err := eng.MaximalIndependentSetCtx(ctx, g, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				gotIS, err := pg.MaximalIndependentSetCtx(ctx, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				if len(gotIS.Nodes) != len(wantIS.Nodes) || gotIS.Iterations != wantIS.Iterations {
					t.Fatalf("prepared MIS differs: %d nodes/%d iters, want %d/%d",
						len(gotIS.Nodes), gotIS.Iterations, len(wantIS.Nodes), wantIS.Iterations)
				}
				for i := range gotIS.Nodes {
					if gotIS.Nodes[i] != wantIS.Nodes[i] {
						t.Fatalf("prepared MIS node %d is %d, want %d", i, gotIS.Nodes[i], wantIS.Nodes[i])
					}
				}
			})
		}
	}
}
