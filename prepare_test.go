package repro

// Prepared-graph tests: Engine.Prepare must deduplicate by content, and a
// PreparedGraph solve must be bit-identical to the engine's Ctx entry points
// on the raw graph — the handle is a name for the same solve, never a
// different code path.

import (
	"context"
	"fmt"
	"testing"
)

// TestPrepareDedup: preparing the same content twice — even through a
// different *Graph built from a reordered edge list — returns the same
// handle; different content gets its own.
func TestPrepareDedup(t *testing.T) {
	eng := NewEngine(nil)
	g1, err := Generate("gnm", 256, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same content, separately parsed: rebuild from the edge list reversed.
	edges := g1.Edges()
	rev := make([]Edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = e
	}
	g2 := FromEdges(g1.N(), rev)

	pg1, err := eng.Prepare(g1)
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := eng.Prepare(g2)
	if err != nil {
		t.Fatal(err)
	}
	if pg1 != pg2 {
		t.Fatal("same content prepared to different handles")
	}
	if pg2.Graph() != g1 {
		t.Fatal("dedup did not keep the first parsed CSR")
	}
	if eng.PreparedCount() != 1 {
		t.Fatalf("PreparedCount = %d, want 1", eng.PreparedCount())
	}
	if got, ok := eng.Prepared(pg1.Fingerprint()); !ok || got != pg1 {
		t.Fatal("Prepared lookup missed the cached handle")
	}

	other, err := Generate("gnm", 256, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pgOther, err := eng.Prepare(other)
	if err != nil {
		t.Fatal(err)
	}
	if pgOther == pg1 || eng.PreparedCount() != 2 {
		t.Fatal("different content shared a handle")
	}

	if !eng.DropPrepared(pg1.Fingerprint()) {
		t.Fatal("DropPrepared missed a cached fingerprint")
	}
	if eng.DropPrepared(pg1.Fingerprint()) {
		t.Fatal("DropPrepared reported a second eviction")
	}
	if eng.PreparedCount() != 1 {
		t.Fatalf("PreparedCount after drop = %d, want 1", eng.PreparedCount())
	}
	// The outstanding handle stays usable after eviction.
	if _, err := pg1.MaximalMatching(); err != nil {
		t.Fatalf("evicted handle failed to solve: %v", err)
	}

	if _, err := eng.Prepare(nil); err != ErrNilGraph {
		t.Fatalf("Prepare(nil) = %v, want ErrNilGraph", err)
	}
}

// TestFingerprintRoundTrip pins the wire form: String and ParseFingerprint
// invert each other, and FingerprintOf matches what Prepare caches under.
func TestFingerprintRoundTrip(t *testing.T) {
	g, err := Generate("powerlaw", 128, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	fp := FingerprintOf(g)
	parsed, err := ParseFingerprint(fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != fp {
		t.Fatalf("round trip %s → %s", fp, parsed)
	}
	if len(fp.String()) != 16 {
		t.Fatalf("fingerprint %q not 16 hex digits", fp.String())
	}
	if _, err := ParseFingerprint("not-hex"); err == nil {
		t.Fatal("ParseFingerprint accepted garbage")
	}
	pg, err := NewEngine(nil).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Fingerprint() != fp {
		t.Fatal("Prepare cached under a different fingerprint than FingerprintOf")
	}
	if pg.N() != g.N() || pg.M() != g.M() {
		t.Fatal("handle misreports graph dimensions")
	}
}

// TestPreparedSolveEquivalence is the equivalence table of the satellite:
// per (strategy × family) cell, a PreparedGraph solve is bit-identical to
// the engine's Ctx solve on the raw graph, for both problems.
func TestPreparedSolveEquivalence(t *testing.T) {
	eng := NewEngine(nil)
	ctx := context.Background()
	for _, w := range overrideWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/%s", w.family, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				pg, err := eng.Prepare(g)
				if err != nil {
					t.Fatal(err)
				}

				wantMM, err := eng.MaximalMatchingCtx(ctx, g, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				gotMM, err := pg.MaximalMatchingCtx(ctx, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				if len(gotMM.Edges) != len(wantMM.Edges) || gotMM.Iterations != wantMM.Iterations ||
					gotMM.Strategy != wantMM.Strategy {
					t.Fatalf("prepared matching differs: %d edges/%d iters, want %d/%d",
						len(gotMM.Edges), gotMM.Iterations, len(wantMM.Edges), wantMM.Iterations)
				}
				for i := range gotMM.Edges {
					if gotMM.Edges[i] != wantMM.Edges[i] {
						t.Fatalf("prepared matching edge %d is %v, want %v", i, gotMM.Edges[i], wantMM.Edges[i])
					}
				}

				wantIS, err := eng.MaximalIndependentSetCtx(ctx, g, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				gotIS, err := pg.MaximalIndependentSetCtx(ctx, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				if len(gotIS.Nodes) != len(wantIS.Nodes) || gotIS.Iterations != wantIS.Iterations {
					t.Fatalf("prepared MIS differs: %d nodes/%d iters, want %d/%d",
						len(gotIS.Nodes), gotIS.Iterations, len(wantIS.Nodes), wantIS.Iterations)
				}
				for i := range gotIS.Nodes {
					if gotIS.Nodes[i] != wantIS.Nodes[i] {
						t.Fatalf("prepared MIS node %d is %d, want %d", i, gotIS.Nodes[i], wantIS.Nodes[i])
					}
				}
			})
		}
	}
}
