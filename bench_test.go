package repro

// The benchmark harness: one benchmark per reproduction table/figure (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md). Each benchmark
// times the end-to-end computation behind its experiment at quick scale;
// `go run ./cmd/experiments` regenerates the actual tables.

import (
	"io"
	"testing"

	"repro/internal/cclique"
	"repro/internal/condexp"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/hashfam"
	"repro/internal/lowdeg"
	"repro/internal/luby"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/mpc"
	"repro/internal/scratch"
	"repro/internal/simcost"
	"repro/internal/sparsify"
)

func quickCfg() experiments.Config { return experiments.Config{Quick: true, Seed: 1} }

// BenchmarkT1_MatchingRounds times the Theorem 7 pipeline (deterministic
// maximal matching with full MPC accounting) on the T1 workload.
func BenchmarkT1_MatchingRounds(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	p := core.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := simcost.New(g.N(), g.M(), p.Epsilon)
		matching.Deterministic(g, p, model)
	}
}

// BenchmarkT2_MISRounds times the Theorem 14 pipeline on the T2 workload.
func BenchmarkT2_MISRounds(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	p := core.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := simcost.New(g.N(), g.M(), p.Epsilon)
		mis.Deterministic(g, p, model)
	}
}

// BenchmarkT3_ProgressPerIteration times a single derandomized Luby
// iteration (sparsify + seed search + removal), the unit T3 audits.
func BenchmarkT3_ProgressPerIteration(b *testing.B) {
	g := gen.GNM(1<<12, 16<<12, 1)
	p := core.DefaultParams()
	p.MaxSeedsPerSearch = 1 << 12
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsify.SparsifyEdges(g, p, nil)
	}
}

// BenchmarkT4_SparsifyInvariants times the node sparsification with its
// invariant audit (the T4b path).
func BenchmarkT4_SparsifyInvariants(b *testing.B) {
	g := gen.GNM(1<<11, 48<<11, 1)
	p := core.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsify.SparsifyNodes(g, p, nil)
	}
}

// BenchmarkT5_LowDegreeStages times the Section 5 stage-compressed MIS on a
// bounded-degree workload.
func BenchmarkT5_LowDegreeStages(b *testing.B) {
	g := gen.RandomRegular(1<<12, 8, 1)
	p := core.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lowdeg.MIS(g, p, nil)
	}
}

// BenchmarkT6_CongestedClique times the Corollary 2 CC MIS with both round
// accountings.
func BenchmarkT6_CongestedClique(b *testing.B) {
	g := gen.RandomRegular(1<<10, 8, 1)
	p := core.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cclique.DetMIS(g, p)
	}
}

// BenchmarkT7_SeedSearch times the batched deterministic seed search in
// isolation: evaluating 64 candidate seeds of the matching-selection
// objective over a fixed E* (one charged O(1)-round batch), exactly as the
// production searches do it — the slot-0 edge keys, packed selection keys
// and packed-path decision are precomputed once per round (core.EdgeSel),
// and the candidate seeds walk in condexp.BlockSeeds-sized groups through
// the block-major kernel (Evaluator.EvalSeedsBlocked: S seeds per
// cache-resident key block into a scratch tile, AVX2 inner loop where the
// host has it) followed by one epoch-stamped local-minimum selection per
// tile row on pooled scratch that touches only E*'s endpoints.
func BenchmarkT7_SeedSearch(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	p := core.DefaultParams()
	sp := sparsify.SparsifyEdges(g, p, nil)
	edges := sp.EStar.Edges()
	fam := core.PairwiseFamily(g.N())
	evaluator := hashfam.NewEvaluator(fam)
	n := g.N()
	keys := core.SlotKeysInto(make([]uint64, 0, len(edges)), edges, 0, n)
	var sel core.EdgeSel
	core.EdgeSelInit(&sel, n, edges, make([]uint64, 0, len(edges)), fam.P()-1)
	// Seeds are materialized into a flat buffer per batch exactly as
	// condexp.Search does it; the timed loop then walks BlockSeeds groups.
	const batch = 64
	seedLen := fam.SeedLen()
	seedBuf := make([]uint64, batch*seedLen)
	seeds := make([][]uint64, batch)
	enum := fam.Enumerate()
	for i := 0; i < batch && enum.Next(); i++ {
		s := seedBuf[i*seedLen : (i+1)*seedLen : (i+1)*seedLen]
		copy(s, enum.Seed())
		seeds[i] = s
	}
	var tile scratch.Tile
	var lm core.EdgeMinScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < batch; lo += condexp.BlockSeeds {
			hi := lo + condexp.BlockSeeds
			if hi > batch {
				hi = batch
			}
			rows := tile.Rows(hi-lo, len(keys))
			evaluator.EvalSeedsBlocked(seeds[lo:hi], keys, rows)
			for s := lo; s < hi; s++ {
				core.LocalMinEdgesSel(&lm, &sel, rows[s-lo])
			}
		}
	}
}

// BenchmarkT7_SelectionScan isolates the selection term of the seed search
// — the post-hash local-minimum scan that dominated T7 before the
// epoch-stamped tables: 64 LocalMinEdgesSel passes over a fixed E* and z
// vector on warm scratch. bench-compare tracks it alongside
// BenchmarkT7_SeedSearch so a regression in the scan is attributable
// separately from the hash kernel.
func BenchmarkT7_SelectionScan(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	p := core.DefaultParams()
	sp := sparsify.SparsifyEdges(g, p, nil)
	edges := sp.EStar.Edges()
	fam := core.PairwiseFamily(g.N())
	evaluator := hashfam.NewEvaluator(fam)
	n := g.N()
	keys := core.SlotKeysInto(make([]uint64, 0, len(edges)), edges, 0, n)
	var sel core.EdgeSel
	core.EdgeSelInit(&sel, n, edges, make([]uint64, 0, len(edges)), fam.P()-1)
	z := make([]uint64, len(keys))
	e := fam.Enumerate()
	e.Next()
	evaluator.EvalKeys(e.Seed(), keys, z)
	var lm core.EdgeMinScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for count := 0; count < 64; count++ {
			core.LocalMinEdgesSel(&lm, &sel, z)
		}
	}
}

// BenchmarkEvalSeedsBlocked isolates the hash term of the seed search — the
// block-major kernel alone at the T7 shape (64 pairwise seeds over E*'s slot
// keys in condexp.BlockSeeds groups, scratch tile reused). bench-compare
// tracks it alongside BenchmarkT7_SelectionScan so the two halves of
// BenchmarkT7_SeedSearch are attributable separately.
func BenchmarkEvalSeedsBlocked(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	p := core.DefaultParams()
	sp := sparsify.SparsifyEdges(g, p, nil)
	edges := sp.EStar.Edges()
	fam := core.PairwiseFamily(g.N())
	evaluator := hashfam.NewEvaluator(fam)
	keys := core.SlotKeysInto(make([]uint64, 0, len(edges)), edges, 0, g.N())
	const batch = 64
	seedLen := fam.SeedLen()
	seedBuf := make([]uint64, batch*seedLen)
	seeds := make([][]uint64, batch)
	enum := fam.Enumerate()
	for i := 0; i < batch && enum.Next(); i++ {
		s := seedBuf[i*seedLen : (i+1)*seedLen : (i+1)*seedLen]
		copy(s, enum.Seed())
		seeds[i] = s
	}
	var tile scratch.Tile
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < batch; lo += condexp.BlockSeeds {
			hi := lo + condexp.BlockSeeds
			if hi > batch {
				hi = batch
			}
			rows := tile.Rows(hi-lo, len(keys))
			evaluator.EvalSeedsBlocked(seeds[lo:hi], keys, rows)
		}
	}
}

// BenchmarkT7_NodeSelectionScan isolates the node-side selection term of the
// seed searches (the scan the MIS and lowdeg objectives run per candidate
// seed): 64 selections over a fixed live set and z vector on warm scratch,
// through the production LocalMinNodesSelIn entry — which on this dense
// round takes the NodeFold flat-table path (round-wiped tables, one-word
// neighbour probes). bench-compare tracks it alongside
// BenchmarkT7_SelectionScan so the node and edge scan disciplines are
// attributable separately.
func BenchmarkT7_NodeSelectionScan(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	n := g.N()
	fam := core.PairwiseFamily(n)
	evaluator := hashfam.NewEvaluator(fam)
	inQ := make([]bool, n)
	for v := range inQ {
		inQ[v] = true
	}
	var sel core.NodeSel
	sel.Init(n, inQ, func(v graph.NodeID) uint64 { return core.SlotKey(uint64(v), 0, n) }, fam.P()-1)
	if !sel.Dense() {
		b.Fatal("workload unexpectedly not dense")
	}
	z := make([]uint64, len(sel.Keys()))
	e := fam.Enumerate()
	e.Next()
	evaluator.EvalKeys(e.Seed(), sel.Keys(), z)
	var nf core.NodeFold
	var dst []graph.NodeID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for count := 0; count < 64; count++ {
			dst = core.LocalMinNodesSelIn(&nf, dst, g, &sel, z)
		}
	}
}

// BenchmarkLocalMinNodesSel times one selection pass per discipline on the
// T7 workload: Dense runs the NodeFold flat-table path over a fully live
// round, Sparse the epoch-stamped scan over a 1/8-density live set (below
// the Dense gate), both through the production LocalMinNodesSelIn dispatch.
// DenseStamped forces the SAME fully-live round through the epoch-stamped
// LocalMinNodesSel entry, so the flat-table rebuild's speedup on dense
// rounds (Dense vs DenseStamped) stays measured in every saved baseline.
func BenchmarkLocalMinNodesSel(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	n := g.N()
	fam := core.PairwiseFamily(n)
	evaluator := hashfam.NewEvaluator(fam)
	run := func(b *testing.B, keep func(v int) bool, wantDense bool) {
		inQ := make([]bool, n)
		for v := range inQ {
			inQ[v] = keep(v)
		}
		var sel core.NodeSel
		sel.Init(n, inQ, func(v graph.NodeID) uint64 { return core.SlotKey(uint64(v), 0, n) }, fam.P()-1)
		if sel.Dense() != wantDense {
			b.Fatalf("Dense() = %v, want %v", sel.Dense(), wantDense)
		}
		z := make([]uint64, len(sel.Keys()))
		e := fam.Enumerate()
		e.Next()
		evaluator.EvalKeys(e.Seed(), sel.Keys(), z)
		var nf core.NodeFold
		var dst []graph.NodeID
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = core.LocalMinNodesSelIn(&nf, dst, g, &sel, z)
		}
	}
	b.Run("Dense", func(b *testing.B) { run(b, func(v int) bool { return true }, true) })
	b.Run("Sparse", func(b *testing.B) { run(b, func(v int) bool { return v%8 == 0 }, false) })
	b.Run("DenseStamped", func(b *testing.B) {
		inQ := make([]bool, n)
		for v := range inQ {
			inQ[v] = true
		}
		var sel core.NodeSel
		sel.Init(n, inQ, func(v graph.NodeID) uint64 { return core.SlotKey(uint64(v), 0, n) }, fam.P()-1)
		z := make([]uint64, len(sel.Keys()))
		e := fam.Enumerate()
		e.Next()
		evaluator.EvalKeys(e.Seed(), sel.Keys(), z)
		var dst []graph.NodeID
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = core.LocalMinNodesSel(dst, g, &sel, z)
		}
	})
}

// BenchmarkT8_Lemma4Primitives times the message-level sample sort plus
// prefix sums at the T8 grid's middle point.
func BenchmarkT8_Lemma4Primitives(b *testing.B) {
	r := detrand.New(1)
	data := make([]uint64, 1<<14)
	for i := range data {
		data[i] = r.Uint64() % 1_000_000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(mpc.Config{Machines: 32, Space: 1 << 11})
		if err := c.LoadBalanced(data); err != nil {
			b.Fatal(err)
		}
		if err := mpc.Sort(c); err != nil {
			b.Fatal(err)
		}
		if _, err := mpc.PrefixSum(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT9_SpaceAblation times the edge sparsification plus the 2-hop
// ball measurement that the ablation compares.
func BenchmarkT9_SpaceAblation(b *testing.B) {
	g := gen.GNM(1<<11, 24<<11, 1)
	p := core.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		er := sparsify.SparsifyEdges(g, p, nil)
		_ = er.EStar.BallSizeMax(2)
	}
}

// BenchmarkF1_EdgeDecay times one deterministic and one randomized full run
// (the two curves of F1).
func BenchmarkF1_EdgeDecay(b *testing.B) {
	g := gen.GNM(1<<11, 8<<11, 1)
	p := core.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis.Deterministic(g, p, nil)
		luby.MIS(g, detrand.New(1))
	}
}

// BenchmarkF2_RoundScaling times the full F2 figure generation at quick
// scale (the n-sweep and Δ-sweep).
func BenchmarkF2_RoundScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("F2", quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations_SlackSweep times the A4 ablation's unit: one edge
// sparsification under the strictest (slack = 1) goodness predicates,
// which exercises the deep-scan path of the seed search.
func BenchmarkAblations_SlackSweep(b *testing.B) {
	g := gen.GNM(1<<11, 24<<11, 1)
	p := core.DefaultParams()
	p.Slack = 1
	p.MaxSeedsPerSearch = 512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsify.SparsifyEdges(g, p, nil)
	}
}

// The *Serial / *Parallel benchmark pairs below time identical computations
// with the shared execution pool (internal/parallel) pinned to one worker vs
// one worker per logical CPU. Outputs are bit-identical by the determinism
// contract, so any delta is pure wall-clock speedup; CI's benchmark smoke
// job records both sides as a JSON artifact (cmd/benchjson).

// BenchmarkMatchingDeterministicSerial times the Theorem 7 pipeline with the
// pool pinned to a single worker.
func BenchmarkMatchingDeterministicSerial(b *testing.B) {
	benchMatchingDeterministic(b, 1)
}

// BenchmarkMatchingDeterministicParallel is the same pipeline with one
// worker per logical CPU (Parallelism = 0, auto).
func BenchmarkMatchingDeterministicParallel(b *testing.B) {
	benchMatchingDeterministic(b, 0)
}

func benchMatchingDeterministic(b *testing.B, parallelism int) {
	g := gen.GNM(1<<12, 8<<12, 1)
	p := core.DefaultParams()
	p.Parallelism = parallelism
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.Deterministic(g, p, nil)
	}
}

// BenchmarkMISDeterministicSerial times the Theorem 14 pipeline with the
// pool pinned to a single worker.
func BenchmarkMISDeterministicSerial(b *testing.B) { benchMISDeterministic(b, 1) }

// BenchmarkMISDeterministicParallel is the same pipeline at GOMAXPROCS
// workers.
func BenchmarkMISDeterministicParallel(b *testing.B) { benchMISDeterministic(b, 0) }

func benchMISDeterministic(b *testing.B, parallelism int) {
	g := gen.GNM(1<<12, 8<<12, 1)
	p := core.DefaultParams()
	p.Parallelism = parallelism
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis.Deterministic(g, p, nil)
	}
}

// BenchmarkSparsifySeedSearchSerial times the Section 3.2 edge
// sparsification — dominated by the condexp seed search — on one worker.
func BenchmarkSparsifySeedSearchSerial(b *testing.B) { benchSparsifySeedSearch(b, 1) }

// BenchmarkSparsifySeedSearchParallel is the same search with candidate
// seeds evaluated across the pool.
func BenchmarkSparsifySeedSearchParallel(b *testing.B) { benchSparsifySeedSearch(b, 0) }

func benchSparsifySeedSearch(b *testing.B, parallelism int) {
	g := gen.GNM(1<<12, 16<<12, 1)
	p := core.DefaultParams()
	p.Parallelism = parallelism
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsify.SparsifyEdges(g, p, nil)
	}
}

// BenchmarkWithoutNodesSerial times the CSR node-removal filter (the inner
// rebuild of every Luby-style iteration) on one worker.
func BenchmarkWithoutNodesSerial(b *testing.B) { benchWithoutNodes(b, 1) }

// BenchmarkWithoutNodesParallel shards the same rebuild over the pool.
func BenchmarkWithoutNodesParallel(b *testing.B) { benchWithoutNodes(b, 0) }

func benchWithoutNodes(b *testing.B, workers int) {
	g := gen.GNM(1<<16, 1<<19, 1)
	remove := make([]bool, g.N())
	for v := range remove {
		remove[v] = v%3 == 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WithoutNodesW(remove, workers)
	}
}

// BenchmarkLubyMISSerial times the randomized baseline (serial z-vector
// selection kernel) with the per-round graph rebuild on one worker.
func BenchmarkLubyMISSerial(b *testing.B) { benchLubyMIS(b, 1) }

// BenchmarkLubyMISParallel is the same baseline with the rebuild across the
// pool (selection itself is serial since the kernel rewrite).
func BenchmarkLubyMISParallel(b *testing.B) { benchLubyMIS(b, 0) }

func benchLubyMIS(b *testing.B, workers int) {
	g := gen.GNM(1<<14, 1<<17, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		luby.MISW(g, detrand.New(1), workers)
	}
}

// BenchmarkMPCRoundFanoutSerial times the message-level simulator's
// machine-step fan-out (sample sort + prefix sums) on one worker.
func BenchmarkMPCRoundFanoutSerial(b *testing.B) { benchMPCRoundFanout(b, 1) }

// BenchmarkMPCRoundFanoutParallel runs machine steps across the pool.
func BenchmarkMPCRoundFanoutParallel(b *testing.B) { benchMPCRoundFanout(b, 0) }

func benchMPCRoundFanout(b *testing.B, workers int) {
	r := detrand.New(1)
	data := make([]uint64, 1<<14)
	for i := range data {
		data[i] = r.Uint64() % 1_000_000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(mpc.Config{Machines: 32, Space: 1 << 11, Workers: workers})
		if err := c.LoadBalanced(data); err != nil {
			b.Fatal(err)
		}
		if err := mpc.Sort(c); err != nil {
			b.Fatal(err)
		}
		if _, err := mpc.PrefixSum(c); err != nil {
			b.Fatal(err)
		}
	}
}

// The BenchmarkEngine* group measures the reusable-solver layer: the
// *Reuse benchmarks solve on a warm Engine (steady-state of a server
// handling repeated traffic — allocation-flat by the scratch arenas and CSR
// double-buffers), while the *OneShot pairs run the free-function wrapper,
// which pays the full working-set allocation every call. Run with -benchmem
// (the Makefile bench targets do) so CI archives B/op and allocs/op; the
// delta between each pair is the allocation bill the Engine amortises.

// BenchmarkEngineReuseMatching times a warm-Engine matching re-solve.
func BenchmarkEngineReuseMatching(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	eng := NewEngine(&Options{Strategy: StrategySparsify, SkipCostTracking: true})
	if _, err := eng.MaximalMatching(g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.MaximalMatching(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineOneShotMatching is the free-function counterpart of
// BenchmarkEngineReuseMatching (fresh scratch every call).
func BenchmarkEngineOneShotMatching(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximalMatching(g, &Options{Strategy: StrategySparsify, SkipCostTracking: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReuseMIS times a warm-Engine MIS re-solve.
func BenchmarkEngineReuseMIS(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	eng := NewEngine(&Options{Strategy: StrategySparsify, SkipCostTracking: true})
	if _, err := eng.MaximalIndependentSet(g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.MaximalIndependentSet(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineOneShotMIS is the free-function counterpart of
// BenchmarkEngineReuseMIS.
func BenchmarkEngineOneShotMIS(b *testing.B) {
	g := gen.GNM(1<<12, 8<<12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximalIndependentSet(g, &Options{Strategy: StrategySparsify, SkipCostTracking: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI_MIS times the façade end to end (what a downstream
// user calls).
func BenchmarkPublicAPI_MIS(b *testing.B) {
	g, err := Generate("powerlaw", 1<<12, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximalIndependentSet(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = io.Discard
