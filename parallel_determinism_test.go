package repro

// Worker-count-independence tests: the determinism contract of the shared
// parallel-execution subsystem (internal/parallel) says every public result
// is bit-identical at any Options.Parallelism. These tables exercise the
// contract end to end on several generated families and both strategies;
// CI runs them under -race so that a scheduling-dependent write is flagged
// even when it happens to produce the right bits.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/hashfam"
	"repro/internal/lowdeg"
	"repro/internal/luby"
	"repro/internal/matching"
	"repro/internal/mis"
)

var determinismWorkloads = []struct {
	family string
	n      int
	avgDeg int
	seed   uint64
}{
	{"gnm", 512, 8, 1},
	{"gnm", 400, 24, 7},
	{"powerlaw", 512, 6, 3},
	{"regular", 384, 8, 5},
	{"grid", 400, 4, 2},
	{"star", 256, 2, 4},
}

var parallelismLevels = []int{1, 2, 8}

func TestMaximalMatchingWorkerCountIndependence(t *testing.T) {
	for _, w := range determinismWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/n=%d/%s", w.family, w.n, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				var ref *MatchingResult
				for _, par := range parallelismLevels {
					res, err := MaximalMatching(g, &Options{Strategy: strat, Parallelism: par})
					if err != nil {
						t.Fatalf("Parallelism=%d: %v", par, err)
					}
					if ref == nil {
						ref = res
						continue
					}
					if len(res.Edges) != len(ref.Edges) {
						t.Fatalf("Parallelism=%d: %d edges, want %d", par, len(res.Edges), len(ref.Edges))
					}
					for i := range res.Edges {
						if res.Edges[i] != ref.Edges[i] {
							t.Fatalf("Parallelism=%d: edge %d is %v, want %v", par, i, res.Edges[i], ref.Edges[i])
						}
					}
					if res.Iterations != ref.Iterations {
						t.Fatalf("Parallelism=%d: %d iterations, want %d", par, res.Iterations, ref.Iterations)
					}
				}
			})
		}
	}
}

func TestMaximalIndependentSetWorkerCountIndependence(t *testing.T) {
	for _, w := range determinismWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/n=%d/%s", w.family, w.n, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				var ref *MISResult
				for _, par := range parallelismLevels {
					res, err := MaximalIndependentSet(g, &Options{Strategy: strat, Parallelism: par})
					if err != nil {
						t.Fatalf("Parallelism=%d: %v", par, err)
					}
					if ref == nil {
						ref = res
						continue
					}
					if len(res.Nodes) != len(ref.Nodes) {
						t.Fatalf("Parallelism=%d: %d nodes, want %d", par, len(res.Nodes), len(ref.Nodes))
					}
					for i := range res.Nodes {
						if res.Nodes[i] != ref.Nodes[i] {
							t.Fatalf("Parallelism=%d: node %d is %d, want %d", par, i, res.Nodes[i], ref.Nodes[i])
						}
					}
					if res.Iterations != ref.Iterations {
						t.Fatalf("Parallelism=%d: %d iterations, want %d", par, res.Iterations, ref.Iterations)
					}
				}
			})
		}
	}
}

// TestSerialAliasMatchesParallelismOne pins the legacy Options.Serial alias
// to the Parallelism=1 path.
func TestSerialAliasMatchesParallelismOne(t *testing.T) {
	g, err := Generate("gnm", 400, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MaximalIndependentSet(g, &Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximalIndependentSet(g, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("Serial and Parallelism=1 disagree: %d vs %d nodes", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs: %d vs %d", i, a.Nodes[i], b.Nodes[i])
		}
	}
}

// TestEngineReuseWorkerCountIndependence runs the worker-count-independence
// tables against a WARM reused Engine: at each Parallelism level the engine
// is warmed on a different graph first (so the solve under test runs on
// dirty, recycled buffers) and then solves the workload twice. Both solves
// must be bit-identical across all Parallelism levels and to the one-shot
// free function — scratch reuse changes memory lifetimes, never values.
// CI runs this under -race via the dedicated engine-race job (make
// race-engine).
func TestEngineReuseWorkerCountIndependence(t *testing.T) {
	for _, w := range determinismWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/n=%d/%s", w.family, w.n, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				warmup, err := Generate("gnm", w.n+77, 12, w.seed+13)
				if err != nil {
					t.Fatal(err)
				}
				refMM, err := MaximalMatching(g, &Options{Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				refIS, err := MaximalIndependentSet(g, &Options{Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range parallelismLevels {
					eng := NewEngine(&Options{Strategy: strat, Parallelism: par})
					if _, err := eng.MaximalMatching(warmup); err != nil {
						t.Fatalf("Parallelism=%d warmup: %v", par, err)
					}
					if _, err := eng.MaximalIndependentSet(warmup); err != nil {
						t.Fatalf("Parallelism=%d warmup: %v", par, err)
					}
					for round := 0; round < 2; round++ {
						mm, err := eng.MaximalMatching(g)
						if err != nil {
							t.Fatalf("Parallelism=%d round %d: %v", par, round, err)
						}
						if len(mm.Edges) != len(refMM.Edges) || mm.Iterations != refMM.Iterations {
							t.Fatalf("Parallelism=%d round %d: matching %d edges/%d iters, want %d/%d",
								par, round, len(mm.Edges), mm.Iterations, len(refMM.Edges), refMM.Iterations)
						}
						for i := range mm.Edges {
							if mm.Edges[i] != refMM.Edges[i] {
								t.Fatalf("Parallelism=%d round %d: edge %d is %v, want %v",
									par, round, i, mm.Edges[i], refMM.Edges[i])
							}
						}
						is, err := eng.MaximalIndependentSet(g)
						if err != nil {
							t.Fatalf("Parallelism=%d round %d: %v", par, round, err)
						}
						if len(is.Nodes) != len(refIS.Nodes) || is.Iterations != refIS.Iterations {
							t.Fatalf("Parallelism=%d round %d: MIS %d nodes/%d iters, want %d/%d",
								par, round, len(is.Nodes), is.Iterations, len(refIS.Nodes), refIS.Iterations)
						}
						for i := range is.Nodes {
							if is.Nodes[i] != refIS.Nodes[i] {
								t.Fatalf("Parallelism=%d round %d: node %d is %d, want %d",
									par, round, i, is.Nodes[i], refIS.Nodes[i])
							}
						}
					}
				}
			})
		}
	}
}

// TestHashKernelMatchesScalarPath proves the batched hash kernel changed no
// bits: matching and MIS run through the kernel (the production path:
// precomputed key vectors + Evaluator.EvalKeys + z-vector selection) at
// Parallelism ∈ {1, 2, 8}, and every run is compared edge-for-edge and
// node-for-node against the pre-kernel closure path (per-item
// hashfam.Family.Eval, selected by core.Params.ScalarObjectives), for both
// the sparsify and low-degree strategies.
func TestHashKernelMatchesScalarPath(t *testing.T) {
	for _, w := range determinismWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/n=%d/%s", w.family, w.n, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				scalar := core.DefaultParams()
				scalar.Parallelism = 1
				scalar.ScalarObjectives = true
				var refMM []graph.Edge
				var refIS []graph.NodeID
				if strat == StrategySparsify {
					refMM = matching.Deterministic(g, scalar, nil).Matching
					refIS = mis.Deterministic(g, scalar, nil).IndependentSet
				} else {
					refMM = lowdeg.MaximalMatching(g, scalar, nil).Matching
					refIS = lowdeg.MIS(g, scalar, nil).IndependentSet
				}
				for _, par := range parallelismLevels {
					kernel := core.DefaultParams()
					kernel.Parallelism = par
					var mm []graph.Edge
					var is []graph.NodeID
					if strat == StrategySparsify {
						mm = matching.Deterministic(g, kernel, nil).Matching
						is = mis.Deterministic(g, kernel, nil).IndependentSet
					} else {
						mm = lowdeg.MaximalMatching(g, kernel, nil).Matching
						is = lowdeg.MIS(g, kernel, nil).IndependentSet
					}
					if len(mm) != len(refMM) {
						t.Fatalf("Parallelism=%d: kernel matching has %d edges, scalar path %d", par, len(mm), len(refMM))
					}
					for i := range mm {
						if mm[i] != refMM[i] {
							t.Fatalf("Parallelism=%d: matching edge %d is %v, scalar path %v", par, i, mm[i], refMM[i])
						}
					}
					if len(is) != len(refIS) {
						t.Fatalf("Parallelism=%d: kernel MIS has %d nodes, scalar path %d", par, len(is), len(refIS))
					}
					for i := range is {
						if is[i] != refIS[i] {
							t.Fatalf("Parallelism=%d: MIS node %d is %d, scalar path %d", par, i, is[i], refIS[i])
						}
					}
				}
			})
		}
	}
}

// TestBlockedKernelMatchesScalarPath pins the block-major seed evaluation:
// the production batch objectives now walk BlockSeeds-sized seed groups
// through hashfam.Evaluator.EvalSeedsBlocked (S seeds per cache-resident key
// block, AVX2 inner loop where the host has it), and this table proves that
// restructuring moved no bits. Both strategies run at Parallelism ∈ {1, 2,
// 8} and are compared against the retained per-item closure path
// (core.Params.ScalarObjectives) — not just the output sets but the full
// seed-search trajectory (seeds tried, objective values), so a divergence
// inside any single candidate evaluation is caught even when the argmax
// happens to agree. Workload sizes are chosen so seed batches end in ragged
// tails (batch length not a multiple of condexp.BlockSeeds) and key vectors
// straddle block boundaries.
func TestBlockedKernelMatchesScalarPath(t *testing.T) {
	for _, w := range []struct {
		family string
		n      int
		avgDeg int
		seed   uint64
	}{
		{"gnm", 600, 9, 11},
		{"powerlaw", 520, 7, 13},
		{"regular", 450, 6, 17},
		{"grid", 529, 4, 19},
	} {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/n=%d/%s", w.family, w.n, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				scalar := core.DefaultParams()
				scalar.Parallelism = 1
				scalar.ScalarObjectives = true
				type trace struct {
					seedsTried int
					objective  int64
				}
				var refMM []graph.Edge
				var refIS []graph.NodeID
				var refTr []trace
				if strat == StrategySparsify {
					mm := matching.Deterministic(g, scalar, nil)
					is := mis.Deterministic(g, scalar, nil)
					refMM, refIS = mm.Matching, is.IndependentSet
					for _, it := range mm.Iterations {
						refTr = append(refTr, trace{it.SeedsTried, it.ObjectiveValue})
					}
					for _, it := range is.Iterations {
						refTr = append(refTr, trace{it.SeedsTried, it.ObjectiveValue})
					}
				} else {
					mm := lowdeg.MaximalMatching(g, scalar, nil)
					is := lowdeg.MIS(g, scalar, nil)
					refMM, refIS = mm.Matching, is.IndependentSet
					for _, ph := range mm.MIS.Phases {
						refTr = append(refTr, trace{ph.SeedsTried, 0})
					}
					for _, ph := range is.Phases {
						refTr = append(refTr, trace{ph.SeedsTried, 0})
					}
				}
				for _, par := range parallelismLevels {
					blocked := core.DefaultParams()
					blocked.Parallelism = par
					var mm []graph.Edge
					var is []graph.NodeID
					var tr []trace
					if strat == StrategySparsify {
						m := matching.Deterministic(g, blocked, nil)
						i := mis.Deterministic(g, blocked, nil)
						mm, is = m.Matching, i.IndependentSet
						for _, it := range m.Iterations {
							tr = append(tr, trace{it.SeedsTried, it.ObjectiveValue})
						}
						for _, it := range i.Iterations {
							tr = append(tr, trace{it.SeedsTried, it.ObjectiveValue})
						}
					} else {
						m := lowdeg.MaximalMatching(g, blocked, nil)
						i := lowdeg.MIS(g, blocked, nil)
						mm, is = m.Matching, i.IndependentSet
						for _, ph := range m.MIS.Phases {
							tr = append(tr, trace{ph.SeedsTried, 0})
						}
						for _, ph := range i.Phases {
							tr = append(tr, trace{ph.SeedsTried, 0})
						}
					}
					if len(tr) != len(refTr) {
						t.Fatalf("Parallelism=%d: %d searches, scalar path %d", par, len(tr), len(refTr))
					}
					for i := range tr {
						if tr[i] != refTr[i] {
							t.Fatalf("Parallelism=%d: search %d tried %d seeds (objective %d), scalar path %d (%d)",
								par, i, tr[i].seedsTried, tr[i].objective, refTr[i].seedsTried, refTr[i].objective)
						}
					}
					if len(mm) != len(refMM) {
						t.Fatalf("Parallelism=%d: blocked matching has %d edges, scalar path %d", par, len(mm), len(refMM))
					}
					for i := range mm {
						if mm[i] != refMM[i] {
							t.Fatalf("Parallelism=%d: matching edge %d is %v, scalar path %v", par, i, mm[i], refMM[i])
						}
					}
					if len(is) != len(refIS) {
						t.Fatalf("Parallelism=%d: blocked MIS has %d nodes, scalar path %d", par, len(is), len(refIS))
					}
					for i := range is {
						if is[i] != refIS[i] {
							t.Fatalf("Parallelism=%d: MIS node %d is %d, scalar path %d", par, i, is[i], refIS[i])
						}
					}
				}
			})
		}
	}
}

// TestLowDegObjectiveKernelVsScalar pins the incident-count reformulation
// of the Section 5 seed-search objective: the kernel path scores a
// candidate seed as Σ_{w∈R} d(w) minus the R-internal edge correction over
// R = I_h ∪ N(I_h) (touching only R), while the retained
// core.Params.ScalarObjectives path still walks all of cur
// (removedEdgesMasked). Both MIS and matching-via-line-graph run through
// internal/lowdeg directly at Parallelism ∈ {1, 2, 8} and must reproduce
// the full-scan reference bit for bit — same seeds tried, same phase
// boundaries, same output sets.
func TestLowDegObjectiveKernelVsScalar(t *testing.T) {
	for _, w := range []struct {
		family string
		n      int
		avgDeg int
		seed   uint64
	}{
		{"regular", 384, 8, 5},
		{"regular", 256, 12, 3},
		{"grid", 400, 4, 2},
		{"powerlaw", 320, 5, 7},
	} {
		t.Run(fmt.Sprintf("%s/n=%d", w.family, w.n), func(t *testing.T) {
			g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
			if err != nil {
				t.Fatal(err)
			}
			scalar := core.DefaultParams()
			scalar.Parallelism = 1
			scalar.ScalarObjectives = true
			refIS := lowdeg.MIS(g, scalar, nil)
			refMM := lowdeg.MaximalMatching(g, scalar, nil)
			for _, par := range parallelismLevels {
				kernel := core.DefaultParams()
				kernel.Parallelism = par
				is := lowdeg.MIS(g, kernel, nil)
				if len(is.IndependentSet) != len(refIS.IndependentSet) || len(is.Phases) != len(refIS.Phases) {
					t.Fatalf("Parallelism=%d: kernel MIS %d nodes/%d phases, scalar scan %d/%d",
						par, len(is.IndependentSet), len(is.Phases), len(refIS.IndependentSet), len(refIS.Phases))
				}
				for i := range is.IndependentSet {
					if is.IndependentSet[i] != refIS.IndependentSet[i] {
						t.Fatalf("Parallelism=%d: MIS node %d is %d, scalar scan %d",
							par, i, is.IndependentSet[i], refIS.IndependentSet[i])
					}
				}
				for i := range is.Phases {
					if is.Phases[i].SeedsTried != refIS.Phases[i].SeedsTried {
						t.Fatalf("Parallelism=%d: phase %d tried %d seeds, scalar scan %d",
							par, i, is.Phases[i].SeedsTried, refIS.Phases[i].SeedsTried)
					}
				}
				mm := lowdeg.MaximalMatching(g, kernel, nil)
				if len(mm.Matching) != len(refMM.Matching) {
					t.Fatalf("Parallelism=%d: kernel matching %d edges, scalar scan %d",
						par, len(mm.Matching), len(refMM.Matching))
				}
				for i := range mm.Matching {
					if mm.Matching[i] != refMM.Matching[i] {
						t.Fatalf("Parallelism=%d: matching edge %d is %v, scalar scan %v",
							par, i, mm.Matching[i], refMM.Matching[i])
					}
				}
			}
		})
	}
}

// TestEvalKeysShardedMatchesSerial is the sharded-vs-serial equality table
// for the hash kernel: EvalKeysW must be byte-identical to EvalKeys for
// every worker count, key-vector length (below and above the shard
// threshold), family width and field size, on dirty output buffers.
func TestEvalKeysShardedMatchesSerial(t *testing.T) {
	families := []hashfam.Family{
		core.PairwiseFamily(1 << 12),
		core.KWiseFamily(1<<12, 4),
		hashfam.New(97, 2),
		hashfam.New(1<<33, 3), // wide-reduction path (p > 2^32)
	}
	sizes := []int{1, 100, 4095, 8192, 40000}
	for _, fam := range families {
		ev := hashfam.NewEvaluator(fam)
		enum := fam.Enumerate()
		for s := 0; s < 3 && enum.Next(); s++ {
			seed := append([]uint64(nil), enum.Seed()...)
			for _, size := range sizes {
				keys := make([]uint64, size)
				for i := range keys {
					keys[i] = (uint64(i)*0x9E3779B9 + 7) % fam.P()
				}
				want := ev.EvalKeys(seed, keys, make([]uint64, size))
				for _, workers := range parallelismLevels {
					out := make([]uint64, size)
					for i := range out {
						out[i] = ^uint64(0) // dirty
					}
					got := ev.EvalKeysW(seed, keys, out, workers)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("p=%d k=%d size=%d workers=%d: slot %d = %d, serial %d",
								fam.P(), fam.K(), size, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestLubyBaselinesWorkerCountIndependence covers the randomized baselines'
// sharded candidate evaluation: same detrand seed, different worker counts,
// identical outputs.
func TestLubyBaselinesWorkerCountIndependence(t *testing.T) {
	for _, w := range determinismWorkloads[:3] {
		g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
		if err != nil {
			t.Fatal(err)
		}
		refIS := luby.MISW(g, detrand.New(42), 1)
		refMM := luby.MaximalMatchingW(g, detrand.New(42), 1)
		for _, workers := range parallelismLevels[1:] {
			is := luby.MISW(g, detrand.New(42), workers)
			if len(is.IndependentSet) != len(refIS.IndependentSet) {
				t.Fatalf("%s: MIS size differs at workers=%d", w.family, workers)
			}
			for i := range is.IndependentSet {
				if is.IndependentSet[i] != refIS.IndependentSet[i] {
					t.Fatalf("%s: MIS node %d differs at workers=%d", w.family, i, workers)
				}
			}
			mm := luby.MaximalMatchingW(g, detrand.New(42), workers)
			if len(mm.Matching) != len(refMM.Matching) {
				t.Fatalf("%s: matching size differs at workers=%d", w.family, workers)
			}
			for i := range mm.Matching {
				if mm.Matching[i] != refMM.Matching[i] {
					t.Fatalf("%s: matching edge %d differs at workers=%d", w.family, i, workers)
				}
			}
		}
	}
}
