package repro

// Worker-count-independence tests: the determinism contract of the shared
// parallel-execution subsystem (internal/parallel) says every public result
// is bit-identical at any Options.Parallelism. These tables exercise the
// contract end to end on several generated families and both strategies;
// CI runs them under -race so that a scheduling-dependent write is flagged
// even when it happens to produce the right bits.

import (
	"fmt"
	"testing"

	"repro/internal/detrand"
	"repro/internal/luby"
)

var determinismWorkloads = []struct {
	family string
	n      int
	avgDeg int
	seed   uint64
}{
	{"gnm", 512, 8, 1},
	{"gnm", 400, 24, 7},
	{"powerlaw", 512, 6, 3},
	{"regular", 384, 8, 5},
	{"grid", 400, 4, 2},
	{"star", 256, 2, 4},
}

var parallelismLevels = []int{1, 2, 8}

func TestMaximalMatchingWorkerCountIndependence(t *testing.T) {
	for _, w := range determinismWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/n=%d/%s", w.family, w.n, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				var ref *MatchingResult
				for _, par := range parallelismLevels {
					res, err := MaximalMatching(g, &Options{Strategy: strat, Parallelism: par})
					if err != nil {
						t.Fatalf("Parallelism=%d: %v", par, err)
					}
					if ref == nil {
						ref = res
						continue
					}
					if len(res.Edges) != len(ref.Edges) {
						t.Fatalf("Parallelism=%d: %d edges, want %d", par, len(res.Edges), len(ref.Edges))
					}
					for i := range res.Edges {
						if res.Edges[i] != ref.Edges[i] {
							t.Fatalf("Parallelism=%d: edge %d is %v, want %v", par, i, res.Edges[i], ref.Edges[i])
						}
					}
					if res.Iterations != ref.Iterations {
						t.Fatalf("Parallelism=%d: %d iterations, want %d", par, res.Iterations, ref.Iterations)
					}
				}
			})
		}
	}
}

func TestMaximalIndependentSetWorkerCountIndependence(t *testing.T) {
	for _, w := range determinismWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/n=%d/%s", w.family, w.n, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				var ref *MISResult
				for _, par := range parallelismLevels {
					res, err := MaximalIndependentSet(g, &Options{Strategy: strat, Parallelism: par})
					if err != nil {
						t.Fatalf("Parallelism=%d: %v", par, err)
					}
					if ref == nil {
						ref = res
						continue
					}
					if len(res.Nodes) != len(ref.Nodes) {
						t.Fatalf("Parallelism=%d: %d nodes, want %d", par, len(res.Nodes), len(ref.Nodes))
					}
					for i := range res.Nodes {
						if res.Nodes[i] != ref.Nodes[i] {
							t.Fatalf("Parallelism=%d: node %d is %d, want %d", par, i, res.Nodes[i], ref.Nodes[i])
						}
					}
					if res.Iterations != ref.Iterations {
						t.Fatalf("Parallelism=%d: %d iterations, want %d", par, res.Iterations, ref.Iterations)
					}
				}
			})
		}
	}
}

// TestSerialAliasMatchesParallelismOne pins the legacy Options.Serial alias
// to the Parallelism=1 path.
func TestSerialAliasMatchesParallelismOne(t *testing.T) {
	g, err := Generate("gnm", 400, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MaximalIndependentSet(g, &Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximalIndependentSet(g, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("Serial and Parallelism=1 disagree: %d vs %d nodes", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs: %d vs %d", i, a.Nodes[i], b.Nodes[i])
		}
	}
}

// TestLubyBaselinesWorkerCountIndependence covers the randomized baselines'
// sharded candidate evaluation: same detrand seed, different worker counts,
// identical outputs.
func TestLubyBaselinesWorkerCountIndependence(t *testing.T) {
	for _, w := range determinismWorkloads[:3] {
		g, err := Generate(w.family, w.n, w.avgDeg, w.seed)
		if err != nil {
			t.Fatal(err)
		}
		refIS := luby.MISW(g, detrand.New(42), 1)
		refMM := luby.MaximalMatchingW(g, detrand.New(42), 1)
		for _, workers := range parallelismLevels[1:] {
			is := luby.MISW(g, detrand.New(42), workers)
			if len(is.IndependentSet) != len(refIS.IndependentSet) {
				t.Fatalf("%s: MIS size differs at workers=%d", w.family, workers)
			}
			for i := range is.IndependentSet {
				if is.IndependentSet[i] != refIS.IndependentSet[i] {
					t.Fatalf("%s: MIS node %d differs at workers=%d", w.family, i, workers)
				}
			}
			mm := luby.MaximalMatchingW(g, detrand.New(42), workers)
			if len(mm.Matching) != len(refMM.Matching) {
				t.Fatalf("%s: matching size differs at workers=%d", w.family, workers)
			}
			for i := range mm.Matching {
				if mm.Matching[i] != refMM.Matching[i] {
					t.Fatalf("%s: matching edge %d differs at workers=%d", w.family, i, workers)
				}
			}
		}
	}
}
