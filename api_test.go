package repro

import (
	"testing"

	"repro/internal/check"
)

func TestMaximalMatchingDefaults(t *testing.T) {
	g, err := Generate("gnm", 1024, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaximalMatching(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := check.IsMaximalMatching(g, res.Edges); !ok {
		t.Fatal(reason)
	}
	if res.Costs == nil || res.Costs.Rounds == 0 {
		t.Error("cost tracking missing by default")
	}
	if res.Strategy != StrategySparsify && res.Strategy != StrategyLowDegree {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestMaximalIndependentSetDefaults(t *testing.T) {
	g, err := Generate("powerlaw", 1024, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaximalIndependentSet(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := check.IsMaximalIS(g, res.Nodes); !ok {
		t.Fatal(reason)
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func TestAutoDispatch(t *testing.T) {
	// Grid (Δ=4) must take the low-degree path; a dense G(n,m) must take
	// the sparsification path.
	grid, _ := Generate("grid", 1024, 4, 1)
	res, err := MaximalIndependentSet(grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyLowDegree {
		t.Errorf("grid dispatched to %q, want lowdeg", res.Strategy)
	}
	dense, _ := Generate("gnm", 1024, 64, 1)
	res, err = MaximalIndependentSet(dense, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategySparsify {
		t.Errorf("dense graph dispatched to %q, want sparsify", res.Strategy)
	}
}

func TestForcedStrategies(t *testing.T) {
	g, _ := Generate("gnm", 512, 8, 3)
	for _, s := range []Strategy{StrategySparsify, StrategyLowDegree} {
		mm, err := MaximalMatching(g, &Options{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ok, reason := check.IsMaximalMatching(g, mm.Edges); !ok {
			t.Errorf("%s: %s", s, reason)
		}
		is, err := MaximalIndependentSet(g, &Options{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ok, reason := check.IsMaximalIS(g, is.Nodes); !ok {
			t.Errorf("%s: %s", s, reason)
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	g, _ := Generate("path", 10, 2, 1)
	if _, err := MaximalMatching(g, &Options{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := MaximalIndependentSet(g, &Options{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestNilGraph(t *testing.T) {
	if _, err := MaximalMatching(nil, nil); err != ErrNilGraph {
		t.Errorf("err = %v", err)
	}
	if _, err := MaximalIndependentSet(nil, nil); err != ErrNilGraph {
		t.Errorf("err = %v", err)
	}
}

func TestSkipCostTracking(t *testing.T) {
	g, _ := Generate("gnm", 256, 6, 5)
	res, err := MaximalMatching(g, &Options{SkipCostTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Costs != nil {
		t.Error("costs reported despite SkipCostTracking")
	}
}

func TestOptionsPropagate(t *testing.T) {
	g, _ := Generate("gnm", 512, 16, 7)
	res, err := MaximalIndependentSet(g, &Options{Epsilon: 0.75, Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Costs == nil {
		t.Fatal("costs missing")
	}
	// ε = 0.75 gives S = ceil(512^0.75) = 108.
	if res.Costs.SpacePerMachine < 100 || res.Costs.SpacePerMachine > 120 {
		t.Errorf("S = %d, want ~108 for eps=0.75", res.Costs.SpacePerMachine)
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	res, err := MaximalMatching(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 2 && len(res.Edges) != 1 {
		t.Errorf("P4 matching size %d", len(res.Edges))
	}
	h := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if h.M() != 2 {
		t.Errorf("FromEdges m = %d", h.M())
	}
}

func TestGenerateUnknownFamily(t *testing.T) {
	if _, err := Generate("bogus", 10, 2, 1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	g, _ := Generate("gnm", 512, 10, 11)
	a, err := MaximalIndependentSet(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximalIndependentSet(g, &Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("parallel vs serial differ")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("results differ across calls")
		}
	}
}
