package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/lowdeg"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/scratch"
	"repro/internal/simcost"
)

// Graph is an immutable undirected graph in CSR form (node ids dense in
// [0, N)). Construct with NewBuilder or FromEdges.
type Graph = graph.Graph

// Edge is an undirected edge; the canonical form has U < V.
type Edge = graph.Edge

// NodeID identifies a node.
type NodeID = graph.NodeID

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n nodes from an edge list (duplicates and
// self loops are dropped).
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Generate builds a named synthetic workload ("gnm", "gnp", "powerlaw",
// "regular", "grid", "complete", "star", "path", "cycle", "tree",
// "caterpillar", "bipartite") with roughly n nodes and the given average
// degree, deterministically from seed.
func Generate(family string, n, avgDeg int, seed uint64) (*Graph, error) {
	return gen.ByName(family, n, avgDeg, seed)
}

// Strategy selects which of the paper's algorithms to run.
type Strategy string

const (
	// StrategyAuto dispatches per Theorem 1: the Section 5 low-degree path
	// when Δ⁴ fits the machine budget, otherwise the sparsification path.
	StrategyAuto Strategy = "auto"
	// StrategySparsify forces the Section 3/4 O(log n) algorithms.
	StrategySparsify Strategy = "sparsify"
	// StrategyLowDegree forces the Section 5 O(log Δ + log log n)
	// algorithm (correct for any input; space violations are recorded when
	// Δ is too large for the regime).
	StrategyLowDegree Strategy = "lowdeg"
)

// Options configure the algorithms. The zero value (and nil) mean: ε = 0.5,
// the paper's δ = ε/8 coupling, slack 4, half-expectation thresholds,
// automatic strategy, cost tracking on.
type Options struct {
	// Epsilon is the per-machine space exponent (S = Θ(n^ε)), in (0, 1].
	Epsilon float64
	// Slack relaxes the asymptotic concentration constants (DESIGN.md
	// substitution 4). Must be positive.
	Slack float64
	// ThresholdFrac is the fraction of each proven expectation bound the
	// deterministic seed search must reach, in (0, 1].
	ThresholdFrac float64
	// Strategy picks the algorithm; default StrategyAuto.
	Strategy Strategy
	// SkipCostTracking disables the MPC round/space cost model (the result
	// then has a nil CostReport). Tracking is on by default; its overhead
	// is negligible.
	SkipCostTracking bool
	// Parallelism is the host-side worker count for the shared execution
	// pool (internal/parallel): seed-search batches, per-vertex scans, and
	// graph rebuilds all shard across it. 0 (the default) means one worker
	// per logical CPU (GOMAXPROCS); 1 forces serial execution; larger
	// values pin an explicit worker count. Results are bit-identical at
	// every setting — the determinism contract, enforced by the
	// worker-count-independence tests run under -race in CI — so this knob
	// trades only wall-clock time, never output.
	Parallelism int
	// Serial disables host parallelism entirely.
	//
	// Deprecated: set Parallelism: 1 instead. Serial predates the
	// Parallelism knob and is kept only so existing callers keep compiling;
	// its precedence is unchanged (Serial wins over Parallelism when both
	// are set, decided in core.EffectiveParallelism).
	Serial bool
	// PreparedCacheCap bounds the Engine's prepared-graph cache
	// (Engine.Prepare): when an insert would exceed the cap, the
	// least-recently-used entry (by Prepare/Prepared touch order) is
	// evicted first. 0 means DefaultPreparedCacheCap; negative means
	// unbounded. Eviction only forgets the shared handle — outstanding
	// handles stay valid, and re-preparing the same content yields a
	// bit-identical cache entry. DropPrepared remains the manual path.
	PreparedCacheCap int
}

// DefaultPreparedCacheCap is the prepared-graph cache bound used when
// Options.PreparedCacheCap is 0. Large enough that steady serving traffic
// over a working set of graphs never evicts, small enough that an unbounded
// upload storm cannot grow the engine without limit.
const DefaultPreparedCacheCap = 256

func (o *Options) params() core.Params {
	p := core.DefaultParams()
	if o == nil {
		return p
	}
	if o.Epsilon != 0 {
		p = p.WithEpsilon(o.Epsilon)
	}
	if o.Slack != 0 {
		p.Slack = o.Slack
	}
	if o.ThresholdFrac != 0 {
		p.ThresholdFrac = o.ThresholdFrac
	}
	// Serial/Parallelism precedence is decided in exactly one place
	// (core.EffectiveParallelism); everything below this call sees only
	// Params.Parallelism.
	p.Parallelism = core.EffectiveParallelism(o.Serial, o.Parallelism)
	return p
}

func (o *Options) strategy() Strategy {
	if o == nil || o.Strategy == "" {
		return StrategyAuto
	}
	return o.Strategy
}

func (o *Options) trackCosts() bool {
	return o == nil || !o.SkipCostTracking
}

// CostReport summarises the MPC execution costs of a run under the paper's
// accounting (see internal/simcost and DESIGN.md).
type CostReport struct {
	Rounds           int
	Machines         int
	SpacePerMachine  int
	PeakMachineWords int
	SeedBatches      int
	Violations       []string
}

func report(m *simcost.Model) *CostReport {
	if m == nil {
		return nil
	}
	st := m.Stats()
	return &CostReport{
		Rounds:           st.Rounds,
		Machines:         st.Machines,
		SpacePerMachine:  st.S,
		PeakMachineWords: st.PeakMachineWords,
		SeedBatches:      st.SeedBatches,
		Violations:       st.Violations,
	}
}

// MatchingResult is the output of MaximalMatching.
type MatchingResult struct {
	Edges      []Edge
	Iterations int
	Strategy   Strategy
	Costs      *CostReport
}

// MISResult is the output of MaximalIndependentSet.
type MISResult struct {
	Nodes      []NodeID
	Iterations int
	Strategy   Strategy
	Costs      *CostReport
}

// Sentinel errors. Every error returned by the solve API matches exactly one
// of these under errors.Is; the structured types below carry the detail and
// are reachable through errors.As.
var (
	// ErrNilGraph is returned when the input graph is nil.
	ErrNilGraph = errors.New("repro: nil graph")
	// ErrCanceled marks a solve abandoned through its context. The returned
	// error also wraps the context's cause, so errors.Is(err,
	// context.Canceled) (or context.DeadlineExceeded) reports why.
	ErrCanceled = errors.New("repro: solve canceled")
	// ErrDeadlineExceeded marks a solve abandoned because its deadline
	// expired. It is a refinement of ErrCanceled, never a sibling: every
	// error matching ErrDeadlineExceeded also matches ErrCanceled and
	// context.DeadlineExceeded under errors.Is, so existing ErrCanceled
	// handling keeps working and servers can still map timeouts separately
	// (504 vs 499 in internal/serve).
	ErrDeadlineExceeded = errors.New("repro: solve deadline exceeded")
	// ErrOverloaded marks a request rejected by admission control before any
	// solve work started: the serving layer's bounded queue was full. It is
	// disjoint from ErrCanceled — an overloaded request never touched an
	// Engine — and maps to HTTP 429 in internal/serve.
	ErrOverloaded = errors.New("repro: server overloaded")
	// ErrUnknownStrategy marks an Options.Strategy (or WithStrategy value)
	// that names none of the defined strategies; errors.As with
	// *UnknownStrategyError recovers the offending value.
	ErrUnknownStrategy = errors.New("repro: unknown strategy")
	// ErrNotMaximal marks an internal failure: the solver produced output
	// that did not verify maximal. It should never be observed; errors.As
	// with *NotMaximalError recovers the verifier's reason.
	ErrNotMaximal = errors.New("repro: output not maximal")
)

// UnknownStrategyError reports the strategy value that failed to resolve.
// It matches ErrUnknownStrategy under errors.Is.
type UnknownStrategyError struct {
	Strategy Strategy
}

func (e *UnknownStrategyError) Error() string {
	return fmt.Sprintf("repro: unknown strategy %q", e.Strategy)
}

// Is makes errors.Is(err, ErrUnknownStrategy) hold for this type.
func (e *UnknownStrategyError) Is(target error) bool { return target == ErrUnknownStrategy }

// NotMaximalError reports which algorithm failed post-solve verification and
// the verifier's reason. It matches ErrNotMaximal under errors.Is.
type NotMaximalError struct {
	Algorithm string // "matching" or "mis"
	Reason    string // the check package's counterexample description
}

func (e *NotMaximalError) Error() string {
	return fmt.Sprintf("repro: internal error, %s output not maximal: %s", e.Algorithm, e.Reason)
}

// Is makes errors.Is(err, ErrNotMaximal) hold for this type.
func (e *NotMaximalError) Is(target error) bool { return target == ErrNotMaximal }

// canceledError wraps both ErrCanceled and the context's cause, so callers
// can branch on errors.Is(err, ErrCanceled) as well as on the underlying
// context.Canceled / context.DeadlineExceeded. Deadline-driven
// cancellations additionally wrap ErrDeadlineExceeded, keeping the taxonomy
// a refinement chain: ErrDeadlineExceeded ⊂ ErrCanceled.
func canceledError(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		// The solve observed cancellation through Params.Done but the
		// context has not recorded a cause yet (possible only with racy
		// custom contexts); fall back to the generic cause.
		cause = context.Canceled
	}
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w: %w", ErrCanceled, ErrDeadlineExceeded, cause)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// RoundEvent is the per-round telemetry record delivered to an Observer; see
// core.RoundEvent for the field semantics. Observed solves additionally
// carry the round's seed-batch sub-events (RoundEvent.Batches) and the
// incremental simcost counters (CostRounds, CostSeedBatches,
// CostPeakMachineWords); unobserved solves never compute either.
type RoundEvent = core.RoundEvent

// SeedBatchStat is one charged seed batch of a round's conditional-
// expectations search, carried by RoundEvent.Batches in evaluation order;
// see core.SeedBatchStat for the field semantics.
type SeedBatchStat = core.SeedBatchStat

// Observer receives one OnRound call per completed round of a solve it is
// attached to (WithObserver). Delivery is synchronous from the solve's
// coordinating goroutine, strictly in round order, and the event stream is
// deterministic: the same graph, options and build produce the same events
// in the same order at every Parallelism setting — host parallelism lives
// inside a round, never across rounds. An observer therefore needs no
// locking of its own unless it is shared across concurrent solves, and a
// slow OnRound stalls only its own solve.
type Observer interface {
	OnRound(RoundEvent)
}

// solveConfig is the fully resolved per-request configuration: the engine's
// base Options after value-copy, plus the request-scoped extras that are not
// Options fields.
type solveConfig struct {
	Options
	observer Observer
}

// SolveOption overrides one knob of a single solve, layered over the
// engine's base Options: Engine.MaximalMatchingCtx(ctx, g, WithStrategy(s))
// behaves bit-identically to the same call on a dedicated engine constructed
// with that strategy. Options are applied in order; later options win.
type SolveOption func(*solveConfig)

// WithStrategy forces the algorithm for this solve (see Strategy).
func WithStrategy(s Strategy) SolveOption {
	return func(c *solveConfig) { c.Strategy = s }
}

// WithParallelism pins the host worker count for this solve (0 = one per
// logical CPU, 1 = serial). It also clears the deprecated Serial flag so the
// explicit per-solve value always wins over an engine-level alias.
func WithParallelism(workers int) SolveOption {
	return func(c *solveConfig) { c.Parallelism, c.Serial = workers, false }
}

// WithEpsilon sets the space exponent ε for this solve.
func WithEpsilon(eps float64) SolveOption {
	return func(c *solveConfig) { c.Epsilon = eps }
}

// WithSlack sets the concentration slack for this solve.
func WithSlack(slack float64) SolveOption {
	return func(c *solveConfig) { c.Slack = slack }
}

// WithThresholdFrac sets the seed-search threshold fraction for this solve.
func WithThresholdFrac(frac float64) SolveOption {
	return func(c *solveConfig) { c.ThresholdFrac = frac }
}

// WithCostTracking enables or disables the MPC cost model for this solve.
func WithCostTracking(on bool) SolveOption {
	return func(c *solveConfig) { c.SkipCostTracking = !on }
}

// WithObserver attaches a per-round observer to this solve. Observation
// never changes results: events are emitted at round boundaries from state
// the solve computes anyway (plus a live-node count), and the golden corpus
// is byte-identical with or without an observer attached.
func WithObserver(o Observer) SolveOption {
	return func(c *solveConfig) { c.observer = o }
}

// Engine is a reusable solver for the deterministic algorithms. It owns a
// pool of per-solve scratch contexts (arena-backed masks, tables and CSR
// double-buffers, see internal/scratch), so repeated solves on a warm
// Engine reuse the buffers of earlier ones instead of reallocating the
// working set every round — the first solve pays the full allocation bill,
// later solves of similar or smaller size run allocation-flat.
//
// An Engine is safe for concurrent use: each in-flight solve checks a
// private context out of the pool, so a server can share one Engine across
// request goroutines — that is the intended lifecycle: construct once,
// reuse for ALL traffic. Heterogeneous requests do not need one engine per
// configuration: the Ctx entry points take per-solve SolveOption overrides
// (strategy, parallelism, thresholds, cost tracking, observer) layered over
// the base Options, with results bit-identical to a dedicated engine built
// with the overridden Options. The determinism contract is unchanged:
// results are bit-identical to the free functions at every Parallelism
// setting, whether the engine is cold, warm, or shared.
//
// The zero value is an Engine with default Options.
type Engine struct {
	opts Options
	pool sync.Pool

	// Prepared-graph cache (Engine.Prepare): content fingerprint → shared
	// handle. Lazily built under mu so the zero-value Engine stays valid.
	// preparedAge holds each entry's last-touch tick (monotonic under mu);
	// when an insert pushes the cache past Options.PreparedCacheCap, the
	// entry with the smallest tick — least recently prepared or looked up —
	// is evicted first.
	mu           sync.Mutex
	prepared     map[Fingerprint]*PreparedGraph
	preparedAge  map[Fingerprint]uint64
	preparedTick uint64
}

// NewEngine returns an Engine solving with the given options (nil means
// defaults). The options are captured by value at construction.
func NewEngine(opts *Options) *Engine {
	e := &Engine{}
	if opts != nil {
		e.opts = *opts
	}
	return e
}

// ctx checks a scratch context out of the pool.
func (e *Engine) ctx() *scratch.Context {
	if c, ok := e.pool.Get().(*scratch.Context); ok {
		return c
	}
	return scratch.New()
}

// config layers per-solve options over the engine's base Options. The base
// is copied by value, so a SolveOption can never mutate the engine.
func (e *Engine) config(opts []SolveOption) *solveConfig {
	cfg := &solveConfig{Options: e.opts}
	for _, o := range opts {
		if o != nil {
			o(cfg)
		}
	}
	return cfg
}

// MaximalMatchingCtx computes a maximal matching of g deterministically
// (Theorem 1), scoped to ctx and with any per-solve option overrides layered
// over the engine's base Options. The result is verified maximal before
// returning and never aliases engine memory.
//
// Cancellation: the solve polls ctx only at round boundaries and between
// seed batches of the conditional-expectations searches — never inside a
// computation — so a solve that completes is bit-identical to an
// uncancellable one, and abandoning a request costs at most one round of
// residual work. A canceled solve returns an error matching both
// ErrCanceled and the context's cause (context.Canceled or
// context.DeadlineExceeded) under errors.Is; its scratch context is still
// reset and re-pooled, so the engine stays warm and allocation-flat for
// subsequent solves.
func (e *Engine) MaximalMatchingCtx(ctx context.Context, g *Graph, opts ...SolveOption) (*MatchingResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if ctx.Err() != nil {
		return nil, canceledError(ctx)
	}
	sc := e.ctx()
	out, err := solveMatching(ctx, sc, g, e.config(opts))
	// On panic the context is abandoned rather than re-pooled; on
	// cancellation the solver left it Reset, so re-pooling is safe.
	e.pool.Put(sc)
	return out, err
}

// MaximalIndependentSetCtx computes an MIS of g deterministically
// (Theorem 1), scoped to ctx and with per-solve option overrides. The
// cancellation and override semantics are those of MaximalMatchingCtx.
func (e *Engine) MaximalIndependentSetCtx(ctx context.Context, g *Graph, opts ...SolveOption) (*MISResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if ctx.Err() != nil {
		return nil, canceledError(ctx)
	}
	sc := e.ctx()
	out, err := solveMIS(ctx, sc, g, e.config(opts))
	e.pool.Put(sc)
	return out, err
}

// MaximalMatching computes a maximal matching of g deterministically
// (Theorem 1), reusing the engine's pooled solve state. It is
// MaximalMatchingCtx with context.Background() and no overrides.
func (e *Engine) MaximalMatching(g *Graph) (*MatchingResult, error) {
	return e.MaximalMatchingCtx(context.Background(), g)
}

// MaximalIndependentSet computes an MIS of g deterministically (Theorem 1),
// reusing the engine's pooled solve state. It is MaximalIndependentSetCtx
// with context.Background() and no overrides.
func (e *Engine) MaximalIndependentSet(g *Graph) (*MISResult, error) {
	return e.MaximalIndependentSetCtx(context.Background(), g)
}

// MaximalMatching computes a maximal matching of g deterministically
// (Theorem 1). opts may be nil for defaults. The result is verified
// maximal before returning.
//
// It is a convenience wrapper equivalent to a one-shot Engine solve;
// callers issuing repeated solves should hold an Engine to reuse its
// pooled state (and its Ctx variants for request scoping).
func MaximalMatching(g *Graph, opts *Options) (*MatchingResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return solveMatching(context.Background(), scratch.New(), g, oneShotConfig(opts))
}

// MaximalIndependentSet computes an MIS of g deterministically (Theorem 1).
// opts may be nil for defaults. The result is verified maximal before
// returning.
//
// It is a convenience wrapper equivalent to a one-shot Engine solve;
// callers issuing repeated solves should hold an Engine to reuse its
// pooled state (and its Ctx variants for request scoping).
func MaximalIndependentSet(g *Graph, opts *Options) (*MISResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return solveMIS(context.Background(), scratch.New(), g, oneShotConfig(opts))
}

// oneShotConfig adapts the free functions' *Options to the request-scoped
// configuration (nil means defaults, exactly as before).
func oneShotConfig(opts *Options) *solveConfig {
	cfg := &solveConfig{}
	if opts != nil {
		cfg.Options = *opts
	}
	return cfg
}

// resolve computes the per-solve parameterisation: core params (including
// the request's cancellation hook and observer), optional cost model and the
// concrete strategy for g.
func resolve(ctx context.Context, g *Graph, cfg *solveConfig) (core.Params, *simcost.Model, Strategy, error) {
	opts := &cfg.Options
	p := opts.params()
	if done := ctx.Done(); done != nil {
		p.Done = func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
	}
	if cfg.observer != nil {
		p.Observe = cfg.observer.OnRound
	}
	var model *simcost.Model
	if opts.trackCosts() {
		model = simcost.New(g.N(), g.M(), p.Epsilon)
	}
	strat := opts.strategy()
	if strat == StrategyAuto {
		if lowdeg.Suitable(g, p, model) {
			strat = StrategyLowDegree
		} else {
			strat = StrategySparsify
		}
	}
	switch strat {
	case StrategyLowDegree, StrategySparsify:
		return p, model, strat, nil
	default:
		return p, model, strat, &UnknownStrategyError{Strategy: strat}
	}
}

func solveMatching(ctx context.Context, sc *scratch.Context, g *Graph, cfg *solveConfig) (*MatchingResult, error) {
	p, model, strat, err := resolve(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	var out *MatchingResult
	canceled := false
	switch strat {
	case StrategyLowDegree:
		res := lowdeg.MaximalMatchingIn(sc, g, p, model)
		canceled = res.MIS.Canceled
		out = &MatchingResult{Edges: res.Matching, Iterations: len(res.MIS.Phases), Strategy: strat}
	case StrategySparsify:
		res := matching.DeterministicIn(sc, g, p, model)
		canceled = res.Canceled
		out = &MatchingResult{Edges: res.Matching, Iterations: len(res.Iterations), Strategy: strat}
	}
	if canceled {
		// The partial matching is discarded: a canceled solve has no result.
		return nil, canceledError(ctx)
	}
	if ok, reason := check.IsMaximalMatching(g, out.Edges); !ok {
		return nil, &NotMaximalError{Algorithm: "matching", Reason: reason}
	}
	out.Costs = report(model)
	return out, nil
}

func solveMIS(ctx context.Context, sc *scratch.Context, g *Graph, cfg *solveConfig) (*MISResult, error) {
	p, model, strat, err := resolve(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	var out *MISResult
	canceled := false
	switch strat {
	case StrategyLowDegree:
		res := lowdeg.MISIn(sc, g, p, model)
		canceled = res.Canceled
		out = &MISResult{Nodes: res.IndependentSet, Iterations: len(res.Phases), Strategy: strat}
	case StrategySparsify:
		res := mis.DeterministicIn(sc, g, p, model)
		canceled = res.Canceled
		out = &MISResult{Nodes: res.IndependentSet, Iterations: len(res.Iterations), Strategy: strat}
	}
	if canceled {
		return nil, canceledError(ctx)
	}
	if ok, reason := check.IsMaximalIS(g, out.Nodes); !ok {
		return nil, &NotMaximalError{Algorithm: "mis", Reason: reason}
	}
	out.Costs = report(model)
	return out, nil
}
