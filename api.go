package repro

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/lowdeg"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/scratch"
	"repro/internal/simcost"
)

// Graph is an immutable undirected graph in CSR form (node ids dense in
// [0, N)). Construct with NewBuilder or FromEdges.
type Graph = graph.Graph

// Edge is an undirected edge; the canonical form has U < V.
type Edge = graph.Edge

// NodeID identifies a node.
type NodeID = graph.NodeID

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n nodes from an edge list (duplicates and
// self loops are dropped).
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Generate builds a named synthetic workload ("gnm", "gnp", "powerlaw",
// "regular", "grid", "complete", "star", "path", "cycle", "tree",
// "caterpillar", "bipartite") with roughly n nodes and the given average
// degree, deterministically from seed.
func Generate(family string, n, avgDeg int, seed uint64) (*Graph, error) {
	return gen.ByName(family, n, avgDeg, seed)
}

// Strategy selects which of the paper's algorithms to run.
type Strategy string

const (
	// StrategyAuto dispatches per Theorem 1: the Section 5 low-degree path
	// when Δ⁴ fits the machine budget, otherwise the sparsification path.
	StrategyAuto Strategy = "auto"
	// StrategySparsify forces the Section 3/4 O(log n) algorithms.
	StrategySparsify Strategy = "sparsify"
	// StrategyLowDegree forces the Section 5 O(log Δ + log log n)
	// algorithm (correct for any input; space violations are recorded when
	// Δ is too large for the regime).
	StrategyLowDegree Strategy = "lowdeg"
)

// Options configure the algorithms. The zero value (and nil) mean: ε = 0.5,
// the paper's δ = ε/8 coupling, slack 4, half-expectation thresholds,
// automatic strategy, cost tracking on.
type Options struct {
	// Epsilon is the per-machine space exponent (S = Θ(n^ε)), in (0, 1].
	Epsilon float64
	// Slack relaxes the asymptotic concentration constants (DESIGN.md
	// substitution 4). Must be positive.
	Slack float64
	// ThresholdFrac is the fraction of each proven expectation bound the
	// deterministic seed search must reach, in (0, 1].
	ThresholdFrac float64
	// Strategy picks the algorithm; default StrategyAuto.
	Strategy Strategy
	// SkipCostTracking disables the MPC round/space cost model (the result
	// then has a nil CostReport). Tracking is on by default; its overhead
	// is negligible.
	SkipCostTracking bool
	// Parallelism is the host-side worker count for the shared execution
	// pool (internal/parallel): seed-search batches, per-vertex scans, and
	// graph rebuilds all shard across it. 0 (the default) means one worker
	// per logical CPU (GOMAXPROCS); 1 forces serial execution; larger
	// values pin an explicit worker count. Results are bit-identical at
	// every setting — the determinism contract, enforced by the
	// worker-count-independence tests run under -race in CI — so this knob
	// trades only wall-clock time, never output.
	Parallelism int
	// Serial disables host parallelism entirely; it is a legacy alias for
	// Parallelism: 1 and takes precedence over Parallelism when set.
	Serial bool
}

func (o *Options) params() core.Params {
	p := core.DefaultParams()
	if o == nil {
		return p
	}
	if o.Epsilon != 0 {
		p = p.WithEpsilon(o.Epsilon)
	}
	if o.Slack != 0 {
		p.Slack = o.Slack
	}
	if o.ThresholdFrac != 0 {
		p.ThresholdFrac = o.ThresholdFrac
	}
	// Serial/Parallelism precedence is decided in exactly one place
	// (core.EffectiveParallelism); everything below this call sees only
	// Params.Parallelism.
	p.Parallelism = core.EffectiveParallelism(o.Serial, o.Parallelism)
	return p
}

func (o *Options) strategy() Strategy {
	if o == nil || o.Strategy == "" {
		return StrategyAuto
	}
	return o.Strategy
}

func (o *Options) trackCosts() bool {
	return o == nil || !o.SkipCostTracking
}

// CostReport summarises the MPC execution costs of a run under the paper's
// accounting (see internal/simcost and DESIGN.md).
type CostReport struct {
	Rounds           int
	Machines         int
	SpacePerMachine  int
	PeakMachineWords int
	SeedBatches      int
	Violations       []string
}

func report(m *simcost.Model) *CostReport {
	if m == nil {
		return nil
	}
	st := m.Stats()
	return &CostReport{
		Rounds:           st.Rounds,
		Machines:         st.Machines,
		SpacePerMachine:  st.S,
		PeakMachineWords: st.PeakMachineWords,
		SeedBatches:      st.SeedBatches,
		Violations:       st.Violations,
	}
}

// MatchingResult is the output of MaximalMatching.
type MatchingResult struct {
	Edges      []Edge
	Iterations int
	Strategy   Strategy
	Costs      *CostReport
}

// MISResult is the output of MaximalIndependentSet.
type MISResult struct {
	Nodes      []NodeID
	Iterations int
	Strategy   Strategy
	Costs      *CostReport
}

// ErrNilGraph is returned when the input graph is nil.
var ErrNilGraph = errors.New("repro: nil graph")

// Engine is a reusable solver for the deterministic algorithms. It owns a
// pool of per-solve scratch contexts (arena-backed masks, tables and CSR
// double-buffers, see internal/scratch), so repeated solves on a warm
// Engine reuse the buffers of earlier ones instead of reallocating the
// working set every round — the first solve pays the full allocation bill,
// later solves of similar or smaller size run allocation-flat.
//
// An Engine is safe for concurrent use: each in-flight solve checks a
// private context out of the pool, so a server can share one Engine across
// request goroutines (that is the intended lifecycle — construct once,
// reuse for all traffic of a given Options). The determinism contract is
// unchanged: results are bit-identical to the free functions at every
// Parallelism setting, whether the engine is cold, warm, or shared.
//
// The zero value is an Engine with default Options.
type Engine struct {
	opts Options
	pool sync.Pool
}

// NewEngine returns an Engine solving with the given options (nil means
// defaults). The options are captured by value at construction.
func NewEngine(opts *Options) *Engine {
	e := &Engine{}
	if opts != nil {
		e.opts = *opts
	}
	return e
}

// ctx checks a scratch context out of the pool.
func (e *Engine) ctx() *scratch.Context {
	if c, ok := e.pool.Get().(*scratch.Context); ok {
		return c
	}
	return scratch.New()
}

// MaximalMatching computes a maximal matching of g deterministically
// (Theorem 1), reusing the engine's pooled solve state. The result is
// verified maximal before returning and never aliases engine memory.
func (e *Engine) MaximalMatching(g *Graph) (*MatchingResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	sc := e.ctx()
	out, err := solveMatching(sc, g, &e.opts)
	// On panic the context is abandoned rather than re-pooled.
	e.pool.Put(sc)
	return out, err
}

// MaximalIndependentSet computes an MIS of g deterministically (Theorem 1),
// reusing the engine's pooled solve state. The result is verified maximal
// before returning and never aliases engine memory.
func (e *Engine) MaximalIndependentSet(g *Graph) (*MISResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	sc := e.ctx()
	out, err := solveMIS(sc, g, &e.opts)
	e.pool.Put(sc)
	return out, err
}

// MaximalMatching computes a maximal matching of g deterministically
// (Theorem 1). opts may be nil for defaults. The result is verified
// maximal before returning.
//
// It is a convenience wrapper equivalent to a one-shot Engine solve;
// callers issuing repeated solves should hold an Engine to reuse its
// pooled state.
func MaximalMatching(g *Graph, opts *Options) (*MatchingResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return solveMatching(scratch.New(), g, opts)
}

// MaximalIndependentSet computes an MIS of g deterministically (Theorem 1).
// opts may be nil for defaults. The result is verified maximal before
// returning.
//
// It is a convenience wrapper equivalent to a one-shot Engine solve;
// callers issuing repeated solves should hold an Engine to reuse its
// pooled state.
func MaximalIndependentSet(g *Graph, opts *Options) (*MISResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return solveMIS(scratch.New(), g, opts)
}

// resolve computes the per-solve parameterisation: core params, optional
// cost model and the concrete strategy for g.
func resolve(g *Graph, opts *Options) (core.Params, *simcost.Model, Strategy, error) {
	p := opts.params()
	var model *simcost.Model
	if opts.trackCosts() {
		model = simcost.New(g.N(), g.M(), p.Epsilon)
	}
	strat := opts.strategy()
	if strat == StrategyAuto {
		if lowdeg.Suitable(g, p, model) {
			strat = StrategyLowDegree
		} else {
			strat = StrategySparsify
		}
	}
	switch strat {
	case StrategyLowDegree, StrategySparsify:
		return p, model, strat, nil
	default:
		return p, model, strat, fmt.Errorf("repro: unknown strategy %q", strat)
	}
}

func solveMatching(sc *scratch.Context, g *Graph, opts *Options) (*MatchingResult, error) {
	p, model, strat, err := resolve(g, opts)
	if err != nil {
		return nil, err
	}
	var out *MatchingResult
	switch strat {
	case StrategyLowDegree:
		res := lowdeg.MaximalMatchingIn(sc, g, p, model)
		out = &MatchingResult{Edges: res.Matching, Iterations: len(res.MIS.Phases), Strategy: strat}
	case StrategySparsify:
		res := matching.DeterministicIn(sc, g, p, model)
		out = &MatchingResult{Edges: res.Matching, Iterations: len(res.Iterations), Strategy: strat}
	}
	if ok, reason := check.IsMaximalMatching(g, out.Edges); !ok {
		return nil, fmt.Errorf("repro: internal error, output not maximal: %s", reason)
	}
	out.Costs = report(model)
	return out, nil
}

func solveMIS(sc *scratch.Context, g *Graph, opts *Options) (*MISResult, error) {
	p, model, strat, err := resolve(g, opts)
	if err != nil {
		return nil, err
	}
	var out *MISResult
	switch strat {
	case StrategyLowDegree:
		res := lowdeg.MISIn(sc, g, p, model)
		out = &MISResult{Nodes: res.IndependentSet, Iterations: len(res.Phases), Strategy: strat}
	case StrategySparsify:
		res := mis.DeterministicIn(sc, g, p, model)
		out = &MISResult{Nodes: res.IndependentSet, Iterations: len(res.Iterations), Strategy: strat}
	}
	if ok, reason := check.IsMaximalIS(g, out.Nodes); !ok {
		return nil, fmt.Errorf("repro: internal error, output not maximal: %s", reason)
	}
	out.Costs = report(model)
	return out, nil
}
