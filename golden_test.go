package repro

// Golden-output regression corpus: the exact outputs of the deterministic
// solvers — solution sets AND the per-round seed-search trajectory (seeds
// tried, threshold met, objective value) — are committed under
// testdata/golden/ per graph family and strategy, alongside the randomized
// luby baselines under a pinned detrand seed. Every algorithmic change that
// moves any output bit then shows up as a reviewable diff to these files
// instead of silent drift; speed-only changes (the epoch-stamped selections,
// the incident-count lowdeg objective, kernel sharding) must leave them
// untouched, while deliberate stream changes (the baselines' switch to
// selection-field z draws) regenerate exactly the luby fields. Regenerate
// deliberately with:
//
//	go test -run TestGoldenOutputs -update .
//
// The workloads are small on purpose: the corpus is a drift tripwire, not a
// stress test, and the committed files stay reviewable.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/lowdeg"
	"repro/internal/luby"
	"repro/internal/matching"
	"repro/internal/mis"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden expectations from the current outputs")

// goldenSearch records one seed search: enough to pin WHICH seed the
// derandomization settled on (the search is deterministic, so the
// enumeration index plus the objective value identifies it) without
// committing raw seed vectors that churn with the field size.
type goldenSearch struct {
	SeedsTried int   `json:"seeds_tried"`
	SeedFound  bool  `json:"seed_found"`
	Objective  int64 `json:"objective,omitempty"`
}

type goldenFile struct {
	Family   string `json:"family"`
	N        int    `json:"n"`
	AvgDeg   int    `json:"avg_deg"`
	GenSeed  uint64 `json:"gen_seed"`
	Strategy string `json:"strategy"`

	MatchingEdges    [][2]int32     `json:"matching_edges"`
	MatchingSearches []goldenSearch `json:"matching_searches"`
	MISNodes         []int32        `json:"mis_nodes"`
	MISSearches      []goldenSearch `json:"mis_searches"`

	// Randomized baselines under detrand.New(GenSeed), MIS drawn first and
	// the matching continuing the same stream. Strategy-independent (both
	// strategy files of a family carry identical copies); they pin the
	// baselines' z-draw stream, so e.g. moving the draws from full 64-bit
	// words to the selection field [p) is a deliberate, reviewed diff here.
	LubyMISNodes       []int32    `json:"luby_mis_nodes"`
	LubyMISRounds      int        `json:"luby_mis_rounds"`
	LubyMatchingEdges  [][2]int32 `json:"luby_matching_edges"`
	LubyMatchingRounds int        `json:"luby_matching_rounds"`
}

var goldenWorkloads = []struct {
	family string
	n, avg int
	seed   uint64
}{
	{"gnm", 256, 8, 1},
	{"powerlaw", 256, 6, 3},
	{"regular", 192, 6, 5},
	{"grid", 196, 4, 2},
}

func goldenRun(t *testing.T, family string, n, avg int, seed uint64, strat Strategy) *goldenFile {
	t.Helper()
	g, err := Generate(family, n, avg, seed)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Parallelism = 1 // the determinism contract makes any level identical; 1 keeps runs cheap
	gf := &goldenFile{Family: family, N: n, AvgDeg: avg, GenSeed: seed, Strategy: string(strat)}
	record := func(edges []graph.Edge, nodes []graph.NodeID, mmS, misS []goldenSearch) {
		gf.MatchingEdges = make([][2]int32, len(edges))
		for i, e := range edges {
			gf.MatchingEdges[i] = [2]int32{int32(e.U), int32(e.V)}
		}
		gf.MISNodes = make([]int32, len(nodes))
		for i, v := range nodes {
			gf.MISNodes[i] = int32(v)
		}
		gf.MatchingSearches = mmS
		gf.MISSearches = misS
	}
	switch strat {
	case StrategySparsify:
		mm := matching.Deterministic(g, p, nil)
		is := mis.Deterministic(g, p, nil)
		var mmS, isS []goldenSearch
		for _, it := range mm.Iterations {
			mmS = append(mmS, goldenSearch{SeedsTried: it.SeedsTried, SeedFound: it.SeedFound, Objective: it.ObjectiveValue})
		}
		for _, it := range is.Iterations {
			isS = append(isS, goldenSearch{SeedsTried: it.SeedsTried, SeedFound: it.SeedFound, Objective: it.ObjectiveValue})
		}
		record(mm.Matching, is.IndependentSet, mmS, isS)
	case StrategyLowDegree:
		mm := lowdeg.MaximalMatching(g, p, nil)
		is := lowdeg.MIS(g, p, nil)
		var mmS, isS []goldenSearch
		for _, ph := range mm.MIS.Phases {
			mmS = append(mmS, goldenSearch{SeedsTried: ph.SeedsTried, SeedFound: ph.SeedFound})
		}
		for _, ph := range is.Phases {
			isS = append(isS, goldenSearch{SeedsTried: ph.SeedsTried, SeedFound: ph.SeedFound})
		}
		record(mm.Matching, is.IndependentSet, mmS, isS)
	default:
		t.Fatalf("golden: unhandled strategy %q", strat)
	}
	src := detrand.New(seed)
	lubyMIS := luby.MIS(g, src)
	lubyMM := luby.MaximalMatching(g, src)
	luby.Verify(g, lubyMIS.IndependentSet, lubyMM.Matching)
	gf.LubyMISNodes = make([]int32, len(lubyMIS.IndependentSet))
	for i, v := range lubyMIS.IndependentSet {
		gf.LubyMISNodes[i] = int32(v)
	}
	gf.LubyMISRounds = len(lubyMIS.Rounds)
	gf.LubyMatchingEdges = make([][2]int32, len(lubyMM.Matching))
	for i, e := range lubyMM.Matching {
		gf.LubyMatchingEdges[i] = [2]int32{int32(e.U), int32(e.V)}
	}
	gf.LubyMatchingRounds = len(lubyMM.Rounds)
	return gf
}

func TestGoldenOutputs(t *testing.T) {
	for _, w := range goldenWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			name := w.family + "_" + string(strat)
			t.Run(name, func(t *testing.T) {
				got := goldenRun(t, w.family, w.n, w.avg, w.seed, strat)
				raw, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				raw = append(raw, '\n')
				path := filepath.Join("testdata", "golden", name+".json")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, raw, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run `go test -run TestGoldenOutputs -update .`): %v", err)
				}
				if string(want) != string(raw) {
					var exp goldenFile
					if err := json.Unmarshal(want, &exp); err != nil {
						t.Fatalf("corrupt golden file %s: %v", path, err)
					}
					t.Errorf("%s: output drifted from committed golden file %s\n"+
						"got  %d matching edges / %d MIS nodes / %d+%d searches\n"+
						"want %d matching edges / %d MIS nodes / %d+%d searches\n"+
						"if the change is deliberate, regenerate with -update and review the diff",
						name, path,
						len(got.MatchingEdges), len(got.MISNodes), len(got.MatchingSearches), len(got.MISSearches),
						len(exp.MatchingEdges), len(exp.MISNodes), len(exp.MatchingSearches), len(exp.MISSearches))
				}
			})
		}
	}
}
