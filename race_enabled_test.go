//go:build race

package repro

// raceEnabled reports whether the race detector is active. The allocation
// budgets asserted by the warm-reuse tests are measured without the
// detector; its instrumentation allocates on its own account (≈1.3-1.7x on
// these workloads), so allocation-count assertions are skipped under -race —
// the -race configurations assert determinism and memory safety instead, and
// the budgets are enforced by the non-race `make test` run.
const raceEnabled = true
