package repro

import (
	"context"
	"fmt"
	"strconv"
)

// Fingerprint is a 64-bit content hash of a Graph (FNV-1a over the node
// count and the canonical CSR arrays, see internal/graph). Structurally
// equal graphs fingerprint equal regardless of the edge order they were
// built from, which is what lets a serving layer deduplicate uploads: the
// fingerprint is the wire name of a prepared graph.
type Fingerprint uint64

// String renders the fingerprint as 16 lowercase hex digits, the form the
// serving layer uses on the wire.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// ParseFingerprint parses the hex form produced by Fingerprint.String.
func ParseFingerprint(s string) (Fingerprint, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("repro: bad fingerprint %q: %w", s, err)
	}
	return Fingerprint(v), nil
}

// FingerprintOf computes the content fingerprint of g without preparing it.
// A nil graph fingerprints like the empty graph.
func FingerprintOf(g *Graph) Fingerprint {
	return Fingerprint(g.Fingerprint())
}

// PreparedGraph is a solve-ready handle pairing one parsed CSR graph with
// the Engine that prepared it. Handles are what Engine.Prepare deduplicates:
// preparing the same graph content twice returns the same handle, so many
// requests naming the same graph share one CSR instead of each carrying a
// copy. A PreparedGraph is immutable and safe for concurrent use; its solve
// methods are exactly the engine's Ctx entry points on the underlying graph
// — bit-identical results, same option layering, same cancellation
// semantics.
type PreparedGraph struct {
	eng *Engine
	g   *Graph
	fp  Fingerprint
}

// Graph returns the underlying parsed graph (shared; treat as immutable).
func (pg *PreparedGraph) Graph() *Graph { return pg.g }

// Fingerprint returns the content fingerprint the handle is cached under.
func (pg *PreparedGraph) Fingerprint() Fingerprint { return pg.fp }

// N returns the node count of the prepared graph.
func (pg *PreparedGraph) N() int { return pg.g.N() }

// M returns the undirected edge count of the prepared graph.
func (pg *PreparedGraph) M() int { return pg.g.M() }

// MaximalMatchingCtx solves maximal matching on the prepared graph; it is
// Engine.MaximalMatchingCtx on the handle's graph and engine.
func (pg *PreparedGraph) MaximalMatchingCtx(ctx context.Context, opts ...SolveOption) (*MatchingResult, error) {
	return pg.eng.MaximalMatchingCtx(ctx, pg.g, opts...)
}

// MaximalIndependentSetCtx solves MIS on the prepared graph; it is
// Engine.MaximalIndependentSetCtx on the handle's graph and engine.
func (pg *PreparedGraph) MaximalIndependentSetCtx(ctx context.Context, opts ...SolveOption) (*MISResult, error) {
	return pg.eng.MaximalIndependentSetCtx(ctx, pg.g, opts...)
}

// MaximalMatching is MaximalMatchingCtx with context.Background().
func (pg *PreparedGraph) MaximalMatching(opts ...SolveOption) (*MatchingResult, error) {
	return pg.MaximalMatchingCtx(context.Background(), opts...)
}

// MaximalIndependentSet is MaximalIndependentSetCtx with
// context.Background().
func (pg *PreparedGraph) MaximalIndependentSet(opts ...SolveOption) (*MISResult, error) {
	return pg.MaximalIndependentSetCtx(context.Background(), opts...)
}

// Prepare registers g with the engine and returns its shared handle. The
// first preparation of a given content caches the handle under the graph's
// fingerprint; later Prepare calls with the same content — even a different
// *Graph built from a differently ordered edge list — return the SAME
// handle, dropping the new parse. Fingerprint hits are verified with a full
// structural comparison before sharing, so a 64-bit collision can never
// alias two distinct graphs: the colliding graph gets a private, uncached
// handle instead.
//
// The cache is bounded by Options.PreparedCacheCap (default
// DefaultPreparedCacheCap, negative for unbounded): when an insert would
// exceed the cap, the least-recently-touched entry — oldest by
// Prepare/Prepared access — is evicted to make room, so an unbounded upload
// storm cannot grow the engine without limit. Eviction forgets only the
// shared handle: outstanding handles stay valid, and re-preparing evicted
// content produces a bit-identical cache entry from the new parse.
// DropPrepared remains the manual eviction path. Prepare is safe for
// concurrent use with itself and with solves.
func (e *Engine) Prepare(g *Graph) (*PreparedGraph, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	fp := FingerprintOf(g)
	e.mu.Lock()
	defer e.mu.Unlock()
	if pg, ok := e.prepared[fp]; ok {
		if pg.g.Same(g) {
			e.touchPrepared(fp)
			return pg, nil
		}
		// True 64-bit collision: never share the cached CSR with a
		// different graph. The newcomer solves through a private handle.
		return &PreparedGraph{eng: e, g: g, fp: fp}, nil
	}
	pg := &PreparedGraph{eng: e, g: g, fp: fp}
	if e.prepared == nil {
		e.prepared = make(map[Fingerprint]*PreparedGraph)
		e.preparedAge = make(map[Fingerprint]uint64)
	}
	if cap := e.preparedCap(); cap >= 0 {
		for len(e.prepared) >= cap {
			if !e.evictOldestPrepared() {
				break
			}
		}
	}
	e.prepared[fp] = pg
	e.touchPrepared(fp)
	return pg, nil
}

// preparedCap resolves Options.PreparedCacheCap: 0 → default, negative →
// unbounded (reported as -1), and a floor of 1 so a tiny positive cap still
// caches the newest entry.
func (e *Engine) preparedCap() int {
	c := e.opts.PreparedCacheCap
	switch {
	case c < 0:
		return -1
	case c == 0:
		return DefaultPreparedCacheCap
	default:
		return c
	}
}

// touchPrepared stamps fp with the next age tick. Caller holds e.mu.
func (e *Engine) touchPrepared(fp Fingerprint) {
	e.preparedTick++
	e.preparedAge[fp] = e.preparedTick
}

// evictOldestPrepared removes the entry with the smallest age tick,
// reporting whether one existed. The map scan is O(cache size), which the
// cap itself keeps small — no heap needed. Caller holds e.mu.
func (e *Engine) evictOldestPrepared() bool {
	var (
		oldest Fingerprint
		best   uint64
		found  bool
	)
	for fp, age := range e.preparedAge {
		if !found || age < best {
			oldest, best, found = fp, age, true
		}
	}
	if !found {
		return false
	}
	delete(e.prepared, oldest)
	delete(e.preparedAge, oldest)
	return true
}

// Prepared returns the cached handle for fp, if any. It is the lookup a
// serving layer uses to resolve solve-by-fingerprint requests; a hit
// refreshes the entry's LRU age, so graphs that keep serving traffic are
// the last to be evicted.
func (e *Engine) Prepared(fp Fingerprint) (*PreparedGraph, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pg, ok := e.prepared[fp]
	if ok {
		e.touchPrepared(fp)
	}
	return pg, ok
}

// DropPrepared evicts the cached handle for fp, reporting whether one was
// cached. Outstanding handles stay valid — eviction only stops future
// Prepare/Prepared calls from sharing them.
func (e *Engine) DropPrepared(fp Fingerprint) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.prepared[fp]; !ok {
		return false
	}
	delete(e.prepared, fp)
	delete(e.preparedAge, fp)
	return true
}

// PreparedCount returns the number of cached prepared graphs.
func (e *Engine) PreparedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.prepared)
}
