# Local developer entry points, kept in lockstep with .github/workflows/ci.yml:
# `make ci` runs exactly what CI runs, so a green local `make ci` means a
# green pipeline.

GO ?= go
BENCH_PATTERN ?= .
BENCH_OUT ?= BENCH_results.json
# bench-save: one iteration per benchmark by default — the heavy pipeline
# benchmarks run 1-15 s per op, so 1x keeps a full baseline run under a
# minute while still timing every real computation. Raise for quieter
# numbers on a dedicated box (e.g. make bench-save BENCH_TIME=2s).
BENCH_TIME ?= 1x
BENCH_DATE := $(shell date +%F)
# latest-baseline picks the newest committed baseline matching a glob:
# names sort chronologically under LC_ALL=C (locale collation would order
# same-day letter suffixes before the bare date and silently pick a stale
# baseline). Shared by BENCH_BASELINE and LOADGEN_BASELINE so the two
# compare paths cannot drift apart.
latest-baseline = $(shell ls $(1) 2>/dev/null | LC_ALL=C sort | tail -1)
# The committed baseline the compare step diffs against: the latest
# BENCH_<date>*.json at the repo root.
BENCH_BASELINE ?= $(call latest-baseline,BENCH_2*.json)
# Benchmarks whose ns/op regression beyond 20% draws a warning (never a
# failure): the seed-search kernel, its isolated edge- and node-side
# selection scans and blocked hash term, and the warm-Engine reuse pairs.
BENCH_WARN ?= BenchmarkT7_SeedSearch|BenchmarkT7_SelectionScan|BenchmarkT7_NodeSelectionScan|BenchmarkLocalMinNodesSel|BenchmarkEvalSeedsBlocked|BenchmarkEngineReuse
# Repetitions per benchmark for bench-smoke/bench-save: benchjson -median
# collapses the runs into per-benchmark medians, so one noisy-runner outlier
# out of three no longer reads as a regression in bench-compare.
BENCH_COUNT ?= 3

.PHONY: build build-cmds build-cross test race race-engine bench bench-smoke bench-save bench-compare serve-smoke serve-compare profile clean fmt fmt-check vet lint audit ci

# serve-smoke knobs: where detservd listens and where loadgen writes its
# latency quantiles (archived as a CI artifact next to $(BENCH_OUT)).
SERVE_ADDR ?= 127.0.0.1:17317
LOADGEN_OUT ?= LOADGEN_results.json
# The committed serving baseline serve-compare diffs against: the latest
# LOADGEN_<date>*.json at the repo root (via the same latest-baseline
# helper as BENCH_BASELINE).
LOADGEN_BASELINE ?= $(call latest-baseline,LOADGEN_2*.json)
# Every loadgen quantile warns on regression — total-latency p50/p99 and
# the streaming time-to-first-round (ttfr) cells alike.
LOADGEN_WARN ?= ^Loadgen

build:
	$(GO) build ./...

# Every runnable entry point, explicitly: the CLI commands and the example
# programs. They live in the root module so `make build` compiles them today,
# but this target pins the invariant — if an example ever gains a build tag
# or moves into its own module, CI still builds every main package instead of
# silently drifting.
build-cmds:
	$(GO) build ./cmd/...
	$(GO) build ./examples/...

# Cross-compile check: the hash kernel has a GOARCH-gated assembly path
# (amd64 AVX2) with a pure-Go fallback, so both the asm-bearing and the
# fallback-only builds must compile. arm64 exercises the generic path's
# build tags without needing arm64 hardware.
build-cross:
	GOARCH=amd64 $(GO) build ./...
	GOARCH=arm64 $(GO) build ./...

# Fast feedback: full suite without the race detector.
test:
	$(GO) test ./...

# What CI runs: the full suite under the race detector. The
# worker-count-independence tests (parallel_determinism_test.go) only prove
# the determinism contract when scheduling is adversarial, so -race is the
# configuration that counts.
race:
	$(GO) test -race -timeout 45m ./...

# The warm-Engine determinism tables in isolation, plus the cross-path
# equivalence tables (epoch-stamped vs scalar objectives in lowdeg, sharded
# vs serial EvalKeys) and the request-scoped API tables (cancellation at
# every Parallelism level against a shared engine, per-solve override
# equivalence, observer-stream determinism): worker-count independence of a
# REUSED engine (dirty scratch buffers, pooled contexts) under the race
# detector. Part of `make race` too; this target mirrors the dedicated CI
# job so an engine-reuse, equivalence or cancellation regression is
# attributable at a glance. The serve package rides along: its tests
# byte-compare served responses against direct Engine solves under
# concurrent mixed load, which is the same contract one layer up.
race-engine:
	$(GO) test -race -timeout 30m -run 'TestEngineReuseWorkerCountIndependence|TestEngineConcurrentSolves|TestHashKernelMatchesScalarPath|TestBlockedKernelMatchesScalarPath|TestLowDegObjectiveKernelVsScalar|TestEvalKeysShardedMatchesSerial|TestEngineCancellationWorkerCountTable|TestEngineCancellationMidSolve|TestSolveOptionOverrideEquivalence|TestObserverDeterministicAcrossParallelism|TestObserverSeedBatchEvents|TestPreparedSolveEquivalence' .
	$(GO) test -race -timeout 30m ./internal/serve/
	$(GO) test -race -timeout 30m -run 'TestLocalMinEdgesSelBranchEquivalence|TestLocalMinNodesSelBranchEquivalence|TestNodeFoldBlockedScatter|TestEdgeFoldMatchesLocalMinEdgesSel|TestEvalSeedsBlockedFoldMatchesBlocked|TestEvalSeedsBlockedMatchesEvalKeys|FuzzLocalMinNodesFoldMatchesSel|FuzzEdgeFoldMatchesLocalMinEdgesSel|FuzzEvalSeedsBlockedFoldMatchesBlocked|FuzzEvalSeedsBlockedMatchesEvalKeys' ./internal/core/ ./internal/hashfam/

# Full benchmark run (minutes); BENCH_PATTERN narrows it.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run '^$$' .

# One iteration per benchmark, repeated BENCH_COUNT times and collapsed to
# per-benchmark medians: compiles and exercises every benchmark body, emits
# $(BENCH_OUT) via cmd/benchjson -median. Runs with -benchmem so the archived
# JSON carries B/op + allocs/op and the allocation trajectory can be diffed
# across commits alongside ns/op.
bench-smoke:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime 1x -count $(BENCH_COUNT) -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -median -o $(BENCH_OUT)

# Archive a dated benchmark baseline at the repo root: the full suite through
# cmd/benchjson into BENCH_<date>.json. Commit the file so the performance
# trajectory is diffable across PRs (bench-compare reads the latest one).
# Refuses to clobber an existing baseline for the same date — a committed
# baseline is a historical record; overwrite deliberately by removing the
# file, or pass BENCH_DATE=<date>a for a second run on one day (a letter
# suffix sorts after the bare date under LC_ALL=C, so bench-compare picks
# the newer file; a '-2' suffix would sort before it and go stale).
bench-save:
	@if [ -e BENCH_$(BENCH_DATE).json ]; then \
		echo "bench-save: BENCH_$(BENCH_DATE).json already exists; refusing to overwrite a committed baseline."; \
		echo "bench-save: remove it first, or rerun with BENCH_DATE=$(BENCH_DATE)a (a letter suffix keeps the name sorting after the original, so bench-compare picks it up)."; \
		exit 1; \
	fi
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -median -o BENCH_$(BENCH_DATE).json

# End-to-end serving smoke: build detservd and loadgen, start the server
# (log to .tmp-detservd.log), drive a short mixed profile at two
# concurrency levels — matching and MIS, a quarter of each problem forced
# onto the sparsify strategy (the long solves), and half of every cell
# through the NDJSON streaming path, which adds time-to-first-round
# (ttfr_p50/ttfr_p99) quantiles — and write $(LOADGEN_OUT) in the
# benchjson schema (diff with `make serve-compare`). The server is always
# torn down, and the loadgen exit status (nonzero when any (cell,
# concurrency) bucket had zero successes) is propagated. Binaries are
# built inside the repo and removed afterwards.
serve-smoke:
	$(GO) build -o .tmp-detservd ./cmd/detservd
	$(GO) build -o .tmp-loadgen ./cmd/loadgen
	@./.tmp-detservd -addr $(SERVE_ADDR) -engines 2 > .tmp-detservd.log 2>&1 & echo $$! > .tmp-detservd.pid; \
	./.tmp-loadgen -addr http://$(SERVE_ADDR) -wait 30s \
		-requests 32 -concurrency 1,4 -mix 0.5 -sparsify 0.25 -stream 0.5 \
		-n 1024 -graphs 2 -out $(LOADGEN_OUT); \
	status=$$?; \
	kill $$(cat .tmp-detservd.pid) 2>/dev/null; \
	rm -f .tmp-detservd .tmp-loadgen .tmp-detservd.pid; \
	exit $$status

# Diff a bench-smoke result ($(BENCH_OUT)) against the committed baseline,
# warning — never failing — on >20% ns/op regressions in $(BENCH_WARN).
# Run `make bench-smoke` (or CI's bench-smoke job) first.
bench-compare:
	@if [ -z "$(BENCH_BASELINE)" ]; then echo "bench-compare: no committed BENCH_*.json baseline"; exit 1; fi
	@echo "bench-compare: diffing $(BENCH_OUT) against baseline $(BENCH_BASELINE)"
	$(GO) run ./cmd/benchjson -input $(BENCH_OUT) -compare $(BENCH_BASELINE) -warn '$(BENCH_WARN)' -warn-pct 20

# Diff a serve-smoke result ($(LOADGEN_OUT)) against the committed
# LOADGEN_<date>.json baseline, warning — never failing — on >25% latency
# regressions in any loadgen quantile: total p50/p99 and the streaming
# ttfr cells get the same treatment ns/op gets in bench-compare. The
# threshold is looser than bench-compare's because end-to-end HTTP
# latencies on shared runners are noisier than in-process benchmarks.
# Run `make serve-smoke` first.
serve-compare:
	@if [ -z "$(LOADGEN_BASELINE)" ]; then echo "serve-compare: no committed LOADGEN_*.json baseline"; exit 1; fi
	@echo "serve-compare: diffing $(LOADGEN_OUT) against baseline $(LOADGEN_BASELINE)"
	$(GO) run ./cmd/benchjson -input $(LOADGEN_OUT) -compare $(LOADGEN_BASELINE) -warn '$(LOADGEN_WARN)' -warn-pct 25

# CPU profiles of the three selection-bound pipelines (T2 MIS, T5 lowdeg
# stages, T7 seed-search terms) into the git-ignored profiles/ directory,
# ready for `go tool pprof profiles/<name>.pprof`. CI archives the directory
# as an artifact so a perf regression surfaced by bench-compare comes with
# the profile that explains it. The test binary lands in profiles/ too (pprof
# wants it for symbolization).
profile:
	mkdir -p profiles
	$(GO) test -bench 'BenchmarkT2_MISRounds' -benchtime 3x -benchmem -run '^$$' -cpuprofile profiles/t2_mis.pprof -o profiles/repro.test .
	$(GO) test -bench 'BenchmarkT5_LowDegreeStages' -benchtime 3x -benchmem -run '^$$' -cpuprofile profiles/t5_lowdeg.pprof -o profiles/repro.test .
	$(GO) test -bench 'BenchmarkT7_SeedSearch|BenchmarkT7_SelectionScan|BenchmarkT7_NodeSelectionScan' -benchtime 100x -benchmem -run '^$$' -cpuprofile profiles/t7_seedsearch.pprof -o profiles/repro.test .

# Remove build and smoke leftovers: stray compiled test binaries (go test -c
# and aborted -cpuprofile runs drop *.test at the repo root), the serve-smoke
# scratch binaries, pidfile, and server log, the uncommitted bench/loadgen
# result JSONs,
# and the profiles/ directory. Committed BENCH_<date>.json baselines are
# untouched. Runs as the `make ci` teardown; CI jobs upload their artifacts
# from their own steps before this would matter.
clean:
	rm -f *.test .tmp-detservd .tmp-loadgen .tmp-detservd.pid .tmp-detservd.log .tmp-detlint $(BENCH_OUT) $(LOADGEN_OUT)
	rm -rf profiles

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# detlint: the in-tree analyzer suite (cmd/detlint, internal/lint)
# mechanically enforcing the determinism and allocation contracts —
# no raw goroutines or map-range iteration in solver packages, no
# math/rand / wall clock / environment reads on solver paths, no
# unstable sort.Slice anywhere, no captured-float folds in parallel
# shard bodies, no allocation in //det:hotpath kernels. Exemptions are
# explicit in the source as //det:allow <analyzer> <reason>; unused or
# malformed directives fail the run too. The binary is built fresh from
# the tree (stdlib-only, seconds) so the checker can never lag the
# contracts it enforces; `make clean` removes it.
lint:
	$(GO) build -o .tmp-detlint ./cmd/detlint
	./.tmp-detlint ./...

# Pinned third-party audits, invoked via `go run pkg@version` so nothing
# is ever added to go.mod: staticcheck (correctness/style) and
# govulncheck (known-vulnerability reachability). Network-dependent —
# go run fetches the pinned tool and govulncheck queries the vuln DB —
# so this is deliberately NOT part of `make ci`; CI runs it as a
# separate advisory (continue-on-error) job, and offline runs fail fast
# at the download step without affecting anything else.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
audit:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

ci: build build-cmds build-cross vet fmt-check lint race race-engine bench-smoke serve-smoke clean
