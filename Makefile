# Local developer entry points, kept in lockstep with .github/workflows/ci.yml:
# `make ci` runs exactly what CI runs, so a green local `make ci` means a
# green pipeline.

GO ?= go
BENCH_PATTERN ?= .
BENCH_OUT ?= BENCH_results.json

.PHONY: build test race bench bench-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

# Fast feedback: full suite without the race detector.
test:
	$(GO) test ./...

# What CI runs: the full suite under the race detector. The
# worker-count-independence tests (parallel_determinism_test.go) only prove
# the determinism contract when scheduling is adversarial, so -race is the
# configuration that counts.
race:
	$(GO) test -race -timeout 45m ./...

# Full benchmark run (minutes); BENCH_PATTERN narrows it.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run '^$$' .

# One iteration per benchmark: compiles and exercises every benchmark body,
# emits $(BENCH_OUT) via cmd/benchjson. CI archives the JSON as an artifact.
bench-smoke:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check race bench-smoke
