# Local developer entry points, kept in lockstep with .github/workflows/ci.yml:
# `make ci` runs exactly what CI runs, so a green local `make ci` means a
# green pipeline.

GO ?= go
BENCH_PATTERN ?= .
BENCH_OUT ?= BENCH_results.json
# bench-save: one iteration per benchmark by default — the heavy pipeline
# benchmarks run 1-15 s per op, so 1x keeps a full baseline run under a
# minute while still timing every real computation. Raise for quieter
# numbers on a dedicated box (e.g. make bench-save BENCH_TIME=2s).
BENCH_TIME ?= 1x
BENCH_DATE := $(shell date +%F)
# The committed baseline the compare step diffs against: the latest
# BENCH_<date>*.json at the repo root (names sort chronologically).
BENCH_BASELINE ?= $(shell ls BENCH_2*.json 2>/dev/null | sort | tail -1)
# Benchmarks whose ns/op regression beyond 20% draws a warning (never a
# failure): the seed-search kernel and the warm-Engine reuse pairs.
BENCH_WARN ?= BenchmarkT7_SeedSearch|BenchmarkEngineReuse

.PHONY: build test race race-engine bench bench-smoke bench-save bench-compare fmt fmt-check vet ci

build:
	$(GO) build ./...

# Fast feedback: full suite without the race detector.
test:
	$(GO) test ./...

# What CI runs: the full suite under the race detector. The
# worker-count-independence tests (parallel_determinism_test.go) only prove
# the determinism contract when scheduling is adversarial, so -race is the
# configuration that counts.
race:
	$(GO) test -race -timeout 45m ./...

# The warm-Engine determinism tables in isolation: worker-count independence
# of a REUSED engine (dirty scratch buffers, pooled contexts) under the race
# detector. Part of `make race` too; this target mirrors the dedicated CI
# job so an engine-reuse regression is attributable at a glance.
race-engine:
	$(GO) test -race -timeout 30m -run 'TestEngineReuseWorkerCountIndependence|TestEngineConcurrentSolves' .

# Full benchmark run (minutes); BENCH_PATTERN narrows it.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run '^$$' .

# One iteration per benchmark: compiles and exercises every benchmark body,
# emits $(BENCH_OUT) via cmd/benchjson. Runs with -benchmem so the archived
# JSON carries B/op + allocs/op and the allocation trajectory can be diffed
# across commits alongside ns/op.
bench-smoke:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Archive a dated benchmark baseline at the repo root: the full suite through
# cmd/benchjson into BENCH_<date>.json. Commit the file so the performance
# trajectory is diffable across PRs (bench-compare reads the latest one).
bench-save:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_$(BENCH_DATE).json

# Diff a bench-smoke result ($(BENCH_OUT)) against the committed baseline,
# warning — never failing — on >20% ns/op regressions in $(BENCH_WARN).
# Run `make bench-smoke` (or CI's bench-smoke job) first.
bench-compare:
	@if [ -z "$(BENCH_BASELINE)" ]; then echo "bench-compare: no committed BENCH_*.json baseline"; exit 1; fi
	$(GO) run ./cmd/benchjson -input $(BENCH_OUT) -compare $(BENCH_BASELINE) -warn '$(BENCH_WARN)' -warn-pct 20

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check race race-engine bench-smoke
