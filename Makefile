# Local developer entry points, kept in lockstep with .github/workflows/ci.yml:
# `make ci` runs exactly what CI runs, so a green local `make ci` means a
# green pipeline.

GO ?= go
BENCH_PATTERN ?= .
BENCH_OUT ?= BENCH_results.json

.PHONY: build test race race-engine bench bench-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

# Fast feedback: full suite without the race detector.
test:
	$(GO) test ./...

# What CI runs: the full suite under the race detector. The
# worker-count-independence tests (parallel_determinism_test.go) only prove
# the determinism contract when scheduling is adversarial, so -race is the
# configuration that counts.
race:
	$(GO) test -race -timeout 45m ./...

# The warm-Engine determinism tables in isolation: worker-count independence
# of a REUSED engine (dirty scratch buffers, pooled contexts) under the race
# detector. Part of `make race` too; this target mirrors the dedicated CI
# job so an engine-reuse regression is attributable at a glance.
race-engine:
	$(GO) test -race -timeout 30m -run 'TestEngineReuseWorkerCountIndependence|TestEngineConcurrentSolves' .

# Full benchmark run (minutes); BENCH_PATTERN narrows it.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run '^$$' .

# One iteration per benchmark: compiles and exercises every benchmark body,
# emits $(BENCH_OUT) via cmd/benchjson. Runs with -benchmem so the archived
# JSON carries B/op + allocs/op and the allocation trajectory can be diffed
# across commits alongside ns/op.
bench-smoke:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check race race-engine bench-smoke
