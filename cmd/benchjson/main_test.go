package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU
BenchmarkMatchingDeterministicSerial-8   	       3	 410123456 ns/op	20123456 B/op	  123456 allocs/op
BenchmarkMatchingDeterministicParallel-8 	      10	 110123456 ns/op	21123456 B/op	  123999 allocs/op
BenchmarkCustomMetric-4                  	     100	    991122 ns/op	        17.5 rounds/op
BenchmarkNoSuffix                        	       1	      1000 ns/op
PASS
ok  	repro	12.345s
`
	results, failed, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("failed = %d, want 0", failed)
	}
	want := []Result{
		{Name: "BenchmarkMatchingDeterministicSerial", Procs: 8, Iterations: 3, NsPerOp: 410123456, BytesPerOp: 20123456, AllocsPerOp: 123456, HasMem: true},
		{Name: "BenchmarkMatchingDeterministicParallel", Procs: 8, Iterations: 10, NsPerOp: 110123456, BytesPerOp: 21123456, AllocsPerOp: 123999, HasMem: true},
		{Name: "BenchmarkCustomMetric", Procs: 4, Iterations: 100, NsPerOp: 991122, Metrics: map[string]float64{"rounds/op": 17.5}},
		{Name: "BenchmarkNoSuffix", Procs: 1, Iterations: 1, NsPerOp: 1000},
	}
	if !reflect.DeepEqual(results, want) {
		t.Fatalf("parse mismatch:\n got %+v\nwant %+v", results, want)
	}
	if got := countWithoutMem(results); got != 2 {
		t.Fatalf("countWithoutMem = %d, want 2", got)
	}
}

// TestBenchmemColumnsAlwaysEmitted pins the JSON contract: the allocation
// columns are present on every row (no omitempty), so the archived artifact
// can be diffed for allocation regressions without schema sniffing.
func TestBenchmemColumnsAlwaysEmitted(t *testing.T) {
	results, _, err := parse(strings.NewReader("BenchmarkX-2 5 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := json.NewEncoder(&buf).Encode(results); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{`"bytes_per_op"`, `"allocs_per_op"`, `"has_mem"`} {
		if !strings.Contains(buf.String(), col) {
			t.Fatalf("JSON missing column %s: %s", col, buf.String())
		}
	}
}

func TestParseCountsFailures(t *testing.T) {
	// The bare "FAIL" line and the "FAIL\t<pkg>" trailer belong to the same
	// failing package; only the trailer is counted.
	input := "BenchmarkX-2 5 100 ns/op\nFAIL\nFAIL\trepro/internal/foo\t0.1s\nFAIL\trepro/internal/bar\t0.2s\n"
	results, failed, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || failed != 2 {
		t.Fatalf("got %d results, %d failures; want 1, 2", len(results), failed)
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	input := "BenchmarkVerbose\nBenchmarkBad notanumber ns/op\n"
	results, _, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results, want 0", len(results))
	}
}

// TestHasMemRequiresBothUnits pins the flag semantics: a line carrying only
// one of B/op / allocs/op does not count as a -benchmem result.
func TestHasMemRequiresBothUnits(t *testing.T) {
	results, _, err := parse(strings.NewReader("BenchmarkX-2 5 100 ns/op 50 B/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].HasMem {
		t.Fatalf("lone B/op must not set HasMem: %+v", results)
	}
}

// TestCompareResults covers the -compare mode: delta math, warn filtering,
// and the new/gone rows for benchmarks present on one side only.
func TestCompareResults(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkT7_SeedSearch", NsPerOp: 100, AllocsPerOp: 10, HasMem: true},
		{Name: "BenchmarkStable", NsPerOp: 200, AllocsPerOp: 4, HasMem: true},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}
	current := []Result{
		{Name: "BenchmarkT7_SeedSearch", NsPerOp: 150, AllocsPerOp: 10, HasMem: true}, // +50%
		{Name: "BenchmarkStable", NsPerOp: 210, AllocsPerOp: 4, HasMem: true},         // +5%
		{Name: "BenchmarkNew", NsPerOp: 77},
	}
	var buf strings.Builder
	warnings, err := compareResults(&buf, baseline, current, "BenchmarkT7_SeedSearch|BenchmarkStable", 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "BenchmarkT7_SeedSearch") {
		t.Fatalf("want exactly one T7 warning, got %v", warnings)
	}
	out := buf.String()
	for _, want := range []string{"+50.0%", "+5.0%", "new", "gone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestCompareResultsNoWarnBelowThreshold pins the warn-only contract: an
// improvement or a small regression emits no warning even for matched names.
func TestCompareResultsNoWarnBelowThreshold(t *testing.T) {
	baseline := []Result{{Name: "BenchmarkT7_SeedSearch", NsPerOp: 100}}
	current := []Result{{Name: "BenchmarkT7_SeedSearch", NsPerOp: 40}}
	var buf strings.Builder
	warnings, err := compareResults(&buf, baseline, current, "BenchmarkT7_SeedSearch", 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("improvement must not warn: %v", warnings)
	}
}

// TestCompareSkipsMemColumnsWithoutMem is the loadgen regression: rows
// that measure latency only (has_mem: false, e.g. every Loadgen* quantile)
// — or a phantom has_mem: true row whose allocs/op is 0, which the old
// loadgen emitted — must never produce an allocation delta. The Δallocs
// column stays "-" whenever either side lacks real memory stats, while the
// ns/op delta is still computed.
func TestCompareSkipsMemColumnsWithoutMem(t *testing.T) {
	baseline := []Result{
		{Name: "LoadgenMatching_c4_p99", NsPerOp: 1000, HasMem: false},
		{Name: "LoadgenMIS_c4_ttfr_p50", NsPerOp: 500, HasMem: true}, // phantom: HasMem set, no real allocs
		{Name: "BenchmarkReal", NsPerOp: 100, AllocsPerOp: 10, HasMem: true},
	}
	current := []Result{
		{Name: "LoadgenMatching_c4_p99", NsPerOp: 1100, HasMem: false},
		{Name: "LoadgenMIS_c4_ttfr_p50", NsPerOp: 510, HasMem: false},
		{Name: "BenchmarkReal", NsPerOp: 100, AllocsPerOp: 12, HasMem: true},
	}
	var buf strings.Builder
	if _, err := compareResults(&buf, baseline, current, "", 20); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		cols := strings.Fields(line)
		if len(cols) == 0 {
			continue
		}
		alloc := cols[len(cols)-1]
		switch cols[0] {
		case "LoadgenMatching_c4_p99", "LoadgenMIS_c4_ttfr_p50":
			if alloc != "-%" {
				t.Errorf("%s: Δallocs column = %q, want %q (no real mem stats on both sides)", cols[0], alloc, "-%")
			}
			if !strings.Contains(line, "+10.0%") && !strings.Contains(line, "+2.0%") {
				t.Errorf("%s: ns/op delta missing from %q", cols[0], line)
			}
		case "BenchmarkReal":
			if alloc != "+20.0%" {
				t.Errorf("BenchmarkReal: Δallocs column = %q, want +20.0%%", alloc)
			}
		}
	}
}

// TestMedianResults covers the -median collapse: per-metric medians over
// repeated names (odd count = middle, even count = mean of middles),
// first-appearance ordering, single-run passthrough, custom-metric medians,
// and HasMem holding only when every run carried the allocation columns.
func TestMedianResults(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA", Procs: 2, Iterations: 10, NsPerOp: 300, BytesPerOp: 64, AllocsPerOp: 3, HasMem: true},
		{Name: "BenchmarkB", Procs: 1, Iterations: 1, NsPerOp: 50, Metrics: map[string]float64{"rounds/op": 4}},
		{Name: "BenchmarkA", Procs: 2, Iterations: 30, NsPerOp: 100, BytesPerOp: 32, AllocsPerOp: 3, HasMem: true},
		{Name: "BenchmarkB", Procs: 1, Iterations: 3, NsPerOp: 70, Metrics: map[string]float64{"rounds/op": 8}},
		{Name: "BenchmarkA", Procs: 2, Iterations: 20, NsPerOp: 200, BytesPerOp: 48, AllocsPerOp: 5, HasMem: true},
		{Name: "BenchmarkOnce", Procs: 4, Iterations: 7, NsPerOp: 11, BytesPerOp: 1, AllocsPerOp: 1, HasMem: true},
	}
	got := medianResults(in)
	want := []Result{
		{Name: "BenchmarkA", Procs: 2, Iterations: 20, NsPerOp: 200, BytesPerOp: 48, AllocsPerOp: 3, HasMem: true},
		{Name: "BenchmarkB", Procs: 1, Iterations: 2, NsPerOp: 60, Metrics: map[string]float64{"rounds/op": 6}},
		{Name: "BenchmarkOnce", Procs: 4, Iterations: 7, NsPerOp: 11, BytesPerOp: 1, AllocsPerOp: 1, HasMem: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("medianResults mismatch:\n got %+v\nwant %+v", got, want)
	}
	// A run missing -benchmem poisons HasMem for its name.
	mixed := medianResults([]Result{
		{Name: "BenchmarkC", NsPerOp: 1, HasMem: true},
		{Name: "BenchmarkC", NsPerOp: 3},
	})
	if len(mixed) != 1 || mixed[0].HasMem {
		t.Fatalf("mixed HasMem must collapse to false: %+v", mixed)
	}
}

// TestCompareResultsBadRegexp surfaces -warn compile errors.
func TestCompareResultsBadRegexp(t *testing.T) {
	var buf strings.Builder
	if _, err := compareResults(&buf, nil, nil, "(", 20); err == nil {
		t.Fatal("invalid -warn regexp must error")
	}
}
