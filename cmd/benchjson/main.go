// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark result, so CI can archive benchmark runs
// as machine-readable artifacts (BENCH_*.json style) and diff them across
// commits.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | go run ./cmd/benchjson -o bench.json
//	go run ./cmd/benchjson < bench.txt           # JSON to stdout
//
// With -compare old.json the current results (stdin, or a previously
// written JSON via -input new.json) are diffed against a baseline file:
// a per-benchmark ns/op and allocs/op delta table goes to stdout, and
// -warn '<regexp>' emits stderr warnings (never a failure) for named
// benchmarks whose ns/op regressed by more than -warn-pct percent. This is
// what `make bench-compare` and the CI bench-smoke job run against the
// committed BENCH_*.json baseline.
//
// The parser understands the standard benchmark line format
//
//	BenchmarkName-8   	     100	  11222333 ns/op	  4455 B/op	   66 allocs/op
//
// including custom metrics (`go test -bench` emits `<value> <unit>` pairs).
// Non-benchmark lines (pass/fail summaries, package headers) are skipped;
// `ok`/`FAIL` package trailers are tallied so a failing bench run still
// yields a non-zero exit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op metric when present.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// BytesPerOp is the B/op metric (-benchmem / ReportAllocs). Always
	// emitted — the allocation trajectory is archived alongside ns/op, so
	// downstream diffs can rely on the column existing.
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is the allocs/op metric. Always emitted, see BytesPerOp.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HasMem records whether the line carried BOTH the B/op and allocs/op
	// fields (distinguishes a true zero from a run without -benchmem or a
	// truncated line).
	HasMem bool `json:"has_mem"`
	// Metrics holds any remaining unit → value pairs (custom b.ReportMetric
	// units, MB/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		out     = flag.String("o", "", "output file (default stdout; with -compare, JSON is only written when -o is set)")
		indent  = flag.Bool("indent", true, "pretty-print the JSON")
		input   = flag.String("input", "", "read results from a previously written JSON file instead of parsing go-test output on stdin")
		compare = flag.String("compare", "", "baseline JSON file: print per-benchmark ns/op and allocs/op deltas of the current results against it")
		warnRe  = flag.String("warn", "", "with -compare: regexp of benchmark names that emit a warning when ns/op regresses by more than -warn-pct (never fails the run)")
		warnPct = flag.Float64("warn-pct", 20, "with -compare: ns/op regression threshold in percent for -warn")
		median  = flag.Bool("median", false, "collapse repeated benchmark names (go test -count=N runs) into one result per name holding the per-metric medians")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	var results []Result
	failed := 0
	if *input != "" {
		var err error
		if results, err = readResults(*input); err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		if results, failed, err = parse(os.Stdin); err != nil {
			log.Fatal(err)
		}
	}

	if *median {
		results = medianResults(results)
	}

	if *out != "" || *compare == "" {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			w = f
		}
		enc := json.NewEncoder(w)
		if *indent {
			enc.SetIndent("", "  ")
		}
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
		}
	}
	// Only freshly parsed go-test output warrants the -benchmem nag: JSON
	// loaded back via -input may legitimately be latency-only (loadgen
	// emits has_mem: false on every row), and re-warning on each compare
	// would be noise.
	if *input == "" {
		if noMem := countWithoutMem(results); noMem > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: warning: %d result(s) lack B/op+allocs/op — was the run missing -benchmem?\n", noMem)
		}
	}
	if *compare != "" {
		baseline, err := readResults(*compare)
		if err != nil {
			log.Fatal(err)
		}
		warnings, err := compareResults(os.Stdout, baseline, results, *warnRe, *warnPct)
		if err != nil {
			log.Fatal(err)
		}
		// Regressions warn, never fail: the bench-smoke runners are shared
		// and noisy, so a hard gate would flake. The warning text is what
		// CI surfaces.
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "benchjson: warning: %s\n", w)
		}
	}
	if failed > 0 {
		log.Fatalf("%d package(s) reported FAIL", failed)
	}
}

// readResults loads a JSON array previously written by this tool.
func readResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

// compareResults prints a per-benchmark delta table (current vs baseline,
// matched by name) and returns warning strings for every benchmark whose
// name matches warnExpr and whose ns/op regressed by more than warnPct
// percent. Benchmarks present on only one side are listed but never warn.
func compareResults(w io.Writer, baseline, current []Result, warnExpr string, warnPct float64) ([]string, error) {
	var warnOn *regexp.Regexp
	if warnExpr != "" {
		var err error
		if warnOn, err = regexp.Compile(warnExpr); err != nil {
			return nil, fmt.Errorf("-warn: %w", err)
		}
	}
	old := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		old[r.Name] = r
	}
	var warnings []string
	fmt.Fprintf(w, "%-45s %15s %15s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs")
	for _, cur := range current {
		o, ok := old[cur.Name]
		if !ok {
			fmt.Fprintf(w, "%-45s %15s %15.0f %9s %9s\n", cur.Name, "-", cur.NsPerOp, "new", "-")
			continue
		}
		delete(old, cur.Name)
		nsDelta := math.NaN()
		if o.NsPerOp > 0 && cur.NsPerOp > 0 {
			nsDelta = (cur.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		allocDelta := math.NaN()
		if o.HasMem && cur.HasMem && o.AllocsPerOp > 0 {
			allocDelta = (cur.AllocsPerOp - o.AllocsPerOp) / o.AllocsPerOp * 100
		}
		fmt.Fprintf(w, "%-45s %15.0f %15.0f %8s%% %8s%%\n",
			cur.Name, o.NsPerOp, cur.NsPerOp, fmtDelta(nsDelta), fmtDelta(allocDelta))
		if warnOn != nil && warnOn.MatchString(cur.Name) && !math.IsNaN(nsDelta) && nsDelta > warnPct {
			warnings = append(warnings,
				fmt.Sprintf("%s regressed %.1f%% in ns/op (%.0f -> %.0f, threshold %.0f%%)",
					cur.Name, nsDelta, o.NsPerOp, cur.NsPerOp, warnPct))
		}
	}
	for _, r := range baseline {
		if _, gone := old[r.Name]; gone {
			fmt.Fprintf(w, "%-45s %15.0f %15s %9s %9s\n", r.Name, r.NsPerOp, "-", "gone", "-")
		}
	}
	return warnings, nil
}

// medianResults collapses runs that repeat a benchmark name (go test
// -count=N) into one result per name in first-appearance order, taking the
// median of every numeric column independently (ns/op, B/op, allocs/op,
// iterations, and each custom metric). Medians resist the noisy-runner
// outliers that make single bench-compare runs flake: one slow run out of
// three no longer reads as a regression. Names that appear once pass through
// unchanged; HasMem holds iff every run of the name carried the allocation
// columns.
func medianResults(results []Result) []Result {
	byName := make(map[string][]Result, len(results))
	var order []string
	for _, r := range results {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		runs := byName[name]
		if len(runs) == 1 {
			out = append(out, runs[0])
			continue
		}
		med := Result{Name: name, Procs: runs[0].Procs, HasMem: true}
		pick := func(get func(Result) float64) float64 {
			vals := make([]float64, len(runs))
			for i, r := range runs {
				vals[i] = get(r)
			}
			return median(vals)
		}
		med.Iterations = int64(pick(func(r Result) float64 { return float64(r.Iterations) }))
		med.NsPerOp = pick(func(r Result) float64 { return r.NsPerOp })
		med.BytesPerOp = pick(func(r Result) float64 { return r.BytesPerOp })
		med.AllocsPerOp = pick(func(r Result) float64 { return r.AllocsPerOp })
		units := make(map[string]bool)
		for _, r := range runs {
			med.HasMem = med.HasMem && r.HasMem
			for u := range r.Metrics {
				units[u] = true
			}
		}
		for u := range units {
			if med.Metrics == nil {
				med.Metrics = make(map[string]float64)
			}
			med.Metrics[u] = pick(func(r Result) float64 { return r.Metrics[u] })
		}
		out = append(out, med)
	}
	return out
}

// median returns the middle of the sorted values (mean of the two middles for
// an even count). vals may be reordered.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// fmtDelta renders a percentage delta with sign, or "-" for NaN.
func fmtDelta(d float64) string {
	if math.IsNaN(d) {
		return "-"
	}
	return fmt.Sprintf("%+.1f", d)
}

// countWithoutMem returns how many results carried no allocation metrics.
func countWithoutMem(results []Result) int {
	n := 0
	for _, r := range results {
		if !r.HasMem {
			n++
		}
	}
	return n
}

// parse scans `go test -bench` output and returns the benchmark results plus
// the number of FAIL package trailers seen.
func parse(r io.Reader) ([]Result, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := []Result{}
	failed := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				results = append(results, res)
			}
		case strings.HasPrefix(line, "FAIL\t"):
			// Count only the per-package trailer ("FAIL\t<pkg>\t<time>");
			// the bare "FAIL" line go test prints above it would double-
			// count the same package.
			failed++
		}
	}
	return results, failed, sc.Err()
}

// parseLine parses one benchmark result line; ok is false for lines that
// merely start with "Benchmark" without being results (e.g. a name echoed
// by -v with no fields after it).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name, procs := splitProcs(fields[0])
	res := Result{Name: name, Procs: procs, Iterations: iters}
	var sawBytes, sawAllocs bool
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
			sawBytes = true
		case "allocs/op":
			res.AllocsPerOp = v
			sawAllocs = true
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	// Both units must be present before the allocation columns count as
	// real: a lone B/op (truncated line) must not read as zero allocs/op.
	res.HasMem = sawBytes && sawAllocs
	return res, true
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8); names without
// a numeric suffix report procs = 1.
func splitProcs(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 1
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p <= 0 {
		return s, 1
	}
	return s[:i], p
}
