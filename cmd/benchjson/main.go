// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark result, so CI can archive benchmark runs
// as machine-readable artifacts (BENCH_*.json style) and diff them across
// commits.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | go run ./cmd/benchjson -o bench.json
//	go run ./cmd/benchjson < bench.txt           # JSON to stdout
//
// The parser understands the standard benchmark line format
//
//	BenchmarkName-8   	     100	  11222333 ns/op	  4455 B/op	   66 allocs/op
//
// including custom metrics (`go test -bench` emits `<value> <unit>` pairs).
// Non-benchmark lines (pass/fail summaries, package headers) are skipped;
// `ok`/`FAIL` package trailers are tallied so a failing bench run still
// yields a non-zero exit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op metric when present.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// BytesPerOp is the B/op metric (-benchmem / ReportAllocs). Always
	// emitted — the allocation trajectory is archived alongside ns/op, so
	// downstream diffs can rely on the column existing.
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is the allocs/op metric. Always emitted, see BytesPerOp.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HasMem records whether the line carried BOTH the B/op and allocs/op
	// fields (distinguishes a true zero from a run without -benchmem or a
	// truncated line).
	HasMem bool `json:"has_mem"`
	// Metrics holds any remaining unit → value pairs (custom b.ReportMetric
	// units, MB/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		out    = flag.String("o", "", "output file (default stdout)")
		indent = flag.Bool("indent", true, "pretty-print the JSON")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	results, failed, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	if *indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
	if noMem := countWithoutMem(results); noMem > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: warning: %d result(s) lack B/op+allocs/op — was the run missing -benchmem?\n", noMem)
	}
	if failed > 0 {
		log.Fatalf("%d package(s) reported FAIL", failed)
	}
}

// countWithoutMem returns how many results carried no allocation metrics.
func countWithoutMem(results []Result) int {
	n := 0
	for _, r := range results {
		if !r.HasMem {
			n++
		}
	}
	return n
}

// parse scans `go test -bench` output and returns the benchmark results plus
// the number of FAIL package trailers seen.
func parse(r io.Reader) ([]Result, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := []Result{}
	failed := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				results = append(results, res)
			}
		case strings.HasPrefix(line, "FAIL\t"):
			// Count only the per-package trailer ("FAIL\t<pkg>\t<time>");
			// the bare "FAIL" line go test prints above it would double-
			// count the same package.
			failed++
		}
	}
	return results, failed, sc.Err()
}

// parseLine parses one benchmark result line; ok is false for lines that
// merely start with "Benchmark" without being results (e.g. a name echoed
// by -v with no fields after it).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name, procs := splitProcs(fields[0])
	res := Result{Name: name, Procs: procs, Iterations: iters}
	var sawBytes, sawAllocs bool
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
			sawBytes = true
		case "allocs/op":
			res.AllocsPerOp = v
			sawAllocs = true
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	// Both units must be present before the allocation columns count as
	// real: a lone B/op (truncated line) must not read as zero allocs/op.
	res.HasMem = sawBytes && sawAllocs
	return res, true
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8); names without
// a numeric suffix report procs = 1.
func splitProcs(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 1
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p <= 0 {
		return s, 1
	}
	return s[:i], p
}
