// Command mpcsim exercises the message-level MPC cluster directly: it loads
// random words, runs the Lemma 4 primitives (sample sort, prefix sums) and
// prints the round, message and space accounting — a quick way to see the
// simulated model at work.
//
// Usage:
//
//	mpcsim -n 65536 -machines 64 -space 4096
package main

import (
	"flag"
	"fmt"
	"log"
	"slices"

	"repro/internal/detrand"
	"repro/internal/mpc"
)

func main() {
	var (
		n        = flag.Int("n", 1<<16, "words of input")
		machines = flag.Int("machines", 64, "machine count M")
		space    = flag.Int("space", 4096, "words per machine S")
		seed     = flag.Uint64("seed", 1, "input seed")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("mpcsim: ")

	r := detrand.New(*seed)
	data := make([]uint64, *n)
	for i := range data {
		data[i] = r.Uint64() % 1_000_000
	}

	c := mpc.NewCluster(mpc.Config{Machines: *machines, Space: *space})
	if err := c.LoadBalanced(data); err != nil {
		log.Fatal(err)
	}
	if err := mpc.Sort(c); err != nil {
		log.Fatal(err)
	}
	sorted := c.GatherAll()
	ok := slices.IsSorted(sorted)
	total, err := mpc.PrefixSum(c)
	if err != nil {
		log.Fatal(err)
	}

	st := c.Stats()
	fmt.Printf("input: %d words over M=%d machines, S=%d words each\n", *n, *machines, *space)
	fmt.Printf("sort: %d rounds, correct=%v\n", st.RoundsByLabel()["sort"], ok)
	fmt.Printf("prefix sums: %d rounds, total=%d\n", st.RoundsByLabel()["prefixsum"], total)
	fmt.Printf("traffic: %d messages, %d words; peak inbox %d, peak outbox %d, peak store %d\n",
		st.Messages, st.WordsSent, st.MaxInbox, st.MaxOutbox, st.MaxStore)
	if len(st.Violations) > 0 {
		fmt.Printf("space violations (%d):\n", len(st.Violations))
		for _, v := range st.Violations {
			fmt.Println(" ", v)
		}
	} else {
		fmt.Println("space violations: none")
	}
}
