// Command experiments regenerates the reproduction tables and figures
// indexed in DESIGN.md (T1..T9, F1, F2) and described in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                  # run everything at full scale
//	experiments -quick           # small grids (seconds)
//	experiments -run T1,T5,F2    # a subset
//	experiments -csv out/        # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "small grids (seconds instead of minutes)")
		seed    = flag.Uint64("seed", 1, "workload generator seed")
		csvDir  = flag.String("csv", "", "directory to write per-table CSV files")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	ids := experiments.IDs()
	if *runList != "all" {
		ids = strings.Split(*runList, ",")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			if *csvDir != "" {
				path := filepath.Join(*csvDir, t.ID+".csv")
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := t.CSV(f); err != nil {
					f.Close()
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
}
