// Command detlint runs the repo's determinism and allocation analyzers
// (internal/lint) over a set of packages and exits nonzero if any
// diagnostic survives //det:allow suppression.
//
// Usage:
//
//	detlint [-list] [-v] [packages]
//
// With no packages, ./... is analyzed. Test files are deliberately out
// of scope: the invariants guard solver and serving code, and tests
// legitimately spawn goroutines, read clocks and draw from math/rand to
// attack that code. `make lint` builds and runs this binary; the suite
// and the directive syntax are documented in doc.go ("Static
// enforcement") and internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "print per-package progress")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [-list] [-v] [packages]\n\nAnalyzers:\n")
		printAnalyzers(flag.CommandLine.Output())
	}
	flag.Parse()

	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range res.Targets() {
		if *verbose {
			fmt.Fprintf(os.Stderr, "detlint: %s\n", pkg.PkgPath)
		}
		for _, d := range lint.Run(res, pkg) {
			fmt.Printf("%s: [%s] %s\n", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func printAnalyzers(w interface{ Write([]byte) (int, error) }) {
	for _, a := range lint.Analyzers {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "  %-14s %s\n", "detdirective", "validate //det:allow and //det:hotpath directives (malformed, unknown analyzer, unused)")
}
