// Command detservd serves the paper's deterministic maximal-matching and
// MIS solvers over HTTP/JSON from a pool of warm engines.
//
// The server keeps repro.Engine instances (and their pooled scratch
// contexts and prepared-graph caches) alive across requests; graphs route
// to engines by content fingerprint for warm-cache affinity. Each engine
// has its own bounded admission queue and a deterministic deficit
// round-robin scheduler dispatches across them, so a backlog of long
// solves on one fingerprint cannot starve requests for other graphs.
// Overflow is per engine — a full home queue rejects with HTTP 429 even
// while other queues have room — and per-request deadlines (which include
// queue wait) map onto the engines' round- and seed-batch-boundary
// cancellation, so an expired or disconnected request abandons its solve
// cleanly and leaves the engine warm.
//
// Usage:
//
//	detservd -addr :7317 -engines 2 -workers 8 -queue 128
//	detservd -addr :7317 -default-timeout 5s -max-timeout 30s -eps 0.5
//
// Endpoints (see internal/serve and cmd/detservd/README.md):
//
//	GET  /healthz    liveness probe
//	GET  /v1/status  aggregate + per-engine admission/solve counters
//	GET  /v1/stats   alias of /v1/status
//	POST /v1/graphs  upload a graph, get its content fingerprint
//	POST /v1/solve   solve matching or MIS; "stream": true for NDJSON
//	                 per-round progress (disconnecting cancels the solve
//	                 at its next round boundary)
//
// Determinism holds through the service: a served solve returns exactly
// the bits a direct Engine call produces for the same graph and options,
// regardless of worker count, engine routing, or concurrent load.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7317", "listen address")
		engines    = flag.Int("engines", 1, "warm engines in the pool (graphs route to engines by fingerprint)")
		workers    = flag.Int("workers", 0, "concurrent solves (0 = one per CPU)")
		queue      = flag.Int("queue", 64, "per-engine admission queue depth; a request whose home queue is full is rejected with 429")
		defTimeout = flag.Duration("default-timeout", 0, "deadline applied to requests that set none (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 0, "upper clamp on any per-request timeout_ms (0 = unclamped)")
		maxBody    = flag.Int64("max-body", 0, "request body limit in bytes (0 = 64 MiB default)")
		eps        = flag.Float64("eps", 0, "default space exponent ε (0 = library default)")
		strategy   = flag.String("strategy", "auto", "default strategy: auto | sparsify | lowdeg")
		par        = flag.Int("par", 0, "default host parallelism per solve (0 = one per CPU); results identical at any setting")
		skipCost   = flag.Bool("skip-cost", false, "disable MPC cost tracking by default")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("detservd: ")

	s := serve.New(serve.Config{
		Options: &repro.Options{
			Epsilon:          *eps,
			Strategy:         repro.Strategy(*strategy),
			Parallelism:      *par,
			SkipCostTracking: *skipCost,
		},
		Engines:        *engines,
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// First SIGINT/SIGTERM starts a graceful shutdown: stop accepting,
	// let in-flight requests finish (their own deadlines bound them), then
	// drain the admission queue. A second signal kills the process via the
	// restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d engines, queue %d)", *addr, *engines, *queue)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Print("shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	s.Close()
}
