// Command loadgen drives a running detservd with mixed maximal-matching /
// MIS traffic at one or more concurrency levels and writes per-problem
// p50/p99 latency quantiles as JSON in the same schema cmd/benchjson
// emits, so the serving latency history can be archived and diffed next
// to the BENCH_*.json files with `benchjson -input ... -compare ...`.
//
// Graphs are uploaded once and then solved by content fingerprint, which
// exercises the server's prepared-graph dedup path the way a steady-state
// client would.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:7317 -wait 10s \
//	        -requests 64 -concurrency 1,4 -mix 0.5 \
//	        -family gnm -n 2048 -deg 8 -graphs 3 -out LOADGEN_results.json
//
// Result names follow Loadgen<Problem>_c<concurrency>_p<quantile>, e.g.
// LoadgenMatching_c4_p99. ns_per_op carries the latency quantile in
// nanoseconds and iterations the sample count; rejected (429) and failed
// requests are counted in the metrics map and excluded from quantiles.
// The run exits nonzero if any level finishes without a single success.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/serve"
)

// result mirrors cmd/benchjson.Result so the output file is directly
// consumable by `benchjson -input` / `-compare` (the schema is duplicated
// rather than imported: both are package main).
type result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	HasMem      bool               `json:"has_mem"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:7317", "detservd base URL")
		wait     = flag.Duration("wait", 0, "poll /healthz for this long before starting (0 = assume up)")
		requests = flag.Int("requests", 64, "requests per concurrency level")
		conc     = flag.String("concurrency", "1,4", "comma-separated concurrency levels")
		mix      = flag.Float64("mix", 0.5, "fraction of requests that are matching (rest are MIS)")
		family   = flag.String("family", "gnm", "workload family for the uploaded graphs")
		n        = flag.Int("n", 2048, "nodes per graph")
		deg      = flag.Int("deg", 8, "average degree")
		graphs   = flag.Int("graphs", 3, "distinct graphs to upload and cycle through")
		timeout  = flag.Duration("timeout", 0, "per-request timeout_ms sent to the server (0 = none)")
		out      = flag.String("out", "", "output JSON file (default stdout)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	levels, err := parseLevels(*conc)
	if err != nil {
		log.Fatal(err)
	}
	if *wait > 0 {
		if err := waitHealthy(*addr, *wait); err != nil {
			log.Fatal(err)
		}
	}

	// Upload the workload once; all traffic then solves by fingerprint.
	fps := make([]string, 0, *graphs)
	for i := 0; i < *graphs; i++ {
		g, err := repro.Generate(*family, *n, *deg, uint64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		u := &serve.GraphUpload{N: g.N()}
		for _, e := range g.Edges() {
			u.Edges = append(u.Edges, [2]int32{int32(e.U), int32(e.V)})
		}
		var ur serve.UploadResponse
		if err := post(*addr+"/v1/graphs", u, &ur); err != nil {
			log.Fatalf("upload graph %d: %v", i, err)
		}
		fps = append(fps, ur.Fingerprint)
	}
	log.Printf("uploaded %d %s graphs (n=%d deg=%d)", len(fps), *family, *n, *deg)

	var results []result
	failedLevels := 0
	for _, c := range levels {
		lr := runLevel(*addr, fps, *requests, c, *mix, *timeout)
		for _, p := range []string{serve.ProblemMatching, serve.ProblemMIS} {
			s := lr[p]
			if s == nil {
				continue
			}
			if len(s.latencies) == 0 {
				log.Printf("level c=%d %s: no successful requests (%d rejected, %d failed)",
					c, p, s.rejected, s.failed)
				failedLevels++
				continue
			}
			results = append(results, s.quantiles(p, c)...)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	if failedLevels > 0 {
		log.Fatalf("%d (problem, concurrency) cells had zero successes", failedLevels)
	}
}

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		levels = append(levels, c)
	}
	return levels, nil
}

func waitHealthy(addr string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", addr, d)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func post(url string, body, into any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, body: string(data)}
	}
	if into != nil {
		return json.Unmarshal(data, into)
	}
	return nil
}

type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.body) }

// sample accumulates one (problem, concurrency) cell.
type sample struct {
	mu        sync.Mutex
	latencies []time.Duration
	rejected  int
	failed    int
}

func (s *sample) add(d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	se, isStatus := err.(*statusError)
	switch {
	case err == nil:
		s.latencies = append(s.latencies, d)
	case isStatus && se.code == http.StatusTooManyRequests:
		s.rejected++
	default:
		s.failed++
	}
}

func (s *sample) quantiles(problem string, c int) []result {
	sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
	title := strings.ToUpper(problem[:1]) + problem[1:]
	if problem == serve.ProblemMIS {
		title = "MIS"
	}
	metrics := map[string]float64{
		"rejected": float64(s.rejected),
		"failed":   float64(s.failed),
	}
	var out []result
	for _, q := range []struct {
		label string
		f     float64
	}{{"p50", 0.50}, {"p99", 0.99}} {
		idx := int(math.Ceil(q.f*float64(len(s.latencies)))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, result{
			Name:       fmt.Sprintf("Loadgen%s_c%d_%s", title, c, q.label),
			Procs:      1,
			Iterations: int64(len(s.latencies)),
			NsPerOp:    float64(s.latencies[idx].Nanoseconds()),
			HasMem:     true, // schema column present; loadgen measures latency only
			Metrics:    metrics,
		})
	}
	return out
}

// runLevel fires `requests` solves at concurrency c and buckets latencies
// by problem.
func runLevel(addr string, fps []string, requests, c int, mix float64, timeout time.Duration) map[string]*sample {
	samples := map[string]*sample{
		serve.ProblemMatching: {},
		serve.ProblemMIS:      {},
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				problem := serve.ProblemMIS
				// Deterministic interleave approximating the mix fraction.
				if float64(i%requests) < mix*float64(requests) {
					problem = serve.ProblemMatching
				}
				req := &serve.SolveRequest{
					Problem:     problem,
					Fingerprint: fps[i%len(fps)],
				}
				if timeout > 0 {
					req.TimeoutMS = timeout.Milliseconds()
				}
				start := time.Now()
				err := post(addr+"/v1/solve", req, nil)
				samples[problem].add(time.Since(start), err)
			}
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	log.Printf("level c=%d done (%d requests)", c, requests)
	return samples
}
