// Command loadgen drives a running detservd with mixed maximal-matching /
// MIS traffic at one or more concurrency levels and writes per-cell
// p50/p99 latency quantiles as JSON in the same schema cmd/benchjson
// emits, so the serving latency history can be archived and diffed next
// to the BENCH_*.json files with `benchjson -input ... -compare ...`.
//
// Graphs are uploaded once and then solved by content fingerprint, which
// exercises the server's prepared-graph dedup path the way a steady-state
// client would. The request plan is deterministic: `-mix` splits traffic
// between matching and MIS, `-sparsify` forces that fraction of each
// problem's requests onto the sparsify strategy (the long solves the
// per-engine scheduler must not let starve the short ones), and `-stream`
// drives that fraction of each (problem, strategy) cell through the NDJSON
// streaming path instead of the blocking one. Streamed requests record
// time-to-first-round next to total latency.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:7317 -wait 10s \
//	        -requests 64 -concurrency 1,4 -mix 0.5 -sparsify 0.25 -stream 0.5 \
//	        -family gnm -n 2048 -deg 8 -graphs 3 -out LOADGEN_results.json
//
// Results are bucketed per (problem, strategy) cell and named
// Loadgen<Cell>_c<concurrency>_<quantile>, where <Cell> is Matching, MIS,
// MatchingSparsify, or MISSparsify — e.g. LoadgenMatchingSparsify_c4_p99.
// ns_per_op carries the latency quantile in nanoseconds and iterations the
// sample count. Cells with streamed samples additionally emit
// Loadgen<Cell>_c<N>_ttfr_p50/ttfr_p99 rows whose ns_per_op is the
// time-to-first-round quantile. Loadgen measures latency only, so every
// row carries has_mem: false and `benchjson -compare` skips the memory
// columns. Rejected (429) and failed requests are counted in the metrics
// map and excluded from quantiles; the run exits nonzero if any cell
// finishes without a single success — after the results file is written,
// synced, and closed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"maps"
	"math"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/serve"
)

// result mirrors cmd/benchjson.Result so the output file is directly
// consumable by `benchjson -input` / `-compare` (the schema is duplicated
// rather than imported: both are package main).
type result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	HasMem      bool               `json:"has_mem"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:7317", "detservd base URL")
		wait      = flag.Duration("wait", 0, "poll /healthz for this long before starting (0 = assume up)")
		requests  = flag.Int("requests", 64, "requests per concurrency level")
		conc      = flag.String("concurrency", "1,4", "comma-separated concurrency levels")
		mix       = flag.Float64("mix", 0.5, "fraction of requests that are matching (rest are MIS)")
		sparsifyF = flag.Float64("sparsify", 0, "fraction of each problem's requests forced onto the sparsify strategy")
		streamF   = flag.Float64("stream", 0, "fraction of each (problem, strategy) cell driven through NDJSON streaming")
		family    = flag.String("family", "gnm", "workload family for the uploaded graphs")
		n         = flag.Int("n", 2048, "nodes per graph")
		deg       = flag.Int("deg", 8, "average degree")
		graphs    = flag.Int("graphs", 3, "distinct graphs to upload and cycle through")
		timeout   = flag.Duration("timeout", 0, "per-request timeout_ms sent to the server (0 = none)")
		out       = flag.String("out", "", "output JSON file (default stdout)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	levels, err := parseLevels(*conc)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"mix", *mix}, {"sparsify", *sparsifyF}, {"stream", *streamF}} {
		if f.v < 0 || f.v > 1 {
			log.Fatalf("-%s must be in [0,1], got %g", f.name, f.v)
		}
	}
	if *wait > 0 {
		if err := waitHealthy(*addr, *wait); err != nil {
			log.Fatal(err)
		}
	}

	// Upload the workload once; all traffic then solves by fingerprint.
	fps := make([]string, 0, *graphs)
	for i := 0; i < *graphs; i++ {
		g, err := repro.Generate(*family, *n, *deg, uint64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		u := &serve.GraphUpload{N: g.N()}
		for _, e := range g.Edges() {
			u.Edges = append(u.Edges, [2]int32{int32(e.U), int32(e.V)})
		}
		var ur serve.UploadResponse
		if err := post(*addr+"/v1/graphs", u, &ur); err != nil {
			log.Fatalf("upload graph %d: %v", i, err)
		}
		fps = append(fps, ur.Fingerprint)
	}
	log.Printf("uploaded %d %s graphs (n=%d deg=%d)", len(fps), *family, *n, *deg)

	plan := buildPlan(*requests, fps, *mix, *sparsifyF, *streamF)
	var results []result
	failedCells := 0
	for _, c := range levels {
		lr := runLevel(*addr, plan, c, *timeout)
		for _, cell := range cellOrder(lr) {
			s := lr[cell]
			if len(s.latencies) == 0 {
				log.Printf("level c=%d %s: no successful requests (%d rejected, %d failed, %d attempted)",
					c, cell, s.rejected, s.failed, s.attempts)
				if s.attempts > 0 {
					failedCells++
				}
				continue
			}
			results = append(results, s.quantiles(cell, c)...)
		}
	}

	// Write (and sync, and close) the results before any fatal exit: a run
	// that dies on the zero-success path must still leave a durable file.
	if err := writeResults(*out, results); err != nil {
		log.Fatal(err)
	}
	if failedCells > 0 {
		log.Fatalf("%d (cell, concurrency) buckets had zero successes", failedCells)
	}
}

// writeResults encodes the schema to -out (or stdout) and flushes it all
// the way down — Sync then Close, with every error checked — so callers
// may log.Fatal afterwards without losing the file.
func writeResults(out string, results []result) error {
	if out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		levels = append(levels, c)
	}
	return levels, nil
}

func waitHealthy(addr string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", addr, d)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func post(url string, body, into any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, body: string(data)}
	}
	if into != nil {
		return json.Unmarshal(data, into)
	}
	return nil
}

// streamPost drives one NDJSON streaming solve and reports the
// time-to-first-round (the latency an observer waits before the first
// progress line) relative to start. Admission failures arrive as HTTP
// statuses before any body line; mid-stream failures arrive as a final
// {"type":"error"} line and are mapped back to statusError so overload
// still buckets as rejected.
func streamPost(url string, req *serve.SolveRequest, start time.Time) (ttfr time.Duration, sawRound bool, err error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return 0, false, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return 0, false, &statusError{code: resp.StatusCode, body: string(data)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	sawResult := false
	for sc.Scan() {
		var ev serve.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return ttfr, sawRound, fmt.Errorf("bad stream line %q: %w", sc.Bytes(), err)
		}
		switch ev.Type {
		case "round":
			if !sawRound {
				ttfr = time.Since(start)
				sawRound = true
			}
		case "result":
			sawResult = true
		case "error":
			return ttfr, sawRound, &statusError{code: ev.Status, body: ev.Error}
		}
	}
	if err := sc.Err(); err != nil {
		return ttfr, sawRound, err
	}
	if !sawResult {
		return ttfr, sawRound, fmt.Errorf("stream ended without a result line")
	}
	return ttfr, sawRound, nil
}

type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.body) }

// reqSpec is one planned request: the plan is computed up front so every
// run with the same flags issues the identical sequence, and every
// (problem, strategy) cell receives its proportional share of sparsify
// and streaming traffic regardless of how the fractions interleave.
type reqSpec struct {
	problem  string
	sparsify bool
	stream   bool
	fp       string
}

// cell names the quantile bucket for a spec: Matching, MIS,
// MatchingSparsify, MISSparsify.
func (r reqSpec) cell() string {
	title := strings.ToUpper(r.problem[:1]) + r.problem[1:]
	if r.problem == serve.ProblemMIS {
		title = "MIS"
	}
	if r.sparsify {
		title += "Sparsify"
	}
	return title
}

// buildPlan spreads each fraction deterministically: take(k, frac) fires
// on the indices where the running total int(k*frac) steps, so any prefix
// of k requests contains within one of k*frac hits. Sparsify is thinned
// per problem and streaming per (problem, strategy) cell, so no cell is
// accidentally starved of either dimension.
func buildPlan(requests int, fps []string, mix, sparsifyFrac, streamFrac float64) []reqSpec {
	take := func(k int, frac float64) bool {
		return int(float64(k+1)*frac) > int(float64(k)*frac)
	}
	plan := make([]reqSpec, requests)
	probSeen := map[string]int{}
	cellSeen := map[string]int{}
	for i := range plan {
		p := serve.ProblemMIS
		if take(i, mix) {
			p = serve.ProblemMatching
		}
		sp := take(probSeen[p], sparsifyFrac)
		probSeen[p]++
		spec := reqSpec{problem: p, sparsify: sp, fp: fps[i%len(fps)]}
		spec.stream = take(cellSeen[spec.cell()], streamFrac)
		cellSeen[spec.cell()]++
		plan[i] = spec
	}
	return plan
}

// sample accumulates one (cell, concurrency) bucket.
type sample struct {
	mu        sync.Mutex
	latencies []time.Duration
	ttfrs     []time.Duration
	attempts  int
	streamed  int
	rejected  int
	failed    int
}

func (s *sample) add(d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	se, isStatus := err.(*statusError)
	switch {
	case err == nil:
		s.latencies = append(s.latencies, d)
	case isStatus && se.code == http.StatusTooManyRequests:
		s.rejected++
	default:
		s.failed++
	}
}

func (s *sample) addStream(ttfr time.Duration, sawRound bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streamed++
	if sawRound {
		s.ttfrs = append(s.ttfrs, ttfr)
	}
}

// quantile picks the ceil-rank order statistic from a sorted slice.
func quantile(sorted []time.Duration, f float64) time.Duration {
	idx := int(math.Ceil(f*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func (s *sample) quantiles(cell string, c int) []result {
	slices.Sort(s.latencies)
	slices.Sort(s.ttfrs)
	metrics := map[string]float64{
		"rejected": float64(s.rejected),
		"failed":   float64(s.failed),
		"streamed": float64(s.streamed),
	}
	qs := []struct {
		label string
		f     float64
	}{{"p50", 0.50}, {"p99", 0.99}}
	var out []result
	for _, q := range qs {
		out = append(out, result{
			Name:       fmt.Sprintf("Loadgen%s_c%d_%s", cell, c, q.label),
			Procs:      1,
			Iterations: int64(len(s.latencies)),
			NsPerOp:    float64(quantile(s.latencies, q.f).Nanoseconds()),
			HasMem:     false, // latency only: no bytes/allocs measured
			Metrics:    metrics,
		})
	}
	// Streamed samples additionally report time-to-first-round: how long
	// an observer waits before progress starts flowing, as opposed to how
	// long until the full result lands.
	for _, q := range qs {
		if len(s.ttfrs) == 0 {
			break
		}
		out = append(out, result{
			Name:       fmt.Sprintf("Loadgen%s_c%d_ttfr_%s", cell, c, q.label),
			Procs:      1,
			Iterations: int64(len(s.ttfrs)),
			NsPerOp:    float64(quantile(s.ttfrs, q.f).Nanoseconds()),
			HasMem:     false, // latency only: no bytes/allocs measured
			Metrics:    metrics,
		})
	}
	return out
}

// cellOrder returns the sample keys in a stable order so the output file
// is diffable run to run.
func cellOrder(m map[string]*sample) []string {
	return slices.Sorted(maps.Keys(m))
}

// runLevel fires the plan at concurrency c and buckets latencies by
// (problem, strategy) cell.
func runLevel(addr string, plan []reqSpec, c int, timeout time.Duration) map[string]*sample {
	samples := map[string]*sample{}
	for _, spec := range plan {
		if samples[spec.cell()] == nil {
			samples[spec.cell()] = &sample{}
		}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				spec := plan[i]
				req := &serve.SolveRequest{
					Problem:     spec.problem,
					Fingerprint: spec.fp,
					Stream:      spec.stream,
				}
				if spec.sparsify {
					req.Options = &serve.SolveOptions{Strategy: string(repro.StrategySparsify)}
				}
				if timeout > 0 {
					req.TimeoutMS = timeout.Milliseconds()
				}
				s := samples[spec.cell()]
				start := time.Now()
				if spec.stream {
					ttfr, sawRound, err := streamPost(addr+"/v1/solve", req, start)
					s.add(time.Since(start), err)
					if err == nil {
						s.addStream(ttfr, sawRound)
					}
				} else {
					err := post(addr+"/v1/solve", req, nil)
					s.add(time.Since(start), err)
				}
			}
		}()
	}
	for i := range plan {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	log.Printf("level c=%d done (%d requests)", c, len(plan))
	return samples
}
