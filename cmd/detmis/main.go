// Command detmis runs the paper's deterministic maximal independent set on
// a synthetic workload or an edge-list file and prints the outcome with its
// MPC cost report.
//
// Usage:
//
//	detmis -graph powerlaw -n 4096 -deg 8 -eps 0.5 [-strategy auto] [-seed 1] [-v]
//	detmis -input graph.txt          # file: "n m" header then "u v" lines
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/graph"
)

func main() {
	var (
		family   = flag.String("graph", "gnm", "workload family (gnm, gnp, powerlaw, regular, grid, star, tree, ...)")
		input    = flag.String("input", "", "edge-list file to load instead of generating")
		n        = flag.Int("n", 4096, "number of nodes")
		deg      = flag.Int("deg", 8, "average degree")
		eps      = flag.Float64("eps", 0.5, "space exponent ε (S = n^ε)")
		strategy = flag.String("strategy", "auto", "auto | sparsify | lowdeg")
		seed     = flag.Uint64("seed", 1, "workload generator seed")
		par      = flag.Int("par", 0, "host workers (0 = one per CPU, 1 = serial); results are identical at any setting")
		verbose  = flag.Bool("v", false, "print the independent set")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("detmis: ")

	var g *repro.Graph
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			log.Fatal(ferr)
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		*family = *input
	} else {
		g, err = repro.Generate(*family, *n, *deg, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	opts := &repro.Options{Epsilon: *eps, Strategy: repro.Strategy(*strategy), Parallelism: *par}
	res, err := repro.MaximalIndependentSet(g, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %s n=%d m=%d Δ=%d\n", *family, g.N(), g.M(), g.MaxDegree())
	fmt.Printf("mis: %d nodes in %d iterations (strategy %s)\n",
		len(res.Nodes), res.Iterations, res.Strategy)
	if c := res.Costs; c != nil {
		fmt.Printf("mpc: %d rounds on %d machines of S=%d words (peak %d, %d seed batches)\n",
			c.Rounds, c.Machines, c.SpacePerMachine, c.PeakMachineWords, c.SeedBatches)
		for _, v := range c.Violations {
			fmt.Fprintf(os.Stderr, "space violation: %s\n", v)
		}
	}
	if *verbose {
		for _, v := range res.Nodes {
			fmt.Println(v)
		}
	}
}
