// Command detmis runs the paper's deterministic maximal independent set on
// a synthetic workload or an edge-list file and prints the outcome with its
// MPC cost report. The solve is request-scoped: Ctrl-C (SIGINT) or SIGTERM
// cancels it at the next round boundary, and -timeout bounds it with a
// deadline; -trace streams the deterministic per-round observer events to
// stderr.
//
// Usage:
//
//	detmis -graph powerlaw -n 4096 -deg 8 -eps 0.5 [-strategy auto] [-seed 1] [-v]
//	detmis -input graph.txt          # file: "n m" header then "u v" lines
//	detmis -graph gnm -n 100000 -timeout 500ms -trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/graph"
)

// traceObserver streams round events to stderr; the stream is deterministic
// (same input and options ⇒ same lines) at any -par setting.
type traceObserver struct{}

func (traceObserver) OnRound(ev repro.RoundEvent) {
	fmt.Fprintf(os.Stderr, "round %d [%s/%s]: live %d nodes / %d edges, %d seeds tried (found=%v), selected %d\n",
		ev.Round, ev.Algorithm, ev.Strategy, ev.LiveNodes, ev.LiveEdges, ev.SeedsTried, ev.SeedFound, ev.Selected)
}

func main() {
	var (
		family   = flag.String("graph", "gnm", "workload family (gnm, gnp, powerlaw, regular, grid, star, tree, ...)")
		input    = flag.String("input", "", "edge-list file to load instead of generating")
		n        = flag.Int("n", 4096, "number of nodes")
		deg      = flag.Int("deg", 8, "average degree")
		eps      = flag.Float64("eps", 0.5, "space exponent ε (S = n^ε)")
		strategy = flag.String("strategy", "auto", "auto | sparsify | lowdeg")
		seed     = flag.Uint64("seed", 1, "workload generator seed")
		par      = flag.Int("par", 0, "host workers (0 = one per CPU, 1 = serial); results are identical at any setting")
		timeout  = flag.Duration("timeout", 0, "abandon the solve after this duration (0 = no deadline)")
		trace    = flag.Bool("trace", false, "stream per-round observer events to stderr")
		verbose  = flag.Bool("v", false, "print the independent set")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("detmis: ")

	// Signal-driven cancellation: the first SIGINT/SIGTERM cancels the solve
	// context (the engine abandons the solve at the next round boundary);
	// a second signal kills the process via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var g *repro.Graph
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			log.Fatal(ferr)
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		*family = *input
	} else {
		g, err = repro.Generate(*family, *n, *deg, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	eng := repro.NewEngine(&repro.Options{Epsilon: *eps, Parallelism: *par})
	solveOpts := []repro.SolveOption{repro.WithStrategy(repro.Strategy(*strategy))}
	if *trace {
		solveOpts = append(solveOpts, repro.WithObserver(traceObserver{}))
	}
	start := time.Now()
	res, err := eng.MaximalIndependentSetCtx(ctx, g, solveOpts...)
	if err != nil {
		if errors.Is(err, repro.ErrCanceled) {
			log.Fatalf("solve abandoned after %v: %v", time.Since(start).Round(time.Millisecond), err)
		}
		log.Fatal(err)
	}

	fmt.Printf("graph: %s n=%d m=%d Δ=%d\n", *family, g.N(), g.M(), g.MaxDegree())
	fmt.Printf("mis: %d nodes in %d iterations (strategy %s)\n",
		len(res.Nodes), res.Iterations, res.Strategy)
	if c := res.Costs; c != nil {
		fmt.Printf("mpc: %d rounds on %d machines of S=%d words (peak %d, %d seed batches)\n",
			c.Rounds, c.Machines, c.SpacePerMachine, c.PeakMachineWords, c.SeedBatches)
		for _, v := range c.Violations {
			fmt.Fprintf(os.Stderr, "space violation: %s\n", v)
		}
	}
	if *verbose {
		for _, v := range res.Nodes {
			fmt.Println(v)
		}
	}
}
