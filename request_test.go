package repro

// Request-scoped API tests: per-solve option overrides must be bit-identical
// to a dedicated engine; cancellation must surface as typed errors, stop at
// round boundaries, and never corrupt the engine for later solves; observer
// event streams must be deterministic at every Parallelism level.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// eventLog collects observer events; it is used from one solve at a time so
// it needs no locking (delivery is synchronous and in round order).
type eventLog struct {
	events []RoundEvent
}

func (l *eventLog) OnRound(ev RoundEvent) { l.events = append(l.events, ev) }

// cancelAfter cancels the solve's context as soon as `rounds` rounds have
// completed: a deterministic mid-solve cancellation point, since events are
// delivered synchronously at round boundaries.
type cancelAfter struct {
	rounds int
	cancel context.CancelFunc
	seen   int
}

func (c *cancelAfter) OnRound(RoundEvent) {
	c.seen++
	if c.seen == c.rounds {
		c.cancel()
	}
}

var overrideWorkloads = []struct {
	family string
	n, avg int
	seed   uint64
}{
	{"gnm", 512, 8, 1},
	{"powerlaw", 512, 6, 3},
	{"regular", 384, 6, 5},
	{"grid", 400, 4, 2},
}

// TestSolveOptionOverrideEquivalence pins the core promise of the
// request-scoped API: one shared default engine serving WithStrategy(s)
// requests is bit-identical, per (strategy, family) cell, to a dedicated
// engine constructed with that strategy — so heterogeneous traffic needs one
// warm engine, not one per configuration.
func TestSolveOptionOverrideEquivalence(t *testing.T) {
	shared := NewEngine(nil)
	ctx := context.Background()
	for _, w := range overrideWorkloads {
		for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
			t.Run(fmt.Sprintf("%s/%s", w.family, strat), func(t *testing.T) {
				g, err := Generate(w.family, w.n, w.avg, w.seed)
				if err != nil {
					t.Fatal(err)
				}
				dedicated := NewEngine(&Options{Strategy: strat})

				wantMM, err := dedicated.MaximalMatching(g)
				if err != nil {
					t.Fatal(err)
				}
				gotMM, err := shared.MaximalMatchingCtx(ctx, g, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				if gotMM.Strategy != wantMM.Strategy || gotMM.Iterations != wantMM.Iterations ||
					len(gotMM.Edges) != len(wantMM.Edges) {
					t.Fatalf("override matching differs: %d edges/%d iters/%s, want %d/%d/%s",
						len(gotMM.Edges), gotMM.Iterations, gotMM.Strategy,
						len(wantMM.Edges), wantMM.Iterations, wantMM.Strategy)
				}
				for i := range gotMM.Edges {
					if gotMM.Edges[i] != wantMM.Edges[i] {
						t.Fatalf("edge %d is %v, want %v", i, gotMM.Edges[i], wantMM.Edges[i])
					}
				}

				wantIS, err := dedicated.MaximalIndependentSet(g)
				if err != nil {
					t.Fatal(err)
				}
				gotIS, err := shared.MaximalIndependentSetCtx(ctx, g, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				if gotIS.Strategy != wantIS.Strategy || gotIS.Iterations != wantIS.Iterations ||
					len(gotIS.Nodes) != len(wantIS.Nodes) {
					t.Fatalf("override MIS differs: %d nodes/%d iters/%s, want %d/%d/%s",
						len(gotIS.Nodes), gotIS.Iterations, gotIS.Strategy,
						len(wantIS.Nodes), wantIS.Iterations, wantIS.Strategy)
				}
				for i := range gotIS.Nodes {
					if gotIS.Nodes[i] != wantIS.Nodes[i] {
						t.Fatalf("node %d is %d, want %d", i, gotIS.Nodes[i], wantIS.Nodes[i])
					}
				}
			})
		}
	}
}

// TestSolveOptionOverridesDoNotStick verifies that per-solve overrides are
// request-scoped: a later solve without options sees the engine's base
// Options untouched.
func TestSolveOptionOverridesDoNotStick(t *testing.T) {
	g, err := Generate("gnm", 512, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(nil)
	want, err := eng.MaximalIndependentSet(g)
	if err != nil {
		t.Fatal(err)
	}
	// An override solve in between must not leak its strategy or
	// cost-tracking choice into the engine.
	if _, err := eng.MaximalIndependentSetCtx(context.Background(), g,
		WithStrategy(StrategyLowDegree), WithCostTracking(false), WithThresholdFrac(0.9)); err != nil {
		t.Fatal(err)
	}
	got, err := eng.MaximalIndependentSet(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strategy != want.Strategy || len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("base solve drifted after override solve: %d nodes/%s, want %d/%s",
			len(got.Nodes), got.Strategy, len(want.Nodes), want.Strategy)
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("node %d differs after override solve", i)
		}
	}
	if got.Costs == nil {
		t.Fatal("WithCostTracking(false) leaked into the engine's base Options")
	}
}

// TestObserverDeterministicAcrossParallelism pins the observer's determinism
// guarantee: the full event stream — order and every field — is identical at
// Parallelism 1, 2 and 8, for both algorithms and both strategies.
func TestObserverDeterministicAcrossParallelism(t *testing.T) {
	g, err := Generate("gnm", 512, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eng := NewEngine(nil)
	for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
		for _, algo := range []string{"matching", "mis"} {
			t.Run(fmt.Sprintf("%s/%s", strat, algo), func(t *testing.T) {
				var ref []RoundEvent
				for _, par := range []int{1, 2, 8} {
					log := &eventLog{}
					var err error
					if algo == "matching" {
						_, err = eng.MaximalMatchingCtx(ctx, g,
							WithStrategy(strat), WithParallelism(par), WithObserver(log))
					} else {
						_, err = eng.MaximalIndependentSetCtx(ctx, g,
							WithStrategy(strat), WithParallelism(par), WithObserver(log))
					}
					if err != nil {
						t.Fatalf("Parallelism=%d: %v", par, err)
					}
					if len(log.events) == 0 {
						t.Fatalf("Parallelism=%d: no observer events", par)
					}
					for i, ev := range log.events {
						if ev.Round != i+1 {
							t.Fatalf("Parallelism=%d: event %d has Round %d, want %d (round order)", par, i, ev.Round, i+1)
						}
						if ev.Algorithm != algo {
							t.Fatalf("Parallelism=%d: event %d Algorithm %q, want %q", par, i, ev.Algorithm, algo)
						}
					}
					if ref == nil {
						ref = log.events
						continue
					}
					if len(log.events) != len(ref) {
						t.Fatalf("Parallelism=%d: %d events, want %d", par, len(log.events), len(ref))
					}
					for i := range ref {
						// DeepEqual covers the seed-batch sub-events and the
						// incremental cost fields along with the scalars, so
						// the whole extended event must be bit-identical at
						// every Parallelism.
						if !reflect.DeepEqual(log.events[i], ref[i]) {
							t.Fatalf("Parallelism=%d: event %d is %+v, want %+v", par, i, log.events[i], ref[i])
						}
					}
				}
			})
		}
	}
}

// TestEngineCancellationPreCanceled: a context that is already dead fails
// fast with the full typed-error contract, before any solving starts.
func TestEngineCancellationPreCanceled(t *testing.T) {
	g, err := Generate("gnm", 256, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MaximalMatchingCtx(ctx, g); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled matching: err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	// An already-expired deadline surfaces its own cause.
	dctx, dcancel := context.WithTimeout(context.Background(), -1)
	defer dcancel()
	if _, err := eng.MaximalIndependentSetCtx(dctx, g); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline MIS: err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

// TestEngineCancellationMidSolve cancels from the observer after the first
// round — a deterministic mid-solve cancellation — and verifies the typed
// error, that the engine still produces reference-identical results
// afterwards, and that the canceled solve's scratch context was re-pooled
// (the engine stays allocation-flat, not re-warming from scratch).
func TestEngineCancellationMidSolve(t *testing.T) {
	for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
		t.Run(string(strat), func(t *testing.T) {
			family, avg := "gnm", 8
			if strat == StrategyLowDegree {
				family, avg = "regular", 6
			}
			g, err := Generate(family, 2048, avg, 1)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(engineOpts(strat))
			want, err := eng.MaximalMatching(g) // also warms the pool
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_, err = eng.MaximalMatchingCtx(ctx, g, WithObserver(&cancelAfter{rounds: 1, cancel: cancel}))
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("mid-solve cancel: err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-solve cancel: err = %v, want errors.Is(err, context.Canceled)", err)
			}

			// The engine must be unharmed: same bits as before the cancel.
			got, err := eng.MaximalMatching(g)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Edges) != len(want.Edges) || got.Iterations != want.Iterations {
				t.Fatalf("post-cancel solve differs: %d edges/%d iters, want %d/%d",
					len(got.Edges), got.Iterations, len(want.Edges), want.Iterations)
			}
			for i := range got.Edges {
				if got.Edges[i] != want.Edges[i] {
					t.Fatalf("post-cancel edge %d is %v, want %v", i, got.Edges[i], want.Edges[i])
				}
			}

			if testing.Short() || raceEnabled {
				return // alloc budgets hold only without race instrumentation
			}
			// Allocation-flatness survives the cancel: the canceled solve's
			// scratch context went back into the pool Reset, so warm budgets
			// still hold (same budgets as TestEngineWarmReuseAllocsConstant).
			budget := warmAllocBudget[strat]
			warm := testing.AllocsPerRun(2, func() {
				if _, err := eng.MaximalMatching(g); err != nil {
					t.Fatal(err)
				}
			})
			if warm > budget.mm {
				t.Errorf("post-cancel warm re-solve allocated %.0f objects, budget %.0f", warm, budget.mm)
			}
		})
	}
}

// TestEngineCancellationWorkerCountTable is the -race table of the
// cancellation satellite: at every Parallelism level, for both algorithms
// and strategies, a mid-solve cancellation must leave the shared engine able
// to produce reference-identical results — cancellation abandons state, it
// never corrupts it. Wired into make race-engine / the CI engine-race job.
func TestEngineCancellationWorkerCountTable(t *testing.T) {
	g, err := Generate("gnm", 512, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(nil)
	for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
		for _, par := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/par=%d", strat, par), func(t *testing.T) {
				wantMM, err := eng.MaximalMatchingCtx(context.Background(), g,
					WithStrategy(strat), WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				wantIS, err := eng.MaximalIndependentSetCtx(context.Background(), g,
					WithStrategy(strat), WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				if _, err := eng.MaximalMatchingCtx(ctx, g, WithStrategy(strat), WithParallelism(par),
					WithObserver(&cancelAfter{rounds: 1, cancel: cancel})); !errors.Is(err, ErrCanceled) {
					t.Fatalf("matching cancel: err = %v, want ErrCanceled", err)
				}
				ctx2, cancel2 := context.WithCancel(context.Background())
				defer cancel2()
				if _, err := eng.MaximalIndependentSetCtx(ctx2, g, WithStrategy(strat), WithParallelism(par),
					WithObserver(&cancelAfter{rounds: 1, cancel: cancel2})); !errors.Is(err, ErrCanceled) {
					t.Fatalf("MIS cancel: err = %v, want ErrCanceled", err)
				}

				gotMM, err := eng.MaximalMatchingCtx(context.Background(), g,
					WithStrategy(strat), WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				if len(gotMM.Edges) != len(wantMM.Edges) {
					t.Fatalf("post-cancel matching: %d edges, want %d", len(gotMM.Edges), len(wantMM.Edges))
				}
				for i := range gotMM.Edges {
					if gotMM.Edges[i] != wantMM.Edges[i] {
						t.Fatalf("post-cancel edge %d differs", i)
					}
				}
				gotIS, err := eng.MaximalIndependentSetCtx(context.Background(), g,
					WithStrategy(strat), WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				if len(gotIS.Nodes) != len(wantIS.Nodes) {
					t.Fatalf("post-cancel MIS: %d nodes, want %d", len(gotIS.Nodes), len(wantIS.Nodes))
				}
				for i := range gotIS.Nodes {
					if gotIS.Nodes[i] != wantIS.Nodes[i] {
						t.Fatalf("post-cancel node %d differs", i)
					}
				}
			})
		}
	}
}

// TestTypedErrors pins the errors.Is / errors.As contract of the structured
// sentinels.
func TestTypedErrors(t *testing.T) {
	g, err := Generate("path", 10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(nil)

	_, err = eng.MaximalMatchingCtx(context.Background(), g, WithStrategy("nope"))
	if !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("unknown strategy: err = %v, want ErrUnknownStrategy", err)
	}
	var use *UnknownStrategyError
	if !errors.As(err, &use) || use.Strategy != "nope" {
		t.Fatalf("errors.As(*UnknownStrategyError) failed on %v", err)
	}
	if _, err := MaximalIndependentSet(g, &Options{Strategy: "bogus"}); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("free-function unknown strategy: err = %v, want ErrUnknownStrategy", err)
	}

	// The cancellation error chain: ErrCanceled AND the context cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.MaximalMatchingCtx(ctx, g)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: err = %v, want ErrCanceled + context.Canceled", err)
	}

	// A NotMaximalError is an internal invariant failure and unreachable
	// through the public API; pin its matching behaviour directly.
	nme := error(&NotMaximalError{Algorithm: "matching", Reason: "edge {0,1} unmatched"})
	if !errors.Is(nme, ErrNotMaximal) {
		t.Fatal("NotMaximalError does not match ErrNotMaximal")
	}
	var asNME *NotMaximalError
	if !errors.As(nme, &asNME) || asNME.Reason == "" {
		t.Fatal("errors.As(*NotMaximalError) failed")
	}
}

// TestObserverSeedBatchEvents pins the seed-batch-granular sub-events and
// the incremental cost fields of the extended RoundEvent: per round, the
// batch stats must tile the round's search exactly (cumulative counts,
// batch sizes summing to SeedsTried, the Found flag landing on the last
// batch iff the round found its seed), and the cost counters must be
// cumulative across the event stream.
func TestObserverSeedBatchEvents(t *testing.T) {
	g, err := Generate("gnm", 512, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(nil)
	for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
		t.Run(string(strat), func(t *testing.T) {
			log := &eventLog{}
			if _, err := eng.MaximalMatchingCtx(context.Background(), g,
				WithStrategy(strat), WithObserver(log)); err != nil {
				t.Fatal(err)
			}
			if len(log.events) == 0 {
				t.Fatal("no observer events")
			}
			prevRounds, prevBatches := 0, 0
			for _, ev := range log.events {
				if len(ev.Batches) == 0 {
					t.Fatalf("round %d: no seed-batch sub-events (SeedsTried=%d)", ev.Round, ev.SeedsTried)
				}
				sum, cum := 0, 0
				for i, b := range ev.Batches {
					if b.Batch != i+1 {
						t.Fatalf("round %d: batch %d has index %d", ev.Round, i, b.Batch)
					}
					if b.Seeds <= 0 {
						t.Fatalf("round %d batch %d: %d seeds", ev.Round, b.Batch, b.Seeds)
					}
					sum += b.Seeds
					cum = b.SeedsTried
					if cum != sum {
						t.Fatalf("round %d batch %d: cumulative %d, want %d", ev.Round, b.Batch, cum, sum)
					}
					if b.Found != (i == len(ev.Batches)-1 && ev.SeedFound) {
						t.Fatalf("round %d batch %d: Found=%v misplaced", ev.Round, b.Batch, b.Found)
					}
				}
				if sum != ev.SeedsTried {
					t.Fatalf("round %d: batches sum to %d seeds, event says %d", ev.Round, sum, ev.SeedsTried)
				}
				// Cost counters are cumulative snapshots of one model.
				if ev.CostRounds <= prevRounds || ev.CostSeedBatches < prevBatches+len(ev.Batches) {
					t.Fatalf("round %d: cost counters not cumulative: rounds %d (prev %d), batches %d (prev %d + %d)",
						ev.Round, ev.CostRounds, prevRounds, ev.CostSeedBatches, prevBatches, len(ev.Batches))
				}
				prevRounds, prevBatches = ev.CostRounds, ev.CostSeedBatches
			}
		})
	}

	// With cost tracking off the sub-events still flow, but the cost
	// counters stay zero (there is no model to snapshot).
	log := &eventLog{}
	if _, err := eng.MaximalIndependentSetCtx(context.Background(), g,
		WithCostTracking(false), WithObserver(log)); err != nil {
		t.Fatal(err)
	}
	for _, ev := range log.events {
		if ev.CostRounds != 0 || ev.CostSeedBatches != 0 || ev.CostPeakMachineWords != 0 {
			t.Fatalf("round %d: nonzero cost fields without a model: %+v", ev.Round, ev)
		}
		if len(ev.Batches) == 0 {
			t.Fatalf("round %d: no sub-events with cost tracking off", ev.Round)
		}
	}
}

// TestDeadlineErrorMapping pins the ErrDeadlineExceeded refinement: a solve
// abandoned because its deadline expired matches ErrCanceled AND
// ErrDeadlineExceeded AND context.DeadlineExceeded, while a plain
// cancellation matches ErrCanceled but NOT ErrDeadlineExceeded — that is
// what lets a server map 504 vs 499 off one error value.
func TestDeadlineErrorMapping(t *testing.T) {
	g, err := Generate("gnm", 2048, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(nil)

	// Already-expired deadline: the pre-solve fast path.
	dctx, dcancel := context.WithTimeout(context.Background(), -time.Second)
	defer dcancel()
	_, err = eng.MaximalMatchingCtx(dctx, g)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrCanceled + ErrDeadlineExceeded + context.DeadlineExceeded", err)
	}

	// Deadline firing mid-solve: cancelAfter flips a deadline-expired
	// context into the solve deterministically after round 1 by pairing the
	// observer with an extremely short timeout armed at that point.
	mctx, mcancel := context.WithCancel(context.Background())
	defer mcancel()
	_, err = eng.MaximalMatchingCtx(mctx, g, WithObserver(&cancelAfter{rounds: 1, cancel: mcancel}))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-solve cancel: err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("plain cancellation must not match ErrDeadlineExceeded: %v", err)
	}

	// ErrOverloaded is a sibling, never produced by the Engine itself.
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancellation error must not match ErrOverloaded: %v", err)
	}
}

// TestObserverEventsMatchResults cross-checks the observer stream against
// the result's iteration stats: rounds and seed totals must agree, so the
// telemetry seam reports the solve that actually happened.
func TestObserverEventsMatchResults(t *testing.T) {
	g, err := Generate("powerlaw", 512, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	res, err := NewEngine(nil).MaximalIndependentSetCtx(context.Background(), g,
		WithStrategy(StrategySparsify), WithObserver(log))
	if err != nil {
		t.Fatal(err)
	}
	// The final isolated-join iteration performs no seed search and emits no
	// event, so the stream length matches the searched rounds.
	searched := 0
	for _, ev := range log.events {
		if ev.SeedsTried <= 0 {
			t.Errorf("round %d: no seeds tried in event %+v", ev.Round, ev)
		}
		if ev.LiveEdges <= 0 || ev.LiveNodes <= 0 {
			t.Errorf("round %d: empty live counts in event %+v", ev.Round, ev)
		}
		searched++
	}
	if searched > res.Iterations || searched == 0 {
		t.Fatalf("%d observed rounds vs %d result iterations", searched, res.Iterations)
	}
}
