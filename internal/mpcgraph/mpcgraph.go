// Package mpcgraph implements the graph-on-cluster layer of Section 2.2 of
// the paper on the *message-level* MPC simulator: edges are distributed
// across machines, and the basic aggregations the algorithms rely on —
// per-node degrees, degree histograms, neighbourhood collection — are
// computed with real routed messages using Lemma 4's primitives ("by
// sorting edges according to node identifiers, we can ensure that the
// neighbourhoods of all nodes are stored on contiguous blocks of machines;
// then, by computing prefix sums, we can compute sums of values among a
// node's neighbourhood, or indeed over the whole graph").
//
// The algorithm packages execute against the charged cost model
// (internal/simcost) for speed; this package exists to validate, with
// actual messages, that the operations the cost model charges O(1) rounds
// for really do complete in O(1) rounds within the space bounds — the
// integration tests cross-check its outputs against the in-memory
// implementations on the same graphs.
package mpcgraph

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// DistGraph is a graph whose directed edge list (both orientations of every
// undirected edge) is distributed across a cluster, each machine holding a
// contiguous run of (node, neighbour) words.
type DistGraph struct {
	N       int
	Cluster *mpc.Cluster
}

// encode packs a directed edge into one word: node*2^32 | neighbour. Node
// ids must fit in 32 bits, which the builders guarantee.
func encode(u, v graph.NodeID) uint64 { return uint64(u)<<32 | uint64(uint32(v)) }

func decode(w uint64) (graph.NodeID, graph.NodeID) {
	return graph.NodeID(w >> 32), graph.NodeID(uint32(w))
}

// Load distributes g's directed edges over a cluster of the given shape.
// Edges are dealt round-robin (an adversarially balanced initial layout, as
// the model allows arbitrary input distribution).
func Load(g *graph.Graph, machines, space int) (*DistGraph, error) {
	c := mpc.NewCluster(mpc.Config{Machines: machines, Space: space})
	var words []uint64
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			words = append(words, encode(graph.NodeID(v), u))
		}
	}
	// Round-robin deal to scatter each node's edges across machines, the
	// worst case for locality.
	stores := make([][]uint64, machines)
	for i, w := range words {
		stores[i%machines] = append(stores[i%machines], w)
	}
	for i, s := range stores {
		if len(s) > space {
			return nil, fmt.Errorf("mpcgraph: machine %d needs %d > S=%d words", i, len(s), space)
		}
		c.SetStore(i, s)
	}
	return &DistGraph{N: g.N(), Cluster: c}, nil
}

// SortByNode sorts the distributed edge words so that each node's
// neighbourhood occupies a contiguous block of machines (one Lemma 4 sort,
// 4 rounds). Encoded words sort by (node, neighbour) automatically.
func (d *DistGraph) SortByNode() error {
	return mpc.Sort(d.Cluster)
}

// Degrees computes every node's degree with messages only: after
// SortByNode, each machine counts the runs it holds locally and forwards
// boundary runs to machine 0 of each node's block; the returned slice is
// assembled from the machine outputs. Rounds: 4 (sort) + 2 (boundary
// merge).
func (d *DistGraph) Degrees() ([]int, error) {
	if err := d.SortByNode(); err != nil {
		return nil, err
	}
	m := d.Cluster.Config().Machines
	// Each machine publishes (node, count) pairs for the nodes it holds;
	// counts for nodes split across machine boundaries are summed by the
	// collector. In the real model the collector is the contiguous block's
	// first machine; here machine 0 doubles as the collector and the final
	// assembly is the test-visible output (the paper's "each node knows
	// its degree" state).
	err := d.Cluster.Round("degrees", func(ctx *mpc.MachineCtx) {
		s := ctx.Store()
		var out []uint64
		i := 0
		for i < len(s) {
			node, _ := decode(s[i])
			j := i
			for j < len(s) {
				n2, _ := decode(s[j])
				if n2 != node {
					break
				}
				j++
			}
			out = append(out, uint64(node), uint64(j-i))
			i = j
		}
		ctx.Send(0, out)
	})
	if err != nil {
		return nil, err
	}
	deg := make([]int, d.N)
	err = d.Cluster.Round("degrees", func(ctx *mpc.MachineCtx) {
		if ctx.ID != 0 {
			return
		}
		for _, msg := range ctx.Inbox {
			for i := 0; i+1 < len(msg); i += 2 {
				deg[msg[i]] += int(msg[i+1])
			}
		}
	})
	if err != nil {
		return nil, err
	}
	_ = m
	return deg, nil
}

// DegreeHistogram returns the global histogram of degrees (capped at
// maxDeg) via one AllReduce of the per-machine partial histograms — the
// pattern the class-selection step of Section 3.1 uses to find the class
// maximising Σ_{v∈B_i} d(v).
func (d *DistGraph) DegreeHistogram(deg []int, maxDeg int) ([]uint64, error) {
	buckets := maxDeg + 1
	// Partition nodes over machines for the purpose of local counting.
	m := d.Cluster.Config().Machines
	return mpc.AllReduceSum(d.Cluster, buckets, func(id int) []uint64 {
		h := make([]uint64, buckets)
		for v := id; v < len(deg); v += m {
			dv := deg[v]
			if dv > maxDeg {
				dv = maxDeg
			}
			h[dv]++
		}
		return h
	})
}

// CollectNeighborhood gathers node v's full neighbour list onto machine 0
// using one request round and one reply round (the §2.2 pattern: after
// SortByNode the owners of v's block answer the request). Returns the
// sorted neighbour list.
func (d *DistGraph) CollectNeighborhood(v graph.NodeID) ([]graph.NodeID, error) {
	if err := d.SortByNode(); err != nil {
		return nil, err
	}
	// Request round: machine 0 broadcasts the wanted node id (the block
	// owners could be addressed directly after the sort; a broadcast keeps
	// the protocol simple and is still O(1) rounds).
	err := d.Cluster.Round("collect.request", func(ctx *mpc.MachineCtx) {
		if ctx.ID != 0 {
			return
		}
		m := d.Cluster.Config().Machines
		for to := 0; to < m; to++ {
			ctx.SendValues(to, uint64(v))
		}
	})
	if err != nil {
		return nil, err
	}
	// Reply round: holders of v's edges send the neighbours back.
	err = d.Cluster.Round("collect.reply", func(ctx *mpc.MachineCtx) {
		want := graph.NodeID(-1)
		for _, msg := range ctx.Inbox {
			if len(msg) == 1 {
				want = graph.NodeID(msg[0])
			}
		}
		if want < 0 {
			return
		}
		var out []uint64
		for _, w := range ctx.Store() {
			node, nbr := decode(w)
			if node == want {
				out = append(out, uint64(nbr))
			}
		}
		if len(out) > 0 {
			ctx.Send(0, out)
		}
	})
	if err != nil {
		return nil, err
	}
	// Assemble on machine 0.
	var nbrs []graph.NodeID
	err = d.Cluster.Round("collect.assemble", func(ctx *mpc.MachineCtx) {
		if ctx.ID != 0 {
			return
		}
		for _, msg := range ctx.Inbox {
			for _, w := range msg {
				nbrs = append(nbrs, graph.NodeID(w))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	slices.Sort(nbrs)
	return nbrs, nil
}

// TotalEdgeWords returns the number of directed-edge words held across the
// cluster (= 2m when consistent) — an integrity check used by tests.
func (d *DistGraph) TotalEdgeWords() int {
	total := 0
	m := d.Cluster.Config().Machines
	for i := 0; i < m; i++ {
		total += len(d.Cluster.Store(i))
	}
	return total
}
