package mpcgraph

import (
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// inMemoryReference recomputes the protocol's election and matching with
// the in-memory primitives: same seed batch, objective |E_h|, first
// maximum wins.
func inMemoryReference(g *graph.Graph, batch int) (int, []graph.Edge) {
	n := g.N()
	fam := core.PairwiseFamily(n)
	edges := g.Edges()
	enum := fam.Enumerate()
	bestIdx, bestCount := 0, -1
	var bestSeed []uint64
	for i := 0; i < batch && enum.Next(); i++ {
		seed := append([]uint64(nil), enum.Seed()...)
		eh := core.LocalMinEdges(g, edges, func(e graph.Edge) uint64 {
			return fam.Eval(seed, core.SlotKey(e.Key(n), 0, n))
		})
		if len(eh) > bestCount {
			bestCount = len(eh)
			bestIdx = i
			bestSeed = seed
		}
	}
	eh := core.LocalMinEdges(g, edges, func(e graph.Edge) uint64 {
		return fam.Eval(bestSeed, core.SlotKey(e.Key(n), 0, n))
	})
	return bestIdx, eh
}

func TestDetLubyStepMatchesInMemory(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid":  gen.Grid2D(8, 9),
		"cycle": gen.Cycle(40),
		"reg4":  gen.RandomRegular(60, 4, 3),
		"tree":  gen.RandomTree(80, 5),
	} {
		res, err := DetLubyMatchingStep(g, 8, 1<<14, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantIdx, wantEdges := inMemoryReference(g, 16)
		if res.SeedIndex != wantIdx {
			t.Errorf("%s: cluster elected seed %d, in-memory %d (counts %v)",
				name, res.SeedIndex, wantIdx, res.SeedCounts)
		}
		if len(res.Matching) != len(wantEdges) {
			t.Fatalf("%s: matching size %d, want %d", name, len(res.Matching), len(wantEdges))
		}
		for i := range wantEdges {
			if res.Matching[i] != wantEdges[i] {
				t.Fatalf("%s: edge %d = %v, want %v", name, i, res.Matching[i], wantEdges[i])
			}
		}
	}
}

func TestDetLubyStepProducesMatching(t *testing.T) {
	g := gen.RandomRegular(100, 6, 7)
	res, err := DetLubyMatchingStep(g, 10, 1<<14, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := check.IsMatching(g, res.Matching); !ok {
		t.Fatal(reason)
	}
	if len(res.Matching) == 0 {
		t.Error("empty candidate matching on a non-empty graph")
	}
}

func TestDetLubyStepConstantRounds(t *testing.T) {
	// The whole step must cost a constant number of rounds independent of
	// the graph size — the O(1) claim of Section 3.3.
	var rounds []int
	for _, n := range []int{50, 100, 200} {
		g := gen.RandomRegular(n, 4, uint64(n))
		res, err := DetLubyMatchingStep(g, 8, 1<<14, 8)
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, res.Stats.Rounds)
	}
	for _, r := range rounds {
		if r != rounds[0] {
			t.Errorf("round count varies with n: %v", rounds)
		}
	}
	if rounds[0] > 16 {
		t.Errorf("step took %d rounds; expected a small constant", rounds[0])
	}
}

func TestDetLubyStepNoSpaceViolationsOnLowDegree(t *testing.T) {
	g := gen.Grid2D(12, 12)
	res, err := DetLubyMatchingStep(g, 12, 1<<12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Violations) != 0 {
		t.Errorf("violations on a low-degree graph: %v", res.Stats.Violations)
	}
}

func TestDetLubyStepSeedCountsConsistent(t *testing.T) {
	g := gen.Cycle(30)
	res, err := DetLubyMatchingStep(g, 4, 1<<12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.SeedCounts[res.SeedIndex]) != len(res.Matching) {
		t.Errorf("elected seed count %d != matching size %d",
			res.SeedCounts[res.SeedIndex], len(res.Matching))
	}
	for i, c := range res.SeedCounts {
		if c > res.SeedCounts[res.SeedIndex] {
			t.Errorf("seed %d has count %d above elected %d", i, c, res.SeedCounts[res.SeedIndex])
		}
	}
}

func TestDetLubyStepRejectsBadBatch(t *testing.T) {
	if _, err := DetLubyMatchingStep(gen.Path(4), 2, 1024, 0); err == nil {
		t.Error("batch 0 accepted")
	}
}
