package mpcgraph

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestEncodeDecode(t *testing.T) {
	for _, pair := range [][2]graph.NodeID{{0, 0}, {1, 2}, {1 << 20, 3}, {42, 1<<31 - 1}} {
		u, v := decode(encode(pair[0], pair[1]))
		if u != pair[0] || v != pair[1] {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", pair[0], pair[1], u, v)
		}
	}
}

func TestLoadHoldsAllEdges(t *testing.T) {
	g := gen.GNM(200, 800, 1)
	d, err := Load(g, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalEdgeWords() != 2*g.M() {
		t.Errorf("cluster holds %d words, want %d", d.TotalEdgeWords(), 2*g.M())
	}
}

func TestLoadRejectsTinySpace(t *testing.T) {
	g := gen.Complete(64)
	if _, err := Load(g, 2, 16); err == nil {
		t.Error("overfull load accepted")
	}
}

func TestDegreesMatchInMemory(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"gnm":   gen.GNM(300, 1500, 2),
		"star":  gen.Star(100),
		"grid":  gen.Grid2D(10, 12),
		"cycle": gen.Cycle(77),
	} {
		d, err := Load(g, 8, 1<<13)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := d.Degrees()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := g.Degrees()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: deg(%d) = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestDegreesRoundCount(t *testing.T) {
	g := gen.GNM(256, 1024, 3)
	d, err := Load(g, 8, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Degrees(); err != nil {
		t.Fatal(err)
	}
	// Sort (4) + publish/collect (2) = 6 rounds, constant in the graph size.
	if r := d.Cluster.Stats().Rounds; r != 6 {
		t.Errorf("degree computation took %d rounds, want 6", r)
	}
	if v := d.Cluster.Stats().Violations; len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := gen.Star(50) // one node of degree 49, 49 nodes of degree 1
	d, err := Load(g, 4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := d.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	hist, err := d.DegreeHistogram(deg, 49)
	if err != nil {
		t.Fatal(err)
	}
	if hist[1] != 49 || hist[49] != 1 {
		t.Errorf("histogram wrong: deg1=%d deg49=%d", hist[1], hist[49])
	}
	var total uint64
	for _, h := range hist {
		total += h
	}
	if total != 50 {
		t.Errorf("histogram counts %d nodes, want 50", total)
	}
}

func TestCollectNeighborhood(t *testing.T) {
	g := gen.Grid2D(6, 6)
	d, err := Load(g, 6, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.NodeID{0, 7, 35} {
		got, err := d.CollectNeighborhood(v)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("N(%d): got %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("N(%d): got %v, want %v", v, got, want)
			}
		}
	}
}

func TestSortByNodeIdempotent(t *testing.T) {
	g := gen.GNM(100, 400, 5)
	d, err := Load(g, 4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SortByNode(); err != nil {
		t.Fatal(err)
	}
	first := d.Cluster.GatherAll()
	if err := d.SortByNode(); err != nil {
		t.Fatal(err)
	}
	second := d.Cluster.GatherAll()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("second sort changed the data")
		}
	}
}

func TestDistributedAgainstCostModelConsistency(t *testing.T) {
	// The cost model charges 4 rounds for a sort; the message-level sort
	// takes exactly 4. This is the cross-validation anchoring simcost.
	g := gen.GNM(256, 1024, 9)
	d, err := Load(g, 8, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SortByNode(); err != nil {
		t.Fatal(err)
	}
	if r := d.Cluster.Stats().RoundsByLabel()["sort"]; r != 4 {
		t.Errorf("message-level sort = %d rounds; simcost charges 4", r)
	}
}
