package mpcgraph

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpc"
)

// This file runs ONE derandomized Luby matching step entirely at the
// message level — the end-to-end fidelity artifact for the paper's claim
// that a step costs O(1) MPC rounds. The protocol mirrors Section 3.3:
//
//  1. adjacency lists are distributed one owner machine per node (the
//     layout one Lemma 4 sort produces; charged as such);
//  2. the owner of each canonical edge {u,v} (the owner of u) collects
//     N(v) from v's owner — the "2-hop neighbourhood onto one machine"
//     collection, feasible because degrees are bounded;
//  3. every machine evaluates a whole batch of candidate seeds on its
//     local data: for each seed, how many of its canonical edges are
//     (z, key)-local minima;
//  4. one AllReduce of the per-seed counts elects the winner (first
//     maximum — every machine sees the same totals, so the choice is
//     consistent without further communication);
//  5. owners apply the winning seed and machine 0 assembles E_h.
//
// Tests validate the outcome against the in-memory core.LocalMinEdges on
// the same seed batch: identical chosen seed, identical matching.
type StepResult struct {
	Matching   []graph.Edge
	SeedIndex  int      // index of the elected seed within the batch
	SeedCounts []uint64 // per-seed |E_h| totals from the AllReduce
	Stats      mpc.Stats
}

// adjRows is one machine's decoded adjacency view: nbrs for random
// access, order for deterministic iteration (store order).
type adjRows struct {
	order []graph.NodeID
	nbrs  map[graph.NodeID][]graph.NodeID
}

// DetLubyMatchingStep runs the protocol on g over a cluster of the given
// shape, evaluating the first `batch` seeds of the canonical enumeration of
// core.PairwiseFamily(n). Degrees must satisfy the collection bound
// (Σ_{e at machine} d(v) words within S); violations are recorded by the
// cluster and surfaced in Stats.
func DetLubyMatchingStep(g *graph.Graph, machines, space, batch int) (*StepResult, error) {
	if batch < 1 {
		return nil, fmt.Errorf("mpcgraph: batch must be >= 1")
	}
	n := g.N()
	fam := core.PairwiseFamily(n)
	seeds := make([][]uint64, 0, batch)
	enum := fam.Enumerate()
	for len(seeds) < batch && enum.Next() {
		seeds = append(seeds, append([]uint64(nil), enum.Seed()...))
	}

	c := mpc.NewCluster(mpc.Config{Machines: machines, Space: space})
	owner := func(v graph.NodeID) int { return int(v) % machines }

	// Owner layout: machine owner(v) stores v's adjacency as
	// [v, deg, nbr...]. Achieving this layout costs one Lemma 4 sort on a
	// real cluster; we charge it as 4 labelled rounds.
	stores := make([][]uint64, machines)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(graph.NodeID(v))
		row := make([]uint64, 0, 2+len(nbrs))
		row = append(row, uint64(v), uint64(len(nbrs)))
		for _, u := range nbrs {
			row = append(row, uint64(u))
		}
		stores[owner(graph.NodeID(v))] = append(stores[owner(graph.NodeID(v))], row...)
	}
	for i, s := range stores {
		c.SetStore(i, s)
	}
	for r := 0; r < 4; r++ {
		if err := c.Round("sort", func(*mpc.MachineCtx) {}); err != nil {
			return nil, err
		}
	}

	// Decode helper: adjacency rows held by one machine, as a lookup map
	// plus the node order the rows were stored in — every loop below walks
	// the order slice, never the map, so the protocol's message and
	// evaluation order is a pure function of the store contents.
	decodeRows := func(s []uint64) adjRows {
		rows := adjRows{nbrs: map[graph.NodeID][]graph.NodeID{}}
		i := 0
		for i < len(s) {
			v := graph.NodeID(s[i])
			d := int(s[i+1])
			nbrs := make([]graph.NodeID, d)
			for j := 0; j < d; j++ {
				nbrs[j] = graph.NodeID(s[i+2+j])
			}
			rows.nbrs[v] = nbrs
			rows.order = append(rows.order, v)
			i += 2 + d
		}
		return rows
	}

	// Round A (request): for each canonical edge {u,v} (u < v) held via u,
	// u's owner asks owner(v) for N(v). Deduplicate per (machine, v).
	if err := c.Round("collect.request", func(ctx *mpc.MachineCtx) {
		rows := decodeRows(ctx.Store())
		wanted := map[graph.NodeID]bool{}
		var wantOrder []graph.NodeID
		for _, v := range rows.order {
			for _, u := range rows.nbrs[v] {
				if v < u && owner(u) != ctx.ID && !wanted[u] {
					wanted[u] = true
					wantOrder = append(wantOrder, u)
				}
			}
		}
		byOwner := map[int][]uint64{}
		for _, u := range wantOrder {
			byOwner[owner(u)] = append(byOwner[owner(u)], uint64(u))
		}
		for to := 0; to < machines; to++ {
			req := byOwner[to]
			if len(req) == 0 {
				continue
			}
			slices.Sort(req)
			ctx.Send(to, append([]uint64{uint64(ctx.ID)}, req...))
		}
	}); err != nil {
		return nil, err
	}

	// Round B (reply): owners answer with the requested adjacency rows.
	if err := c.Round("collect.reply", func(ctx *mpc.MachineCtx) {
		rows := decodeRows(ctx.Store())
		for _, msg := range ctx.Inbox {
			if len(msg) < 2 {
				continue
			}
			requester := int(msg[0])
			var out []uint64
			for _, w := range msg[1:] {
				v := graph.NodeID(w)
				nbrs := rows.nbrs[v]
				out = append(out, uint64(v), uint64(len(nbrs)))
				for _, u := range nbrs {
					out = append(out, uint64(u))
				}
			}
			ctx.Send(requester, out)
		}
	}); err != nil {
		return nil, err
	}

	// Round C (evaluate): machines fold the replies into their local view,
	// then compute per-seed local-minimum counts over their canonical
	// edges. The remote adjacency is kept host-side per machine (it is
	// semantically machine-local memory; its size was already bounded by
	// the message that carried it).
	remote := make([]map[graph.NodeID][]graph.NodeID, machines)
	perMachineCounts := make([][]uint64, machines)
	if err := c.Round("evaluate", func(ctx *mpc.MachineCtx) {
		local := decodeRows(ctx.Store())
		rem := map[graph.NodeID][]graph.NodeID{}
		for _, msg := range ctx.Inbox {
			dec := decodeRows(msg)
			for _, v := range dec.order {
				rem[v] = dec.nbrs[v]
			}
		}
		remote[ctx.ID] = rem
		neighbourhood := func(v graph.NodeID) []graph.NodeID {
			if nbrs, ok := local.nbrs[v]; ok {
				return nbrs
			}
			return rem[v]
		}
		counts := make([]uint64, len(seeds))
		for si, seed := range seeds {
			z := func(a, b graph.NodeID) core.ZKey {
				e := graph.Edge{U: a, V: b}.Canon()
				key := e.Key(n)
				return core.ZKey{Z: fam.Eval(seed, core.SlotKey(key, 0, n)), ID: key}
			}
			for _, v := range local.order {
				for _, u := range local.nbrs[v] {
					if v >= u {
						continue // not the canonical holder
					}
					ke := z(v, u)
					isMin := true
					for _, w := range neighbourhood(v) {
						if w != u && !ke.Less(z(v, w)) {
							isMin = false
							break
						}
					}
					if isMin {
						for _, w := range neighbourhood(u) {
							if w != v && !ke.Less(z(u, w)) {
								isMin = false
								break
							}
						}
					}
					if isMin {
						counts[si]++
					}
				}
			}
		}
		perMachineCounts[ctx.ID] = counts
	}); err != nil {
		return nil, err
	}

	// AllReduce the per-seed counts; every machine learns the totals and
	// elects the first maximum.
	totals, err := mpc.AllReduceSum(c, len(seeds), func(id int) []uint64 {
		if perMachineCounts[id] == nil {
			return make([]uint64, len(seeds))
		}
		return perMachineCounts[id]
	})
	if err != nil {
		return nil, err
	}
	best := 0
	for i, t := range totals {
		if t > totals[best] {
			best = i
		}
	}

	// Apply: owners emit their matched canonical edges under the elected
	// seed; machine 0 assembles.
	var matched []graph.Edge
	if err := c.Round("apply", func(ctx *mpc.MachineCtx) {
		local := decodeRows(ctx.Store())
		rem := remote[ctx.ID]
		neighbourhood := func(v graph.NodeID) []graph.NodeID {
			if nbrs, ok := local.nbrs[v]; ok {
				return nbrs
			}
			return rem[v]
		}
		seed := seeds[best]
		z := func(a, b graph.NodeID) core.ZKey {
			e := graph.Edge{U: a, V: b}.Canon()
			key := e.Key(n)
			return core.ZKey{Z: fam.Eval(seed, core.SlotKey(key, 0, n)), ID: key}
		}
		var out []uint64
		for _, v := range local.order {
			for _, u := range local.nbrs[v] {
				if v >= u {
					continue
				}
				ke := z(v, u)
				isMin := true
				for _, w := range neighbourhood(v) {
					if w != u && !ke.Less(z(v, w)) {
						isMin = false
						break
					}
				}
				if isMin {
					for _, w := range neighbourhood(u) {
						if w != v && !ke.Less(z(u, w)) {
							isMin = false
							break
						}
					}
				}
				if isMin {
					out = append(out, uint64(v), uint64(u))
				}
			}
		}
		if len(out) > 0 {
			ctx.Send(0, out)
		}
	}); err != nil {
		return nil, err
	}
	if err := c.Round("assemble", func(ctx *mpc.MachineCtx) {
		if ctx.ID != 0 {
			return
		}
		for _, msg := range ctx.Inbox {
			for i := 0; i+1 < len(msg); i += 2 {
				matched = append(matched, graph.Edge{U: graph.NodeID(msg[i]), V: graph.NodeID(msg[i+1])})
			}
		}
	}); err != nil {
		return nil, err
	}
	slices.SortFunc(matched, func(a, b graph.Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
	return &StepResult{
		Matching:   matched,
		SeedIndex:  best,
		SeedCounts: totals,
		Stats:      c.Stats(),
	}, nil
}
