package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	p.Validate()
	if p.Delta() != 1.0/16 {
		t.Errorf("delta = %f", p.Delta())
	}
}

func TestWithEpsilon(t *testing.T) {
	p := DefaultParams().WithEpsilon(0.25)
	if p.InvDelta != 32 {
		t.Errorf("InvDelta = %d, want 32", p.InvDelta)
	}
	p.Validate()
	defer func() {
		if recover() == nil {
			t.Error("WithEpsilon(0) did not panic")
		}
	}()
	DefaultParams().WithEpsilon(0)
}

func TestValidateCatchesBadParams(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, InvDelta: 16, KWise: 4, Slack: 1, ThresholdFrac: 0.5},
		{Epsilon: 0.5, InvDelta: 0, KWise: 4, Slack: 1, ThresholdFrac: 0.5},
		{Epsilon: 0.5, InvDelta: 16, KWise: 1, Slack: 1, ThresholdFrac: 0.5},
		{Epsilon: 0.5, InvDelta: 16, KWise: 4, Slack: 0, ThresholdFrac: 0.5},
		{Epsilon: 0.5, InvDelta: 16, KWise: 4, Slack: 1, ThresholdFrac: 0},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			p.Validate()
		}()
	}
}

func TestDegreeClassesPartition(t *testing.T) {
	dc := NewDegreeClasses(1<<14, 16)
	if dc.Bounds[0] != 1 {
		t.Errorf("b0 = %d", dc.Bounds[0])
	}
	if dc.Bounds[16] < 1<<14 {
		t.Errorf("b_K = %d < n", dc.Bounds[16])
	}
	// Every degree in [1, n-1] must land in exactly one class in [1, K].
	for d := 1; d < 1<<14; d++ {
		i := dc.Class(d)
		if i < 1 || i > 16 {
			t.Fatalf("Class(%d) = %d out of range", d, i)
		}
		if uint64(d) >= dc.Bounds[i] || uint64(d) < dc.Bounds[i-1] {
			t.Fatalf("Class(%d) = %d but bounds [%d,%d)", d, i, dc.Bounds[i-1], dc.Bounds[i])
		}
	}
	if dc.Class(0) != 0 || dc.Class(-3) != 0 {
		t.Error("isolated nodes must be class 0")
	}
}

func TestDegreeClassesMonotone(t *testing.T) {
	dc := NewDegreeClasses(1000, 8)
	prev := 0
	for d := 1; d < 1000; d++ {
		i := dc.Class(d)
		if i < prev {
			t.Fatalf("class decreased: Class(%d)=%d after %d", d, i, prev)
		}
		prev = i
	}
}

func TestDegreeClassesTinyN(t *testing.T) {
	dc := NewDegreeClasses(4, 16)
	// Bands are degenerate at tiny n but must stay strictly increasing.
	for i := 1; i <= 16; i++ {
		if dc.Bounds[i] <= dc.Bounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, dc.Bounds)
		}
	}
	for d := 1; d < 4; d++ {
		if i := dc.Class(d); i < 1 || i > 16 {
			t.Errorf("Class(%d) = %d", d, i)
		}
	}
}

func TestStageCount(t *testing.T) {
	for _, c := range []struct{ i, want int }{{1, 0}, {4, 0}, {5, 1}, {10, 6}} {
		if got := StageCount(c.i); got != c.want {
			t.Errorf("StageCount(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestGroupSizeAndNDelta(t *testing.T) {
	dc := NewDegreeClasses(1<<16, 16)
	if g := dc.GroupSize(); g != 16 { // (2^16)^(4/16) = 2^4
		t.Errorf("GroupSize = %d, want 16", g)
	}
	if nd := dc.NDelta(); nd != 2 { // (2^16)^(1/16) = 2
		t.Errorf("NDelta = %d, want 2", nd)
	}
}

func TestComputeXCompleteGraph(t *testing.T) {
	// In K_n all degrees are equal, so every node has d(v) neighbours with
	// d(u) <= d(v): X = V.
	g := gen.Complete(10)
	x := ComputeX(g, g.Degrees())
	for v, in := range x {
		if !in {
			t.Errorf("node %d of K10 not in X", v)
		}
	}
}

func TestComputeXStar(t *testing.T) {
	// Star: leaves have their only neighbour (the centre) with larger
	// degree, so leaves are NOT in X; the centre has all n-1 neighbours with
	// smaller degree, so it is.
	g := gen.Star(10)
	x := ComputeX(g, g.Degrees())
	if !x[0] {
		t.Error("star centre not in X")
	}
	for v := 1; v < 10; v++ {
		if x[v] {
			t.Errorf("leaf %d in X", v)
		}
	}
}

func TestXWeightLemma3(t *testing.T) {
	// Lemma 3: Σ_{v∈X} d(v) >= |E|/2 (we verify the stronger-looking bound
	// the paper's Corollary 8 proof uses: >= |E|/2 with the 1/2 constant).
	for _, g := range []*graph.Graph{
		gen.GNM(300, 2000, 1),
		gen.PowerLaw(300, 1500, 2.5, 2),
		gen.Complete(40),
		gen.Star(100),
		gen.Grid2D(15, 20),
	} {
		deg := g.Degrees()
		x := ComputeX(g, deg)
		if w := XWeight(x, deg); w < int64(g.M())/2 {
			t.Errorf("%v: XWeight %d < m/2 = %d", g, w, g.M()/2)
		}
	}
}

func TestComputeACorollary15(t *testing.T) {
	// Corollary 15: Σ_{v∈A} d(v) >= |E|/2. Also X ⊆ A.
	for _, g := range []*graph.Graph{
		gen.GNM(300, 2000, 3),
		gen.Star(50),
		gen.Grid2D(10, 10),
	} {
		deg := g.Degrees()
		a := ComputeA(g, deg)
		x := ComputeX(g, deg)
		var w int64
		for v, in := range a {
			if in {
				w += int64(deg[v])
			}
			if x[v] && !in {
				t.Errorf("%v: node %d in X but not A", g, v)
			}
		}
		if w < int64(g.M())/2 {
			t.Errorf("%v: A-weight %d < m/2", g, w)
		}
	}
}

func TestZKeyOrdering(t *testing.T) {
	a := ZKey{1, 5}
	b := ZKey{1, 6}
	c := ZKey{2, 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("tie-break by id broken")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("z ordering broken")
	}
	if a.Less(a) {
		t.Error("irreflexive violated")
	}
}

func TestLocalMinEdgesIsMatching(t *testing.T) {
	g := gen.GNM(100, 400, 7)
	edges := g.Edges()
	z := func(e graph.Edge) uint64 { return (uint64(e.U)*2654435761 + uint64(e.V)*40503) % 1009 }
	mm := LocalMinEdges(g, edges, z)
	used := map[graph.NodeID]bool{}
	for _, e := range mm {
		if used[e.U] || used[e.V] {
			t.Fatalf("LocalMinEdges not a matching at %v", e)
		}
		used[e.U] = true
		used[e.V] = true
	}
	if len(mm) == 0 {
		t.Error("no local-min edges on a non-empty graph")
	}
}

func TestLocalMinEdgesGlobalMinIncluded(t *testing.T) {
	g := gen.Cycle(9)
	edges := g.Edges()
	z := func(e graph.Edge) uint64 { return e.Key(9) * 7 % 31 }
	mm := LocalMinEdges(g, edges, z)
	// The globally smallest (z, key) edge is always a local minimum.
	best := 0
	for i := 1; i < len(edges); i++ {
		a := ZKey{z(edges[i]), edges[i].Key(9)}
		b := ZKey{z(edges[best]), edges[best].Key(9)}
		if a.Less(b) {
			best = i
		}
	}
	found := false
	for _, e := range mm {
		if e == edges[best] {
			found = true
		}
	}
	if !found {
		t.Error("global minimum edge missing from local minima")
	}
}

func TestLocalMinEdgesConstantZUsesTieBreak(t *testing.T) {
	g := gen.Complete(6)
	edges := g.Edges()
	mm := LocalMinEdges(g, edges, func(graph.Edge) uint64 { return 42 })
	if len(mm) != 1 {
		t.Errorf("K6 constant-z local minima = %d, want exactly 1 (smallest key)", len(mm))
	}
}

// TestLocalMinEdgesSelBranchEquivalence pins the three insertion variants of
// LocalMinEdgesSel to one answer: the packed dense path (n small against the
// edge list: flat table wipe, no stamps), the packed stamped path (n > 4m:
// epoch-stamped slots, no wipe), and the unpacked ZKey fallback (z values too
// wide to pack). The (z, key) order is the same under every variant and every
// id-space size, so the selected edges must be identical edge for edge.
func TestLocalMinEdgesSelBranchEquivalence(t *testing.T) {
	g := gen.GNM(200, 420, 3)
	edges := g.Edges()
	z := make([]uint64, len(edges))
	for i := range z {
		z[i] = (uint64(i)*2654435761 + 17) % 997 // small values + ties
	}
	z[0], z[1] = z[2], z[2] // deliberate tie needing the key tie-break
	run := func(n int, zMax uint64) []graph.Edge {
		var sel EdgeSel
		EdgeSelInit(&sel, n, edges, nil, zMax)
		var s EdgeMinScratch
		got := LocalMinEdgesSel(&s, &sel, z)
		return append([]graph.Edge(nil), got...)
	}
	dense := run(g.N(), 996) // n = 200 <= 4*420: wipe path, packed
	if 4*len(edges) >= 1<<20 {
		t.Fatal("workload too dense for the stamped variant")
	}
	stamped := run(1<<20, 996)         // n ≫ 4m: stamped path, packed
	unpacked := run(g.N(), ^uint64(0)) // zMax forces the ZKey fallback
	for name, got := range map[string][]graph.Edge{"stamped": stamped, "unpacked": unpacked} {
		if len(got) != len(dense) {
			t.Fatalf("%s selected %d edges, dense path %d", name, len(got), len(dense))
		}
		for i := range got {
			if got[i] != dense[i] {
				t.Fatalf("%s edge %d is %v, dense path %v", name, i, got[i], dense[i])
			}
		}
	}
	if len(dense) == 0 {
		t.Fatal("no edges selected on a non-empty graph")
	}
}

func TestLocalMinNodesIndependent(t *testing.T) {
	g := gen.GNM(120, 500, 9)
	inQ := make([]bool, g.N())
	for v := range inQ {
		inQ[v] = v%3 != 0 // restrict to a subset
	}
	z := func(v graph.NodeID) uint64 { return uint64(v) * 2654435761 % 997 }
	is := LocalMinNodes(g, inQ, z)
	inIS := make([]bool, g.N())
	for _, v := range is {
		if !inQ[v] {
			t.Fatalf("node %d outside Q selected", v)
		}
		inIS[v] = true
	}
	for _, e := range g.Edges() {
		if inIS[e.U] && inIS[e.V] {
			t.Fatalf("adjacent nodes %v both selected", e)
		}
	}
}

func TestLocalMinNodesIsolatedInQJoin(t *testing.T) {
	// A Q-node with no Q-neighbours is vacuously a local minimum.
	g := gen.Path(3)
	inQ := []bool{true, false, true}
	is := LocalMinNodes(g, inQ, func(v graph.NodeID) uint64 { return uint64(v) })
	if len(is) != 2 {
		t.Errorf("isolated-in-Q nodes not all selected: %v", is)
	}
}

func TestFieldAndFamilies(t *testing.T) {
	if EdgeField(100) != 64*10000 {
		t.Errorf("EdgeField(100) = %d", EdgeField(100))
	}
	if EdgeField(2) != 1024 {
		t.Errorf("EdgeField floor missing: %d", EdgeField(2))
	}
	pf := PairwiseFamily(100)
	if pf.K() != 2 || pf.P() < 64*10000 {
		t.Errorf("pairwise family wrong: k=%d p=%d", pf.K(), pf.P())
	}
	kf := KWiseFamily(100, 4)
	if kf.K() != 4 {
		t.Errorf("kwise family wrong: k=%d", kf.K())
	}
}

func TestSlotKeyDisjoint(t *testing.T) {
	n := 50
	p := EdgeField(n)
	// Different slots map disjoint ranges, all below the field size.
	maxKey := uint64(n)*uint64(n) - 1
	for slot := 0; slot < SlotMax; slot++ {
		lo := SlotKey(0, slot, n)
		hi := SlotKey(maxKey, slot, n)
		if hi >= p {
			t.Fatalf("slot %d key %d exceeds field %d", slot, hi, p)
		}
		if slot > 0 {
			prevHi := SlotKey(maxKey, slot-1, n)
			if lo <= prevHi {
				t.Fatalf("slot %d overlaps slot %d", slot, slot-1)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SlotKey out-of-range slot did not panic")
		}
	}()
	SlotKey(0, SlotMax, n)
}
