package core

// Equivalence tests for the epoch-stamped selections: LocalMinEdgesZ /
// LocalMinEdgesSel / LocalMinNodesSel must match eager-reset reference
// implementations on DIRTY, reused scratch — across id spaces that shrink
// and then grow again (so stale stamp segments from a larger graph sit
// under a smaller one and resurface later), and across a forced generation
// wrap (so the hard-reset path is exercised, not just the happy counter
// bump). The references below re-derive the selection from the definition
// on fresh state every call, so any stale-table leak in the stamped paths
// shows up as a diff.

import (
	"fmt"
	"testing"

	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// eagerLocalMinEdges is the Section 3.3 selection from the definition: an
// edge is selected iff its (z, key) strictly precedes every edge sharing an
// endpoint. Quadratic and allocation-eager on purpose.
func eagerLocalMinEdges(n int, edges []graph.Edge, z []uint64) []graph.Edge {
	var out []graph.Edge
	for i, e := range edges {
		ki := ZKey{z[i], e.Key(n)}
		ok := true
		for j, f := range edges {
			if i == j {
				continue
			}
			if e.U == f.U || e.U == f.V || e.V == f.U || e.V == f.V {
				if !ki.Less(ZKey{z[j], f.Key(n)}) {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// eagerLocalMinNodes is the Section 4.3 selection from the definition,
// with z indexed by node id.
func eagerLocalMinNodes(q *graph.Graph, inQ []bool, z []uint64) []graph.NodeID {
	var out []graph.NodeID
	for v := 0; v < q.N(); v++ {
		if !inQ[v] {
			continue
		}
		kv := ZKey{z[v], uint64(v)}
		ok := true
		for _, u := range q.Neighbors(graph.NodeID(v)) {
			if inQ[u] && !kv.Less(ZKey{z[u], uint64(u)}) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

func edgesEqual(t *testing.T, label string, got, want []graph.Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

func nodesEqual(t *testing.T, label string, got, want []graph.NodeID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: node %d is %d, want %d", label, i, got[i], want[i])
		}
	}
}

// selectionWorkloads is a shrink-then-grow id-space sequence: the scratch
// reused across entries first sizes its tables for n = 384, then runs two
// smaller graphs on the dirty larger tables, then grows past the original
// size so zeroed fresh segments mix with stale stamped ones.
var selectionWorkloads = []struct {
	family string
	n, avg int
	seed   uint64
}{
	{"gnm", 384, 8, 1},
	{"gnm", 64, 6, 2},
	{"regular", 96, 4, 3},
	{"powerlaw", 512, 6, 4},
	{"grid", 100, 4, 5},
}

// zFill fills z[i] for each key index with either packed-friendly small
// values (z < zCap) or full-width draws, from a deterministic source.
func zFill(z []uint64, src *detrand.Source, zCap uint64) {
	for i := range z {
		if zCap > 0 {
			z[i] = src.Uint64() % zCap
		} else {
			z[i] = src.Uint64()
		}
	}
}

func TestLocalMinEdgesStampedMatchesEagerOnDirtyScratch(t *testing.T) {
	var s EdgeMinScratch // ONE scratch for the whole table: every call after the first runs dirty
	src := detrand.New(7)
	for round := 0; round < 3; round++ {
		for _, w := range selectionWorkloads {
			g, err := gen.ByName(w.family, w.n, w.avg, w.seed)
			if err != nil {
				t.Fatal(err)
			}
			edges := g.Edges()
			z := make([]uint64, len(edges))
			// Small z exercises the packed path, full-width the ZKey path.
			for _, zCap := range []uint64{EdgeField(g.N()), 0} {
				zFill(z, src, zCap)
				want := eagerLocalMinEdges(g.N(), edges, z)
				label := fmt.Sprintf("round %d %s/n=%d zCap=%d", round, w.family, w.n, zCap)
				edgesEqual(t, label+" (Z)", LocalMinEdgesZ(&s, g, edges, z), want)

				var sel EdgeSel
				zMax := zCap - 1
				if zCap == 0 {
					zMax = ^uint64(0)
				}
				EdgeSelInit(&sel, g.N(), edges, nil, zMax)
				edgesEqual(t, label+" (Sel)", LocalMinEdgesSel(&s, &sel, z), want)
			}
		}
	}
}

// TestLocalMinEdgesStampWrap forces the uint32 generation counter to wrap
// mid-sequence: the selections immediately before the wrap, at the wrap
// (hard reset to generation 1), and after it must all match the eager
// reference — the documented reason results stay bit-identical across a
// wrap.
func TestLocalMinEdgesStampWrap(t *testing.T) {
	g, err := gen.ByName("gnm", 256, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	z := make([]uint64, len(edges))
	src := detrand.New(13)
	var s EdgeMinScratch
	zFill(z, src, EdgeField(g.N()))
	edgesEqual(t, "pre-wrap warm-up", LocalMinEdgesZ(&s, g, edges, z), eagerLocalMinEdges(g.N(), edges, z))
	// Park the counter one step from wrapping; the stamp table now holds
	// live entries at the maximal generation.
	s.epoch = ^uint32(0) - 1
	for i := 0; i < 4; i++ { // crosses ^uint32(0) and the hard reset to 1
		zFill(z, src, EdgeField(g.N()))
		want := eagerLocalMinEdges(g.N(), edges, z)
		edgesEqual(t, fmt.Sprintf("wrap step %d (epoch %d)", i, s.epoch), LocalMinEdgesZ(&s, g, edges, z), want)
	}
	if s.epoch == 0 || s.epoch > 3 {
		t.Fatalf("epoch after wrap = %d, want a small positive generation", s.epoch)
	}
}

// TestNodeSelStampedMatchesEagerOnDirtyScratch drives ONE NodeSel through
// shrinking-then-growing graphs and changing live masks, comparing
// LocalMinNodesSel (z indexed by live position) against the eager
// id-indexed reference, packed and struct paths both.
func TestNodeSelStampedMatchesEagerOnDirtyScratch(t *testing.T) {
	var sel NodeSel
	src := detrand.New(23)
	for round := 0; round < 3; round++ {
		for _, w := range selectionWorkloads {
			g, err := gen.ByName(w.family, w.n, w.avg, w.seed)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			inQ := make([]bool, n)
			for v := range inQ {
				inQ[v] = src.Uint64()%4 != 0 // ~3/4 live, varies per round
			}
			zFull := make([]uint64, n)
			for _, zCap := range []uint64{EdgeField(n), 0} {
				zFill(zFull, src, zCap)
				zMax := zCap - 1
				if zCap == 0 {
					zMax = ^uint64(0)
				}
				sel.Init(n, inQ, func(v graph.NodeID) uint64 { return uint64(v) }, zMax)
				zLive := make([]uint64, len(sel.Live()))
				for i, v := range sel.Live() {
					zLive[i] = zFull[v]
				}
				got := LocalMinNodesSel(nil, g, &sel, zLive)
				want := eagerLocalMinNodes(g, inQ, zFull)
				nodesEqual(t, fmt.Sprintf("round %d %s/n=%d zCap=%d", round, w.family, w.n, zCap), got, want)

				// The mask-indexed kernel form must agree as well.
				nodesEqual(t, fmt.Sprintf("round %d %s/n=%d zCap=%d (Z)", round, w.family, w.n, zCap),
					LocalMinNodesZ(nil, g, inQ, zFull), want)
			}
		}
	}
}

// TestNodeSelStampWrap is the node-side generation-wrap test: positions
// stamped at the maximal generation must not alias the post-reset
// generations.
func TestNodeSelStampWrap(t *testing.T) {
	g, err := gen.ByName("regular", 128, 6, 17)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	src := detrand.New(29)
	var sel NodeSel
	inQ := make([]bool, n)
	zFull := make([]uint64, n)
	run := func(label string) {
		for v := range inQ {
			inQ[v] = src.Uint64()%3 != 0
		}
		zFill(zFull, src, EdgeField(n))
		sel.Init(n, inQ, func(v graph.NodeID) uint64 { return uint64(v) }, EdgeField(n)-1)
		zLive := make([]uint64, len(sel.Live()))
		for i, v := range sel.Live() {
			zLive[i] = zFull[v]
		}
		nodesEqual(t, label, LocalMinNodesSel(nil, g, &sel, zLive), eagerLocalMinNodes(g, inQ, zFull))
	}
	run("pre-wrap warm-up")
	sel.epoch = ^uint32(0) - 1
	for i := 0; i < 4; i++ {
		run(fmt.Sprintf("wrap step %d (epoch %d)", i, sel.epoch))
	}
	if sel.epoch == 0 || sel.epoch > 3 {
		t.Fatalf("epoch after wrap = %d, want a small positive generation", sel.epoch)
	}
}

// FuzzSelectionStampedMatchesEager feeds arbitrary edge sets and z values
// through the stamped selections on a process-lifetime dirty scratch and
// demands agreement with the eager references. The corpus mixes packed and
// full-width z regimes via the raw bytes.
func FuzzSelectionStampedMatchesEager(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 2, 3, 0, 3}, false)
	f.Add(uint64(42), []byte{0, 1, 1, 2, 2, 0, 3, 4}, true)
	f.Add(uint64(9), []byte{7, 3, 3, 1, 0, 7, 5, 6, 6, 7}, false)
	var s EdgeMinScratch // shared across fuzz invocations: always dirty
	var sel NodeSel
	f.Fuzz(func(t *testing.T, zseed uint64, raw []byte, fullWidth bool) {
		if len(raw) < 2 {
			t.Skip()
		}
		n := 2 + int(raw[0]%32)
		// Decode an edge set from byte pairs, dropping loops and dupes.
		seen := map[graph.Edge]bool{}
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := graph.NodeID(int(raw[i])%n), graph.NodeID(int(raw[i+1])%n)
			if u == v {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canon()
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
		g := graph.FromEdges(n, edges)
		edges = g.Edges() // canonical order
		src := detrand.New(zseed)
		zCap := EdgeField(n)
		if fullWidth {
			zCap = 0
		}
		z := make([]uint64, len(edges))
		zFill(z, src, zCap)
		edgesEqual(t, "fuzz edges", LocalMinEdgesZ(&s, g, edges, z), eagerLocalMinEdges(n, edges, z))

		inQ := make([]bool, n)
		zFull := make([]uint64, n)
		for v := range inQ {
			inQ[v] = src.Uint64()%4 != 0
		}
		zFill(zFull, src, zCap)
		zMax := zCap - 1
		if zCap == 0 {
			zMax = ^uint64(0)
		}
		sel.Init(n, inQ, func(v graph.NodeID) uint64 { return uint64(v) }, zMax)
		zLive := make([]uint64, len(sel.Live()))
		for i, v := range sel.Live() {
			zLive[i] = zFull[v]
		}
		nodesEqual(t, "fuzz nodes", LocalMinNodesSel(nil, g, &sel, zLive), eagerLocalMinNodes(g, inQ, zFull))
	})
}

// TestNodeSelInitListMatchesMask pins the prebuilt-list constructor: for the
// list the mask scan would produce, InitList must build a plan whose live
// order, key vector, position index and packed decision are all identical to
// Init's — on a single dirty NodeSel driven across shrink-then-grow rounds,
// interleaving the two constructors so each must overwrite the other's
// stamped state.
func TestNodeSelInitListMatchesMask(t *testing.T) {
	var byMask, byList NodeSel
	src := detrand.New(29)
	for round := 0; round < 3; round++ {
		for _, w := range selectionWorkloads {
			g, err := gen.ByName(w.family, w.n, w.avg, w.seed)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			inQ := make([]bool, n)
			var ids []graph.NodeID
			for v := range inQ {
				inQ[v] = src.Uint64()%3 != 0
				if inQ[v] {
					ids = append(ids, graph.NodeID(v))
				}
			}
			keyOf := func(v graph.NodeID) uint64 { return SlotKey(uint64(v), 0, n) }
			zMax := EdgeField(n) - 1
			// Alternate which constructor runs on which (dirty) plan.
			a, b := &byMask, &byList
			if round%2 == 1 {
				a, b = b, a
			}
			a.Init(n, inQ, keyOf, zMax)
			b.InitList(n, ids, keyOf, zMax)

			if len(a.Live()) != len(b.Live()) {
				t.Fatalf("%s/n=%d: live %d vs %d", w.family, w.n, len(a.Live()), len(b.Live()))
			}
			for i := range a.Live() {
				if a.Live()[i] != b.Live()[i] || a.Keys()[i] != b.Keys()[i] {
					t.Fatalf("%s/n=%d: slot %d differs: (%d,%d) vs (%d,%d)",
						w.family, w.n, i, a.Live()[i], a.Keys()[i], b.Live()[i], b.Keys()[i])
				}
			}
			if a.packed != b.packed || a.idBits != b.idBits || a.n != b.n {
				t.Fatalf("%s/n=%d: plan metadata differs: packed %v/%v idBits %d/%d",
					w.family, w.n, a.packed, b.packed, a.idBits, b.idBits)
			}
			// The selections the two plans drive must agree exactly.
			zLive := make([]uint64, len(a.Live()))
			for i := range zLive {
				zLive[i] = src.Uint64() % EdgeField(n)
			}
			nodesEqual(t, fmt.Sprintf("%s/n=%d round %d", w.family, w.n, round),
				LocalMinNodesSel(nil, g, b, zLive), LocalMinNodesSel(nil, g, a, zLive))
		}
	}
}
