package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// nodeZ builds the test z vector over a live set: small values with ties so
// the id tie-break matters, plus a forced three-way tie when it fits.
func nodeZ(live []graph.NodeID) []uint64 {
	z := make([]uint64, len(live))
	for i := range z {
		z[i] = (uint64(i)*2654435761 + 17) % 997
	}
	if len(z) >= 3 {
		z[0], z[1] = z[2], z[2]
	}
	return z
}

// TestLocalMinNodesSelBranchEquivalence pins the four selection variants of
// the per-round node plan to one answer: the dense flat-table path
// (LocalMinNodesSelIn over a NodeFold: round-wiped tables, single-word
// probes), the epoch-stamped packed scan (LocalMinNodesSel), the unpacked
// ZKey fallback (z values too wide to pack), and the eager closure reference
// (LocalMinNodesInto). The (z, id) order is identical under every variant,
// so the selected sets must match node for node — over a full live set and
// over a half-density subset whose dead slots exercise the fold sentinel.
func TestLocalMinNodesSelBranchEquivalence(t *testing.T) {
	g := gen.GNM(200, 420, 5)
	n := g.N()
	for _, tc := range []struct {
		name string
		keep func(v int) bool
	}{
		{"full", func(v int) bool { return true }},
		{"half", func(v int) bool { return v%2 == 0 }},
	} {
		inQ := make([]bool, n)
		for v := 0; v < n; v++ {
			inQ[v] = tc.keep(v)
		}
		var sel NodeSel
		sel.Init(n, inQ, func(v graph.NodeID) uint64 { return uint64(v) }, 996)
		if !sel.Dense() {
			t.Fatalf("%s: round unexpectedly not dense (live=%d of %d)", tc.name, len(sel.Live()), n)
		}
		z := nodeZ(sel.Live())
		zOf := make([]uint64, n)
		for i, v := range sel.Live() {
			zOf[v] = z[i]
		}

		eager := LocalMinNodesInto(nil, g, inQ, func(v graph.NodeID) uint64 { return zOf[v] })
		stamped := append([]graph.NodeID(nil), LocalMinNodesSel(nil, g, &sel, z)...)
		var nf NodeFold
		dense := append([]graph.NodeID(nil), LocalMinNodesSelIn(&nf, nil, g, &sel, z)...)

		var selU NodeSel
		selU.Init(n, inQ, func(v graph.NodeID) uint64 { return uint64(v) }, ^uint64(0))
		if selU.Dense() {
			t.Fatalf("%s: unpacked round claims dense", tc.name)
		}
		unpacked := append([]graph.NodeID(nil), LocalMinNodesSel(nil, g, &selU, z)...)

		for name, got := range map[string][]graph.NodeID{
			"stamped": stamped, "unpacked": unpacked, "dense": dense,
		} {
			if len(got) != len(eager) {
				t.Fatalf("%s/%s selected %d nodes, eager %d", tc.name, name, len(got), len(eager))
			}
			for i := range got {
				if got[i] != eager[i] {
					t.Fatalf("%s/%s node %d is %v, eager %v", tc.name, name, i, got[i], eager[i])
				}
			}
		}
		if len(eager) == 0 {
			t.Fatalf("%s: no nodes selected on a non-empty live set", tc.name)
		}

		// Second seed of the same round on the SAME fold scratch: no rewipe
		// happens (same plan generation), the scatter must plainly overwrite
		// the previous seed's live slots.
		z2 := make([]uint64, len(z))
		for i := range z2 {
			z2[i] = (uint64(len(z)-i)*40503 + 5) % 997
		}
		want2 := LocalMinNodesSel(nil, g, &sel, z2)
		got2 := LocalMinNodesSelIn(&nf, nil, g, &sel, z2)
		if len(got2) != len(want2) {
			t.Fatalf("%s: reused fold selected %d nodes, stamped %d", tc.name, len(got2), len(want2))
		}
		for i := range got2 {
			if got2[i] != want2[i] {
				t.Fatalf("%s: reused fold node %d is %v, stamped %v", tc.name, i, got2[i], want2[i])
			}
		}
	}
}

// TestNodeFoldBlockedScatter drives NodeFold exactly the way the fused
// objectives do — Tables for a group of seeds, per-block scatters, then the
// table probe — including a mid-round row-count growth (which must wipe only
// the new rows) and a follow-up round (new plan generation, full rewipe over
// a dirty buffer). Every result is pinned to the stamped scan.
func TestNodeFoldBlockedScatter(t *testing.T) {
	g := gen.GNM(300, 900, 7)
	n := g.N()
	inQ := make([]bool, n)
	for v := 0; v < n; v++ {
		inQ[v] = v%4 != 3
	}
	var sel NodeSel
	sel.Init(n, inQ, func(v graph.NodeID) uint64 { return uint64(v) }, 1<<20-1)
	if !sel.Dense() {
		t.Fatal("round unexpectedly not dense")
	}
	live := sel.Live()
	seedsZ := make([][]uint64, 3)
	for s := range seedsZ {
		z := make([]uint64, len(live))
		for i := range z {
			z[i] = (uint64(i)*2654435761 + uint64(s)*97 + 3) % (1 << 20)
		}
		seedsZ[s] = z
	}
	var nf NodeFold
	check := func(s int, tab []uint64, label string) {
		t.Helper()
		got := NodeFoldSelect(nil, g, &sel, tab)
		want := LocalMinNodesSel(nil, g, &sel, seedsZ[s])
		if len(got) != len(want) {
			t.Fatalf("%s seed %d: fold selected %d nodes, stamped %d", label, s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s seed %d: node %d is %v, stamped %v", label, s, i, got[i], want[i])
			}
		}
	}
	// Two seeds, blocked scatter in ragged chunks.
	tabs := nf.Tables(&sel, 2)
	for s := 0; s < 2; s++ {
		for lo := 0; lo < len(live); lo += 100 {
			hi := lo + 100
			if hi > len(live) {
				hi = len(live)
			}
			NodeFoldScatter(tabs[s], &sel, lo, hi, seedsZ[s][lo:hi])
		}
		check(s, tabs[s], "blocked")
	}
	// Grow to three rows mid-round: the wider request reallocates the
	// backing buffer, so ALL rows must come back freshly wiped (stale wiped
	// counts over a new allocation would leak garbage into the probes).
	// Every seed re-scatters, as the objectives do per seed group.
	tabs = nf.Tables(&sel, 3)
	for s := 0; s < 3; s++ {
		NodeFoldScatter(tabs[s], &sel, 0, len(live), seedsZ[s])
		check(s, tabs[s], "grown")
	}
	// Shrink back to two rows, same round: no realloc, no generation bump —
	// rows keep the previous scatters and a fresh scatter must plainly
	// overwrite them.
	tabs = nf.Tables(&sel, 2)
	NodeFoldScatter(tabs[1], &sel, 0, len(live), seedsZ[0])
	check(0, tabs[1], "shrunk")
	// New round over a smaller live set: the generation bump must trigger a
	// rewipe, or stale keys of now-dead nodes would leak into the probes.
	for v := 0; v < n; v++ {
		inQ[v] = v%2 == 0
	}
	sel.Init(n, inQ, func(v graph.NodeID) uint64 { return uint64(v) }, 1<<20-1)
	if !sel.Dense() {
		t.Fatal("second round unexpectedly not dense")
	}
	z := make([]uint64, len(sel.Live()))
	for i := range z {
		z[i] = (uint64(i)*7919 + 1) % (1 << 20)
	}
	seedsZ[0] = z
	tabs = nf.Tables(&sel, 1)
	NodeFoldScatter(tabs[0], &sel, 0, len(sel.Live()), z)
	check(0, tabs[0], "round2")
}

// TestEdgeFoldMatchesLocalMinEdgesSel pins the fold-path edge selection
// (endpoint-min tables fed block by block, then the mutual-pointer decode)
// to the touched-set scan on the same round plan, both for a single full
// scatter and for ragged blocked scatters, and across a Begin reuse over the
// dirty tables of a previous seed.
func TestEdgeFoldMatchesLocalMinEdgesSel(t *testing.T) {
	g := gen.GNM(200, 420, 3)
	edges := g.Edges()
	z := make([]uint64, len(edges))
	for i := range z {
		z[i] = (uint64(i)*2654435761 + 17) % 997
	}
	z[0], z[1] = z[2], z[2] // tie needing the per-endpoint id tie-break
	var sel EdgeSel
	EdgeSelInit(&sel, g.N(), edges, nil, 996)
	if !sel.Fold() {
		t.Fatalf("round unexpectedly not fold-eligible (n=%d m=%d)", g.N(), len(edges))
	}
	var s EdgeMinScratch
	want := append([]graph.Edge(nil), LocalMinEdgesSel(&s, &sel, z)...)
	if len(want) == 0 {
		t.Fatal("no edges selected on a non-empty graph")
	}

	var f EdgeFold
	tabs := f.Begin(&sel, 2)
	for lo := 0; lo < len(edges); lo += 64 { // blocked, ragged tail
		hi := lo + 64
		if hi > len(edges) {
			hi = len(edges)
		}
		EdgeFoldScatter(tabs[0], &sel, lo, hi, z[lo:hi])
	}
	EdgeFoldScatter(tabs[1], &sel, 0, len(edges), z) // one full scatter
	for name, tab := range map[string][]uint64{"blocked": tabs[0], "full": tabs[1]} {
		got := EdgeFoldDecode(nil, tab, &sel)
		if len(got) != len(want) {
			t.Fatalf("%s: fold decoded %d edges, touched-set scan %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: edge %d is %v, touched-set scan %v", name, i, got[i], want[i])
			}
		}
	}

	// Begin over the dirty tables of the previous seed group: tables are MIN
	// accumulators, so reuse without the per-call wipe would leak the old
	// minima into the new seed's decode.
	z2 := make([]uint64, len(edges))
	for i := range z2 {
		z2[i] = (uint64(len(edges)-i)*40503 + 11) % 997
	}
	var s2 EdgeMinScratch
	want2 := LocalMinEdgesSel(&s2, &sel, z2)
	tabs = f.Begin(&sel, 1)
	EdgeFoldScatter(tabs[0], &sel, 0, len(edges), z2)
	got2 := EdgeFoldDecode(nil, tabs[0], &sel)
	if len(got2) != len(want2) {
		t.Fatalf("reused fold decoded %d edges, touched-set scan %d", len(got2), len(want2))
	}
	for i := range got2 {
		if got2[i] != want2[i] {
			t.Fatalf("reused fold edge %d is %v, touched-set scan %v", i, got2[i], want2[i])
		}
	}
}

// FuzzLocalMinNodesFoldMatchesSel fuzzes the dense fold selection against the
// epoch-stamped scan over arbitrary graphs, live masks, and z widths, with
// the fold scratch reused dirty across two rounds per input (the second round
// must rewipe on the plan's generation bump).
func FuzzLocalMinNodesFoldMatchesSel(f *testing.F) {
	f.Add(60, 150, uint64(1), uint64(9), uint64(1<<12))
	f.Add(2, 1, uint64(2), uint64(1), uint64(0))
	f.Add(300, 220, uint64(3), uint64(77), uint64(1)<<40)
	f.Fuzz(func(t *testing.T, n, m int, gseed, zseed, zMax uint64) {
		if n < 2 || n > 400 || m < 0 || m > 2000 {
			return
		}
		g := gen.GNM(n, m, gseed)
		x := zseed
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x
		}
		var sel NodeSel
		var nf NodeFold
		for round := 0; round < 2; round++ {
			inQ := make([]bool, g.N())
			for v := range inQ {
				inQ[v] = next()%4 != 0 || round == 0
			}
			sel.Init(g.N(), inQ, func(v graph.NodeID) uint64 { return uint64(v) }, zMax)
			z := make([]uint64, len(sel.Live()))
			for i := range z {
				if zMax == 0 {
					z[i] = 0
				} else {
					z[i] = next() % (zMax + 1)
				}
			}
			want := LocalMinNodesSel(nil, g, &sel, z)
			got := LocalMinNodesSelIn(&nf, nil, g, &sel, z)
			if len(got) != len(want) {
				t.Fatalf("round %d (dense=%v): fold selected %d, stamped %d", round, sel.Dense(), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d (dense=%v): node %d is %v, stamped %v", round, sel.Dense(), i, got[i], want[i])
				}
			}
		}
	})
}

// FuzzEdgeFoldMatchesLocalMinEdgesSel fuzzes the edge fold pipeline
// (Begin + ragged blocked scatters + decode) against the touched-set scan
// over arbitrary graphs and z widths, reusing one dirty EdgeFold across two
// seeds per input.
func FuzzEdgeFoldMatchesLocalMinEdgesSel(f *testing.F) {
	f.Add(60, 150, uint64(1), uint64(9), uint64(1<<12), 64)
	f.Add(2, 1, uint64(2), uint64(1), uint64(0), 1)
	f.Add(300, 900, uint64(3), uint64(77), uint64(1)<<40, 512)
	f.Fuzz(func(t *testing.T, n, m int, gseed, zseed, zMax uint64, block int) {
		if n < 2 || n > 400 || m < 1 || m > 2000 || block < 1 || block > 1024 {
			return
		}
		g := gen.GNM(n, m, gseed)
		edges := g.Edges()
		if len(edges) == 0 {
			return
		}
		var sel EdgeSel
		EdgeSelInit(&sel, g.N(), edges, nil, zMax)
		if !sel.Fold() {
			return
		}
		x := zseed
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x
		}
		var ef EdgeFold
		var s EdgeMinScratch
		for seed := 0; seed < 2; seed++ {
			z := make([]uint64, len(edges))
			for i := range z {
				if zMax == 0 {
					z[i] = 0
				} else {
					z[i] = next() % (zMax + 1)
				}
			}
			want := LocalMinEdgesSel(&s, &sel, z)
			tab := ef.Begin(&sel, 1)[0]
			for lo := 0; lo < len(edges); lo += block {
				hi := lo + block
				if hi > len(edges) {
					hi = len(edges)
				}
				EdgeFoldScatter(tab, &sel, lo, hi, z[lo:hi])
			}
			got := EdgeFoldDecode(nil, tab, &sel)
			if len(got) != len(want) {
				t.Fatalf("seed %d: fold decoded %d edges, touched-set scan %d", seed, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: edge %d is %v, touched-set scan %v", seed, i, got[i], want[i])
				}
			}
		}
	})
}
