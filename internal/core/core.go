// Package core holds the shared vocabulary of the paper's algorithms: the
// parameter set (ε, δ = ε/8, concentration slack, search thresholds), the
// degree-class partition C_1, …, C_{1/δ} of Section 3, the good-node sets X
// (matching) and A (MIS) from Luby's analysis, and the deterministic
// local-minimum selection rules shared by the matching and MIS steps.
package core

import (
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/hashfam"
	"repro/internal/intmath"
	"repro/internal/parallel"
)

// Params are the knobs of the deterministic algorithms. The zero value is
// not meaningful; start from DefaultParams.
type Params struct {
	// Epsilon is the space exponent: S = Θ(n^ε) words per machine.
	Epsilon float64
	// InvDelta is 1/δ (the paper requires 1/δ ∈ N). DefaultParams sets
	// ceil(8/ε) so that δ <= ε/8, the setting that makes the 2-hop
	// neighbourhoods of the sparsified graph fit one machine.
	InvDelta int
	// KWise is the independence c of the hash family used by the stage
	// subsampling (Lemma 9 requires an even constant >= 4).
	KWise int
	// Slack multiplies the concentration deviation terms in the machine
	// goodness predicates and invariant checks. The paper's constants only
	// bind asymptotically; Slack = 4 keeps the predicates meaningful at
	// laptop scale (see DESIGN.md, substitution 4).
	Slack float64
	// ThresholdFrac is the fraction of the proven expectation bound used as
	// the seed-search threshold. 1.0 demands the full probabilistic-method
	// bound; 0.5 (default) makes qualifying seeds plentiful while keeping
	// per-iteration progress within a factor 2 of the theorem's.
	ThresholdFrac float64
	// MaxSeedsPerSearch caps each derandomization scan; on exhaustion the
	// best seed seen is used (progress is then whatever that seed achieves,
	// so the algorithms remain unconditionally correct).
	MaxSeedsPerSearch int
	// Parallelism is the host-side worker count used by the shared
	// internal/parallel pool for seed evaluation, per-vertex scans, and
	// graph rebuilds: 0 (default) means GOMAXPROCS, 1 means serial, larger
	// values pin an explicit worker count. Results are bit-identical at any
	// setting (the determinism contract; see internal/parallel).
	Parallelism int
	// ScalarObjectives routes every seed-search objective through the
	// pre-kernel per-item closure evaluation (hashfam.Family.Eval once per
	// key per seed) instead of the batched Evaluator kernel. The two paths
	// are bit-identical by construction — the kernel is a speed change only
	// — and this flag exists so the equivalence tables in
	// parallel_determinism_test.go can prove that end to end. Never set it
	// in production code.
	ScalarObjectives bool
	// Done, when non-nil, reports whether the enclosing request has been
	// abandoned (context canceled, deadline exceeded). The round loops poll
	// it ONLY at round boundaries and between condexp seed batches — never
	// inside a seed evaluation or a selection scan — so a solve that runs to
	// completion is bit-identical to one with Done == nil, and cancellation
	// latency is bounded by one round's work. Once Done returns true it must
	// keep returning true (context semantics); the loops re-check it at
	// their own boundaries rather than trusting a single observation.
	Done func() bool
	// Observe, when non-nil, receives one RoundEvent per completed round of
	// the outer derandomization loops. Events are emitted from the solve's
	// coordinating goroutine, strictly in round order, after the round's
	// seed search and peel have finished — host parallelism lives inside a
	// round, never across rounds, so the event stream is identical at every
	// Parallelism setting. Observation never changes outputs: the only extra
	// work an observer costs is the live-node count of each round.
	Observe func(RoundEvent)
}

// RoundEvent is one completed round of a derandomized solve, as delivered to
// Params.Observe: which algorithm and strategy ran it, how much of the graph
// was still live when the round started, and what the seed search did. The
// stream is deterministic — same input, options and code produce the same
// events in the same order at any Parallelism.
type RoundEvent struct {
	// Algorithm is "matching" or "mis". The Section 5 matching runs MIS on
	// the line graph; its events carry Algorithm "matching" with the live
	// counts of the line graph it actually iterates on.
	Algorithm string
	// Strategy is "sparsify" (Sections 3/4) or "lowdeg" (Section 5).
	Strategy string
	// Round is the 1-based emission index within the solve.
	Round int
	// LiveNodes / LiveEdges measure the shrinking graph at round start:
	// non-isolated nodes for the matching path, surviving (alive) nodes for
	// the MIS paths, and the current edge count.
	LiveNodes int
	LiveEdges int
	// SeedsTried / SeedFound report the round's conditional-expectations
	// search; Selected is the number of edges (matching) or nodes (MIS) the
	// selected seed committed this round.
	SeedsTried int
	SeedFound  bool
	Selected   int
	// Batches, only on observed solves, breaks the round's selection search
	// down into its charged seed batches, in evaluation (enumeration)
	// order: the seed-batch-granular sub-events of the observer seam. It is
	// nil when no observer is attached — unobserved solves never build it —
	// and empty when the round ran no search batch. The stage searches
	// inside the sparsification chain are not included; the batches sum to
	// SeedsTried above. Each event owns its slice (never reused across
	// rounds), so observers may retain it.
	Batches []SeedBatchStat
	// CostRounds, CostSeedBatches and CostPeakMachineWords export the
	// solve's simcost accounting incrementally: the cumulative charged MPC
	// rounds, charged seed batches and peak per-machine words at the moment
	// this event was emitted. They are zero when cost tracking is off or no
	// observer is attached, and — like every other field — deterministic at
	// any Parallelism: the model's charges depend only on problem sizes and
	// batch shapes, never on host scheduling.
	CostRounds           int
	CostSeedBatches      int
	CostPeakMachineWords int
}

// SeedBatchStat is one charged seed batch of a round's conditional-
// expectations search, carried by RoundEvent.Batches. Its fields mirror
// condexp.BatchStat exactly (the round loops convert directly between the
// two).
type SeedBatchStat struct {
	// Batch is the 1-based batch index within the round's search.
	Batch int
	// Seeds is the number of candidate seeds the batch evaluated.
	Seeds int
	// SeedsTried is the cumulative candidate count including this batch.
	SeedsTried int
	// BestValue is the best objective value seen so far in the search.
	BestValue int64
	// Found reports that the batch contained the first qualifying seed.
	Found bool
}

// Canceled reports whether the solve's request has been abandoned. It is the
// single polling point of the cancellation checks (nil Done means "never").
func (p Params) Canceled() bool { return p.Done != nil && p.Done() }

// Emit delivers a round event to the observer, if any.
func (p Params) Emit(ev RoundEvent) {
	if p.Observe != nil {
		p.Observe(ev)
	}
}

// Workers resolves Parallelism to a concrete worker count.
func (p Params) Workers() int { return parallel.Workers(p.Parallelism) }

// EffectiveParallelism resolves the public (Serial, Parallelism) option pair
// to the single Parallelism value used internally: Serial wins when set.
// This is the ONLY place that precedence is decided — the root package's
// Options.params() and Engine both funnel through it, so the two knobs can
// never disagree between layers.
func EffectiveParallelism(serial bool, parallelism int) int {
	if serial {
		return 1
	}
	return parallelism
}

// DefaultParams returns the parameterisation used throughout the experiment
// suite: ε = 0.5 (S = √n), δ = 1/16, 4-wise independence, slack 4,
// half-expectation thresholds.
func DefaultParams() Params {
	return Params{
		Epsilon:           0.5,
		InvDelta:          16,
		KWise:             4,
		Slack:             4.0,
		ThresholdFrac:     0.5,
		MaxSeedsPerSearch: 1 << 14,
		Parallelism:       0, // auto: GOMAXPROCS workers
	}
}

// WithEpsilon returns params with Epsilon = eps and InvDelta = ceil(8/eps),
// the paper's δ = ε/8 coupling.
func (p Params) WithEpsilon(eps float64) Params {
	if eps <= 0 || eps > 1 {
		panic("core: epsilon must be in (0, 1]")
	}
	p.Epsilon = eps
	p.InvDelta = int(math.Ceil(8 / eps))
	return p
}

// Delta returns δ = 1/InvDelta.
func (p Params) Delta() float64 { return 1 / float64(p.InvDelta) }

// Validate panics on nonsensical parameters (programmer error).
func (p Params) Validate() {
	switch {
	case p.Epsilon <= 0 || p.Epsilon > 1:
		panic("core: Epsilon out of range")
	case p.InvDelta < 1 || p.InvDelta >= SlotMax:
		panic("core: InvDelta outside [1, SlotMax)")
	case p.KWise < 2:
		panic("core: KWise < 2")
	case p.Slack <= 0:
		panic("core: Slack <= 0")
	case p.ThresholdFrac <= 0 || p.ThresholdFrac > 1:
		panic("core: ThresholdFrac out of (0,1]")
	}
}

// DegreeClasses is the partition C_1..C_K of Section 3: class i holds the
// nodes with b_{i-1} <= d(v) < b_i where b_i = ceil(n^{i/K}) (b_0 = 1).
// Isolated nodes (d = 0) get class 0, outside the partition.
type DegreeClasses struct {
	N      int
	K      int
	Bounds []uint64 // Bounds[i] = ceil(n^{i/K}) for i = 0..K; Bounds[0] = 1
}

// dcCache memoises the most recent DegreeClasses. The boundaries are a pure
// function of (n, k), n is the (round-invariant) id-space size and k the
// configured 1/δ, so the round loops ask for the same table every iteration
// — and computing it runs math/big exponentiations that would otherwise
// dominate a warm solve's allocations. A single-slot atomic cache suffices:
// the value is immutable after construction, so racing solves at worst
// recompute.
var dcCache atomic.Pointer[DegreeClasses]

// NewDegreeClasses precomputes class boundaries for an n-node graph with
// K = 1/δ classes.
func NewDegreeClasses(n, k int) *DegreeClasses {
	if n < 1 || k < 1 {
		panic("core: NewDegreeClasses requires n, k >= 1")
	}
	if c := dcCache.Load(); c != nil && c.N == n && c.K == k {
		return c
	}
	bounds := make([]uint64, k+1)
	bounds[0] = 1
	for i := 1; i <= k; i++ {
		bounds[i] = intmath.CeilPow(uint64(n), i, k)
		if bounds[i] <= bounds[i-1] {
			bounds[i] = bounds[i-1] + 1 // keep bands non-degenerate at tiny n
		}
	}
	dc := &DegreeClasses{N: n, K: k, Bounds: bounds}
	dcCache.Store(dc)
	return dc
}

// Class returns the class index in [1, K] of a node with degree d, or 0 for
// d <= 0 (isolated).
func (c *DegreeClasses) Class(d int) int {
	if d <= 0 {
		return 0
	}
	for i := 1; i <= c.K; i++ {
		if uint64(d) < c.Bounds[i] {
			return i
		}
	}
	return c.K
}

// StageCount returns the number of subsampling stages for class i: the
// paper's i-4 for i >= 5, otherwise 0 (Sections 3.2 and 4.2).
func StageCount(i int) int {
	if i <= 4 {
		return 0
	}
	return i - 4
}

// GroupSize returns the machine-group size γ = ceil(n^{4δ}) used when a
// node's incident edges (or neighbours) are spread over type-A/B machines.
func (c *DegreeClasses) GroupSize() int {
	g := intmath.CeilPow(uint64(c.N), 4, c.K)
	if g < 2 {
		g = 2
	}
	return int(g)
}

// NDelta returns ceil(n^δ): the per-stage subsampling denominator.
func (c *DegreeClasses) NDelta() uint64 {
	v := intmath.CeilPow(uint64(c.N), 1, c.K)
	if v < 2 {
		v = 2
	}
	return v
}

// StageThreshold returns the field threshold t such that h(x) < t samples x
// with probability floor(p·n^{-δ})/p, i.e. as close to exactly n^{-δ} as the
// field admits (the paper's h(e) <= n^{3-δ} over range n³). Using the exact
// real-valued rate instead of ceil(n^δ) matters at laptop scale: rounding
// the rate down compounds over i-4 stages and can empty the sample.
func StageThreshold(p uint64, n, k int) uint64 {
	rate := math.Pow(float64(n), -1/float64(k))
	t := uint64(rate * float64(p))
	if t < 1 {
		t = 1
	}
	if t > p {
		t = p
	}
	return t
}

// DevTerm returns the concentration deviation n^{0.1δ}·√ex used by the
// goodness predicates of Sections 3.2 and 4.2 (as a float; callers multiply
// by Params.Slack).
func (c *DegreeClasses) DevTerm(ex int) float64 {
	n01d := math.Pow(float64(c.N), 0.1/float64(c.K))
	return n01d * math.Sqrt(float64(ex))
}

// ComputeX returns the good-node indicator of Luby's matching analysis
// (Lemma 3): v ∈ X iff at least d(v)/3 neighbours u have d(u) <= d(v).
// deg must be the degree slice of g. It runs at the pool's automatic worker
// count (one per CPU); use ComputeXW to pin one.
func ComputeX(g *graph.Graph, deg []int) []bool { return ComputeXW(g, deg, 0) }

// ComputeXW is ComputeX sharded over vertex ranges on up to `workers` host
// workers; each vertex's indicator is independent, so the result is
// identical at any worker count.
func ComputeXW(g *graph.Graph, deg []int, workers int) []bool {
	return ComputeXInto(make([]bool, g.N()), g, deg, workers)
}

// ComputeXInto is ComputeXW writing into dst (length N) instead of
// allocating. Every slot is assigned, so a dirty destination cannot leak
// into the result.
func ComputeXInto(dst []bool, g *graph.Graph, deg []int, workers int) []bool {
	if len(dst) != g.N() {
		panic("core: ComputeXInto length mismatch")
	}
	parallel.ForEach(workers, g.N(), func(v int) {
		dv := deg[v]
		if dv == 0 {
			dst[v] = false
			return
		}
		cnt := 0
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if deg[u] <= dv {
				cnt++
			}
		}
		dst[v] = 3*cnt >= dv
	})
	return dst
}

// XWeight returns Σ_{v∈X} d(v) (Lemma 3 lower-bounds it by |E|, summing each
// edge from both sides; the per-class corollary divides it by 1/δ).
func XWeight(x []bool, deg []int) int64 {
	var w int64
	for v, in := range x {
		if in {
			w += int64(deg[v])
		}
	}
	return w
}

// ComputeA returns the MIS good-node indicator (Corollary 15): v ∈ A iff
// Σ_{u∼v} 1/d(u) >= 1/3. It runs at the pool's automatic worker count; use
// ComputeAW to pin one.
func ComputeA(g *graph.Graph, deg []int) []bool { return ComputeAW(g, deg, 0) }

// ComputeAW is ComputeA sharded over vertex ranges on up to `workers` host
// workers. Each vertex's reciprocal-degree sum is accumulated left-to-right
// over its own (fixed) neighbour list, so the floating-point result is
// bit-identical at any worker count.
func ComputeAW(g *graph.Graph, deg []int, workers int) []bool {
	return ComputeAInto(make([]bool, g.N()), g, deg, workers)
}

// ComputeAInto is ComputeAW writing into dst (length N) instead of
// allocating. Every slot is assigned, so a dirty destination cannot leak
// into the result.
func ComputeAInto(dst []bool, g *graph.Graph, deg []int, workers int) []bool {
	if len(dst) != g.N() {
		panic("core: ComputeAInto length mismatch")
	}
	parallel.ForEach(workers, g.N(), func(v int) {
		if deg[v] == 0 {
			dst[v] = false
			return
		}
		var sum float64
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			sum += 1 / float64(deg[u])
		}
		dst[v] = sum >= 1.0/3-1e-12
	})
	return dst
}

// ZKey orders candidates deterministically by (hash value, id): the paper's
// "z_v < z_u" comparisons with the measure-zero ties broken by id so that
// candidate sets are well defined at any scale.
type ZKey struct {
	Z  uint64
	ID uint64
}

// Less reports strict precedence of a over b.
func (a ZKey) Less(b ZKey) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	return a.ID < b.ID
}

// EdgeMinScratch is the reusable working state of the edge selections: the
// epoch-stamped per-node minimum tables, the per-edge key buffer, a z buffer
// for the closure wrapper, and the output buffer. Seed searches evaluate the
// selection once per candidate seed, so pooling this state (one per worker,
// see scratch.PerWorker) removes the dominant per-seed allocations of the
// matching path. The zero value is ready to use.
//
// Epoch-stamp invariant: a min-table slot min1[v] (or pmin1[v]) is
// meaningful only when stamp[v] == epoch, and epoch is advanced at the start
// of every selection call — so a call never reads state written by a
// previous call, and the O(n) eager clear of the tables is replaced by an
// O(1) generation bump plus stamping only the endpoints the edge list
// actually touches. When the uint32 generation counter wraps, the stamp
// array is hard-reset to zero (over its full capacity, so entries parked
// beyond the current id space cannot resurface with a recycled generation)
// and the counter restarts at 1; zero is never a live epoch, which is what
// keeps freshly grown (zeroed) stamp segments stale by construction. Reuse
// therefore changes memory lifetimes only, never any computed value — the
// property selection_equiv_test.go pins against eager-reset references,
// including across a forced wrap.
type EdgeMinScratch struct {
	min1  []ZKey   // struct path: per-node minimum incident key
	pmin1 []uint64 // packed path: same, (z, id) fused into one word
	stamp []uint32 // shared by both paths: slot v valid iff stamp[v] == epoch
	epoch uint32
	keys  []ZKey
	pkeys []uint64
	zbuf  []uint64
	sel   EdgeSel // wrapper-owned per-call plan of LocalMinEdgesZ
	out   []graph.Edge
}

// NextEpoch advances a stamp table's generation counter and returns the new
// live generation. This is THE implementation of the epoch-stamp invariant
// (every stamped structure in the repository goes through it, so the subtle
// parts live in exactly one place): on uint32 wrap the stamp array is
// cleared over its FULL capacity — entries parked beyond the current id
// space must not resurface with a recycled generation — and the counter
// restarts at 1, so zero is never a live generation and freshly allocated
// (zeroed) stamp segments are stale by construction.
func NextEpoch(stamp []uint32, epoch *uint32) uint32 {
	*epoch++
	if *epoch == 0 {
		clear(stamp[:cap(stamp)])
		*epoch = 1
	}
	return *epoch
}

// nextEpoch grows the stamp table to cover n ids and advances the
// generation, hard-resetting on wrap (see the type comment).
func (s *EdgeMinScratch) nextEpoch(n int) uint32 {
	s.stamp = graph.Grow(s.stamp, n)
	return NextEpoch(s.stamp, &s.epoch)
}

// EdgeSel is the seed-independent half of a Section 3.3 selection round:
// the edge list with its canonical id keys and the packed-representation
// decision. Seed searches build it once per round (EdgeSelInit) and then
// evaluate thousands of candidate seeds through LocalMinEdgesSel, so the
// per-edge e.Key(n) computation and the packed-path feasibility check are
// paid once instead of once per seed. After Init an EdgeSel is read-only
// and safe to share across concurrent per-seed evaluations.
type EdgeSel struct {
	edges  []graph.Edge
	ekeys  []uint64 // ekeys[idx] = edges[idx].Key(n)
	n      int
	idBits uint
	packed bool
	// foldBits/fold describe the EdgeFold representation (z<<foldBits | other
	// endpoint, per-node tables): fold is set iff the round is dense enough
	// for flat tables AND every live fold key is strictly below the all-ones
	// sentinel. See EdgeFoldScatter.
	foldBits uint
	fold     bool
}

// Fold reports whether this round qualifies for the fused block-fold
// selection (EdgeFold): the packed endpoint representation must be exact
// under the round's zMax with the all-ones sentinel unreachable, and the
// round must be dense (n <= 4|edges|) so the per-seed flat table wipe is
// cheaper than the epoch bookkeeping it replaces. Sparse or unpackable
// rounds keep the two-pass epoch-stamped LocalMinEdgesSel.
func (sel *EdgeSel) Fold() bool { return sel.fold }

// EdgeSelInit fills sel for one round: edges is the round's canonical edge
// list over an n-id graph, ekeys is the caller's key buffer (typically a
// scratch checkout; it is appended into from [:0] and retained), and zMax
// is an inclusive upper bound on every z value later passed to
// LocalMinEdgesSel — the field size minus one for hash-kernel callers. The
// packed single-word fast path is taken iff every (z, id) pair fits one
// uint64 under that bound, decided here in O(1) instead of by an O(m) scan
// per seed.
func EdgeSelInit(sel *EdgeSel, n int, edges []graph.Edge, ekeys []uint64, zMax uint64) {
	sel.edges = edges
	sel.n = n
	ekeys = ekeys[:0]
	for _, e := range edges {
		ekeys = append(ekeys, e.Key(n))
	}
	sel.ekeys = ekeys
	sel.idBits, sel.packed = 0, false
	sel.foldBits, sel.fold = 0, false
	if n >= 2 {
		sel.idBits = uint(bits.Len64(uint64(n)*uint64(n) - 1))
		sel.packed = zMax>>(64-sel.idBits) == 0
		// The fold representation packs (z, other endpoint) rather than
		// (z, edge key), so it affords a narrower id field — but its tables
		// use all-ones as the "no incident edge" sentinel, so a live key must
		// never be able to reach it: zMax must sit STRICTLY below the sentinel
		// prefix (always true for the repository's ~SlotMax·n² hash fields).
		// Density gates it exactly like LocalMinEdgesSel's dense branch.
		fb := uint(bits.Len64(uint64(n) - 1))
		sel.foldBits = fb
		sel.fold = zMax < ^uint64(0)>>fb && n <= 4*len(edges)
	}
}

// packedEdgeBits reports whether every z value fits above an id field of
// idBits bits in one uint64, i.e. whether the (z, id) lexicographic order
// can be represented as single-word order z<<idBits | id. The hash fields
// of this repository are ~SlotMax·n², so for laptop-scale n the packed
// comparison replaces the two-branch ZKey.Less on the selection hot path;
// full-width z values (e.g. the randomized baselines' raw detrand draws)
// fall back to the struct path. Kernel callers know their field and decide
// via EdgeSelInit's zMax in O(1); this OR-reduction is the wrapper fallback
// for callers without a bound.
func packedEdgeBits(n int, z []uint64) (idBits uint, ok bool) {
	if n < 2 {
		return 0, false
	}
	idBits = uint(bits.Len64(uint64(n)*uint64(n) - 1))
	var all uint64
	for _, zv := range z {
		all |= zv
	}
	return idBits, all>>(64-idBits) == 0
}

// LocalMinEdges returns the candidate matching E_h of Section 3.3: the edges
// of estar whose (z, key) is strictly smaller than every adjacent edge's.
// zOf supplies z values (typically a bound hash function); edges is the
// canonical edge list of estar. The result is always a matching.
func LocalMinEdges(estar *graph.Graph, edges []graph.Edge, zOf func(graph.Edge) uint64) []graph.Edge {
	return LocalMinEdgesInto(new(EdgeMinScratch), estar, edges, zOf)
}

// LocalMinEdgesInto is LocalMinEdges drawing all working state from s: the
// closure-based wrapper over LocalMinEdgesZ, kept for callers without a
// precomputed z vector (the hot seed searches precompute one and call the Z
// form directly). The returned slice aliases s.out and is valid until the
// next call with the same scratch.
func LocalMinEdgesInto(s *EdgeMinScratch, estar *graph.Graph, edges []graph.Edge, zOf func(graph.Edge) uint64) []graph.Edge {
	s.zbuf = graph.Grow(s.zbuf, len(edges))
	z := s.zbuf[:len(edges)]
	for idx, e := range edges {
		z[idx] = zOf(e)
	}
	return LocalMinEdgesZ(s, estar, edges, z)
}

// LocalMinEdgesZ is the kernel form of the Section 3.3 selection: z[idx] is
// the precomputed hash value of edges[idx] (one hashfam.Evaluator.EvalKeys
// pass over the round's SlotKeysInto vector), so the scan is two cache-
// friendly passes with no per-edge closure call. It is LocalMinEdgesSel
// with a per-call plan (packed decision by OR-scan, id keys recomputed) for
// callers without per-round state — the hot seed searches build an EdgeSel
// once per round instead. The returned slice aliases s.out and is valid
// until the next call with the same scratch.
func LocalMinEdgesZ(s *EdgeMinScratch, estar *graph.Graph, edges []graph.Edge, z []uint64) []graph.Edge {
	if len(z) != len(edges) {
		panic("core: LocalMinEdgesZ z/edges length mismatch")
	}
	n := estar.N()
	s.sel.edges = edges
	s.sel.n = n
	ekeys := graph.Grow(s.sel.ekeys, len(edges))[:0]
	for _, e := range edges {
		ekeys = append(ekeys, e.Key(n))
	}
	s.sel.ekeys = ekeys
	s.sel.idBits, s.sel.packed = packedEdgeBits(n, z)
	// The wrapper never fold-selects; clear any fold eligibility a previous
	// EdgeSelInit on this embedded plan may have recorded.
	s.sel.foldBits, s.sel.fold = 0, false
	return LocalMinEdgesSel(s, &s.sel, z)
}

// LocalMinEdgesSel runs one selection against a per-round EdgeSel plan:
// z[idx] is the hash value of sel's edge idx under the candidate seed. An
// edge is in the candidate matching iff its (z, key) is the minimum at BOTH
// endpoints — keys are unique per edge, so "strictly smaller than every
// adjacent edge" is exactly "argmin at each end", and a single min table
// suffices. The per-node tables are epoch-stamped (see EdgeMinScratch), so
// a call costs O(|edges|): only the endpoints the round's edge list touches
// are ever (re)initialised, not the full id space. The returned slice
// aliases s.out and is valid until the next call with the same scratch.
//
//det:hotpath
func LocalMinEdgesSel(s *EdgeMinScratch, sel *EdgeSel, z []uint64) []graph.Edge {
	edges, ekeys := sel.edges, sel.ekeys
	if len(z) != len(edges) {
		panic("core: LocalMinEdgesSel z/edges length mismatch")
	}
	ep := s.nextEpoch(sel.n)
	stamp := s.stamp
	if sel.packed {
		idBits := sel.idBits
		s.pmin1 = graph.Grow(s.pmin1, sel.n)
		s.pkeys = graph.Grow(s.pkeys, len(edges))
		min1, keys := s.pmin1, s.pkeys[:len(edges)]
		if sel.n <= 4*len(edges) {
			// Dense rounds (the seed-search regime that dominates T7): a
			// flat wipe of the whole min table costs a fraction of what the
			// per-endpoint epoch bookkeeping saves, so the merge loop drops
			// to load–min–store per endpoint. An all-ones slot reads as
			// "no incident key yet" exactly like a stale stamped slot, so
			// the resulting table — and the selected edges — are
			// bit-identical to the stamped pass below.
			min1 := min1[:sel.n]
			intmath.Fill64(min1, ^uint64(0))
			for idx, e := range edges {
				k := z[idx]<<idBits | ekeys[idx]
				keys[idx] = k
				u, v := e.U, e.V
				mu := min1[u]
				if k < mu {
					mu = k
				}
				min1[u] = mu
				mv := min1[v]
				if k < mv {
					mv = k
				}
				min1[v] = mv
			}
		} else {
			// Sparse rounds (edge list tiny against the id space): only the
			// endpoints the edge list touches are ever stamped and
			// (re)initialised — no id-space-wide clear. The merge is
			// branchless: whether an endpoint's slot is stale and whether
			// the new key undercuts it both depend on the (effectively
			// random) hash values, so branches here mispredict heavily.
			// Instead, a stale slot's value is forced to all-ones by OR-ing
			// a mask derived from stamp[v] ^ ep (nonzero iff stale), the
			// min is a compare the compiler lowers to a conditional move,
			// and the stamp and table stores are unconditional.
			for idx, e := range edges {
				k := z[idx]<<idBits | ekeys[idx]
				keys[idx] = k
				u, v := e.U, e.V
				su := uint64(stamp[u] ^ ep)
				mu := min1[u] | -((su | -su) >> 63)
				if k < mu {
					mu = k
				}
				stamp[u] = ep
				min1[u] = mu
				sv := uint64(stamp[v] ^ ep)
				mv := min1[v] | -((sv | -sv) >> 63)
				if k < mv {
					mv = k
				}
				stamp[v] = ep
				min1[v] = mv
			}
		}
		// Output pass: an edge is selected iff its key is the minimum at
		// both endpoints. Compaction is branchless — the edge is stored
		// unconditionally and the cursor advances by a flag derived from
		// the two equality checks, because "is this edge an argmin" is
		// random enough that a conditional append mispredicts on a large
		// fraction of edges (every distinct endpoint has one argmin).
		outBuf := graph.Grow(s.out, len(edges))[:len(edges)]
		cnt := 0
		for idx, e := range edges {
			k := keys[idx]
			d := (min1[e.U] ^ k) | (min1[e.V] ^ k)
			outBuf[cnt] = e
			cnt += int(1 ^ (d|-d)>>63)
		}
		s.out = outBuf[:cnt]
		return s.out
	}
	s.min1 = graph.Grow(s.min1, sel.n)
	s.keys = graph.Grow(s.keys, len(edges))
	min1, keys := s.min1, s.keys[:len(edges)]
	for idx, e := range edges {
		k := ZKey{z[idx], ekeys[idx]}
		keys[idx] = k
		if stamp[e.U] != ep {
			stamp[e.U] = ep
			min1[e.U] = k
		} else if k.Less(min1[e.U]) {
			min1[e.U] = k
		}
		if stamp[e.V] != ep {
			stamp[e.V] = ep
			min1[e.V] = k
		} else if k.Less(min1[e.V]) {
			min1[e.V] = k
		}
	}
	out := s.out[:0]
	for idx, e := range edges {
		if k := keys[idx]; min1[e.U] == k && min1[e.V] == k {
			out = append(out, e) //det:allow hotalloc arena-backed s.out reuses prior-round capacity, growth only on cold solves
		}
	}
	s.out = out
	return out
}

// LocalMinNodes returns the candidate independent set I_h of Section 4.3:
// nodes of q (restricted to inQ) whose (z, id) is strictly smaller than
// every q-neighbour's. The result is always independent in q.
func LocalMinNodes(q *graph.Graph, inQ []bool, zOf func(graph.NodeID) uint64) []graph.NodeID {
	return LocalMinNodesInto(nil, q, inQ, zOf)
}

// LocalMinNodesInto is LocalMinNodes appending into dst[:0] (nil allocates),
// for per-seed buffer reuse in the objective evaluations. It is the
// closure-based wrapper kept for callers without a precomputed z vector;
// the hot seed searches precompute one and call LocalMinNodesZ.
func LocalMinNodesInto(dst []graph.NodeID, q *graph.Graph, inQ []bool, zOf func(graph.NodeID) uint64) []graph.NodeID {
	out := dst[:0]
	for v := 0; v < q.N(); v++ {
		if !inQ[v] {
			continue
		}
		kv := ZKey{zOf(graph.NodeID(v)), uint64(v)}
		isMin := true
		for _, u := range q.Neighbors(graph.NodeID(v)) {
			if !inQ[u] {
				continue
			}
			ku := ZKey{zOf(u), uint64(u)}
			if !kv.Less(ku) {
				isMin = false
				break
			}
		}
		if isMin {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// LocalMinNodesZ is the kernel form of the Section 4.3 selection: z[v] is
// the precomputed hash value of node v (one hashfam.Evaluator.EvalKeys pass
// over a NodeSlotKeysInto vector), so each node's z is read once per
// incidence instead of re-evaluated through a closure. Results are
// bit-identical to LocalMinNodesInto with zOf(v) == z[v].
func LocalMinNodesZ(dst []graph.NodeID, q *graph.Graph, inQ []bool, z []uint64) []graph.NodeID {
	n := q.N()
	if len(z) < n {
		panic("core: LocalMinNodesZ z vector shorter than node count")
	}
	// Packed fast path, as in localMinEdgesPacked: when every z fits above
	// an id field of Len(n-1) bits, (z, id) comparisons are single-word.
	if n >= 2 {
		idBits := uint(bits.Len64(uint64(n) - 1))
		var all uint64
		for _, zv := range z[:n] {
			all |= zv
		}
		if all>>(64-idBits) == 0 {
			out := dst[:0]
			for v := 0; v < n; v++ {
				if !inQ[v] {
					continue
				}
				kv := z[v]<<idBits | uint64(v)
				isMin := true
				for _, u := range q.Neighbors(graph.NodeID(v)) {
					if inQ[u] && kv >= z[u]<<idBits|uint64(u) {
						isMin = false
						break
					}
				}
				if isMin {
					out = append(out, graph.NodeID(v))
				}
			}
			return out
		}
	}
	out := dst[:0]
	for v := 0; v < n; v++ {
		if !inQ[v] {
			continue
		}
		kv := ZKey{z[v], uint64(v)}
		isMin := true
		for _, u := range q.Neighbors(graph.NodeID(v)) {
			if !inQ[u] {
				continue
			}
			ku := ZKey{z[u], uint64(u)}
			if !kv.Less(ku) {
				isMin = false
				break
			}
		}
		if isMin {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// NodeSel is the seed-independent half of a Section 4.3 selection round:
// the live candidate list (the nodes the round's inQ mask admits, in
// ascending id order), their hash-key vector, and an epoch-stamped position
// index mapping a node id to its slot in the per-seed z vector. Seed
// searches build it once per round (Init) and evaluate every candidate seed
// with one hashfam EvalKeys pass over Keys() — length |live|, not the full
// id space — followed by LocalMinNodesSel. The epoch-stamp invariant is the
// one documented on EdgeMinScratch: pos[v] is meaningful iff
// stamp[v] == epoch, Init advances the generation, and a uint32 wrap
// hard-resets the stamp array over its full capacity with the counter
// restarting at 1, so reuse across rounds (and across solves, when checked
// out of a pooled scratch.Context) can never leak a stale position. After
// Init a NodeSel is read-only and safe to share across concurrent per-seed
// evaluations. The zero value is ready to use.
type NodeSel struct {
	live   []graph.NodeID
	keys   []uint64
	pos    []int32
	stamp  []uint32
	epoch  uint32
	n      int
	idBits uint
	packed bool
	// gen counts Init/InitList calls over the plan's whole lifetime (never
	// reset, uint64 so it never wraps in practice). NodeFold keys its
	// once-per-round table wipes on (plan pointer, gen), so a fold scratch
	// can tell "same round, table rows already sentinel at dead slots" from
	// "new round, rewipe" without the plan knowing its consumers.
	gen uint64
	// dense marks rounds that qualify for the flat-table selection
	// (NodeFold): packed keys whose maximum stays strictly below the
	// all-ones sentinel, over a live set covering at least a quarter of the
	// id space. See Dense.
	dense bool
}

// Init fills sel for one round: inQ masks the candidates over an n-id
// graph, keyOf supplies each candidate's (seed-independent) hash key, and
// zMax is an inclusive upper bound on every z value later passed to
// LocalMinNodesSel. Cost is one O(n) mask scan plus O(|live|) stamping —
// paid once per round, where the eager alternative pays the id-space scan
// once per candidate seed.
func (sel *NodeSel) Init(n int, inQ []bool, keyOf func(graph.NodeID) uint64, zMax uint64) {
	ep := sel.begin(n)
	live := graph.Grow(sel.live, n)[:0]
	keys := graph.Grow(sel.keys, n)[:0]
	for v := 0; v < n; v++ {
		if !inQ[v] {
			continue
		}
		sel.pos[v] = int32(len(live))
		sel.stamp[v] = ep
		live = append(live, graph.NodeID(v))
		keys = append(keys, keyOf(graph.NodeID(v)))
	}
	sel.live = live
	sel.keys = keys
	sel.finish(n, zMax)
}

// InitList is Init for callers that already hold the round's candidate list:
// ids must be ascending and duplicate-free — exactly the list the Init mask
// scan would produce — and the plan it builds is bit-identical to Init with
// the corresponding mask, without the O(n) scan over the id space. The round
// loops use it where the candidate set arrives as a list anyway (the
// sparsified Q' of the MIS path, the shrinking live list of the lowdeg
// phases), which removes the last per-round term proportional to the full id
// space from those paths. The list is copied; the caller may reuse it.
func (sel *NodeSel) InitList(n int, ids []graph.NodeID, keyOf func(graph.NodeID) uint64, zMax uint64) {
	ep := sel.begin(n)
	live := graph.Grow(sel.live, len(ids))[:0]
	keys := graph.Grow(sel.keys, len(ids))[:0]
	for _, v := range ids {
		sel.pos[v] = int32(len(live))
		sel.stamp[v] = ep
		live = append(live, v)
		keys = append(keys, keyOf(v))
	}
	sel.live = live
	sel.keys = keys
	sel.finish(n, zMax)
}

// begin sizes the stamped position index for an n-id round and advances the
// generation (shared prologue of Init and InitList).
func (sel *NodeSel) begin(n int) uint32 {
	sel.n = n
	sel.gen++
	sel.pos = graph.Grow(sel.pos, n)
	sel.stamp = graph.Grow(sel.stamp, n)
	return NextEpoch(sel.stamp, &sel.epoch)
}

// finish records the packed-path and dense-path decisions (shared epilogue
// of Init and InitList): packed iff every z value under the caller's bound
// fits above an id field of Len(n-1) bits in one word, dense additionally
// iff no live packed key can collide with NodeFold's all-ones sentinel and
// the live set covers at least a quarter of the id space (so a flat table
// wipe amortises against the per-seed epoch bookkeeping it replaces).
func (sel *NodeSel) finish(n int, zMax uint64) {
	sel.idBits, sel.packed, sel.dense = 0, false, false
	if n >= 2 {
		sel.idBits = uint(bits.Len64(uint64(n) - 1))
		sel.packed = zMax>>(64-sel.idBits) == 0
		sel.dense = zMax < ^uint64(0)>>sel.idBits && n <= 4*len(sel.live)
	}
}

// Dense reports whether this round qualifies for the flat-table selection
// (NodeFold + LocalMinNodesSelIn's dense branch): the round's packed keys
// must stay strictly below the all-ones "dead slot" sentinel, and the live
// set must be dense in the id space (n <= 4|live|) so wiping a full table
// once per round beats stamp checks on every neighbour probe. Sparse rounds
// keep the epoch-stamped LocalMinNodesSel scan.
func (sel *NodeSel) Dense() bool { return sel.dense }

// Live returns the candidate ids in ascending order, valid until the next
// Init.
func (sel *NodeSel) Live() []graph.NodeID { return sel.live }

// Keys returns the candidates' hash-key vector, parallel to Live(): the
// once-per-round input of the per-seed EvalKeys passes.
func (sel *NodeSel) Keys() []uint64 { return sel.keys }

// LocalMinNodesSel is the per-round-plan form of the Section 4.3 selection:
// z[i] is the hash value of sel.Live()[i] under the candidate seed (one
// EvalKeys pass over sel.Keys()). A candidate joins I_h iff its (z, id) is
// strictly smaller than every live q-neighbour's; the live set and the
// iteration order are exactly those of LocalMinNodesZ with inQ = the mask
// Init saw, so results are bit-identical while the scan touches only
// candidates and their incidences, never the full id space.
//
//det:hotpath
func LocalMinNodesSel(dst []graph.NodeID, q *graph.Graph, sel *NodeSel, z []uint64) []graph.NodeID {
	if len(z) < len(sel.live) {
		panic("core: LocalMinNodesSel z vector shorter than live set")
	}
	ep, stamp, pos := sel.epoch, sel.stamp, sel.pos
	out := dst[:0]
	if sel.packed {
		idBits := sel.idBits
		for i, v := range sel.live {
			kv := z[i]<<idBits | uint64(v)
			isMin := true
			for _, u := range q.Neighbors(v) {
				if stamp[u] == ep && kv >= z[pos[u]]<<idBits|uint64(u) {
					isMin = false
					break
				}
			}
			if isMin {
				out = append(out, v) //det:allow hotalloc appends into caller-grown dst, capacity reserved by the scratch arena
			}
		}
		return out
	}
	for i, v := range sel.live {
		kv := ZKey{z[i], uint64(v)}
		isMin := true
		for _, u := range q.Neighbors(v) {
			if stamp[u] == ep && !kv.Less(ZKey{z[pos[u]], uint64(u)}) {
				isMin = false
				break
			}
		}
		if isMin {
			out = append(out, v) //det:allow hotalloc appends into caller-grown dst, capacity reserved by the scratch arena
		}
	}
	return out
}

// NodeFold is the per-worker flat-table scratch of the dense node selection:
// one n-word table per in-flight seed, tab[v] = z_v<<idBits | v for live v
// and the all-ones sentinel for dead v. The selection scan then probes ONE
// word per neighbour — where the stamped path loads stamp[u], pos[u] and
// z[pos[u]] and reassembles the packed key per probe — while keeping the
// same early-exit loop shape (a dead neighbour's sentinel can never
// disqualify a live key, because Dense guarantees live keys sit strictly
// below it).
//
// Tables are wiped to the sentinel once per ROUND, not once per seed: within
// a round the live set is fixed, every seed's scatter plainly overwrites all
// live slots, and dead slots keep the sentinel — so after the first wipe a
// table is reusable by construction. Tables keys the wipe on the plan's
// (pointer, generation) pair and tracks how many rows are wiped, rewiping
// only on a new round, a reallocation, or a wider row request. The zero
// value is ready to use; a NodeFold belongs to one worker at a time (the
// objectives embed one in their pooled per-worker state).
type NodeFold struct {
	buf   []uint64
	rows  [][]uint64
	owner *NodeSel
	gen   uint64
	n     int
	wiped int
}

// Tables returns s per-seed selection tables of n = sel's id-space words
// each, every returned row sentinel-filled at all slots no scatter of the
// current round has overwritten. Rows are reused across calls within one
// round (see the type comment); s is the seed-group width, so the tables
// for a whole condexp.BlockSeeds group fit one call.
//
//det:hotpath
func (f *NodeFold) Tables(sel *NodeSel, s int) [][]uint64 {
	n := sel.n
	if need := s * n; cap(f.buf) < need {
		f.buf = make([]uint64, need) //det:allow hotalloc table realloc on first use or growth, wiped and reused across rounds
		f.wiped = 0
	}
	if f.owner != sel || f.gen != sel.gen || f.n != n {
		f.owner, f.gen, f.n, f.wiped = sel, sel.gen, n, 0
	}
	if cap(f.rows) < s {
		f.rows = make([][]uint64, s) //det:allow hotalloc table realloc on first use or growth, wiped and reused across rounds
	}
	rows := f.rows[:s]
	for i := range rows {
		rows[i] = f.buf[i*n : (i+1)*n : (i+1)*n]
	}
	for i := f.wiped; i < s; i++ {
		intmath.Fill64(rows[i], ^uint64(0))
	}
	if s > f.wiped {
		f.wiped = s
	}
	return rows
}

// NodeFoldScatter writes the packed keys of live candidates lo..hi-1 into a
// NodeFold table: tab[v] = z[i]<<idBits | v for v = sel.Live()[lo+i]. It is
// the per-block absorb step of the fused kernel pipeline — called from
// inside an EvalSeedsBlockedFold callback with the block's tile row, so the
// scatter runs while the z values are cache-resident. Scattering every block
// of a seed in ascending order leaves the table identical to a full-vector
// scatter; the store is a plain overwrite (each live slot is written exactly
// once per seed), which is what makes the once-per-round wipe sound.
//
//det:hotpath
func NodeFoldScatter(tab []uint64, sel *NodeSel, lo, hi int, z []uint64) {
	b := sel.idBits
	for i, v := range sel.live[lo:hi] {
		tab[v] = z[i]<<b | uint64(v)
	}
}

// NodeFoldSelect runs the dense selection scan against a fully scattered
// table: a candidate joins I_h iff its packed key is strictly smaller than
// every neighbour's table word. Dead neighbours read the all-ones sentinel,
// which no live key can reach (Dense), so they are skipped without a stamp
// check — the inner loop is one load and one compare per probed neighbour,
// early-exiting on the first disqualifier exactly like the stamped scan, so
// the output is bit-identical to LocalMinNodesSel on the same z vector.
// Output compaction is branchless (unconditional store, flag-advanced
// cursor): whether a candidate survives is hash-random, so a conditional
// append would mispredict on a large fraction of candidates.
//
//det:hotpath
func NodeFoldSelect(dst []graph.NodeID, q *graph.Graph, sel *NodeSel, tab []uint64) []graph.NodeID {
	live := sel.live
	out := graph.Grow(dst, len(live))[:len(live)]
	cnt := 0
	for _, v := range live {
		kv := tab[v]
		flag := 1
		for _, u := range q.Neighbors(v) {
			if kv >= tab[u] {
				flag = 0
				break
			}
		}
		out[cnt] = v
		cnt += flag
	}
	return out[:cnt]
}

// LocalMinNodesSelIn is LocalMinNodesSel with a caller-owned NodeFold: dense
// rounds (sel.Dense()) scatter the full z vector into a flat table and run
// the single-word-probe scan, sparse rounds fall through to the
// epoch-stamped path. Results are bit-identical either way — the
// dense/stamped/eager equivalence table in core's tests pins it — so the
// objectives route every full-vector selection through here and let the
// plan pick the discipline per round.
//
//det:hotpath
func LocalMinNodesSelIn(f *NodeFold, dst []graph.NodeID, q *graph.Graph, sel *NodeSel, z []uint64) []graph.NodeID {
	if !sel.dense {
		return LocalMinNodesSel(dst, q, sel, z)
	}
	if len(z) < len(sel.live) {
		panic("core: LocalMinNodesSelIn z vector shorter than live set")
	}
	tab := f.Tables(sel, 1)[0]
	NodeFoldScatter(tab, sel, 0, len(sel.live), z)
	return NodeFoldSelect(dst, q, sel, tab)
}

// EdgeFold is the per-worker flat-table scratch of the fused edge selection:
// one n-word table per in-flight seed, tab[v] = min over v's incident edges
// of z<<foldBits | (other endpoint), all-ones where no edge touched v. For a
// fixed endpoint v the canonical edge key e.Key(n) is strictly increasing in
// the other endpoint (all three orderings of u, v1 < v2 preserve it), so
// ordering incident edges by (z, other endpoint) IS the (z, key) order of
// LocalMinEdgesSel — the fold representation affords an id field of
// Len(n-1) bits instead of Len(n²-1) while selecting identical edges.
//
// Unlike NodeFold's plain-overwrite tables these are MIN accumulators, so
// Begin wipes per seed group, not per round — the same flat-wipe cost the
// dense branch of LocalMinEdgesSel pays, which is why EdgeSel.Fold carries
// the same density gate. The zero value is ready to use; an EdgeFold belongs
// to one worker at a time.
type EdgeFold struct {
	buf  []uint64
	rows [][]uint64
}

// Begin returns s sentinel-wiped per-seed tables of sel.n words each — one
// per seed of a condexp.BlockSeeds group, wiped eagerly because the fold
// merges with min (a stale smaller key from a previous group would
// corrupt).
//
//det:hotpath
func (f *EdgeFold) Begin(sel *EdgeSel, s int) [][]uint64 {
	n := sel.n
	if need := s * n; cap(f.buf) < need {
		f.buf = make([]uint64, need) //det:allow hotalloc table realloc on first use or growth, wiped and reused across rounds
	}
	if cap(f.rows) < s {
		f.rows = make([][]uint64, s) //det:allow hotalloc table realloc on first use or growth, wiped and reused across rounds
	}
	rows := f.rows[:s]
	for i := range rows {
		row := f.buf[i*n : (i+1)*n : (i+1)*n]
		intmath.Fill64(row, ^uint64(0))
		rows[i] = row
	}
	return rows
}

// EdgeFoldScatter min-merges edges lo..hi-1 into a table: z[i] is the hash
// value of sel's edge lo+i (one tile row of an EvalSeedsBlockedFold block),
// and each edge updates both endpoint slots with its packed (z, other
// endpoint) key. Merges are the load–min–store shape the compiler lowers to
// conditional moves, mirroring the dense branch of LocalMinEdgesSel.
//
//det:hotpath
func EdgeFoldScatter(tab []uint64, sel *EdgeSel, lo, hi int, z []uint64) {
	b := sel.foldBits
	edges := sel.edges
	for idx := lo; idx < hi; idx++ {
		e := edges[idx]
		zs := z[idx-lo] << b
		ku := zs | uint64(e.V)
		mu := tab[e.U]
		if ku < mu {
			mu = ku
		}
		tab[e.U] = mu
		kv := zs | uint64(e.U)
		mv := tab[e.V]
		if kv < mv {
			mv = kv
		}
		tab[e.V] = mv
	}
}

// EdgeFoldDecode appends the selected matching of a fully merged table to
// dst[:0]: edge {u,v} is selected iff it is the argmin at BOTH endpoints,
// i.e. tab[u] points at v and tab[v] points back at u with the same z. The
// scan walks ids ascending and emits at the smaller endpoint; selected edges
// form a matching (distinct smaller endpoints), so the output is exactly the
// canonical-edge-order output of LocalMinEdgesSel's compaction pass.
//
//det:hotpath
func EdgeFoldDecode(dst []graph.Edge, tab []uint64, sel *EdgeSel) []graph.Edge {
	b := sel.foldBits
	mask := uint64(1)<<b - 1
	out := dst[:0]
	for u := 0; u < sel.n; u++ {
		t := tab[u]
		if t == ^uint64(0) {
			continue
		}
		v := t & mask
		if v <= uint64(u) {
			continue
		}
		if tab[v] == t&^mask|uint64(u) {
			out = append(out, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)}) //det:allow hotalloc appends into caller-grown dst, capacity reserved by the scratch arena
		}
	}
	return out
}

// SlotMax is the number of domain-separation slots in the hash input space
// (see SlotKey).
const SlotMax = 64

// EdgeField returns the hash family field used for a graph with n nodes:
// the least prime at least max(SlotMax·n², 1024). The n² covers node ids
// and canonical edge keys; the SlotMax factor leaves room for the
// domain-separation slots that give every subsampling stage fresh
// independent values even when the seed search lands on the same seed (the
// paper's [n³] range plays the same role: it decouples the per-stage hash
// values). Ties are broken by id, see DESIGN.md.
func EdgeField(n int) uint64 {
	min := SlotMax * uint64(n) * uint64(n)
	if min < 1024 {
		min = 1024
	}
	return min
}

// SlotKey maps a raw key (< n²) into domain-separation slot `slot`:
// different slots never collide, so h(SlotKey(x, j)) for j = 1, 2, ... are
// independent values even under one seed. Slot 0 is the identity and is
// used by the matching/MIS selection steps; stage j uses slot j.
func SlotKey(x uint64, slot, n int) uint64 {
	if slot < 0 || slot >= SlotMax {
		panic("core: slot out of range")
	}
	return x + uint64(slot)*uint64(n)*uint64(n)
}

// SlotKeysInto appends the slot-separated hash key of every edge to dst[:0]
// and returns it: the once-per-round key vector the batched seed searches
// evaluate candidate seeds against (hashfam.Evaluator.EvalKeys), instead of
// recomputing e.Key(n) + slot offset for every (seed, edge) pair. dst is
// typically checked out of a scratch.Context.
func SlotKeysInto(dst []uint64, edges []graph.Edge, slot, n int) []uint64 {
	if slot < 0 || slot >= SlotMax {
		panic("core: slot out of range")
	}
	off := uint64(slot) * uint64(n) * uint64(n)
	dst = dst[:0]
	for _, e := range edges {
		dst = append(dst, e.Key(n)+off)
	}
	return dst
}

// NodeSlotKeysInto is SlotKeysInto for the vertex key space: it appends the
// slot-separated key of every node id 0..n-1 to dst[:0] and returns it.
func NodeSlotKeysInto(dst []uint64, slot, n int) []uint64 {
	if slot < 0 || slot >= SlotMax {
		panic("core: slot out of range")
	}
	off := uint64(slot) * uint64(n) * uint64(n)
	dst = dst[:0]
	for v := 0; v < n; v++ {
		dst = append(dst, uint64(v)+off)
	}
	return dst
}

// PairwiseFamily returns the 2-wise independent family over the graph's
// field (used by the matching/MIS selection steps, Lemma 13/21 need only
// pairwise independence).
func PairwiseFamily(n int) hashfam.Family {
	return hashfam.New(EdgeField(n), 2)
}

// KWiseFamily returns the c-wise independent family over the graph's field
// (used by the stage subsampling, Lemma 9).
func KWiseFamily(n, c int) hashfam.Family {
	return hashfam.New(EdgeField(n), c)
}
