// Package matching implements Theorem 7 of the paper: a deterministic fully
// scalable MPC algorithm computing a maximal matching in O(log n) rounds
// with O(n^ε) space per machine.
//
// Each outer iteration (Algorithm 2) runs in O(1) charged MPC rounds:
//
//  1. pick the degree class whose good nodes B carry a δ/2-fraction of the
//     edges and sparsify the incident edge set E0 down to E* with maximum
//     degree O(n^{4δ}) (internal/sparsify, Section 3.2);
//  2. collect 2-hop neighbourhoods of E* onto machines (asserted <= space
//     budget) and derandomize one Luby step: a pairwise-independent seed
//     maps edges to z-values, the candidate matching E_h consists of the
//     local-minimum edges, and the method of conditional expectations picks
//     a seed for which the matched B-nodes carry a constant fraction of the
//     proven expectation Σ_{v∈B} d(v)/109 (Lemma 13);
//  3. add E_h to the output and delete the matched nodes.
//
// Each iteration removes a constant fraction of the edges, so O(log n)
// iterations suffice; the loop is unconditionally correct regardless of the
// thresholds because a non-empty E_h always makes progress and the final
// matching is maximal by construction (edges only disappear when an
// endpoint is matched).
package matching

import (
	"repro/internal/condexp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashfam"
	"repro/internal/parallel"
	"repro/internal/scratch"
	"repro/internal/simcost"
	"repro/internal/sparsify"
)

// IterStats records one outer iteration.
type IterStats struct {
	Iteration        int
	EdgesBefore      int
	EdgesAfter       int
	RemovedFraction  float64
	ClassIndex       int
	Stages           int
	SparsifyFallback bool
	EStarEdges       int
	EStarMaxDegree   int
	MaxBallWords     int // largest collected 2-hop neighbourhood (words)
	SeedsTried       int
	SeedFound        bool // progress threshold met (vs best-effort seed)
	MatchedEdges     int
	ObjectiveValue   int64 // Σ_{v∈B matched} d(v) under the selected seed
	Threshold        int64
}

// mmEval is the per-worker pooled state of one candidate-seed objective
// evaluation: the local-minimum selection scratch, the per-seed z vector of
// the kernel path, and (for the scalar reference path) a permanent
// z-closure reading the current seed through the seed field.
type mmEval struct {
	lm   core.EdgeMinScratch
	z    []uint64      // kernel path: EvalKeys output over the round's key vector
	tile scratch.Tile  // blocked path: one z row per seed of a BlockSeeds group
	ef   core.EdgeFold // fold path: flat per-seed endpoint-min tables
	eh   []graph.Edge  // fold path: decoded matching of the seed under scoring
	seed []uint64
	zf   func(graph.Edge) uint64
}

// Result is the outcome of the deterministic maximal matching.
type Result struct {
	Matching   []graph.Edge
	Iterations []IterStats
	// FallbackPicks counts iterations that resorted to the single
	// smallest-key edge because the candidate matching came back empty
	// (never observed in practice; kept for unconditional correctness).
	FallbackPicks int
	// Canceled is set when Params.Done stopped the solve at a round (or
	// seed-batch) boundary; Matching is then partial and NOT maximal, and
	// the caller must surface an error instead of the result.
	Canceled bool
}

// Deterministic computes a maximal matching of g with the derandomized
// algorithm of Section 3. The model, when non-nil, is charged all MPC
// rounds and validates all machine-space claims. It is DeterministicIn with
// a private scratch context; repeated solvers (the Engine) share one.
func Deterministic(g *graph.Graph, p core.Params, model *simcost.Model) *Result {
	return DeterministicIn(scratch.New(), g, p, model)
}

// DeterministicIn is Deterministic drawing every per-round buffer from sc:
// sparsification state, the E* edge list, the matched-node mask, and the
// shrinking outer-loop graph, which ping-pongs between sc's two loop CSR
// buffers instead of allocating a fresh graph per iteration. Per-seed
// selection state inside the objective is pooled per worker. The output is
// bit-identical to Deterministic at any worker count and for any prior
// state of sc; sc is Reset at every round boundary and left Reset on
// return.
func DeterministicIn(sc *scratch.Context, g *graph.Graph, p core.Params, model *simcost.Model) *Result {
	p.Validate()
	res := &Result{}
	cur := g
	n := g.N()
	fam := core.PairwiseFamily(n)
	evaluator := hashfam.NewEvaluator(fam)
	// One selection scratch per worker serves every candidate-seed
	// evaluation of every round (buffers are sized by round 1, the
	// largest). The kernel path evaluates each seed over the round's shared
	// key vector into the pooled z buffer (one EvalKeys pass, no per-edge
	// closure); the scalar reference path holds its z-closure permanently
	// and swaps the seed it reads through the seed field. Either way an
	// evaluation allocates nothing.
	lmPool := scratch.NewPerWorker(func() *mmEval {
		ev := &mmEval{}
		ev.zf = func(e graph.Edge) uint64 {
			return fam.Eval(ev.seed, core.SlotKey(e.Key(n), 0, n))
		}
		return ev
	})

	for iter := 1; cur.M() > 0; iter++ {
		// Round boundary: the first of the solve's cancellation checkpoints.
		if p.Canceled() {
			res.Canceled = true
			break
		}
		st := IterStats{Iteration: iter, EdgesBefore: cur.M()}
		// The live-node count is observer-only work: skipped entirely when no
		// observer is attached, so unobserved solves pay nothing.
		liveNodes := 0
		if p.Observe != nil {
			for v := 0; v < n; v++ {
				if cur.Degree(graph.NodeID(v)) > 0 {
					liveNodes++
				}
			}
		}

		sp := sparsify.SparsifyEdgesIn(sc, cur, p, model)
		if p.Canceled() {
			// The sparsification may have been abandoned mid-chain; its
			// partial result must not reach a seed search.
			res.Canceled = true
			break
		}
		estar := sp.EStar
		estarEdges := estar.EdgesAppend(sc.EdgesCap(estar.M()))
		st.ClassIndex = sp.ClassIndex
		st.Stages = len(sp.Stages)
		st.SparsifyFallback = sp.UsedFallback
		st.EStarEdges = len(estarEdges)
		st.EStarMaxDegree = estar.MaxDegree()

		// Collect 2-hop neighbourhoods in E* for the B-nodes: machine x_v
		// holds v's incident E*-edges and their incident E*-edges.
		st.MaxBallWords = maxTwoHopWords(estar, sp.B, p.Workers())
		model.AssertMachineWords(st.MaxBallWords, "mm.2hop")
		model.ChargeRounds(2, "mm.collect") // sort + request round (§2.2)

		// Derandomized Luby step on E* (Section 3.3). The slot-0 hash keys,
		// the packed selection keys, and the packed-path decision are all
		// seed-independent, so they are computed once per round (EdgeSel);
		// every candidate seed then costs one EvalKeys pass plus a selection
		// scan that touches only E*'s endpoints — the epoch-stamped tables
		// never pay the id-space clear.
		deg := sp.Deg
		keys := core.SlotKeysInto(sc.Uint64sCap(len(estarEdges)), estarEdges, 0, n)
		var sel core.EdgeSel
		core.EdgeSelInit(&sel, n, estarEdges, sc.Uint64sCap(len(estarEdges)), fam.P()-1)
		value := func(eh []graph.Edge) int64 {
			var v int64
			for _, e := range eh {
				if sp.B[e.U] {
					v += int64(deg[e.U])
				}
				if sp.B[e.V] {
					v += int64(deg[e.V])
				}
			}
			return v
		}
		evalSeed := func(seed []uint64, workers int) (*mmEval, []graph.Edge) {
			ev := lmPool.Get()
			if p.ScalarObjectives {
				ev.seed = seed
				return ev, core.LocalMinEdgesInto(&ev.lm, estar, estarEdges, ev.zf)
			}
			ev.z = graph.Grow(ev.z, len(keys))
			return ev, core.LocalMinEdgesSel(&ev.lm, &sel, evaluator.EvalKeysW(seed, keys, ev.z, workers))
		}
		objective := func(seeds [][]uint64, values []int64) {
			if p.ScalarObjectives {
				spare := condexp.SpareWorkers(p.Workers(), len(seeds))
				parallel.ForEach(p.Workers(), len(seeds), func(i int) {
					ev, eh := evalSeed(seeds[i], spare)
					values[i] = value(eh)
					lmPool.Put(ev)
				})
				return
			}
			// Blocked kernel path. When the round qualifies (sel.Fold: keys
			// pack beside a node id and E* is dense in the id space), the
			// fused fold pipeline evaluates one hashfam.BlockKeyGrain block
			// of keys per seed and scatters it into flat per-seed
			// endpoint-min tables while cache-resident; the mutual-pointer
			// decode then recovers the identical matching the touched-set
			// scan would have produced (edge keys are, per endpoint,
			// order-equivalent to (z, other-endpoint) pairs). Sparse rounds
			// keep the two-pass tile + epoch-stamped selection. Either way
			// each group of BlockSeeds candidates makes ONE block-major pass
			// over the round's key vector (byte-identical to per-seed
			// EvalKeys), group boundaries depend only on the batch length,
			// and each group writes only its own seeds' value slots, so
			// results are worker-count independent.
			condexp.ForEachSeedBlock(p.Workers(), len(seeds), func(lo, hi int) {
				ev := lmPool.Get()
				if sel.Fold() {
					S := hi - lo
					tabs := ev.ef.Begin(&sel, S)
					blockLen := len(keys)
					if blockLen > hashfam.BlockKeyGrain {
						blockLen = hashfam.BlockKeyGrain
					}
					tile := ev.tile.Rows(S, blockLen)
					evaluator.EvalSeedsBlockedFold(seeds[lo:hi], keys, tile, func(blo, bhi int) {
						for s := 0; s < S; s++ {
							core.EdgeFoldScatter(tabs[s], &sel, blo, bhi, tile[s])
						}
					})
					for s := 0; s < S; s++ {
						ev.eh = core.EdgeFoldDecode(ev.eh, tabs[s], &sel)
						values[lo+s] = value(ev.eh)
					}
					lmPool.Put(ev)
					return
				}
				tile := ev.tile.Rows(hi-lo, len(keys))
				evaluator.EvalSeedsBlocked(seeds[lo:hi], keys, tile)
				for s := lo; s < hi; s++ {
					values[s] = value(core.LocalMinEdgesSel(&ev.lm, &sel, tile[s-lo]))
				}
				lmPool.Put(ev)
			})
		}
		// Lemma 13 ⇒ E_h[Σ_{v∈N_h} d(v)] >= Σ_{v∈B} d(v)/109; we demand a
		// ThresholdFrac fraction of that.
		st.Threshold = int64(p.ThresholdFrac * float64(sp.BWeight) / 109.0)
		if st.Threshold < 1 {
			st.Threshold = 1
		}
		copts := condexp.Options{
			Model:    model,
			Label:    "mm.seed",
			MaxSeeds: p.MaxSeedsPerSearch,
			Workers:  p.Workers(),
			Done:     p.Done,
		}
		// Seed-batch sub-events are observer-only work: the slice is fresh
		// per round (events own their Batches; observers may retain them)
		// and unobserved solves never allocate it.
		var batchStats []core.SeedBatchStat
		if p.Observe != nil {
			copts.OnBatch = func(bs condexp.BatchStat) {
				batchStats = append(batchStats, core.SeedBatchStat(bs))
			}
		}
		search, err := condexp.SearchAtLeastBatch(fam, objective, st.Threshold, copts)
		if err != nil {
			panic(err) // family is never empty
		}
		if search.Canceled {
			// search.Seed may be nil (canceled before any batch evaluated);
			// there is no seed to apply, so the round is abandoned whole.
			res.Canceled = true
			break
		}
		st.SeedsTried = search.SeedsTried
		st.SeedFound = search.Found
		st.ObjectiveValue = search.Value

		ev, eh := evalSeed(search.Seed, p.Workers())
		if len(eh) == 0 {
			// Unconditional-progress fallback: match the smallest-key edge.
			eh = []graph.Edge{smallestEdge(cur)}
			res.FallbackPicks++
		}
		st.MatchedEdges = len(eh)
		res.Matching = append(res.Matching, eh...)

		matched := sc.Bools(n)
		for _, e := range eh {
			matched[e.U] = true
			matched[e.V] = true
		}
		lmPool.Put(ev)
		cur = cur.WithoutNodesInto(matched, p.Workers(), sc.Loop().Next())
		model.ChargeScan("mm.apply")

		st.EdgesAfter = cur.M()
		st.RemovedFraction = float64(st.EdgesBefore-st.EdgesAfter) / float64(st.EdgesBefore)
		res.Iterations = append(res.Iterations, st)
		if p.Observe != nil {
			cs := model.Stats()
			p.Observe(core.RoundEvent{
				Algorithm:            "matching",
				Strategy:             "sparsify",
				Round:                iter,
				LiveNodes:            liveNodes,
				LiveEdges:            st.EdgesBefore,
				SeedsTried:           st.SeedsTried,
				SeedFound:            st.SeedFound,
				Selected:             st.MatchedEdges,
				Batches:              batchStats,
				CostRounds:           cs.Rounds,
				CostSeedBatches:      cs.SeedBatches,
				CostPeakMachineWords: cs.PeakMachineWords,
			})
		}
		sc.Reset()
	}
	// A cancellation break exits mid-round with live slab checkouts; the
	// extra Reset (a no-op after a normal exit) keeps the documented
	// "sc left Reset on return" contract, which is what lets the Engine
	// re-pool the context after a canceled solve without leaking its slabs.
	sc.Reset()
	return res
}

// maxTwoHopWords returns the largest number of words a machine holds when
// the 2-hop E*-neighbourhood of a B-node is collected: the node's incident
// edges plus its neighbours' incident edges (2 words per edge). The per-node
// measurements are independent, so the scan map-reduces over vertex shards.
func maxTwoHopWords(estar *graph.Graph, b []bool, workers int) int {
	return parallel.MaxInt(workers, estar.N(), func(lo, hi int) int {
		max := 0
		for v := lo; v < hi; v++ {
			if !b[v] {
				continue
			}
			words := 2 * estar.Degree(graph.NodeID(v))
			for _, u := range estar.Neighbors(graph.NodeID(v)) {
				words += 2 * estar.Degree(u)
			}
			if words > max {
				max = words
			}
		}
		return max
	})
}

// smallestEdge returns the canonical minimum-key edge of a non-empty graph.
func smallestEdge(g *graph.Graph) graph.Edge {
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if graph.NodeID(v) < u {
				return graph.Edge{U: graph.NodeID(v), V: u}
			}
		}
	}
	panic("matching: smallestEdge on empty graph")
}
