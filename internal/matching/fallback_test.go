package matching

import (
	"testing"

	"repro/internal/check"
	"repro/internal/graph/gen"
)

// Robustness tests: the algorithm must stay unconditionally correct when
// its performance knobs are hostile — thresholds that cannot be met within
// the scan budget, and single-seed budgets that force best-effort picks.

func TestUnreachableThresholdStillMaximal(t *testing.T) {
	g := gen.GNM(400, 1600, 3)
	p := params()
	p.ThresholdFrac = 1.0   // demand the full Lemma 13 bound...
	p.MaxSeedsPerSearch = 2 // ...with almost no budget to find it
	res := Deterministic(g, p, nil)
	if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
		t.Fatal(reason)
	}
	// Iterations may grow, but termination and maximality are unconditional.
	if len(res.Iterations) > g.M() {
		t.Errorf("pathological iteration count %d", len(res.Iterations))
	}
}

func TestSingleSeedBudget(t *testing.T) {
	g := gen.PowerLaw(300, 1200, 2.5, 5)
	p := params()
	p.MaxSeedsPerSearch = 1 // always take the first enumerated seed
	res := Deterministic(g, p, nil)
	if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
		t.Fatal(reason)
	}
	for _, it := range res.Iterations {
		if it.SeedsTried > 1 {
			t.Errorf("iteration %d tried %d seeds over budget", it.Iteration, it.SeedsTried)
		}
	}
}

func TestTinySlackForcesBestEffortStages(t *testing.T) {
	// Slack 0.1 makes the per-stage goodness nearly unsatisfiable; stages
	// fall back to the best seed scanned but the pipeline must still emit a
	// valid maximal matching.
	g := gen.GNM(512, 512*24, 7)
	p := params()
	p.Slack = 0.1
	p.MaxSeedsPerSearch = 64
	res := Deterministic(g, p, nil)
	if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
		t.Fatal(reason)
	}
}

func TestExtremeThresholdObjectiveValuesRecorded(t *testing.T) {
	g := gen.GNM(300, 2400, 9)
	res := Deterministic(g, params(), nil)
	for _, it := range res.Iterations {
		if it.Threshold < 1 {
			t.Errorf("iteration %d threshold %d < 1", it.Iteration, it.Threshold)
		}
		if it.SeedFound && it.ObjectiveValue < it.Threshold {
			t.Errorf("iteration %d claims success with value %d < threshold %d",
				it.Iteration, it.ObjectiveValue, it.Threshold)
		}
	}
}
