package matching

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/simcost"
)

func params() core.Params { return core.DefaultParams() }

func requireMaximal(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
		t.Fatalf("not a maximal matching: %s", reason)
	}
}

func TestDeterministicOnFixtures(t *testing.T) {
	fixtures := map[string]*graph.Graph{
		"empty":     graph.Empty(10),
		"single":    gen.Path(2),
		"path":      gen.Path(50),
		"cycle":     gen.Cycle(51),
		"star":      gen.Star(100),
		"complete":  gen.Complete(60),
		"bipartite": gen.CompleteBipartite(30, 45),
		"grid":      gen.Grid2D(12, 17),
		"tree":      gen.RandomTree(300, 4),
	}
	for name, g := range fixtures {
		res := Deterministic(g, params(), nil)
		requireMaximal(t, g, res)
		if name == "complete" && len(res.Matching) != 30 {
			t.Errorf("K60 matching size %d, want 30", len(res.Matching))
		}
		if name == "star" && len(res.Matching) != 1 {
			t.Errorf("star matching size %d, want 1", len(res.Matching))
		}
		if name == "empty" && len(res.Matching) != 0 {
			t.Errorf("empty graph matched %d edges", len(res.Matching))
		}
	}
}

func TestDeterministicRandomGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm-sparse", gen.GNM(1000, 3000, 1)},
		{"gnm-dense", gen.GNM(1024, 1024*24, 2)},
		{"powerlaw", gen.PowerLaw(1000, 5000, 2.5, 3)},
		{"regular", gen.RandomRegular(900, 12, 4)},
	} {
		res := Deterministic(tc.g, params(), nil)
		requireMaximal(t, tc.g, res)
		if len(res.Iterations) == 0 {
			t.Errorf("%s: no iterations recorded", tc.name)
		}
	}
}

func TestIterationCountLogarithmic(t *testing.T) {
	// Theorem 7 shape: iterations = O(log m). Measured against a generous
	// constant; the experiment harness reports the precise scaling.
	g := gen.GNM(4096, 4096*8, 5)
	res := Deterministic(g, params(), nil)
	iters := len(res.Iterations)
	bound := int(8 * math.Log2(float64(g.M())))
	if iters > bound {
		t.Errorf("iterations %d exceed 8·log2(m) = %d", iters, bound)
	}
	t.Logf("n=%d m=%d iterations=%d", g.N(), g.M(), iters)
}

func TestPerIterationProgress(t *testing.T) {
	g := gen.GNM(2048, 2048*16, 6)
	res := Deterministic(g, params(), nil)
	for _, st := range res.Iterations {
		if st.EdgesAfter >= st.EdgesBefore {
			t.Fatalf("iteration %d made no progress: %d -> %d",
				st.Iteration, st.EdgesBefore, st.EdgesAfter)
		}
	}
	// The paper's analysis promises Ω(δ)|E| removal per iteration; with
	// half-thresholds the removal stays above δ/(2·536) whenever the seed
	// search succeeded.
	p := params()
	minFrac := p.ThresholdFrac * p.Delta() / 536
	for _, st := range res.Iterations {
		if st.SeedFound && st.RemovedFraction < minFrac {
			t.Errorf("iteration %d removed %.5f < %.5f of edges despite threshold success",
				st.Iteration, st.RemovedFraction, minFrac)
		}
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	g := gen.GNM(512, 4096, 9)
	a := Deterministic(g, params(), nil)
	b := Deterministic(g, params(), nil)
	if len(a.Matching) != len(b.Matching) {
		t.Fatalf("matching sizes differ: %d vs %d", len(a.Matching), len(b.Matching))
	}
	for i := range a.Matching {
		if a.Matching[i] != b.Matching[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Matching[i], b.Matching[i])
		}
	}
	// Parallel seed evaluation must not change the result.
	pp := params()
	pp.Parallelism = 1
	c := Deterministic(g, pp, nil)
	if len(a.Matching) != len(c.Matching) {
		t.Fatal("parallel vs serial results differ")
	}
}

func TestModelAccounting(t *testing.T) {
	g := gen.GNM(1024, 8192, 11)
	model := simcost.New(g.N(), g.M(), 0.5)
	res := Deterministic(g, params(), model)
	requireMaximal(t, g, res)
	st := model.Stats()
	if st.Rounds == 0 || st.SeedBatches == 0 {
		t.Errorf("rounds/batches not charged: %+v", st)
	}
	// O(1) rounds per iteration: total rounds <= C·iterations for a
	// scale-independent constant C (each iteration: O(1) sorts, scans,
	// batches and stage loops bounded by 1/δ).
	maxPerIter := 40 * (1 + core.StageCount(16))
	if st.Rounds > len(res.Iterations)*maxPerIter {
		t.Errorf("rounds %d too high for %d iterations", st.Rounds, len(res.Iterations))
	}
	for _, v := range model.Violations() {
		t.Errorf("space violation: %s", v)
	}
}

func TestSeedSearchUsuallyFast(t *testing.T) {
	g := gen.GNM(2048, 2048*8, 13)
	res := Deterministic(g, params(), nil)
	totalSeeds, found := 0, 0
	for _, st := range res.Iterations {
		totalSeeds += st.SeedsTried
		if st.SeedFound {
			found++
		}
	}
	if found == 0 {
		t.Error("no iteration met its progress threshold")
	}
	if avg := float64(totalSeeds) / float64(len(res.Iterations)); avg > 512 {
		t.Errorf("average seeds/iteration %.1f too high", avg)
	}
}

func TestNoFallbacksOnReasonableInputs(t *testing.T) {
	g := gen.GNM(1024, 4096, 17)
	res := Deterministic(g, params(), nil)
	if res.FallbackPicks > 0 {
		t.Errorf("%d fallback picks on a benign graph", res.FallbackPicks)
	}
}

func TestMatchedEdgesComeFromGraph(t *testing.T) {
	g := gen.PowerLaw(600, 2400, 2.3, 19)
	res := Deterministic(g, params(), nil)
	for _, e := range res.Matching {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("matched edge %v not in input graph", e)
		}
	}
}

func TestSmallEpsilon(t *testing.T) {
	// ε = 0.25 gives tiny machines (S = n^0.25); the algorithm must still
	// be correct, with space pressure surfacing only as model violations.
	g := gen.GNM(700, 4200, 23)
	p := params().WithEpsilon(0.25)
	res := Deterministic(g, p, nil)
	requireMaximal(t, g, res)
}

func BenchmarkDeterministicGNM(b *testing.B) {
	g := gen.GNM(2048, 2048*8, 1)
	p := params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Deterministic(g, p, nil)
	}
}
