// Package linttest runs one analyzer over a fixture package and
// compares the diagnostics against `// want` expectations, in the style
// of golang.org/x/tools/go/analysis/analysistest (which the
// dependency-free module cannot import).
//
// Fixtures live under internal/lint/testdata/src/<name>/ — a directory
// of ordinary Go files forming one package, excluded from the build by
// the testdata convention. A line that should be flagged carries a
// trailing comment
//
//	code // want "regexp" "second regexp"
//
// with one double-quoted regexp per expected diagnostic on that line.
// Every expectation must be matched by a diagnostic and every
// diagnostic must match an expectation; fixtures without want comments
// double as the non-flagging half of the table. Diagnostics flow
// through lint.RunOne, so //det:allow suppression behaves exactly as in
// the production driver and fixtures can assert it.
//
// Fixture imports resolve against the real module: a fixture may
// import repro/internal/parallel (floatfold fixtures do) and any std
// package; the shared loader type-checks them on first use.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Config tunes one fixture run.
type Config struct {
	// SolverScope sets Pass.InSolverScope, as the driver would for a
	// solver package.
	SolverScope bool
}

// Run type-checks the fixture package at dir (relative paths resolve
// against the caller's working directory, i.e. the test's package
// directory) and asserts analyzer a's diagnostics against the // want
// expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir string, cfg Config) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := lint.RunOne(pkg, a, cfg.SolverScope)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for path, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			res, err := parseWants(line)
			if err != nil {
				t.Fatalf("%s:%d: %v", path, i+1, err)
			}
			if len(res) > 0 {
				wants[key{path, i + 1}] = res
			}
		}
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// wantRE matches the trailing `// want "..." "..."` comment. Patterns
// may be double-quoted or backquoted (strconv.Unquote handles both).
var wantRE = regexp.MustCompile("// want ([\"`].*)\\s*$")

func parseWants(line string) ([]*regexp.Regexp, error) {
	m := wantRE.FindStringSubmatch(line)
	if m == nil {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest := m[1]
	for rest != "" {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want pattern %q: %v", rest, err)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("malformed want pattern %q: %v", q, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("want pattern %q: %v", pat, err)
		}
		out = append(out, re)
		rest = rest[len(q):]
	}
	return out, nil
}

// Fixture type-checks a fixture directory and returns the loaded
// package without running any analyzer, for tests that assert on
// lint.RunOne output directly (the directive-validation table reports
// diagnostics on the directive lines themselves, where a // want
// comment cannot coexist with the directive comment).
func Fixture(dir string) (*load.Package, error) {
	return loadFixture(dir)
}

var (
	fixtureMu    sync.Mutex
	fixtureCache = make(map[string]*load.Package)
	universe     *load.Result
)

// loadFixture parses and type-checks one fixture directory, resolving
// its imports against a lazily-loaded universe of real packages.
func loadFixture(dir string) (*load.Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if p, ok := fixtureCache[abs]; ok {
		return p, nil
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(abs, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", abs)
	}

	if universe == nil {
		// One load serves every fixture: the whole module plus every
		// package any fixture under testdata imports (fixtures are outside
		// the module's build closure, so their std imports — math/rand in
		// the nondetsource table — must be named explicitly).
		root, err := moduleRoot(abs)
		if err != nil {
			return nil, err
		}
		patterns := append([]string{"./..."}, fixtureImports(filepath.Join(root, "internal", "lint", "testdata"))...)
		universe, err = load.Load(root, patterns...)
		if err != nil {
			return nil, fmt.Errorf("loading import universe: %v", err)
		}
	}

	pkg, err := load.CheckFiles(universe, "repro/internal/lint/testdata/"+filepath.Base(abs), files)
	if err != nil {
		return nil, err
	}
	fixtureCache[abs] = pkg
	return pkg, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// fixtureImports collects the union of import paths across every
// fixture file under root, so the universe load covers them.
func fixtureImports(root string) []string {
	seen := make(map[string]bool)
	var out []string
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return nil // the fixture's own test will surface the parse error
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
		return nil
	})
	slices.Sort(out)
	return out
}
