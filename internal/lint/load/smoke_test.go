package load

import (
	"testing"
	"time"
)

func TestSmokeLoadAll(t *testing.T) {
	t0 := time.Now()
	res, err := Load("../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	targets := res.Targets()
	t.Logf("module=%s packages=%d targets=%d in %v", res.ModulePath, len(res.Packages), len(targets), time.Since(t0))
	for _, p := range res.Packages {
		if len(p.TypeErrors()) > 0 {
			t.Errorf("typeerrs %s (dep=%v std=%v): %v", p.PkgPath, p.DepOnly, p.Standard, p.TypeErrors()[0])
		}
	}
}
