// Package load parses and type-checks Go packages for detlint without
// depending on golang.org/x/tools/go/packages. It shells out to
// `go list -e -deps -json` for build-context-correct file lists and
// import maps, then parses and type-checks every listed package in the
// dependency order go list guarantees (a package appears only after
// all of its dependencies), resolving imports from the packages checked
// so far. Standard-library and dep-only packages are checked with
// IgnoreFuncBodies, so the full-body work is paid only for the packages
// under analysis.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	PkgPath  string
	Name     string
	Dir      string
	GoFiles  []string // absolute paths, build-context filtered
	Standard bool     // part of the standard library
	DepOnly  bool     // reached only as a dependency, not named by the patterns
	Module   string   // module path, "" for std

	Fset      *token.FileSet
	Syntax    []*ast.File
	Src       map[string][]byte // file path -> source bytes
	Types     *types.Package
	TypesInfo *types.Info

	importMap map[string]string // source import path -> resolved package path
	typeErrs  []error
}

// TypeErrors returns the type-checker errors encountered in this
// package, if any. Target packages must check clean; errors in dep-only
// packages are tolerated by Load but surface here for diagnosis.
func (p *Package) TypeErrors() []error { return p.typeErrs }

// Result is the outcome of one Load call.
type Result struct {
	Fset       *token.FileSet
	Packages   []*Package // dependency order; targets have DepOnly == false
	ModulePath string
	byPath     map[string]*Package
}

// Targets returns the packages named by the Load patterns, in load order.
func (r *Result) Targets() []*Package {
	var out []*Package
	for _, p := range r.Packages {
		if !p.DepOnly && !p.Standard {
			out = append(out, p)
		}
	}
	return out
}

// Lookup returns the package with the given resolved import path.
func (r *Result) Lookup(path string) *Package { return r.byPath[path] }

// listJSON mirrors the subset of `go list -json` output we consume.
type listJSON struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Incomplete bool
	Module     *struct {
		Path string
	}
	Error *struct {
		Err string
	}
}

// Load lists patterns (plus their full dependency closure) from dir and
// type-checks everything. The build context is the host context with
// CGO_ENABLED=0, so the closure stays pure Go and checkable from source.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	res := &Result{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listJSON
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(res, &lp)
		if err != nil {
			return nil, err
		}
		res.Packages = append(res.Packages, pkg)
		res.byPath[pkg.PkgPath] = pkg
		if !pkg.DepOnly && !pkg.Standard && res.ModulePath == "" {
			res.ModulePath = pkg.Module
		}
	}
	return res, nil
}

// check parses and type-checks one listed package. Its dependencies are
// already in res.byPath because go list -deps emits dependency order.
func check(res *Result, lp *listJSON) (*Package, error) {
	pkg := &Package{
		PkgPath:   lp.ImportPath,
		Name:      lp.Name,
		Dir:       lp.Dir,
		Standard:  lp.Standard,
		DepOnly:   lp.DepOnly,
		Fset:      res.Fset,
		Src:       make(map[string][]byte),
		importMap: lp.ImportMap,
	}
	if lp.Module != nil {
		pkg.Module = lp.Module.Path
	}
	if lp.ImportPath == "unsafe" {
		pkg.Types = types.Unsafe
		return pkg, nil
	}
	for _, f := range lp.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(lp.Dir, f)
		}
		pkg.GoFiles = append(pkg.GoFiles, f)
	}
	for _, path := range pkg.GoFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", pkg.PkgPath, err)
		}
		file, err := parser.ParseFile(res.Fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", pkg.PkgPath, err)
		}
		pkg.Src[path] = src
		pkg.Syntax = append(pkg.Syntax, file)
	}

	full := !pkg.DepOnly && !pkg.Standard
	pkg.TypesInfo = NewInfo()
	conf := types.Config{
		Importer:         &resolver{res: res, importMap: lp.ImportMap},
		IgnoreFuncBodies: !full,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			pkg.typeErrs = append(pkg.typeErrs, err)
		},
	}
	tpkg, err := conf.Check(pkg.PkgPath, res.Fset, pkg.Syntax, pkg.TypesInfo)
	pkg.Types = tpkg
	if full && len(pkg.typeErrs) > 0 {
		return nil, fmt.Errorf("package %s: type checking failed: %v", pkg.PkgPath, errors.Join(pkg.typeErrs...))
	}
	_ = err // folded into typeErrs by conf.Error
	return pkg, nil
}

// CheckFiles parses and fully type-checks an ad-hoc package (detlint's
// test fixtures, which live under testdata and are invisible to go
// list) against an already-loaded Result: imports resolve to the
// universe's packages, so a fixture may import both std packages and
// module packages that res covers.
func CheckFiles(res *Result, pkgPath string, files []string) (*Package, error) {
	pkg := &Package{
		PkgPath: pkgPath,
		GoFiles: files,
		Fset:    res.Fset,
		Src:     make(map[string][]byte),
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(res.Fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Src[path] = src
		pkg.Syntax = append(pkg.Syntax, file)
	}
	pkg.TypesInfo = NewInfo()
	conf := types.Config{
		Importer: &resolver{res: res},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			pkg.typeErrs = append(pkg.typeErrs, err)
		},
	}
	tpkg, _ := conf.Check(pkgPath, res.Fset, pkg.Syntax, pkg.TypesInfo)
	pkg.Types = tpkg
	if len(pkg.typeErrs) > 0 {
		return nil, fmt.Errorf("package %s: type checking failed: %v", pkgPath, errors.Join(pkg.typeErrs...))
	}
	return pkg, nil
}

// NewInfo allocates a types.Info with every map detlint's analyzers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// resolver resolves one package's imports against the packages checked
// so far, honoring go list's per-package ImportMap (std vendoring).
type resolver struct {
	res       *Result
	importMap map[string]string
}

func (r *resolver) Import(path string) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := r.res.byPath[path]; p != nil && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("import %q not in dependency closure", path)
}
