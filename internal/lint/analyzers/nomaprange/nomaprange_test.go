package nomaprange_test

import (
	"testing"

	"repro/internal/lint/analyzers/nomaprange"
	"repro/internal/lint/linttest"
)

func TestNoMapRange(t *testing.T) {
	linttest.Run(t, nomaprange.Analyzer, "../../testdata/src/nomaprange", linttest.Config{SolverScope: true})
}
