// Package nomaprange flags `range` over a map in solver packages. Map
// iteration order is deliberately randomized by the runtime, so any
// map-range whose body is order-sensitive (appends, writes keyed on
// iteration order, float accumulation, min/max with ties) breaks the
// bit-identical-at-any-worker-count contract in a way that only
// surfaces when a golden test flakes.
//
// A loop is accepted without annotation only when its body provably
// aggregates order-insensitively: every statement is an integer
// increment/decrement, an integer commutative compound assignment
// (+=, |=, &=, ^=) whose right side does not read the accumulator, or
// a delete from the ranged map itself. Anything richer needs the keys
// sorted first (slices.Sorted(maps.Keys(m))) or an explicit
//
//	//det:allow nomaprange <reason>
package nomaprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nomaprange",
	Doc:  "flag range over a map in solver packages unless the body aggregates order-insensitively",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(), "range over map %s: iteration order is nondeterministic; sort the keys first (slices.Sorted(maps.Keys(m))) or annotate //det:allow nomaprange <reason>", types.ExprString(rng.X))
			return true
		})
	}
	return nil
}

// orderInsensitive reports whether every statement of the loop body is
// one of the whitelisted commutative aggregations.
func orderInsensitive(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return true
	}
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isIntegral(pass, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if !commutativeIntAssign(pass, s) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !deleteFromRanged(pass, call, rng) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isIntegral(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// commutativeIntAssign accepts `acc op= rhs` for commutative,
// associative integer ops where rhs does not read acc (so the fold is
// independent of visit order).
func commutativeIntAssign(pass *analysis.Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok || !isIntegral(pass, lhs) {
		return false
	}
	acc := pass.TypesInfo.ObjectOf(lhs)
	if acc == nil {
		return false
	}
	reads := false
	ast.Inspect(s.Rhs[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == acc {
			reads = true
		}
		return !reads
	})
	return !reads
}

// deleteFromRanged accepts `delete(m, k)` where m is the very
// identifier being ranged over (shrinking the map you are draining is
// order-independent).
func deleteFromRanged(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	rangedIdent, ok := rng.X.(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(arg) == pass.TypesInfo.ObjectOf(rangedIdent)
}
