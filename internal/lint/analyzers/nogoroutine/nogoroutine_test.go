package nogoroutine_test

import (
	"testing"

	"repro/internal/lint/analyzers/nogoroutine"
	"repro/internal/lint/linttest"
)

func TestNoGoroutine(t *testing.T) {
	linttest.Run(t, nogoroutine.Analyzer, "../../testdata/src/nogoroutine", linttest.Config{})
}
