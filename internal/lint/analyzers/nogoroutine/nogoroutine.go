// Package nogoroutine flags raw concurrency primitives outside the
// sanctioned packages. The determinism contract routes every parallel
// hot loop through internal/parallel (deterministic sharding, shard-
// order folds); a stray `go` statement or hand-rolled sync.WaitGroup
// fan-out reintroduces scheduling-dependent behaviour that the
// worker-count-independence tables cannot always catch. The driver
// exempts internal/parallel, internal/serve, cmd/ and examples/; inside
// any other package, escape with
//
//	//det:allow nogoroutine <reason>
package nogoroutine

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc:  "flag go statements and sync.WaitGroup fan-out outside internal/parallel and the serving/command layers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement: parallel fan-out must go through internal/parallel so results stay worker-count independent")
			case *ast.SelectorExpr:
				if isWaitGroupType(pass, n) {
					pass.Reportf(n.Pos(), "sync.WaitGroup fan-out: use internal/parallel (deterministic sharding + shard-order folds) instead of hand-rolled goroutine groups")
				}
			}
			return true
		})
	}
	return nil
}

// isWaitGroupType reports whether sel is the type expression
// sync.WaitGroup (a declaration, field, or parameter of that type —
// the root of any hand-rolled fan-out). Method calls on an existing
// WaitGroup value are not re-flagged; the declaration is the finding.
func isWaitGroupType(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel]
	if !ok || !tv.IsType() {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
