package floatfold_test

import (
	"testing"

	"repro/internal/lint/analyzers/floatfold"
	"repro/internal/lint/linttest"
)

func TestFloatFold(t *testing.T) {
	linttest.Run(t, floatfold.Analyzer, "../../testdata/src/floatfold", linttest.Config{})
}
