// Package floatfold flags floating-point accumulation into captured
// variables inside function literals handed to internal/parallel entry
// points. Float addition and multiplication are not associative: a
// shard body that does `sum += w` on a variable captured from the
// enclosing scope folds in goroutine completion order, so the result
// drifts with the worker count even though each shard's arithmetic is
// exact — the PR 8 sparsify carry bug class. The deterministic pattern
// is a per-shard partial written to disjoint state (out[shard] = ...)
// folded in shard order afterwards, which this analyzer deliberately
// does not flag (indexed stores are the sanctioned discipline). Escape
// with
//
//	//det:allow floatfold <reason>
package floatfold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatfold",
	Doc:  "flag float += / *= on captured variables inside closures passed to internal/parallel",
	Run:  run,
}

// parallelPathSuffix identifies the worker-pool package in any module.
const parallelPathSuffix = "internal/parallel"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelEntry(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkShardBody(pass, lit)
			}
			return true
		})
	}
	return nil
}

// isParallelEntry reports whether call invokes an exported function of
// internal/parallel (For, ForEach, RunShards, MapReduce, Collect, ...).
func isParallelEntry(pass *analysis.Pass, call *ast.CallExpr) bool {
	fun := call.Fun
	if idx, ok := fun.(*ast.IndexExpr); ok { // explicit instantiation: parallel.MapReduce[T]
		fun = idx.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == parallelPathSuffix || strings.HasSuffix(p, "/"+parallelPathSuffix)
}

// checkShardBody walks one shard closure and reports float compound
// assignments whose target is captured from outside the closure.
func checkShardBody(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return true // nested closures inherit the same capture test
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		case token.ASSIGN:
			// x = x + w spelled long-hand is the same fold.
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 && selfAccumulates(pass, as.Lhs[0], as.Rhs[0]) {
				break
			}
			return true
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			if !isFloat(pass, lhs) {
				continue
			}
			root := rootIdent(lhs)
			if root == nil {
				continue // indexed stores (out[shard] += x) are the sanctioned per-shard pattern
			}
			obj, ok := pass.TypesInfo.ObjectOf(root).(*types.Var)
			if !ok {
				continue
			}
			if capturedBy(lit, obj) {
				pass.Reportf(as.Pos(), "float accumulation into captured %s inside a parallel shard body: folds run in completion order, so the result depends on the worker count; write per-shard partials to disjoint state and reduce in shard order", root.Name)
			}
		}
		return true
	})
}

// selfAccumulates reports whether rhs is a +/- or * expression reading
// lhs (so `x = x + y` counts as accumulation).
func selfAccumulates(pass *analysis.Pass, lhs, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL:
	default:
		return false
	}
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rootIdent returns the base identifier of a plain ident or selector
// chain lvalue; nil for indexed or dereferenced targets.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// capturedBy reports whether obj is declared outside lit (and is not
// package-scoped — a package-level float accumulator written from a
// shard would be a data race the race detector owns).
func capturedBy(lit *ast.FuncLit, obj *types.Var) bool {
	if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
		return false // package-level
	}
	pos := obj.Pos()
	return pos < lit.Pos() || pos > lit.End()
}
