package nondetsource_test

import (
	"testing"

	"repro/internal/lint/analyzers/nondetsource"
	"repro/internal/lint/linttest"
)

// TestSolverScope exercises the full ban set as it applies inside
// SolverPackages: math/rand imports, wall-clock and environment reads,
// and the repo-wide unstable sorts.
func TestSolverScope(t *testing.T) {
	linttest.Run(t, nondetsource.Analyzer, "../../testdata/src/nondetsource", linttest.Config{SolverScope: true})
}

// TestRepoWideScope exercises the serving/command-layer view: only the
// unstable-sort ban fires; clocks, environment and math/rand pass.
func TestRepoWideScope(t *testing.T) {
	linttest.Run(t, nondetsource.Analyzer, "../../testdata/src/nondetrepowide", linttest.Config{SolverScope: false})
}
