// Package nondetsource bans nondeterministic inputs on solver paths
// and unstable reflection-based sorts everywhere.
//
// Repo-wide (every package, Pass.InSolverScope irrelevant): sort.Slice,
// sort.SliceStable and sort.SliceIsSorted are flagged in favour of the
// slices package — sort.Slice is an unstable sort (equal elements land
// in scheduling-dependent order, exactly the drift PR 2 scrubbed from
// the hot paths) and all three allocate through reflect.
//
// In solver scope only (Pass.InSolverScope, set by the driver for
// SolverPackages minus detrand/serve/cmd): importing math/rand or
// math/rand/v2 (randomness must come from internal/detrand, the seeded
// deterministic source), and calling time.Now/Since/Until or
// os.Getenv/LookupEnv/Environ (wall clock and environment reads make
// output depend on when/where a solve runs). Escape with
//
//	//det:allow nondetsource <reason>
package nondetsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondetsource",
	Doc:  "ban math/rand, wall-clock and environment reads in solver packages, and unstable sort.Slice repo-wide",
	Run:  run,
}

// bannedCalls maps package path -> function name -> replacement hint
// for the solver-scope call bans.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "round/seed counters (solver output must not depend on wall clock)",
		"Since": "round/seed counters (solver output must not depend on wall clock)",
		"Until": "round/seed counters (solver output must not depend on wall clock)",
	},
	"os": {
		"Getenv":    "explicit Params/Options fields (solver output must not depend on the environment)",
		"LookupEnv": "explicit Params/Options fields (solver output must not depend on the environment)",
		"Environ":   "explicit Params/Options fields (solver output must not depend on the environment)",
	},
}

// unstableSorts maps the banned reflection sorts to their slices
// replacements (repo-wide).
var unstableSorts = map[string]string{
	"Slice":         "slices.Sort/slices.SortFunc (sort.Slice is unstable: equal elements land in nondeterministic order, and it allocates through reflect)",
	"SliceStable":   "slices.SortStableFunc (reflection-free, allocation-free comparator)",
	"SliceIsSorted": "slices.IsSorted/slices.IsSortedFunc",
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InSolverScope {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "import of %s in a solver package: draw randomness from internal/detrand so results are seed-reproducible", path)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageQualifier(pass, sel)
			if !ok {
				return true
			}
			if pkgPath == "sort" {
				if hint, bad := unstableSorts[sel.Sel.Name]; bad {
					pass.Reportf(sel.Pos(), "sort.%s: use %s", sel.Sel.Name, hint)
					return true
				}
			}
			if pass.InSolverScope {
				if hint, bad := bannedCalls[pkgPath][sel.Sel.Name]; bad {
					pass.Reportf(sel.Pos(), "%s.%s in a solver package: use %s", pkgPath, sel.Sel.Name, hint)
				}
			}
			return true
		})
	}
	return nil
}

// packageQualifier resolves sel's X to an imported package name, so
// `sort.Slice` matches the sort package regardless of local renaming
// while a user-defined type with a Slice method does not.
func packageQualifier(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
