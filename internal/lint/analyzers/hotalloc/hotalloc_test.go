package hotalloc_test

import (
	"testing"

	"repro/internal/lint/analyzers/hotalloc"
	"repro/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "../../testdata/src/hotalloc", linttest.Config{})
}
