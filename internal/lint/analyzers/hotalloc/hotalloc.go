// Package hotalloc enforces the scratch-arena discipline inside
// functions annotated //det:hotpath: the warm-Engine contract says
// re-solves allocate a small constant, and the aggregate
// TestEngineWarmReuseAllocs* budgets only catch a leak after it has
// been merged. Inside an annotated function the analyzer flags every
// construct that can allocate on the steady-state path:
//
//   - append, make, new (growth or fresh backing store — hot paths draw
//     buffers from internal/scratch arenas sized up front)
//   - map and slice composite literals
//   - function literals that capture variables (escaping closures
//     allocate their capture frame; hoist to a method or pass state
//     explicitly)
//
// Setup-time allocations that deliberately live inside an annotated
// function carry
//
//	//det:allow hotalloc <reason>
//
// so the exemption — like every other — is greppable and explained.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs inside //det:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == directive.Prefix+"hotpath" || strings.HasPrefix(c.Text, directive.Prefix+"hotpath ") {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	var funcLits []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(pass, n.Fun); ok {
				switch name {
				case "append":
					pass.Reportf(n.Pos(), "append in //det:hotpath %s: growth allocates; reserve capacity in the scratch arena up front", fn.Name.Name)
				case "make":
					pass.Reportf(n.Pos(), "make in //det:hotpath %s: draw the buffer from the scratch arena instead of allocating per call", fn.Name.Name)
				case "new":
					pass.Reportf(n.Pos(), "new in //det:hotpath %s: draw the value from the scratch arena instead of allocating per call", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in //det:hotpath %s: allocates a fresh table; reuse an epoch-stamped or arena-backed table", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in //det:hotpath %s: allocates a fresh backing array; draw it from the scratch arena", fn.Name.Name)
			}
		case *ast.FuncLit:
			funcLits = append(funcLits, n)
		}
		return true
	})
	for _, lit := range funcLits {
		if captures(pass, fn, lit) {
			pass.Reportf(lit.Pos(), "capturing closure in //det:hotpath %s: escaping closures allocate their capture frame; hoist to a method or pass the state explicitly", fn.Name.Name)
		}
	}
}

func builtinName(pass *analysis.Pass, fun ast.Expr) (string, bool) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}

// captures reports whether lit references a non-package-level variable
// declared inside fn but outside lit. Capture-free literals compile to
// static functions and do not allocate.
func captures(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own locals/params
		}
		if v.Pos() >= fn.Pos() && v.Pos() <= fn.End() {
			found = true
			return false
		}
		return true
	})
	return found
}
