// Package analysis is a dependency-free subset of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects the
// parsed and type-checked syntax of one package and reports
// position-tagged diagnostics through its Pass.
//
// The repo's module is deliberately dependency-free (go.mod pins the
// toolchain and nothing else), so detlint cannot import the x/tools
// framework; this package keeps the same shape — Analyzer{Name, Doc,
// Run}, Pass with Fset/Files/Pkg/TypesInfo, Reportf — so the analyzers
// in internal/lint/analyzers read like ordinary vet analyzers and could
// be ported onto the real framework by swapping one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Name is the identifier used
// by //det:allow directives and diagnostics; Doc is the one-paragraph
// contract it enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's worth of material to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// InSolverScope is set by the driver when the package is one of the
	// solver packages bound by the full determinism contract (see
	// internal/lint.SolverPackages). Analyzers with repo-wide rules and
	// stricter solver-only rules (nondetsource) branch on it.
	InSolverScope bool

	// Report delivers one diagnostic. The driver layers //det:allow
	// suppression on top, so analyzers always report unconditionally.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}
