// Package directive parses the //det: comment directives that tune the
// detlint analyzer suite:
//
//	//det:allow <analyzer> <reason>   — suppress <analyzer> diagnostics on
//	                                    one line. As a trailing comment it
//	                                    covers its own line; on a line of
//	                                    its own it covers the next line.
//	                                    The reason is mandatory, so every
//	                                    exemption in the tree is greppable
//	                                    AND explained.
//	//det:hotpath [note]              — marks a function as an allocation-
//	                                    free hot path; must appear in the
//	                                    doc comment of a function
//	                                    declaration. The hotalloc analyzer
//	                                    flags allocating constructs inside.
//
// Malformed directives are never silently ignored: a //det: comment that
// does not parse, names no analyzer, carries no reason, or sits in a
// position where it cannot apply produces a Problem, which the driver
// reports as a diagnostic of its own. A typo'd suppression that silently
// suppressed nothing would be worse than no suppression at all.
package directive

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker shared by all detlint directives.
const Prefix = "//det:"

// Kind discriminates the directive verbs.
type Kind int

const (
	Allow Kind = iota
	HotPath
)

// Directive is one well-formed //det: comment.
type Directive struct {
	Kind     Kind
	Analyzer string // Allow: analyzer name the suppression targets
	Reason   string // Allow: mandatory justification
	Pos      token.Pos
	// Line is the source line the directive applies to: the comment's own
	// line for a trailing directive, the following line for a directive
	// on a line of its own. Zero for HotPath (which binds to a FuncDecl,
	// not a line).
	Line int
	// Func is the function a HotPath directive annotates; nil when the
	// directive is misplaced (reported as a Problem instead).
	Func *ast.FuncDecl
}

// Problem is a malformed or misplaced directive.
type Problem struct {
	Pos     token.Pos
	Message string
}

// File is the parse result for one source file.
type File struct {
	Allows   []Directive
	HotPaths []Directive
	Problems []Problem
}

// ParseFile extracts the detlint directives of one file. src must be the
// file's source bytes (used to decide trailing vs own-line placement);
// fset must be the FileSet file was parsed with.
func ParseFile(fset *token.FileSet, file *ast.File, src []byte) *File {
	out := &File{}
	hotDocs := hotpathDocs(file)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, Prefix) {
				// A near-miss like "// det:allow" or "//det :allow" is a
				// directive that will never fire; catch the common slips.
				if isNearMiss(text) {
					out.Problems = append(out.Problems, Problem{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("malformed detlint directive %q: directives are spelled //det:<verb> with no spaces", firstWords(text)),
					})
				}
				continue
			}
			if strings.HasPrefix(text, "/*") {
				out.Problems = append(out.Problems, Problem{
					Pos:     c.Pos(),
					Message: "detlint directives must be line comments (//det:...), not block comments",
				})
				continue
			}
			rest := strings.TrimPrefix(text, Prefix)
			verb, args, _ := strings.Cut(rest, " ")
			switch verb {
			case "allow":
				d, prob := parseAllow(c, args)
				if prob != nil {
					out.Problems = append(out.Problems, *prob)
					continue
				}
				d.Line = appliesToLine(fset, c, src)
				out.Allows = append(out.Allows, d)
			case "hotpath":
				fn, ok := hotDocs[c]
				if !ok {
					out.Problems = append(out.Problems, Problem{
						Pos:     c.Pos(),
						Message: "misplaced //det:hotpath: the directive must appear in the doc comment of a function declaration",
					})
					continue
				}
				out.HotPaths = append(out.HotPaths, Directive{Kind: HotPath, Pos: c.Pos(), Func: fn})
			default:
				out.Problems = append(out.Problems, Problem{
					Pos:     c.Pos(),
					Message: fmt.Sprintf("unknown detlint directive //det:%s (want allow or hotpath)", verb),
				})
			}
		}
	}
	return out
}

func parseAllow(c *ast.Comment, args string) (Directive, *Problem) {
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return Directive{}, &Problem{
			Pos:     c.Pos(),
			Message: "malformed //det:allow: want //det:allow <analyzer> <reason>",
		}
	}
	if len(fields) == 1 {
		return Directive{}, &Problem{
			Pos:     c.Pos(),
			Message: fmt.Sprintf("//det:allow %s is missing its reason: every exemption must say why (//det:allow %s <reason>)", fields[0], fields[0]),
		}
	}
	return Directive{
		Kind:     Allow,
		Analyzer: fields[0],
		Reason:   strings.Join(fields[1:], " "),
		Pos:      c.Pos(),
	}, nil
}

// appliesToLine decides which source line an allow directive covers: its
// own line when code precedes the comment (trailing form), the next line
// when only whitespace does (own-line form).
func appliesToLine(fset *token.FileSet, c *ast.Comment, src []byte) int {
	pos := fset.Position(c.Pos())
	lineStart := pos.Offset - (pos.Column - 1)
	prefix := src[lineStart:pos.Offset]
	if len(bytes.TrimSpace(prefix)) == 0 {
		return pos.Line + 1
	}
	return pos.Line
}

// hotpathDocs maps each comment that lives inside a FuncDecl doc group
// to its function, so hotpath placement can be validated.
func hotpathDocs(file *ast.File) map[*ast.Comment]*ast.FuncDecl {
	out := make(map[*ast.Comment]*ast.FuncDecl)
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			out[c] = fn
		}
	}
	return out
}

// isNearMiss reports whether a comment looks like a mistyped detlint
// directive: "// det:...", "//det :...", "//Det:...".
func isNearMiss(text string) bool {
	t := strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*")
	t = strings.TrimSpace(t)
	lower := strings.ToLower(t)
	if !strings.HasPrefix(lower, "det") {
		return false
	}
	rest := strings.TrimSpace(t[3:])
	return strings.HasPrefix(rest, ":") || strings.HasPrefix(lower, "det:")
}

// firstWords trims a comment to a short quotable prefix.
func firstWords(text string) string {
	text = strings.TrimSpace(text)
	if len(text) > 40 {
		text = text[:40] + "..."
	}
	return text
}
