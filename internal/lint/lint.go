// Package lint wires the detlint analyzer suite together: which
// analyzers run on which packages (the scope table mirrors the standing
// invariants in doc.go), how //det:allow directives suppress individual
// diagnostics, and how malformed or unused directives become
// diagnostics themselves. cmd/detlint is a thin driver over Run;
// internal/lint/linttest runs single analyzers through the same
// suppression path so fixtures exercise exactly what ships.
package lint

import (
	"cmp"
	"fmt"
	"go/token"
	"slices"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analyzers/floatfold"
	"repro/internal/lint/analyzers/hotalloc"
	"repro/internal/lint/analyzers/nogoroutine"
	"repro/internal/lint/analyzers/nomaprange"
	"repro/internal/lint/analyzers/nondetsource"
	"repro/internal/lint/directive"
	"repro/internal/lint/load"
)

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	nogoroutine.Analyzer,
	nomaprange.Analyzer,
	nondetsource.Analyzer,
	floatfold.Analyzer,
	hotalloc.Analyzer,
}

// SolverPackages are the module-relative package paths bound by the
// full determinism contract: no map-range iteration order, no
// nondeterministic inputs (math/rand, wall clock, environment). The
// list is additive — a new solver package joins the contract by being
// added here.
var SolverPackages = []string{
	"internal/core",
	"internal/condexp",
	"internal/sparsify",
	"internal/matching",
	"internal/mis",
	"internal/lowdeg",
	"internal/luby",
	"internal/graph",
	"internal/hashfam",
	"internal/mpc",
	"internal/mpcgraph",
	"internal/coloring",
	"internal/cclique",
	"internal/congest",
}

// goroutineExempt lists the module-relative path prefixes where raw
// goroutines are legitimate: the deterministic worker pool itself, the
// serving layer (whose concurrency is the product), and the runnable
// entry points.
var goroutineExempt = []string{
	"internal/parallel",
	"internal/serve",
	"cmd/",
	"examples/",
}

// nondetExempt lists the module-relative path prefixes exempt from the
// solver-scope nondeterminism bans (the repo-wide unstable-sort ban
// still applies): detrand is the sanctioned randomness source, and the
// serving layer and entry points legitimately read clocks and the
// environment.
var nondetExempt = []string{
	"internal/detrand",
	"internal/serve",
	"cmd/",
	"examples/",
}

// Scope says which analyzers apply to one package.
type Scope struct {
	// Relative is the module-relative package path ("" for the module
	// root package).
	Relative string
	// Solver marks membership in SolverPackages.
	Solver bool
	// Analyzers to run, in suite order.
	Analyzers []*analysis.Analyzer
}

// ScopeFor computes the analyzer set for a package path given the
// module path.
func ScopeFor(modulePath, pkgPath string) Scope {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modulePath), "/")
	s := Scope{Relative: rel, Solver: isSolver(rel)}
	for _, a := range Analyzers {
		switch a {
		case nogoroutine.Analyzer:
			if hasAnyPrefix(rel, goroutineExempt) {
				continue
			}
		case nomaprange.Analyzer:
			if !s.Solver {
				continue
			}
		case nondetsource.Analyzer:
			// Runs everywhere: the unstable-sort ban is repo-wide. The
			// solver-only source bans are gated by Pass.InSolverScope.
		case floatfold.Analyzer:
			if rel == "internal/parallel" {
				continue
			}
		case hotalloc.Analyzer:
			// Runs everywhere; it only fires inside //det:hotpath funcs.
		}
		s.Analyzers = append(s.Analyzers, a)
	}
	return s
}

func isSolver(rel string) bool {
	for _, p := range SolverPackages {
		if rel == p {
			return true
		}
	}
	return false
}

func hasAnyPrefix(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == strings.TrimSuffix(p, "/") || strings.HasPrefix(rel, p) {
			return true
		}
	}
	return false
}

// solverScopeFor reports whether nondetsource's solver-only bans apply.
func solverScopeFor(s Scope) bool {
	return s.Solver && !hasAnyPrefix(s.Relative, nondetExempt)
}

// Run executes the scoped analyzer suite plus directive validation on
// one loaded package and returns the surviving diagnostics in source
// order. Diagnostics on lines covered by a matching //det:allow are
// dropped; allow directives that suppress nothing, name an unknown
// analyzer, or are malformed come back as diagnostics from the
// pseudo-analyzer "detdirective".
func Run(res *load.Result, pkg *load.Package) []analysis.Diagnostic {
	scope := ScopeFor(res.ModulePath, pkg.PkgPath)
	return runScoped(pkg, scope.Analyzers, solverScopeFor(scope))
}

// RunOne executes a single analyzer (plus the directive machinery
// restricted to that analyzer's suppressions) on a package. linttest
// uses it so fixture runs share the production suppression path.
func RunOne(pkg *load.Package, a *analysis.Analyzer, inSolverScope bool) []analysis.Diagnostic {
	return runScoped(pkg, []*analysis.Analyzer{a}, inSolverScope)
}

func runScoped(pkg *load.Package, analyzers []*analysis.Analyzer, inSolverScope bool) []analysis.Diagnostic {
	var raw []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:      a,
			Fset:          pkg.Fset,
			Files:         pkg.Syntax,
			Pkg:           pkg.Types,
			TypesInfo:     pkg.TypesInfo,
			InSolverScope: inSolverScope,
			Report:        func(d analysis.Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			raw = append(raw, analysis.Diagnostic{
				Pos:      pkg.Syntax[0].Pos(),
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Analyzer: a.Name,
			})
		}
	}

	known := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var out []analysis.Diagnostic
	used := make(map[token.Pos]bool)
	var allows []directive.Directive
	for i, file := range pkg.Syntax {
		df := directive.ParseFile(pkg.Fset, file, pkg.Src[pkg.GoFiles[i]])
		allows = append(allows, df.Allows...)
		for _, p := range df.Problems {
			out = append(out, analysis.Diagnostic{Pos: p.Pos, Message: p.Message, Analyzer: "detdirective"})
		}
		for _, d := range df.Allows {
			if !known[d.Analyzer] {
				out = append(out, analysis.Diagnostic{
					Pos:      d.Pos,
					Message:  fmt.Sprintf("//det:allow names unknown analyzer %q (known: %s)", d.Analyzer, knownNames()),
					Analyzer: "detdirective",
				})
			}
		}
	}

	for _, d := range raw {
		line := pkg.Fset.Position(d.Pos).Line
		file := pkg.Fset.File(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.Analyzer != d.Analyzer || a.Line != line {
				continue
			}
			if af := pkg.Fset.File(a.Pos); af == nil || file == nil || af.Name() != file.Name() {
				continue
			}
			suppressed = true
			used[a.Pos] = true
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	// An allow that suppressed nothing is itself a finding: either the
	// violation it excused is gone (delete the directive) or it is
	// misplaced and excusing nothing (fix the position). Only judged for
	// analyzers that actually ran here, so a single-analyzer fixture run
	// does not misreport another analyzer's directives.
	for _, a := range allows {
		if !used[a.Pos] && known[a.Analyzer] && running[a.Analyzer] {
			out = append(out, analysis.Diagnostic{
				Pos:      a.Pos,
				Message:  fmt.Sprintf("unused //det:allow %s: no %s diagnostic on the covered line; delete the directive or fix its position", a.Analyzer, a.Analyzer),
				Analyzer: "detdirective",
			})
		}
	}

	slices.SortStableFunc(out, func(a, b analysis.Diagnostic) int { return cmp.Compare(a.Pos, b.Pos) })
	return out
}

func knownNames() string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
