// Fixture for det: directive validation: malformed, misplaced and
// unused directives each produce a detdirective diagnostic. Run under
// the nogoroutine analyzer so the valid allow at the bottom is
// consumed.
package directive

//det:allow
func missingAnalyzer() {} // the directive above lacks an analyzer name

//det:allow nogoroutine
func missingReason() {}

//det:allow frobnicate some reason for an analyzer that does not exist
func unknownAnalyzer() {}

//det:frobnicate whatever
func unknownVerb() {}

func misplacedHotpath() {
	//det:hotpath
	x := 1
	_ = x
}

func nearMiss(f func()) {
	// det:allow nogoroutine the space after the slashes defeats the parser
	go f() // flagged: the near-miss above suppressed nothing
}

//det:allow nogoroutine reason present but nothing on the next line needs it
func unusedAllow() {}

func consumedAllow(f func()) {
	go f() //det:allow nogoroutine fixture: valid trailing allow, consumed
}
