// Fixture for the nondetsource analyzer OUTSIDE solver scope (the
// serving/command layers): the unstable-sort ban still applies, but
// clocks, environment and math/rand are legitimate there.
package nondetrepowide

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func unstable(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice: use slices\.Sort`
}

// clean in this scope: serving code measures latency and reads config.
func latency() (time.Duration, string, int) {
	start := time.Now()
	addr := os.Getenv("ADDR")
	jitter := rand.Int()
	return time.Since(start), addr, jitter
}
