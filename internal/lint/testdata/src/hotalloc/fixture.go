// Fixture for the hotalloc analyzer: functions carrying a det:hotpath
// doc directive must not allocate per call; un-annotated functions and
// annotated escape hatches are left alone.
package hotalloc

//det:hotpath
func appendInLoop(dst, src []uint64) []uint64 {
	for _, x := range src {
		dst = append(dst, x^0x9e3779b9) // want `append in //det:hotpath appendInLoop`
	}
	return dst
}

//det:hotpath
func freshBuffers(n int) ([]uint32, map[uint32]int, *int) {
	buf := make([]uint32, n) // want `make in //det:hotpath freshBuffers`
	idx := map[uint32]int{}  // want `map literal in //det:hotpath freshBuffers`
	counter := new(int)      // want `new in //det:hotpath freshBuffers`
	return buf, idx, counter
}

//det:hotpath
func sliceLiteral() []int {
	return []int{1, 2, 3} // want `slice literal in //det:hotpath sliceLiteral`
}

//det:hotpath
func capturingClosure(xs []int) func() int {
	total := 0
	f := func() int { // want `capturing closure in //det:hotpath capturingClosure`
		total += len(xs)
		return total
	}
	return f
}

//det:hotpath with a trailing note about the inner fold kernel
func annotatedWithNote(dst []int) []int {
	return append(dst, 1) // want `append in //det:hotpath annotatedWithNote`
}

//det:hotpath
func allowedGrowth(dst, src []byte) []byte {
	//det:allow hotalloc fixture: growth only on first call, reused after
	dst = append(dst, src...)
	return dst
}

// clean: hotpath code writing into caller-provided storage.
//
//det:hotpath
func intoCaller(dst []uint64, src []uint64) {
	for i, x := range src {
		dst[i] = x * 0x9e3779b97f4a7c15
	}
}

// clean: closures that capture nothing from the enclosing function are
// static and allocation-free after the first call.
//
//det:hotpath
func staticClosure() func(int) int {
	return func(x int) int { return x + 1 }
}

// clean: no annotation, no constraint — cold paths may allocate freely.
func coldPath(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
