// Fixture for the floatfold analyzer: float accumulation into variables
// captured by a shard body handed to internal/parallel races AND folds
// in shard-completion order; per-shard slots and shard-local
// accumulators are the sanctioned patterns.
package floatfold

import "repro/internal/parallel"

func capturedSum(xs []float64) float64 {
	var sum float64
	parallel.For(4, len(xs), func(shard, lo, hi int) {
		for _, x := range xs[lo:hi] {
			sum += x // want `float accumulation into captured sum`
		}
	})
	return sum
}

func capturedProduct(xs []float64) float64 {
	prod := 1.0
	parallel.RunShards(4, 8, func(s int) {
		prod *= float64(s) // want `float accumulation into captured prod`
	})
	return prod
}

func selfAssign(xs []float32) float32 {
	var total float32
	parallel.ForEach(4, len(xs), func(i int) {
		total = total + xs[i] // want `float accumulation into captured total`
	})
	return total
}

func annotated(xs []float64) float64 {
	var sum float64
	parallel.For(1, len(xs), func(shard, lo, hi int) {
		for _, x := range xs[lo:hi] {
			sum += x //det:allow floatfold fixture: single-shard invocation, fold order is trivially fixed
		}
	})
	return sum
}

// clean: per-shard output slots indexed by shard id are the sanctioned
// deterministic fold pattern.
func perShardSlots(xs []float64) []float64 {
	out := make([]float64, 4)
	parallel.For(4, len(xs), func(shard, lo, hi int) {
		for _, x := range xs[lo:hi] {
			out[shard] += x
		}
	})
	return out
}

// clean: shard-local accumulator declared inside the body, folded by
// MapReduce in ascending shard order.
func shardLocal(xs []float64) float64 {
	return parallel.MapReduce(4, len(xs), 0.0,
		func(lo, hi int) float64 {
			local := 0.0
			for _, x := range xs[lo:hi] {
				local += x
			}
			return local
		},
		func(acc, part float64) float64 { return acc + part })
}

// clean: integer accumulation is associative and exact; not this
// analyzer's concern (nogoroutine/race detection handle the data race).
func intCapture(xs []int) int {
	n := 0
	parallel.For(1, len(xs), func(shard, lo, hi int) {
		n += hi - lo
	})
	return n
}

// clean: float accumulation in an ordinary closure not handed to
// internal/parallel is sequential.
func sequentialClosure(xs []float64) float64 {
	var sum float64
	add := func(x float64) {
		sum += x
	}
	for _, x := range xs {
		add(x)
	}
	return sum
}
