// Fixture for the nomaprange analyzer: order-sensitive map iteration is
// flagged, provably order-insensitive aggregation and non-map ranges
// are not.
package nomaprange

type nodeID uint32

func collect(m map[nodeID][]nodeID) []nodeID {
	var out []nodeID
	for v := range m { // want `range over map m`
		out = append(out, v)
	}
	return out
}

func viaFunc(get func() map[int]int) int {
	last := 0
	for _, v := range get() { // want `range over map get\(\)`
		last = v
	}
	return last
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map m`
		sum += v // float folds are order-sensitive
	}
	return sum
}

func readsAccumulator(m map[int]int) int {
	acc := 1
	for _, v := range m { // want `range over map m`
		acc += acc * v
	}
	return acc
}

func annotated(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//det:allow nomaprange fixture: consumer sorts downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}

// clean constructs below: integer aggregation, draining deletes, and
// slice ranges are order-insensitive.

func count(m map[int][]int) (n int, words int) {
	for _, v := range m {
		n++
		words += len(v)
	}
	return
}

func bits(m map[int]uint64) uint64 {
	var or uint64
	for _, v := range m {
		or |= v
	}
	return or
}

func drain(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

func sliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func emptyBody(m map[int]int) {
	for range m {
	}
}
