// Fixture for the nogoroutine analyzer: raw go statements and
// sync.WaitGroup fan-out are flagged; mutexes, channels as values, and
// annotated escapes are not.
package nogoroutine

import "sync"

func fanOut(work []int) {
	var wg sync.WaitGroup // want `sync\.WaitGroup fan-out`
	for range work {
		wg.Add(1)
		go func() { // want `raw go statement`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func parameterized(wg *sync.WaitGroup) { // want `sync\.WaitGroup fan-out`
	wg.Done()
}

func spawn(f func()) {
	go f() // want `raw go statement`
}

func annotated(f func()) {
	go f() //det:allow nogoroutine fixture: sanctioned background drain
}

func annotatedOwnLine(f func()) {
	//det:allow nogoroutine fixture: sanctioned background drain
	go f()
}

// clean constructs: locks and channel plumbing without fan-out.
func clean(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
