// Fixture for the nondetsource analyzer in SOLVER scope: math/rand
// imports, wall-clock reads, environment reads and unstable sorts are
// all flagged; deterministic time arithmetic is not.
package nondetsource

import (
	"math/rand" // want `import of math/rand in a solver package`
	"os"
	"sort"
	"time"
)

func draw() int {
	return rand.Int()
}

func stamp() int64 {
	t := time.Now() // want `time\.Now in a solver package`
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a solver package`
}

func fromEnv() string {
	return os.Getenv("SEED") // want `os\.Getenv in a solver package`
}

func unstable(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice: use slices\.Sort`
}

func alsoBanned(xs []int) bool {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })          // want `sort\.SliceStable: use slices\.SortStableFunc`
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.SliceIsSorted: use slices\.IsSorted`
}

func annotated() string {
	return os.Getenv("DEBUG_DUMP_DIR") //det:allow nondetsource fixture: debug-only escape hatch
}

// clean constructs: duration arithmetic and stable std sorts keep
// solver output independent of wall clock and environment.
func clean(d time.Duration, xs []int) time.Duration {
	sort.Ints(xs)
	return 2 * d
}
