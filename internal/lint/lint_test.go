package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers/nogoroutine"
	"repro/internal/lint/linttest"
)

// TestScopeFor pins the scope table: which analyzers run on which
// layers of the module, and which packages carry the full solver
// contract.
func TestScopeFor(t *testing.T) {
	const mod = "repro"
	cases := []struct {
		pkg    string
		solver bool
		want   []string
	}{
		{"repro/internal/core", true,
			[]string{"nogoroutine", "nomaprange", "nondetsource", "floatfold", "hotalloc"}},
		{"repro/internal/sparsify", true,
			[]string{"nogoroutine", "nomaprange", "nondetsource", "floatfold", "hotalloc"}},
		// The worker pool is the one place raw goroutines live, and
		// flagging its own fold plumbing would be circular.
		{"repro/internal/parallel", false,
			[]string{"nondetsource", "hotalloc"}},
		// Serving layer: goroutines are the product; not a solver
		// package, so map ranges are allowed (its maps are config).
		{"repro/internal/serve", false,
			[]string{"nondetsource", "floatfold", "hotalloc"}},
		// Command layer: exempt from the goroutine ban, still subject
		// to the repo-wide unstable-sort ban.
		{"repro/cmd/detserve", false,
			[]string{"nondetsource", "floatfold", "hotalloc"}},
		// Ordinary non-solver library code keeps the goroutine ban.
		{"repro/internal/lint", false,
			[]string{"nogoroutine", "nondetsource", "floatfold", "hotalloc"}},
	}
	for _, c := range cases {
		s := lint.ScopeFor(mod, c.pkg)
		if s.Solver != c.solver {
			t.Errorf("ScopeFor(%s).Solver = %v, want %v", c.pkg, s.Solver, c.solver)
		}
		var got []string
		for _, a := range s.Analyzers {
			got = append(got, a.Name)
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("ScopeFor(%s) analyzers = %v, want %v", c.pkg, got, c.want)
		}
	}
}

// TestDirectiveValidation runs the production suppression path over the
// directive fixture and pins the full diagnostic table: malformed,
// misplaced, unknown-analyzer and unused directives each surface as a
// detdirective diagnostic; the valid trailing allow is consumed
// silently. (These diagnostics land on the directive lines themselves,
// where a // want comment cannot coexist with the directive comment,
// so this table is asserted directly instead of through linttest.Run.)
func TestDirectiveValidation(t *testing.T) {
	pkg, err := linttest.Fixture("testdata/src/directive")
	if err != nil {
		t.Fatalf("loading directive fixture: %v", err)
	}
	diags := lint.RunOne(pkg, nogoroutine.Analyzer, false)

	type want struct {
		line     int
		analyzer string
		substr   string
	}
	wants := []want{
		{7, "detdirective", "malformed //det:allow: want //det:allow <analyzer> <reason>"},
		{10, "detdirective", "missing its reason"},
		{13, "detdirective", `unknown analyzer "frobnicate"`},
		{16, "detdirective", "unknown detlint directive //det:frobnicate"},
		{20, "detdirective", "misplaced //det:hotpath"},
		{26, "detdirective", "malformed detlint directive"},
		{27, "nogoroutine", "raw go statement"},
		{30, "detdirective", "unused //det:allow nogoroutine"},
	}

	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		for i, w := range wants {
			if !matched[i] && pos.Line == w.line && d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic at line %d: [%s] %s", pos.Line, d.Analyzer, d.Message)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("line %d: missing [%s] diagnostic containing %q", w.line, w.analyzer, w.substr)
		}
	}
}
