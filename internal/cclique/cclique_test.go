package cclique

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph/gen"
)

func params() core.Params { return core.DefaultParams() }

func TestModelAccounting(t *testing.T) {
	m := NewModel(100)
	m.ChargeRounds(3, "a")
	m.Lenzen(50, 80, "route")
	if m.Rounds() != 5 {
		t.Errorf("rounds = %d, want 5", m.Rounds())
	}
	if m.RoundsByLabel()["route"] != 2 {
		t.Errorf("labels = %v", m.RoundsByLabel())
	}
	if len(m.Violations()) != 0 {
		t.Errorf("violations = %v", m.Violations())
	}
	m.Lenzen(200, 10, "overload")
	if len(m.Violations()) != 1 {
		t.Error("overload not recorded")
	}
}

func TestNilModelSafe(t *testing.T) {
	var m *Model
	m.ChargeRounds(1, "x")
	m.Lenzen(1, 1, "x")
	if m.Rounds() != 0 || m.Violations() != nil {
		t.Error("nil model must be inert")
	}
}

func TestDetMISLowDegree(t *testing.T) {
	g := gen.RandomRegular(512, 6, 3)
	res := DetMIS(g, params())
	if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
		t.Fatal(reason)
	}
	if res.RoundsDet <= 0 {
		t.Error("no deterministic rounds charged")
	}
	if len(res.Model.Violations()) != 0 {
		t.Errorf("capacity violations: %v", res.Model.Violations())
	}
}

func TestDetMISBeatsCH15Accounting(t *testing.T) {
	// Corollary 2 vs [15]: O(log Δ) vs O(log Δ·log n) — the deterministic
	// rounds must undercut the baseline on every low-degree workload, with
	// the gap growing in n.
	gaps := make([]float64, 0, 2)
	for _, n := range []int{512, 4096} {
		g := gen.RandomRegular(n, 4, uint64(n))
		res := DetMIS(g, params())
		if res.RoundsDet >= res.RoundsCH15 {
			t.Errorf("n=%d: det %d rounds >= CH15 %d", n, res.RoundsDet, res.RoundsCH15)
		}
		gaps = append(gaps, float64(res.RoundsCH15)/float64(res.RoundsDet))
	}
	if gaps[1] <= gaps[0]*0.8 {
		t.Errorf("gap did not grow with n: %v", gaps)
	}
}

func TestDetMISRoundsScaleWithLogDelta(t *testing.T) {
	n := 1024
	prev := 0
	for _, d := range []int{4, 16} {
		g := gen.RandomRegular(n, d, uint64(d))
		res := DetMIS(g, params())
		if res.RoundsDet > 60*int(math.Log2(float64(d)))+60 {
			t.Errorf("Δ=%d: %d rounds too many", d, res.RoundsDet)
		}
		if res.RoundsDet < prev/4 {
			t.Errorf("rounds collapsed unexpectedly: Δ=%d %d after %d", d, res.RoundsDet, prev)
		}
		prev = res.RoundsDet
	}
}

func TestDetMatching(t *testing.T) {
	g := gen.Grid2D(20, 20)
	res := DetMatching(g, params())
	if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
		t.Fatal(reason)
	}
	if res.RoundsDet >= res.RoundsCH15 {
		t.Errorf("det %d >= CH15 %d", res.RoundsDet, res.RoundsCH15)
	}
}

func TestCH15Rounds(t *testing.T) {
	if CH15Rounds(1024, 10) != 10*11 {
		t.Errorf("CH15Rounds(1024,10) = %d, want 110", CH15Rounds(1024, 10))
	}
	if CH15Rounds(1, 5) != 5*2 {
		t.Errorf("degenerate n mishandled: %d", CH15Rounds(1, 5))
	}
}

func TestDetMISDeterministic(t *testing.T) {
	g := gen.RandomRegular(256, 4, 9)
	a, b := DetMIS(g, params()), DetMIS(g, params())
	if len(a.IndependentSet) != len(b.IndependentSet) || a.RoundsDet != b.RoundsDet {
		t.Fatal("nondeterministic CC MIS")
	}
}
