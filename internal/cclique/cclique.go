// Package cclique implements the CONGESTED CLIQUE side of the paper
// (Section 1.1.2, Corollary 2): n fully connected nodes, each round every
// ordered pair may exchange one O(log n)-bit message, and any pattern in
// which every node sends and receives at most n messages can be delivered
// in O(1) rounds by Lenzen's routing scheme [41].
//
// Corollary 2 states that the paper's deterministic MIS and maximal
// matching run in O(log Δ) CONGESTED CLIQUE rounds. This package provides:
//
//   - Model: a round/capacity accountant for the CC model with a Lenzen
//     routing primitive that validates the ≤ n send/receive constraint;
//   - DetMIS / DetMatching: the Section 5 stage-compressed algorithms
//     executed via internal/lowdeg with CC round accounting (ball sizes are
//     checked against the n-word Lenzen budget rather than MPC's n^ε);
//   - CH15Rounds: the round accounting of the prior state of the art
//     (Censor-Hillel et al. [15], O(log Δ·log n)): the per-phase
//     derandomization spends O(log n) voting rounds fixing an O(log n)-bit
//     seed O(1) bits at a time. Reproducing [15]'s Ghaffari-derandomization
//     in full is out of scope (DESIGN.md substitution 5); the baseline
//     charges its documented round structure against the same executed
//     phase counts, preserving the comparison's shape.
package cclique

import (
	"fmt"
	"maps"
	"math"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lowdeg"
)

// Model accounts rounds and message-capacity constraints in the CONGESTED
// CLIQUE on n nodes.
type Model struct {
	N          int
	rounds     int
	byLabel    map[string]int
	violations []string
}

// NewModel returns a CC accountant for n nodes.
func NewModel(n int) *Model {
	return &Model{N: n, byLabel: map[string]int{}}
}

// ChargeRounds charges k rounds under a label.
func (m *Model) ChargeRounds(k int, label string) {
	if m == nil {
		return
	}
	m.rounds += k
	m.byLabel[label] += k
}

// Lenzen charges one routing phase (2 rounds) after validating that no node
// sends or receives more than n words — the precondition of Lenzen's
// constant-round routing.
func (m *Model) Lenzen(maxSend, maxRecv int, label string) {
	if m == nil {
		return
	}
	if maxSend > m.N || maxRecv > m.N {
		m.violations = append(m.violations,
			fmt.Sprintf("lenzen overload: send %d / recv %d > n=%d [%s]", maxSend, maxRecv, m.N, label))
	}
	m.ChargeRounds(2, label)
}

// Rounds returns total charged rounds.
func (m *Model) Rounds() int {
	if m == nil {
		return 0
	}
	return m.rounds
}

// RoundsByLabel returns a copy of the per-label round counts.
func (m *Model) RoundsByLabel() map[string]int {
	if m == nil {
		return map[string]int{}
	}
	out := make(map[string]int, len(m.byLabel))
	maps.Copy(out, m.byLabel)
	return out
}

// Violations returns the recorded capacity violations.
func (m *Model) Violations() []string {
	if m == nil {
		return nil
	}
	return append([]string(nil), m.violations...)
}

// MISResult is the outcome of the deterministic CC MIS.
type MISResult struct {
	IndependentSet []graph.NodeID
	Stages         int
	Phases         int
	Ell            int
	// RoundsDet is the Corollary 2 accounting: O(log* n) colouring +
	// O(log log n)-round ball collection + O(1) rounds per stage.
	RoundsDet int
	// RoundsCH15 is the prior-art baseline accounting ([15]):
	// O(log n) voting rounds per executed Luby phase.
	RoundsCH15 int
	Model      *Model
}

// DetMIS runs the deterministic MIS in the CONGESTED CLIQUE model.
func DetMIS(g *graph.Graph, p core.Params) *MISResult {
	n := g.N()
	m := NewModel(n)
	res := lowdeg.MIS(g, p, nil)

	// Preprocessing: Linial colouring (1 round per iteration: colours fit
	// single messages) and ball collection by doubling; each doubling step
	// is one Lenzen phase and ball sizes must stay within the n-word budget.
	m.ChargeRounds(res.ColoringRounds+1, "cc.coloring")
	doublings := int(math.Ceil(math.Log2(float64(res.Radius)))) + 1
	m.Lenzen(res.MaxBallWords, res.MaxBallWords, "cc.collect")
	m.ChargeRounds(2*(doublings-1), "cc.collect")
	if res.MaxBallWords > n {
		// Balls exceeding n words break the Lenzen budget; record it (the
		// Δ = O(n^{1/3}) regime of Corollary 2 guarantees this fits).
		m.violations = append(m.violations,
			fmt.Sprintf("ball %d words > n=%d", res.MaxBallWords, n))
	}
	// Stages: the seed-sequence election is local (clique-wide local
	// computation is free); one aggregation announces winners: O(1)/stage.
	m.ChargeRounds(3*res.Stages, "cc.stages")

	out := &MISResult{
		IndependentSet: res.IndependentSet,
		Stages:         res.Stages,
		Phases:         len(res.Phases),
		Ell:            res.Ell,
		RoundsDet:      m.Rounds(),
		RoundsCH15:     CH15Rounds(n, len(res.Phases)),
		Model:          m,
	}
	if ok, reason := check.IsMaximalIS(g, out.IndependentSet); !ok {
		panic("cclique: invalid MIS: " + reason)
	}
	return out
}

// MatchingResult is the outcome of the deterministic CC maximal matching.
type MatchingResult struct {
	Matching   []graph.Edge
	MIS        *MISResult
	RoundsDet  int
	RoundsCH15 int
}

// DetMatching runs the deterministic maximal matching in the CONGESTED
// CLIQUE by simulating MIS on the line graph (Corollary 2; feasible for
// Δ = O(n^{1/3}) since 2-hop line-graph neighbourhoods fit the routing
// budget).
func DetMatching(g *graph.Graph, p core.Params) *MatchingResult {
	lg, edges := g.LineGraph()
	misRes := DetMIS(lg, p)
	out := &MatchingResult{
		MIS:        misRes,
		RoundsDet:  misRes.RoundsDet,
		RoundsCH15: misRes.RoundsCH15,
	}
	for _, v := range misRes.IndependentSet {
		out.Matching = append(out.Matching, edges[v])
	}
	if ok, reason := check.IsMaximalMatching(g, out.Matching); !ok {
		panic("cclique: invalid matching: " + reason)
	}
	return out
}

// CH15Rounds returns the baseline accounting of Censor-Hillel et al. [15]
// for `phases` derandomized steps on an n-node clique: each phase fixes an
// O(log n)-bit seed via bit-by-bit voting, O(1) rounds per bit — i.e.
// ceil(log2 n) + 1 rounds per phase, O(log Δ · log n) in total.
func CH15Rounds(n, phases int) int {
	if n < 2 {
		n = 2
	}
	perPhase := int(math.Ceil(math.Log2(float64(n)))) + 1
	return phases * perPhase
}
