package luby

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestMISMaximalOnFixtures(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"empty":    graph.Empty(8),
		"path":     gen.Path(40),
		"complete": gen.Complete(30),
		"star":     gen.Star(64),
		"gnm":      gen.GNM(500, 2500, 1),
		"powerlaw": gen.PowerLaw(400, 1600, 2.5, 2),
	} {
		res := MIS(g, detrand.New(7))
		if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
			t.Errorf("%s: %s", name, reason)
		}
	}
}

func TestMISRoundsLogarithmic(t *testing.T) {
	g := gen.GNM(2048, 2048*8, 3)
	res := MIS(g, detrand.New(1))
	if r := len(res.Rounds); r > int(4*math.Log2(float64(g.M()))) {
		t.Errorf("Luby MIS took %d rounds on m=%d", r, g.M())
	}
}

func TestMISEdgeDecay(t *testing.T) {
	g := gen.GNM(1024, 8192, 5)
	res := MIS(g, detrand.New(2))
	for _, st := range res.Rounds {
		if st.EdgesAfter >= st.EdgesBefore {
			t.Fatalf("round %d made no progress", st.Round)
		}
	}
}

func TestMISDeterministicGivenSeed(t *testing.T) {
	g := gen.GNM(300, 1200, 4)
	a := MIS(g, detrand.New(42))
	b := MIS(g, detrand.New(42))
	if len(a.IndependentSet) != len(b.IndependentSet) {
		t.Fatal("same seed, different MIS size")
	}
	for i := range a.IndependentSet {
		if a.IndependentSet[i] != b.IndependentSet[i] {
			t.Fatal("same seed, different MIS")
		}
	}
}

func TestMaximalMatchingOnFixtures(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"empty":    graph.Empty(8),
		"path":     gen.Path(40),
		"complete": gen.Complete(30),
		"gnm":      gen.GNM(400, 2000, 6),
	} {
		res := MaximalMatching(g, detrand.New(3))
		if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
			t.Errorf("%s: %s", name, reason)
		}
	}
}

func TestMatchingRoundsLogarithmic(t *testing.T) {
	g := gen.GNM(1024, 1024*8, 8)
	res := MaximalMatching(g, detrand.New(1))
	if r := len(res.Rounds); r > int(4*math.Log2(float64(g.M()))) {
		t.Errorf("matching took %d rounds", r)
	}
}

func TestGreedyMIS(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Path(9), gen.Complete(12), gen.GNM(200, 700, 2)} {
		is := GreedyMIS(g)
		if ok, reason := check.IsMaximalIS(g, is); !ok {
			t.Error(reason)
		}
	}
	if got := len(GreedyMIS(gen.Star(10))); got != 1 {
		t.Errorf("greedy MIS of star picked %d nodes (id order starts at centre)", got)
	}
}

func TestGreedyMatching(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Path(9), gen.Complete(12), gen.GNM(200, 700, 3)} {
		mm := GreedyMatching(g)
		if ok, reason := check.IsMaximalMatching(g, mm); !ok {
			t.Error(reason)
		}
	}
}

func TestVerifyPanicsOnBadInput(t *testing.T) {
	g := gen.Path(4)
	defer func() {
		if recover() == nil {
			t.Error("Verify accepted a broken MIS")
		}
	}()
	Verify(g, []graph.NodeID{0, 1}, nil)
}
