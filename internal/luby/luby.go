// Package luby provides the comparison baselines of the experiment suite:
// Luby's classical randomized MIS algorithm (Section 2.1 of the paper), its
// matching variant (MIS on edges, cf. Israeli–Itai), and the sequential
// greedy references. The randomized algorithms consume a detrand source and
// report per-round progress so experiment F1/F2 can overlay their edge-decay
// and round curves against the deterministic algorithms'.
package luby

import (
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/scratch"
)

// RoundStats records one randomized round.
type RoundStats struct {
	Round       int
	EdgesBefore int
	EdgesAfter  int
	Selected    int
}

// MISResult is the outcome of the randomized MIS.
type MISResult struct {
	IndependentSet []graph.NodeID
	Rounds         []RoundStats
	// Canceled is set when the done hook of MISIn stopped the run at a
	// round boundary; IndependentSet is then partial and NOT maximal.
	Canceled bool
}

// MIS runs Luby's algorithm: every round each surviving node draws a random
// z value and joins the independent set iff its value is strictly smaller
// (ties by id) than all surviving neighbours'; the set and its neighbourhood
// leave the graph. Terminates when no edges remain; isolated nodes join.
func MIS(g *graph.Graph, src *detrand.Source) *MISResult { return MISW(g, src, 0) }

// MISW is MIS with the per-round graph rebuild sharded over up to `workers`
// host workers (0 = GOMAXPROCS, 1 = serial). The z draws stay serial in id
// order (they consume the deterministic source) and the candidate selection
// runs through the serial z-vector kernel (core.LocalMinNodesZ), so the
// output is identical at any worker count. Draws come from the selection
// kernels' hash field [p) — the same range the derandomized solvers hash
// into — so the selection takes the packed single-word (z,id) fast path
// instead of the compare-two-words fallback that full 64-bit draws force.
func MISW(g *graph.Graph, src *detrand.Source, workers int) *MISResult {
	return MISIn(scratch.New(), g, src, workers, nil)
}

// MISIn is MISW drawing the per-round z table, candidate buffer and removal
// mask from sc and ping-ponging the shrinking graph between sc's two loop
// CSR buffers. The per-round candidate set is the z-vector local-minimum
// selection shared with the derandomized solvers (core.LocalMinNodesZ) —
// after the isolated-join every alive node has degree > 0 and every
// neighbour in cur is alive, so the selection is exactly Luby's rule. The
// output is identical to MISW for any prior state of sc and any worker
// count; sc is Reset at every round boundary and left Reset on return.
//
// done, when non-nil, follows the repository's cancellation convention
// (core.Params.Done): it is polled once per round boundary and a true
// return abandons the run with Canceled set — a baseline driven by the same
// request machinery as the deterministic solvers stops on the same
// checkpoints.
func MISIn(sc *scratch.Context, g *graph.Graph, src *detrand.Source, workers int, done func() bool) *MISResult {
	n := g.N()
	res := &MISResult{}
	cur := g
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	inMIS := make([]bool, n)
	// Draw z values from the pairwise selection field [p), like the
	// derandomized solver's hashes, rather than full 64-bit words: bounded
	// draws let LocalMinNodesZ pack (z, id) into single words and take its
	// branch-free fast path. Dead slots stay zero (below p), which is fine —
	// the alive mask excludes them from selection entirely.
	p := core.PairwiseFamily(n).P()

	for round := 1; ; round++ {
		if done != nil && done() {
			res.Canceled = true
			break
		}
		for v := 0; v < n; v++ {
			if alive[v] && cur.Degree(graph.NodeID(v)) == 0 {
				inMIS[v] = true
				alive[v] = false
			}
		}
		if cur.M() == 0 {
			break
		}
		st := RoundStats{Round: round, EdgesBefore: cur.M()}
		z := sc.Uint64s(n)
		for v := 0; v < n; v++ {
			if alive[v] {
				z[v] = src.Uint64n(p)
			}
		}
		ih := core.LocalMinNodesZ(sc.NodeIDsCap(n), cur, alive, z)
		st.Selected = len(ih)
		remove := sc.Bools(n)
		for _, v := range ih {
			inMIS[v] = true
			alive[v] = false
			remove[v] = true
		}
		for _, v := range ih {
			for _, u := range cur.Neighbors(v) {
				if alive[u] {
					alive[u] = false
					remove[u] = true
				}
			}
		}
		cur = cur.WithoutNodesInto(remove, workers, sc.Loop().Next())
		st.EdgesAfter = cur.M()
		res.Rounds = append(res.Rounds, st)
		sc.Reset()
	}
	for v := 0; v < n; v++ {
		if inMIS[v] {
			res.IndependentSet = append(res.IndependentSet, graph.NodeID(v))
		}
	}
	return res
}

// MatchingResult is the outcome of the randomized maximal matching.
type MatchingResult struct {
	Matching []graph.Edge
	Rounds   []RoundStats
	// Canceled is set when the done hook of MaximalMatchingIn stopped the
	// run at a round boundary; Matching is then partial and NOT maximal.
	Canceled bool
}

// MaximalMatching runs the Luby-style matching: every round each surviving
// edge draws a random value; local-minimum edges join the matching and their
// endpoints leave the graph.
func MaximalMatching(g *graph.Graph, src *detrand.Source) *MatchingResult {
	return MaximalMatchingW(g, src, 0)
}

// MaximalMatchingW is MaximalMatching with the per-round graph rebuild
// sharded over up to `workers` host workers (0 = GOMAXPROCS, 1 = serial).
// The z draws stay serial in canonical edge order and winners come from the
// serial two-pass z-vector kernel (core.LocalMinEdgesZ) in edge order, so
// the output is identical at any worker count.
func MaximalMatchingW(g *graph.Graph, src *detrand.Source, workers int) *MatchingResult {
	return MaximalMatchingIn(scratch.New(), g, src, workers, nil)
}

// MaximalMatchingIn is MaximalMatchingW drawing the per-round edge list, z
// vector and masks from sc and ping-ponging the shrinking graph between
// sc's two loop CSR buffers. The per-round z values live in a vector
// parallel to the canonical edge list (drawn in edge order, exactly as the
// old per-edge map was filled) from the pairwise selection field [p) — the
// bounded draws let LocalMinEdgesZ pack (z, edge-key) into single words and
// take its branch-free fast path, as in MISIn — and winners come from the
// same two-pass local-minimum kernel the derandomized solvers use
// (core.LocalMinEdgesZ),
// which replaced a per-round hash map — the selection compares (z, edge
// key) pairs identically, so outputs are unchanged. The output is identical
// to MaximalMatchingW for any prior state of sc and any worker count; sc is
// Reset at every round boundary and left Reset on return. done follows the
// round-boundary cancellation convention documented on MISIn.
func MaximalMatchingIn(sc *scratch.Context, g *graph.Graph, src *detrand.Source, workers int, done func() bool) *MatchingResult {
	res := &MatchingResult{}
	cur := g
	n := g.N()
	// The epoch-stamped selection scratch survives sc.Reset (its stamp
	// array and generation counter must stay paired), so it is drawn from
	// the Context's persistent slot rather than checked out per round.
	lm := sc.EdgeMin()
	// Selection-field draws, as in MISIn: below p the packed edge path of
	// LocalMinEdgesZ applies whenever the id width allows it.
	p := core.PairwiseFamily(n).P()
	for round := 1; cur.M() > 0; round++ {
		if done != nil && done() {
			res.Canceled = true
			break
		}
		st := RoundStats{Round: round, EdgesBefore: cur.M()}
		edges := cur.EdgesAppend(sc.EdgesCap(cur.M()))
		z := sc.Uint64s(len(edges))
		for i := range edges {
			z[i] = src.Uint64n(p)
		}
		picked := core.LocalMinEdgesZ(lm, cur, edges, z)
		matched := sc.Bools(n)
		for _, e := range picked {
			matched[e.U] = true
			matched[e.V] = true
		}
		st.Selected = len(picked)
		res.Matching = append(res.Matching, picked...)
		cur = cur.WithoutNodesInto(matched, workers, sc.Loop().Next())
		st.EdgesAfter = cur.M()
		res.Rounds = append(res.Rounds, st)
		sc.Reset()
	}
	return res
}

// GreedyMIS returns the sequential greedy MIS in id order — the simplest
// correct reference for validators and size comparisons.
func GreedyMIS(g *graph.Graph) []graph.NodeID {
	var out []graph.NodeID
	blocked := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		out = append(out, graph.NodeID(v))
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			blocked[u] = true
		}
	}
	return out
}

// GreedyMatching returns the sequential greedy maximal matching in canonical
// edge order.
func GreedyMatching(g *graph.Graph) []graph.Edge {
	var out []graph.Edge
	used := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		if used[u] {
			continue
		}
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v && !used[v] {
				out = append(out, graph.Edge{U: graph.NodeID(u), V: v})
				used[u] = true
				used[v] = true
				break
			}
		}
	}
	return out
}

// Verify panics if the given outputs are not maximal on g; used by the
// experiment harness to guard every baseline run.
func Verify(g *graph.Graph, is []graph.NodeID, mm []graph.Edge) {
	if is != nil {
		if ok, reason := check.IsMaximalIS(g, is); !ok {
			panic("luby: baseline produced invalid MIS: " + reason)
		}
	}
	if mm != nil {
		if ok, reason := check.IsMaximalMatching(g, mm); !ok {
			panic("luby: baseline produced invalid matching: " + reason)
		}
	}
}
