package mpc

import (
	"sort"
	"testing"

	"repro/internal/detrand"
)

func TestNewClusterValidation(t *testing.T) {
	for _, bad := range []Config{{Machines: 0, Space: 10}, {Machines: 4, Space: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCluster(%+v) did not panic", bad)
				}
			}()
			NewCluster(bad)
		}()
	}
}

func TestRoundDeliversMessages(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Space: 100})
	err := c.Round("t", func(ctx *MachineCtx) {
		ctx.SendValues((ctx.ID+1)%3, uint64(ctx.ID))
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]uint64{}
	err = c.Round("t", func(ctx *MachineCtx) {
		if len(ctx.Inbox) != 1 || len(ctx.Inbox[0]) != 1 {
			t.Errorf("machine %d inbox %v", ctx.ID, ctx.Inbox)
			return
		}
		got[ctx.ID] = ctx.Inbox[0][0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 || got[2] != 1 || got[0] != 2 {
		t.Errorf("ring delivery wrong: %v", got)
	}
}

func TestRoundRejectsInvalidDestination(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Space: 10})
	err := c.Round("t", func(ctx *MachineCtx) {
		ctx.SendValues(5, 1)
	})
	if err == nil {
		t.Error("sending to invalid machine did not error")
	}
}

func TestSpaceViolationStrict(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Space: 4, Strict: true})
	err := c.Round("t", func(ctx *MachineCtx) {
		if ctx.ID == 0 {
			ctx.Send(1, make([]uint64, 10)) // outbox 10 > S=4
		}
	})
	if err == nil {
		t.Error("strict mode did not error on outbox violation")
	}
}

func TestSpaceViolationRecordedNonStrict(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Space: 4})
	err := c.Round("t", func(ctx *MachineCtx) {
		ctx.SetStore(make([]uint64, 100))
	})
	if err != nil {
		t.Fatalf("non-strict mode errored: %v", err)
	}
	if len(c.Stats().Violations) == 0 {
		t.Error("store violation not recorded")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 4, Space: 100})
	for r := 0; r < 3; r++ {
		err := c.Round("phase", func(ctx *MachineCtx) {
			ctx.SendValues(0, 1, 2, 3)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Rounds != 3 {
		t.Errorf("rounds = %d", s.Rounds)
	}
	if s.Messages != 12 {
		t.Errorf("messages = %d", s.Messages)
	}
	if s.WordsSent != 36 {
		t.Errorf("words = %d", s.WordsSent)
	}
	if s.RoundsByLabel()["phase"] != 3 {
		t.Errorf("labelled rounds = %v", s.RoundsByLabel())
	}
	if s.MaxInbox != 12 {
		t.Errorf("max inbox = %d, want 12", s.MaxInbox)
	}
}

func TestLoadBalanced(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Space: 10})
	data := []uint64{1, 2, 3, 4, 5, 6, 7}
	if err := c.LoadBalanced(data); err != nil {
		t.Fatal(err)
	}
	if got := c.GatherAll(); len(got) != len(data) {
		t.Fatalf("gathered %d words", len(got))
	}
	for i, w := range c.GatherAll() {
		if w != data[i] {
			t.Fatalf("word %d = %d", i, w)
		}
	}
}

func TestLoadBalancedStrictOverflow(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Space: 2, Strict: true})
	if err := c.LoadBalanced(make([]uint64, 100)); err == nil {
		t.Error("overflow load did not error in strict mode")
	}
}

func sortTestData(n int, seed uint64) []uint64 {
	r := detrand.New(seed)
	data := make([]uint64, n)
	for i := range data {
		data[i] = r.Uint64() % 10000
	}
	return data
}

func TestSortCorrectness(t *testing.T) {
	for _, tc := range []struct{ machines, space, n int }{
		{1, 64, 50},
		{4, 64, 200},
		{8, 128, 1000},
		{16, 512, 5000},
	} {
		c := NewCluster(Config{Machines: tc.machines, Space: tc.space * 4, Strict: false})
		data := sortTestData(tc.n, uint64(tc.n))
		if err := c.LoadBalanced(data); err != nil {
			t.Fatal(err)
		}
		if err := Sort(c); err != nil {
			t.Fatalf("M=%d: %v", tc.machines, err)
		}
		got := c.GatherAll()
		want := append([]uint64(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("M=%d: length %d, want %d", tc.machines, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("M=%d: position %d = %d, want %d", tc.machines, i, got[i], want[i])
			}
		}
	}
}

func TestSortConstantRounds(t *testing.T) {
	// The round count must not depend on the data size: Lemma 4's claim.
	var counts []int
	for _, n := range []int{100, 1000, 10000} {
		c := NewCluster(Config{Machines: 8, Space: 4 * n})
		if err := c.LoadBalanced(sortTestData(n, 1)); err != nil {
			t.Fatal(err)
		}
		if err := Sort(c); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, c.Stats().Rounds)
	}
	for _, r := range counts {
		if r != counts[0] {
			t.Errorf("sort rounds vary with input size: %v", counts)
		}
	}
	if counts[0] != 4 {
		t.Errorf("sort rounds = %d, want 4", counts[0])
	}
}

func TestSortRejectsTooManyMachines(t *testing.T) {
	c := NewCluster(Config{Machines: 100, Space: 10})
	if err := Sort(c); err == nil {
		t.Error("Sort with M(M-1) > S did not error")
	}
}

func TestPrefixSumCorrectness(t *testing.T) {
	for _, tc := range []struct{ machines, space, n int }{
		{1, 32, 10},
		{3, 32, 17},
		{8, 32, 100},
		{16, 16, 64}, // small space forces a multi-level tree
		{32, 8, 64},
	} {
		c := NewCluster(Config{Machines: tc.machines, Space: tc.space})
		data := make([]uint64, tc.n)
		var want uint64
		for i := range data {
			data[i] = uint64(i%7 + 1)
			want += data[i]
		}
		if err := c.LoadBalanced(data); err != nil {
			t.Fatal(err)
		}
		total, err := PrefixSum(c)
		if err != nil {
			t.Fatalf("M=%d S=%d: %v", tc.machines, tc.space, err)
		}
		if total != want {
			t.Fatalf("M=%d S=%d: total = %d, want %d", tc.machines, tc.space, total, want)
		}
		got := c.GatherAll()
		var run uint64
		for i, w := range got {
			run += data[i]
			if w != run {
				t.Fatalf("M=%d S=%d: prefix[%d] = %d, want %d", tc.machines, tc.space, i, w, run)
			}
		}
	}
}

func TestPrefixSumRoundsLogarithmic(t *testing.T) {
	// Rounds = 2*depth+1 with depth = ceil(log_f M); with constant space the
	// depth grows with M, with large space it stays 1.
	big := NewCluster(Config{Machines: 64, Space: 1024})
	if err := big.LoadBalanced(make([]uint64, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := PrefixSum(big); err != nil {
		t.Fatal(err)
	}
	if r := big.Stats().Rounds; r != 3 {
		t.Errorf("wide tree rounds = %d, want 3 (one level)", r)
	}
}

func TestBroadcast(t *testing.T) {
	for _, machines := range []int{1, 2, 7, 32} {
		c := NewCluster(Config{Machines: machines, Space: 64})
		payload := []uint64{42, 7, 9}
		got, err := Broadcast(c, payload)
		if err != nil {
			t.Fatalf("M=%d: %v", machines, err)
		}
		for id := 0; id < machines; id++ {
			if len(got[id]) != len(payload) {
				t.Fatalf("M=%d machine %d payload %v", machines, id, got[id])
			}
			for i := range payload {
				if got[id][i] != payload[i] {
					t.Fatalf("M=%d machine %d payload %v", machines, id, got[id])
				}
			}
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, machines := range []int{1, 4, 16} {
		c := NewCluster(Config{Machines: machines, Space: 256})
		k := 5
		total, err := AllReduceSum(c, k, func(id int) []uint64 {
			v := make([]uint64, k)
			for i := range v {
				v[i] = uint64(id + i)
			}
			return v
		})
		if err != nil {
			t.Fatalf("M=%d: %v", machines, err)
		}
		for i := 0; i < k; i++ {
			want := uint64(0)
			for id := 0; id < machines; id++ {
				want += uint64(id + i)
			}
			if total[i] != want {
				t.Errorf("M=%d: total[%d] = %d, want %d", machines, i, total[i], want)
			}
		}
	}
}

func TestAllReduceSumLengthMismatch(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Space: 64})
	_, err := AllReduceSum(c, 3, func(id int) []uint64 { return make([]uint64, id+1) })
	if err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		c := NewCluster(Config{Machines: 8, Space: 4096})
		if err := c.LoadBalanced(sortTestData(512, 3)); err != nil {
			t.Fatal(err)
		}
		if err := Sort(c); err != nil {
			t.Fatal(err)
		}
		if _, err := PrefixSum(c); err != nil {
			t.Fatal(err)
		}
		return c.GatherAll()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at word %d", i)
		}
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ m, f, want int }{
		{1, 2, 0}, {2, 2, 1}, {4, 2, 2}, {5, 2, 3}, {8, 2, 3},
		{9, 3, 2}, {27, 3, 3}, {16, 16, 1},
	}
	for _, c := range cases {
		if got := TreeDepth(c.m, c.f); got != c.want {
			t.Errorf("TreeDepth(%d,%d) = %d, want %d", c.m, c.f, got, c.want)
		}
	}
}

func BenchmarkSort64Machines(b *testing.B) {
	data := sortTestData(1<<14, 1)
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Machines: 64, Space: 4096})
		if err := c.LoadBalanced(data); err != nil {
			b.Fatal(err)
		}
		if err := Sort(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefixSum(b *testing.B) {
	data := sortTestData(1<<14, 1)
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Machines: 64, Space: 4096})
		if err := c.LoadBalanced(data); err != nil {
			b.Fatal(err)
		}
		if _, err := PrefixSum(c); err != nil {
			b.Fatal(err)
		}
	}
}
