package mpc

import (
	"fmt"
	"sort"
)

// This file implements the Lemma 4 toolbox (Goodrich et al. [30]) on the
// message-level cluster: deterministic constant-round sorting and prefix
// sums, plus the broadcast/all-reduce helpers the seed-search voting uses.
//
// Round counts achieved (and asserted by tests):
//
//	Sort        4 rounds (regular-sampling sample sort)
//	PrefixSum   2*ceil(log_f M) + 1 rounds, f = max(2, S/4)
//	Broadcast   ceil(log_f M) rounds
//	AllReduce   2*ceil(log_f M) rounds
//
// With S = n^ε and M·S = Θ(n^{1+ε}) these are all O(1/ε) = O(1) rounds,
// which is exactly the constant-round claim of Lemma 4. The algorithm layer
// (internal/simcost) charges rounds with the same formulas.

// Sort sorts the union of all machine stores ascending and redistributes the
// result so machine i holds the i-th contiguous run of the global order
// (balanced to ±1 of N/M except for sampling skew). It requires
// M*(M-1) <= S so the splitter election fits on one machine, which holds for
// all experiment configurations; it returns an error otherwise.
func Sort(c *Cluster) error {
	m := c.cfg.Machines
	if m == 1 {
		sortStore(c.stores[0])
		return c.Round("sort", func(ctx *MachineCtx) {})
	}
	if m*(m-1) > c.cfg.Space {
		return fmt.Errorf("mpc: Sort needs M(M-1)=%d <= S=%d", m*(m-1), c.cfg.Space)
	}

	// Round 1: local sort; send M-1 evenly spaced samples to machine 0.
	err := c.Round("sort", func(ctx *MachineCtx) {
		sortStore(ctx.Store())
		s := ctx.Store()
		samples := make([]uint64, 0, m-1)
		for j := 1; j < m; j++ {
			if len(s) == 0 {
				break
			}
			idx := j * len(s) / m
			if idx >= len(s) {
				idx = len(s) - 1
			}
			samples = append(samples, s[idx])
		}
		ctx.Send(0, samples)
	})
	if err != nil {
		return err
	}

	// Round 2: machine 0 sorts all samples, picks M-1 splitters, broadcasts.
	err = c.Round("sort", func(ctx *MachineCtx) {
		if ctx.ID != 0 {
			return
		}
		var all []uint64
		for _, msg := range ctx.Inbox {
			all = append(all, msg...)
		}
		sortStore(all)
		splitters := make([]uint64, 0, m-1)
		for j := 1; j < m; j++ {
			if len(all) == 0 {
				break
			}
			idx := j * len(all) / m
			if idx >= len(all) {
				idx = len(all) - 1
			}
			splitters = append(splitters, all[idx])
		}
		for to := 0; to < m; to++ {
			ctx.Send(to, append([]uint64(nil), splitters...))
		}
	})
	if err != nil {
		return err
	}

	// Round 3: partition local (sorted) data by splitters; bucket j goes to
	// machine j.
	err = c.Round("sort", func(ctx *MachineCtx) {
		var splitters []uint64
		for _, msg := range ctx.Inbox {
			splitters = msg
		}
		s := ctx.Store()
		start := 0
		for j := 0; j < m; j++ {
			end := len(s)
			if j < len(splitters) {
				end = sort.Search(len(s), func(i int) bool { return s[i] > splitters[j] })
			}
			if end < start {
				end = start
			}
			if end > start {
				ctx.Send(j, append([]uint64(nil), s[start:end]...))
			}
			start = end
		}
		ctx.SetStore(nil)
	})
	if err != nil {
		return err
	}

	// Round 4: merge received buckets.
	return c.Round("sort", func(ctx *MachineCtx) {
		var all []uint64
		for _, msg := range ctx.Inbox {
			all = append(all, msg...)
		}
		sortStore(all)
		ctx.SetStore(all)
	})
}

// scanFanout returns the aggregation-tree fanout for payloads of k words
// per child: S/(4k) clamped to [2, M], so that a parent's inbox of one
// payload per child fits comfortably in S.
func (c *Cluster) scanFanout(k int) int {
	if k < 1 {
		k = 1
	}
	f := c.cfg.Space / (4 * k)
	if f > c.cfg.Machines {
		f = c.cfg.Machines
	}
	if f < 2 {
		f = 2 // TreeDepth(1, 2) == 0, so M == 1 still works
	}
	return f
}

// TreeDepth returns ceil(log_f(m)) for m >= 1: the number of levels in the
// aggregation tree (0 when m == 1).
func TreeDepth(m, f int) int {
	if f < 2 {
		panic("mpc: fanout must be >= 2")
	}
	depth := 0
	span := 1
	for span < m {
		span *= f
		depth++
	}
	return depth
}

// scanNode is the per-machine protocol state of PrefixSum. It is
// semantically part of the machine's local memory: childSums holds at most
// f-1 words per tree level.
type scanNode struct {
	subtreeSum uint64
	childSums  [][]uint64 // per level: sums of children 1..f-1 (index j-1)
	offset     uint64
}

// ownSubSum returns the sum of node id's own sub-block below level lvl, i.e.
// the block [id, id+f^lvl): the full subtree sum minus all children merged
// at levels >= lvl.
func (n *scanNode) ownSubSum(lvl int) uint64 {
	sum := n.subtreeSum
	for l := lvl; l < len(n.childSums); l++ {
		for _, s := range n.childSums[l] {
			sum -= s
		}
	}
	return sum
}

// PrefixSum computes the exclusive global prefix sums of the concatenation
// of machine stores: afterwards each machine's store is replaced by its
// running inclusive prefix sums offset by the sum of all words on machines
// before it. The global total is returned.
//
// Protocol: up-sweep of per-subtree sums along an f-ary tree, down-sweep of
// offsets, one final local pass. 2*ceil(log_f M)+1 rounds.
func PrefixSum(c *Cluster) (total uint64, err error) {
	m := c.cfg.Machines
	f := c.scanFanout(2)
	depth := TreeDepth(m, f)

	state := make([]scanNode, m)
	for i, s := range c.stores {
		var sum uint64
		for _, w := range s {
			sum += w
		}
		state[i].subtreeSum = sum
		state[i].childSums = make([][]uint64, depth)
	}

	// Up-sweep: level l merges blocks of size f^l into f^(l+1).
	span := 1
	for l := 0; l < depth; l++ {
		lvl := l
		blk := span * f
		err = c.Round("prefixsum", func(ctx *MachineCtx) {
			id := ctx.ID
			if id%span != 0 {
				return // not a level-l node
			}
			pos := (id / span) % f
			if pos != 0 {
				parent := id - pos*span
				ctx.SendValues(parent, uint64(pos), state[id].subtreeSum)
			}
		})
		if err != nil {
			return 0, err
		}
		// Deliver: parents fold child sums (reading inboxes is part of the
		// *next* round in the raw model; we fold here for clarity and charge
		// no extra round since the fold happens inside the next Round call's
		// step in a fully literal implementation).
		for id := 0; id < m; id += blk {
			sums := make([]uint64, f-1)
			for _, msg := range c.inboxes[id] {
				if len(msg) == 2 {
					sums[int(msg[0])-1] = msg[1]
				}
			}
			state[id].childSums[lvl] = sums
			for _, s := range sums {
				state[id].subtreeSum += s
			}
			c.inboxes[id] = nil
		}
		span = blk
	}
	total = state[0].subtreeSum

	// Down-sweep: root's offset is 0; parents hand children their offsets.
	state[0].offset = 0
	for l := depth - 1; l >= 0; l-- {
		span /= f
		lvl := l
		err = c.Round("prefixsum", func(ctx *MachineCtx) {
			id := ctx.ID
			blk := span * f
			if id%blk != 0 {
				return // not a parent at this level
			}
			// Child j covers [id + j*span, ...); its offset is the parent
			// offset plus the parent's own sub-block plus children < j. The
			// parent's own sub-block keeps the parent's offset.
			cum := state[id].offset + state[id].ownSubSum(lvl)
			for j := 1; j < f; j++ {
				child := id + j*span
				if child >= m {
					break
				}
				ctx.SendValues(child, cum)
				cum += state[id].childSums[lvl][j-1]
			}
		})
		if err != nil {
			return 0, err
		}
		for id := 0; id < m; id++ {
			for _, msg := range c.inboxes[id] {
				if len(msg) == 1 {
					state[id].offset = msg[0]
				}
			}
			c.inboxes[id] = nil
		}
	}

	// Final local pass: replace stores with running prefix sums.
	err = c.Round("prefixsum", func(ctx *MachineCtx) {
		s := ctx.Store()
		run := state[ctx.ID].offset
		for i, w := range s {
			run += w
			s[i] = run
		}
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// Broadcast sends the payload from machine 0 to every machine along an f-ary
// tree in ceil(log_f M) rounds. Each machine's copy is returned. The payload
// must satisfy f*len(payload) <= S to respect outbox bounds.
func Broadcast(c *Cluster, payload []uint64) ([][]uint64, error) {
	m := c.cfg.Machines
	f := c.scanFanout(len(payload))
	depth := TreeDepth(m, f)
	got := make([][]uint64, m)
	got[0] = append([]uint64(nil), payload...)

	span := 1
	for span < m {
		span *= f
	}
	for l := depth - 1; l >= 0; l-- {
		span /= f
		if span == 0 {
			span = 1
		}
		blk := span * f
		err := c.Round("broadcast", func(ctx *MachineCtx) {
			id := ctx.ID
			if id%blk != 0 || got[id] == nil {
				return
			}
			for j := 1; j < f; j++ {
				child := id + j*span
				if child >= m {
					break
				}
				ctx.Send(child, append([]uint64(nil), got[id]...))
			}
		})
		if err != nil {
			return nil, err
		}
		for id := 0; id < m; id++ {
			for _, msg := range c.inboxes[id] {
				got[id] = msg
			}
			c.inboxes[id] = nil
		}
	}
	return got, nil
}

// AllReduceSum computes the elementwise sum of one equal-length vector per
// machine (vec(id) supplied by the callback) and returns the total vector,
// which is also delivered to every machine via Broadcast. Vector length k
// must satisfy f*k <= S. Rounds: 2*ceil(log_f M).
//
// This primitive is the message-level realisation of one "voting" step of
// the method of conditional expectations (Section 2.4): each machine
// contributes its local objective value for each of k candidate seed
// extensions, and the summed vector tells every machine which extension to
// fix.
func AllReduceSum(c *Cluster, k int, vec func(id int) []uint64) ([]uint64, error) {
	m := c.cfg.Machines
	f := c.scanFanout(k)
	depth := TreeDepth(m, f)
	acc := make([][]uint64, m)
	for id := 0; id < m; id++ {
		v := vec(id)
		if len(v) != k {
			return nil, fmt.Errorf("mpc: AllReduceSum vector length %d != %d on machine %d", len(v), k, id)
		}
		acc[id] = append([]uint64(nil), v...)
	}
	span := 1
	for l := 0; l < depth; l++ {
		blk := span * f
		err := c.Round("allreduce", func(ctx *MachineCtx) {
			id := ctx.ID
			if id%span != 0 {
				return
			}
			pos := (id / span) % f
			if pos != 0 {
				parent := id - pos*span
				ctx.Send(parent, append([]uint64(nil), acc[id]...))
			}
		})
		if err != nil {
			return nil, err
		}
		for id := 0; id < m; id += blk {
			for _, msg := range c.inboxes[id] {
				for i, w := range msg {
					acc[id][i] += w
				}
			}
			c.inboxes[id] = nil
		}
		span = blk
	}
	total := append([]uint64(nil), acc[0]...)
	if _, err := Broadcast(c, total); err != nil {
		return nil, err
	}
	return total, nil
}
