package mpc

import (
	"strings"
	"testing"
)

// Failure-injection tests: the simulator must surface model violations
// rather than silently absorbing them.

func TestSortSkewedKeysOverloadsOneMachine(t *testing.T) {
	// All-equal keys defeat splitter election: one machine receives
	// everything in the partition round. Non-strict mode must record the
	// inbox violation; the data must still come out sorted (the simulator
	// degrades, it does not corrupt).
	const n, machines, space = 4096, 8, 600
	c := NewCluster(Config{Machines: machines, Space: space})
	data := make([]uint64, n)
	for i := range data {
		data[i] = 7 // fully degenerate key distribution
	}
	if err := c.LoadBalanced(data); err != nil {
		t.Fatal(err)
	}
	if err := Sort(c); err != nil {
		t.Fatalf("non-strict sort errored: %v", err)
	}
	st := c.Stats()
	if len(st.Violations) == 0 {
		t.Error("skewed sort produced no recorded violations")
	}
	found := false
	for _, v := range st.Violations {
		if strings.Contains(v, "inbox") || strings.Contains(v, "store") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations do not mention inbox/store overload: %v", st.Violations)
	}
	out := c.GatherAll()
	if len(out) != n {
		t.Fatalf("lost data: %d of %d words", len(out), n)
	}
	for _, w := range out {
		if w != 7 {
			t.Fatal("data corrupted")
		}
	}
}

func TestStrictSortFailsFastOnSkew(t *testing.T) {
	c := NewCluster(Config{Machines: 8, Space: 600, Strict: true})
	data := make([]uint64, 4096)
	if err := c.LoadBalanced(data); err != nil {
		t.Fatal(err)
	}
	if err := Sort(c); err == nil {
		t.Error("strict mode accepted an overloading sort")
	}
}

func TestBroadcastOversizedPayloadRecorded(t *testing.T) {
	// Payload bigger than S: the fanout shrinks to 2 but each message still
	// exceeds S, so violations must be recorded.
	c := NewCluster(Config{Machines: 4, Space: 8})
	if _, err := Broadcast(c, make([]uint64, 64)); err != nil {
		t.Fatalf("non-strict broadcast errored: %v", err)
	}
	if len(c.Stats().Violations) == 0 {
		t.Error("oversized broadcast not flagged")
	}
}

func TestRoundAfterViolationContinues(t *testing.T) {
	// Non-strict clusters keep executing after violations — the ablation
	// experiments rely on this to measure "what would have happened".
	c := NewCluster(Config{Machines: 2, Space: 4})
	for r := 0; r < 3; r++ {
		err := c.Round("x", func(ctx *MachineCtx) {
			ctx.SetStore(make([]uint64, 100))
		})
		if err != nil {
			t.Fatalf("round %d errored: %v", r, err)
		}
	}
	if c.Stats().Rounds != 3 {
		t.Errorf("rounds = %d", c.Stats().Rounds)
	}
	if len(c.Stats().Violations) < 3 {
		t.Errorf("violations = %d, want >= 3", len(c.Stats().Violations))
	}
}
