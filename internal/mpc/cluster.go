// Package mpc implements a message-level simulator of the Massively
// Parallel Computation model of Karloff et al. as used in the paper: M
// machines with S words of local space each, computing in synchronous
// rounds. Within a round every machine performs arbitrary local computation
// on its store and inbox, then emits messages; all messages sent or received
// by a machine in one round must fit in its space S, which the simulator
// enforces.
//
// On top of the raw cluster, this package provides the deterministic
// communication primitives of Lemma 4 (Goodrich et al.): constant-round
// sorting (regular-sampling sample sort) and prefix sums (S-ary aggregation
// trees). Experiment T8 runs them at several scales to confirm the
// constant-round claim; the algorithm layer (internal/simcost) charges
// rounds using the very same constants these implementations achieve.
//
// Machines execute concurrently on the host (one goroutine per worker, fixed
// pool) but the simulated semantics are deterministic: machine steps are
// pure functions of (store, inbox), and inboxes are assembled in sender
// order, so results never depend on host scheduling.
package mpc

import (
	"fmt"
	"maps"
	"slices"

	"repro/internal/parallel"
)

// Config describes a cluster.
type Config struct {
	Machines int // M > 0
	Space    int // S, words per machine
	// Strict makes space violations fail the round with an error;
	// otherwise they are recorded in Stats.Violations and execution
	// continues (useful for ablation experiments that demonstrate a
	// violation would occur).
	Strict bool
	// Workers bounds the host goroutines that execute machine steps each
	// round (the shared internal/parallel pool): 0 means GOMAXPROCS,
	// 1 serial. Simulated semantics are identical at any setting — machine
	// steps are pure functions of (store, inbox) and message delivery is
	// ordered by sender id — so this only trades wall-clock time.
	Workers int
}

// Stats accumulates execution metrics across rounds.
type Stats struct {
	Rounds        int
	Messages      int64
	WordsSent     int64
	MaxInbox      int // peak per-machine inbox words in any round
	MaxOutbox     int // peak per-machine outbox words in any round
	MaxStore      int // peak per-machine store words after any round
	Violations    []string
	roundsByLabel map[string]int
}

// RoundsByLabel returns the number of rounds charged per label (primitives
// label their rounds, e.g. "sort", "prefixsum").
func (s Stats) RoundsByLabel() map[string]int {
	out := make(map[string]int, len(s.roundsByLabel))
	maps.Copy(out, s.roundsByLabel)
	return out
}

// Msg is a point-to-point message of Data words delivered next round.
type Msg struct {
	To   int
	Data []uint64
}

// MachineCtx is the view a machine has during one round: its id, persistent
// store, and the messages received at the end of the previous round. Send
// queues outgoing messages. Store may be reassigned via SetStore.
type MachineCtx struct {
	ID    int
	Inbox [][]uint64
	store []uint64
	out   []Msg
}

// Store returns the machine's persistent local memory.
func (m *MachineCtx) Store() []uint64 { return m.store }

// SetStore replaces the machine's persistent local memory.
func (m *MachineCtx) SetStore(s []uint64) { m.store = s }

// Send queues a message to machine `to` containing data. The slice is taken
// over by the cluster; callers must not reuse it.
func (m *MachineCtx) Send(to int, data []uint64) {
	m.out = append(m.out, Msg{To: to, Data: data})
}

// SendValues is a convenience wrapper allocating the payload.
func (m *MachineCtx) SendValues(to int, values ...uint64) {
	m.Send(to, append([]uint64(nil), values...))
}

// StepFunc is the local computation a machine performs in a round.
type StepFunc func(*MachineCtx)

// Cluster is a simulated MPC cluster. Create with NewCluster; the zero value
// is unusable.
type Cluster struct {
	cfg     Config
	stores  [][]uint64
	inboxes [][][]uint64
	stats   Stats
	workers int
	// Per-round scratch, sized once at construction and reused every round
	// so a multi-round simulation is allocation-flat: the machine contexts
	// (reset in place) and the previous round's inbox table (truncated and
	// refilled as the next round's delivery target).
	ctxs      []*MachineCtx
	spareInbx [][][]uint64
}

// NewCluster returns a cluster with empty stores and inboxes.
func NewCluster(cfg Config) *Cluster {
	c := &Cluster{
		cfg:     cfg,
		workers: parallel.Workers(cfg.Workers),
	}
	if cfg.Machines <= 0 {
		panic("mpc: Machines must be positive")
	}
	if cfg.Space <= 0 {
		panic("mpc: Space must be positive")
	}
	c.stores = make([][]uint64, cfg.Machines)
	c.inboxes = make([][][]uint64, cfg.Machines)
	c.spareInbx = make([][][]uint64, cfg.Machines)
	c.ctxs = make([]*MachineCtx, cfg.Machines)
	for i := range c.ctxs {
		c.ctxs[i] = &MachineCtx{ID: i}
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Stats returns a snapshot of the execution metrics.
func (c *Cluster) Stats() Stats {
	s := c.stats
	s.Violations = append([]string(nil), c.stats.Violations...)
	return s
}

// Store returns machine id's store (aliased; for loading input and reading
// output between rounds).
func (c *Cluster) Store(id int) []uint64 { return c.stores[id] }

// SetStore assigns machine id's store directly (input loading).
func (c *Cluster) SetStore(id int, data []uint64) { c.stores[id] = data }

// wordsOf returns the total words across a message batch.
func wordsOf(msgs [][]uint64) int {
	total := 0
	for _, m := range msgs {
		total += len(m)
	}
	return total
}

// Round executes one synchronous round: every machine runs step on its
// (store, inbox), then messages are exchanged. The label attributes the
// round in Stats.RoundsByLabel. Returns an error in Strict mode if any
// machine violates its space bound.
func (c *Cluster) Round(label string, step StepFunc) error {
	m := c.cfg.Machines
	ctxs := c.ctxs
	// Machine steps fan out over the bounded shared pool; each machine
	// writes only its own (persistent, reset-in-place) ctx, and the
	// collection pass below runs in deterministic machine order, so host
	// scheduling is unobservable.
	parallel.ForEach(c.workers, m, func(id int) {
		ctx := ctxs[id]
		ctx.ID = id
		ctx.Inbox = c.inboxes[id]
		ctx.store = c.stores[id]
		ctx.out = ctx.out[:0]
		step(ctx)
	})

	// Collect outboxes and validate space in deterministic machine order.
	// The previous round's inbox table is recycled as the delivery target:
	// entries are cleared before truncation so stale message payloads from
	// two rounds ago are released rather than pinned by the slack capacity.
	newInboxes := c.spareInbx
	for id := range newInboxes {
		clear(newInboxes[id])
		newInboxes[id] = newInboxes[id][:0]
	}
	var violations []string
	for id := 0; id < m; id++ {
		ctx := ctxs[id]
		c.stores[id] = ctx.store
		if len(ctx.store) > c.stats.MaxStore {
			c.stats.MaxStore = len(ctx.store)
		}
		outWords := 0
		for _, msg := range ctx.out {
			if msg.To < 0 || msg.To >= m {
				return fmt.Errorf("mpc: round %d machine %d sent to invalid machine %d", c.stats.Rounds, id, msg.To)
			}
			outWords += len(msg.Data)
			c.stats.Messages++
			c.stats.WordsSent += int64(len(msg.Data))
			newInboxes[msg.To] = append(newInboxes[msg.To], msg.Data)
		}
		if outWords > c.stats.MaxOutbox {
			c.stats.MaxOutbox = outWords
		}
		if outWords > c.cfg.Space {
			violations = append(violations, fmt.Sprintf("round %d machine %d outbox %d > S=%d [%s]", c.stats.Rounds, id, outWords, c.cfg.Space, label))
		}
		if len(ctx.store) > c.cfg.Space {
			violations = append(violations, fmt.Sprintf("round %d machine %d store %d > S=%d [%s]", c.stats.Rounds, id, len(ctx.store), c.cfg.Space, label))
		}
	}
	for id := 0; id < m; id++ {
		if w := wordsOf(newInboxes[id]); w > c.cfg.Space {
			violations = append(violations, fmt.Sprintf("round %d machine %d inbox %d > S=%d [%s]", c.stats.Rounds, id, w, c.cfg.Space, label))
		} else if w > c.stats.MaxInbox {
			c.stats.MaxInbox = w
		}
	}
	c.spareInbx = c.inboxes
	c.inboxes = newInboxes
	c.stats.Rounds++
	if c.stats.roundsByLabel == nil {
		c.stats.roundsByLabel = make(map[string]int)
	}
	c.stats.roundsByLabel[label]++
	if len(violations) > 0 {
		c.stats.Violations = append(c.stats.Violations, violations...)
		if c.cfg.Strict {
			return fmt.Errorf("mpc: space violations: %v", violations)
		}
	}
	return nil
}

// GatherAll concatenates all stores in machine order (test/inspection
// helper; not an MPC operation).
func (c *Cluster) GatherAll() []uint64 {
	var all []uint64
	for _, s := range c.stores {
		all = append(all, s...)
	}
	return all
}

// LoadBalanced splits data evenly across machines in order: machine i gets
// the i-th contiguous chunk. Returns an error if a chunk exceeds S.
func (c *Cluster) LoadBalanced(data []uint64) error {
	m := c.cfg.Machines
	per := (len(data) + m - 1) / m
	if per > c.cfg.Space {
		if c.cfg.Strict {
			return fmt.Errorf("mpc: %d words over %d machines needs %d > S=%d per machine", len(data), m, per, c.cfg.Space)
		}
		c.stats.Violations = append(c.stats.Violations, fmt.Sprintf("load: chunk %d > S=%d", per, c.cfg.Space))
	}
	for i := 0; i < m; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		c.stores[i] = append([]uint64(nil), data[lo:hi]...)
	}
	return nil
}

// sortStore sorts a store ascending (local computation helper;
// allocation-free so per-round machine steps stay cheap).
func sortStore(s []uint64) {
	slices.Sort(s)
}
