package scratch

import (
	"testing"

	"repro/internal/graph"
)

func TestSlabCheckoutIsZeroed(t *testing.T) {
	c := New()
	b := c.Bools(8)
	for i := range b {
		b[i] = true
	}
	c.Reset()
	b2 := c.Bools(8)
	for i, v := range b2 {
		if v {
			t.Fatalf("slab not zeroed at %d after reuse", i)
		}
	}
	if &b[0] != &b2[0] {
		t.Fatal("same-size checkout after Reset did not reuse the slab")
	}
}

func TestSlabBestFitAndShrinkingRounds(t *testing.T) {
	c := New()
	big := c.Ints(1000)
	small := c.Ints(10)
	if &big[0] == &small[0] {
		t.Fatal("live slabs must be distinct")
	}
	c.Reset()
	// A shrinking working set must be served by the existing slabs (the
	// geometric-decay reuse property), best fit first.
	s := c.Ints(10)
	if cap(s) != 10 {
		t.Fatalf("best fit picked cap %d, want 10", cap(s))
	}
	m := c.Ints(500)
	if cap(m) != 1000 {
		t.Fatalf("second checkout picked cap %d, want the 1000 slab", cap(m))
	}
}

func TestGetCapAppendStyle(t *testing.T) {
	c := New()
	e := c.EdgesCap(4)
	if len(e) != 0 || cap(e) < 4 {
		t.Fatalf("EdgesCap: len=%d cap=%d", len(e), cap(e))
	}
	e = append(e, graph.Edge{U: 0, V: 1})
	c.Reset()
	e2 := c.EdgesCap(4)
	if cap(e2) < 4 {
		t.Fatal("EdgesCap slab lost on Reset")
	}
}

func TestBufPairAlternates(t *testing.T) {
	var p BufPair
	a := p.Next()
	b := p.Next()
	if a == b {
		t.Fatal("BufPair.Next returned the same buffer twice in a row")
	}
	if p.Next() != a {
		t.Fatal("BufPair does not ping-pong")
	}
}

func TestPerWorkerReuses(t *testing.T) {
	type buf struct{ data []int }
	p := NewPerWorker(func() *buf { return &buf{data: make([]int, 4)} })
	v := p.Get()
	v.data[0] = 7
	p.Put(v)
	w := p.Get()
	if w != v {
		t.Skip("sync.Pool dropped the value (GC ran); nothing to assert")
	}
	if w.data[0] != 7 {
		t.Fatal("pooled value not preserved")
	}
}
