// Package scratch is the reusable per-solve memory substrate of the solver
// engine. The paper's algorithms are iterative — O(log Δ + log log n) rounds
// of sparsify → derandomize → peel — and the per-round working set shrinks
// geometrically (cf. Ghaffari–Uitto, arXiv:1807.06251), so buffers sized on
// the first round dominate every later round. A Context therefore checks out
// typed, size-tagged slabs from free lists instead of calling make once per
// round, and hands the CSR graph rebuilds a pair of destination buffers to
// ping-pong between (internal/graph's Into variants).
//
// Contract:
//
//   - A Context belongs to exactly one solve at a time. Its methods are NOT
//     safe for concurrent use; the coordinating goroutine checks slabs out
//     and passes the resulting slices to internal/parallel shard bodies,
//     which write disjoint index ranges as usual. This composes with the
//     determinism contract because slab checkout happens before the fan-out
//     and every checked-out slab is zeroed, so reuse changes memory
//     lifetimes only, never any computed value.
//   - Reset returns every checked-out slab to the free lists. Callers
//     invoke it at round boundaries; slices obtained before a Reset must
//     not be read afterwards. Graph buffers (Loop, Stage) are not affected
//     by Reset — their lifetime is the ping-pong discipline itself.
//   - Contexts are cheap when cold and allocation-flat when warm, which is
//     what the public Engine pools them for (sync.Pool in the root
//     package).
package scratch

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// slab is a typed free list of reusable buffers. Checkout moves a buffer to
// the live list; release moves every live buffer back. Buffers are
// size-tagged by capacity and checkout is best-fit, so the n-sized slabs of
// round 1 serve the geometrically shrinking rounds that follow without
// fragmenting into one slab per distinct size.
type slab[T any] struct {
	free [][]T
	live [][]T
}

// take checks out a buffer with capacity at least n (best fit, or a fresh
// allocation) and records it as live. The returned slice has its full
// capacity as length; callers slice it down.
func (s *slab[T]) take(n int) []T {
	best := -1
	for i, b := range s.free {
		if cap(b) >= n && (best < 0 || cap(b) < cap(s.free[best])) {
			best = i
		}
	}
	var buf []T
	if best >= 0 {
		buf = s.free[best][:cap(s.free[best])]
		last := len(s.free) - 1
		s.free[best] = s.free[last]
		s.free[last] = nil
		s.free = s.free[:last]
	} else {
		buf = make([]T, n)
	}
	s.live = append(s.live, buf)
	return buf
}

// get checks out a zeroed slice of length n.
func (s *slab[T]) get(n int) []T {
	buf := s.take(n)[:n]
	clear(buf)
	return buf
}

// getCap checks out a zero-length slice with capacity at least n, for
// append-style fills. Appending beyond the capacity hint falls back to the
// runtime allocator (the original slab is still recycled), so callers should
// pass a true upper bound.
func (s *slab[T]) getCap(n int) []T {
	return s.take(n)[:0]
}

// release returns all live buffers to the free list.
func (s *slab[T]) release() {
	s.free = append(s.free, s.live...)
	for i := range s.live {
		s.live[i] = nil
	}
	s.live = s.live[:0]
}

// Context is the per-solve scratch state: one typed arena per element kind
// plus two CSR double-buffers (outer loop and sparsify stage chain). The
// zero value is ready to use; New exists for symmetry with the rest of the
// repository.
type Context struct {
	ints    slab[int]
	int32s  slab[int32]
	int64s  slab[int64]
	uint64s slab[uint64]
	floats  slab[float64]
	bools   slab[bool]
	edges   slab[graph.Edge]

	loop  BufPair
	stage BufPair

	edgeMin core.EdgeMinScratch
	nodeSel core.NodeSel
}

// New returns an empty Context.
func New() *Context { return &Context{} }

// Ints checks out a zeroed []int of length n, valid until the next Reset.
func (c *Context) Ints(n int) []int { return c.ints.get(n) }

// IntsCap checks out a zero-length []int with capacity at least n.
func (c *Context) IntsCap(n int) []int { return c.ints.getCap(n) }

// Int64s checks out a zeroed []int64 of length n.
func (c *Context) Int64s(n int) []int64 { return c.int64s.get(n) }

// Uint64s checks out a zeroed []uint64 of length n.
func (c *Context) Uint64s(n int) []uint64 { return c.uint64s.get(n) }

// Uint64sCap checks out a zero-length []uint64 with capacity at least n.
func (c *Context) Uint64sCap(n int) []uint64 { return c.uint64s.getCap(n) }

// Float64s checks out a zeroed []float64 of length n.
func (c *Context) Float64s(n int) []float64 { return c.floats.get(n) }

// Float64sCap checks out a zero-length []float64 with capacity at least n.
func (c *Context) Float64sCap(n int) []float64 { return c.floats.getCap(n) }

// Bools checks out a zeroed []bool of length n.
func (c *Context) Bools(n int) []bool { return c.bools.get(n) }

// NodeIDsCap checks out a zero-length []graph.NodeID with capacity >= n
// (NodeID is an int32 alias, so these share the int32 arena).
func (c *Context) NodeIDsCap(n int) []graph.NodeID { return c.int32s.getCap(n) }

// EdgesCap checks out a zero-length []graph.Edge with capacity at least n.
func (c *Context) EdgesCap(n int) []graph.Edge { return c.edges.getCap(n) }

// Reset returns every checked-out slab to the free lists. Call at round
// boundaries; slices checked out before the Reset must not be used after.
// The Loop/Stage graph buffers are unaffected (their contents follow the
// ping-pong discipline, not the round scope).
func (c *Context) Reset() {
	c.ints.release()
	c.int32s.release()
	c.int64s.release()
	c.uint64s.release()
	c.floats.release()
	c.bools.release()
	c.edges.release()
}

// Loop returns the CSR double-buffer for the solve's outer-loop graph (the
// shrinking G of the Luby-style iterations).
func (c *Context) Loop() *BufPair { return &c.loop }

// Stage returns the CSR double-buffer for the sparsification stage chain
// (E_0 → E_1 → … → E*), kept separate from Loop because the stage result
// must stay readable while the outer-loop graph is rebuilt.
func (c *Context) Stage() *BufPair { return &c.stage }

// EdgeMin returns the Context's persistent edge-selection scratch. Like the
// CSR double-buffers it survives Reset: the epoch-stamped min tables inside
// it pair a stamp array with a generation counter, and that pairing must
// live as long as the buffers do (a recycled stamp array under a fresh
// counter could alias a live generation). Keeping the pair here means warm
// Engine re-solves reuse it allocation-free, and its self-invalidating
// epochs make any prior contents unobservable — the selection results are
// identical for any history of the Context.
func (c *Context) EdgeMin() *core.EdgeMinScratch { return &c.edgeMin }

// NodeSel returns the Context's persistent node-selection plan, with the
// same Reset-surviving lifetime and epoch-stamp rationale as EdgeMin. Round
// loops re-Init it every round (advancing its generation) and share it
// read-only across concurrent per-seed evaluations.
func (c *Context) NodeSel() *core.NodeSel { return &c.nodeSel }

// BufPair is a pair of graph.CSR destination buffers used in alternation:
// each Next call returns the buffer NOT written by the previous call, so a
// chain of graph rebuilds can read the previous graph while writing the next
// one, with zero steady-state allocation. At most the two most recent graphs
// built through a pair are valid at any time.
type BufPair struct {
	bufs [2]graph.CSR
	cur  int
}

// Next flips the pair and returns the write target for the next rebuild.
func (p *BufPair) Next() *graph.CSR {
	p.cur ^= 1
	return &p.bufs[p.cur]
}

// PerWorker hands out per-goroutine scratch values around a sync.Pool; it is
// the companion of Context for state needed INSIDE concurrent objective
// evaluations (candidate-seed fan-out in internal/condexp), where a single
// arena would race. Values must be fully overwritten (or reset) by each use
// so that results never depend on which worker previously held a value —
// that is what keeps pooled evaluation inside the determinism contract.
type PerWorker[T any] struct {
	pool sync.Pool
}

// NewPerWorker returns a pool whose values are created by newFn. T should be
// a pointer type so Get/Put do not allocate.
func NewPerWorker[T any](newFn func() T) *PerWorker[T] {
	p := &PerWorker[T]{}
	p.pool.New = func() any { return newFn() }
	return p
}

// Get checks a value out.
func (p *PerWorker[T]) Get() T { return p.pool.Get().(T) }

// Put returns a value for reuse.
func (p *PerWorker[T]) Put(v T) { p.pool.Put(v) }

// Tile is the S×n output surface of the blocked multi-seed hash kernel: S
// rows of n hash values, one row per candidate seed of a
// condexp.ForEachSeedBlock group, all sharing ONE backing slab so a warm
// tile costs zero allocations no matter how many rows the group asks for.
// Per-worker objective states embed one (or pool one via PerWorker) and
// re-shape it each batch with Rows; the rows come back dirty, which the
// kernel contract (hashfam.Evaluator.EvalSeedsBlocked fully overwrites its
// rows) makes free.
type Tile struct {
	buf  []uint64
	rows [][]uint64
}

// Rows returns s full-capacity row slices of n elements each, growing the
// backing slab and row headers only when the requested shape exceeds every
// prior request. Rows are disjoint, length-n views of one allocation (each
// capped at its own extent, so an append cannot bleed into the next row);
// contents are whatever the last user left — callers must fully overwrite.
func (t *Tile) Rows(s, n int) [][]uint64 {
	if need := s * n; cap(t.buf) < need {
		t.buf = make([]uint64, need)
	}
	buf := t.buf[:cap(t.buf)]
	if cap(t.rows) < s {
		t.rows = make([][]uint64, s)
	}
	rows := t.rows[:s]
	for i := range rows {
		rows[i] = buf[i*n : (i+1)*n : (i+1)*n]
	}
	return rows
}
