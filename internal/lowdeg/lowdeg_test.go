package lowdeg

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/simcost"
)

func params() core.Params { return core.DefaultParams() }

func TestMISMaximalOnLowDegreeFixtures(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":  gen.Path(200),
		"cycle": gen.Cycle(201),
		"grid":  gen.Grid2D(20, 25),
		"tree":  gen.RandomTree(500, 1),
		"reg4":  gen.RandomRegular(512, 4, 2),
		"reg8":  gen.RandomRegular(512, 8, 3),
	} {
		res := MIS(g, params(), nil)
		if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
			t.Errorf("%s: %s", name, reason)
		}
	}
}

func TestMISEmptyGraph(t *testing.T) {
	res := MIS(graph.Empty(7), params(), nil)
	if len(res.IndependentSet) != 7 {
		t.Errorf("MIS of empty graph = %d nodes, want 7", len(res.IndependentSet))
	}
	if res.Stages != 0 {
		t.Errorf("empty graph ran %d stages", res.Stages)
	}
}

func TestPhasesMakeProgress(t *testing.T) {
	g := gen.RandomRegular(1024, 6, 5)
	res := MIS(g, params(), nil)
	for _, ph := range res.Phases {
		if ph.EdgesAfter >= ph.EdgesBefore {
			t.Fatalf("stage %d phase %d: no progress", ph.Stage, ph.Phase)
		}
	}
}

func TestStageCompressionStructure(t *testing.T) {
	g := gen.Grid2D(64, 64) // Δ = 4 keeps ℓ >= 2 under the default budget
	res := MIS(g, params(), nil)
	if res.Ell < 2 {
		t.Skipf("ℓ = %d; budget too small for compression on this host", res.Ell)
	}
	if res.Radius != 2*res.Ell {
		t.Errorf("radius %d != 2ℓ = %d", res.Radius, 2*res.Ell)
	}
	// Stages must be fewer than phases when ℓ > 1 (that is the compression).
	if res.Stages >= len(res.Phases) && len(res.Phases) > res.Ell {
		t.Errorf("no compression: %d stages for %d phases", res.Stages, len(res.Phases))
	}
	if res.RoundsPaper <= 0 || res.RoundsExecuted < res.RoundsPaper {
		t.Errorf("round accounting odd: paper=%d executed=%d", res.RoundsPaper, res.RoundsExecuted)
	}
}

func TestPhaseCountLogarithmic(t *testing.T) {
	g := gen.RandomRegular(2048, 4, 7)
	res := MIS(g, params(), nil)
	bound := int(6 * math.Log2(float64(g.M())))
	if len(res.Phases) > bound {
		t.Errorf("phases %d exceed 6·log2(m) = %d", len(res.Phases), bound)
	}
	t.Logf("n=%d Δ=%d phases=%d stages=%d ℓ=%d colors=%d",
		g.N(), g.MaxDegree(), len(res.Phases), res.Stages, res.Ell, res.Colors)
}

func TestStagesGrowWithDelta(t *testing.T) {
	// The point of Theorem 1: stages ~ O(log Δ) at fixed n. We check the
	// weaker monotone-ish claim that stage counts stay within a small
	// multiple of log Δ across the sweep.
	n := 1024
	for _, d := range []int{4, 8, 16} {
		g := gen.RandomRegular(n, d, uint64(d))
		res := MIS(g, params(), nil)
		if res.Stages > 12*int(math.Log2(float64(d)))+12 {
			t.Errorf("Δ=%d: %d stages too many", d, res.Stages)
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.RandomRegular(512, 6, 11)
	a := MIS(g, params(), nil)
	b := MIS(g, params(), nil)
	if len(a.IndependentSet) != len(b.IndependentSet) {
		t.Fatal("nondeterministic MIS size")
	}
	for i := range a.IndependentSet {
		if a.IndependentSet[i] != b.IndependentSet[i] {
			t.Fatal("nondeterministic MIS")
		}
	}
}

func TestModelAccountingAndSpace(t *testing.T) {
	g := gen.Grid2D(40, 40)
	model := simcost.New(g.N(), g.M(), 0.5)
	res := MIS(g, params(), model)
	if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
		t.Fatal(reason)
	}
	if model.Rounds() == 0 {
		t.Error("no rounds charged")
	}
	for _, v := range model.Violations() {
		t.Errorf("space violation: %s", v)
	}
	if res.MaxBallWords > model.MachineBudget() {
		t.Errorf("ball words %d exceed budget %d", res.MaxBallWords, model.MachineBudget())
	}
}

func TestSuitable(t *testing.T) {
	model := simcost.New(4096, 16384, 0.5) // S=64, budget=512
	if !Suitable(gen.Grid2D(64, 64), params(), model) {
		t.Error("grid (Δ=4, Δ⁴=256) should be suitable")
	}
	if Suitable(gen.Star(4096), params(), model) {
		t.Error("star (Δ=4095) should not be suitable")
	}
	if !Suitable(graph.Empty(10), params(), nil) {
		t.Error("empty graph should be suitable")
	}
}

func TestMaximalMatchingViaLineGraph(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path": gen.Path(150),
		"grid": gen.Grid2D(15, 15),
		"reg6": gen.RandomRegular(400, 6, 13),
	} {
		res := MaximalMatching(g, params(), nil)
		if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
			t.Errorf("%s: %s", name, reason)
		}
		if res.MIS == nil || len(res.MIS.IndependentSet) != len(res.Matching) {
			t.Errorf("%s: line-graph MIS inconsistent", name)
		}
	}
}

func TestEll(t *testing.T) {
	if Ell(2, 1024) < Ell(16, 1024) {
		t.Error("ℓ should shrink as Δ grows")
	}
	if Ell(4, 1024) < 2 {
		t.Errorf("Ell(4, 1024) = %d, want >= 2", Ell(4, 1024))
	}
	if Ell(1000000, 16) != 1 {
		t.Error("huge Δ must clamp to 1")
	}
	if Ell(2, 1<<30) != 8 {
		t.Errorf("cap at 8 broken: %d", Ell(2, 1<<30))
	}
}

func BenchmarkMISGrid(b *testing.B) {
	g := gen.Grid2D(32, 32)
	p := params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MIS(g, p, nil)
	}
}
