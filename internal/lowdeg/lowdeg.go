// Package lowdeg implements Section 5 of the paper: the
// O(log Δ + log log n)-round deterministic MIS (and maximal matching via the
// line graph) for the regime log Δ = o(log n), completing Theorem 1.
//
// Structure, following §5.2:
//
//   - Preprocessing: an O(Δ⁴)-colouring χ of G² (internal/coloring,
//     O(log* n) rounds) and collection of r-hop neighbourhoods with
//     r = 2ℓ, ℓ = Θ(δ·log_Δ n) — O(log r) = O(log log n) rounds by
//     doubling, sizes Δ^r = n^{O(δ)} asserted against the space budget.
//   - Stages: each stage runs ℓ Luby phases keyed by pairwise-independent
//     hash functions over the colour space [Δ⁴] (seeds of O(log Δ) bits):
//     in phase i, nodes whose (h_i(χ(v)), v) is a local minimum among
//     surviving neighbours join I_i, and I_i ∪ N(I_i) is removed.
//
// Seed-sequence selection: the paper enumerates all |H*|^ℓ sequences
// locally (free local computation in MPC) and keeps the best, making a
// stage O(1) rounds. Enumerating |H*|^ℓ on a real host is infeasible, so
// this implementation selects each phase's seed greedily — the
// edge-removal maximiser given the current graph — which achieves at least
// the per-phase expected progress and hence the same O(log n) total phase
// bound; stage counts (the paper's round proxy) are reported alongside
// both round accountings (see DESIGN.md substitutions 2-3 and experiment
// T5).
package lowdeg

import (
	"math"

	"repro/internal/coloring"
	"repro/internal/condexp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashfam"
	"repro/internal/intmath"
	"repro/internal/parallel"
	"repro/internal/scratch"
	"repro/internal/simcost"
)

// PhaseStats records one Luby phase.
type PhaseStats struct {
	Stage           int
	Phase           int // phase index within the stage
	EdgesBefore     int
	EdgesAfter      int
	Selected        int
	SeedsTried      int
	SeedFound       bool
	RemovedFraction float64
}

// Result is the outcome of the Section 5 MIS.
type Result struct {
	IndependentSet []graph.NodeID
	Phases         []PhaseStats
	Stages         int
	Ell            int // phases per stage
	Radius         int // collected neighbourhood radius r = 2ℓ
	Colors         int
	ColoringRounds int
	MaxBallWords   int
	// RoundsPaper is the paper's accounting: O(log* n) colouring +
	// O(log log n) ball collection + O(1) per stage.
	RoundsPaper int
	// RoundsExecuted charges one aggregation per phase (what this
	// implementation actually performs for greedy seed selection).
	RoundsExecuted int
	// Canceled is set when Params.Done stopped the solve at a phase (or
	// seed-batch) boundary; IndependentSet is then partial and NOT maximal,
	// and the caller must surface an error instead of the result.
	Canceled bool
}

// Ell returns the phases-per-stage ℓ: the largest value such that the
// (2ℓ)-hop balls, of size at most Δ^{2ℓ}, fit in the per-machine space
// budget (§1.1: "neighbourhoods of radius O(log n / log Δ) already fit onto
// single machines"). The paper's ℓ = Θ(δ·log_Δ n) is the asymptotic form of
// the same constraint with budget n^{Θ(δ)}; deriving ℓ from the concrete
// budget keeps stage compression meaningful at laptop scale. ℓ is clamped
// to [1, 8] — beyond 8 the ball enumeration cost dominates with no
// additional insight.
func Ell(maxDeg, budget int) int {
	if maxDeg < 2 {
		maxDeg = 2
	}
	if budget < 4 {
		budget = 4
	}
	l := int(math.Floor(math.Log(float64(budget)) / (2 * math.Log(float64(maxDeg)))))
	if l < 1 {
		l = 1
	}
	if l > 8 {
		l = 8
	}
	return l
}

// Suitable reports whether the low-degree path applies: the colour space
// Δ⁴ and the r-hop balls must fit the per-machine budget (the paper's
// Δ <= n^δ regime). Used by the Theorem 1 dispatcher in the root package.
func Suitable(g *graph.Graph, p core.Params, model *simcost.Model) bool {
	d := g.MaxDegree()
	if d < 2 {
		return true
	}
	d4, overflow := intmath.SatPow(uint64(d), 4)
	budget := model.MachineBudget()
	if budget == 0 {
		budget = 8 * int(math.Ceil(math.Pow(float64(g.N()), p.Epsilon)))
	}
	return !overflow && d4 <= uint64(budget)
}

// MIS computes a maximal independent set with the stage-compressed
// algorithm. Intended for Δ^4 <= space budget (see Suitable); it remains
// correct beyond that regime but the model will record space violations.
// It is MISIn with a private scratch context.
func MIS(g *graph.Graph, p core.Params, model *simcost.Model) *Result {
	return MISIn(scratch.New(), g, p, model)
}

// lowdegEval is the per-worker pooled state of one candidate-seed objective
// evaluation: the I_h buffer, the generation-stamped membership mark and
// R-list of the incident-count objective, the per-seed z vector of the
// kernel path, and (for the scalar reference path) the removed-node mask of
// the retained full-scan objective plus a permanent z-closure reading the
// current seed through the seed field. Either way an evaluation allocates
// nothing, and only the selected path's mask is allocated. The mark/gen
// pair follows the repository's epoch-stamp invariant (core.NextEpoch):
// mark[v] == gen means v ∈ I_h ∪ N(I_h) for the CURRENT evaluation only,
// gen advances per evaluation, and a uint32 wrap hard-resets the mark
// array, so pooled reuse across seeds and workers can never leak a stale
// membership bit.
type lowdegEval struct {
	ih     []graph.NodeID
	mark   []uint32
	gen    uint32
	r      []graph.NodeID // the touched set I_h ∪ N(I_h), rebuilt per eval
	remove []bool         // scalar reference path: removedEdgesMasked's mask
	z      []uint64       // kernel path: EvalKeys output over the live colour keys
	tile   scratch.Tile   // blocked path: one z row per seed of a BlockSeeds group
	nf     core.NodeFold  // dense phases: flat per-seed selection tables
	seed   []uint64
	zf     func(graph.NodeID) uint64
}

// incidentEdges counts the edges of cur incident to R = ih ∪ N(ih) — the
// edges one Luby phase removes when I_h = ih is selected — touching only R
// and its incidences: Σ_{w∈R} d(w) counts every incident edge once plus
// every R-internal edge twice, so the count is the degree sum minus the
// internal-edge correction. It is exactly removedEdgesMasked's value
// without the O(n+m) full-graph scan; the equivalence tables in
// parallel_determinism_test.go compare the two bit-for-bit through the
// retained ScalarObjectives path.
func incidentEdges(cur *graph.Graph, ih []graph.NodeID, ev *lowdegEval) int {
	gen := core.NextEpoch(ev.mark, &ev.gen)
	mark := ev.mark
	r := ev.r[:0]
	for _, v := range ih {
		mark[v] = gen
		r = append(r, v)
	}
	for _, v := range ih {
		for _, u := range cur.Neighbors(v) {
			if mark[u] != gen {
				mark[u] = gen
				r = append(r, u)
			}
		}
	}
	degSum, internal := 0, 0
	for _, w := range r {
		for _, u := range cur.Neighbors(w) {
			degSum++
			if mark[u] == gen && u > w {
				internal++
			}
		}
	}
	ev.r = r
	return degSum - internal
}

// MISIn is MIS drawing every per-phase buffer from sc: the removal mask and
// the shrinking graph, which ping-pongs between sc's two loop CSR buffers
// instead of allocating a fresh graph per phase; per-seed selection state
// inside the objective is pooled per worker. The output is bit-identical to
// MIS at any worker count and for any prior state of sc; sc is Reset at
// every phase boundary and left Reset on return.
func MISIn(sc *scratch.Context, g *graph.Graph, p core.Params, model *simcost.Model) *Result {
	p.Validate()
	n := g.N()
	res := &Result{}

	// Preprocessing: colouring and r-hop collection.
	col := coloring.LinialG2(g, model)
	res.Colors = col.NumColors
	res.ColoringRounds = col.Rounds

	maxDeg := g.MaxDegree()
	budget := model.MachineBudget()
	if budget == 0 {
		budget = 8 * int(math.Ceil(math.Pow(float64(n), p.Epsilon)))
	}
	ell := Ell(maxDeg, budget)
	res.Ell = ell
	res.Radius = 2 * ell
	res.MaxBallWords = maxBallWords(g, res.Radius, p.Workers())
	model.AssertMachineWords(res.MaxBallWords, "lowdeg.rball")
	ballRounds := intmath.CeilLog2(uint64(res.Radius)) + 1
	model.ChargeRounds(ballRounds, "lowdeg.collect")

	// Pairwise family over the colour space: seeds are 2·O(log Δ) bits.
	minField := uint64(col.NumColors)
	if minField < 4 {
		minField = 4
	}
	fam := hashfam.New(minField, 2)

	cur := g
	// Solve-lifetime state stays off the arena (the arena is Reset each
	// phase, these masks persist across phases). The live list mirrors the
	// alive mask as an ascending id list, compacted as nodes leave: phases
	// touch only the surviving set, so the O(n) id-space scans (isolated
	// join, NodeSel construction) shrink with the graph instead of paying n
	// every phase.
	alive := make([]bool, n)
	liveList := make([]graph.NodeID, n)
	for v := range alive {
		alive[v] = true
		liveList[v] = graph.NodeID(v)
	}
	inMIS := make([]bool, n)
	compactLive := func() {
		keep := liveList[:0]
		for _, v := range liveList {
			if alive[v] {
				keep = append(keep, v)
			}
		}
		liveList = keep
	}
	evaluator := hashfam.NewEvaluator(fam)
	// The per-node hash keys are the (solve-invariant) G² colours; the
	// kernel path builds a per-phase NodeSel over the surviving nodes, so a
	// candidate seed costs one EvalKeys pass of length |alive| — which
	// shrinks with the graph — followed by a live-list selection scan.
	colorKeyOf := func(v graph.NodeID) uint64 { return uint64(col.Colors[v]) }
	sel := sc.NodeSel()
	evalPool := scratch.NewPerWorker(func() *lowdegEval {
		// Only the selected objective path's mask is ever touched, so only
		// it is allocated — the other would be per-worker dead weight
		// against the tightened warm-reuse budgets.
		ev := &lowdegEval{}
		if p.ScalarObjectives {
			ev.remove = make([]bool, n)
		} else {
			ev.mark = make([]uint32, n)
		}
		ev.zf = func(v graph.NodeID) uint64 {
			return fam.Eval(ev.seed, uint64(col.Colors[v]))
		}
		return ev
	})
	// localMin computes I_h for one seed into dst, through the kernel or
	// the scalar closure reference.
	localMin := func(ev *lowdegEval, dst []graph.NodeID, q *graph.Graph, seed []uint64, workers int) []graph.NodeID {
		if p.ScalarObjectives {
			ev.seed = seed
			return core.LocalMinNodesInto(dst, q, alive, ev.zf)
		}
		ev.z = graph.Grow(ev.z, len(sel.Keys()))
		return core.LocalMinNodesSelIn(&ev.nf, dst, q, sel, evaluator.EvalKeysW(seed, sel.Keys(), ev.z, workers))
	}

	joinIsolated := func() {
		for _, v := range liveList {
			if alive[v] && cur.Degree(v) == 0 {
				inMIS[v] = true
				alive[v] = false
			}
		}
	}

	stage := 0
	round := 0
loop:
	for {
		joinIsolated()
		compactLive()
		if cur.M() == 0 {
			break
		}
		stage++
		for phase := 1; phase <= ell && cur.M() > 0; phase++ {
			// Phase boundary: the solve's cancellation checkpoint.
			if p.Canceled() {
				res.Canceled = true
				break loop
			}
			st := PhaseStats{Stage: stage, Phase: phase, EdgesBefore: cur.M()}

			curG := cur
			// Per-phase selection plan over the surviving nodes, shared
			// read-only by the concurrent per-seed evaluations below. The
			// live list mirrors the alive mask (compacted after every
			// removal), so the plan costs O(|alive|), not O(n).
			sel.InitList(n, liveList, colorKeyOf, fam.P()-1)
			objective := func(seeds [][]uint64, values []int64) {
				if p.ScalarObjectives {
					spare := condexp.SpareWorkers(p.Workers(), len(seeds))
					parallel.ForEach(p.Workers(), len(seeds), func(i int) {
						ev := evalPool.Get()
						ev.ih = localMin(ev, ev.ih, curG, seeds[i], spare)
						// The retained full-scan reference: walks all of cur.
						values[i] = int64(removedEdgesMasked(curG, ev.ih, ev.remove))
						evalPool.Put(ev)
					})
					return
				}
				// Blocked kernel path. Dense phases (live set still covering
				// most of the id space) run the fused fold pipeline: the
				// tile shrinks to one hashfam.BlockKeyGrain block per seed
				// and each evaluated block scatters into the worker's flat
				// per-seed tables while cache-resident, then the selection
				// probes the tables — bit-identical to the two-pass tile +
				// LocalMinNodesSel below, which sparse phases keep. Either
				// way each group of BlockSeeds candidates makes ONE
				// block-major pass over the phase's live colour keys, group
				// boundaries depend only on the batch length, and each group
				// writes only its own value slots, so results are
				// worker-count independent.
				condexp.ForEachSeedBlock(p.Workers(), len(seeds), func(lo, hi int) {
					ev := evalPool.Get()
					if sel.Dense() {
						S := hi - lo
						tabs := ev.nf.Tables(sel, S)
						blockLen := len(sel.Keys())
						if blockLen > hashfam.BlockKeyGrain {
							blockLen = hashfam.BlockKeyGrain
						}
						tile := ev.tile.Rows(S, blockLen)
						evaluator.EvalSeedsBlockedFold(seeds[lo:hi], sel.Keys(), tile, func(blo, bhi int) {
							for s := 0; s < S; s++ {
								core.NodeFoldScatter(tabs[s], sel, blo, bhi, tile[s])
							}
						})
						for s := 0; s < S; s++ {
							ev.ih = core.NodeFoldSelect(ev.ih, curG, sel, tabs[s])
							values[lo+s] = int64(incidentEdges(curG, ev.ih, ev))
						}
						evalPool.Put(ev)
						return
					}
					tile := ev.tile.Rows(hi-lo, len(sel.Keys()))
					evaluator.EvalSeedsBlocked(seeds[lo:hi], sel.Keys(), tile)
					for s := lo; s < hi; s++ {
						ev.ih = core.LocalMinNodesSel(ev.ih, curG, sel, tile[s-lo])
						values[s] = int64(incidentEdges(curG, ev.ih, ev))
					}
					evalPool.Put(ev)
				})
			}
			// Luby's pairwise analysis guarantees E[removed] >= |E|/108
			// (the Lemma 13 constant); demand the configured fraction.
			threshold := int64(p.ThresholdFrac * float64(cur.M()) / 108.0)
			if threshold < 1 {
				threshold = 1
			}
			copts := condexp.Options{
				Model:    model,
				Label:    "lowdeg.seed",
				MaxSeeds: p.MaxSeedsPerSearch,
				Workers:  p.Workers(),
				Done:     p.Done,
			}
			// Seed-batch sub-events are observer-only work (see the
			// matching loop): fresh slice per phase, nothing unobserved.
			var batchStats []core.SeedBatchStat
			if p.Observe != nil {
				copts.OnBatch = func(bs condexp.BatchStat) {
					batchStats = append(batchStats, core.SeedBatchStat(bs))
				}
			}
			search, err := condexp.SearchAtLeastBatch(fam, objective, threshold, copts)
			if err != nil {
				panic(err)
			}
			if search.Canceled {
				// search.Seed may be nil; abandon the phase whole.
				res.Canceled = true
				break loop
			}
			st.SeedsTried = search.SeedsTried
			st.SeedFound = search.Found

			fin := evalPool.Get()
			ih := localMin(fin, sc.NodeIDsCap(n), cur, search.Seed, p.Workers())
			evalPool.Put(fin)
			st.Selected = len(ih)
			remove := sc.Bools(n)
			for _, v := range ih {
				inMIS[v] = true
				alive[v] = false
				remove[v] = true
				res.IndependentSet = append(res.IndependentSet, v)
			}
			for _, v := range ih {
				for _, u := range cur.Neighbors(v) {
					if !remove[u] {
						remove[u] = true
						alive[u] = false
					}
				}
			}
			cur = cur.WithoutNodesInto(remove, p.Workers(), sc.Loop().Next())
			compactLive()
			st.EdgesAfter = cur.M()
			st.RemovedFraction = float64(st.EdgesBefore-st.EdgesAfter) / float64(st.EdgesBefore)
			res.Phases = append(res.Phases, st)
			res.RoundsExecuted += 3 // evaluate + aggregate + apply
			round++
			if p.Observe != nil {
				cs := model.Stats()
				p.Observe(core.RoundEvent{
					Algorithm:            "mis",
					Strategy:             "lowdeg",
					Round:                round,
					LiveNodes:            len(sel.Live()), // the phase-start live set
					LiveEdges:            st.EdgesBefore,
					SeedsTried:           st.SeedsTried,
					SeedFound:            st.SeedFound,
					Selected:             st.Selected,
					Batches:              batchStats,
					CostRounds:           cs.Rounds,
					CostSeedBatches:      cs.SeedBatches,
					CostPeakMachineWords: cs.PeakMachineWords,
				})
			}
			sc.Reset()
		}
		// Maintain r-hop neighbourhoods for the next stage (§5.2.2, one
		// round: removed nodes notify their r-hop balls).
		model.ChargeRounds(1, "lowdeg.maintain")
		res.RoundsExecuted++
	}
	// A cancellation break exits mid-phase; the extra Reset (no-op on the
	// normal path) keeps the "sc left Reset on return" contract for pooled
	// contexts.
	sc.Reset()
	res.Stages = stage
	res.RoundsPaper = col.Rounds + ballRounds + 3*stage

	// Rebuild sorted output.
	res.IndependentSet = res.IndependentSet[:0]
	for v := 0; v < n; v++ {
		if inMIS[v] {
			res.IndependentSet = append(res.IndependentSet, graph.NodeID(v))
		}
	}
	return res
}

// MatchingResult is the outcome of the Section 5 maximal matching.
type MatchingResult struct {
	Matching []graph.Edge
	MIS      *Result // the underlying line-graph MIS run
}

// MaximalMatching computes a maximal matching by simulating MIS on the line
// graph (§5: "we can perform maximal matching by simulating MIS on the line
// graph of the input graph", feasible since Δ(L(G)) <= 2Δ-2 stays small in
// this regime). It is MaximalMatchingIn with a private scratch context.
func MaximalMatching(g *graph.Graph, p core.Params, model *simcost.Model) *MatchingResult {
	return MaximalMatchingIn(scratch.New(), g, p, model)
}

// MaximalMatchingIn is MaximalMatching running the line-graph MIS on sc.
// Observer events are relabeled Algorithm "matching"; their live counts
// describe the line graph the MIS actually iterates on (LiveNodes are
// surviving input edges). Cancellation (Params.Done) propagates through the
// line-graph solve: MIS.Canceled marks an abandoned run whose Matching is
// partial.
func MaximalMatchingIn(sc *scratch.Context, g *graph.Graph, p core.Params, model *simcost.Model) *MatchingResult {
	if inner := p.Observe; inner != nil {
		p.Observe = func(ev core.RoundEvent) {
			ev.Algorithm = "matching"
			inner(ev)
		}
	}
	lg, edges := g.LineGraph()
	misRes := MISIn(sc, lg, p, model)
	out := &MatchingResult{MIS: misRes}
	for _, v := range misRes.IndependentSet {
		out.Matching = append(out.Matching, edges[v])
	}
	return out
}

// maxBallWords returns the largest r-hop ball size in words (2 per edge
// endpoint entry), the quantity a machine must hold after collection. Each
// ball enumeration is independent, so the scan map-reduces over vertex
// shards (this is the dominant preprocessing cost of the Section 5 path);
// each worker reuses one BFS scratch across its centres.
func maxBallWords(g *graph.Graph, r, workers int) int {
	pool := scratch.NewPerWorker(func() *graph.BallScratch { return new(graph.BallScratch) })
	return parallel.MaxInt(workers, g.N(), func(lo, hi int) int {
		bs := pool.Get()
		max := 0
		for v := lo; v < hi; v++ {
			words := 0
			for _, u := range g.BallInto(bs, graph.NodeID(v), r) {
				words += 1 + g.Degree(u)
			}
			if words > max {
				max = words
			}
		}
		pool.Put(bs)
		return max
	})
}

// removedEdgesMasked counts edges incident to ih ∪ N(ih) in cur, using the
// caller's mask (length >= cur.N(), all-false on entry) as working state and
// restoring it to all-false before returning — that is what lets the seed
// search pool one mask per worker across thousands of evaluations.
func removedEdgesMasked(cur *graph.Graph, ih []graph.NodeID, remove []bool) int {
	for _, v := range ih {
		remove[v] = true
		for _, u := range cur.Neighbors(v) {
			remove[u] = true
		}
	}
	count := 0
	for u := 0; u < cur.N(); u++ {
		for _, v := range cur.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v && (remove[u] || remove[v]) {
				count++
			}
		}
	}
	for _, v := range ih {
		remove[v] = false
		for _, u := range cur.Neighbors(v) {
			remove[u] = false
		}
	}
	return count
}
