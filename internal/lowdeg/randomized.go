package lowdeg

import (
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/hashfam"
)

// This file implements the randomized algorithm of Section 5.1 — the
// intermediate construction the deterministic Section 5.2 algorithm
// derandomizes. Its point is seed length: because nodes within distance 2
// carry distinct colours from an O(Δ⁴)-palette, one Luby phase only needs a
// pairwise-independent hash over the colour space, i.e. an O(log Δ)-bit
// seed instead of O(log n) — which is what makes enumerating (or
// derandomizing) whole sequences of phases affordable.

// RandomizedPhaseStats records one randomized phase.
type RandomizedPhaseStats struct {
	Phase       int
	EdgesBefore int
	EdgesAfter  int
	Selected    int
	SeedBits    int
}

// RandomizedResult is the outcome of the Section 5.1 algorithm.
type RandomizedResult struct {
	IndependentSet   []graph.NodeID
	Phases           []RandomizedPhaseStats
	Colors           int
	SeedBitsPerPhase int
}

// RandomizedMIS runs Luby phases keyed by pairwise-independent hash
// functions over the O(Δ⁴)-colouring of G², drawing each phase's O(log Δ)
// bits of randomness from src. It is the baseline against which the
// derandomized MIS (this package's MIS) is compared: same phase structure,
// random instead of searched seeds.
func RandomizedMIS(g *graph.Graph, p core.Params, src *detrand.Source) *RandomizedResult {
	p.Validate()
	n := g.N()
	res := &RandomizedResult{}
	if n == 0 {
		return res
	}
	col := coloring.LinialG2(g, nil)
	res.Colors = col.NumColors

	minField := uint64(col.NumColors)
	if minField < 4 {
		minField = 4
	}
	fam := hashfam.New(minField, 2)
	res.SeedBitsPerPhase = fam.SeedBits()

	cur := g
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	inMIS := make([]bool, n)
	seed := make([]uint64, fam.SeedLen())

	for phase := 1; ; phase++ {
		for v := 0; v < n; v++ {
			if alive[v] && cur.Degree(graph.NodeID(v)) == 0 {
				inMIS[v] = true
				alive[v] = false
			}
		}
		if cur.M() == 0 {
			break
		}
		st := RandomizedPhaseStats{Phase: phase, EdgesBefore: cur.M(), SeedBits: fam.SeedBits()}
		// Draw the phase's random O(log Δ)-bit seed.
		for i := range seed {
			seed[i] = src.Uint64() % fam.P()
		}
		ih := core.LocalMinNodes(cur, alive, func(v graph.NodeID) uint64 {
			return fam.Eval(seed, uint64(col.Colors[v]))
		})
		st.Selected = len(ih)
		remove := make([]bool, n)
		for _, v := range ih {
			inMIS[v] = true
			alive[v] = false
			remove[v] = true
		}
		for _, v := range ih {
			for _, u := range cur.Neighbors(v) {
				if !remove[u] {
					remove[u] = true
					alive[u] = false
				}
			}
		}
		cur = cur.WithoutNodes(remove)
		st.EdgesAfter = cur.M()
		res.Phases = append(res.Phases, st)
	}
	for v := 0; v < n; v++ {
		if inMIS[v] {
			res.IndependentSet = append(res.IndependentSet, graph.NodeID(v))
		}
	}
	return res
}
