package lowdeg

import (
	"testing"

	"repro/internal/check"
	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestRandomizedMISMaximal(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"empty": graph.Empty(5),
		"path":  gen.Path(100),
		"grid":  gen.Grid2D(15, 15),
		"reg6":  gen.RandomRegular(400, 6, 2),
	} {
		res := RandomizedMIS(g, params(), detrand.New(3))
		if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
			t.Errorf("%s: %s", name, reason)
		}
	}
}

func TestRandomizedSeedBitsAreLogDelta(t *testing.T) {
	// The whole point of §5.1: seeds over the colour space are O(log Δ)
	// bits, far below the O(log n) of node-keyed hashing.
	g := gen.Grid2D(64, 64) // n = 4096, Δ = 4
	res := RandomizedMIS(g, params(), detrand.New(1))
	if res.SeedBitsPerPhase > 24 {
		t.Errorf("seed bits %d; expected O(log Δ) ~ small constant", res.SeedBitsPerPhase)
	}
	if res.Colors > 4096 {
		t.Errorf("colour space %d too large", res.Colors)
	}
}

func TestRandomizedPhasesComparableToDerandomized(t *testing.T) {
	// The derandomized algorithm should not need dramatically more phases
	// than the randomized one it simulates (both are Luby with colours).
	g := gen.RandomRegular(1024, 6, 5)
	rnd := RandomizedMIS(g, params(), detrand.New(7))
	det := MIS(g, params(), nil)
	if len(det.Phases) > 3*len(rnd.Phases)+3 {
		t.Errorf("derandomized %d phases vs randomized %d", len(det.Phases), len(rnd.Phases))
	}
}

func TestRandomizedPhasesMakeProgressInExpectation(t *testing.T) {
	g := gen.RandomRegular(2048, 8, 9)
	res := RandomizedMIS(g, params(), detrand.New(11))
	for _, ph := range res.Phases {
		if ph.EdgesAfter >= ph.EdgesBefore {
			t.Fatalf("phase %d made no progress (possible with tiny probability; deterministic seed says bug)", ph.Phase)
		}
	}
}

func TestRandomizedReproducibleGivenSource(t *testing.T) {
	g := gen.Grid2D(20, 20)
	a := RandomizedMIS(g, params(), detrand.New(42))
	b := RandomizedMIS(g, params(), detrand.New(42))
	if len(a.IndependentSet) != len(b.IndependentSet) {
		t.Fatal("same source, different outputs")
	}
	for i := range a.IndependentSet {
		if a.IndependentSet[i] != b.IndependentSet[i] {
			t.Fatal("same source, different outputs")
		}
	}
}
