package condexp

import (
	"testing"

	"repro/internal/hashfam"
	"repro/internal/simcost"
)

// countBelow returns an objective counting how many of the points hash below
// the threshold t — the canonical sub-sampling objective: its family mean is
// exactly len(points) * t / p by 1-wise uniformity.
func countBelow(fam hashfam.Family, points []uint64, t uint64) Objective {
	return func(seed []uint64) int64 {
		var c int64
		for _, x := range points {
			if fam.Eval(seed, x) < t {
				c++
			}
		}
		return c
	}
}

func testPoints(n int, p uint64) []uint64 {
	pts := make([]uint64, n)
	for i := range pts {
		pts[i] = uint64(i*7+3) % p
	}
	return pts
}

func TestSearchAtLeastFindsMeanValueSeed(t *testing.T) {
	fam := hashfam.New(101, 2)
	points := testPoints(40, fam.P())
	th := hashfam.Threshold(fam.P(), 1, 2)
	obj := countBelow(fam, points, th)
	// Family mean = 40 * th / p ≈ 19.8, so some seed reaches >= 19.
	res, err := SearchAtLeast(fam, obj, 19, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("no seed found: %+v", res)
	}
	if got := obj(res.Seed); got != res.Value || got < 19 {
		t.Errorf("reported value %d, re-eval %d", res.Value, got)
	}
}

func TestSearchAtLeastDeterministic(t *testing.T) {
	fam := hashfam.New(211, 2)
	points := testPoints(64, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 3))
	run := func(workers int) Result {
		res, err := SearchAtLeast(fam, obj, 20, Options{Workers: workers, BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(1), run(8)
	if a.Value != b.Value || a.Value != c.Value {
		t.Fatalf("values differ: %d %d %d", a.Value, b.Value, c.Value)
	}
	for i := range a.Seed {
		if a.Seed[i] != b.Seed[i] || a.Seed[i] != c.Seed[i] {
			t.Fatalf("seeds differ: %v %v %v", a.Seed, b.Seed, c.Seed)
		}
	}
}

func TestSearchAtLeastUnreachableThresholdReturnsBest(t *testing.T) {
	fam := hashfam.New(17, 2)
	points := testPoints(10, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 2))
	res, err := SearchAtLeast(fam, obj, 1<<40, Options{MaxSeeds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("unreachable threshold reported Found")
	}
	if res.SeedsTried != 100 {
		t.Errorf("tried %d seeds, want 100", res.SeedsTried)
	}
	if res.Seed == nil || res.Value < 0 {
		t.Errorf("best-effort result missing: %+v", res)
	}
	// Best over the scanned prefix must be >= any single scanned seed; spot
	// check it is at least the objective of the first enumerated seed.
	e := fam.Enumerate()
	e.Next()
	if first := obj(e.Seed()); res.Value < first {
		t.Errorf("best %d < first seed's %d", res.Value, first)
	}
}

func TestSearchBestMaximises(t *testing.T) {
	fam := hashfam.New(13, 2)
	points := testPoints(8, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 2))
	numSeeds, _ := fam.NumSeeds()
	res, err := SearchBest(fam, obj, int(numSeeds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check.
	e := fam.Enumerate()
	bestVal := int64(-1)
	for e.Next() {
		if v := obj(e.Seed()); v > bestVal {
			bestVal = v
		}
	}
	if res.Value != bestVal {
		t.Errorf("SearchBest value %d, exhaustive best %d", res.Value, bestVal)
	}
}

func TestBatchAccountingAgainstModel(t *testing.T) {
	fam := hashfam.New(1009, 2)
	points := testPoints(100, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 2))
	model := simcost.New(1<<12, 1<<13, 0.5) // S = 64
	res, err := SearchAtLeast(fam, obj, 1<<40, Options{Model: model, MaxSeeds: 300, Label: "test"})
	if err != nil {
		t.Fatal(err)
	}
	st := model.Stats()
	if st.SeedsEvaluated != int64(res.SeedsTried) {
		t.Errorf("model saw %d seeds, search tried %d", st.SeedsEvaluated, res.SeedsTried)
	}
	if st.SeedBatches != res.Batches {
		t.Errorf("model batches %d, search batches %d", st.SeedBatches, res.Batches)
	}
	// Batch size clamps to S=64: 300 seeds => 5 batches.
	if res.Batches != 5 {
		t.Errorf("batches = %d, want 5", res.Batches)
	}
	if st.RoundsByLabel["test"] == 0 {
		t.Error("no rounds charged under label")
	}
}

func TestSearchConditionalReachesMean(t *testing.T) {
	fam := hashfam.New(11, 2) // 121 seeds: exact enumeration is instant
	points := testPoints(9, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 2))
	seed, condExp, err := SearchConditional(fam, obj)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := FamilyMean(fam, obj)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(obj(seed))
	if got < mean {
		t.Errorf("conditional-expectations seed value %.2f below family mean %.2f", got, mean)
	}
	if condExp < mean {
		t.Errorf("final conditional expectation %.2f below mean %.2f", condExp, mean)
	}
	if got != condExp {
		t.Errorf("fully-fixed conditional expectation %.2f != actual value %.2f", condExp, got)
	}
}

func TestSearchConditionalMatchesSearchAtLeast(t *testing.T) {
	// Both procedures must achieve at least the family mean; they may pick
	// different seeds but both values must be >= ceil(mean) when integral
	// objectives are involved.
	fam := hashfam.New(13, 3)
	points := testPoints(11, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 3))
	mean, err := FamilyMean(fam, obj)
	if err != nil {
		t.Fatal(err)
	}
	condSeed, _, err := SearchConditional(fam, obj)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := SearchAtLeast(fam, obj, int64(mean), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(obj(condSeed)) < mean {
		t.Errorf("conditional seed below mean")
	}
	if !scan.Found || float64(scan.Value) < mean {
		t.Errorf("scan below mean: %+v (mean %.2f)", scan, mean)
	}
}

func TestSearchConditionalRejectsHugeFamily(t *testing.T) {
	fam := hashfam.New(1<<40, 2)
	if _, _, err := SearchConditional(fam, func([]uint64) int64 { return 0 }); err == nil {
		t.Error("huge family accepted")
	}
}

func TestFamilyMeanExactForUniformObjective(t *testing.T) {
	fam := hashfam.New(7, 2)
	points := testPoints(5, fam.P())
	th := hashfam.Threshold(fam.P(), 1, 2) // = 3
	obj := countBelow(fam, points, th)
	mean, err := FamilyMean(fam, obj)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(points)) * float64(th) / float64(fam.P())
	if diff := mean - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("family mean %.6f, want %.6f", mean, want)
	}
}

func TestEmptyFamilyImpossible(t *testing.T) {
	// Families always have >= 2 seeds (p >= 2); MaxSeeds=0 defaults, so
	// ErrEmptyFamily only triggers with an exhausted enumerator -- simulate
	// via MaxSeeds smaller than 1 is not possible (defaults). Instead verify
	// the scan handles a tiny family without error.
	fam := hashfam.New(2, 1)
	res, err := SearchAtLeast(fam, func([]uint64) int64 { return 1 }, 1, Options{})
	if err != nil || !res.Found {
		t.Errorf("tiny family scan failed: %+v, %v", res, err)
	}
}

func BenchmarkSearchAtLeast(b *testing.B) {
	fam := hashfam.New(1<<20, 2)
	points := testPoints(1000, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 2))
	for i := 0; i < b.N; i++ {
		if _, err := SearchAtLeast(fam, obj, 480, Options{BatchSize: 64, Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSearchAtLeastDoneStopsAtBatchBoundary: the cancellation hook is polled
// only between batches — a canceled search returns the best of the batches
// that evaluated (Canceled set, no error), and a Done that never fires is
// unobservable.
func TestSearchAtLeastDoneStopsAtBatchBoundary(t *testing.T) {
	fam := hashfam.New(101, 2)
	points := testPoints(40, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 2))

	// Done firing from the start: no batch ever evaluates.
	res, err := SearchAtLeast(fam, obj, 1<<40, Options{
		BatchSize: 8,
		Done:      func() bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || res.Batches != 0 || res.SeedsTried != 0 || res.Seed != nil {
		t.Fatalf("immediate cancel evaluated work: %+v", res)
	}

	// Done firing after the second poll: exactly the batches before it
	// evaluated, and SeedsTried counts only evaluated seeds.
	polls := 0
	res, err = SearchAtLeast(fam, obj, 1<<40, Options{
		BatchSize: 8,
		MaxSeeds:  64,
		Done: func() bool {
			polls++
			return polls > 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatalf("not canceled: %+v", res)
	}
	if res.Batches != 2 || res.SeedsTried != 16 {
		t.Fatalf("expected 2 evaluated batches / 16 seeds before cancel, got %+v", res)
	}
	if res.Seed == nil || res.Value < 0 {
		t.Fatalf("canceled search lost its best-so-far: %+v", res)
	}

	// A Done that never fires changes nothing versus no Done at all.
	ref, err := SearchAtLeast(fam, obj, 19, Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchAtLeast(fam, obj, 19, Options{BatchSize: 8, Done: func() bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if got.Canceled || got.Value != ref.Value || got.SeedsTried != ref.SeedsTried || got.Batches != ref.Batches {
		t.Fatalf("inert Done changed the search: got %+v, want %+v", got, ref)
	}
	for i := range ref.Seed {
		if got.Seed[i] != ref.Seed[i] {
			t.Fatalf("inert Done changed the selected seed")
		}
	}
}

// TestOnBatchStats pins the seed-batch observation seam: one BatchStat per
// charged batch, in enumeration order, with exact cumulative counts, a
// best-value trajectory matching the scan, and the Found flag on the final
// batch exactly when the search succeeded. The stream must not perturb the
// search result and must be identical at any worker count.
func TestOnBatchStats(t *testing.T) {
	fam := hashfam.New(101, 2)
	points := testPoints(40, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 2))

	var plain Result
	{
		res, err := SearchAtLeast(fam, obj, 19, Options{BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		plain = res
	}

	for _, workers := range []int{1, 2, 8} {
		var stats []BatchStat
		res, err := SearchAtLeast(fam, obj, 19, Options{
			BatchSize: 16,
			Workers:   workers,
			OnBatch:   func(bs BatchStat) { stats = append(stats, bs) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != plain.Value || res.Found != plain.Found || res.SeedsTried != plain.SeedsTried {
			t.Fatalf("workers=%d: observation changed the result: %+v vs %+v", workers, res, plain)
		}
		if len(stats) != res.Batches {
			t.Fatalf("workers=%d: %d stats for %d charged batches", workers, len(stats), res.Batches)
		}
		sum := 0
		best := int64(-1 << 62)
		for i, bs := range stats {
			if bs.Batch != i+1 {
				t.Fatalf("workers=%d: stat %d has Batch %d", workers, i, bs.Batch)
			}
			sum += bs.Seeds
			if bs.SeedsTried != sum {
				t.Fatalf("workers=%d: stat %d cumulative %d, want %d", workers, i, bs.SeedsTried, sum)
			}
			if bs.BestValue < best {
				t.Fatalf("workers=%d: best value regressed at batch %d: %d < %d", workers, i+1, bs.BestValue, best)
			}
			best = bs.BestValue
			if bs.Found != (i == len(stats)-1 && res.Found) {
				t.Fatalf("workers=%d: Found misplaced at batch %d", workers, i+1)
			}
		}
		if sum != res.SeedsTried {
			t.Fatalf("workers=%d: stats cover %d seeds, result says %d", workers, sum, res.SeedsTried)
		}
		if last := stats[len(stats)-1]; last.BestValue != res.Value {
			t.Fatalf("workers=%d: final best %d, result value %d", workers, last.BestValue, res.Value)
		}
	}
}

// TestOnBatchModelAgreement cross-checks the stat stream against the cost
// model: charged seed batches and evaluated seeds must match exactly.
func TestOnBatchModelAgreement(t *testing.T) {
	fam := hashfam.New(211, 2)
	points := testPoints(64, fam.P())
	obj := countBelow(fam, points, hashfam.Threshold(fam.P(), 1, 3))
	model := simcost.New(64, 128, 0.5)
	var stats []BatchStat
	res, err := SearchAtLeast(fam, obj, 1<<40, Options{ // unreachable: full scan
		BatchSize: 8,
		MaxSeeds:  64,
		Model:     model,
		OnBatch:   func(bs BatchStat) { stats = append(stats, bs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("threshold 2^40 cannot be met")
	}
	st := model.Stats()
	if st.SeedBatches != len(stats) || st.SeedBatches != res.Batches {
		t.Fatalf("model charged %d batches, %d stats, result %d", st.SeedBatches, len(stats), res.Batches)
	}
	if int(st.SeedsEvaluated) != res.SeedsTried {
		t.Fatalf("model evaluated %d seeds, result tried %d", st.SeedsEvaluated, res.SeedsTried)
	}
}
