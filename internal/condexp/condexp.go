// Package condexp implements the deterministic seed-selection procedures of
// Section 2.4 of the paper (the method of conditional expectations).
//
// The paper's setting: over a random hash function h from a k-wise
// independent family H, some objective q(h) = Σ_machines q_x(h) has
// E_h[q] >= Q, hence by the probabilistic method some h* in H has
// q(h*) >= Q. The MPC algorithm finds h* deterministically by fixing the
// O(log n)-bit seed in Θ(log S)-bit chunks, machines voting on each chunk
// with conditional expectations — O(1) rounds per chunk because local
// computation is free in the MPC model.
//
// On a laptop local computation is not free, so the default procedure is
// SearchAtLeast: scan the family in its fixed enumeration order, evaluating
// batches of up to S candidate seeds per charged O(1)-round AllReduce (each
// machine evaluates every candidate on its local data; the summed vector
// tells everyone the first candidate meeting the threshold). The output is
// deterministic — the first seed in enumeration order with q(seed) >= Q —
// and termination is guaranteed whenever the expectation bound actually
// holds for the finite family. DESIGN.md discusses this substitution; the
// exact chunk-by-chunk method is also implemented (SearchConditional) and
// tested against SearchAtLeast on small families.
package condexp

import (
	"errors"

	"repro/internal/hashfam"
	"repro/internal/parallel"
	"repro/internal/simcost"
)

// Objective evaluates the global objective for a full seed. Implementations
// must be safe for concurrent calls (seed slices are never shared between
// concurrent calls).
type Objective func(seed []uint64) int64

// BatchObjective evaluates one whole batch of candidate seeds against
// shared per-round state: it must set values[i] = q(seeds[i]) for every i,
// with slot i depending only on seeds[i]. This is the vectorized form the
// hash-kernel seed searches use — the caller hands the batch's whole seed
// matrix over at once, so the implementation can evaluate block-major:
// groups of BlockSeeds seeds per cache-resident key block through
// hashfam.Evaluator.EvalSeedsBlocked into a scratch tile (see
// ForEachSeedBlock), amortising one pass of key-vector memory traffic over
// the group. Results stay bit-identical at any worker count — and identical
// to per-seed EvalKeys evaluation — because slots are independent and the
// blocked kernel is byte-equal to the seed-major one.
type BatchObjective func(seeds [][]uint64, values []int64)

// BlockSeeds is the seed-group width of the blocked evaluation path: how
// many candidate seeds a BatchObjective evaluates per cache-resident key
// block in one EvalSeedsBlocked call. Eight pairwise seeds keep the S×block
// output tile at 8·4KB alongside the key block, inside L2 with room to
// spare, while amortising the key-vector read traffic 8 ways. It also sets
// the granularity ForEachSeedBlock fans groups out at, so batch sizes (the
// default Options.BatchSize is 64) should be multiples of it for even
// worker utilisation — but any batch length works, the last group just runs
// short.
const BlockSeeds = 8

// ForEachSeedBlock partitions a batch of batchLen seeds into contiguous
// groups of BlockSeeds (the last group may be shorter) and invokes
// fn(lo, hi) for each group [lo, hi) on up to `workers` goroutines of the
// shared internal/parallel pool. Group boundaries derive from batchLen and
// BlockSeeds alone — never from the worker count — and every group touches
// only its own seeds' value slots and per-worker scratch, so the repo's
// determinism contract holds at any parallelism level. This is the fan-out
// scaffold of the blocked BatchObjectives in matching/mis/lowdeg/sparsify.
func ForEachSeedBlock(workers, batchLen int, fn func(lo, hi int)) {
	if batchLen <= 0 {
		return
	}
	groups := (batchLen + BlockSeeds - 1) / BlockSeeds
	parallel.RunShards(workers, groups, func(g int) {
		lo := g * BlockSeeds
		hi := lo + BlockSeeds
		if hi > batchLen {
			hi = batchLen
		}
		fn(lo, hi)
	})
}

// Options configure a search.
type Options struct {
	// BatchSize is the number of candidate seeds evaluated per charged
	// O(1)-round batch. Defaults to the model's S (or 64 without a model),
	// and is clamped to S when a model is present: a machine must be able
	// to hold the per-candidate partial objectives.
	BatchSize int
	// MaxSeeds bounds the scan. 0 means DefaultMaxSeeds. When the bound is
	// hit the best seed seen so far is returned with Found == false.
	MaxSeeds int
	// Model, when non-nil, is charged one seed batch per batch of
	// evaluations under Label.
	Model *simcost.Model
	// Label attributes charged rounds. Defaults to "condexp".
	Label string
	// Workers is the number of host workers evaluating candidate seeds
	// within a batch on the shared internal/parallel pool, following the
	// repo-wide convention of parallel.Workers: 0 (default) means one
	// worker per logical CPU, 1 forces serial evaluation. The result is
	// bit-identical at any worker count (the first qualifying seed in
	// enumeration order is selected); only wall-clock time changes.
	Workers int
	// Done, when non-nil, is polled once per batch boundary — before each
	// charged batch evaluation, never inside one — and a true return stops
	// the scan: the search returns the best seed seen so far with
	// Result.Canceled set and no error. Searches that run to completion are
	// bit-identical to Done == nil; this is the request-cancellation seam of
	// the round loops (core.Params.Done threads through here).
	Done func() bool
	// OnBatch, when non-nil, receives one BatchStat per charged batch
	// evaluation, synchronously from the search's coordinating goroutine and
	// in enumeration order — batches are flushed serially regardless of
	// Workers, so the stat stream is bit-identical at any worker count. It
	// is pure observation: the scan's selection rule, charges and results
	// are unchanged, and a nil OnBatch costs nothing. This is the
	// seed-batch-granular seam the observer API (core.RoundEvent.Batches)
	// threads through.
	OnBatch func(BatchStat)
}

// BatchStat describes one charged batch of a seed search, as delivered to
// Options.OnBatch immediately after the batch evaluated.
type BatchStat struct {
	// Batch is the 1-based index of the batch within this search.
	Batch int
	// Seeds is the number of candidate seeds the batch evaluated.
	Seeds int
	// SeedsTried is the cumulative candidate count including this batch.
	SeedsTried int
	// BestValue is the best objective value seen so far in the scan.
	BestValue int64
	// Found reports that this batch contained the first qualifying seed,
	// ending the search.
	Found bool
}

// DefaultMaxSeeds bounds seed scans when Options.MaxSeeds is 0. The theory
// guarantees a qualifying seed exists when the expectation bound holds; the
// cap exists so that mis-calibrated thresholds degrade to best-effort
// instead of hanging.
const DefaultMaxSeeds = 1 << 17

// Result reports the outcome of a search.
type Result struct {
	Seed       []uint64
	Value      int64
	Found      bool // Value >= the requested threshold
	SeedsTried int
	Batches    int
	// Canceled is set when Options.Done stopped the scan at a batch
	// boundary. Seed then holds the best candidate of the batches that DID
	// evaluate — or nil when cancellation hit before the first batch — so
	// callers must abandon the round rather than apply the seed.
	Canceled bool
}

// ErrEmptyFamily is returned when the family has no seeds to try.
var ErrEmptyFamily = errors.New("condexp: empty family")

func (o *Options) defaults() {
	if o.Label == "" {
		o.Label = "condexp"
	}
	if o.BatchSize <= 0 {
		if o.Model != nil {
			o.BatchSize = o.Model.S()
		}
		if o.BatchSize <= 0 {
			o.BatchSize = 64
		}
	}
	if o.Model != nil && o.BatchSize > o.Model.S() {
		o.BatchSize = o.Model.S()
	}
	if o.MaxSeeds <= 0 {
		o.MaxSeeds = DefaultMaxSeeds
	}
}

// SearchAtLeast scans the family in its canonical enumeration order and
// returns the first seed whose objective is at least threshold. If no seed
// qualifies within MaxSeeds, the best seed seen is returned with
// Found == false (callers treat that as "take the progress you got", which
// keeps the outer algorithms unconditionally correct). It is
// SearchAtLeastBatch with the per-seed objective fanned out over
// Options.Workers; kernel callers pass their own BatchObjective instead.
func SearchAtLeast(fam hashfam.Family, obj Objective, threshold int64, opts Options) (Result, error) {
	opts.defaults()
	return SearchAtLeastBatch(fam, func(seeds [][]uint64, values []int64) {
		evalBatch(seeds, values, obj, opts.Workers)
	}, threshold, opts)
}

// SearchAtLeastBatch is SearchAtLeast evaluating candidates a whole batch
// at a time through obj. The selection rule is unchanged — the first seed
// in enumeration order whose value meets the threshold — so a
// BatchObjective that matches a scalar objective slot-for-slot yields
// bit-identical results.
func SearchAtLeastBatch(fam hashfam.Family, obj BatchObjective, threshold int64, opts Options) (Result, error) {
	opts.defaults()
	enum := fam.Enumerate()
	best := Result{Value: -1 << 62}
	seedLen := fam.SeedLen()

	// One backing array serves every candidate seed of every batch (batch
	// slot i always reuses the same sub-slice), so the scan's allocation
	// cost is a small constant per search instead of one make per seed —
	// the searches run once per round of the outer algorithms, and the
	// Engine's allocation-flatness depends on them staying cheap.
	seedBuf := make([]uint64, opts.BatchSize*seedLen)
	batch := make([][]uint64, 0, opts.BatchSize)
	values := make([]int64, opts.BatchSize)
	tried := 0

	flush := func() (done bool) {
		if len(batch) == 0 {
			return false
		}
		if opts.Model != nil {
			opts.Model.ChargeSeedBatch(len(batch), opts.Label)
		}
		best.Batches++
		obj(batch, values[:len(batch)])
		for i, seed := range batch {
			v := values[i]
			if v > best.Value {
				best.Value = v
				best.Seed = append(best.Seed[:0], seed...)
			}
			if v >= threshold {
				// First qualifying seed in enumeration order wins.
				best.Value = v
				best.Seed = append(best.Seed[:0], seed...)
				best.Found = true
				break
			}
		}
		if opts.OnBatch != nil {
			// tried already counts this batch's seeds; all of them evaluated
			// even when the qualifying seed sits mid-batch (one AllReduce per
			// batch), so the cumulative count is exact.
			opts.OnBatch(BatchStat{
				Batch:      best.Batches,
				Seeds:      len(batch),
				SeedsTried: tried,
				BestValue:  best.Value,
				Found:      best.Found,
			})
		}
		if best.Found {
			return true
		}
		batch = batch[:0]
		return false
	}

	// The cancellation checkpoint: polled once per batch boundary, so a
	// search never stops mid-batch and a completed search is bit-identical
	// to an unobserved one.
	canceled := func() bool {
		if opts.Done != nil && opts.Done() {
			best.Canceled = true
			best.SeedsTried = tried - len(batch) // the pending batch never evaluated
			return true
		}
		return false
	}

	for tried < opts.MaxSeeds && enum.Next() {
		i := len(batch)
		seed := seedBuf[i*seedLen : (i+1)*seedLen : (i+1)*seedLen]
		copy(seed, enum.Seed())
		batch = append(batch, seed)
		tried++
		if len(batch) == opts.BatchSize {
			if canceled() {
				return best, nil
			}
			if flush() {
				best.SeedsTried = tried
				return best, nil
			}
		}
	}
	if canceled() {
		return best, nil
	}
	if flush() {
		best.SeedsTried = tried
		return best, nil
	}
	best.SeedsTried = tried
	if tried == 0 {
		return best, ErrEmptyFamily
	}
	return best, nil
}

// SearchBest scans exactly maxSeeds seeds (or the whole family if smaller)
// and returns the one with the maximum objective, ties broken by enumeration
// order. It is the "voting" variant used where no a-priori threshold exists
// (e.g. picking the stage seed that maximises removed edges in Section 5).
func SearchBest(fam hashfam.Family, obj Objective, maxSeeds int, opts Options) (Result, error) {
	opts.defaults()
	return SearchBestBatch(fam, func(seeds [][]uint64, values []int64) {
		evalBatch(seeds, values, obj, opts.Workers)
	}, maxSeeds, opts)
}

// SearchBestBatch is SearchBest through a BatchObjective (see
// SearchAtLeastBatch).
func SearchBestBatch(fam hashfam.Family, obj BatchObjective, maxSeeds int, opts Options) (Result, error) {
	opts.defaults()
	if maxSeeds > 0 {
		opts.MaxSeeds = maxSeeds
	}
	// A threshold above any achievable value forces a full scan of
	// MaxSeeds; the best seed is tracked along the way.
	res, err := SearchAtLeastBatch(fam, obj, 1<<62, opts)
	if err != nil {
		return res, err
	}
	res.Found = res.SeedsTried > 0 && !res.Canceled
	return res, nil
}

// SpareWorkers returns the per-candidate worker budget available to a
// BatchObjective that fans a batch of batchLen seeds over `workers` pool
// slots: when the batch is at least as wide as the pool every candidate
// evaluates serially (1), and when it is narrower — the tail batch of a
// search, or a huge round with a tiny family — the leftover workers/batchLen
// slots can shard the per-seed key vector instead
// (hashfam.Evaluator.EvalKeysW). The returned count influences wall-clock
// only, never results: EvalKeysW is byte-identical at any worker count, so
// objectives stay inside the determinism contract.
func SpareWorkers(workers, batchLen int) int {
	if batchLen < 1 {
		batchLen = 1
	}
	w := parallel.Workers(workers)
	if w <= batchLen {
		return 1
	}
	return w / batchLen
}

// evalBatch fills out[i] = obj(batch[i]) using up to `workers` goroutines of
// the shared pool (0 = auto, per parallel.Workers). Each candidate writes
// only its own slot, so the batch result is identical at any worker count.
func evalBatch(batch [][]uint64, out []int64, obj Objective, workers int) {
	if w := parallel.Workers(workers); w <= 1 || len(batch) < 4 {
		for i, seed := range batch {
			out[i] = obj(seed)
		}
		return
	}
	parallel.ForEach(workers, len(batch), func(i int) {
		out[i] = obj(batch[i])
	})
}

// SearchConditional runs the textbook method of conditional expectations:
// fix the seed one field element at a time (one "chunk" of Θ(log p) bits,
// matching the paper's Θ(log S)-bit chunks); for each candidate value of the
// next element compute the *exact* conditional expectation of the objective
// by enumerating all completions, and keep the value with the maximum
// conditional expectation. The returned seed q satisfies
// q(seed) >= E_h[q(h)] by construction.
//
// Cost is Θ(p^k) objective evaluations, so this is only for small families;
// it exists to validate SearchAtLeast against the real method (tests) and
// for the exact-derandomization experiment.
func SearchConditional(fam hashfam.Family, obj Objective) ([]uint64, float64, error) {
	k := fam.SeedLen()
	p := fam.P()
	if _, ok := fam.NumSeeds(); !ok {
		return nil, 0, errors.New("condexp: family too large for exact conditional expectations")
	}
	prefix := make([]uint64, 0, k)
	var condExp float64
	for pos := 0; pos < k; pos++ {
		bestVal := uint64(0)
		bestExp := 0.0
		first := true
		for v := uint64(0); v < p; v++ {
			exp := suffixAverage(fam, obj, append(prefix, v))
			if first || exp > bestExp {
				bestVal, bestExp, first = v, exp, false
			}
		}
		prefix = append(prefix, bestVal)
		condExp = bestExp
	}
	return prefix, condExp, nil
}

// suffixAverage returns the average objective over all completions of the
// given seed prefix.
func suffixAverage(fam hashfam.Family, obj Objective, prefix []uint64) float64 {
	k := fam.SeedLen()
	p := fam.P()
	free := k - len(prefix)
	seed := make([]uint64, k)
	copy(seed, prefix)
	if free == 0 {
		return float64(obj(seed))
	}
	var total float64
	var count float64
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			total += float64(obj(seed))
			count++
			return
		}
		for v := uint64(0); v < p; v++ {
			seed[pos] = v
			rec(pos + 1)
		}
	}
	rec(len(prefix))
	return total / count
}

// FamilyMean returns the exact mean of the objective over the whole family
// (test helper for validating expectation bounds; Θ(p^k) evaluations).
func FamilyMean(fam hashfam.Family, obj Objective) (float64, error) {
	if _, ok := fam.NumSeeds(); !ok {
		return 0, errors.New("condexp: family too large to average")
	}
	return suffixAverage(fam, obj, nil), nil
}
