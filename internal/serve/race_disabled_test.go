//go:build !race

package serve

// raceEnabled reports whether the race detector is active (see the race
// build-tag twin for why allocation assertions check it).
const raceEnabled = false
