//go:build race

package serve

// raceEnabled reports whether the race detector is active; the warm-engine
// allocation assertion in serve_test.go is skipped under -race (detector
// instrumentation allocates on its own account), matching the root
// package's convention.
const raceEnabled = true
