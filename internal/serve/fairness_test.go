package serve

// Per-engine admission tests: the deficit round-robin scheduler must keep a
// hot fingerprint's backlog from starving colder graphs (the PR 6 layer's
// single shared queue did exactly that), and a client that abandons a
// streaming solve must not burn a worker for the rest of the solve. Both
// properties hold with served bits unchanged — the equivalence harness in
// serve_test.go stays the referee.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

// graphForEngine generates deterministic graphs until one fingerprints onto
// the wanted engine index (fp mod engines), so tests can aim traffic at a
// specific queue.
func graphForEngine(t *testing.T, family string, n, deg, engines, want int) *repro.Graph {
	t.Helper()
	for seed := uint64(1); seed < 100; seed++ {
		g := mustGraph(t, family, n, deg, seed)
		if int(uint64(repro.FingerprintOf(g))%uint64(engines)) == want {
			return g
		}
	}
	t.Fatalf("no %s graph (n=%d deg=%d) routing to engine %d of %d within 100 seeds", family, n, deg, want, engines)
	return nil
}

// TestSchedulerDeficitRoundRobin pins the dispatch order of the per-engine
// scheduler with a single worker (serial execution makes the order
// observable and deterministic): a job on a cold engine's queue is
// dispatched ahead of an arbitrarily deep backlog that arrived earlier on a
// hot engine's queue, FIFO order holds within an engine, and with two
// backlogged engines no prefix of the dispatch order is more than
// schedQuantum jobs ahead on one engine.
func TestSchedulerDeficitRoundRobin(t *testing.T) {
	newParked := func(t *testing.T) (*Server, chan struct{}, *job) {
		s := New(Config{Engines: 2, Workers: 1, QueueDepth: 64})
		t.Cleanup(s.Close)
		block := make(chan struct{})
		started := make(chan struct{})
		parked, err := s.enqueue(0, func() { close(started); <-block }, func(error) {})
		if err != nil {
			t.Fatal(err)
		}
		<-started // queue 0 is empty again; the cursor has moved past it
		return s, block, parked
	}
	record := func(s *Server, order *[]string, engine int, name string) *job {
		j, err := s.enqueue(engine, func() { *order = append(*order, name) }, func(error) {})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Scenario 1: six hot jobs queued on engine 0 before one cold job on
	// engine 1. Arrival order must not dominate: the cold job's queue is
	// separate, so it is dispatched ahead of the entire hot backlog.
	s, block, parked := newParked(t)
	var order []string
	var jobs []*job
	for i := 1; i <= 6; i++ {
		jobs = append(jobs, record(s, &order, 0, fmt.Sprintf("H%d", i)))
	}
	jobs = append(jobs, record(s, &order, 1, "C"))
	close(block)
	<-parked.done
	for _, j := range jobs {
		<-j.done
	}
	if len(order) != 7 {
		t.Fatalf("ran %d jobs, want 7: %v", len(order), order)
	}
	coldAt := -1
	prevHot := 0
	for i, name := range order {
		if name == "C" {
			coldAt = i
			continue
		}
		var hn int
		fmt.Sscanf(name, "H%d", &hn)
		if hn <= prevHot {
			t.Fatalf("FIFO violated within engine 0: %v", order)
		}
		prevHot = hn
	}
	if coldAt < 0 || coldAt > schedQuantum {
		t.Fatalf("cold job dispatched at position %d, want <= %d (quantum): %v", coldAt, schedQuantum, order)
	}

	// Scenario 2: equal backlogs on both engines. The deficit grant bounds
	// the interleave: in every prefix of the dispatch order the two engines
	// differ by at most schedQuantum dispatches, so neither backlog runs
	// ahead of the other by more than the grant.
	s2, block2, parked2 := newParked(t)
	var order2 []string
	var jobs2 []*job
	for i := 1; i <= 4; i++ {
		jobs2 = append(jobs2, record(s2, &order2, 0, fmt.Sprintf("A%d", i)))
		jobs2 = append(jobs2, record(s2, &order2, 1, fmt.Sprintf("B%d", i)))
	}
	close(block2)
	<-parked2.done
	for _, j := range jobs2 {
		<-j.done
	}
	balance := 0
	for i, name := range order2 {
		if name[0] == 'A' {
			balance++
		} else {
			balance--
		}
		if balance > schedQuantum || balance < -schedQuantum {
			t.Fatalf("prefix %d of %v is %d dispatches ahead on one engine (quantum %d)", i, order2, balance, schedQuantum)
		}
	}
}

// TestServeStarvationColdFingerprint is the end-to-end starvation
// regression: with Workers=2 and one fingerprint saturating its home
// engine's queue with long sparsify-strategy solves, a cold-fingerprint
// request on the other engine is admitted and served while the hot backlog
// is still queued — and its bits match a direct Engine solve exactly.
// Under the PR 6 single shared queue this request would have waited behind
// every previously queued hot solve.
func TestServeStarvationColdFingerprint(t *testing.T) {
	const engines = 2
	s := New(Config{Engines: engines, Workers: 2, QueueDepth: 64})
	defer s.Close()

	hot := graphForEngine(t, "gnm", 4096, 8, engines, 0)
	cold := graphForEngine(t, "gnm", 64, 4, engines, 1)
	hotIdx, coldIdx := s.engineIndex(repro.FingerprintOf(hot)), s.engineIndex(repro.FingerprintOf(cold))
	if hotIdx == coldIdx {
		t.Fatalf("hot and cold graphs share engine %d", hotIdx)
	}

	want, err := repro.NewEngine(nil).MaximalIndependentSet(cold)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(wireGraph(hot)); err != nil {
		t.Fatal(err)
	}

	// Saturate the hot engine: more long solves than the worker pool can
	// start, so a deep backlog sits on its queue.
	const hotJobs = 8
	sparsify := string(repro.StrategySparsify)
	hotDone := make(chan error, hotJobs)
	for i := 0; i < hotJobs; i++ {
		go func() {
			_, err := s.Solve(context.Background(), &SolveRequest{
				Problem:     ProblemMatching,
				Fingerprint: repro.FingerprintOf(hot).String(),
				Options:     &SolveOptions{Strategy: sparsify},
			})
			hotDone <- err
		}()
	}
	// Wait until the backlog is real: at least half the hot jobs queued on
	// the hot engine (the rest are running or about to).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := s.Stats(); st.PerEngine[hotIdx].Queued >= hotJobs/2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot backlog never formed: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Upload needs the engine only for Prepare, never the queue — then the
	// cold solve must be dispatched after at most schedQuantum hot
	// dispatches, not after the backlog drains.
	resp, err := s.Solve(context.Background(), &SolveRequest{Problem: ProblemMIS, Graph: wireGraph(cold)})
	if err != nil {
		t.Fatalf("cold solve during hot backlog: %v", err)
	}
	st := s.Stats()
	if st.PerEngine[hotIdx].Queued == 0 {
		t.Fatalf("hot backlog already drained when the cold solve finished — starvation not exercised: %+v", st)
	}
	if err := sameMIS(resp, want); err != nil {
		t.Fatalf("cold solve served wrong bits under hot load: %v", err)
	}
	for i := 0; i < hotJobs; i++ {
		if err := <-hotDone; err != nil {
			t.Fatalf("hot solve %d: %v", i, err)
		}
	}
	// Per-engine accounting: every admission decision happened on the home
	// queue of its request's fingerprint.
	st = s.Stats()
	if got := st.PerEngine[hotIdx].Accepted; got != hotJobs {
		t.Errorf("hot engine accepted %d, want %d", got, hotJobs)
	}
	if got := st.PerEngine[coldIdx].Accepted; got != 1 {
		t.Errorf("cold engine accepted %d, want 1", got)
	}
	if st.Accepted != hotJobs+1 || st.Completed != hotJobs+1 {
		t.Errorf("aggregate counters: %+v", st)
	}
}

// TestServeStreamingDisconnectCancels pins the abandoned-stream contract: a
// client that disconnects mid-stream cancels its solve at the next round
// boundary (the server records a canceled — not completed — solve), and the
// abandoned solve's scratch context is Reset and re-pooled, so the engine
// serves the next request warm and bit-identical.
func TestServeStreamingDisconnectCancels(t *testing.T) {
	s := New(Config{
		Options: &repro.Options{Strategy: repro.StrategySparsify, Parallelism: 1, SkipCostTracking: true},
		Engines: 1,
		Workers: 1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g := mustGraph(t, "gnm", 8192, 8, 1)

	// Warm the engine (and compute the reference) through a clean solve.
	req := &SolveRequest{Problem: ProblemMatching, Graph: wireGraph(g)}
	warmResp, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// Stream the same solve and walk away mid-solve. The client goroutine
	// issues the request and blocks reading the stream; the test cancels the
	// request context as soon as the server has dequeued the solve — i.e.
	// while the worker is deep inside the sparsification stages, long before
	// the final rounds fire.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf, err := json.Marshal(&SolveRequest{Problem: ProblemMatching, Fingerprint: repro.FingerprintOf(g).String(), Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			clientDone <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
		}
		clientDone <- sc.Err()
	}()
	// Wait for the solve to be admitted and dequeued (Accepted counts the
	// warm solve too), then disconnect while it is running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.PerEngine[0].Accepted >= 2 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streamed solve never started: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()     // client disconnect: the connection drops mid-stream
	<-clientDone // transport observed the cancel; connection is closed

	// The solve must stop at its next round/seed-batch boundary and be
	// recorded as canceled — never completed.
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.Canceled >= 1 {
			break
		}
		if st.Completed >= 2 {
			t.Fatalf("abandoned stream ran to completion: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned stream never canceled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The canceled solve's scratch context went back to the pool Reset, so
	// the follow-up served solve is bit-identical...
	again, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameMatching(again, &repro.MatchingResult{Strategy: repro.Strategy(warmResp.Strategy), Iterations: warmResp.Iterations, Edges: respEdges(warmResp)}); err != nil {
		t.Fatalf("post-disconnect solve differs from pre-disconnect: %v", err)
	}
	if testing.Short() || raceEnabled {
		return // alloc budgets hold only without race instrumentation
	}
	// ...and allocation-flat: the warm budget of the root package's
	// TestEngineWarmReuseAllocsConstant still holds on the engine that
	// served (and abandoned) the stream.
	eng := s.engines[0]
	const budget = 2200 // sparsify/mm warm budget (engine_test.go)
	warm := testing.AllocsPerRun(2, func() {
		if _, err := eng.MaximalMatching(g); err != nil {
			t.Fatal(err)
		}
	})
	if warm > budget {
		t.Errorf("post-disconnect warm re-solve allocated %.0f objects, budget %d", warm, budget)
	}
}

// respEdges converts a served edge list back to repro.Edges for the
// bit-comparison helpers.
func respEdges(resp *SolveResponse) []repro.Edge {
	edges := make([]repro.Edge, len(resp.Edges))
	for i, e := range resp.Edges {
		edges[i] = repro.Edge{U: repro.NodeID(e[0]), V: repro.NodeID(e[1])}
	}
	return edges
}
