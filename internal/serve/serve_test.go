package serve

// Server-path tests: served results must be byte-identical to direct Engine
// solves under concurrent mixed load; overload must reject with 429 /
// repro.ErrOverloaded without corrupting pooled solve state; deadline
// expiry must leave the owning engine warm (alloc-flat re-solve).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

func mustGraph(t *testing.T, family string, n, deg int, seed uint64) *repro.Graph {
	t.Helper()
	g, err := repro.Generate(family, n, deg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func wireGraph(g *repro.Graph) *GraphUpload {
	u := &GraphUpload{N: g.N()}
	for _, e := range g.Edges() {
		u.Edges = append(u.Edges, [2]int32{int32(e.U), int32(e.V)})
	}
	return u
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// sameMatching / sameMIS compare a served response against a direct Engine
// result bit for bit.
func sameMatching(resp *SolveResponse, want *repro.MatchingResult) error {
	if len(resp.Edges) != len(want.Edges) || resp.Iterations != want.Iterations ||
		resp.Strategy != string(want.Strategy) {
		return fmt.Errorf("shape differs: %d edges/%d iters/%s, want %d/%d/%s",
			len(resp.Edges), resp.Iterations, resp.Strategy,
			len(want.Edges), want.Iterations, want.Strategy)
	}
	for i, e := range resp.Edges {
		if e[0] != int32(want.Edges[i].U) || e[1] != int32(want.Edges[i].V) {
			return fmt.Errorf("edge %d is (%d,%d), want %v", i, e[0], e[1], want.Edges[i])
		}
	}
	return nil
}

func sameMIS(resp *SolveResponse, want *repro.MISResult) error {
	if len(resp.Nodes) != len(want.Nodes) || resp.Iterations != want.Iterations ||
		resp.Strategy != string(want.Strategy) {
		return fmt.Errorf("shape differs: %d nodes/%d iters/%s, want %d/%d/%s",
			len(resp.Nodes), resp.Iterations, resp.Strategy,
			len(want.Nodes), want.Iterations, want.Strategy)
	}
	for i, v := range resp.Nodes {
		if v != int32(want.Nodes[i]) {
			return fmt.Errorf("node %d is %d, want %d", i, v, want.Nodes[i])
		}
	}
	return nil
}

// TestServedResultsMatchDirect is the tentpole's acceptance test: an
// httptest server under concurrent mixed matching/MIS traffic — inline
// graphs and fingerprint references, Parallelism 1/2/8 — serves results
// byte-identical to direct Engine solves with the same graph and options.
// The per-engine deficit scheduler changes dispatch order, never bits, and
// its per-engine counters must reconcile exactly with the aggregates.
func TestServedResultsMatchDirect(t *testing.T) {
	graphs := []*repro.Graph{
		mustGraph(t, "gnm", 512, 8, 1),
		mustGraph(t, "powerlaw", 384, 6, 3),
		mustGraph(t, "regular", 384, 6, 5),
	}
	s := New(Config{Engines: 2, Workers: 4, QueueDepth: 256})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Direct references from an independent engine: determinism makes any
	// engine — warm, cold, shared — produce the same bits.
	ref := repro.NewEngine(nil)
	wantMM := make([]*repro.MatchingResult, len(graphs))
	wantIS := make([]*repro.MISResult, len(graphs))
	for i, g := range graphs {
		var err error
		if wantMM[i], err = ref.MaximalMatching(g); err != nil {
			t.Fatal(err)
		}
		if wantIS[i], err = ref.MaximalIndependentSet(g); err != nil {
			t.Fatal(err)
		}
	}

	// Upload every graph once; half the traffic will solve by fingerprint.
	fps := make([]string, len(graphs))
	for i, g := range graphs {
		resp, body := postJSON(t, ts.URL+"/v1/graphs", wireGraph(g))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: status %d: %s", i, resp.StatusCode, body)
		}
		var ur UploadResponse
		if err := json.Unmarshal(body, &ur); err != nil {
			t.Fatal(err)
		}
		if ur.N != g.N() || ur.M != g.M() {
			t.Fatalf("upload %d: reported %d/%d, want %d/%d", i, ur.N, ur.M, g.N(), g.M())
		}
		fps[i] = ur.Fingerprint
	}

	pars := []int{1, 2, 8}
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < perWorker; r++ {
				gi := (w + r) % len(graphs)
				par := pars[(w+r)%len(pars)]
				req := &SolveRequest{
					Options: &SolveOptions{Parallelism: &par},
				}
				if (w+r)%2 == 0 {
					req.Fingerprint = fps[gi]
				} else {
					req.Graph = wireGraph(graphs[gi])
				}
				if r%2 == 0 {
					req.Problem = ProblemMatching
				} else {
					req.Problem = ProblemMIS
				}
				resp, body := postJSON(t, ts.URL+"/v1/solve", req)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d req %d: status %d: %s", w, r, resp.StatusCode, body)
					return
				}
				var sr SolveResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					errs <- err
					return
				}
				var err error
				if req.Problem == ProblemMatching {
					err = sameMatching(&sr, wantMM[gi])
				} else {
					err = sameMIS(&sr, wantIS[gi])
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d req %d (%s, graph %d, par %d): %w", w, r, req.Problem, gi, par, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Completed == 0 || st.Failed != 0 || st.Rejected != 0 {
		t.Fatalf("unexpected stats after clean load: %+v", st)
	}
	if st.PreparedGraphs != len(graphs) {
		t.Fatalf("prepared %d graphs, want %d (inline re-uploads must dedup)", st.PreparedGraphs, len(graphs))
	}
	// Per-engine accounting must reconcile with the aggregates: every
	// admission landed on exactly one home queue, every dispatch was served,
	// and nothing is left queued after the barrier above.
	var accepted, served, queued int64
	for _, es := range st.PerEngine {
		accepted += es.Accepted
		served += es.Served
		queued += int64(es.Queued)
		if es.Rejected != 0 {
			t.Errorf("engine %d rejected %d under clean load", es.Engine, es.Rejected)
		}
	}
	if accepted != st.Accepted || served != st.Completed || queued != 0 {
		t.Fatalf("per-engine counters do not reconcile (accepted %d/%d, served %d/%d, queued %d): %+v",
			accepted, st.Accepted, served, st.Completed, queued, st.PerEngine)
	}
	if len(st.PerEngine) != 2 {
		t.Fatalf("status reports %d engines, want 2", len(st.PerEngine))
	}
}

// TestServeUploadDedup: identical content (any edge order) shares one
// prepared CSR and reports Shared on re-upload.
func TestServeUploadDedup(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g := mustGraph(t, "gnm", 128, 6, 7)

	first, err := s.Upload(wireGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if first.Shared {
		t.Fatal("first upload reported Shared")
	}
	// Reverse the edge order: same content, different wire bytes.
	u := wireGraph(g)
	for i, j := 0, len(u.Edges)-1; i < j; i, j = i+1, j-1 {
		u.Edges[i], u.Edges[j] = u.Edges[j], u.Edges[i]
	}
	second, err := s.Upload(u)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Shared || second.Fingerprint != first.Fingerprint {
		t.Fatalf("re-upload not deduplicated: %+v vs %+v", second, first)
	}
	if st := s.Stats(); st.PreparedGraphs != 1 || st.SharedUploads != 1 {
		t.Fatalf("stats after dedup: %+v", st)
	}

	// Bad uploads are 400s, not parses.
	if _, err := s.Upload(&GraphUpload{N: 4, Edges: [][2]int32{{0, 9}}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range edge: err = %v, want ErrBadRequest", err)
	}
}

// TestServeOverload fills a Workers=1/QueueDepth=1 server with a parked job
// and asserts the next request is rejected with repro.ErrOverloaded (HTTP
// 429) before touching any engine — and that the pooled solve state is
// uncorrupted afterwards (the post-overload solve is bit-identical to the
// direct reference).
func TestServeOverload(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g := mustGraph(t, "gnm", 256, 8, 1)

	// Park the only worker — wait until it has actually dequeued the job so
	// the depth-1 buffer is free — then fill the queue.
	block := make(chan struct{})
	started := make(chan struct{})
	parked, err := s.enqueue(0, func() { close(started); <-block }, func(error) {})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.enqueue(0, func() {}, func(error) {})
	if err != nil {
		t.Fatal(err)
	}

	req := &SolveRequest{Problem: ProblemMatching, Graph: wireGraph(g)}
	if _, err := s.Solve(context.Background(), req); !errors.Is(err, repro.ErrOverloaded) {
		t.Fatalf("overloaded Solve: err = %v, want repro.ErrOverloaded", err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded HTTP solve: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Status != http.StatusTooManyRequests {
		t.Fatalf("error envelope: %s (err %v)", body, err)
	}
	if st := s.Stats(); st.Rejected < 2 {
		t.Fatalf("rejected = %d, want >= 2", st.Rejected)
	}

	// Release the worker; service and pooled state must be intact.
	close(block)
	<-parked.done
	<-queued.done
	want, err := repro.NewEngine(nil).MaximalMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameMatching(got, want); err != nil {
		t.Fatalf("post-overload solve corrupted: %v", err)
	}
}

// TestServeDeadlineKeepsEngineWarm expires a request deadline mid-solve and
// asserts the taxonomy (repro.ErrDeadlineExceeded / HTTP 504) and the
// engine contract: the owning engine stays warm, so a direct re-solve on it
// is allocation-flat (same budget as the root package's warm-reuse tests;
// skipped under -race and -short like those).
func TestServeDeadlineKeepsEngineWarm(t *testing.T) {
	s := New(Config{
		Options: &repro.Options{Strategy: repro.StrategySparsify, Parallelism: 1, SkipCostTracking: true},
		Engines: 1,
		Workers: 1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g := mustGraph(t, "gnm", 2048, 8, 1)
	req := &SolveRequest{Problem: ProblemMatching, Graph: wireGraph(g)}

	// Warm the engine through the server path.
	if _, err := s.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	// A deadline the request cannot meet: the deadline clock starts at
	// admission and covers queue wait, so parking the only worker ahead of
	// the request guarantees expiry regardless of how fast the solve itself
	// has become (the engine sees an already-expired context and abandons
	// at its first cancellation poll; the scratch context goes back to the
	// pool Reset). PR 8 made the n=2048 sparsify solve fast enough to beat
	// a 2ms deadline outright, which is why this test parks instead of
	// racing the solver.
	park := func() {
		t.Helper()
		j, err := s.enqueue(0, func() { time.Sleep(50 * time.Millisecond) }, func(error) {})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { <-j.done })
	}
	expired := &SolveRequest{Problem: ProblemMatching, Fingerprint: repro.FingerprintOf(g).String(), TimeoutMS: 2}
	park()
	_, err := s.Solve(context.Background(), expired)
	if !errors.Is(err, repro.ErrDeadlineExceeded) || !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("expired solve: err = %v, want ErrDeadlineExceeded (refining ErrCanceled)", err)
	}
	park()
	httpResp, body := postJSON(t, ts.URL+"/v1/solve", expired)
	if httpResp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired HTTP solve: status %d, want 504 (%s)", httpResp.StatusCode, body)
	}
	if st := s.Stats(); st.Expired < 2 {
		t.Fatalf("expired = %d, want >= 2", st.Expired)
	}

	// The served path must still produce the reference bits.
	want, err := repro.NewEngine(&repro.Options{Strategy: repro.StrategySparsify, Parallelism: 1, SkipCostTracking: true}).MaximalMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameMatching(got, want); err != nil {
		t.Fatalf("post-deadline solve corrupted: %v", err)
	}

	if testing.Short() || raceEnabled {
		return // alloc budgets hold only without race instrumentation
	}
	// Alloc-flat re-solve after the canceled requests: the canceled solves'
	// scratch contexts were re-pooled Reset, so the warm budget of the root
	// package's TestEngineWarmReuseAllocsConstant still holds on the
	// engine that served them.
	eng := s.engines[0]
	const budget = 2200 // sparsify/mm warm budget (engine_test.go)
	warm := testing.AllocsPerRun(2, func() {
		if _, err := eng.MaximalMatching(g); err != nil {
			t.Fatal(err)
		}
	})
	if warm > budget {
		t.Errorf("post-deadline warm re-solve allocated %.0f objects, budget %d", warm, budget)
	}
}

// TestServeStreaming pins the streaming wire contract: NDJSON round lines
// in deterministic order — matching a direct observed solve event for event
// — followed by exactly one result line that matches the non-streaming
// response.
func TestServeStreaming(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g := mustGraph(t, "powerlaw", 384, 6, 3)

	// Direct observed reference solve.
	var direct []repro.RoundEvent
	ref := repro.NewEngine(nil)
	wantIS, err := ref.MaximalIndependentSetCtx(context.Background(), g,
		repro.WithObserver(observerFunc(func(ev repro.RoundEvent) { direct = append(direct, ev) })))
	if err != nil {
		t.Fatal(err)
	}

	buf, err := json.Marshal(&SolveRequest{Problem: ProblemMIS, Graph: wireGraph(g), Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("Content-Type %q, want NDJSON", ct)
	}

	var rounds []*RoundUpdate
	var final *StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "round":
			if final != nil {
				t.Fatal("round event after final line")
			}
			rounds = append(rounds, ev.Round)
		case "result", "error":
			final = &ev
		default:
			t.Fatalf("unknown stream event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final == nil || final.Type != "result" {
		t.Fatalf("stream ended with %+v, want result", final)
	}
	if err := sameMIS(final.Result, wantIS); err != nil {
		t.Fatalf("streamed result differs from direct solve: %v", err)
	}
	if len(rounds) != len(direct) {
		t.Fatalf("streamed %d rounds, direct observer saw %d", len(rounds), len(direct))
	}
	for i, ru := range rounds {
		want := roundUpdate(direct[i])
		a, _ := json.Marshal(ru)
		b, _ := json.Marshal(want)
		if !bytes.Equal(a, b) {
			t.Fatalf("round %d: streamed %s, want %s", i, a, b)
		}
	}
	if len(rounds) > 0 && len(rounds[0].SeedBatches) == 0 {
		t.Fatal("streamed rounds carry no seed-batch sub-events")
	}

	// Pre-stream failures are plain status responses, not NDJSON.
	bad, body := postJSON(t, ts.URL+"/v1/solve", &SolveRequest{Problem: "nope", Graph: wireGraph(g), Stream: true})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad streamed problem: status %d (%s)", bad.StatusCode, body)
	}
}

// TestHTTPStatusMapping pins the error taxonomy → status code table.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{fmt.Errorf("x: %w", repro.ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("%w: %w: %w", repro.ErrCanceled, repro.ErrDeadlineExceeded, context.DeadlineExceeded), http.StatusGatewayTimeout},
		{fmt.Errorf("%w: %w", repro.ErrCanceled, context.Canceled), 499},
		{fmt.Errorf("%w: junk", ErrBadRequest), http.StatusBadRequest},
		{repro.ErrUnknownStrategy, http.StatusBadRequest},
		{repro.ErrNilGraph, http.StatusBadRequest},
		{fmt.Errorf("%w: abc", ErrUnknownFingerprint), http.StatusNotFound},
		{ErrServerClosed, http.StatusServiceUnavailable},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestServeClose: shutdown drains queued-but-unstarted jobs with
// ErrServerClosed and rejects new work.
func TestServeClose(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	parked, err := s.enqueue(0, func() { <-block }, func(error) {})
	if err != nil {
		t.Fatal(err)
	}
	var abortErr error
	queued, err := s.enqueue(0, func() {}, func(e error) { abortErr = e })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		close(block) // let the parked job finish so Close's wg.Wait returns
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	<-parked.done
	<-queued.done
	if abortErr != nil && !errors.Is(abortErr, ErrServerClosed) {
		t.Fatalf("drained job error = %v, want ErrServerClosed or nil (ran before shutdown)", abortErr)
	}
	if _, err := s.enqueue(0, func() {}, func(error) {}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-Close enqueue: err = %v, want ErrServerClosed", err)
	}
	g := mustGraph(t, "path", 8, 2, 1)
	if _, err := s.Solve(context.Background(), &SolveRequest{Problem: ProblemMIS, Graph: wireGraph(g)}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-Close Solve: err = %v, want ErrServerClosed", err)
	}
}
