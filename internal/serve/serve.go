// Package serve is the warm-Engine serving layer behind cmd/detservd: one
// process multiplexing mixed matching/MIS traffic over a pool of warm
// repro.Engines, the deployment shape the ROADMAP's "one process, millions
// of requests" north star describes and PR 5's request-scoped API was built
// for.
//
// The layer adds exactly three things on top of the Engine contract, and
// changes nothing underneath it:
//
//   - Admission control, per engine. Every engine in the pool owns a
//     bounded queue (Config.QueueDepth each); a request whose home engine's
//     queue is full is rejected immediately with repro.ErrOverloaded
//     (HTTP 429) — it never touches an Engine, so overload can not corrupt
//     pooled solve state, and a hot fingerprint flooding one engine's queue
//     cannot reject (or delay) traffic for graphs that live on other
//     engines. A fixed worker pool (Config.Workers) drains the queues
//     through a deterministic deficit round-robin scheduler: engines are
//     visited in index order and an engine with a backlog is granted at
//     most schedQuantum consecutive dispatches while any other engine has
//     queued work, so a cold graph's short solve is dispatched after a
//     bounded number of scheduler turns no matter how deep a hot
//     fingerprint's backlog of long sparsify-strategy solves is.
//   - Per-request deadlines. timeout_ms (clamped by Config.MaxTimeout,
//     defaulted by Config.DefaultTimeout) becomes a context deadline that
//     the Engine polls at its existing round and seed-batch boundaries; an
//     expired request returns repro.ErrDeadlineExceeded (HTTP 504) and
//     leaves its engine warm, exactly like any canceled solve. The deadline
//     clock starts at admission, so time spent queued on the home engine
//     counts against the request's budget, never extends it.
//   - Content-addressed graphs. POST /v1/graphs parses an edge list once,
//     registers it via Engine.Prepare, and returns the content fingerprint;
//     solves may then name the graph by fingerprint instead of re-uploading
//     it. Identical uploads (any edge order) share one parsed CSR.
//
// Requests are routed to engines by graph fingerprint (fp mod engine
// count), so repeated traffic on the same graph lands on the same warm
// engine and prepared-graph cache; admission and overflow are decided on
// that same home queue. Streaming solves (stream: true) emit one NDJSON
// line per completed round over the deterministic observer seam, then a
// final result or error line; a client that disconnects mid-stream cancels
// its solve at the next round or seed-batch boundary and the abandoned
// solve's scratch context is Reset and re-pooled, keeping the engine warm.
//
// Determinism: the server never reorders or batches solve work — each
// request is one Engine solve with the request's own options — so served
// results are bit-identical to calling the Engine directly with the same
// graph and options, which is pinned by the tests in this package.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Problem names accepted by SolveRequest.Problem.
const (
	ProblemMatching = "matching"
	ProblemMIS      = "mis"
)

// Errors introduced by the serving layer itself. Solve-path errors from the
// Engine (repro.ErrCanceled, repro.ErrDeadlineExceeded, ...) pass through
// unwrapped; HTTPStatus maps the union onto status codes.
var (
	// ErrBadRequest marks a malformed or invalid request (unknown problem,
	// out-of-range option, bad edge list); HTTP 400.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrUnknownFingerprint marks a solve-by-fingerprint request naming a
	// graph that was never uploaded (or was evicted); HTTP 404.
	ErrUnknownFingerprint = errors.New("serve: unknown graph fingerprint")
	// ErrServerClosed marks a request caught by shutdown; HTTP 503.
	ErrServerClosed = errors.New("serve: server closed")
)

// Config sizes a Server. The zero value serves with one engine, one worker
// per logical CPU, a queue of 64 and no default deadline.
type Config struct {
	// Options is the base solver configuration every engine is built with;
	// nil means repro defaults. Per-request options layer on top exactly as
	// repro.SolveOption does.
	Options *repro.Options
	// Engines is the number of warm engines in the pool (default 1).
	// Requests route by graph fingerprint mod Engines, so traffic on one
	// graph always hits the same warm engine and prepared-graph cache.
	Engines int
	// Workers is the number of concurrent solves (default GOMAXPROCS). The
	// pool is shared: workers drain all engine queues through the deficit
	// round-robin scheduler.
	Workers int
	// QueueDepth bounds each engine's admission queue holding accepted-but-
	// not-yet-running requests (default 64 per engine). A full home queue
	// rejects with repro.ErrOverloaded; other engines' queues are
	// unaffected.
	QueueDepth int
	// DefaultTimeout applies to requests that carry no timeout_ms; 0 means
	// no deadline.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every request deadline (including requests with no
	// timeout at all, which makes it a hard per-request ceiling); 0 means
	// no clamp.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 64 MiB).
	MaxBodyBytes int64
}

// job is one admitted unit of work: run executes on a worker; abort is
// invoked instead if shutdown drains the job before a worker picks it up.
// done closes after whichever of the two ran. engine is the index of the
// home engine whose queue admitted the job.
type job struct {
	engine int
	run    func()
	abort  func(error)
	done   chan struct{}
}

// schedQuantum is the deficit round-robin grant: the number of consecutive
// dispatches one engine's queue may take while any other engine has queued
// work. A grant above 1 keeps a small amount of dispatch affinity for a
// backlogged engine (its prepared cache and scratch stay hot) while still
// bounding how long any other engine's head-of-queue request can wait: a
// job that is at position k of its engine's queue is dispatched after at
// most k + schedQuantum·(Engines-1)·k scheduler turns, independent of how
// deep the other queues are.
const schedQuantum = 2

// engineQueue is one engine's admission queue plus its counters; all fields
// are guarded by Server.mu.
type engineQueue struct {
	jobs     []*job // FIFO of admitted-but-not-started work
	accepted int64
	rejected int64
	served   int64 // jobs a worker ran to completion (any outcome)
}

// Server multiplexes solve traffic over warm engines. Construct with New,
// serve HTTP through Handler, and stop with Close. The in-process entry
// points (Solve, Upload) are the same paths the HTTP handlers use — tests
// drive them directly to compare served results against direct Engine
// calls.
type Server struct {
	cfg     Config
	engines []*repro.Engine

	// Scheduler state: per-engine queues drained by the worker pool in
	// deficit round-robin order. mu guards queues, cursor, deficit and
	// closed; cond wakes idle workers on enqueue and Close.
	mu      sync.Mutex
	cond    *sync.Cond
	queues  []*engineQueue
	cursor  int // engine the scheduler is currently serving
	deficit int // dispatches the cursor engine may still take this turn
	closed  bool

	wg        sync.WaitGroup
	closeOnce sync.Once

	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	canceled  atomic.Int64
	expired   atomic.Int64
	failed    atomic.Int64
	uploads   atomic.Int64
	shared    atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Engines <= 0 {
		cfg.Engines = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{cfg: cfg}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Engines; i++ {
		s.engines = append(s.engines, repro.NewEngine(cfg.Options))
		s.queues = append(s.queues, &engineQueue{})
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool: in-flight solves run to completion, then
// every engine queue is drained — jobs that never started fail with
// ErrServerClosed. Safe to call twice.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
	})
	s.wg.Wait()
	s.mu.Lock()
	var drained []*job
	for _, q := range s.queues {
		drained = append(drained, q.jobs...)
		q.jobs = nil
	}
	s.mu.Unlock()
	for _, j := range drained {
		j.abort(ErrServerClosed)
		close(j.done)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.nextJob()
		if !ok {
			return
		}
		j.run()
		s.mu.Lock()
		s.queues[j.engine].served++
		s.mu.Unlock()
		close(j.done)
	}
}

// nextJob blocks until the scheduler hands this worker a job, or returns
// ok=false once the server is closed (queued jobs are then drained by
// Close, not by workers).
func (s *Server) nextJob() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, false
		}
		if j, ok := s.pickLocked(); ok {
			return j, true
		}
		s.cond.Wait()
	}
}

// pickLocked is the deficit round-robin dispatch decision: starting at the
// cursor engine, the first non-empty queue is served. Entering a queue
// grants it schedQuantum dispatches; each dispatch spends one, and the
// cursor moves on when the grant is spent or the queue empties. The walk
// order depends only on engine index and the grant counter, so for any
// fixed arrival order the dispatch order is deterministic — and no engine's
// head-of-queue job ever waits more than schedQuantum dispatches per
// backlogged sibling engine.
func (s *Server) pickLocked() (*job, bool) {
	n := len(s.queues)
	for scanned := 0; scanned < n; scanned++ {
		q := s.queues[s.cursor]
		if len(q.jobs) == 0 {
			s.cursor = (s.cursor + 1) % n
			s.deficit = 0
			continue
		}
		if s.deficit <= 0 {
			s.deficit = schedQuantum
		}
		j := q.jobs[0]
		q.jobs[0] = nil // release the reference before reslicing
		q.jobs = q.jobs[1:]
		s.deficit--
		if s.deficit == 0 || len(q.jobs) == 0 {
			s.cursor = (s.cursor + 1) % n
			s.deficit = 0
		}
		return j, true
	}
	return nil, false
}

// enqueue admits a job onto its home engine's queue or rejects it without
// blocking: ErrServerClosed after Close, repro.ErrOverloaded when that
// engine's queue is full (other engines' queues are not consulted — a hot
// engine's overflow never spills onto a cold one). The caller waits on the
// returned job's done channel (always closed eventually: by the worker
// that ran it or by Close's drain).
func (s *Server) enqueue(engine int, run func(), abort func(error)) (*job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	q := s.queues[engine]
	if len(q.jobs) >= s.cfg.QueueDepth {
		q.rejected++
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w: engine %d admission queue full (depth %d)", repro.ErrOverloaded, engine, s.cfg.QueueDepth)
	}
	j := &job{engine: engine, run: run, abort: abort, done: make(chan struct{})}
	q.jobs = append(q.jobs, j)
	q.accepted++
	s.mu.Unlock()
	s.accepted.Add(1)
	s.cond.Signal()
	return j, nil
}

// engineIndex routes a fingerprint to its home engine's index.
func (s *Server) engineIndex(fp repro.Fingerprint) int {
	return int(uint64(fp) % uint64(len(s.engines)))
}

// engineFor routes a fingerprint to its home engine.
func (s *Server) engineFor(fp repro.Fingerprint) *repro.Engine {
	return s.engines[s.engineIndex(fp)]
}

// GraphUpload is the wire form of a graph: n nodes and an undirected edge
// list (duplicates and self loops are dropped, exactly like
// repro.FromEdges).
type GraphUpload struct {
	N     int        `json:"n"`
	Edges [][2]int32 `json:"edges"`
}

func (u *GraphUpload) build() (*repro.Graph, error) {
	if u.N < 0 {
		return nil, fmt.Errorf("%w: negative node count %d", ErrBadRequest, u.N)
	}
	edges := make([]repro.Edge, len(u.Edges))
	for i, e := range u.Edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= u.N || int(e[1]) >= u.N {
			return nil, fmt.Errorf("%w: edge %d = (%d,%d) out of range [0,%d)", ErrBadRequest, i, e[0], e[1], u.N)
		}
		edges[i] = repro.Edge{U: repro.NodeID(e[0]), V: repro.NodeID(e[1])}
	}
	return repro.FromEdges(u.N, edges), nil
}

// UploadResponse names the registered graph.
type UploadResponse struct {
	Fingerprint string `json:"fingerprint"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	// Shared reports a dedup hit: this content was already prepared, and
	// the upload's parse was dropped in favour of the cached CSR.
	Shared bool `json:"shared"`
}

// Upload registers a graph and returns its fingerprint; the in-process form
// of POST /v1/graphs.
func (s *Server) Upload(u *GraphUpload) (*UploadResponse, error) {
	if u == nil {
		return nil, fmt.Errorf("%w: missing graph", ErrBadRequest)
	}
	g, err := u.build()
	if err != nil {
		return nil, err
	}
	fp := repro.FingerprintOf(g)
	eng := s.engineFor(fp)
	_, hit := eng.Prepared(fp)
	pg, err := eng.Prepare(g)
	if err != nil {
		return nil, err
	}
	s.uploads.Add(1)
	if hit {
		s.shared.Add(1)
	}
	return &UploadResponse{
		Fingerprint: pg.Fingerprint().String(),
		N:           pg.N(),
		M:           pg.M(),
		Shared:      hit,
	}, nil
}

// SolveOptions is the wire form of per-request solver overrides; zero/nil
// fields inherit the server's base Options.
type SolveOptions struct {
	Strategy      string  `json:"strategy,omitempty"`
	Parallelism   *int    `json:"parallelism,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Slack         float64 `json:"slack,omitempty"`
	ThresholdFrac float64 `json:"threshold_frac,omitempty"`
	CostTracking  *bool   `json:"cost_tracking,omitempty"`
}

// solveOptions converts to repro.SolveOption, validating ranges that the
// core layer treats as programmer error (panics) into 400s.
func (o *SolveOptions) solveOptions() ([]repro.SolveOption, error) {
	if o == nil {
		return nil, nil
	}
	var opts []repro.SolveOption
	if o.Strategy != "" {
		// Unknown names surface as repro.ErrUnknownStrategy from the solve.
		opts = append(opts, repro.WithStrategy(repro.Strategy(o.Strategy)))
	}
	if o.Parallelism != nil {
		if *o.Parallelism < 0 {
			return nil, fmt.Errorf("%w: parallelism %d out of range", ErrBadRequest, *o.Parallelism)
		}
		opts = append(opts, repro.WithParallelism(*o.Parallelism))
	}
	if o.Epsilon != 0 {
		if o.Epsilon < 0 || o.Epsilon > 1 {
			return nil, fmt.Errorf("%w: epsilon %v outside (0,1]", ErrBadRequest, o.Epsilon)
		}
		opts = append(opts, repro.WithEpsilon(o.Epsilon))
	}
	if o.Slack != 0 {
		if o.Slack < 0 {
			return nil, fmt.Errorf("%w: slack %v must be positive", ErrBadRequest, o.Slack)
		}
		opts = append(opts, repro.WithSlack(o.Slack))
	}
	if o.ThresholdFrac != 0 {
		if o.ThresholdFrac < 0 || o.ThresholdFrac > 1 {
			return nil, fmt.Errorf("%w: threshold_frac %v outside (0,1]", ErrBadRequest, o.ThresholdFrac)
		}
		opts = append(opts, repro.WithThresholdFrac(o.ThresholdFrac))
	}
	if o.CostTracking != nil {
		opts = append(opts, repro.WithCostTracking(*o.CostTracking))
	}
	return opts, nil
}

// SolveRequest is one solve: a problem, a graph (inline or by fingerprint),
// optional per-request solver options, an optional deadline, and the
// streaming flag (HTTP only).
type SolveRequest struct {
	Problem     string        `json:"problem"`
	Graph       *GraphUpload  `json:"graph,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Options     *SolveOptions `json:"options,omitempty"`
	TimeoutMS   int64         `json:"timeout_ms,omitempty"`
	Stream      bool          `json:"stream,omitempty"`
}

// SolveResponse is a completed solve. Edges is set for matching, Nodes for
// MIS; Costs mirrors repro.CostReport when cost tracking was on.
type SolveResponse struct {
	Problem     string            `json:"problem"`
	Fingerprint string            `json:"fingerprint"`
	Strategy    string            `json:"strategy"`
	Iterations  int               `json:"iterations"`
	Edges       [][2]int32        `json:"edges,omitempty"`
	Nodes       []int32           `json:"nodes,omitempty"`
	Costs       *repro.CostReport `json:"costs,omitempty"`
	DurationMS  float64           `json:"duration_ms"`
}

// prepared resolves the request's graph to a PreparedGraph: inline graphs
// are registered (sharing any previously uploaded identical content),
// fingerprints are looked up on their home engine.
func (s *Server) prepared(req *SolveRequest) (*repro.PreparedGraph, error) {
	switch {
	case req.Graph != nil:
		g, err := req.Graph.build()
		if err != nil {
			return nil, err
		}
		return s.engineFor(repro.FingerprintOf(g)).Prepare(g)
	case req.Fingerprint != "":
		fp, err := repro.ParseFingerprint(req.Fingerprint)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		pg, ok := s.engineFor(fp).Prepared(fp)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownFingerprint, req.Fingerprint)
		}
		return pg, nil
	default:
		return nil, fmt.Errorf("%w: request needs graph or fingerprint", ErrBadRequest)
	}
}

// requestContext applies the request's deadline policy. The deadline covers
// queue wait as well as solve time: an admission backlog eats into the
// request's budget, it does not extend it.
func (s *Server) requestContext(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// runSolve executes one admitted solve on its prepared graph. It runs on a
// worker goroutine; obs (streaming only) receives the observer events.
func (s *Server) runSolve(ctx context.Context, pg *repro.PreparedGraph, problem string, opts []repro.SolveOption, obs repro.Observer) (*SolveResponse, error) {
	if obs != nil {
		opts = append(opts, repro.WithObserver(obs))
	}
	start := time.Now()
	resp := &SolveResponse{Problem: problem, Fingerprint: pg.Fingerprint().String()}
	switch problem {
	case ProblemMatching:
		res, err := pg.MaximalMatchingCtx(ctx, opts...)
		if err != nil {
			return nil, err
		}
		resp.Strategy = string(res.Strategy)
		resp.Iterations = res.Iterations
		resp.Costs = res.Costs
		resp.Edges = make([][2]int32, len(res.Edges))
		for i, e := range res.Edges {
			resp.Edges[i] = [2]int32{int32(e.U), int32(e.V)}
		}
	case ProblemMIS:
		res, err := pg.MaximalIndependentSetCtx(ctx, opts...)
		if err != nil {
			return nil, err
		}
		resp.Strategy = string(res.Strategy)
		resp.Iterations = res.Iterations
		resp.Costs = res.Costs
		resp.Nodes = make([]int32, len(res.Nodes))
		for i, v := range res.Nodes {
			resp.Nodes[i] = int32(v)
		}
	}
	resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// validate front-loads the request checks shared by both solve paths, so
// admission control only ever queues runnable work.
func (s *Server) validate(req *SolveRequest) (*repro.PreparedGraph, []repro.SolveOption, error) {
	if req.Problem != ProblemMatching && req.Problem != ProblemMIS {
		return nil, nil, fmt.Errorf("%w: unknown problem %q", ErrBadRequest, req.Problem)
	}
	pg, err := s.prepared(req)
	if err != nil {
		return nil, nil, err
	}
	opts, err := req.Options.solveOptions()
	if err != nil {
		return nil, nil, err
	}
	return pg, opts, nil
}

// record classifies a finished solve for /v1/stats.
func (s *Server) record(err error) {
	switch {
	case err == nil:
		s.completed.Add(1)
	case errors.Is(err, repro.ErrDeadlineExceeded):
		s.expired.Add(1)
	case errors.Is(err, repro.ErrCanceled):
		s.canceled.Add(1)
	default:
		s.failed.Add(1)
	}
}

// Solve runs one request through admission control and a pooled worker,
// blocking until it finishes; the in-process form of POST /v1/solve (minus
// streaming). Errors: repro.ErrOverloaded (queue full),
// repro.ErrDeadlineExceeded / repro.ErrCanceled (deadline or caller
// cancellation, at round/seed-batch boundaries), ErrBadRequest,
// ErrUnknownFingerprint, ErrServerClosed, or solve-path errors verbatim.
func (s *Server) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	pg, opts, err := s.validate(req)
	if err != nil {
		return nil, err
	}
	sctx, cancel := s.requestContext(ctx, req.TimeoutMS)
	defer cancel()
	var resp *SolveResponse
	var serr error
	j, err := s.enqueue(s.engineIndex(pg.Fingerprint()), func() {
		resp, serr = s.runSolve(sctx, pg, req.Problem, opts, nil)
	}, func(e error) { serr = e })
	if err != nil {
		return nil, err
	}
	<-j.done
	s.record(serr)
	if serr != nil {
		return nil, serr
	}
	return resp, nil
}

// EngineStats is one engine's slice of the /v1/status snapshot: its queue
// occupancy and per-engine admission counters. Served counts jobs a worker
// ran to completion regardless of outcome (completed, canceled, expired or
// failed solves all count — the engine did the work).
type EngineStats struct {
	Engine         int   `json:"engine"`
	QueueDepth     int   `json:"queue_depth"`
	Queued         int   `json:"queued"`
	Accepted       int64 `json:"accepted"`
	Rejected       int64 `json:"rejected"`
	Served         int64 `json:"served"`
	PreparedGraphs int   `json:"prepared_graphs"`
}

// Stats is the /v1/status (and /v1/stats) snapshot. The top-level counters
// aggregate across engines; PerEngine breaks admission down by home engine,
// which is where it is decided — QueueDepth and Queued are per-engine
// quantities, the top-level fields report the per-engine depth and the
// total occupancy.
type Stats struct {
	Engines        int           `json:"engines"`
	Workers        int           `json:"workers"`
	QueueDepth     int           `json:"queue_depth"`
	Queued         int           `json:"queued"`
	Accepted       int64         `json:"accepted"`
	Rejected       int64         `json:"rejected"`
	Completed      int64         `json:"completed"`
	Canceled       int64         `json:"canceled"`
	Expired        int64         `json:"expired"`
	Failed         int64         `json:"failed"`
	Uploads        int64         `json:"uploads"`
	SharedUploads  int64         `json:"shared_uploads"`
	PreparedGraphs int           `json:"prepared_graphs"`
	PerEngine      []EngineStats `json:"per_engine"`
}

// Stats returns current counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Engines:       len(s.engines),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Accepted:      s.accepted.Load(),
		Rejected:      s.rejected.Load(),
		Completed:     s.completed.Load(),
		Canceled:      s.canceled.Load(),
		Expired:       s.expired.Load(),
		Failed:        s.failed.Load(),
		Uploads:       s.uploads.Load(),
		SharedUploads: s.shared.Load(),
	}
	s.mu.Lock()
	for i, q := range s.queues {
		st.PerEngine = append(st.PerEngine, EngineStats{
			Engine:     i,
			QueueDepth: s.cfg.QueueDepth,
			Queued:     len(q.jobs),
			Accepted:   q.accepted,
			Rejected:   q.rejected,
			Served:     q.served,
		})
		st.Queued += len(q.jobs)
	}
	s.mu.Unlock()
	for i, e := range s.engines {
		n := e.PreparedCount()
		st.PerEngine[i].PreparedGraphs = n
		st.PreparedGraphs += n
	}
	return st
}

// HTTPStatus maps the serving error taxonomy onto status codes: 429
// overloaded, 504 deadline expired, 499 (nginx convention) client
// cancellation, 400 bad request / unknown strategy, 404 unknown
// fingerprint, 503 shutdown, 500 anything else.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, repro.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, repro.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, repro.ErrCanceled):
		return 499 // client closed request
	case errors.Is(err, ErrBadRequest), errors.Is(err, repro.ErrUnknownStrategy), errors.Is(err, repro.ErrNilGraph):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownFingerprint):
		return http.StatusNotFound
	case errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := HTTPStatus(err)
	writeJSON(w, status, errorBody{Error: err.Error(), Status: status})
}

// Handler returns the HTTP surface:
//
//	GET  /healthz     liveness
//	GET  /v1/status   counters incl. per-engine queue state (Stats)
//	GET  /v1/stats    alias of /v1/status (the pre-fairness name)
//	POST /v1/graphs   upload a graph, get its fingerprint (UploadResponse)
//	POST /v1/solve    run a solve (SolveRequest → SolveResponse);
//	                  stream: true switches to NDJSON round events
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	status := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	}
	mux.HandleFunc("GET /v1/status", status)
	mux.HandleFunc("GET /v1/stats", status)
	mux.HandleFunc("POST /v1/graphs", s.handleUpload)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	return mux
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Drain the body to EOF. json.Decoder stops at the end of the JSON
	// value, and net/http only starts the connection's background read —
	// the mechanism that cancels r.Context() when the client disconnects —
	// once the request body has been consumed. Without this drain an
	// abandoned streaming solve would never see its context canceled and
	// would burn a worker until the solve finished on its own. Bounded by
	// MaxBytesReader above.
	_, _ = io.Copy(io.Discard, body)
	return nil
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var u GraphUpload
	if err := s.decode(w, r, &u); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.Upload(&u)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Stream {
		s.streamSolve(w, r, &req)
		return
	}
	resp, err := s.Solve(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// RoundUpdate is the wire form of one observer round event, including the
// seed-batch sub-events and incremental cost counters of this PR's observer
// extension.
type RoundUpdate struct {
	Algorithm  string `json:"algorithm"`
	Strategy   string `json:"strategy"`
	Round      int    `json:"round"`
	LiveNodes  int    `json:"live_nodes"`
	LiveEdges  int    `json:"live_edges"`
	SeedsTried int    `json:"seeds_tried"`
	SeedFound  bool   `json:"seed_found"`
	Selected   int    `json:"selected"`

	SeedBatches []SeedBatchUpdate `json:"seed_batches,omitempty"`

	CostRounds           int `json:"cost_rounds,omitempty"`
	CostSeedBatches      int `json:"cost_seed_batches,omitempty"`
	CostPeakMachineWords int `json:"cost_peak_machine_words,omitempty"`
}

// SeedBatchUpdate is the wire form of repro.SeedBatchStat.
type SeedBatchUpdate struct {
	Batch      int   `json:"batch"`
	Seeds      int   `json:"seeds"`
	SeedsTried int   `json:"seeds_tried"`
	BestValue  int64 `json:"best_value"`
	Found      bool  `json:"found"`
}

func roundUpdate(ev repro.RoundEvent) *RoundUpdate {
	ru := &RoundUpdate{
		Algorithm:            ev.Algorithm,
		Strategy:             ev.Strategy,
		Round:                ev.Round,
		LiveNodes:            ev.LiveNodes,
		LiveEdges:            ev.LiveEdges,
		SeedsTried:           ev.SeedsTried,
		SeedFound:            ev.SeedFound,
		Selected:             ev.Selected,
		CostRounds:           ev.CostRounds,
		CostSeedBatches:      ev.CostSeedBatches,
		CostPeakMachineWords: ev.CostPeakMachineWords,
	}
	for _, b := range ev.Batches {
		ru.SeedBatches = append(ru.SeedBatches, SeedBatchUpdate(b))
	}
	return ru
}

// StreamEvent is one NDJSON line of a streaming solve: zero or more
// {"type":"round"} lines in deterministic round order, then exactly one
// {"type":"result"} or {"type":"error"} line.
type StreamEvent struct {
	Type   string         `json:"type"`
	Round  *RoundUpdate   `json:"round,omitempty"`
	Result *SolveResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
	Status int            `json:"status,omitempty"`
}

// observerFunc adapts a closure to repro.Observer.
type observerFunc func(repro.RoundEvent)

func (f observerFunc) OnRound(ev repro.RoundEvent) { f(ev) }

// streamSolve runs a solve with an observer forwarding each round event to
// the client as an NDJSON line. Admission errors (overload, bad request)
// are rejected with their status before any body bytes; once streaming has
// started, a failure arrives as the final {"type":"error"} line. The event
// channel is drained unconditionally until the solve closes it, so a slow
// or disconnected client can stall delivery but never deadlock a worker.
//
// Client disconnects must not burn a worker for the rest of the solve: the
// solve context is a child of r.Context() (which net/http cancels when the
// connection drops), so an abandoned stream cancels its solve at the next
// round or seed-batch boundary — the cancel path discards the partial
// result and re-pools the engine's scratch context Reset, exactly like a
// deadline expiry. cancel is also wired to the disconnect explicitly below
// so the guarantee does not depend on the handler context's parentage, and
// the drain loop stops encoding once the client is gone (the writes could
// only fail).
func (s *Server) streamSolve(w http.ResponseWriter, r *http.Request, req *SolveRequest) {
	pg, opts, err := s.validate(req)
	if err != nil {
		writeError(w, err)
		return
	}
	sctx, cancel := s.requestContext(r.Context(), req.TimeoutMS)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	// Unbuffered on purpose: each observer event hands off directly to the
	// writer goroutine, so round lines reach the client as rounds finish
	// even on a single-core box where a CPU-bound solve would otherwise
	// starve the writer until it blocks. The drain loop below consumes
	// until close, so the worker can never deadlock on a send; the abort
	// path closes the channel without sending.
	events := make(chan repro.RoundEvent)
	var resp *SolveResponse
	var serr error
	j, err := s.enqueue(s.engineIndex(pg.Fingerprint()), func() {
		resp, serr = s.runSolve(sctx, pg, req.Problem, opts, observerFunc(func(ev repro.RoundEvent) {
			events <- ev
		}))
		close(events)
	}, func(e error) {
		serr = e
		close(events)
	})
	if err != nil {
		writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	clientGone := r.Context().Done()
	gone := false
	for ev := range events {
		if !gone {
			select {
			case <-clientGone:
				gone = true // keep draining, stop encoding
			default:
				_ = enc.Encode(StreamEvent{Type: "round", Round: roundUpdate(ev)})
				if fl != nil {
					fl.Flush()
				}
			}
		}
	}
	<-j.done
	s.record(serr)
	if serr != nil {
		_ = enc.Encode(StreamEvent{Type: "error", Error: serr.Error(), Status: HTTPStatus(serr)})
	} else {
		_ = enc.Encode(StreamEvent{Type: "result", Result: resp})
	}
	if fl != nil {
		fl.Flush()
	}
}
