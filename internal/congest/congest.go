// Package congest carries the paper's closing remark — "we expect our
// method of derandomizing the sampling of a low-degree graph ... will prove
// useful for derandomizing many more problems in low space or limited
// bandwidth models (e.g., the CONGEST model)" — into code: a deterministic
// Luby MIS in the CONGEST model.
//
// CONGEST: the communication network IS the input graph; per round every
// edge carries one O(log n)-bit message in each direction. The
// derandomization engine transfers directly:
//
//   - nodes learn their neighbours' colours once (distance-2 colouring via
//     Linial, so z-values of 2-hop-distinct nodes are independent under a
//     pairwise family over colours — the Section 5.1 trick);
//   - each phase, every node evaluates a batch of candidate O(log Δ)-bit
//     seeds on its 1-hop view (its own removal indicator, weighted by
//     degree — the Luby progress objective);
//   - the per-seed objective vectors are convergecast up a BFS spanning
//     tree (O(D) rounds, one vector entry per message), the root elects
//     the first maximum and broadcasts it back (O(D) rounds);
//   - the elected seed drives the usual Luby step: local minima join, the
//     closed neighbourhood leaves.
//
// Rounds: O((D + batch) · log n_phases) in the simulator's accounting —
// per phase one convergecast/broadcast of the batch vector plus O(1) local
// steps. Disconnected graphs elect seeds per component (each component has
// its own tree), which only helps.
package congest

import (
	"repro/internal/check"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashfam"
)

// PhaseStats records one derandomized CONGEST phase.
type PhaseStats struct {
	Phase       int
	EdgesBefore int
	EdgesAfter  int
	Selected    int
	SeedIndex   int
}

// Result is the outcome of the deterministic CONGEST MIS.
type Result struct {
	IndependentSet []graph.NodeID
	Phases         []PhaseStats
	Colors         int
	TreeDepth      int // max BFS depth over components (the D in O(D))
	Rounds         int // charged CONGEST rounds
	BatchSize      int
}

// DetMIS runs the deterministic Luby MIS in the CONGEST model on g.
// batch is the number of candidate seeds voted on per phase (seeds are
// O(log Δ) bits over the colour space, so a batch fits in O(batch) messages
// per tree edge).
func DetMIS(g *graph.Graph, p core.Params, batch int) *Result {
	p.Validate()
	if batch < 1 {
		batch = 16
	}
	n := g.N()
	res := &Result{BatchSize: batch}
	if n == 0 {
		return res
	}

	// Preprocessing: distance-2 colouring (O(log* n) rounds; each Linial
	// iteration exchanges colours over edges) and BFS trees per component.
	col := coloring.LinialG2(g, nil)
	res.Colors = col.NumColors
	res.Rounds += col.Rounds + 1

	comp, numComp := g.ConnectedComponents()
	depth := bfsMaxDepth(g, comp, numComp)
	res.TreeDepth = depth

	minField := uint64(col.NumColors)
	if minField < 4 {
		minField = 4
	}
	fam := hashfam.New(minField, 2)
	seeds := make([][]uint64, 0, batch)
	enum := fam.Enumerate()
	for len(seeds) < batch && enum.Next() {
		seeds = append(seeds, append([]uint64(nil), enum.Seed()...))
	}

	cur := g
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	inMIS := make([]bool, n)

	for phase := 1; ; phase++ {
		for v := 0; v < n; v++ {
			if alive[v] && cur.Degree(graph.NodeID(v)) == 0 {
				inMIS[v] = true
				alive[v] = false
			}
		}
		if cur.M() == 0 {
			break
		}
		st := PhaseStats{Phase: phase, EdgesBefore: cur.M()}

		// Per-component, per-seed objective: Σ_v d(v)·1{v local min}
		// (computable from the 1-hop view: a node knows its neighbours'
		// colours, hence all z-values it must compare against).
		scores := make([][]int64, numComp)
		for c := range scores {
			scores[c] = make([]int64, len(seeds))
		}
		for si, seed := range seeds {
			z := func(v graph.NodeID) uint64 { return fam.Eval(seed, uint64(col.Colors[v])) }
			ih := core.LocalMinNodes(cur, alive, z)
			for _, v := range ih {
				scores[comp[v]][si] += int64(cur.Degree(v))
			}
		}
		// Convergecast + broadcast: O(D + batch) rounds with pipelining
		// (one vector entry per tree edge per round).
		res.Rounds += 2*depth + batch

		// Each component elects its first-maximum seed and applies it.
		elected := make([]int, numComp)
		for c := range elected {
			best := 0
			for si, s := range scores[c] {
				if s > scores[c][best] {
					best = si
				}
			}
			elected[c] = best
		}
		st.SeedIndex = elected[0]

		remove := make([]bool, n)
		for c := 0; c < numComp; c++ {
			seed := seeds[elected[c]]
			z := func(v graph.NodeID) uint64 { return fam.Eval(seed, uint64(col.Colors[v])) }
			ih := core.LocalMinNodes(cur, alive, z)
			for _, v := range ih {
				if comp[v] != c {
					continue
				}
				inMIS[v] = true
				alive[v] = false
				remove[v] = true
				st.Selected++
			}
		}
		for v := 0; v < n; v++ {
			if !remove[v] || !inMIS[v] {
				continue
			}
			for _, u := range cur.Neighbors(graph.NodeID(v)) {
				if alive[u] {
					alive[u] = false
					remove[u] = true
				}
			}
		}
		res.Rounds += 2 // join/leave notifications over graph edges
		cur = cur.WithoutNodes(remove)
		st.EdgesAfter = cur.M()
		res.Phases = append(res.Phases, st)
	}

	for v := 0; v < n; v++ {
		if inMIS[v] {
			res.IndependentSet = append(res.IndependentSet, graph.NodeID(v))
		}
	}
	if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
		panic("congest: invalid MIS: " + reason)
	}
	return res
}

// bfsMaxDepth returns the maximum BFS-tree depth over components, rooting
// each component at its smallest node id.
func bfsMaxDepth(g *graph.Graph, comp []int, numComp int) int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	rootSeen := make([]bool, numComp)
	maxDepth := 0
	var queue []graph.NodeID
	for v := 0; v < n; v++ {
		c := comp[v]
		if rootSeen[c] {
			continue
		}
		rootSeen[c] = true
		dist[v] = 0
		queue = append(queue[:0], graph.NodeID(v))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if dist[w] == -1 {
					dist[w] = dist[u] + 1
					if dist[w] > maxDepth {
						maxDepth = dist[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
	return maxDepth
}
