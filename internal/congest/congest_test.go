package congest

import (
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func params() core.Params { return core.DefaultParams() }

func TestDetMISMaximalOnFixtures(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"empty": graph.Empty(6),
		"path":  gen.Path(60),
		"cycle": gen.Cycle(61),
		"grid":  gen.Grid2D(10, 12),
		"tree":  gen.RandomTree(200, 2),
		"reg6":  gen.RandomRegular(300, 6, 3),
	} {
		res := DetMIS(g, params(), 16)
		if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
			t.Errorf("%s: %s", name, reason)
		}
	}
}

func TestDetMISDeterministic(t *testing.T) {
	g := gen.RandomRegular(200, 4, 7)
	a, b := DetMIS(g, params(), 8), DetMIS(g, params(), 8)
	if len(a.IndependentSet) != len(b.IndependentSet) || a.Rounds != b.Rounds {
		t.Fatal("nondeterministic CONGEST MIS")
	}
	for i := range a.IndependentSet {
		if a.IndependentSet[i] != b.IndependentSet[i] {
			t.Fatal("nondeterministic CONGEST MIS")
		}
	}
}

func TestRoundsScaleWithDiameter(t *testing.T) {
	// A path has D = n-1; a bounded-diameter regular graph is much
	// shallower. The per-phase O(D) convergecast must show up in rounds.
	longPath := DetMIS(gen.Path(400), params(), 8)
	expander := DetMIS(gen.RandomRegular(400, 8, 5), params(), 8)
	if longPath.TreeDepth <= expander.TreeDepth {
		t.Fatalf("depths: path %d, expander %d", longPath.TreeDepth, expander.TreeDepth)
	}
	perPhasePath := float64(longPath.Rounds) / float64(len(longPath.Phases)+1)
	perPhaseExp := float64(expander.Rounds) / float64(len(expander.Phases)+1)
	if perPhasePath <= perPhaseExp {
		t.Errorf("per-phase rounds: path %.1f <= expander %.1f despite larger D",
			perPhasePath, perPhaseExp)
	}
}

func TestDisconnectedComponentsElectIndependently(t *testing.T) {
	// Two components; both must be solved, and per-component election must
	// not deadlock on the absent global tree.
	b := graph.NewBuilder(40)
	for v := 0; v+1 < 20; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	for v := 20; v+1 < 40; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	g := b.Build()
	res := DetMIS(g, params(), 8)
	if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
		t.Fatal(reason)
	}
	left, right := 0, 0
	for _, v := range res.IndependentSet {
		if v < 20 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Errorf("component uncovered: left=%d right=%d", left, right)
	}
}

func TestPhasesBoundedAndProgress(t *testing.T) {
	g := gen.RandomRegular(512, 6, 9)
	res := DetMIS(g, params(), 16)
	if len(res.Phases) > 40 {
		t.Errorf("too many phases: %d", len(res.Phases))
	}
	for _, ph := range res.Phases {
		if ph.EdgesAfter >= ph.EdgesBefore {
			t.Fatalf("phase %d no progress", ph.Phase)
		}
	}
}

func TestBatchDefaulting(t *testing.T) {
	g := gen.Grid2D(5, 5)
	res := DetMIS(g, params(), 0)
	if res.BatchSize != 16 {
		t.Errorf("batch defaulted to %d", res.BatchSize)
	}
	if ok, _ := check.IsMaximalIS(g, res.IndependentSet); !ok {
		t.Error("invalid MIS with defaulted batch")
	}
}
