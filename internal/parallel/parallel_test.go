package parallel

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("auto workers must be >= 1")
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

func TestShards(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []Range
	}{
		{0, 4, nil},
		{-1, 4, nil},
		{3, 0, []Range{{0, 3}}},
		{5, 2, []Range{{0, 3}, {3, 5}}},
		{2, 8, []Range{{0, 1}, {1, 2}}},
		{10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
	}
	for _, c := range cases {
		got := Shards(c.n, c.parts)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Shards(%d, %d) = %v, want %v", c.n, c.parts, got, c.want)
		}
	}
	// Shards must exactly tile [0, n) with no empty shard, for a grid of
	// (n, parts) combinations.
	for n := 1; n <= 65; n++ {
		for parts := 1; parts <= 9; parts++ {
			shards := Shards(n, parts)
			lo := 0
			for _, r := range shards {
				if r.Lo != lo || r.Hi <= r.Lo {
					t.Fatalf("Shards(%d, %d): bad shard %v at lo=%d", n, parts, r, lo)
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Shards(%d, %d): tiles up to %d", n, parts, lo)
			}
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 3, 8, 100} {
		hits := make([]int32, n)
		For(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachWritesDisjointIndices(t *testing.T) {
	const n = 257
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 4, 16} {
		out := make([]int, n)
		ForEach(workers, n, func(i int) { out[i] = i * i })
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("workers=%d: ForEach output mismatch", workers)
		}
	}
}

// TestMapReduceDeterministicFloatFold uses a deliberately non-associative
// floating-point fold and asserts bit-identical results across worker
// counts — the core of the determinism contract.
func TestMapReduceDeterministicFloatFold(t *testing.T) {
	const n = 4096
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1 / float64(i+1)
	}
	ref := MapReduce(1, n, 0.0, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}, func(a, b float64) float64 { return a + b })
	for _, workers := range []int{2, 3, 8, 32} {
		got := MapReduce(workers, n, 0.0, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
		if got != ref {
			t.Fatalf("workers=%d: %v != %v (bit-identity violated)", workers, got, ref)
		}
	}
}

func TestMaxInt(t *testing.T) {
	const n = 1234
	max := MaxInt(8, n, func(lo, hi int) int {
		m := 0
		for i := lo; i < hi; i++ {
			if v := (i * 7919) % 1000; v > m {
				m = v
			}
		}
		return m
	})
	want := 0
	for i := 0; i < n; i++ {
		if v := (i * 7919) % 1000; v > want {
			want = v
		}
	}
	if max != want {
		t.Fatalf("MaxInt = %d, want %d", max, want)
	}
	if got := MaxInt(4, 0, func(lo, hi int) int { return 99 }); got != 0 {
		t.Fatalf("MaxInt over empty range = %d, want 0", got)
	}
}

func TestCollectPreservesSerialOrder(t *testing.T) {
	const n = 500
	keep := func(i int) bool { return i%3 == 0 || i%7 == 0 }
	var want []int
	for i := 0; i < n; i++ {
		if keep(i) {
			want = append(want, i)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got := Collect(workers, n, func(lo, hi int) []int {
			var part []int
			for i := lo; i < hi; i++ {
				if keep(i) {
					part = append(part, i)
				}
			}
			return part
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Collect order mismatch", workers)
		}
	}
	if got := Collect(4, 10, func(lo, hi int) []int { return nil }); got != nil {
		t.Fatalf("Collect with empty shards = %v, want nil", got)
	}
}

func TestRunShardsBoundsConcurrency(t *testing.T) {
	const shards = 64
	var cur, peak atomic.Int32
	RunShards(3, shards, func(s int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent bodies with workers=3", p)
	}
}
