// Package parallel is the shared host-parallel execution substrate of the
// repository: a bounded worker pool plus deterministic sharded map-reduce
// over index ranges (vertex ranges, seed batches, machine ids).
//
// Every algorithm in this module promises bit-identical results at any
// worker count (the "determinism contract", see doc.go of the root package
// and the Parallel execution section of ROADMAP.md). The primitives here
// make that contract easy to keep:
//
//   - work is split into contiguous shards of [0, n) whose boundaries depend
//     only on (n, parts) — never on scheduling;
//   - shard bodies write to disjoint state (their own index range, or a
//     per-shard partial), so goroutine interleaving is unobservable;
//   - reductions combine per-shard partials in ascending shard order on the
//     calling goroutine, so even non-commutative or floating-point folds are
//     reproducible.
//
// The pool is bounded: at most `workers` goroutines run at once, and shards
// are handed out dynamically so heterogeneous shard costs still balance.
// Worker counts come from Options.Parallelism at the API layer and resolve
// through Workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism level to a concrete worker count:
// 0 (auto) means GOMAXPROCS, anything below 1 clamps to 1 (serial), and
// positive values are taken as-is.
func Workers(requested int) int {
	if requested == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// Range is a half-open shard [Lo, Hi) of an index space.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the shard.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shards splits [0, n) into at most `parts` contiguous ranges whose sizes
// differ by at most one. The boundaries depend only on (n, parts): the first
// n%parts shards get the extra element. Empty shards are never returned, so
// the result may have fewer than `parts` entries (and is empty for n <= 0).
func Shards(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, parts)
	size := n / parts
	extra := n % parts
	lo := 0
	for i := range out {
		hi := lo + size
		if i < extra {
			hi++
		}
		out[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// For runs body over the shards of [0, n) on up to `workers` goroutines and
// blocks until all shards complete. body receives its shard index and the
// half-open range [lo, hi); bodies for distinct shards may run concurrently,
// so they must write only to disjoint state. With workers <= 1 (or a single
// shard) everything runs on the calling goroutine.
//
// Shard boundaries are those of Shards(n, defaultShards) — a function of n
// alone, NOT of the worker count, so that shard-ordered folds (MapReduce,
// Collect) produce bit-identical results at any parallelism level. Shards
// are handed out dynamically so uneven shard costs balance across the pool.
func For(workers, n int, body func(shard, lo, hi int)) {
	shards := Shards(n, defaultShards)
	RunShards(workers, len(shards), func(s int) {
		body(s, shards[s].Lo, shards[s].Hi)
	})
}

// defaultShards is the fixed shard count used by For/MapReduce/Collect. It
// must not depend on the worker count (shard boundaries define fold order,
// and fold order defines the bits of floating-point reductions); it is set
// comfortably above common core counts so dynamic hand-out still load
// balances, while keeping per-shard work large enough that scheduling
// overhead stays negligible.
const defaultShards = 64

// RunShards invokes body(s) for every s in [0, shards) on up to `workers`
// goroutines and blocks until all complete. It is the raw bounded pool
// underneath For/MapReduce, useful when the caller has pre-computed shard
// descriptors (e.g. machine ids, degree-balanced vertex ranges).
func RunShards(workers, shards int, body func(s int)) {
	w := Workers(workers)
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for s := 0; s < shards; s++ {
			body(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				body(s)
			}
		}()
	}
	wg.Wait()
}

// ForEach runs body(i) for every i in [0, n) on up to `workers` goroutines.
// It is For with an index-grain body; bodies must write only to
// index-disjoint state (typically out[i]).
func ForEach(workers, n int, body func(i int)) {
	For(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// MapReduce evaluates mapShard over the shards of [0, n) in parallel and
// folds the per-shard partials with reduce in ascending shard order on the
// calling goroutine, starting from zero. Because the shard boundaries and
// the fold order are both deterministic, the result is bit-identical at any
// worker count — including for floating-point and other non-associative
// folds, which is what makes this the required reduction primitive for the
// objective evaluations in internal/sparsify and friends.
func MapReduce[T any](workers, n int, zero T, mapShard func(lo, hi int) T, reduce func(acc, part T) T) T {
	shards := Shards(n, defaultShards)
	if len(shards) == 0 {
		return zero
	}
	parts := make([]T, len(shards))
	RunShards(workers, len(shards), func(s int) {
		parts[s] = mapShard(shards[s].Lo, shards[s].Hi)
	})
	acc := zero
	for _, p := range parts {
		acc = reduce(acc, p)
	}
	return acc
}

// MaxInt map-reduces an int max over [0, n) (0 for n <= 0, matching the
// "peak words" accumulators it replaces).
func MaxInt(workers, n int, mapShard func(lo, hi int) int) int {
	return MapReduce(workers, n, 0, mapShard, func(a, b int) int {
		if b > a {
			return b
		}
		return a
	})
}

// Collect evaluates mapShard over the shards of [0, n) in parallel, each
// shard producing an ordered slice, and concatenates the per-shard slices in
// ascending shard order. Output order is therefore identical to the serial
// loop's, at any worker count. It replaces the append-under-iteration
// pattern in filters like "edges surviving a subsampling stage".
func Collect[T any](workers, n int, mapShard func(lo, hi int) []T) []T {
	shards := Shards(n, defaultShards)
	if len(shards) == 0 {
		return nil
	}
	parts := make([][]T, len(shards))
	RunShards(workers, len(shards), func(s int) {
		parts[s] = mapShard(shards[s].Lo, shards[s].Hi)
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
