package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/simcost"
)

func params() core.Params { return core.DefaultParams() }

func TestVertexCoverCoversAndApproximates(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"gnm":      gen.GNM(500, 2000, 1),
		"star":     gen.Star(64),
		"complete": gen.Complete(30),
		"grid":     gen.Grid2D(12, 12),
		"powerlaw": gen.PowerLaw(400, 1600, 2.5, 2),
	} {
		vc := VertexCover2Approx(g, params(), nil)
		if err := VerifyVertexCover(g, vc.Cover); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// 2-approximation certificate: |cover| <= 2·|M| <= 2·OPT.
		if len(vc.Cover) > 2*vc.MatchingSize {
			t.Errorf("%s: cover %d > 2×matching %d", name, len(vc.Cover), vc.MatchingSize)
		}
		// And the matching is a valid lower bound: cover can't be smaller.
		if len(vc.Cover) < vc.MatchingSize {
			t.Errorf("%s: cover %d < matching %d", name, len(vc.Cover), vc.MatchingSize)
		}
	}
}

func TestVertexCoverStarIsTight(t *testing.T) {
	// Star: OPT = 1 (the centre); the reduction returns <= 2.
	vc := VertexCover2Approx(gen.Star(100), params(), nil)
	if len(vc.Cover) > 2 {
		t.Errorf("star cover size %d, want <= 2", len(vc.Cover))
	}
}

func TestVertexCoverEmpty(t *testing.T) {
	vc := VertexCover2Approx(graph.Empty(10), params(), nil)
	if len(vc.Cover) != 0 || vc.MatchingSize != 0 {
		t.Error("empty graph has nonempty cover")
	}
}

func TestVerifyVertexCoverCatchesGaps(t *testing.T) {
	g := gen.Path(4)
	if err := VerifyVertexCover(g, []graph.NodeID{0}); err == nil {
		t.Error("uncovered edge accepted")
	}
	if err := VerifyVertexCover(g, []graph.NodeID{1, 2}); err != nil {
		t.Errorf("valid cover rejected: %v", err)
	}
}

func TestDominatingSet(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"gnm":  gen.GNM(400, 1600, 3),
		"tree": gen.RandomTree(300, 4),
		"star": gen.Star(50),
	} {
		ds := DominatingSet(g, params(), nil)
		if err := VerifyDominatingSet(g, ds); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// MIS size lower bound n/(Δ+1) carries over.
		if minSize := g.N() / (g.MaxDegree() + 1); len(ds) < minSize {
			t.Errorf("%s: dominating set %d < n/(Δ+1) = %d", name, len(ds), minSize)
		}
	}
}

func TestVerifyDominatingSetCatches(t *testing.T) {
	g := gen.Path(5)
	if err := VerifyDominatingSet(g, []graph.NodeID{0}); err == nil {
		t.Error("non-dominating set accepted")
	}
}

func TestTwoRulingSet(t *testing.T) {
	g := gen.GNM(300, 1200, 7)
	rs := TwoRulingSet(g, params(), nil)
	if err := VerifyRulingSet(g, rs, 2, 1); err != nil {
		t.Error(err)
	}
}

func TestVerifyRulingSetCatchesViolations(t *testing.T) {
	g := gen.Path(5) // 0-1-2-3-4
	// Adjacent members violate alpha=2.
	if err := VerifyRulingSet(g, []graph.NodeID{0, 1}, 2, 3); err == nil {
		t.Error("adjacent members accepted")
	}
	// Node 4 beyond distance 1 of {0}.
	if err := VerifyRulingSet(g, []graph.NodeID{0}, 2, 1); err == nil {
		t.Error("uncovered node accepted")
	}
	// {0, 3} is a valid (2,1)... node 1 at distance 1 of 0, node 2 at
	// distance 1 of 3, node 4 at distance 1 of 3.
	if err := VerifyRulingSet(g, []graph.NodeID{0, 3}, 2, 1); err != nil {
		t.Errorf("valid ruling set rejected: %v", err)
	}
}

func TestAppsChargeModel(t *testing.T) {
	g := gen.GNM(256, 1024, 9)
	model := simcost.New(g.N(), g.M(), 0.5)
	VertexCover2Approx(g, params(), model)
	if model.Stats().RoundsByLabel["apps.vc"] != 1 {
		t.Error("vertex-cover reduction round not charged")
	}
}
