// Package apps derives the classical corollaries of maximal matching and
// MIS, in the spirit of the paper's conclusion that its derandomization
// framework feeds many downstream problems. Everything here inherits the
// deterministic O(log Δ + log log n) MPC round bounds of Theorem 1, since
// each reduction costs O(1) extra rounds:
//
//   - 2-approximate minimum vertex cover: the endpoints of any maximal
//     matching (lower bound |M| <= OPT, upper bound 2|M|).
//   - dominating set: any MIS dominates every node (maximality).
//   - 2-ruling set: any MIS is one (members pairwise at distance >= 2,
//     every node at distance <= 1 from a member).
//   - (2, k)-ruling-set verification for the general definition.
package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/simcost"
)

// VertexCover computes a deterministic 2-approximate minimum vertex cover:
// the endpoint set of the Theorem 7 maximal matching. The returned
// MatchingSize is a certified lower bound on the optimum (any vertex cover
// must pick an endpoint of each matching edge), so
// OPT <= len(Cover) <= 2·OPT.
type VertexCover struct {
	Cover        []graph.NodeID
	MatchingSize int
}

// VertexCover2Approx runs the reduction on g.
func VertexCover2Approx(g *graph.Graph, p core.Params, model *simcost.Model) *VertexCover {
	res := matching.Deterministic(g, p, model)
	model.ChargeRounds(1, "apps.vc") // endpoints announce themselves
	in := make([]bool, g.N())
	out := &VertexCover{MatchingSize: len(res.Matching)}
	for _, e := range res.Matching {
		for _, v := range [2]graph.NodeID{e.U, e.V} {
			if !in[v] {
				in[v] = true
				out.Cover = append(out.Cover, v)
			}
		}
	}
	return out
}

// VerifyVertexCover returns an error unless cover touches every edge of g.
func VerifyVertexCover(g *graph.Graph, cover []graph.NodeID) error {
	in := make([]bool, g.N())
	for _, v := range cover {
		in[v] = true
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v && !in[u] && !in[v] {
				return fmt.Errorf("apps: edge {%d,%d} uncovered", u, v)
			}
		}
	}
	return nil
}

// DominatingSet computes a deterministic dominating set as the Theorem 14
// MIS (maximal independence implies domination). The size is at most
// n and at least n/(Δ+1); no approximation guarantee versus minimum
// dominating set is claimed (none follows from MIS).
func DominatingSet(g *graph.Graph, p core.Params, model *simcost.Model) []graph.NodeID {
	res := mis.Deterministic(g, p, model)
	model.ChargeRounds(1, "apps.ds")
	return res.IndependentSet
}

// VerifyDominatingSet returns an error unless every node is in the set or
// adjacent to a member.
func VerifyDominatingSet(g *graph.Graph, set []graph.NodeID) error {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("apps: node %d undominated", v)
		}
	}
	return nil
}

// TwoRulingSet computes a (2,1)-ruling set (= an MIS): members pairwise
// non-adjacent, every node within distance 1 of a member.
func TwoRulingSet(g *graph.Graph, p core.Params, model *simcost.Model) []graph.NodeID {
	return DominatingSet(g, p, model)
}

// VerifyRulingSet checks the general (alpha, beta) ruling-set condition:
// members pairwise at distance >= alpha, every node at distance <= beta
// from some member.
func VerifyRulingSet(g *graph.Graph, set []graph.NodeID, alpha, beta int) error {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	// Pairwise distance >= alpha: no member may appear in another member's
	// (alpha-1)-ball.
	for _, v := range set {
		for _, u := range g.Ball(v, alpha-1) {
			if u != v && in[u] {
				return fmt.Errorf("apps: members %d and %d within distance %d", v, u, alpha-1)
			}
		}
	}
	// Coverage: every node within distance beta of a member.
	covered := make([]bool, g.N())
	for _, v := range set {
		for _, u := range g.Ball(v, beta) {
			covered[u] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		if !covered[v] {
			return fmt.Errorf("apps: node %d beyond distance %d from all members", v, beta)
		}
	}
	return nil
}
