package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/lowdeg"
	"repro/internal/simcost"
	"repro/internal/tablefmt"
)

// RunT5 reproduces Theorem 1's low-degree regime (Section 5): at fixed n,
// the stage count of the compressed algorithm grows like O(log Δ) while the
// total phase count stays O(log n); the colouring uses O(Δ⁴) colours; and
// the same rows across two n values show the stage count is (nearly) flat
// in n — the O(log Δ + log log n) shape.
func RunT5(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()
	nVals := []int{1 << 12, 1 << 14}
	if cfg.Quick {
		nVals = []int{1 << 10, 1 << 12}
	}
	t := &tablefmt.Table{
		ID:    "T5",
		Title: "Theorem 1 / Section 5: stage-compressed MIS on bounded-degree graphs",
		Columns: []string{"n", "Δ", "colors", "ℓ", "phases", "stages",
			"stages/log2Δ", "rounds(paper acc.)", "rounds(executed)", "violations"},
	}
	for _, n := range nVals {
		for _, d := range cfg.degGrid() {
			g := gen.RandomRegular(n, d, cfg.Seed+uint64(d))
			model := simcost.New(g.N(), g.M(), p.Epsilon)
			res := lowdeg.MIS(g, p, model)
			if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
				panic("T5: " + reason)
			}
			t.AddRow(n, g.MaxDegree(), res.Colors, res.Ell, len(res.Phases), res.Stages,
				float64(res.Stages)/log2(float64(g.MaxDegree())),
				res.RoundsPaper, res.RoundsExecuted, len(model.Violations()))
		}
	}
	t.Notes = append(t.Notes,
		"paper claim: O(log Δ + log log n) rounds; shape checks: stages/log2Δ bounded, stages flat in n at fixed Δ",
		"rounds(paper acc.) charges O(1)/stage (local seed-sequence enumeration is free in MPC);",
		fmt.Sprintf("rounds(executed) charges the greedy per-phase selection this host performs — see DESIGN.md; colors = O(Δ⁴) via Linial on G² (ε=%.2f)", p.Epsilon))
	return []*tablefmt.Table{t}
}
