package experiments

import (
	"fmt"
	"slices"

	"repro/internal/detrand"
	"repro/internal/mpc"
	"repro/internal/tablefmt"
)

// RunT8 validates Lemma 4 on the message-level cluster: deterministic
// sorting and prefix sums complete in a constant number of rounds that does
// not grow with the input size, with every machine respecting its S-word
// space bound. This is the substrate every O(1)-round claim in the paper's
// algorithms charges against.
func RunT8(cfg Config) []*tablefmt.Table {
	t := &tablefmt.Table{
		ID:    "T8",
		Title: "Lemma 4: constant-round sorting and prefix sums on the message-level MPC cluster",
		Columns: []string{"N (words)", "machines", "S", "sort rounds", "scan rounds",
			"max inbox", "sorted ok", "violations"},
	}
	grids := []struct{ n, machines, space int }{
		{1 << 12, 16, 1 << 10},
		{1 << 14, 32, 1 << 11},
		{1 << 16, 64, 1 << 12},
	}
	if cfg.Quick {
		grids = grids[:2]
	}
	for _, gr := range grids {
		r := detrand.New(cfg.Seed + uint64(gr.n))
		data := make([]uint64, gr.n)
		for i := range data {
			data[i] = r.Uint64() % 1_000_000
		}
		c := mpc.NewCluster(mpc.Config{Machines: gr.machines, Space: gr.space})
		if err := c.LoadBalanced(data); err != nil {
			panic(err)
		}
		if err := mpc.Sort(c); err != nil {
			panic(err)
		}
		sortRounds := c.Stats().RoundsByLabel()["sort"]
		sorted := c.GatherAll()
		ok := slices.IsSorted(sorted)

		if _, err := mpc.PrefixSum(c); err != nil {
			panic(err)
		}
		st := c.Stats()
		scanRounds := st.RoundsByLabel()["prefixsum"]
		t.AddRow(gr.n, gr.machines, gr.space, sortRounds, scanRounds,
			st.MaxInbox, fmt.Sprint(ok), len(st.Violations))
	}
	t.Notes = append(t.Notes,
		"paper claim (Lemma 4, Goodrich et al.): O(1) rounds for sorting and prefix sums at S = n^ε;",
		"shape: sort rounds constant (4) across the grid, scan rounds bounded, zero space violations")
	return []*tablefmt.Table{t}
}
