package experiments

import (
	"fmt"
	"math"

	"repro/internal/condexp"
	"repro/internal/hashfam"
	"repro/internal/tablefmt"
)

func init() {
	registry["A5"] = RunA5
}

// RunA5 demonstrates the two derandomization procedures side by side on
// families small enough for exact computation: the textbook method of
// conditional expectations (fix the seed one Θ(log p)-bit chunk at a time
// with exact suffix averaging) versus the batched deterministic scan this
// repository uses at scale. Both must reach at least the family mean
// (probabilistic method); the table reports the achieved objective of each
// against the exact mean and maximum.
func RunA5(cfg Config) []*tablefmt.Table {
	t := &tablefmt.Table{
		ID:    "A5",
		Title: "Exact method of conditional expectations vs batched seed scan (small families)",
		Columns: []string{"field p", "k", "family size", "mean", "max",
			"condexp value", "scan value", "both >= mean"},
	}
	for _, tc := range []struct {
		p uint64
		k int
	}{{11, 2}, {17, 2}, {13, 3}} {
		fam := hashfam.New(tc.p, tc.k)
		// Objective: weighted count of points sampled below the threshold —
		// the sparsification stage's shape with per-point weights.
		points := make([]uint64, 24)
		weights := make([]int64, len(points))
		for i := range points {
			points[i] = uint64(i*5+1) % fam.P()
			weights[i] = int64(i%3 + 1)
		}
		th := hashfam.Threshold(fam.P(), 1, 2)
		obj := func(seed []uint64) int64 {
			var total int64
			for i, x := range points {
				if fam.Eval(seed, x) < th {
					total += weights[i]
				}
			}
			return total
		}

		mean, err := condexp.FamilyMean(fam, obj)
		if err != nil {
			panic(err)
		}
		numSeeds, _ := fam.NumSeeds()
		// Exact maximum by enumeration.
		e := fam.Enumerate()
		maxVal := int64(-1)
		for e.Next() {
			if v := obj(e.Seed()); v > maxVal {
				maxVal = v
			}
		}
		condSeed, _, err := condexp.SearchConditional(fam, obj)
		if err != nil {
			panic(err)
		}
		// ceil(mean): the integral objective must reach the next integer to
		// be ">= mean" (plain int64 truncation would under-demand).
		scan, err := condexp.SearchAtLeast(fam, obj, int64(math.Ceil(mean-1e-9)), condexp.Options{})
		if err != nil {
			panic(err)
		}
		condVal := obj(condSeed)
		ok := "yes"
		if float64(condVal) < mean || float64(scan.Value) < mean {
			ok = "NO"
		}
		t.AddRow(fam.P(), tc.k, numSeeds, mean, maxVal, condVal, scan.Value, ok)
	}
	t.Notes = append(t.Notes,
		"both procedures are deterministic and guaranteed >= mean by the probabilistic method;",
		fmt.Sprintf("the batched scan is what runs at scale (families up to ~2^%d seeds); the exact method validates it", 72))
	return []*tablefmt.Table{t}
}
