package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func quick() Config { return Config{Quick: true, Seed: 1} }

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"A1", "A2", "A3", "A4", "A5", "F1", "F2",
		"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("T99", quick()); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestEveryExperimentRuns executes the full registry at quick scale and
// validates the tables are well formed (the per-claim assertions live in
// the per-package tests; this is the end-to-end harness check).
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, quick())
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %s has no rows", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Errorf("table %s row width %d != %d columns", tb.ID, len(row), len(tb.Columns))
					}
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Errorf("render %s: %v", tb.ID, err)
				}
				if err := tb.CSV(&buf); err != nil {
					t.Errorf("csv %s: %v", tb.ID, err)
				}
			}
		})
	}
}

func TestT1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks skipped in -short mode")
	}
	tables, err := Run("T1", quick())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Column 3 is iters/log2(m); it must stay within a bounded band.
	for _, row := range tb.Rows {
		ratio := mustFloat(t, row[3])
		if ratio > 4 {
			t.Errorf("iters/log2(m) = %.3f too large: O(log n) shape broken", ratio)
		}
	}
	// Violations column must be zero everywhere.
	for _, row := range tb.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("space violations in T1 row: %v", row)
		}
	}
}

func TestT6SpeedupAboveOne(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks skipped in -short mode")
	}
	tables, err := Run("T6", quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if sp := mustFloat(t, row[6]); sp <= 1 {
			t.Errorf("CC speedup %.3f <= 1 in row %v", sp, row)
		}
	}
}

func TestT9AblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks skipped in -short mode")
	}
	tables, err := Run("T9", quick())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	sawRawOverflow := false
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[3], "NO") {
			sawRawOverflow = true
		}
		if strings.HasPrefix(row[5], "NO") {
			t.Errorf("E* 2-hop ball exceeds budget: %v", row)
		}
	}
	if !sawRawOverflow {
		t.Error("ablation lost its point: raw 2-hop balls fit the budget on every workload")
	}
}

func TestRunAllWritesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(quick(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, id+" —") && !strings.Contains(out, id+"a —") {
			t.Errorf("output missing experiment %s", id)
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	var f float64
	if _, err := fmt.Sscan(s, &f); err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return f
}
