package experiments

import (
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/graph/gen"
	"repro/internal/lowdeg"
	"repro/internal/luby"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/tablefmt"
)

// RunF1 produces the edge-decay figure: surviving edges per iteration for
// the deterministic matching and MIS against randomized Luby baselines on
// the same graph. The paper's analysis predicts geometric decay for all
// four curves; the deterministic ones must decay at least as reliably (no
// plateau), since their per-iteration removal is enforced by the seed
// search rather than by chance.
func RunF1(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	g := gen.GNM(n, 8*n, cfg.Seed)
	fig := &tablefmt.Figure{
		ID:     "F1",
		Title:  "Edge decay per iteration: deterministic vs randomized Luby (G(n,8n))",
		XLabel: "iteration",
		YLabel: "edges remaining",
	}

	mmRes := matching.Deterministic(g, p, nil)
	var s tablefmt.Series
	s.Name = "det-matching"
	for _, it := range mmRes.Iterations {
		s.Points = append(s.Points, [2]float64{float64(it.Iteration), float64(it.EdgesAfter)})
	}
	fig.Series = append(fig.Series, s)

	misRes := mis.Deterministic(g, p, nil)
	s = tablefmt.Series{Name: "det-mis"}
	for _, it := range misRes.Iterations {
		s.Points = append(s.Points, [2]float64{float64(it.Iteration), float64(it.EdgesAfter)})
	}
	fig.Series = append(fig.Series, s)

	lubyMIS := luby.MIS(g, detrand.New(cfg.Seed))
	s = tablefmt.Series{Name: "luby-mis"}
	for _, r := range lubyMIS.Rounds {
		s.Points = append(s.Points, [2]float64{float64(r.Round), float64(r.EdgesAfter)})
	}
	fig.Series = append(fig.Series, s)

	lubyMM := luby.MaximalMatching(g, detrand.New(cfg.Seed+1))
	s = tablefmt.Series{Name: "luby-matching"}
	for _, r := range lubyMM.Rounds {
		s.Points = append(s.Points, [2]float64{float64(r.Round), float64(r.EdgesAfter)})
	}
	fig.Series = append(fig.Series, s)

	tbl := fig.Table()
	tbl.Notes = append(tbl.Notes,
		"shape: all curves decay geometrically; deterministic curves never plateau (enforced progress)")
	return []*tablefmt.Table{tbl}
}

// RunF2 produces the round-scaling figure: (a) iterations vs n for the
// deterministic algorithms and the randomized baselines on G(n, 8n); (b)
// stages vs Δ at fixed n for the Section 5 algorithm. Together they are the
// O(log n) and O(log Δ) shapes of Theorems 7/14/1.
func RunF2(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()

	nFig := &tablefmt.Figure{
		ID:     "F2a",
		Title:  "Rounds vs n (G(n,8n)): deterministic vs randomized",
		XLabel: "log2(n)",
		YLabel: "iterations",
	}
	var detMM, detMIS, randMIS, randMM tablefmt.Series
	detMM.Name, detMIS.Name, randMIS.Name, randMM.Name =
		"det-matching", "det-mis", "luby-mis", "luby-matching"
	for _, n := range cfg.nGrid() {
		g := gen.GNM(n, 8*n, cfg.Seed)
		x := log2(float64(n))
		detMM.Points = append(detMM.Points,
			[2]float64{x, float64(len(matching.Deterministic(g, p, nil).Iterations))})
		detMIS.Points = append(detMIS.Points,
			[2]float64{x, float64(len(mis.Deterministic(g, p, nil).Iterations))})
		randMIS.Points = append(randMIS.Points,
			[2]float64{x, float64(len(luby.MIS(g, detrand.New(cfg.Seed)).Rounds))})
		randMM.Points = append(randMM.Points,
			[2]float64{x, float64(len(luby.MaximalMatching(g, detrand.New(cfg.Seed)).Rounds))})
	}
	nFig.Series = []tablefmt.Series{detMM, detMIS, randMIS, randMM}
	na := nFig.Table()
	na.Notes = append(na.Notes, "shape: all four curves linear in log2(n) — the O(log n) claim")

	dFig := &tablefmt.Figure{
		ID:     "F2b",
		Title:  "Stages vs Δ at fixed n (random regular graphs): Section 5",
		XLabel: "log2(Δ)",
		YLabel: "stages",
	}
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	var stages, phases tablefmt.Series
	stages.Name, phases.Name = "lowdeg-stages", "lowdeg-phases"
	for _, d := range cfg.degGrid() {
		g := gen.RandomRegular(n, d, cfg.Seed+uint64(d))
		res := lowdeg.MIS(g, p, nil)
		x := log2(float64(g.MaxDegree()))
		stages.Points = append(stages.Points, [2]float64{x, float64(res.Stages)})
		phases.Points = append(phases.Points, [2]float64{x, float64(len(res.Phases))})
	}
	dFig.Series = []tablefmt.Series{stages, phases}
	db := dFig.Table()
	db.Notes = append(db.Notes,
		"shape: stages grow ~linearly in log2(Δ) while phases stay ~flat (O(log n)) — Theorem 1's O(log Δ) term")
	return []*tablefmt.Table{na, db}
}
