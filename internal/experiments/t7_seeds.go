package experiments

import (
	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/simcost"
	"repro/internal/tablefmt"
)

// RunT7 measures the cost of the derandomization itself (Section 2.4): how
// many candidate seeds each method-of-conditional-expectations search
// scans, how many O(1)-round batches that is, and how often the theorem's
// threshold was met (vs falling back to the best seed scanned). The paper's
// claim is that each derandomization is O(1) rounds — i.e. batches per
// search is a small constant.
func RunT7(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	t := &tablefmt.Table{
		ID:    "T7",
		Title: "Seed-search cost per derandomization (method of conditional expectations, §2.4)",
		Columns: []string{"algorithm", "searches", "seeds total", "seeds/search",
			"batches/search", "threshold met", "batch size (S)"},
	}

	g := gen.GNM(n, 8*n, cfg.Seed)
	model := simcost.New(g.N(), g.M(), p.Epsilon)
	mmRes := matching.Deterministic(g, p, model)
	searches, seeds, met := 0, 0, 0
	for _, it := range mmRes.Iterations {
		searches++
		seeds += it.SeedsTried
		if it.SeedFound {
			met++
		}
		searches += it.Stages // one goodness search per sparsification stage
	}
	st := model.Stats()
	t.AddRow("matching (all searches)", searches, st.SeedsEvaluated,
		float64(st.SeedsEvaluated)/float64(searches),
		float64(st.SeedBatches)/float64(searches),
		percent(met, len(mmRes.Iterations)), st.S)

	g2 := gen.GNM(n, 8*n, cfg.Seed)
	model2 := simcost.New(g2.N(), g2.M(), p.Epsilon)
	misRes := mis.Deterministic(g2, p, model2)
	searches, met = 0, 0
	selections := 0
	for _, it := range misRes.Iterations {
		if it.SeedsTried > 0 {
			searches++
			selections++
			if it.SeedFound {
				met++
			}
		}
		searches += it.Stages
	}
	st2 := model2.Stats()
	t.AddRow("mis (all searches)", searches, st2.SeedsEvaluated,
		float64(st2.SeedsEvaluated)/float64(searches),
		float64(st2.SeedBatches)/float64(searches),
		percent(met, selections), st2.S)

	t.Notes = append(t.Notes,
		"paper claim: O(1) MPC rounds per derandomization = O(1) batches per search",
		"batches include the sparsification-stage goodness searches, which almost always accept the first batch")
	return []*tablefmt.Table{t}
}

func percent(a, b int) string {
	if b == 0 {
		return "n/a"
	}
	return tablefmt.Cell(float64(a) * 100 / float64(b))[:5] + "%"
}
