package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/matching"
	"repro/internal/simcost"
	"repro/internal/sparsify"
	"repro/internal/tablefmt"
)

// Ablations A1-A4 probe the design choices DESIGN.md calls out: the
// threshold fraction of the seed search, the space exponent ε, the
// independence order c of the stage hash family, and the concentration
// slack. They are registered alongside the reproduction experiments.

func init() {
	registry["A1"] = RunA1
	registry["A2"] = RunA2
	registry["A3"] = RunA3
	registry["A4"] = RunA4
}

// RunA1 sweeps ThresholdFrac: how hard the derandomization pushes each
// iteration. Higher fractions demand more progress per iteration (fewer
// iterations) at the price of scanning more seeds per search; at 1.0 the
// search demands the full probabilistic-method bound.
func RunA1(cfg Config) []*tablefmt.Table {
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	g := gen.GNM(n, 8*n, cfg.Seed)
	t := &tablefmt.Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Ablation: seed-search threshold fraction (matching, G(%d,%d))", n, g.M()),
		Columns: []string{"threshold frac", "iterations", "avg seeds/search", "thresholds met", "matching size"},
	}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		p := core.DefaultParams()
		p.ThresholdFrac = frac
		res := matching.Deterministic(g, p, nil)
		seeds, met := 0, 0
		for _, it := range res.Iterations {
			seeds += it.SeedsTried
			if it.SeedFound {
				met++
			}
		}
		t.AddRow(frac, len(res.Iterations),
			float64(seeds)/float64(len(res.Iterations)),
			fmt.Sprintf("%d/%d", met, len(res.Iterations)),
			len(res.Matching))
	}
	t.Notes = append(t.Notes,
		"reading: if the bounds were tight, higher fractions would cost more seeds or fall back; in practice",
		"even frac=1.0 finds a qualifying seed in the first batch — the Lemma 13 constant (1/109) is loose at this scale")
	return []*tablefmt.Table{t}
}

// RunA2 sweeps the space exponent ε: smaller machines mean more of them,
// deeper aggregation trees (more rounds per primitive) and tighter 2-hop
// budgets. Correctness is unaffected; the cost profile shifts.
func RunA2(cfg Config) []*tablefmt.Table {
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	g := gen.GNM(n, 8*n, cfg.Seed)
	t := &tablefmt.Table{
		ID:      "A2",
		Title:   fmt.Sprintf("Ablation: space exponent ε (matching, G(%d,%d))", n, g.M()),
		Columns: []string{"eps", "S", "machines", "iterations", "MPC rounds", "peak machine words", "violations"},
	}
	for _, eps := range []float64{0.25, 0.375, 0.5, 0.75} {
		p := core.DefaultParams().WithEpsilon(eps)
		model := simcost.New(g.N(), g.M(), eps)
		res := matching.Deterministic(g, p, model)
		st := model.Stats()
		t.AddRow(eps, st.S, st.Machines, len(res.Iterations), st.Rounds,
			st.PeakMachineWords, len(st.Violations))
	}
	t.Notes = append(t.Notes,
		"expected: rounds grow as ε shrinks (deeper trees, more stages since δ=ε/8 shrinks the classes);",
		"violations appear when ε is too small for the 2-hop balls at this n — the fully-scalable regime needs n^ε above the degree bound")
	return []*tablefmt.Table{t}
}

// RunA3 sweeps the independence order c of the stage-subsampling family.
// Lemma 9 needs an even constant c >= 4; pairwise (c=2) weakens the
// concentration while larger c costs longer seeds (more Horner terms per
// evaluation). The invariants' worst ratios quantify the difference.
func RunA3(cfg Config) []*tablefmt.Table {
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	g := gen.GNM(n, 48*n, cfg.Seed)
	t := &tablefmt.Table{
		ID:    "A3",
		Title: fmt.Sprintf("Ablation: k-wise independence of stage subsampling (G(%d,%d))", n, g.M()),
		Columns: []string{"c", "stages", "all seeds found", "Lem10 worst", "Lem10 viol",
			"Lem11 worst", "Lem11 viol", "E* maxdeg"},
	}
	for _, c := range []int{2, 4, 8} {
		p := core.DefaultParams()
		p.KWise = c
		res := sparsify.SparsifyEdges(g, p, nil)
		worstI, worstII := 0.0, 0.0
		violI, violII := 0, 0
		found := true
		for _, st := range res.Stages {
			if st.InvariantI.WorstRatio > worstI {
				worstI = st.InvariantI.WorstRatio
			}
			if st.InvariantII.WorstRatio > worstII {
				worstII = st.InvariantII.WorstRatio
			}
			violI += st.InvariantI.Violated
			violII += st.InvariantII.Violated
			found = found && st.SeedFound
		}
		t.AddRow(c, len(res.Stages), found, worstI, violI, worstII, violII, res.EStar.MaxDegree())
	}
	t.Notes = append(t.Notes,
		"expected: ratios comparable across c at laptop scale (the polynomial families are all exactly k-wise",
		"independent; Lemma 9's advantage for c >= 4 is an asymptotic tail bound)")
	return []*tablefmt.Table{t}
}

// RunA4 sweeps the concentration slack: with slack 1 the goodness
// predicates demand the paper's literal deviation terms (often unsatisfiable
// at laptop scale — searches fall back to best seeds); large slack accepts
// everything. The invariants measure what each setting actually delivers.
func RunA4(cfg Config) []*tablefmt.Table {
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	g := gen.GNM(n, 48*n, cfg.Seed)
	t := &tablefmt.Table{
		ID:    "A4",
		Title: fmt.Sprintf("Ablation: concentration slack in machine goodness (G(%d,%d))", n, g.M()),
		Columns: []string{"slack", "stages", "stage seeds tried", "all found",
			"Lem10 worst", "Lem11 worst", "E* edges"},
	}
	for _, slack := range []float64{1, 2, 4, 8} {
		p := core.DefaultParams()
		p.Slack = slack
		p.MaxSeedsPerSearch = 2048
		res := sparsify.SparsifyEdges(g, p, nil)
		seeds := 0
		found := true
		worstI, worstII := 0.0, 0.0
		for _, st := range res.Stages {
			seeds += st.SeedsTried
			found = found && st.SeedFound
			if st.InvariantI.WorstRatio > worstI {
				worstI = st.InvariantI.WorstRatio
			}
			if st.InvariantII.WorstRatio > worstII {
				worstII = st.InvariantII.WorstRatio
			}
		}
		t.AddRow(slack, len(res.Stages), seeds, found, worstI, worstII, res.EStar.M())
	}
	t.Notes = append(t.Notes,
		"note: invariant ratios are relative to slack-adjusted bounds, so they are not comparable across rows;",
		"the operative columns are seeds tried and all-found: small slack exhausts the search budget (falls back),",
		"large slack accepts the first seed — the paper's predicates are asymptotic (DESIGN.md substitution 4)")
	return []*tablefmt.Table{t}
}
