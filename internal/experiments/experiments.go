// Package experiments implements the reproduction suite indexed in
// DESIGN.md: the paper has no empirical tables or figures (it is a theory
// paper), so each experiment measures one of its theorem-level claims and
// renders a table (T1..T9) or figure (F1, F2) via internal/tablefmt.
// EXPERIMENTS.md records paper-claim vs measured for every entry.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/tablefmt"
)

// Config scales the experiment suite.
type Config struct {
	// Quick shrinks the size grids so the full suite runs in seconds
	// (used by `go test` and the benchmarks); the default full grids take
	// a few minutes.
	Quick bool
	// Seed feeds the workload generators (never the deterministic
	// algorithms).
	Seed uint64
}

// DefaultConfig returns the full-size configuration with the canonical
// workload seed.
func DefaultConfig() Config { return Config{Seed: 1} }

// Runner produces one experiment's tables.
type Runner func(Config) []*tablefmt.Table

// registry maps experiment ids to runners; ids render in sorted order.
var registry = map[string]Runner{
	"T1": RunT1,
	"T2": RunT2,
	"T3": RunT3,
	"T4": RunT4,
	"T5": RunT5,
	"T6": RunT6,
	"T7": RunT7,
	"T8": RunT8,
	"T9": RunT9,
	"F1": RunF1,
	"F2": RunF2,
}

// IDs returns all experiment ids in render order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, cfg Config) ([]*tablefmt.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(cfg), nil
}

// RunAll executes every experiment and writes the tables to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, id := range IDs() {
		tables, err := Run(id, cfg)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// log2 returns log base 2 as float64 (guarding the x <= 1 corner so ratios
// against it stay finite).
func log2(x float64) float64 {
	if x <= 1 {
		return 1
	}
	return math.Log2(x)
}

// nGrid returns the node-count grid for the config.
func (c Config) nGrid() []int {
	if c.Quick {
		return []int{1 << 10, 1 << 11, 1 << 12}
	}
	return []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14}
}

// degGrid returns the Δ grid for the low-degree experiments.
func (c Config) degGrid() []int {
	if c.Quick {
		return []int{4, 8, 16}
	}
	return []int{4, 8, 16, 32}
}
