package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/matching"
	"repro/internal/simcost"
	"repro/internal/sparsify"
	"repro/internal/tablefmt"
)

// runMatchingForSpace runs the deterministic matching purely for its
// model-side space accounting (used by T9b).
func runMatchingForSpace(g *graph.Graph, p core.Params, model *simcost.Model) {
	matching.Deterministic(g, p, model)
}

// RunT9 is the space ablation (the paper's central motivation, §1.1.1): in
// low-space MPC a node's neighbourhood cannot be collected onto one machine
// — unless the graph has first been sparsified. For dense workloads the
// table compares the largest 2-hop neighbourhood (in words) of the raw
// graph against the same quantity inside E*, relative to the per-machine
// budget 8S; collecting raw 2-hop balls violates the budget while E* balls
// fit. The last columns confirm the paper's total-space bound O(m+n^{1+ε}).
func RunT9(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	t := &tablefmt.Table{
		ID:    "T9",
		Title: "Space ablation: 2-hop neighbourhood words, raw graph vs sparsified E* (eps=0.5)",
		Columns: []string{"workload", "budget 8S", "raw 2-hop max", "raw fits",
			"E* 2-hop max", "E* fits", "E* maxdeg", "2n^{4δ}"},
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{workloadName("gnm", n, 24*n), gen.GNM(n, 24*n, cfg.Seed)},
		{workloadName("gnm", n, 48*n), gen.GNM(n, 48*n, cfg.Seed)},
		{workloadName("powerlaw", n, 16*n), gen.PowerLaw(n, 16*n, 2.3, cfg.Seed)},
	}
	bound := sparsify.MaxDegreeBound(n, p.InvDelta)
	for _, w := range workloads {
		model := simcost.New(w.g.N(), w.g.M(), p.Epsilon)
		budget := model.MachineBudget()
		raw := maxTwoHopWordsAll(w.g)
		er := sparsify.SparsifyEdges(w.g, p, model)
		est := maxTwoHopWordsAll(er.EStar)
		t.AddRow(w.name, budget, raw, fits(raw, budget), est, fits(est, budget),
			er.EStar.MaxDegree(), bound)
	}
	t.Notes = append(t.Notes,
		"paper claim (§3.2): after sparsification every 2-hop neighbourhood fits one machine of S=O(n^{8δ})=O(n^ε) words;",
		"ablation: without sparsification the raw 2-hop balls exceed the budget on dense inputs")

	// Total-space audit across a full matching run.
	tt := &tablefmt.Table{
		ID:      "T9b",
		Title:   "Total space audit: peak machine words across a full deterministic matching run",
		Columns: []string{"workload", "S", "budget 8S", "peak machine words", "violations"},
	}
	for _, w := range workloads[:1] {
		model := simcost.New(w.g.N(), w.g.M(), p.Epsilon)
		runMatchingForSpace(w.g, p, model)
		st := model.Stats()
		tt.AddRow(w.name, st.S, 8*st.S, st.PeakMachineWords, len(st.Violations))
	}
	return []*tablefmt.Table{t, tt}
}

func fits(x, budget int) string {
	if x <= budget {
		return "yes"
	}
	return fmt.Sprintf("NO (%.1fx)", float64(x)/float64(budget))
}

// maxTwoHopWordsAll is the all-nodes version of the matching package's
// per-B-node measurement: the words a machine would hold to store any
// node's 2-hop edge set.
func maxTwoHopWordsAll(g *graph.Graph) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		words := 2 * g.Degree(graph.NodeID(v))
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			words += 2 * g.Degree(u)
		}
		if words > max {
			max = words
		}
	}
	return max
}
