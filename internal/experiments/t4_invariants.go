package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/sparsify"
	"repro/internal/tablefmt"
)

// RunT4 audits the sparsification invariants (Lemmas 10/11 for edges,
// 17/18 for nodes) on a dense workload where the stage machinery runs for
// several stages: per stage, the survivor count, the fraction of good
// logical machines under the selected seed, and the worst measured/bound
// ratio of each invariant (with the configured slack as the (1±o(1))
// factor; <= 1 passes). The final rows compare the E*/Q' maximum degree
// with the paper's 2n^{4δ} bound (§3.3/§4.3 property (i)).
func RunT4(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	g := gen.GNM(n, 48*n, cfg.Seed) // average degree 96: class i >= 8

	edge := &tablefmt.Table{
		ID:    "T4a",
		Title: fmt.Sprintf("Edge sparsification invariants (Lemmas 10/11), G(n=%d, m=%d)", n, g.M()),
		Columns: []string{"stage", "edges before", "edges after", "good machines",
			"seed found", "Lem10 worst", "Lem10 viol", "Lem11 worst", "Lem11 viol"},
	}
	er := sparsify.SparsifyEdges(g, p, nil)
	for _, st := range er.Stages {
		edge.AddRow(st.Stage, st.ItemsBefore, st.ItemsAfter,
			fmt.Sprintf("%d/%d", st.GoodGroups, st.Groups),
			st.SeedFound,
			st.InvariantI.WorstRatio, st.InvariantI.Violated,
			st.InvariantII.WorstRatio, st.InvariantII.Violated)
	}
	bound := sparsify.MaxDegreeBound(n, p.InvDelta)
	edge.Notes = append(edge.Notes,
		fmt.Sprintf("chosen class i=%d, |B|weight=%d, |E0|=%d, fallback=%v", er.ClassIndex, er.BWeight, len(er.E0), er.UsedFallback),
		fmt.Sprintf("max d_E*(v) = %d vs paper bound 2n^{4δ} = %d (slack-adjusted %d)", er.EStar.MaxDegree(), bound, int(p.Slack)*bound),
		"ratios are measured/bound with Slack folded into the bound; lower-bound invariants admit a <=1% binomial tail")

	node := &tablefmt.Table{
		ID:    "T4b",
		Title: fmt.Sprintf("Node sparsification invariants (Lemmas 17/18), G(n=%d, m=%d)", n, g.M()),
		Columns: []string{"stage", "|Q| before", "|Q| after", "good machines",
			"seed found", "Lem17 worst", "Lem17 viol", "Lem18 worst", "Lem18 viol"},
	}
	nr := sparsify.SparsifyNodes(g, p, nil)
	for _, st := range nr.Stages {
		node.AddRow(st.Stage, st.ItemsBefore, st.ItemsAfter,
			fmt.Sprintf("%d/%d", st.GoodGroups, st.Groups),
			st.SeedFound,
			st.InvariantI.WorstRatio, st.InvariantI.Violated,
			st.InvariantII.WorstRatio, st.InvariantII.Violated)
	}
	node.Notes = append(node.Notes,
		fmt.Sprintf("chosen class i=%d, Q' induced max degree = %d vs slack-adjusted bound %d",
			nr.ClassIndex, nr.QGraph.MaxDegree(), int(p.Slack)*bound))
	return []*tablefmt.Table{edge, node}
}
