package experiments

import (
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/tablefmt"
)

// RunT6 reproduces Corollary 2: deterministic MIS (and maximal matching via
// the line graph) in O(log Δ) CONGESTED CLIQUE rounds, against the prior
// state of the art of Censor-Hillel et al. [15] at O(log Δ · log n). The
// baseline is a round-accounting model of [15] (DESIGN.md substitution 5):
// its per-phase bit-by-bit seed voting costs Θ(log n) rounds, charged
// against the same executed phase counts. The shape claim: ours wins
// everywhere and the ratio grows with n.
func RunT6(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()
	nVals := []int{1 << 10, 1 << 12}
	if cfg.Quick {
		nVals = []int{1 << 9, 1 << 11}
	}
	t := &tablefmt.Table{
		ID:    "T6",
		Title: "Corollary 2: CONGESTED CLIQUE MIS rounds, ours vs Censor-Hillel et al. [15] accounting",
		Columns: []string{"n", "Δ", "stages", "phases", "rounds det",
			"rounds CH15", "speedup", "capacity violations"},
	}
	for _, n := range nVals {
		for _, d := range cfg.degGrid() {
			g := gen.RandomRegular(n, d, cfg.Seed+uint64(n+d))
			res := cclique.DetMIS(g, p)
			t.AddRow(n, g.MaxDegree(), res.Stages, res.Phases,
				res.RoundsDet, res.RoundsCH15,
				float64(res.RoundsCH15)/float64(res.RoundsDet),
				len(res.Model.Violations()))
		}
	}
	t.Notes = append(t.Notes,
		"paper claim: O(log Δ) vs [15]'s O(log Δ·log n); shape: speedup > 1 everywhere, growing with n at fixed Δ")

	mm := &tablefmt.Table{
		ID:      "T6b",
		Title:   "Corollary 2 (matching): CONGESTED CLIQUE maximal matching via line-graph MIS",
		Columns: []string{"n", "Δ", "matching size", "rounds det", "rounds CH15", "speedup"},
	}
	for _, d := range cfg.degGrid()[:2] {
		n := nVals[0]
		g := gen.RandomRegular(n, d, cfg.Seed+uint64(d))
		res := cclique.DetMatching(g, p)
		mm.AddRow(n, g.MaxDegree(), len(res.Matching), res.RoundsDet, res.RoundsCH15,
			float64(res.RoundsCH15)/float64(res.RoundsDet))
	}
	return []*tablefmt.Table{t, mm}
}
