package experiments

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/tablefmt"
)

// RunT3 measures the per-iteration progress guarantees of Sections 3.3 and
// 4.3: every matching iteration removes >= δ|E|/536 edges and every MIS
// iteration >= δ²|E|/400 (in expectation, achieved deterministically via the
// seed search at ThresholdFrac of the bound). The table reports the minimum
// and median removed fraction per iteration against those bounds.
func RunT3(cfg Config) []*tablefmt.Table {
	p := core.DefaultParams()
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 11
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{workloadName("gnm", n, 8*n), gen.GNM(n, 8*n, cfg.Seed)},
		{workloadName("powerlaw", n, 6*n), gen.PowerLaw(n, 6*n, 2.5, cfg.Seed)},
		{workloadName("regular", n, 16), gen.RandomRegular(n, 16, cfg.Seed)},
	}

	mmBound := p.ThresholdFrac * p.Delta() / 536
	misBound := p.ThresholdFrac * p.Delta() * p.Delta() / 400

	t := &tablefmt.Table{
		ID:    "T3",
		Title: "Per-iteration edge removal vs the paper's bounds (Lemma 13 / Section 4.4)",
		Columns: []string{"algorithm", "workload", "iters", "min frac", "median frac",
			"paper bound", "min/bound", "all above"},
	}
	for _, w := range workloads {
		res := matching.Deterministic(w.g, p, nil)
		fracs := make([]float64, 0, len(res.Iterations))
		for _, it := range res.Iterations {
			fracs = append(fracs, it.RemovedFraction)
		}
		mn, md := minMedian(fracs)
		t.AddRow("matching", w.name, len(fracs), mn, md, mmBound, mn/mmBound, allAbove(fracs, mmBound))
	}
	for _, w := range workloads {
		res := mis.Deterministic(w.g, p, nil)
		fracs := make([]float64, 0, len(res.Iterations))
		for _, it := range res.Iterations {
			if it.EdgesBefore > 0 {
				fracs = append(fracs, it.RemovedFraction)
			}
		}
		mn, md := minMedian(fracs)
		t.AddRow("mis", w.name, len(fracs), mn, md, misBound, mn/misBound, allAbove(fracs, misBound))
	}
	t.Notes = append(t.Notes,
		"paper bounds scaled by ThresholdFrac=0.5 (the configured search threshold); min/bound >> 1 means the",
		"theoretical constants are loose — the shape claim is that the minimum stays above the bound everywhere")
	return []*tablefmt.Table{t}
}

func minMedian(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted[0], sorted[len(sorted)/2]
}

func allAbove(xs []float64, bound float64) string {
	for _, x := range xs {
		if x < bound {
			return "NO"
		}
	}
	return "yes"
}
