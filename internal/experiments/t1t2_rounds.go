package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/simcost"
	"repro/internal/stats"
	"repro/internal/tablefmt"
)

// RunT1 reproduces Theorem 7's shape: deterministic maximal matching in
// O(log n) MPC rounds at S = n^ε. For each n the table reports outer
// iterations, their ratio to log2(m) (which must stay bounded by a constant
// as n grows), the charged MPC rounds, and the space-violation count (0
// expected).
func RunT1(cfg Config) []*tablefmt.Table {
	t := &tablefmt.Table{
		ID:    "T1",
		Title: "Theorem 7: deterministic maximal matching rounds vs n (G(n,m), m=8n, eps=0.5)",
		Columns: []string{"n", "m", "iterations", "iters/log2(m)", "MPC rounds",
			"rounds/iter", "seed batches", "violations"},
	}
	p := core.DefaultParams()
	var xs, ys []float64
	for _, n := range cfg.nGrid() {
		g := gen.GNM(n, 8*n, cfg.Seed)
		model := simcost.New(g.N(), g.M(), p.Epsilon)
		res := matching.Deterministic(g, p, model)
		if ok, reason := check.IsMaximalMatching(g, res.Matching); !ok {
			panic("T1: " + reason)
		}
		st := model.Stats()
		iters := len(res.Iterations)
		xs = append(xs, log2(float64(g.M())))
		ys = append(ys, float64(iters))
		t.AddRow(n, g.M(), iters,
			float64(iters)/log2(float64(g.M())),
			st.Rounds,
			float64(st.Rounds)/float64(iters),
			st.SeedBatches,
			len(st.Violations))
	}
	slope, _ := stats.LinearFit(xs, ys)
	t.Notes = append(t.Notes,
		"paper claim: O(log n) rounds; shape check: iters/log2(m) bounded by a constant across the sweep",
		fmt.Sprintf("least-squares fit: iterations ≈ %.2f·log2(m) + c (R²=%.2f)", slope, stats.R2(xs, ys)),
		"rounds/iter constant = O(1) charged MPC rounds per iteration (Section 3)")
	return []*tablefmt.Table{t}
}

// RunT2 reproduces Theorem 14's shape for MIS, mirroring T1.
func RunT2(cfg Config) []*tablefmt.Table {
	t := &tablefmt.Table{
		ID:    "T2",
		Title: "Theorem 14: deterministic MIS rounds vs n (G(n,m), m=8n, eps=0.5)",
		Columns: []string{"n", "m", "iterations", "iters/log2(m)", "MPC rounds",
			"rounds/iter", "seed batches", "violations"},
	}
	p := core.DefaultParams()
	var xs, ys []float64
	for _, n := range cfg.nGrid() {
		g := gen.GNM(n, 8*n, cfg.Seed)
		model := simcost.New(g.N(), g.M(), p.Epsilon)
		res := mis.Deterministic(g, p, model)
		if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
			panic("T2: " + reason)
		}
		st := model.Stats()
		iters := len(res.Iterations)
		if iters == 0 {
			iters = 1
		}
		xs = append(xs, log2(float64(g.M())))
		ys = append(ys, float64(iters))
		t.AddRow(n, g.M(), iters,
			float64(iters)/log2(float64(g.M())),
			st.Rounds,
			float64(st.Rounds)/float64(iters),
			st.SeedBatches,
			len(st.Violations))
	}
	slope, _ := stats.LinearFit(xs, ys)
	t.Notes = append(t.Notes,
		"paper claim: O(log n) rounds; same reading as T1",
		fmt.Sprintf("least-squares fit: iterations ≈ %.2f·log2(m) + c", slope))
	return []*tablefmt.Table{t}
}

// workloadName formats generator descriptions used by several tables.
func workloadName(kind string, n, extra int) string {
	switch kind {
	case "gnm":
		return fmt.Sprintf("G(n=%d,m=%d)", n, extra)
	case "powerlaw":
		return fmt.Sprintf("powerlaw(n=%d,m=%d)", n, extra)
	case "regular":
		return fmt.Sprintf("regular(n=%d,d=%d)", n, extra)
	default:
		return kind
	}
}
