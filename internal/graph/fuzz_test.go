package graph

import "testing"

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz=...`
// explores further. They assert the structural invariants that every
// algorithm in this repository depends on.

func FuzzBuilderInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 5, 5, 5})
	f.Add([]byte{})
	f.Add([]byte{255, 254, 253, 252, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 64
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(int(raw[i])%n), NodeID(int(raw[i+1])%n))
		}
		g := b.Build()
		// Degree sum identity.
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(NodeID(v))
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m = %d", sum, 2*g.M())
		}
		// Symmetry and sortedness.
		for v := 0; v < g.N(); v++ {
			nbrs := g.Neighbors(NodeID(v))
			for i, u := range nbrs {
				if u == NodeID(v) {
					t.Fatal("self loop survived")
				}
				if i > 0 && nbrs[i-1] >= u {
					t.Fatal("neighbours unsorted or duplicated")
				}
				if !g.HasEdge(u, NodeID(v)) {
					t.Fatal("asymmetric adjacency")
				}
			}
		}
		// Edge list round trip.
		if h := FromEdges(n, g.Edges()); h.M() != g.M() {
			t.Fatalf("edge-list round trip lost edges: %d -> %d", g.M(), h.M())
		}
	})
}

func FuzzLineGraphDegreeIdentity(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 4})
	f.Add([]byte{1, 2, 2, 3, 3, 1, 1, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 24
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(int(raw[i])%n), NodeID(int(raw[i+1])%n))
		}
		g := b.Build()
		lg, edges := g.LineGraph()
		if lg.N() != len(edges) || len(edges) != g.M() {
			t.Fatalf("line graph node count %d != m %d", lg.N(), g.M())
		}
		for i, e := range edges {
			want := g.Degree(e.U) + g.Degree(e.V) - 2
			if got := lg.Degree(NodeID(i)); got != want {
				t.Fatalf("d_L(%v) = %d, want %d", e, got, want)
			}
		}
	})
}

// graphsEqual reports whether two graphs are byte-identical in their CSR
// content: same node count, edge count, and per-node neighbour lists.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(NodeID(v)), b.Neighbors(NodeID(v))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// dirty fills dst with a larger, denser graph so that any slot the Into
// variants fail to overwrite holds stale garbage from a previous build.
func dirty(dst *CSR, n2 int) {
	var big []Edge
	for u := 0; u < n2; u++ {
		for v := u + 1; v < n2 && v < u+9; v++ {
			big = append(big, Edge{NodeID(u), NodeID(v)})
		}
	}
	FromEdgesInto(n2, big, dst)
}

// FuzzIntoVariantsMatchAllocating checks that every Into-style destination
// variant is byte-identical to its allocating counterpart — including when
// the destination buffer is dirty from a previous, larger graph, which is
// exactly the state the round loops' ping-pong buffers are in.
func FuzzIntoVariantsMatchAllocating(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0, 9, 17}, uint8(0b1010))
	f.Add([]byte{5, 5, 1, 2}, uint8(0xff))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, maskBits uint8) {
		const n = 48
		b := NewBuilder(n)
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := NodeID(int(raw[i])%n), NodeID(int(raw[i+1])%n)
			b.AddEdge(u, v)
			if u != v {
				edges = append(edges, Edge{u, v})
			}
		}
		g := b.Build()
		mask := make([]bool, n)
		for v := range mask {
			mask[v] = maskBits&(1<<(v%8)) != 0
		}
		for _, workers := range []int{1, 3} {
			dst := new(CSR)

			dirty(dst, n+16)
			if got, want := g.WithoutNodesInto(mask, workers, dst), g.WithoutNodesW(mask, workers); !graphsEqual(got, want) {
				t.Fatalf("WithoutNodesInto(workers=%d) differs on dirty buffer: got %v, want %v", workers, got, want)
			}

			dirty(dst, n+16)
			if got, want := g.InducedNodesInto(mask, workers, dst), g.InducedNodesW(mask, workers); !graphsEqual(got, want) {
				t.Fatalf("InducedNodesInto(workers=%d) differs on dirty buffer: got %v, want %v", workers, got, want)
			}

			dirty(dst, n+16)
			if got, want := FromEdgesInto(n, edges, dst), FromEdges(n, edges); !graphsEqual(got, want) {
				t.Fatalf("FromEdgesInto differs on dirty buffer: got %v, want %v", got, want)
			}

			sub := g.Edges()
			if len(sub) > 3 {
				sub = sub[:len(sub)/2] // a strict subgraph exercises the check path too
			}
			dirty(dst, n+16)
			if got, want := g.SubgraphEdgesInto(sub, dst), g.SubgraphEdges(sub); !graphsEqual(got, want) {
				t.Fatalf("SubgraphEdgesInto differs on dirty buffer: got %v, want %v", got, want)
			}

			// Back-to-back reuse of the same buffer must also be clean when
			// the second build is strictly smaller than the first.
			g.WithoutNodesInto(make([]bool, n), workers, dst) // keeps every edge
			if got, want := g.InducedNodesInto(mask, workers, dst), g.InducedNodesW(mask, workers); !graphsEqual(got, want) {
				t.Fatalf("InducedNodesInto(workers=%d) differs on reused buffer", workers)
			}
		}
	})
}

func FuzzBallWithinBounds(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, r uint8) {
		const n = 32
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(int(raw[i])%n), NodeID(int(raw[i+1])%n))
		}
		g := b.Build()
		radius := int(r % 5)
		for v := 0; v < n; v++ {
			ball := g.Ball(NodeID(v), radius)
			if len(ball) < 1 || len(ball) > n {
				t.Fatalf("ball size %d out of range", len(ball))
			}
			// v itself is always included and the list is sorted unique.
			seen := false
			for i, u := range ball {
				if u == NodeID(v) {
					seen = true
				}
				if i > 0 && ball[i-1] >= u {
					t.Fatal("ball unsorted")
				}
			}
			if !seen {
				t.Fatal("ball missing centre")
			}
		}
	})
}
