package graph

import "testing"

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz=...`
// explores further. They assert the structural invariants that every
// algorithm in this repository depends on.

func FuzzBuilderInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 5, 5, 5})
	f.Add([]byte{})
	f.Add([]byte{255, 254, 253, 252, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 64
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(int(raw[i])%n), NodeID(int(raw[i+1])%n))
		}
		g := b.Build()
		// Degree sum identity.
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(NodeID(v))
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m = %d", sum, 2*g.M())
		}
		// Symmetry and sortedness.
		for v := 0; v < g.N(); v++ {
			nbrs := g.Neighbors(NodeID(v))
			for i, u := range nbrs {
				if u == NodeID(v) {
					t.Fatal("self loop survived")
				}
				if i > 0 && nbrs[i-1] >= u {
					t.Fatal("neighbours unsorted or duplicated")
				}
				if !g.HasEdge(u, NodeID(v)) {
					t.Fatal("asymmetric adjacency")
				}
			}
		}
		// Edge list round trip.
		if h := FromEdges(n, g.Edges()); h.M() != g.M() {
			t.Fatalf("edge-list round trip lost edges: %d -> %d", g.M(), h.M())
		}
	})
}

func FuzzLineGraphDegreeIdentity(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 4})
	f.Add([]byte{1, 2, 2, 3, 3, 1, 1, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 24
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(int(raw[i])%n), NodeID(int(raw[i+1])%n))
		}
		g := b.Build()
		lg, edges := g.LineGraph()
		if lg.N() != len(edges) || len(edges) != g.M() {
			t.Fatalf("line graph node count %d != m %d", lg.N(), g.M())
		}
		for i, e := range edges {
			want := g.Degree(e.U) + g.Degree(e.V) - 2
			if got := lg.Degree(NodeID(i)); got != want {
				t.Fatalf("d_L(%v) = %d, want %d", e, got, want)
			}
		}
	})
}

func FuzzBallWithinBounds(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, r uint8) {
		const n = 32
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(int(raw[i])%n), NodeID(int(raw[i+1])%n))
		}
		g := b.Build()
		radius := int(r % 5)
		for v := 0; v < n; v++ {
			ball := g.Ball(NodeID(v), radius)
			if len(ball) < 1 || len(ball) > n {
				t.Fatalf("ball size %d out of range", len(ball))
			}
			// v itself is always included and the list is sorted unique.
			seen := false
			for i, u := range ball {
				if u == NodeID(v) {
					seen = true
				}
				if i > 0 && ball[i-1] >= u {
					t.Fatal("ball unsorted")
				}
			}
			if !seen {
				t.Fatal("ball missing centre")
			}
		}
	})
}
