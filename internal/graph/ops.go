package graph

import (
	"slices"

	"repro/internal/parallel"
)

// CSR is a reusable destination buffer for the Into variants of the graph
// rebuild operations (WithoutNodesInto, InducedNodesInto, SubgraphEdgesInto,
// FromEdgesInto). Round loops keep two of them and ping-pong (see
// internal/scratch.BufPair) so each rebuild reads the previous round's graph
// while overwriting the buffer of the round before it, with zero
// steady-state allocation. The zero value is ready to use.
//
// The *Graph returned by an Into call aliases the buffer's storage and is
// valid only until the next Into call on the same buffer; callers that need
// a longer-lived snapshot use the allocating wrappers (WithoutNodes,
// InducedNodes, SubgraphEdges, FromEdges), which are Into with a fresh
// buffer.
type CSR struct {
	offsets []int32
	adj     []NodeID
	edges   []Edge  // canonicalised edge scratch for FromEdgesInto
	cursor  []int32 // per-node write cursor for FromEdgesInto
	g       Graph
}

// detach returns the buffer's graph as a standalone value, so the one-shot
// allocating wrappers hand out graphs that pin only the offsets/adj arrays
// they reference — not the buffer struct with its edge and cursor scratch.
func (c *CSR) detach() *Graph {
	g := c.g
	return &g
}

// Grow returns buf with length n, reusing the backing array when capacity
// allows. Contents are unspecified — callers must overwrite the full range.
// It is the sizing helper behind every Into-style destination buffer in
// this repository (the CSR passes here, core.EdgeMinScratch, ...); it lives
// in this package because graph sits at the bottom of the import graph.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// WithoutNodes returns a graph on the same id space in which every node with
// remove[v] == true has been isolated (all incident edges dropped). Node ids
// are preserved, which keeps them stable across the iterations of the
// Luby-style loops in internal/matching and internal/mis. It runs at the
// pool's automatic worker count (one per CPU); use WithoutNodesW to pin one.
func (g *Graph) WithoutNodes(remove []bool) *Graph { return g.WithoutNodesW(remove, 0) }

// WithoutNodesW is WithoutNodes with the rebuild sharded over vertex ranges
// on up to `workers` host workers. The result is identical at any worker
// count.
func (g *Graph) WithoutNodesW(remove []bool, workers int) *Graph {
	dst := new(CSR)
	g.WithoutNodesInto(remove, workers, dst)
	return dst.detach()
}

// WithoutNodesInto is WithoutNodesW writing into dst instead of allocating.
// The returned graph aliases dst's storage (see CSR). The result is
// byte-identical to WithoutNodesW at any worker count and for any prior
// contents of dst.
func (g *Graph) WithoutNodesInto(remove []bool, workers int, dst *CSR) *Graph {
	if len(remove) != g.N() {
		panic("graph: WithoutNodes mask length mismatch")
	}
	return g.filterCSRInto(dst, workers, func(u, v NodeID) bool { return !remove[u] && !remove[v] })
}

// filterCSRInto builds into dst the subgraph keeping exactly the edges {u,v}
// with keep(u, v) == true, where keep must be symmetric. It filters the CSR
// arrays directly — two O(n+m) passes over cache-friendly contiguous slices,
// no sorting — instead of round-tripping through an edge list the way
// FromEdges does. Pass 1 counts surviving neighbours per node (sharded), a
// serial prefix sum lays out the new offsets, and pass 2 copies surviving
// neighbours into place (sharded, each node writing only its own range), so
// the result is deterministic at any worker count and neighbour lists stay
// sorted because the source lists are. Every destination slot is written, so
// a dirty dst (even one from a previous, larger graph) cannot leak into the
// result.
func (g *Graph) filterCSRInto(dst *CSR, workers int, keep func(u, v NodeID) bool) *Graph {
	if g == &dst.g {
		panic("graph: Into destination buffer backs the source graph")
	}
	n := g.N()
	offsets := Grow(dst.offsets, n+1)
	offsets[0] = 0
	parallel.ForEach(workers, n, func(v int) {
		cnt := int32(0)
		for _, u := range g.Neighbors(NodeID(v)) {
			if keep(NodeID(v), u) {
				cnt++
			}
		}
		offsets[v+1] = cnt
	})
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := Grow(dst.adj, int(offsets[n]))
	parallel.ForEach(workers, n, func(v int) {
		w := offsets[v]
		for _, u := range g.Neighbors(NodeID(v)) {
			if keep(NodeID(v), u) {
				adj[w] = u
				w++
			}
		}
	})
	dst.offsets, dst.adj = offsets, adj
	dst.g = Graph{offsets: offsets, adj: adj, m: int(offsets[n]) / 2}
	return &dst.g
}

// SubgraphEdges returns the graph on the same id space containing exactly
// the given edges. Every edge must be an edge of g (checked), so the result
// is a subgraph.
func (g *Graph) SubgraphEdges(edges []Edge) *Graph {
	dst := new(CSR)
	g.SubgraphEdgesInto(edges, dst)
	return dst.detach()
}

// SubgraphEdgesInto is SubgraphEdges writing into dst instead of allocating.
// The returned graph aliases dst's storage (see CSR). edges must not alias
// dst's internal scratch (i.e. must not come from a previous FromEdgesInto
// on the same buffer).
func (g *Graph) SubgraphEdgesInto(edges []Edge, dst *CSR) *Graph {
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			panic("graph: SubgraphEdges edge not present in graph")
		}
	}
	return FromEdgesInto(g.N(), edges, dst)
}

// InducedNodes returns the subgraph induced on the nodes with keep[v]==true,
// preserving node ids (nodes outside the set become isolated). It runs at
// the pool's automatic worker count; use InducedNodesW to pin one.
func (g *Graph) InducedNodes(keep []bool) *Graph { return g.InducedNodesW(keep, 0) }

// InducedNodesW is InducedNodes with the rebuild sharded over vertex ranges
// on up to `workers` host workers. The result is identical at any worker
// count.
func (g *Graph) InducedNodesW(keep []bool, workers int) *Graph {
	dst := new(CSR)
	g.InducedNodesInto(keep, workers, dst)
	return dst.detach()
}

// InducedNodesInto is InducedNodesW writing into dst instead of allocating.
// The returned graph aliases dst's storage (see CSR). The result is
// byte-identical to InducedNodesW for any prior contents of dst.
func (g *Graph) InducedNodesInto(keep []bool, workers int, dst *CSR) *Graph {
	if len(keep) != g.N() {
		panic("graph: InducedNodes mask length mismatch")
	}
	return g.filterCSRInto(dst, workers, func(u, v NodeID) bool { return keep[u] && keep[v] })
}

// LineGraph returns the line graph L(G) together with the canonical edge
// list of g: node i of L(G) corresponds to edges[i], and two L(G)-nodes are
// adjacent iff the corresponding g-edges share an endpoint. A maximal
// matching of g is exactly an MIS of L(G) (Section 5 of the paper uses this
// reduction for small Δ).
func (g *Graph) LineGraph() (*Graph, []Edge) {
	edges := g.Edges()
	index := make(map[Edge]int32, len(edges))
	for i, e := range edges {
		index[e] = int32(i)
	}
	b := NewBuilder(len(edges))
	// Edges incident to the same node are pairwise adjacent in L(G).
	var ids []int32
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(NodeID(v))
		ids = Grow(ids, len(nbrs))
		for i, u := range nbrs {
			ids[i] = index[Edge{NodeID(v), u}.Canon()]
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				b.AddEdge(ids[i], ids[j])
			}
		}
	}
	return b.Build(), edges
}

// Square returns G², the graph on the same nodes where u ~ v iff their
// distance in g is 1 or 2. Section 5 colours G² so that 2-hop neighbours get
// distinct colours.
func (g *Graph) Square() *Graph {
	b := NewBuilder(g.N())
	seen := make(map[int64]struct{})
	addOnce := func(u, v NodeID) {
		if u == v {
			return
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		k := int64(a)<<32 | int64(c)
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		b.AddEdge(u, v)
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			addOnce(NodeID(u), v)
			for _, w := range g.Neighbors(v) {
				addOnce(NodeID(u), w)
			}
		}
	}
	return b.Build()
}

// BallScratch is the reusable working state of BallInto: a visited table
// (touched entries are restored after each call) and the ball buffer.
// Per-node ball enumeration is the dominant preprocessing cost of the
// Section 5 path, so callers scanning many centres keep one scratch per
// worker instead of paying a map allocation per centre. The zero value is
// ready to use.
type BallScratch struct {
	dist []int32 // -1 = unvisited; sized lazily to the graph
	ball []NodeID
}

// Ball returns the set of nodes within distance r of v (including v),
// sorted. For r = 2 this is the "2-hop neighbourhood" whose size the
// algorithms must bound by the machine space S.
func (g *Graph) Ball(v NodeID, r int) []NodeID {
	return g.BallInto(new(BallScratch), v, r)
}

// BallInto is Ball drawing all working state from s. The returned slice
// aliases s.ball and is valid until the next call with the same scratch.
func (g *Graph) BallInto(s *BallScratch, v NodeID, r int) []NodeID {
	n := g.N()
	if len(s.dist) < n {
		s.dist = make([]int32, n)
		for i := range s.dist {
			s.dist[i] = -1
		}
	}
	// BFS over the ball buffer itself: [head, tail) is the current
	// frontier, appends build the next one.
	ball := append(s.ball[:0], v)
	s.dist[v] = 0
	head := 0
	for d := 0; d < r; d++ {
		tail := len(ball)
		if head == tail {
			break
		}
		for ; head < tail; head++ {
			for _, w := range g.Neighbors(ball[head]) {
				if s.dist[w] < 0 {
					s.dist[w] = int32(d + 1)
					ball = append(ball, w)
				}
			}
		}
	}
	for _, u := range ball {
		s.dist[u] = -1
	}
	slices.Sort(ball)
	s.ball = ball
	return ball
}

// BallSizeMax returns the largest |Ball(v, r)| over all nodes; experiment T9
// uses it to demonstrate that 2-hop balls overflow machine space before
// sparsification and fit after.
func (g *Graph) BallSizeMax(r int) int {
	s := new(BallScratch)
	max := 0
	for v := 0; v < g.N(); v++ {
		if l := len(g.BallInto(s, NodeID(v), r)); l > max {
			max = l
		}
	}
	return max
}

// ConnectedComponents returns a component label per node and the component
// count (used by tests and examples).
func (g *Graph) ConnectedComponents() ([]int, int) {
	label := make([]int, g.N())
	for i := range label {
		label[i] = -1
	}
	count := 0
	var stack []NodeID
	for s := 0; s < g.N(); s++ {
		if label[s] != -1 {
			continue
		}
		stack = append(stack[:0], NodeID(s))
		label[s] = count
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if label[u] == -1 {
					label[u] = count
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return label, count
}

// EdgeDegrees returns, for each edge in the canonical list, the edge degree
// d(e) = number of other edges sharing an endpoint = d(u)+d(v)-2.
func (g *Graph) EdgeDegrees(edges []Edge) []int {
	out := make([]int, len(edges))
	for i, e := range edges {
		out[i] = g.Degree(e.U) + g.Degree(e.V) - 2
	}
	return out
}
