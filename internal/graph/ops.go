package graph

import (
	"sort"

	"repro/internal/parallel"
)

// WithoutNodes returns a graph on the same id space in which every node with
// remove[v] == true has been isolated (all incident edges dropped). Node ids
// are preserved, which keeps them stable across the iterations of the
// Luby-style loops in internal/matching and internal/mis. It runs at the
// pool's automatic worker count (one per CPU); use WithoutNodesW to pin one.
func (g *Graph) WithoutNodes(remove []bool) *Graph { return g.WithoutNodesW(remove, 0) }

// WithoutNodesW is WithoutNodes with the rebuild sharded over vertex ranges
// on up to `workers` host workers. The result is identical at any worker
// count.
func (g *Graph) WithoutNodesW(remove []bool, workers int) *Graph {
	if len(remove) != g.N() {
		panic("graph: WithoutNodes mask length mismatch")
	}
	return g.filterCSR(workers, func(u, v NodeID) bool { return !remove[u] && !remove[v] })
}

// filterCSR builds the subgraph keeping exactly the edges {u,v} with
// keep(u, v) == true, where keep must be symmetric. It filters the CSR arrays
// directly — two O(n+m) passes over cache-friendly contiguous slices, no
// sorting — instead of round-tripping through an edge list the way FromEdges
// does. Pass 1 counts surviving neighbours per node (sharded), a serial
// prefix sum lays out the new offsets, and pass 2 copies surviving
// neighbours into place (sharded, each node writing only its own range), so
// the result is deterministic at any worker count and neighbour lists stay
// sorted because the source lists are.
func (g *Graph) filterCSR(workers int, keep func(u, v NodeID) bool) *Graph {
	n := g.N()
	offsets := make([]int32, n+1)
	parallel.ForEach(workers, n, func(v int) {
		cnt := int32(0)
		for _, u := range g.Neighbors(NodeID(v)) {
			if keep(NodeID(v), u) {
				cnt++
			}
		}
		offsets[v+1] = cnt
	})
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]NodeID, offsets[n])
	parallel.ForEach(workers, n, func(v int) {
		w := offsets[v]
		for _, u := range g.Neighbors(NodeID(v)) {
			if keep(NodeID(v), u) {
				adj[w] = u
				w++
			}
		}
	})
	return &Graph{offsets: offsets, adj: adj, m: int(offsets[n]) / 2}
}

// SubgraphEdges returns the graph on the same id space containing exactly
// the given edges. Every edge must be an edge of g (checked), so the result
// is a subgraph.
func (g *Graph) SubgraphEdges(edges []Edge) *Graph {
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			panic("graph: SubgraphEdges edge not present in graph")
		}
	}
	return FromEdges(g.N(), edges)
}

// InducedNodes returns the subgraph induced on the nodes with keep[v]==true,
// preserving node ids (nodes outside the set become isolated). It runs at
// the pool's automatic worker count; use InducedNodesW to pin one.
func (g *Graph) InducedNodes(keep []bool) *Graph { return g.InducedNodesW(keep, 0) }

// InducedNodesW is InducedNodes with the rebuild sharded over vertex ranges
// on up to `workers` host workers. The result is identical at any worker
// count.
func (g *Graph) InducedNodesW(keep []bool, workers int) *Graph {
	if len(keep) != g.N() {
		panic("graph: InducedNodes mask length mismatch")
	}
	return g.filterCSR(workers, func(u, v NodeID) bool { return keep[u] && keep[v] })
}

// LineGraph returns the line graph L(G) together with the canonical edge
// list of g: node i of L(G) corresponds to edges[i], and two L(G)-nodes are
// adjacent iff the corresponding g-edges share an endpoint. A maximal
// matching of g is exactly an MIS of L(G) (Section 5 of the paper uses this
// reduction for small Δ).
func (g *Graph) LineGraph() (*Graph, []Edge) {
	edges := g.Edges()
	index := make(map[Edge]int32, len(edges))
	for i, e := range edges {
		index[e] = int32(i)
	}
	b := NewBuilder(len(edges))
	// Edges incident to the same node are pairwise adjacent in L(G).
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(NodeID(v))
		ids := make([]int32, len(nbrs))
		for i, u := range nbrs {
			ids[i] = index[Edge{NodeID(v), u}.Canon()]
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				b.AddEdge(ids[i], ids[j])
			}
		}
	}
	return b.Build(), edges
}

// Square returns G², the graph on the same nodes where u ~ v iff their
// distance in g is 1 or 2. Section 5 colours G² so that 2-hop neighbours get
// distinct colours.
func (g *Graph) Square() *Graph {
	b := NewBuilder(g.N())
	seen := make(map[int64]struct{})
	addOnce := func(u, v NodeID) {
		if u == v {
			return
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		k := int64(a)<<32 | int64(c)
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		b.AddEdge(u, v)
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			addOnce(NodeID(u), v)
			for _, w := range g.Neighbors(v) {
				addOnce(NodeID(u), w)
			}
		}
	}
	return b.Build()
}

// Ball returns the set of nodes within distance r of v (including v),
// sorted. For r = 2 this is the "2-hop neighbourhood" whose size the
// algorithms must bound by the machine space S.
func (g *Graph) Ball(v NodeID, r int) []NodeID {
	dist := map[NodeID]int{v: 0}
	frontier := []NodeID{v}
	for d := 0; d < r && len(frontier) > 0; d++ {
		var next []NodeID
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if _, ok := dist[w]; !ok {
					dist[w] = d + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	ball := make([]NodeID, 0, len(dist))
	for u := range dist {
		ball = append(ball, u)
	}
	sort.Slice(ball, func(i, j int) bool { return ball[i] < ball[j] })
	return ball
}

// BallSizeMax returns the largest |Ball(v, r)| over all nodes; experiment T9
// uses it to demonstrate that 2-hop balls overflow machine space before
// sparsification and fit after.
func (g *Graph) BallSizeMax(r int) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if s := len(g.Ball(NodeID(v), r)); s > max {
			max = s
		}
	}
	return max
}

// ConnectedComponents returns a component label per node and the component
// count (used by tests and examples).
func (g *Graph) ConnectedComponents() ([]int, int) {
	label := make([]int, g.N())
	for i := range label {
		label[i] = -1
	}
	count := 0
	var stack []NodeID
	for s := 0; s < g.N(); s++ {
		if label[s] != -1 {
			continue
		}
		stack = append(stack[:0], NodeID(s))
		label[s] = count
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if label[u] == -1 {
					label[u] = count
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return label, count
}

// EdgeDegrees returns, for each edge in the canonical list, the edge degree
// d(e) = number of other edges sharing an endpoint = d(u)+d(v)-2.
func (g *Graph) EdgeDegrees(edges []Edge) []int {
	out := make([]int, len(edges))
	for i, e := range edges {
		out[i] = g.Degree(e.U) + g.Degree(e.V) - 2
	}
	return out
}
