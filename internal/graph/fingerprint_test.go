package graph

import "testing"

// TestFingerprintCanonical pins the content-addressing contract: the
// fingerprint depends on the canonical structure only, so the same edge set
// in any insertion order (and with duplicates or self loops mixed in)
// hashes equal, while any structural change hashes differently.
func TestFingerprintCanonical(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	g := FromEdges(5, edges)

	reordered := FromEdges(5, []Edge{{1, 3}, {0, 3}, {2, 3}, {0, 1}, {1, 2}})
	noisy := FromEdges(5, append([]Edge{{2, 2}, {1, 2}, {2, 1}}, edges...))
	if g.Fingerprint() != reordered.Fingerprint() {
		t.Fatal("edge order changed the fingerprint")
	}
	if g.Fingerprint() != noisy.Fingerprint() {
		t.Fatal("dropped duplicates/self-loops changed the fingerprint")
	}
	if !g.Same(reordered) || !g.Same(noisy) {
		t.Fatal("Same disagrees with canonical equality")
	}

	// Structural changes must be visible.
	moreNodes := FromEdges(6, edges)
	fewerEdges := FromEdges(5, edges[:4])
	other := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {2, 4}})
	for name, h := range map[string]*Graph{"extra node": moreNodes, "missing edge": fewerEdges, "swapped edge": other} {
		if g.Fingerprint() == h.Fingerprint() {
			t.Errorf("%s: fingerprint collision", name)
		}
		if g.Same(h) {
			t.Errorf("%s: Same true for different graphs", name)
		}
	}
}

// TestFingerprintEmptyGraphs: every representation of the empty graph (nil,
// zero value, built with zero nodes) fingerprints alike and Same agrees.
func TestFingerprintEmptyGraphs(t *testing.T) {
	var nilG *Graph
	zero := &Graph{}
	built := FromEdges(0, nil)
	if nilG.Fingerprint() != zero.Fingerprint() || zero.Fingerprint() != built.Fingerprint() {
		t.Fatal("empty-graph representations fingerprint differently")
	}
	if !nilG.Same(zero) || !zero.Same(built) || !built.Same(nilG) {
		t.Fatal("empty-graph representations are not Same")
	}
	one := FromEdges(1, nil)
	if one.Fingerprint() == zero.Fingerprint() || one.Same(zero) {
		t.Fatal("one-node graph conflated with empty graph")
	}
}
