// Package graph provides the in-memory graph substrate shared by every
// algorithm in this repository: compressed-sparse-row (CSR) undirected
// graphs, builders, and the structural operations the paper needs (induced
// subgraphs, node removal, line graphs for maximal matching via MIS, the
// square graph G² for Linial colouring, and r-hop balls for Section 5).
//
// Graphs are immutable once built. Node ids are dense int32 values in
// [0, N); algorithms that remove nodes produce a new Graph with the same id
// space in which removed nodes are isolated, so ids remain stable across the
// iterations of Luby-style loops.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// NodeID identifies a node; ids are dense in [0, N).
type NodeID = int32

// Edge is an undirected edge with U < V canonically.
type Edge struct {
	U, V NodeID
}

// Canon returns e with endpoints swapped if necessary so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Key returns a canonical uint64 key for the edge in a graph with n nodes,
// suitable as a hash-function input: key = min*n + max < n².
func (e Edge) Key(n int) uint64 {
	c := e.Canon()
	return uint64(c.U)*uint64(n) + uint64(c.V)
}

// Graph is an immutable undirected graph in CSR form. The zero value is the
// empty graph with no nodes.
type Graph struct {
	offsets []int32  // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []NodeID // concatenated sorted neighbour lists (both directions)
	m       int      // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int {
	if g == nil || len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Fingerprint returns a 64-bit content hash of the graph: FNV-1a over the
// node count and the CSR arrays, which together determine the graph exactly
// (builders canonicalise edge lists — sorted adjacency, no duplicates or
// self loops — so structurally equal graphs hash equal regardless of input
// edge order). Two graphs with equal fingerprints are almost certainly
// identical; callers that must rule out the 2^-64 collision confirm with
// Same. Cost is one O(n+m) pass; a nil graph hashes like the empty graph.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint32) {
		h = (h ^ uint64(x&0xff)) * prime64
		h = (h ^ uint64((x>>8)&0xff)) * prime64
		h = (h ^ uint64((x>>16)&0xff)) * prime64
		h = (h ^ uint64(x>>24)) * prime64
	}
	mix(uint32(g.N()))
	if g.N() == 0 {
		// All empty-graph representations (nil, zero value, built) hash
		// alike, mirroring Same.
		return h
	}
	for _, o := range g.offsets {
		mix(uint32(o))
	}
	for _, v := range g.adj {
		mix(uint32(v))
	}
	return h
}

// Same reports whether g and h are structurally identical graphs (same node
// count, same canonical adjacency). It is the exact companion of
// Fingerprint: Same(h) implies equal fingerprints, and fingerprint-equal
// graphs are verified with Same where collisions matter.
func (g *Graph) Same(h *Graph) bool {
	gm, hm := 0, 0
	if g != nil {
		gm = g.m
	}
	if h != nil {
		hm = h.m
	}
	if g.N() != h.N() || gm != hm {
		return false
	}
	if g.N() == 0 {
		// Every zero-node graph (nil, the zero value, FromEdges(0, ...)) is
		// the same empty graph regardless of representation.
		return true
	}
	return slices.Equal(g.offsets, h.offsets) && slices.Equal(g.adj, h.adj)
}

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbour list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// MaxDegree returns the maximum degree Δ (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// Edges returns the canonical edge list, sorted by (U, V). The slice is
// freshly allocated on every call; round loops use EdgesAppend with a
// recycled buffer instead.
func (g *Graph) Edges() []Edge {
	return g.EdgesAppend(make([]Edge, 0, g.m))
}

// EdgesAppend appends the canonical edge list, sorted by (U, V), to dst[:0]
// and returns it (the Into-style variant of Edges for scratch reuse).
func (g *Graph) EdgesAppend(dst []Edge) []Edge {
	dst = dst[:0]
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				dst = append(dst, Edge{NodeID(u), v})
			}
		}
	}
	return dst
}

// Degrees returns the degree slice indexed by node.
func (g *Graph) Degrees() []int {
	return g.DegreesInto(make([]int, g.N()))
}

// DegreesInto fills dst (which must have length N) with the degree of each
// node and returns it (the Into-style variant of Degrees for scratch reuse).
func (g *Graph) DegreesInto(dst []int) []int {
	if len(dst) != g.N() {
		panic("graph: DegreesInto length mismatch")
	}
	for v := range dst {
		dst[v] = g.Degree(NodeID(v))
	}
	return dst
}

// Clone returns a deep copy (useful when callers want to retain a snapshot;
// Graph itself is immutable, so this is rarely needed outside tests).
func (g *Graph) Clone() *Graph {
	return &Graph{
		offsets: append([]int32(nil), g.offsets...),
		adj:     append([]NodeID(nil), g.adj...),
		m:       g.m,
	}
}

// String returns a short diagnostic description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}

// Builder accumulates edges and produces a Graph. Duplicate edges and self
// loops are dropped. The zero value is unusable; construct with NewBuilder.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v}. Self loops are ignored.
// It panics on out-of-range endpoints.
func (b *Builder) AddEdge(u, v NodeID) {
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, Edge{u, v}.Canon())
}

// Build finalises the graph. The builder may be reused afterwards (its edge
// buffer is retained).
func (b *Builder) Build() *Graph {
	return FromEdges(b.n, b.edges)
}

// FromEdges builds a graph on n nodes from an edge list. Duplicates and self
// loops are removed; the input slice is not modified. The graph is detached
// from the build buffer (see CSR.detach), so holding it pins only the CSR
// arrays it uses, not the build scratch.
func FromEdges(n int, edges []Edge) *Graph {
	dst := new(CSR)
	FromEdgesInto(n, edges, dst)
	return dst.detach()
}

// FromEdgesInto is FromEdges writing into dst instead of allocating. The
// returned graph aliases dst's storage (see CSR); the input slice is not
// modified and must not alias dst's internal scratch. The result is
// byte-identical to FromEdges for any prior contents of dst.
func FromEdgesInto(n int, edges []Edge, dst *CSR) *Graph {
	canon := Grow(dst.edges, len(edges))[:0]
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if int(e.U) >= n || int(e.V) >= n || e.U < 0 || e.V < 0 {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n))
		}
		canon = append(canon, e.Canon())
	}
	dst.edges = canon
	// slices.SortFunc rather than sort.Slice: the generic sort allocates
	// nothing, where the reflective one costs two heap objects per call —
	// material here because the round loops rebuild graphs every iteration.
	slices.SortFunc(canon, func(a, b Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
	// Deduplicate in place.
	uniq := canon[:0]
	for i, e := range canon {
		if i == 0 || e != canon[i-1] {
			uniq = append(uniq, e)
		}
	}
	deg := Grow(dst.offsets, n+1)
	clear(deg)
	for _, e := range uniq {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	offsets := deg
	adj := Grow(dst.adj, int(offsets[n]))
	cursor := Grow(dst.cursor, n)
	clear(cursor)
	for _, e := range uniq {
		adj[offsets[e.U]+cursor[e.U]] = e.V
		cursor[e.U]++
		adj[offsets[e.V]+cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Neighbour lists are already sorted because edges were sorted by (U,V)
	// for the U side, but the V side receives entries ordered by U, which is
	// sorted too. Sort defensively anyway (allocation-free slices.Sort):
	// correctness beats micro-cost.
	for v := 0; v < n; v++ {
		slices.Sort(adj[offsets[v]:offsets[v+1]])
	}
	dst.offsets, dst.adj, dst.cursor = offsets, adj, cursor
	dst.g = Graph{offsets: offsets, adj: adj, m: len(uniq)}
	return &dst.g
}

// Empty returns the graph with n nodes and no edges.
func Empty(n int) *Graph {
	return FromEdges(n, nil)
}
