package graph

import "testing"

func TestGrow(t *testing.T) {
	b := make([]int, 4, 16)
	g := Grow(b, 10)
	if len(g) != 10 || &g[0] != &b[0] {
		t.Fatal("Grow should reuse capacity")
	}
	g2 := Grow(b, 32)
	if len(g2) != 32 {
		t.Fatal("Grow should allocate when capacity is short")
	}
}
