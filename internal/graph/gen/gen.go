// Package gen provides the deterministic workload generators used by the
// experiment harness: classical random graph models seeded through
// internal/detrand plus the structured families (grids, stars, trees) that
// exercise the algorithms' edge cases. Every generator is a pure function of
// its arguments, so experiment tables are exactly reproducible.
package gen

import (
	"fmt"
	"math"

	"repro/internal/detrand"
	"repro/internal/graph"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }
func log1p(x float64) float64  { return math.Log1p(x) }

// GNM returns a uniform random simple graph with n nodes and (up to) m
// distinct edges, sampled by rejection. m is clamped to n(n-1)/2.
func GNM(n, m int, seed uint64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	r := detrand.New(seed)
	type key struct{ u, v int32 }
	seen := make(map[key]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// GNP returns an Erdős–Rényi G(n,p) graph. Suitable for modest n (it visits
// all pairs via geometric skipping, O(n + m) expected time).
func GNP(n int, p float64, seed uint64) *graph.Graph {
	if p <= 0 {
		return graph.Empty(n)
	}
	if p >= 1 {
		return Complete(n)
	}
	r := detrand.New(seed)
	var edges []graph.Edge
	// Skip-sampling over the linearised upper triangle.
	total := int64(n) * int64(n-1) / 2
	pos := int64(-1)
	for {
		// Geometric(p) skip: number of failures before next success.
		u01 := r.Float64()
		if u01 >= 1 {
			u01 = 0.9999999999
		}
		skip := int64(logOneMinus(u01) / logOneMinus(p))
		pos += skip + 1
		if pos >= total {
			break
		}
		u, v := unrank(pos, n)
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// logOneMinus returns ln(1-x) for x in [0,1).
func logOneMinus(x float64) float64 {
	// ln(1-x) via the standard library would import math; a tiny series is
	// not acceptable for accuracy, so use the identity with math.Log1p.
	return log1p(-x)
}

// unrank maps a linear index over the upper triangle to the pair (u,v).
func unrank(pos int64, n int) (int32, int32) {
	// Row u contributes n-1-u entries; find u by walking (fast enough since
	// generation cost is dominated by m anyway), then v.
	u := int64(0)
	rowLen := int64(n - 1)
	for pos >= rowLen {
		pos -= rowLen
		u++
		rowLen--
	}
	return int32(u), int32(u + 1 + pos)
}

// PowerLaw returns a Chung–Lu style power-law graph: node v gets weight
// w_v ∝ (v+1)^(-1/(beta-1)) scaled so the expected edge count is about m,
// and each candidate edge is included with probability min(1, w_u·w_v/W).
// beta around 2.5 mimics social-network degree distributions (the workloads
// the paper's introduction motivates).
func PowerLaw(n, m int, beta float64, seed uint64) *graph.Graph {
	if beta <= 1 {
		panic("gen: PowerLaw requires beta > 1")
	}
	r := detrand.New(seed)
	weights := make([]float64, n)
	totalW := 0.0
	for v := range weights {
		weights[v] = pow(float64(v+1), -1/(beta-1))
		totalW += weights[v]
	}
	// Scale weights so that sum of expected degrees ~ 2m.
	scale := float64(2*m) / totalW
	for v := range weights {
		weights[v] *= scale
	}
	sumW := 0.0
	for _, w := range weights {
		sumW += w
	}
	// Sample by drawing endpoints proportional to weight (alias-free:
	// inverse CDF on a prefix table), then accepting distinct pairs.
	prefix := make([]float64, n+1)
	for v := 0; v < n; v++ {
		prefix[v+1] = prefix[v] + weights[v]
	}
	draw := func() int32 {
		x := r.Float64() * sumW
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= n {
			lo = n - 1
		}
		return int32(lo)
	}
	type key struct{ u, v int32 }
	seen := make(map[key]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	attempts := 0
	for len(edges) < m && attempts < 50*m+1000 {
		attempts++
		u, v := draw(), draw()
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// RandomRegular returns a (near-)d-regular graph via the permutation model:
// d/2 random perfect matchings over 2 copies are approximated by stacking d
// random permutations and dropping collisions, so a few nodes may have
// degree slightly below d. d*n must be even-ish but is not required.
func RandomRegular(n, d int, seed uint64) *graph.Graph {
	if d >= n {
		d = n - 1
	}
	r := detrand.New(seed)
	type key struct{ u, v int32 }
	seen := make(map[key]struct{}, n*d/2)
	edges := make([]graph.Edge, 0, n*d/2)
	add := func(u, v int32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	for rep := 0; rep < (d+1)/2; rep++ {
		perm := r.Perm(n)
		for i := 0; i < n; i++ {
			add(int32(i), int32(perm[i]))
		}
	}
	return graph.FromEdges(n, edges)
}

// Grid2D returns the rows×cols grid graph (Δ = 4), a natural low-degree
// workload for the Section 5 algorithm.
func Grid2D(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with the left part on ids [0,a).
func CompleteBipartite(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(int32(u), int32(a+v))
		}
	}
	return bl.Build()
}

// Star returns the star K_{1,n-1} with centre 0 — the worst case for degree
// skew (one node in the top degree class, all others in the bottom).
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, int32(v))
	}
	return b.Build()
}

// Path returns the path P_n.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Build()
}

// Cycle returns the cycle C_n.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	if n > 2 {
		b.AddEdge(int32(n-1), 0)
	}
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree (Prüfer-free: random
// attachment), Δ typically O(log n / log log n).
func RandomTree(n int, seed uint64) *graph.Graph {
	r := detrand.New(seed)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(r.Intn(v)))
	}
	return b.Build()
}

// Caterpillar returns a path of length spineLen with legs legs per spine
// node; with many legs it concentrates mass in the low-degree classes while
// keeping spine nodes heavy, exercising the class-selection logic.
func Caterpillar(spineLen, legs int) *graph.Graph {
	n := spineLen * (1 + legs)
	b := graph.NewBuilder(n)
	for s := 0; s+1 < spineLen; s++ {
		b.AddEdge(int32(s), int32(s+1))
	}
	next := spineLen
	for s := 0; s < spineLen; s++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(int32(s), int32(next))
			next++
		}
	}
	return b.Build()
}

// ByName returns a generator selected by name with a default parameterisation
// around n nodes and avgDeg average degree. It is the dispatch used by the
// CLI tools. Unknown names return an error.
func ByName(name string, n, avgDeg int, seed uint64) (*graph.Graph, error) {
	switch name {
	case "gnm":
		return GNM(n, n*avgDeg/2, seed), nil
	case "gnp":
		p := float64(avgDeg) / float64(n-1)
		return GNP(n, p, seed), nil
	case "powerlaw":
		return PowerLaw(n, n*avgDeg/2, 2.5, seed), nil
	case "regular":
		return RandomRegular(n, avgDeg, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return Grid2D(side, side), nil
	case "complete":
		return Complete(n), nil
	case "star":
		return Star(n), nil
	case "path":
		return Path(n), nil
	case "cycle":
		return Cycle(n), nil
	case "tree":
		return RandomTree(n, seed), nil
	case "caterpillar":
		return Caterpillar(n/9, 8), nil
	case "bipartite":
		return CompleteBipartite(n/2, n-n/2), nil
	default:
		return nil, fmt.Errorf("gen: unknown graph family %q", name)
	}
}

// Names lists the families ByName accepts.
func Names() []string {
	return []string{"gnm", "gnp", "powerlaw", "regular", "grid", "complete",
		"star", "path", "cycle", "tree", "caterpillar", "bipartite"}
}
