package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestGNMBasic(t *testing.T) {
	g := GNM(100, 300, 1)
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() != 300 {
		t.Errorf("m = %d, want 300", g.M())
	}
}

func TestGNMClampsToCompleteGraph(t *testing.T) {
	g := GNM(5, 100, 1)
	if g.M() != 10 {
		t.Errorf("m = %d, want 10 (K5)", g.M())
	}
}

func TestGNMDeterministic(t *testing.T) {
	a, b := GNM(64, 128, 7), GNM(64, 128, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c := GNM(64, 128, 8)
	same := c.M() == a.M()
	if same {
		diff := false
		ec := c.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGNPDensity(t *testing.T) {
	n, p := 400, 0.05
	g := GNP(n, p, 3)
	expect := p * float64(n*(n-1)/2)
	if g.M() < int(expect*0.8) || g.M() > int(expect*1.2) {
		t.Errorf("GNP m = %d, expected about %.0f", g.M(), expect)
	}
}

func TestGNPExtremes(t *testing.T) {
	if g := GNP(10, 0, 1); g.M() != 0 {
		t.Error("GNP(p=0) has edges")
	}
	if g := GNP(10, 1, 1); g.M() != 45 {
		t.Errorf("GNP(p=1).M = %d, want 45", g.M())
	}
}

func TestPowerLawShape(t *testing.T) {
	g := PowerLaw(2000, 6000, 2.5, 11)
	if g.N() != 2000 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() < 4000 {
		t.Errorf("m = %d, want close to 6000", g.M())
	}
	// Degree skew: max degree should far exceed average degree.
	avg := 2 * g.M() / g.N()
	if g.MaxDegree() < 4*avg {
		t.Errorf("power law not skewed: Δ=%d avg=%d", g.MaxDegree(), avg)
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	d := 8
	g := RandomRegular(500, d, 5)
	over := 0
	sum := 0
	for v := 0; v < g.N(); v++ {
		dv := g.Degree(int32(v))
		sum += dv
		if dv > d+1 {
			over++
		}
	}
	if over > 0 {
		t.Errorf("%d nodes exceed target degree", over)
	}
	if avg := float64(sum) / float64(g.N()); avg < float64(d)*0.85 {
		t.Errorf("average degree %.2f too low for target %d", avg, d)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 5)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	wantM := 4*4 + 3*5 // horizontal + vertical
	if g.M() != wantM {
		t.Errorf("m = %d, want %d", g.M(), wantM)
	}
	if g.MaxDegree() != 4 {
		t.Errorf("Δ = %d, want 4", g.MaxDegree())
	}
}

func TestCompleteAndBipartite(t *testing.T) {
	if g := Complete(7); g.M() != 21 || g.MaxDegree() != 6 {
		t.Errorf("K7 wrong: m=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || g.MaxDegree() != 4 {
		t.Errorf("K(3,4) wrong: m=%d Δ=%d", g.M(), g.MaxDegree())
	}
}

func TestStarPathCycle(t *testing.T) {
	if g := Star(10); g.M() != 9 || g.Degree(0) != 9 {
		t.Error("Star wrong")
	}
	if g := Path(10); g.M() != 9 || g.MaxDegree() != 2 {
		t.Error("Path wrong")
	}
	if g := Cycle(10); g.M() != 10 || g.MaxDegree() != 2 {
		t.Error("Cycle wrong")
	}
	if g := Cycle(2); g.M() != 1 {
		t.Errorf("Cycle(2).M = %d, want 1", g.M())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	g := RandomTree(200, 9)
	if g.M() != 199 {
		t.Fatalf("tree edge count %d", g.M())
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Errorf("tree has %d components", count)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() != 4+15 {
		t.Errorf("m = %d, want 19", g.M())
	}
}

func TestByNameAllFamilies(t *testing.T) {
	for _, name := range Names() {
		g, err := ByName(name, 64, 4, 1)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("ByName(%q): empty graph", name)
		}
		var _ *graph.Graph = g
	}
	if _, err := ByName("nope", 10, 2, 1); err == nil {
		t.Error("unknown family did not error")
	}
}
