package graph

import (
	"reflect"
	"testing"
)

// pseudoGraph builds a deterministic scrambled graph for property tests.
func pseudoGraph(n, m int, seed uint64) *Graph {
	s := seed
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := NodeID(next() % uint64(n))
		v := NodeID(next() % uint64(n))
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	return FromEdges(n, edges)
}

// referenceFilter is the pre-CSR-rewrite implementation of the node filters:
// collect surviving edges and round-trip through FromEdges.
func referenceFilter(g *Graph, keep func(u, v NodeID) bool) *Graph {
	edges := make([]Edge, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v && keep(NodeID(u), v) {
				edges = append(edges, Edge{NodeID(u), v})
			}
		}
	}
	return FromEdges(g.N(), edges)
}

// TestFilterCSRMatchesReference pins the direct CSR filter against the
// edge-list reference on a grid of graphs, masks and worker counts.
func TestFilterCSRMatchesReference(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 0}, {7, 9}, {64, 256}, {200, 1500}, {333, 40}} {
		g := pseudoGraph(tc.n, tc.m, uint64(tc.n*31+tc.m))
		for maskKind := 0; maskKind < 3; maskKind++ {
			mask := make([]bool, g.N())
			for v := range mask {
				switch maskKind {
				case 0:
					mask[v] = v%3 == 0
				case 1:
					mask[v] = false
				case 2:
					mask[v] = true
				}
			}
			wantW := referenceFilter(g, func(u, v NodeID) bool { return !mask[u] && !mask[v] })
			wantI := referenceFilter(g, func(u, v NodeID) bool { return mask[u] && mask[v] })
			for _, workers := range []int{1, 2, 8} {
				gotW := g.WithoutNodesW(mask, workers)
				if !sameGraph(gotW, wantW) {
					t.Fatalf("n=%d m=%d mask=%d workers=%d: WithoutNodesW mismatch", tc.n, tc.m, maskKind, workers)
				}
				gotI := g.InducedNodesW(mask, workers)
				if !sameGraph(gotI, wantI) {
					t.Fatalf("n=%d m=%d mask=%d workers=%d: InducedNodesW mismatch", tc.n, tc.m, maskKind, workers)
				}
			}
		}
	}
}

func sameGraph(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	return reflect.DeepEqual(a.Edges(), b.Edges())
}

// TestFilterCSRKeepsNeighborListsSorted guards the sortedness invariant that
// HasEdge's binary search relies on.
func TestFilterCSRKeepsNeighborListsSorted(t *testing.T) {
	g := pseudoGraph(100, 600, 5)
	mask := make([]bool, g.N())
	for v := range mask {
		mask[v] = v%4 == 1
	}
	h := g.WithoutNodesW(mask, 4)
	for v := 0; v < h.N(); v++ {
		nbrs := h.Neighbors(NodeID(v))
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("node %d: neighbours not strictly sorted: %v", v, nbrs)
			}
		}
	}
}
