package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the plain edge-list format used by the CLI
// tools: a header line "n m", then one "u v" line per canonical edge.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format produced by WriteEdgeList.
// Lines starting with '#' or '%' and blank lines are ignored (so DIMACS-ish
// and SNAP-style comment headers pass through). The first data line must be
// "n" or "n m"; every following data line is an edge "u v". Duplicate edges
// and self loops are dropped, matching the Builder semantics. Node ids must
// lie in [0, n).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	n := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if n < 0 {
			if len(fields) < 1 || len(fields) > 2 {
				return nil, fmt.Errorf("graph: line %d: header must be \"n\" or \"n m\"", line)
			}
			v, err := strconv.Atoi(fields[0])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[0])
			}
			n = v
			b = NewBuilder(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: edge must be \"u v\"", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[1])
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range [0,%d)", line, n)
		}
		b.AddEdge(NodeID(u), NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: empty input (missing header)")
	}
	return b.Build(), nil
}
