package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want %d,%d", h.N(), h.M(), g.N(), g.M())
	}
	ea, eb := g.Edges(), h.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	input := `# a comment
% another style

4 3
0 1

2 3
# trailing comment
1 2
`
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListHeaderOnly(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.M() != 0 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "x y z\n",
		"negative n":     "-3\n",
		"bad edge arity": "4\n1 2 3\n",
		"bad endpoint":   "4\n1 x\n",
		"out of range":   "4\n1 9\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestReadEdgeListDropsDuplicatesAndLoops(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3\n0 1\n1 0\n2 2\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("m = %d, want 1", g.M())
	}
}
