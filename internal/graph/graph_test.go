package graph

import (
	"testing"
	"testing/quick"
)

func triangle() *Graph {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := Empty(5)
	if g.N() != 5 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Errorf("Empty(5): n=%d m=%d Δ=%d", g.N(), g.M(), g.MaxDegree())
	}
	var zero Graph
	if zero.N() != 0 || zero.M() != 0 {
		t.Error("zero-value Graph should be the empty graph")
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if g.Degree(2) != 1 {
		t.Errorf("self loop not dropped: deg(2)=%d", g.Degree(2))
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestTriangleBasics(t *testing.T) {
	g := triangle()
	if g.N() != 3 || g.M() != 3 || g.MaxDegree() != 2 {
		t.Fatalf("triangle wrong: %v", g)
	}
	for v := NodeID(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("deg(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 0) {
		t.Error("HasEdge wrong")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(3, 5)
	b.AddEdge(3, 1)
	b.AddEdge(3, 4)
	b.AddEdge(3, 0)
	g := b.Build()
	nbrs := g.Neighbors(3)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbours not sorted: %v", nbrs)
		}
	}
}

func TestEdgesCanonicalAndComplete(t *testing.T) {
	g := triangle()
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("|edges| = %d", len(edges))
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Errorf("edge not canonical: %v", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge list contains non-edge %v", e)
		}
	}
}

func TestEdgeKeyInjective(t *testing.T) {
	n := 50
	seen := map[uint64]Edge{}
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			e := Edge{u, v}
			k := e.Key(n)
			if prev, dup := seen[k]; dup {
				t.Fatalf("key collision: %v and %v -> %d", prev, e, k)
			}
			seen[k] = e
		}
	}
	// Canonicalisation: both orientations give the same key.
	if (Edge{7, 3}).Key(n) != (Edge{3, 7}).Key(n) {
		t.Error("Key not orientation-invariant")
	}
}

func TestWithoutNodes(t *testing.T) {
	g := triangle()
	h := g.WithoutNodes([]bool{true, false, false})
	if h.N() != 3 {
		t.Fatalf("id space changed: n=%d", h.N())
	}
	if h.M() != 1 || !h.HasEdge(1, 2) || h.Degree(0) != 0 {
		t.Errorf("WithoutNodes wrong: m=%d", h.M())
	}
}

func TestInducedNodes(t *testing.T) {
	// Path 0-1-2-3; induce on {0,1,3}: only edge 0-1 survives.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	h := g.InducedNodes([]bool{true, true, false, true})
	if h.M() != 1 || !h.HasEdge(0, 1) {
		t.Errorf("InducedNodes wrong: m=%d", h.M())
	}
}

func TestSubgraphEdgesValidates(t *testing.T) {
	g := Path(4)
	defer func() {
		if recover() == nil {
			t.Error("SubgraphEdges with non-edge did not panic")
		}
	}()
	g.SubgraphEdges([]Edge{{0, 3}})
}

func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

func TestLineGraphOfTriangle(t *testing.T) {
	// L(K3) = K3.
	lg, edges := triangle().LineGraph()
	if lg.N() != 3 || lg.M() != 3 {
		t.Errorf("L(K3): n=%d m=%d, want 3,3", lg.N(), lg.M())
	}
	if len(edges) != 3 {
		t.Errorf("edge list length %d", len(edges))
	}
}

func TestLineGraphOfPath(t *testing.T) {
	// L(P4) = P3.
	lg, _ := Path(4).LineGraph()
	if lg.N() != 3 || lg.M() != 2 {
		t.Errorf("L(P4): n=%d m=%d, want 3,2", lg.N(), lg.M())
	}
}

func TestLineGraphDegreeIdentity(t *testing.T) {
	// d_L(e) = d(u) + d(v) - 2 for e = {u,v}.
	b := NewBuilder(7)
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}, {4, 5}, {5, 6}, {3, 6}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	lg, edges := g.LineGraph()
	for i, e := range edges {
		want := g.Degree(e.U) + g.Degree(e.V) - 2
		if got := lg.Degree(NodeID(i)); got != want {
			t.Errorf("d_L(%v) = %d, want %d", e, got, want)
		}
	}
}

func TestSquareOfPath(t *testing.T) {
	// P5 squared: node 2 additionally sees 0 and 4.
	g := Path(5).Square()
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 4) || g.HasEdge(0, 3) {
		t.Error("Square of P5 wrong")
	}
	if g.Degree(2) != 4 {
		t.Errorf("deg_G2(2) = %d, want 4", g.Degree(2))
	}
}

func TestSquareContainsOriginal(t *testing.T) {
	g := triangle()
	sq := g.Square()
	for _, e := range g.Edges() {
		if !sq.HasEdge(e.U, e.V) {
			t.Errorf("G² missing original edge %v", e)
		}
	}
}

func TestBall(t *testing.T) {
	g := Path(7)
	ball := g.Ball(3, 2)
	want := []NodeID{1, 2, 3, 4, 5}
	if len(ball) != len(want) {
		t.Fatalf("Ball(3,2) = %v, want %v", ball, want)
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("Ball(3,2) = %v, want %v", ball, want)
		}
	}
	if s := g.BallSizeMax(1); s != 3 {
		t.Errorf("BallSizeMax(1) = %d, want 3", s)
	}
}

func TestBallRadiusZero(t *testing.T) {
	g := triangle()
	if ball := g.Ball(1, 0); len(ball) != 1 || ball[0] != 1 {
		t.Errorf("Ball(v,0) = %v", ball)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	label, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if label[0] != label[2] || label[3] != label[4] || label[0] == label[3] || label[5] == label[0] {
		t.Errorf("labels wrong: %v", label)
	}
}

func TestEdgeDegrees(t *testing.T) {
	g := triangle()
	edges := g.Edges()
	for i, d := range g.EdgeDegrees(edges) {
		if d != 2 {
			t.Errorf("edge degree of %v = %d, want 2", edges[i], d)
		}
	}
}

func TestDegreeSumIsTwiceM(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 40
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(raw[i]%n), NodeID(raw[i+1]%n))
		}
		g := b.Build()
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(NodeID(v))
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 30
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(raw[i]%n), NodeID(raw[i+1]%n))
		}
		g := b.Build()
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(NodeID(v)) {
				if !g.HasEdge(u, NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := triangle()
	h := g.Clone()
	if h.N() != g.N() || h.M() != g.M() {
		t.Error("clone differs")
	}
	h.adj[0] = 99 // mutate clone's storage
	if g.adj[0] == 99 {
		t.Error("clone shares storage with original")
	}
}
