// Package mis implements Theorem 14 of the paper: a deterministic fully
// scalable MPC algorithm computing a maximal independent set in O(log n)
// rounds with O(n^ε) space per machine.
//
// Each outer iteration (Algorithm 3) runs in O(1) charged MPC rounds:
//
//  1. isolated nodes join the MIS;
//  2. the node sparsification of Section 4.2 picks the class Q0 = C_i whose
//     good nodes B (Corollary 16) see a δ/3 reciprocal-degree mass in C_i,
//     and subsamples Q0 down to Q' with induced degree O(n^{4δ});
//  3. every B-node's machine gathers a set N_v of up to n^{4δ} of its Q'
//     neighbours with their Q'-neighbourhoods (asserted <= space budget);
//  4. one Luby step is derandomized: nodes get pairwise-independent
//     z-values, the candidate independent set I_h consists of the Q'-local
//     minima, and the seed search targets a constant fraction of Lemma 21's
//     bound E[Σ_{v∈N_h} d(v)] >= 0.01δ·Σ_{v∈B} d(v);
//  5. I_h joins the output and I_h ∪ N(I_h) leaves the graph.
//
// As with matching, correctness is unconditional: I_h is independent by
// construction, non-empty whenever edges remain, and the loop ends with all
// surviving nodes isolated and added to the MIS.
package mis

import (
	"repro/internal/condexp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashfam"
	"repro/internal/parallel"
	"repro/internal/scratch"
	"repro/internal/simcost"
	"repro/internal/sparsify"
)

// IterStats records one outer iteration.
type IterStats struct {
	Iteration        int
	EdgesBefore      int
	EdgesAfter       int
	RemovedFraction  float64
	ClassIndex       int
	Stages           int
	SparsifyFallback bool
	QSize            int
	QMaxDegree       int
	MaxMachineWords  int
	SeedsTried       int
	SeedFound        bool
	Selected         int // |I_h|
	Removed          int // |I_h ∪ N(I_h)|
	ObjectiveValue   int64
	Threshold        int64
	IsolatedJoined   int
}

// Result is the outcome of the deterministic MIS computation.
type Result struct {
	IndependentSet []graph.NodeID
	Iterations     []IterStats
	// Canceled is set when Params.Done stopped the solve at a round (or
	// seed-batch) boundary; IndependentSet is then partial and NOT maximal,
	// and the caller must surface an error instead of the result.
	Canceled bool
}

// Deterministic computes a maximal independent set of g with the
// derandomized algorithm of Section 4. It is DeterministicIn with a private
// scratch context; repeated solvers (the Engine) share one.
func Deterministic(g *graph.Graph, p core.Params, model *simcost.Model) *Result {
	return DeterministicIn(scratch.New(), g, p, model)
}

// misEval is the per-worker pooled state of one candidate-seed objective
// evaluation: the I_h membership mask (touched entries are reset after each
// use), the I_h node buffer, the per-seed z vector of the kernel path, and
// (for the scalar reference path) a permanent z-closure reading the current
// seed through the seed field. Either way an evaluation allocates nothing.
type misEval struct {
	inIh []bool
	ih   []graph.NodeID
	z    []uint64      // kernel path: EvalKeys output over the node key vector
	tile scratch.Tile  // blocked path: one z row per seed of a BlockSeeds group
	nf   core.NodeFold // dense rounds: flat per-seed selection tables
	seed []uint64
	zf   func(graph.NodeID) uint64
}

// DeterministicIn is Deterministic drawing every per-round buffer from sc:
// sparsification state, the flattened N_v tables, the removal mask, and the
// shrinking outer-loop graph, which ping-pongs between sc's two loop CSR
// buffers. Per-seed selection state inside the objective is pooled per
// worker. The output is bit-identical to Deterministic at any worker count
// and for any prior state of sc; sc is Reset at every round boundary and
// left Reset on return.
func DeterministicIn(sc *scratch.Context, g *graph.Graph, p core.Params, model *simcost.Model) *Result {
	p.Validate()
	n := g.N()
	res := &Result{}
	if n == 0 {
		return res
	}
	cur := g
	// Solve-lifetime state stays off the arena: the arena is Reset each
	// round, while these masks accumulate across rounds.
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	inMIS := make([]bool, n)
	fam := core.PairwiseFamily(n)
	evaluator := hashfam.NewEvaluator(fam)
	// The slot-0 node keys are seed-independent, so the kernel path builds a
	// per-round NodeSel over the round's Q' candidates: each candidate seed
	// then costs one EvalKeys pass of length |Q'| — the touched set — rather
	// than the full id space, and the selection iterates the live list
	// through the epoch-stamped position index.
	sel := sc.NodeSel()
	slotKeyOf := func(v graph.NodeID) uint64 { return core.SlotKey(uint64(v), 0, n) }
	gamma := core.NewDegreeClasses(n, p.InvDelta).GroupSize()
	evalPool := scratch.NewPerWorker(func() *misEval {
		ev := &misEval{inIh: make([]bool, n)}
		ev.zf = func(v graph.NodeID) uint64 {
			return fam.Eval(ev.seed, core.SlotKey(uint64(v), 0, n))
		}
		return ev
	})
	// localMin computes I_h for one seed into dst, through the kernel (z
	// vector shared via ev.z) or the scalar closure reference.
	localMin := func(ev *misEval, dst []graph.NodeID, q *graph.Graph, inQ []bool, seed []uint64, workers int) []graph.NodeID {
		if p.ScalarObjectives {
			ev.seed = seed
			return core.LocalMinNodesInto(dst, q, inQ, ev.zf)
		}
		ev.z = graph.Grow(ev.z, len(sel.Keys()))
		return core.LocalMinNodesSelIn(&ev.nf, dst, q, sel, evaluator.EvalKeysW(seed, sel.Keys(), ev.z, workers))
	}

	joinIsolated := func(st *IterStats) {
		for v := 0; v < n; v++ {
			if alive[v] && cur.Degree(graph.NodeID(v)) == 0 {
				inMIS[v] = true
				alive[v] = false
				if st != nil {
					st.IsolatedJoined++
				}
			}
		}
	}

	for iter := 1; ; iter++ {
		st := IterStats{Iteration: iter, EdgesBefore: cur.M()}
		joinIsolated(&st)
		if cur.M() == 0 {
			if st.IsolatedJoined > 0 {
				res.Iterations = append(res.Iterations, st)
			}
			break
		}
		// Round boundary: the solve's cancellation checkpoint.
		if p.Canceled() {
			res.Canceled = true
			break
		}
		// Observer-only live count; unobserved solves skip it.
		liveNodes := 0
		if p.Observe != nil {
			for v := 0; v < n; v++ {
				if alive[v] {
					liveNodes++
				}
			}
		}

		sp := sparsify.SparsifyNodesIn(sc, cur, p, model)
		if p.Canceled() {
			// The node sparsification may have been abandoned mid-chain.
			res.Canceled = true
			break
		}
		q := sp.QGraph
		st.ClassIndex = sp.ClassIndex
		st.Stages = len(sp.Stages)
		st.SparsifyFallback = sp.UsedFallback
		st.QSize = len(sp.QList)
		st.QMaxDegree = q.MaxDegree()

		// N_v construction (Section 4.3): up to γ of v's Q'-neighbours (the
		// smallest ids — "an arbitrary subset" — for determinism), plus
		// their Q'-neighbourhoods on v's machine. The per-owner lists are
		// flattened into one arena-backed array with an offsets table so a
		// round costs no per-node allocations.
		nvFlat := sc.NodeIDsCap(2 * cur.M())
		nvStart := sc.IntsCap(n + 1)
		nvOwner := sc.NodeIDsCap(n)
		nvStart = append(nvStart, 0)
		maxWords := 0
		for v := 0; v < n; v++ {
			if !sp.B[v] {
				continue
			}
			lo := len(nvFlat)
			for _, u := range cur.Neighbors(graph.NodeID(v)) {
				if sp.Q[u] {
					nvFlat = append(nvFlat, u)
					if len(nvFlat)-lo == gamma {
						break
					}
				}
			}
			if len(nvFlat) == lo {
				continue
			}
			words := len(nvFlat) - lo
			for _, u := range nvFlat[lo:] {
				words += q.Degree(u)
			}
			if words > maxWords {
				maxWords = words
			}
			nvStart = append(nvStart, len(nvFlat))
			nvOwner = append(nvOwner, graph.NodeID(v))
		}
		st.MaxMachineWords = maxWords
		model.AssertMachineWords(maxWords, "mis.Nv")
		model.ChargeRounds(2, "mis.collect")

		deg := sp.Deg
		// The selection plan for this round's candidate set, built once and
		// then shared read-only by every concurrent per-seed evaluation. The
		// sparsifier already produced Q' as an ascending list, so the plan is
		// built from it directly — no second O(n) mask scan per round.
		sel.InitList(n, sp.QList, slotKeyOf, fam.P()-1)
		// score computes the round objective for one I_h through the pooled
		// membership mask, resetting only the touched entries afterwards so
		// the buffer is clean for the next evaluation at O(|I_h|) cost.
		score := func(ev *misEval, ih []graph.NodeID) int64 {
			for _, v := range ih {
				ev.inIh[v] = true
			}
			var value int64
			for t := range nvOwner {
				for _, u := range nvFlat[nvStart[t]:nvStart[t+1]] {
					if ev.inIh[u] {
						value += int64(deg[nvOwner[t]])
						break
					}
				}
			}
			for _, v := range ih {
				ev.inIh[v] = false
			}
			return value
		}
		objective := func(seeds [][]uint64, values []int64) {
			if p.ScalarObjectives {
				spare := condexp.SpareWorkers(p.Workers(), len(seeds))
				parallel.ForEach(p.Workers(), len(seeds), func(i int) {
					ev := evalPool.Get()
					ih := localMin(ev, ev.ih, q, sp.Q, seeds[i], spare)
					ev.ih = ih
					values[i] = score(ev, ih)
					evalPool.Put(ev)
				})
				return
			}
			// Blocked kernel path. Dense rounds run the fused fold pipeline:
			// the tile shrinks to one hashfam.BlockKeyGrain block per seed,
			// and each evaluated block is scattered into the worker's flat
			// per-seed tables while cache-resident (EvalSeedsBlockedFold);
			// the selection scan then probes the tables — bit-identical to
			// the two-pass tile + LocalMinNodesSel below, which sparse rounds
			// keep. Either way each group of BlockSeeds candidates makes ONE
			// block-major pass over the round's |Q'| node keys, group
			// boundaries depend only on the batch length, and each group
			// writes only its own value slots, so results are worker-count
			// independent.
			condexp.ForEachSeedBlock(p.Workers(), len(seeds), func(lo, hi int) {
				ev := evalPool.Get()
				if sel.Dense() {
					S := hi - lo
					tabs := ev.nf.Tables(sel, S)
					blockLen := len(sel.Keys())
					if blockLen > hashfam.BlockKeyGrain {
						blockLen = hashfam.BlockKeyGrain
					}
					tile := ev.tile.Rows(S, blockLen)
					evaluator.EvalSeedsBlockedFold(seeds[lo:hi], sel.Keys(), tile, func(blo, bhi int) {
						for s := 0; s < S; s++ {
							core.NodeFoldScatter(tabs[s], sel, blo, bhi, tile[s])
						}
					})
					for s := 0; s < S; s++ {
						ih := core.NodeFoldSelect(ev.ih, q, sel, tabs[s])
						ev.ih = ih
						values[lo+s] = score(ev, ih)
					}
					evalPool.Put(ev)
					return
				}
				tile := ev.tile.Rows(hi-lo, len(sel.Keys()))
				evaluator.EvalSeedsBlocked(seeds[lo:hi], sel.Keys(), tile)
				for s := lo; s < hi; s++ {
					ih := core.LocalMinNodesSel(ev.ih, q, sel, tile[s-lo])
					ev.ih = ih
					values[s] = score(ev, ih)
				}
				evalPool.Put(ev)
			})
		}
		// Lemma 21 ⇒ E[Σ_{v∈N_h} d(v)] >= 0.01δ·Σ_{v∈B} d(v).
		st.Threshold = int64(p.ThresholdFrac * 0.01 * p.Delta() * float64(sp.BWeight))
		if st.Threshold < 1 {
			st.Threshold = 1
		}
		copts := condexp.Options{
			Model:    model,
			Label:    "mis.seed",
			MaxSeeds: p.MaxSeedsPerSearch,
			Workers:  p.Workers(),
			Done:     p.Done,
		}
		// Seed-batch sub-events are observer-only work (see the matching
		// loop): fresh slice per round, nothing allocated unobserved.
		var batchStats []core.SeedBatchStat
		if p.Observe != nil {
			copts.OnBatch = func(bs condexp.BatchStat) {
				batchStats = append(batchStats, core.SeedBatchStat(bs))
			}
		}
		search, err := condexp.SearchAtLeastBatch(fam, objective, st.Threshold, copts)
		if err != nil {
			panic(err)
		}
		if search.Canceled {
			// search.Seed may be nil; abandon the round whole.
			res.Canceled = true
			break
		}
		st.SeedsTried = search.SeedsTried
		st.SeedFound = search.Found
		st.ObjectiveValue = search.Value

		fin := evalPool.Get()
		ih := localMin(fin, sc.NodeIDsCap(n), q, sp.Q, search.Seed, p.Workers())
		evalPool.Put(fin)
		st.Selected = len(ih)
		remove := sc.Bools(n)
		for _, v := range ih {
			inMIS[v] = true
			alive[v] = false
			remove[v] = true
			res.IndependentSet = append(res.IndependentSet, v)
			st.Removed++
		}
		for _, v := range ih {
			for _, u := range cur.Neighbors(v) {
				if !remove[u] {
					remove[u] = true
					alive[u] = false
					st.Removed++
				}
			}
		}
		cur = cur.WithoutNodesInto(remove, p.Workers(), sc.Loop().Next())
		model.ChargeScan("mis.apply")

		st.EdgesAfter = cur.M()
		if st.EdgesBefore > 0 {
			st.RemovedFraction = float64(st.EdgesBefore-st.EdgesAfter) / float64(st.EdgesBefore)
		}
		res.Iterations = append(res.Iterations, st)
		if p.Observe != nil {
			cs := model.Stats()
			p.Observe(core.RoundEvent{
				Algorithm:            "mis",
				Strategy:             "sparsify",
				Round:                iter,
				LiveNodes:            liveNodes,
				LiveEdges:            st.EdgesBefore,
				SeedsTried:           st.SeedsTried,
				SeedFound:            st.SeedFound,
				Selected:             st.Selected,
				Batches:              batchStats,
				CostRounds:           cs.Rounds,
				CostSeedBatches:      cs.SeedBatches,
				CostPeakMachineWords: cs.PeakMachineWords,
			})
		}
		sc.Reset()
	}
	// A cancellation break exits mid-round; the extra Reset (no-op on the
	// normal path) keeps the "sc left Reset on return" contract so a pooled
	// context survives a canceled solve without leaking slabs.
	sc.Reset()

	// Collect the isolated joins performed before the loop exited.
	res.IndependentSet = res.IndependentSet[:0]
	for v := 0; v < n; v++ {
		if inMIS[v] {
			res.IndependentSet = append(res.IndependentSet, graph.NodeID(v))
		}
	}
	return res
}
