// Package mis implements Theorem 14 of the paper: a deterministic fully
// scalable MPC algorithm computing a maximal independent set in O(log n)
// rounds with O(n^ε) space per machine.
//
// Each outer iteration (Algorithm 3) runs in O(1) charged MPC rounds:
//
//  1. isolated nodes join the MIS;
//  2. the node sparsification of Section 4.2 picks the class Q0 = C_i whose
//     good nodes B (Corollary 16) see a δ/3 reciprocal-degree mass in C_i,
//     and subsamples Q0 down to Q' with induced degree O(n^{4δ});
//  3. every B-node's machine gathers a set N_v of up to n^{4δ} of its Q'
//     neighbours with their Q'-neighbourhoods (asserted <= space budget);
//  4. one Luby step is derandomized: nodes get pairwise-independent
//     z-values, the candidate independent set I_h consists of the Q'-local
//     minima, and the seed search targets a constant fraction of Lemma 21's
//     bound E[Σ_{v∈N_h} d(v)] >= 0.01δ·Σ_{v∈B} d(v);
//  5. I_h joins the output and I_h ∪ N(I_h) leaves the graph.
//
// As with matching, correctness is unconditional: I_h is independent by
// construction, non-empty whenever edges remain, and the loop ends with all
// surviving nodes isolated and added to the MIS.
package mis

import (
	"repro/internal/condexp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simcost"
	"repro/internal/sparsify"
)

// IterStats records one outer iteration.
type IterStats struct {
	Iteration        int
	EdgesBefore      int
	EdgesAfter       int
	RemovedFraction  float64
	ClassIndex       int
	Stages           int
	SparsifyFallback bool
	QSize            int
	QMaxDegree       int
	MaxMachineWords  int
	SeedsTried       int
	SeedFound        bool
	Selected         int // |I_h|
	Removed          int // |I_h ∪ N(I_h)|
	ObjectiveValue   int64
	Threshold        int64
	IsolatedJoined   int
}

// Result is the outcome of the deterministic MIS computation.
type Result struct {
	IndependentSet []graph.NodeID
	Iterations     []IterStats
}

// Deterministic computes a maximal independent set of g with the
// derandomized algorithm of Section 4.
func Deterministic(g *graph.Graph, p core.Params, model *simcost.Model) *Result {
	p.Validate()
	n := g.N()
	res := &Result{}
	if n == 0 {
		return res
	}
	cur := g
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	inMIS := make([]bool, n)
	fam := core.PairwiseFamily(n)
	gamma := core.NewDegreeClasses(n, p.InvDelta).GroupSize()

	joinIsolated := func(st *IterStats) {
		for v := 0; v < n; v++ {
			if alive[v] && cur.Degree(graph.NodeID(v)) == 0 {
				inMIS[v] = true
				alive[v] = false
				if st != nil {
					st.IsolatedJoined++
				}
			}
		}
	}

	for iter := 1; ; iter++ {
		st := IterStats{Iteration: iter, EdgesBefore: cur.M()}
		joinIsolated(&st)
		if cur.M() == 0 {
			if st.IsolatedJoined > 0 {
				res.Iterations = append(res.Iterations, st)
			}
			break
		}

		sp := sparsify.SparsifyNodes(cur, p, model)
		q := sp.QGraph
		st.ClassIndex = sp.ClassIndex
		st.Stages = len(sp.Stages)
		st.SparsifyFallback = sp.UsedFallback
		st.QSize = len(qNodes(sp.Q))
		st.QMaxDegree = q.MaxDegree()

		// N_v construction (Section 4.3): up to γ of v's Q'-neighbours (the
		// smallest ids — "an arbitrary subset" — for determinism), plus
		// their Q'-neighbourhoods on v's machine.
		nvOf := make([][]graph.NodeID, 0, n)
		nvOwner := make([]graph.NodeID, 0, n)
		maxWords := 0
		for v := 0; v < n; v++ {
			if !sp.B[v] {
				continue
			}
			var nv []graph.NodeID
			for _, u := range cur.Neighbors(graph.NodeID(v)) {
				if sp.Q[u] {
					nv = append(nv, u)
					if len(nv) == gamma {
						break
					}
				}
			}
			if len(nv) == 0 {
				continue
			}
			words := len(nv)
			for _, u := range nv {
				words += q.Degree(u)
			}
			if words > maxWords {
				maxWords = words
			}
			nvOf = append(nvOf, nv)
			nvOwner = append(nvOwner, graph.NodeID(v))
		}
		st.MaxMachineWords = maxWords
		model.AssertMachineWords(maxWords, "mis.Nv")
		model.ChargeRounds(2, "mis.collect")

		deg := sp.Deg
		zOf := func(seed []uint64) func(graph.NodeID) uint64 {
			return func(v graph.NodeID) uint64 {
				return fam.Eval(seed, core.SlotKey(uint64(v), 0, n))
			}
		}
		objective := func(seed []uint64) int64 {
			ih := core.LocalMinNodes(q, sp.Q, zOf(seed))
			inIh := make([]bool, n)
			for _, v := range ih {
				inIh[v] = true
			}
			var value int64
			for t, nv := range nvOf {
				for _, u := range nv {
					if inIh[u] {
						value += int64(deg[nvOwner[t]])
						break
					}
				}
			}
			return value
		}
		// Lemma 21 ⇒ E[Σ_{v∈N_h} d(v)] >= 0.01δ·Σ_{v∈B} d(v).
		st.Threshold = int64(p.ThresholdFrac * 0.01 * p.Delta() * float64(sp.BWeight))
		if st.Threshold < 1 {
			st.Threshold = 1
		}
		search, err := condexp.SearchAtLeast(fam, objective, st.Threshold, condexp.Options{
			Model:    model,
			Label:    "mis.seed",
			MaxSeeds: p.MaxSeedsPerSearch,
			Workers:  p.Workers(),
		})
		if err != nil {
			panic(err)
		}
		st.SeedsTried = search.SeedsTried
		st.SeedFound = search.Found
		st.ObjectiveValue = search.Value

		ih := core.LocalMinNodes(q, sp.Q, zOf(search.Seed))
		st.Selected = len(ih)
		remove := make([]bool, n)
		for _, v := range ih {
			inMIS[v] = true
			alive[v] = false
			remove[v] = true
			res.IndependentSet = append(res.IndependentSet, v)
			st.Removed++
		}
		for _, v := range ih {
			for _, u := range cur.Neighbors(v) {
				if !remove[u] {
					remove[u] = true
					alive[u] = false
					st.Removed++
				}
			}
		}
		cur = cur.WithoutNodesW(remove, p.Workers())
		model.ChargeScan("mis.apply")

		st.EdgesAfter = cur.M()
		if st.EdgesBefore > 0 {
			st.RemovedFraction = float64(st.EdgesBefore-st.EdgesAfter) / float64(st.EdgesBefore)
		}
		res.Iterations = append(res.Iterations, st)
	}

	// Collect the isolated joins performed before the loop exited.
	res.IndependentSet = res.IndependentSet[:0]
	for v := 0; v < n; v++ {
		if inMIS[v] {
			res.IndependentSet = append(res.IndependentSet, graph.NodeID(v))
		}
	}
	return res
}

func qNodes(mask []bool) []graph.NodeID {
	var out []graph.NodeID
	for v, in := range mask {
		if in {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
