package mis

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/simcost"
)

func params() core.Params { return core.DefaultParams() }

func requireMaximal(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if ok, reason := check.IsMaximalIS(g, res.IndependentSet); !ok {
		t.Fatalf("not a maximal IS: %s", reason)
	}
}

func TestDeterministicOnFixtures(t *testing.T) {
	fixtures := map[string]*graph.Graph{
		"empty":     graph.Empty(10),
		"single":    gen.Path(2),
		"path":      gen.Path(50),
		"cycle":     gen.Cycle(51),
		"star":      gen.Star(100),
		"complete":  gen.Complete(60),
		"bipartite": gen.CompleteBipartite(30, 45),
		"grid":      gen.Grid2D(12, 17),
		"tree":      gen.RandomTree(300, 4),
	}
	for name, g := range fixtures {
		res := Deterministic(g, params(), nil)
		requireMaximal(t, g, res)
		switch name {
		case "empty":
			if len(res.IndependentSet) != 10 {
				t.Errorf("empty graph MIS size %d, want 10", len(res.IndependentSet))
			}
		case "complete":
			if len(res.IndependentSet) != 1 {
				t.Errorf("K60 MIS size %d, want 1", len(res.IndependentSet))
			}
		case "star":
			// Either the centre alone or all leaves.
			if s := len(res.IndependentSet); s != 1 && s != 99 {
				t.Errorf("star MIS size %d, want 1 or 99", s)
			}
		case "bipartite":
			if s := len(res.IndependentSet); s != 30 && s != 45 {
				t.Errorf("K(30,45) MIS size %d, want 30 or 45", s)
			}
		}
	}
}

func TestDeterministicRandomGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm-sparse", gen.GNM(1000, 3000, 1)},
		{"gnm-dense", gen.GNM(1024, 1024*24, 2)},
		{"powerlaw", gen.PowerLaw(1000, 5000, 2.5, 3)},
		{"regular", gen.RandomRegular(900, 12, 4)},
	} {
		res := Deterministic(tc.g, params(), nil)
		requireMaximal(t, tc.g, res)
	}
}

func TestIterationCountLogarithmic(t *testing.T) {
	g := gen.GNM(4096, 4096*8, 5)
	res := Deterministic(g, params(), nil)
	iters := len(res.Iterations)
	bound := int(8 * math.Log2(float64(g.M())))
	if iters > bound {
		t.Errorf("iterations %d exceed 8·log2(m) = %d", iters, bound)
	}
	t.Logf("n=%d m=%d iterations=%d", g.N(), g.M(), iters)
}

func TestPerIterationProgress(t *testing.T) {
	g := gen.GNM(2048, 2048*16, 6)
	res := Deterministic(g, params(), nil)
	for _, st := range res.Iterations {
		if st.EdgesBefore > 0 && st.EdgesAfter >= st.EdgesBefore {
			t.Fatalf("iteration %d made no progress: %d -> %d",
				st.Iteration, st.EdgesBefore, st.EdgesAfter)
		}
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	g := gen.GNM(512, 4096, 9)
	a := Deterministic(g, params(), nil)
	b := Deterministic(g, params(), nil)
	if len(a.IndependentSet) != len(b.IndependentSet) {
		t.Fatalf("sizes differ: %d vs %d", len(a.IndependentSet), len(b.IndependentSet))
	}
	for i := range a.IndependentSet {
		if a.IndependentSet[i] != b.IndependentSet[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	pp := params()
	pp.Parallelism = 1
	c := Deterministic(g, pp, nil)
	if len(a.IndependentSet) != len(c.IndependentSet) {
		t.Fatal("parallel vs serial results differ")
	}
}

func TestModelAccounting(t *testing.T) {
	g := gen.GNM(1024, 8192, 11)
	model := simcost.New(g.N(), g.M(), 0.5)
	res := Deterministic(g, params(), model)
	requireMaximal(t, g, res)
	st := model.Stats()
	if st.Rounds == 0 || st.SeedBatches == 0 {
		t.Errorf("rounds/batches not charged: %+v", st)
	}
	maxPerIter := 40 * (1 + core.StageCount(16))
	if st.Rounds > (len(res.Iterations)+1)*maxPerIter {
		t.Errorf("rounds %d too high for %d iterations", st.Rounds, len(res.Iterations))
	}
	for _, v := range model.Violations() {
		t.Errorf("space violation: %s", v)
	}
}

func TestIndependentSetIsSortedAndUnique(t *testing.T) {
	g := gen.GNM(700, 3000, 13)
	res := Deterministic(g, params(), nil)
	for i := 1; i < len(res.IndependentSet); i++ {
		if res.IndependentSet[i-1] >= res.IndependentSet[i] {
			t.Fatal("IndependentSet not sorted/unique")
		}
	}
}

func TestIsolatedNodesAlwaysJoin(t *testing.T) {
	// Graph with isolated nodes sprinkled in: they all must be in the MIS.
	b := graph.NewBuilder(20)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	res := Deterministic(g, params(), nil)
	requireMaximal(t, g, res)
	in := map[graph.NodeID]bool{}
	for _, v := range res.IndependentSet {
		in[v] = true
	}
	for v := graph.NodeID(4); v < 20; v++ {
		if !in[v] {
			t.Errorf("isolated node %d missing from MIS", v)
		}
	}
}

func TestSeedSearchUsuallyFast(t *testing.T) {
	g := gen.GNM(2048, 2048*8, 13)
	res := Deterministic(g, params(), nil)
	totalSeeds, considered := 0, 0
	for _, st := range res.Iterations {
		if st.SeedsTried > 0 {
			totalSeeds += st.SeedsTried
			considered++
		}
	}
	if considered == 0 {
		t.Skip("no seed searches ran")
	}
	if avg := float64(totalSeeds) / float64(considered); avg > 1024 {
		t.Errorf("average seeds/iteration %.1f too high", avg)
	}
}

func TestSmallEpsilon(t *testing.T) {
	g := gen.GNM(700, 4200, 23)
	p := params().WithEpsilon(0.25)
	res := Deterministic(g, p, nil)
	requireMaximal(t, g, res)
}

func BenchmarkDeterministicGNM(b *testing.B) {
	g := gen.GNM(2048, 2048*8, 1)
	p := params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Deterministic(g, p, nil)
	}
}
