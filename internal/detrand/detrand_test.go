package detrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero-seeded stream produced duplicates: %d distinct of 100", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; threshold is the 0.999 quantile for
	// 15 degrees of freedom (~37.7). Deterministic seed, so no flakiness.
	r := New(1234)
	const buckets, samples = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Errorf("chi-squared %.2f exceeds 37.7; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermNotIdentity(t *testing.T) {
	// With n=100 the identity permutation has probability 1/100!; if we see
	// it the generator is broken.
	p := New(11).Perm(100)
	identity := true
	for i, v := range p {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Error("Perm(100) returned the identity permutation")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream collided with parent %d times", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
