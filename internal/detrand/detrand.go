// Package detrand provides a small deterministic pseudo-random source used
// exclusively by workload generators and by the *randomized* baseline
// algorithms (Luby's MIS, randomized matching). The deterministic algorithms
// under internal/sparsify, internal/matching and internal/mis never draw from
// this package: their only "random"-looking inputs are seeds enumerated in a
// fixed order from internal/hashfam families.
//
// The generator is SplitMix64 feeding xoshiro256**, the standard pairing for
// reproducible simulation workloads. It is intentionally not crypto-grade.
package detrand

import "math/bits"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed via SplitMix64, so
// that nearby seeds produce uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range src.s {
		src.s[i] = next()
	}
	// xoshiro must not start from the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9E3779B97F4A7C15
	}
	return &src
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless bounded sampling with rejection, so the
// distribution is exactly uniform.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn with n <= 0")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Uint64n returns a uniform uint64 in [0, bound). It panics if bound == 0.
// Same nearly-divisionless rejection sampling as Intn, for bounds beyond the
// int range — the luby baselines draw z values from the selection kernels'
// hash field [p), where p = 64n² overflows int32 platforms' Intn long before
// it stops fitting a uint64.
func (r *Source) Uint64n(bound uint64) uint64 {
	if bound == 0 {
		panic("detrand: Uint64n with bound == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new Source whose stream is independent of the receiver's
// future output, derived from the receiver's current state. Use it to hand
// uncorrelated sub-streams to concurrent workers deterministically.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xD1B54A32D192ED03)
}
