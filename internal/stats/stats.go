// Package stats provides the small numeric summaries the experiment tables
// report: means, medians, percentiles and least-squares slopes (used to fit
// "iterations vs log n" and "stages vs log Δ" scaling lines).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median (0 for empty input; lower middle for even n).
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (nearest-rank; p in [0,100]).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It requires len(x) == len(y) >= 2 and non-constant x; otherwise it
// returns (0, Mean(y)).
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, Mean(y)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// R2 returns the coefficient of determination of the linear fit.
func R2(x, y []float64) float64 {
	slope, intercept := LinearFit(x, y)
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
