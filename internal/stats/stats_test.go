package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
}

func TestMedianAndPercentile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if !almost(Median(xs), 5) {
		t.Errorf("Median = %f", Median(xs))
	}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 100), 9) {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Percentile must not mutate the input.
	if xs[0] != 9 {
		t.Error("Percentile mutated input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4}
	if Min(xs) != -1 || Max(xs) != 4 {
		t.Error("Min/Max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max wrong")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinearFit(x, y)
	if !almost(slope, 2) || !almost(intercept, 3) {
		t.Errorf("fit = %f, %f", slope, intercept)
	}
	if !almost(R2(x, y), 1) {
		t.Errorf("R2 = %f", R2(x, y))
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept := LinearFit([]float64{1}, []float64{5})
	if slope != 0 || intercept != 5 {
		t.Error("single-point fit wrong")
	}
	slope, intercept = LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if slope != 0 || !almost(intercept, 2) {
		t.Error("constant-x fit wrong")
	}
}

func TestLinearFitRecoversRandomLines(t *testing.T) {
	f := func(a, b int8) bool {
		slope0, icept0 := float64(a), float64(b)
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = slope0*x[i] + icept0
		}
		s, c := LinearFit(x, y)
		return almost(s, slope0) && almost(c, icept0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestR2Bounds(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 1, 4, 3, 5} // noisy increasing
	r2 := R2(x, y)
	if r2 < 0 || r2 > 1 {
		t.Errorf("R2 = %f outside [0,1] for monotone-ish data", r2)
	}
	if R2(x, []float64{7, 7, 7, 7, 7}) != 1 {
		t.Error("constant y should give R2 = 1 by convention")
	}
}
