package simcost

import (
	"strings"
	"sync"
	"testing"
)

func TestNilModelIsNoOp(t *testing.T) {
	var m *Model
	m.ChargeRounds(5, "x")
	m.ChargeSort("x")
	m.ChargeScan("x")
	m.ChargeBroadcast(3, "x")
	m.ChargeSeedBatch(100, "x")
	if !m.AssertMachineWords(1<<40, "x") {
		t.Error("nil model must accept any assertion")
	}
	m.NoteTotalWords(1<<40, "x")
	if m.Rounds() != 0 || m.S() != 0 || m.Machines() != 0 || m.Epsilon() != 0 {
		t.Error("nil model getters must return zero")
	}
	if s := m.Stats(); s.Rounds != 0 {
		t.Error("nil model stats must be zero")
	}
	if m.Violations() != nil {
		t.Error("nil model has violations")
	}
}

func TestSpaceComputation(t *testing.T) {
	m := New(1<<16, 1<<18, 0.5)
	if m.S() != 256 {
		t.Errorf("S = %d, want 256 = (2^16)^0.5", m.S())
	}
	if m.Machines() < 1<<10 {
		t.Errorf("machines = %d, too few for n=2^16", m.Machines())
	}
	small := New(4, 4, 0.5)
	if small.S() < 16 {
		t.Errorf("S floor not applied: %d", small.S())
	}
}

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with eps=%f did not panic", eps)
				}
			}()
			New(10, 10, eps)
		}()
	}
}

func TestChargeAccumulates(t *testing.T) {
	m := New(1024, 4096, 0.5)
	m.ChargeSort("degrees")
	m.ChargeSort("degrees")
	m.ChargeScan("sums")
	m.ChargeRounds(1, "collect")
	s := m.Stats()
	if s.RoundsByLabel["degrees"] != 8 {
		t.Errorf("degrees rounds = %d, want 8", s.RoundsByLabel["degrees"])
	}
	if s.Rounds != 8+s.RoundsByLabel["sums"]+1 {
		t.Errorf("total rounds inconsistent: %+v", s)
	}
}

func TestScanRoundsConstantForLargeS(t *testing.T) {
	// Lemma 4 claim: scan rounds are O(1/ε), i.e. they do not GROW with n
	// (the tree gets wider as fast as it gets taller). Small n pays larger
	// constants because S is tiny there.
	var counts []int
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		m := New(n, 8*n, 0.5)
		m.ChargeScan("s")
		counts = append(counts, m.Rounds())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("scan rounds grow with n: %v", counts)
		}
	}
	if counts[len(counts)-1] > 13 {
		t.Errorf("scan rounds too large at big n: %v", counts)
	}
}

func TestSeedBatchAccounting(t *testing.T) {
	m := New(1<<12, 1<<14, 0.5)
	m.ChargeSeedBatch(32, "luby")
	m.ChargeSeedBatch(32, "luby")
	s := m.Stats()
	if s.SeedBatches != 2 || s.SeedsEvaluated != 64 {
		t.Errorf("seed accounting wrong: %+v", s)
	}
	if len(s.Violations) != 0 {
		t.Errorf("unexpected violations: %v", s.Violations)
	}
}

func TestSeedBatchTooLargeIsViolation(t *testing.T) {
	m := New(256, 1024, 0.5) // S = 16 (floor)
	m.ChargeSeedBatch(10_000, "luby")
	if len(m.Violations()) == 0 {
		t.Error("oversized batch not flagged")
	}
}

func TestAssertMachineWords(t *testing.T) {
	m := New(1<<16, 1<<18, 0.5) // S = 256, budget 8S = 2048
	if m.MachineBudget() != 2048 {
		t.Fatalf("budget = %d, want 2048", m.MachineBudget())
	}
	if !m.AssertMachineWords(2000, "ball") {
		t.Error("within-budget assertion failed")
	}
	if m.AssertMachineWords(3000, "ball") {
		t.Error("over-budget assertion passed")
	}
	s := m.Stats()
	if s.PeakMachineWords != 3000 {
		t.Errorf("peak = %d", s.PeakMachineWords)
	}
	if len(s.Violations) != 1 || !strings.Contains(s.Violations[0], "ball") {
		t.Errorf("violations = %v", s.Violations)
	}
}

func TestNoteTotalWords(t *testing.T) {
	m := New(1<<10, 1<<12, 0.5)
	m.NoteTotalWords(100, "x")
	budget := 8 * int64(m.Machines()) * int64(m.S())
	m.NoteTotalWords(budget+1, "x")
	s := m.Stats()
	if s.PeakTotalWords != budget+1 {
		t.Errorf("peak total = %d", s.PeakTotalWords)
	}
	if len(s.Violations) != 1 {
		t.Errorf("violations = %v", s.Violations)
	}
}

func TestConcurrentCharging(t *testing.T) {
	m := New(1<<12, 1<<14, 0.5)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.ChargeRounds(1, "par")
				m.AssertMachineWords(j, "par")
			}
		}()
	}
	wg.Wait()
	if m.Rounds() != 3200 {
		t.Errorf("rounds = %d, want 3200", m.Rounds())
	}
}

func TestLabelsSorted(t *testing.T) {
	m := New(1024, 1024, 0.5)
	m.ChargeRounds(1, "zeta")
	m.ChargeRounds(1, "alpha")
	m.ChargeRounds(1, "mid")
	labels := m.Stats().LabelsSorted()
	if len(labels) != 3 || labels[0] != "alpha" || labels[2] != "zeta" {
		t.Errorf("labels = %v", labels)
	}
}
