// Package simcost is the round- and space-accounting layer between the
// algorithms and the MPC model. The algorithms in internal/sparsify,
// internal/matching, internal/mis and internal/lowdeg execute on in-memory
// graphs (local computation is free in MPC), but every model-relevant
// operation — a Lemma 4 sort, a prefix-sum aggregation, a 2-hop
// neighbourhood collection, one batched seed evaluation — is charged here
// with the same round constants the message-level implementations in
// internal/mpc achieve, and every machine-space claim is asserted against
// S = ceil(n^ε).
//
// All methods are safe on a nil *Model, so algorithm code can be run without
// accounting (e.g. in micro-benchmarks) at zero cost.
package simcost

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/mpc"
)

// Model tracks rounds and space for one algorithm execution on a graph with
// n nodes and m edges under per-machine space S = ceil(n^ε).
type Model struct {
	mu sync.Mutex

	n        int
	epsilon  float64
	s        int
	machines int

	rounds     int
	byLabel    map[string]int
	violations []string

	peakMachineWords int
	peakTotalWords   int64
	seedBatches      int
	seedsEvaluated   int64
}

// New returns a model for a graph with n nodes and m edges and space
// exponent epsilon. S is ceil(n^ε) but never below minSpace (the paper's
// constants assume n^ε exceeds any fixed constant; at laptop scale a floor
// keeps groups non-degenerate). The machine count is the paper's
// M = Θ((m + n^{1+ε}) / S).
func New(n, m int, epsilon float64) *Model {
	if epsilon <= 0 || epsilon > 1 {
		panic("simcost: epsilon must be in (0, 1]")
	}
	if n < 1 {
		n = 1
	}
	const minSpace = 16
	s := int(math.Ceil(math.Pow(float64(n), epsilon)))
	if s < minSpace {
		s = minSpace
	}
	total := int64(2*m) + int64(float64(n)*float64(s)) // input + n^{1+ε} slack
	machines := int(total/int64(s)) + 1
	return &Model{
		n:        n,
		epsilon:  epsilon,
		s:        s,
		machines: machines,
		byLabel:  make(map[string]int),
	}
}

// S returns the per-machine space in words (0 for a nil model).
func (m *Model) S() int {
	if m == nil {
		return 0
	}
	return m.s
}

// Machines returns the simulated machine count.
func (m *Model) Machines() int {
	if m == nil {
		return 0
	}
	return m.machines
}

// Epsilon returns the space exponent.
func (m *Model) Epsilon() float64 {
	if m == nil {
		return 0
	}
	return m.epsilon
}

// Stats is a snapshot of accumulated accounting.
type Stats struct {
	Rounds           int
	RoundsByLabel    map[string]int
	Violations       []string
	PeakMachineWords int
	PeakTotalWords   int64
	SeedBatches      int
	SeedsEvaluated   int64
	S                int
	Machines         int
}

// Stats returns a snapshot (zero value for a nil model).
func (m *Model) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	byLabel := make(map[string]int, len(m.byLabel))
	for k, v := range m.byLabel {
		byLabel[k] = v
	}
	return Stats{
		Rounds:           m.rounds,
		RoundsByLabel:    byLabel,
		Violations:       append([]string(nil), m.violations...),
		PeakMachineWords: m.peakMachineWords,
		PeakTotalWords:   m.peakTotalWords,
		SeedBatches:      m.seedBatches,
		SeedsEvaluated:   m.seedsEvaluated,
		S:                m.s,
		Machines:         m.machines,
	}
}

// LabelsSorted returns the labels of RoundsByLabel in sorted order (for
// stable table output).
func (s Stats) LabelsSorted() []string {
	labels := make([]string, 0, len(s.RoundsByLabel))
	for l := range s.RoundsByLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

func (m *Model) charge(rounds int, label string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds += rounds
	m.byLabel[label] += rounds
}

// ChargeRounds charges k generic rounds under the label.
func (m *Model) ChargeRounds(k int, label string) { m.charge(k, label) }

// ChargeSort charges one Lemma 4 sort: 4 rounds, the constant the
// message-level sample sort in internal/mpc achieves.
func (m *Model) ChargeSort(label string) { m.charge(4, label) }

// scanDepth returns the aggregation-tree depth for payload k on this model.
func (m *Model) scanDepth(k int) int {
	f := m.s / (4 * k)
	if f > m.machines {
		f = m.machines
	}
	if f < 2 {
		f = 2
	}
	return mpc.TreeDepth(m.machines, f)
}

// ChargeScan charges one Lemma 4 prefix-sum/aggregation: 2*depth+1 rounds
// with an S/8-ary tree over M machines, matching mpc.PrefixSum.
func (m *Model) ChargeScan(label string) {
	if m == nil {
		return
	}
	m.charge(2*m.scanDepth(2)+1, label)
}

// ChargeBroadcast charges a tree broadcast of a k-word payload.
func (m *Model) ChargeBroadcast(k int, label string) {
	if m == nil {
		return
	}
	m.charge(m.scanDepth(k)+1, label)
}

// ChargeSeedBatch charges one batched seed evaluation round-trip: every
// machine evaluates its local objective for each of batch candidate seeds
// and one AllReduce of the batch-length vector selects the winner
// (2*depth + 1 rounds). The batch must fit one machine: batch <= S.
func (m *Model) ChargeSeedBatch(batch int, label string) {
	if m == nil {
		return
	}
	if batch > m.s {
		m.recordViolation(fmt.Sprintf("seed batch %d > S=%d [%s]", batch, m.s, label))
	}
	m.mu.Lock()
	m.seedBatches++
	m.seedsEvaluated += int64(batch)
	m.mu.Unlock()
	m.charge(2*m.scanDepth(batch)+1, label)
}

// MachineBudget returns the hard per-machine bound used by
// AssertMachineWords: 8·S. The paper's space claims are O(n^{8δ}) with
// δ = ε/8, i.e. S up to a constant factor; 8 is the constant all asserted
// structures (2-hop balls bounded by (2n^{4δ})² = 4n^ε, seed batches, …)
// respect in the analysis.
func (m *Model) MachineBudget() int {
	if m == nil {
		return 0
	}
	return 8 * m.s
}

// AssertMachineWords asserts that a single machine is asked to hold `words`
// words (e.g. a collected 2-hop neighbourhood); a violation is recorded if
// it exceeds MachineBudget. Returns true when the assertion holds.
func (m *Model) AssertMachineWords(words int, label string) bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	if words > m.peakMachineWords {
		m.peakMachineWords = words
	}
	m.mu.Unlock()
	if words > 8*m.s {
		m.recordViolation(fmt.Sprintf("machine holds %d words > budget 8S=%d [%s]", words, 8*m.s, label))
		return false
	}
	return true
}

// NoteTotalWords records a global space usage claim (e.g. all collected
// neighbourhoods across machines) and checks it against the paper's
// O(m + n^{1+ε}) total-space budget with a constant factor of 8.
func (m *Model) NoteTotalWords(words int64, label string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if words > m.peakTotalWords {
		m.peakTotalWords = words
	}
	m.mu.Unlock()
	budget := 8 * (int64(m.machines) * int64(m.s))
	if words > budget {
		m.recordViolation(fmt.Sprintf("total space %d > budget %d [%s]", words, budget, label))
	}
}

func (m *Model) recordViolation(v string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.violations = append(m.violations, v)
}

// Violations returns the recorded violations (nil for a nil model).
func (m *Model) Violations() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.violations...)
}

// Rounds returns the total charged rounds so far.
func (m *Model) Rounds() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rounds
}
