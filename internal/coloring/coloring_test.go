package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/simcost"
)

func TestLinialProperOnFixtures(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":  gen.Path(100),
		"cycle": gen.Cycle(101),
		"grid":  gen.Grid2D(12, 13),
		"tree":  gen.RandomTree(200, 1),
		"gnm":   gen.GNM(300, 900, 2),
		"star":  gen.Star(50),
	} {
		res := Linial(g, nil)
		if err := VerifyProper(g, res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for _, c := range res.Colors {
			if c < 0 || c >= res.NumColors {
				t.Errorf("%s: colour %d outside [0,%d)", name, c, res.NumColors)
			}
		}
	}
}

func TestLinialColourCountPolyDelta(t *testing.T) {
	// Fixpoint is O(Δ²) colours; check against a generous constant,
	// independent of n.
	for _, n := range []int{256, 1024, 4096} {
		g := gen.RandomRegular(n, 6, uint64(n))
		res := Linial(g, nil)
		d := g.MaxDegree()
		bound := 64 * d * d
		if res.NumColors > bound {
			t.Errorf("n=%d Δ=%d: %d colours > %d", n, d, res.NumColors, bound)
		}
	}
}

func TestLinialRoundsLogStar(t *testing.T) {
	// Round count grows extremely slowly with n (log* behaviour): going
	// from n=2^8 to n=2^14 must add at most 2 iterations.
	small := Linial(gen.RandomRegular(1<<8, 4, 1), nil)
	large := Linial(gen.RandomRegular(1<<14, 4, 1), nil)
	if large.Rounds > small.Rounds+2 {
		t.Errorf("rounds grew from %d to %d", small.Rounds, large.Rounds)
	}
	if large.Rounds > 8 {
		t.Errorf("too many Linial rounds: %d", large.Rounds)
	}
}

func TestLinialG2Distance2(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid": gen.Grid2D(10, 10),
		"tree": gen.RandomTree(300, 3),
		"reg":  gen.RandomRegular(500, 8, 4),
	} {
		res := LinialG2(g, nil)
		if err := VerifyDistance2(g, res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLinialG2ColourCountDelta4(t *testing.T) {
	g := gen.RandomRegular(2048, 4, 9)
	res := LinialG2(g, nil)
	d := g.MaxDegree()
	bound := 256 * d * d * d * d // O(Δ⁴) with implementation constant
	if res.NumColors > bound {
		t.Errorf("Δ=%d: %d colours > %d", d, res.NumColors, bound)
	}
	t.Logf("Δ=%d colours=%d", d, res.NumColors)
}

func TestLinialEmptyAndTrivial(t *testing.T) {
	res := Linial(graph.Empty(0), nil)
	if res.NumColors != 0 {
		t.Errorf("empty graph coloured with %d colours", res.NumColors)
	}
	res = Linial(graph.Empty(5), nil)
	if err := VerifyProper(graph.Empty(5), res.Colors); err != nil {
		t.Error(err)
	}
	// With no edges a single colour suffices after compaction.
	if res.NumColors != 1 {
		t.Errorf("edgeless graph uses %d colours, want 1", res.NumColors)
	}
}

func TestLinialChargesModel(t *testing.T) {
	g := gen.Grid2D(20, 20)
	model := simcost.New(g.N(), g.M(), 0.5)
	LinialG2(g, model)
	if model.Rounds() == 0 {
		t.Error("no rounds charged")
	}
}

func TestLinialDeterministic(t *testing.T) {
	g := gen.GNM(200, 800, 5)
	a, b := Linial(g, nil), Linial(g, nil)
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("nondeterministic colouring")
		}
	}
}

func TestVerifyCatchesBadColouring(t *testing.T) {
	g := gen.Path(3)
	if err := VerifyProper(g, []int{0, 0, 1}); err == nil {
		t.Error("improper colouring accepted")
	}
	if err := VerifyDistance2(g, []int{0, 1, 0}); err == nil {
		t.Error("distance-2 violation accepted")
	}
	if err := VerifyDistance2(g, []int{0, 1, 2}); err != nil {
		t.Errorf("valid distance-2 colouring rejected: %v", err)
	}
}
