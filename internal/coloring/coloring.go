// Package coloring implements Linial's colour-reduction algorithm ([42],
// with the CONGEST variant of Kuhn [38]) as used by Section 5 of the paper:
// an O(Δ⁴)-colouring of the square graph G², computed in O(log* n) rounds,
// so that any two nodes within distance 2 receive distinct colours. The
// colours then serve as the (small) hash-function inputs of the
// stage-compressed derandomized Luby algorithm, shrinking per-phase seeds
// from O(log n) to O(log Δ) bits.
//
// One Linial round: identify each current colour c with a polynomial p_c of
// degree <= d over F_q (its base-q digits), where q is a prime exceeding
// Δ·d. Distinct polynomials agree on at most d points, so every node has
// some evaluation point x where it differs from all its (<= Δ) neighbours;
// the node picks the smallest such x and adopts the new colour (x, p_c(x))
// out of q². Iterating reaches the fixpoint q² = O(Δ²) colours for the
// coloured graph — O(Δ⁴) when that graph is G² — in O(log* C) rounds.
package coloring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/intmath"
	"repro/internal/simcost"
)

// Result is a proper colouring with its round count.
type Result struct {
	Colors    []int // colour per node, in [0, NumColors)
	NumColors int
	Rounds    int // Linial iterations (each O(1) charged MPC rounds)
}

// Linial colours the given graph properly with O(Δ²) colours in O(log* n)
// iterations, starting from the trivial n-colouring by node id.
func Linial(g *graph.Graph, model *simcost.Model) *Result {
	n := g.N()
	colors := make([]int, n)
	for v := range colors {
		colors[v] = v
	}
	numColors := n
	if numColors == 0 {
		return &Result{Colors: colors, NumColors: 0}
	}
	maxDeg := g.MaxDegree()
	rounds := 0
	for {
		q, d := linialParams(numColors, maxDeg)
		next := int(q * q)
		if next >= numColors {
			break // fixpoint reached
		}
		colors = linialRound(g, colors, q, d)
		numColors = next
		rounds++
		model.ChargeRounds(1, "coloring.linial")
		if rounds > 64 {
			panic("coloring: Linial failed to converge")
		}
	}
	// Isolated nodes have no colouring constraints: collapse them to a
	// single colour (pure local computation).
	for v := 0; v < n; v++ {
		if g.Degree(graph.NodeID(v)) == 0 {
			colors[v] = 0
		}
	}
	// Compact the colour space to the colours actually used (a relabeling
	// every node can do locally after one Lemma 4 sort).
	colors, numColors = compact(colors)
	model.ChargeSort("coloring.compact")
	return &Result{Colors: colors, NumColors: numColors, Rounds: rounds}
}

// LinialG2 colours G² (distance-2 proper colouring of g) with O(Δ⁴)
// colours — the colouring χ of Section 5.
func LinialG2(g *graph.Graph, model *simcost.Model) *Result {
	sq := g.Square()
	model.ChargeRounds(1, "coloring.square") // neighbours exchange lists
	res := Linial(sq, model)
	if err := VerifyDistance2(g, res.Colors); err != nil {
		panic(fmt.Sprintf("coloring: %v", err))
	}
	return res
}

// linialParams returns the prime field size q and polynomial degree d for
// one reduction from numColors colours at maximum degree maxDeg.
func linialParams(numColors, maxDeg int) (uint64, int) {
	if maxDeg < 1 {
		maxDeg = 1
	}
	// Find the smallest prime q with q > maxDeg*d(q) where d(q) =
	// ceil(log_q numColors); try increasing q until consistent.
	q := intmath.NextPrime(uint64(maxDeg + 2))
	for {
		d := degreeFor(numColors, q)
		if q > uint64(maxDeg*d) {
			return q, d
		}
		q = intmath.NextPrime(q + 1)
	}
}

// degreeFor returns the smallest d with q^(d+1) >= numColors.
func degreeFor(numColors int, q uint64) int {
	d := 0
	pow := q
	for pow < uint64(numColors) {
		pow *= q
		d++
		if d > 64 {
			panic("coloring: degree overflow")
		}
	}
	return d
}

// linialRound performs one colour reduction. All nodes decide from the old
// colours only, so the computation is one synchronous round.
func linialRound(g *graph.Graph, colors []int, q uint64, d int) []int {
	n := g.N()
	next := make([]int, n)
	// Precompute the polynomial (base-q digits) of every colour in use.
	polys := map[int][]uint64{}
	digitsOf := func(c int) []uint64 {
		if p, ok := polys[c]; ok {
			return p
		}
		p := make([]uint64, d+1)
		cc := uint64(c)
		for t := 0; t <= d; t++ {
			p[t] = cc % q
			cc /= q
		}
		polys[c] = p
		return p
	}
	eval := func(p []uint64, x uint64) uint64 {
		acc := p[len(p)-1] % q
		for t := len(p) - 2; t >= 0; t-- {
			acc = (intmath.MulMod(acc, x, q) + p[t]) % q
		}
		return acc
	}
	for v := 0; v < n; v++ {
		pv := digitsOf(colors[v])
		nbrs := g.Neighbors(graph.NodeID(v))
		chosen := int64(-1)
		for x := uint64(0); x < q; x++ {
			val := eval(pv, x)
			ok := true
			for _, u := range nbrs {
				if colors[u] == colors[v] {
					panic("coloring: input colouring not proper")
				}
				if eval(digitsOf(colors[u]), x) == val {
					ok = false
					break
				}
			}
			if ok {
				chosen = int64(x*q + val)
				break
			}
		}
		if chosen < 0 {
			// Cannot happen when q > Δ·d (counting argument); defensive.
			panic("coloring: no evaluation point found")
		}
		next[v] = int(chosen)
	}
	return next
}

// compact relabels colours to a dense range [0, k).
func compact(colors []int) ([]int, int) {
	seen := map[int]int{}
	out := make([]int, len(colors))
	for v, c := range colors {
		id, ok := seen[c]
		if !ok {
			id = len(seen)
			seen[c] = id
		}
		out[v] = id
	}
	return out, len(seen)
}

// VerifyProper returns an error unless colors is a proper colouring of g.
func VerifyProper(g *graph.Graph, colors []int) error {
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if colors[v] == colors[u] {
				return fmt.Errorf("nodes %d and %d share colour %d", v, u, colors[v])
			}
		}
	}
	return nil
}

// VerifyDistance2 returns an error unless colors is a distance-2 proper
// colouring of g (proper on G²).
func VerifyDistance2(g *graph.Graph, colors []int) error {
	bs := new(graph.BallScratch)
	for v := 0; v < g.N(); v++ {
		ball := g.BallInto(bs, graph.NodeID(v), 2)
		for _, u := range ball {
			if u != graph.NodeID(v) && colors[u] == colors[v] {
				return fmt.Errorf("nodes %d and %d within distance 2 share colour %d", v, u, colors[v])
			}
		}
	}
	return nil
}
