package tablefmt

import (
	"bytes"
	"strings"
	"testing"
)

func TestAddRowAndCell(t *testing.T) {
	tb := &Table{ID: "T0", Title: "demo", Columns: []string{"a", "b", "c"}}
	tb.AddRow(1, 2.5, "x")
	if len(tb.Rows) != 1 {
		t.Fatal("row not added")
	}
	if tb.Rows[0][0] != "1" || tb.Rows[0][1] != "2.5000" || tb.Rows[0][2] != "x" {
		t.Errorf("cells = %v", tb.Rows[0])
	}
}

func TestRenderAligned(t *testing.T) {
	tb := &Table{ID: "T1", Title: "title", Columns: []string{"col", "verylongheader"}}
	tb.AddRow("aaaaaaaaaa", 1)
	tb.Notes = append(tb.Notes, "a note")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T1 — title") {
		t.Error("missing title line")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %q", out)
	}
	// Header and data line must have equal prefix width up to column 2.
	hdr, data := lines[0], lines[2]
	if idxH, idxD := strings.Index(hdr, "verylongheader"), strings.Index(data, "1"); idxH != idxD {
		t.Errorf("columns misaligned: %d vs %d\n%s", idxH, idxD, out)
	}
}

func TestCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,y", 3)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",3\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFigureToTable(t *testing.T) {
	f := &Figure{
		ID: "F1", Title: "decay", XLabel: "iter", YLabel: "edges",
		Series: []Series{
			{Name: "det", Points: [][2]float64{{1, 100}, {2, 50}}},
			{Name: "rand", Points: [][2]float64{{1, 90}}},
		},
	}
	tb := f.Table()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "det" || tb.Rows[2][0] != "rand" {
		t.Errorf("series order wrong: %v", tb.Rows)
	}
	if tb.Columns[1] != "iter" || tb.Columns[2] != "edges" {
		t.Errorf("columns = %v", tb.Columns)
	}
}
