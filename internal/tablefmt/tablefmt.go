// Package tablefmt renders the experiment tables and figure series: aligned
// plain-text tables for the terminal (the paper's tables) and CSV for
// downstream plotting (the paper's figures). Output is deterministic.
package tablefmt

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with optional footnotes.
type Table struct {
	ID      string // experiment id, e.g. "T1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Cell renders a single value: floats with 4 significant decimals, others
// via fmt.
func Cell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'f', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'f', 4, 64)
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		return sb.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as RFC-4180-ish CSV (cells never contain quotes or
// commas in this repository; a defensive quote is applied anyway).
func (t *Table) CSV(w io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is a named sequence of (x, y) points — one curve of a figure.
type Series struct {
	Name   string
	Points [][2]float64
}

// Figure is a set of series sharing axes, rendered as a long-format table
// (curve, x, y) so it prints and exports uniformly.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table converts the figure into long-format rows.
func (f *Figure) Table() *Table {
	t := &Table{ID: f.ID, Title: f.Title, Columns: []string{"series", f.XLabel, f.YLabel}}
	for _, s := range f.Series {
		for _, p := range s.Points {
			t.AddRow(s.Name, p[0], p[1])
		}
	}
	return t
}
