package hashfam

import (
	"fmt"

	"repro/internal/intmath"
	"repro/internal/parallel"
)

// Evaluator is the key-major batched evaluation kernel of the seed searches:
// it binds a Family to a precomputed intmath.Reducer for p and evaluates the
// family polynomial over a whole precomputed key vector per candidate seed.
// Compared with calling Family.Eval once per key it (a) replaces every
// per-coefficient 128/64-bit division with Barrett-style reciprocal
// multiplication, (b) reduces the seed's coefficients once per EvalKeys call
// instead of once per key, and (c) unrolls Horner for the ubiquitous
// pairwise (k = 2) family of the matching/MIS selection steps.
//
// EvalKeys(seed, keys, out) is byte-identical to out[i] = Eval(seed, keys[i])
// — the kernel is a speed change only, so every seed search that adopts it
// stays inside the repository's bit-identical determinism contract (the
// equivalence is fuzz-tested in evaluator_test.go).
//
// An Evaluator is immutable after construction and safe for concurrent use;
// the per-worker objective states of the solvers share one per search.
type Evaluator struct {
	fam Family
	red intmath.Reducer
}

// NewEvaluator returns the evaluation kernel bound to f.
func NewEvaluator(f Family) *Evaluator {
	if f.k < 1 {
		panic("hashfam: NewEvaluator on zero Family")
	}
	return &Evaluator{fam: f, red: intmath.NewReducer(f.p)}
}

// Family returns the bound family.
func (e *Evaluator) Family() Family { return e.fam }

// EvalKeys writes out[i] = h_seed(keys[i]) for every key and returns
// out[:len(keys)]. len(seed) must equal the family's SeedLen, every key must
// be < P (the same contract as Eval), and len(out) must be at least
// len(keys). Output slots beyond len(keys) and any dirty prior contents of
// out are never read, so pooled per-worker buffers can be passed as-is.
//
//det:hotpath
func (e *Evaluator) EvalKeys(seed, keys, out []uint64) []uint64 {
	k := e.fam.k
	if len(seed) != k {
		panic(fmt.Sprintf("hashfam: seed length %d, want %d", len(seed), k))
	}
	if len(out) < len(keys) {
		panic("hashfam: EvalKeys output shorter than key vector")
	}
	out = out[:len(keys)]
	// Reduce the coefficients once per seed, not once per key. The stack
	// array covers every k used in this repository (pairwise selection,
	// KWise = 4 subsampling); larger families fall back to one allocation
	// per batch, amortised over the whole key vector.
	var cbuf [8]uint64
	e.evalReduced(e.reduceSeed(seed, &cbuf), keys, out)
	return out
}

// reduceSeed reduces the seed's coefficients mod p into cbuf (or a fresh
// slice for families wider than the stack array).
//
//det:hotpath
func (e *Evaluator) reduceSeed(seed []uint64, cbuf *[8]uint64) []uint64 {
	k := e.fam.k
	var c []uint64
	if k <= len(cbuf) {
		c = cbuf[:k]
	} else {
		c = make([]uint64, k) //det:allow hotalloc fallback for families wider than the stack array, amortised over the key vector
	}
	for i, s := range seed {
		c[i] = e.red.Mod(s)
	}
	return c
}

// evalReduced evaluates the family polynomial with pre-reduced coefficients
// over a key range. It is the shard body of EvalKeysW — out[i] depends only
// on keys[i] and c, so disjoint subranges can be evaluated concurrently.
//
//det:hotpath
func (e *Evaluator) evalReduced(c, keys, out []uint64) {
	red := e.red
	switch len(c) {
	case 1:
		for i := range keys {
			out[i] = c[0]
		}
	case 2:
		// Unrolled Horner for the pairwise family, coefficients in registers.
		red.EvalPoly2(c[0], c[1], keys, out)
	default:
		red.EvalPoly(c, keys, out)
	}
}

// BlockKeyGrain is the key-block size of EvalSeedsBlocked and
// EvalSeedsBlockedFold: 512 keys = 4KB, comfortably inside L1 alongside one
// output row, so every seed after the first reads the block from cache
// instead of re-streaming the key vector from memory. Block boundaries
// derive from len(keys) and this constant alone, and each output element
// depends only on its own key and seed, so blocking is unobservable in the
// results. It is exported so fold callers can size their tile rows to one
// block (min(BlockKeyGrain, len(keys))) instead of the full key vector.
const BlockKeyGrain = 512

const blockedKeyGrain = BlockKeyGrain

// EvalSeedsBlocked writes out[s][i] = h_seeds[s](keys[i]) for every seed and
// key: the block-major multi-seed kernel of the batched seed searches. Where
// EvalKeys is seed-major (one seed re-streams the whole key vector), this
// walks the key vector once in cache-resident blocks of blockedKeyGrain and
// evaluates all S candidate seeds against each block before advancing —
// the memory traffic of one pass, amortised over the batch. Pairwise
// (k = 2) families additionally run four seeds per inner loop through
// intmath.Reducer.EvalPoly2x4, which keeps four independent Barrett chains
// (or, on AVX2 hardware, four-key vector sweeps) in flight per block.
//
// Results are byte-identical to calling EvalKeys(seeds[s], keys, out[s]) for
// each s in order — fuzz-proven in evaluator_test.go — so the blocked path
// is a speed change only. Every seed must have the family's SeedLen, every
// key must be < P, and each of the first len(seeds) rows of out must have at
// least len(keys) entries. Dirty row contents and slots beyond len(keys) are
// never read, so tile rows drawn from internal/scratch can be passed as-is.
//
//det:hotpath
func (e *Evaluator) EvalSeedsBlocked(seeds [][]uint64, keys []uint64, out [][]uint64) {
	k := e.fam.k
	S := len(seeds)
	if len(out) < S {
		panic("hashfam: EvalSeedsBlocked with fewer output rows than seeds")
	}
	for s, seed := range seeds {
		if len(seed) != k {
			panic(fmt.Sprintf("hashfam: seed length %d, want %d", len(seed), k))
		}
		if len(out[s]) < len(keys) {
			panic("hashfam: EvalSeedsBlocked output row shorter than key vector")
		}
	}
	if S == 0 || len(keys) == 0 {
		return
	}
	// Reduce every seed's coefficients once up front (the per-seed analogue
	// of EvalKeys' single reduceSeed). The stack array covers the batch
	// shapes the objectives feed (S <= condexp.BlockSeeds, k <= 4); larger
	// requests fall back to one allocation amortised over S full key sweeps.
	var cstack [64]uint64
	var cs []uint64
	if S*k <= len(cstack) {
		cs = cstack[:S*k]
	} else {
		cs = make([]uint64, S*k) //det:allow hotalloc fallback for seed batches wider than the stack array, amortised over S key sweeps
	}
	for s, seed := range seeds {
		c := cs[s*k : (s+1)*k]
		for i, v := range seed {
			c[i] = e.red.Mod(v)
		}
	}
	pairwise := k == 2
	for lo := 0; lo < len(keys); lo += blockedKeyGrain {
		hi := lo + blockedKeyGrain
		if hi > len(keys) {
			hi = len(keys)
		}
		kb := keys[lo:hi]
		if pairwise {
			s := 0
			for ; s+4 <= S; s += 4 {
				var c0, c1 [4]uint64
				for j := 0; j < 4; j++ {
					c0[j] = cs[(s+j)*2]
					c1[j] = cs[(s+j)*2+1]
				}
				e.red.EvalPoly2x4(&c0, &c1, kb,
					out[s][lo:hi], out[s+1][lo:hi], out[s+2][lo:hi], out[s+3][lo:hi])
			}
			for ; s < S; s++ {
				e.red.EvalPoly2(cs[s*2], cs[s*2+1], kb, out[s][lo:hi])
			}
		} else {
			for s := 0; s < S; s++ {
				e.evalReduced(cs[s*k:(s+1)*k], kb, out[s][lo:hi])
			}
		}
	}
}

// EvalSeedsBlockedFold is the fused form of EvalSeedsBlocked: instead of
// filling S full-length output rows, it evaluates each BlockKeyGrain key
// block into the first hi-lo slots of the S tile rows and immediately hands
// the block to the caller's fold callback — so the selection's min-table
// updates run while the block's z values are still cache-resident, and the
// S×len(keys) tile of the two-pass path shrinks to S×BlockKeyGrain. Inside
// fold(lo, hi), tile[s][i] holds h_seeds[s](keys[lo+i]) for i < hi-lo; the
// rows are overwritten by the next block, so the callback must consume them
// before returning.
//
// The fold sequence is deterministic by construction: blocks are visited in
// ascending key order with boundaries derived from len(keys) and
// BlockKeyGrain alone, every tile value is byte-identical to the
// corresponding EvalSeedsBlocked slot (same per-block inner kernels,
// fuzz-proven in evaluator_test.go), and the callback runs on the calling
// goroutine. A caller whose fold is a per-block min/sum absorption therefore
// computes exactly what the two-pass pipeline computes. Each of the first
// len(seeds) tile rows must have at least min(BlockKeyGrain, len(keys))
// entries; dirty row contents are never read. With no seeds or no keys the
// callback is never invoked.
//
//det:hotpath
func (e *Evaluator) EvalSeedsBlockedFold(seeds [][]uint64, keys []uint64, tile [][]uint64, fold func(lo, hi int)) {
	k := e.fam.k
	S := len(seeds)
	if len(tile) < S {
		panic("hashfam: EvalSeedsBlockedFold with fewer tile rows than seeds")
	}
	rowLen := len(keys)
	if rowLen > blockedKeyGrain {
		rowLen = blockedKeyGrain
	}
	for s, seed := range seeds {
		if len(seed) != k {
			panic(fmt.Sprintf("hashfam: seed length %d, want %d", len(seed), k))
		}
		if len(tile[s]) < rowLen {
			panic("hashfam: EvalSeedsBlockedFold tile row shorter than key block")
		}
	}
	if S == 0 || len(keys) == 0 {
		return
	}
	var cstack [64]uint64
	var cs []uint64
	if S*k <= len(cstack) {
		cs = cstack[:S*k]
	} else {
		cs = make([]uint64, S*k) //det:allow hotalloc fallback for seed batches wider than the stack array, amortised over S key sweeps
	}
	for s, seed := range seeds {
		c := cs[s*k : (s+1)*k]
		for i, v := range seed {
			c[i] = e.red.Mod(v)
		}
	}
	pairwise := k == 2
	for lo := 0; lo < len(keys); lo += blockedKeyGrain {
		hi := lo + blockedKeyGrain
		if hi > len(keys) {
			hi = len(keys)
		}
		kb := keys[lo:hi]
		w := hi - lo
		if pairwise {
			s := 0
			for ; s+4 <= S; s += 4 {
				var c0, c1 [4]uint64
				for j := 0; j < 4; j++ {
					c0[j] = cs[(s+j)*2]
					c1[j] = cs[(s+j)*2+1]
				}
				e.red.EvalPoly2x4(&c0, &c1, kb,
					tile[s][:w], tile[s+1][:w], tile[s+2][:w], tile[s+3][:w])
			}
			for ; s < S; s++ {
				e.red.EvalPoly2(cs[s*2], cs[s*2+1], kb, tile[s][:w])
			}
		} else {
			for s := 0; s < S; s++ {
				e.evalReduced(cs[s*k:(s+1)*k], kb, tile[s][:w])
			}
		}
		fold(lo, hi)
	}
}

// evalKeysShardGrain is the minimum number of keys a shard must carry for
// the EvalKeysW fan-out to pay for its goroutine handoffs. Shard boundaries
// derive from len(keys) and this constant alone — never from the worker
// count — per the repository's determinism contract (moot for EvalKeysW,
// whose slots are written independently, but kept structural anyway).
const evalKeysShardGrain = 4096

// EvalKeysW is EvalKeys with the key vector sharded over up to `workers`
// goroutines of the shared internal/parallel pool (0 = GOMAXPROCS, 1 =
// serial). It exists for rounds whose key vectors are long while the seed
// batch is too short to saturate the pool by itself: the apply filters and
// final selections that evaluate ONE seed over the whole round, and batch
// tails narrower than the worker count (see condexp.SpareWorkers). Output
// is byte-identical to EvalKeys at any worker count: the seed's
// coefficients are reduced once and shared read-only, and each shard writes
// only its own out range.
func (e *Evaluator) EvalKeysW(seed, keys, out []uint64, workers int) []uint64 {
	if parallel.Workers(workers) <= 1 || len(keys) < 2*evalKeysShardGrain {
		return e.EvalKeys(seed, keys, out)
	}
	if len(seed) != e.fam.k {
		panic(fmt.Sprintf("hashfam: seed length %d, want %d", len(seed), e.fam.k))
	}
	if len(out) < len(keys) {
		panic("hashfam: EvalKeys output shorter than key vector")
	}
	out = out[:len(keys)]
	var cbuf [8]uint64
	c := e.reduceSeed(seed, &cbuf)
	shards := parallel.Shards(len(keys), len(keys)/evalKeysShardGrain)
	parallel.RunShards(workers, len(shards), func(s int) {
		lo, hi := shards[s].Lo, shards[s].Hi
		e.evalReduced(c, keys[lo:hi], out[lo:hi])
	})
	return out
}

// Eval is the scalar form of EvalKeys: h_seed(x) through the bound reducer.
// It exists for one-off evaluations where building a key vector first would
// not pay for itself, and as the reducer-path scalar reference the
// equivalence tests pin against Family.Eval.
func (e *Evaluator) Eval(seed []uint64, x uint64) uint64 {
	k := e.fam.k
	if len(seed) != k {
		panic(fmt.Sprintf("hashfam: seed length %d, want %d", len(seed), k))
	}
	red := e.red
	x = red.Mod(x)
	acc := red.Mod(seed[k-1])
	for j := k - 2; j >= 0; j-- {
		acc = red.AddMod(red.MulMod(acc, x), red.Mod(seed[j]))
	}
	return acc
}
