package hashfam

import (
	"math/rand"
	"testing"
)

// TestEvalSeedsBlockedFoldMatchesBlocked pins the fold kernel's contract:
// reassembling the per-block tile contents handed to the callback must
// reproduce EvalSeedsBlocked's full matrix byte for byte, the callback must
// see exactly the [0, len(keys)) blocks in ascending order with
// BlockKeyGrain-aligned boundaries, and tile rows start dirty. Key counts
// straddle the grain (empty, below, exact multiple, ragged tail) and S covers
// the EvalPoly2x4 groups plus remainders.
func TestEvalSeedsBlockedFoldMatchesBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tc := range evaluatorFamilies {
		f := New(tc.minField, tc.k)
		ev := NewEvaluator(f)
		for _, S := range []int{0, 1, 3, 4, 8, 11} {
			for _, n := range []int{0, 1, 7, 511, 512, 513, 1400} {
				seeds := make([][]uint64, S)
				for s := range seeds {
					seeds[s] = make([]uint64, f.SeedLen())
					for i := range seeds[s] {
						seeds[s][i] = rng.Uint64() // unreduced: Mod'd like EvalKeys
					}
				}
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Uint64() % f.P()
				}
				if n > 1 {
					keys[0], keys[1] = 0, f.P()-1
				}
				want := make([][]uint64, S)
				for s := 0; s < S; s++ {
					want[s] = make([]uint64, n)
				}
				ev.EvalSeedsBlocked(seeds, keys, want)

				blockLen := n
				if blockLen > BlockKeyGrain {
					blockLen = BlockKeyGrain
				}
				tile := make([][]uint64, S)
				got := make([][]uint64, S)
				for s := 0; s < S; s++ {
					tile[s] = make([]uint64, blockLen)
					got[s] = make([]uint64, n)
					for i := range tile[s] {
						tile[s][i] = ^uint64(0) // dirty prior contents must not leak
					}
				}
				prevHi := 0
				ev.EvalSeedsBlockedFold(seeds, keys, tile, func(lo, hi int) {
					if lo != prevHi || hi <= lo || hi > n || (hi-lo > BlockKeyGrain) {
						t.Fatalf("S=%d n=%d: bad block [%d,%d) after hi=%d", S, n, lo, hi, prevHi)
					}
					if hi < n && (hi-lo) != BlockKeyGrain {
						t.Fatalf("S=%d n=%d: interior block [%d,%d) not grain-sized", S, n, lo, hi)
					}
					prevHi = hi
					for s := 0; s < S; s++ {
						copy(got[s][lo:hi], tile[s][:hi-lo])
					}
				})
				if S > 0 && prevHi != n {
					t.Fatalf("S=%d n=%d: fold stopped at %d", S, n, prevHi)
				}
				if (S == 0 || n == 0) && prevHi != 0 {
					t.Fatalf("S=%d n=%d: callback invoked on empty work", S, n)
				}
				for s := 0; s < S; s++ {
					for i := 0; i < n; i++ {
						if got[s][i] != want[s][i] {
							t.Fatalf("p=%d k=%d S=%d n=%d: seed %d key %d: fold = %d, blocked = %d",
								f.P(), f.K(), S, n, s, i, got[s][i], want[s][i])
						}
					}
				}
			}
		}
	}
}

func TestEvalSeedsBlockedFoldPanics(t *testing.T) {
	f := New(97, 2)
	ev := NewEvaluator(f)
	keys := []uint64{0, 1, 2}
	noop := func(lo, hi int) {}
	for name, fn := range map[string]func(){
		"short seed": func() {
			ev.EvalSeedsBlockedFold([][]uint64{{1}}, keys, [][]uint64{make([]uint64, 3)}, noop)
		},
		"missing row": func() {
			ev.EvalSeedsBlockedFold([][]uint64{{1, 2}, {3, 4}}, keys, [][]uint64{make([]uint64, 3)}, noop)
		},
		"short row": func() {
			ev.EvalSeedsBlockedFold([][]uint64{{1, 2}}, keys, [][]uint64{make([]uint64, 2)}, noop)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzEvalSeedsBlockedFoldMatchesBlocked drives the fold kernel with
// arbitrary fields (the reducer's boundary regimes: near 1, near 2^32, near
// 2^63, near 2^64), S in {1, 3, 8}, and ragged key counts that leave partial
// tail blocks; reassembled blocks must match the two-pass kernel byte for
// byte. Tile rows start dirty and are sized exactly one block.
func FuzzEvalSeedsBlockedFoldMatchesBlocked(f *testing.F) {
	f.Add(uint64(1), 2, 1, uint64(12345), 513)
	f.Add((uint64(1)<<32)-1, 2, 8, uint64(99), 1025)
	f.Add((uint64(1)<<32)+1, 4, 3, uint64(7), 70)
	f.Add((uint64(1)<<63)+29, 2, 8, ^uint64(0), 512)
	f.Add(^uint64(0)-58, 9, 3, uint64(424242), 600)
	f.Fuzz(func(t *testing.T, minField uint64, k, S int, base uint64, n int) {
		if k < 1 || k > 12 {
			return
		}
		switch S {
		case 1, 3, 8:
		default:
			return
		}
		if n < 0 || n > 2048 {
			return
		}
		if minField > ^uint64(0)-58 {
			minField = ^uint64(0) - 58 // 2^64-59 is the largest uint64 prime
		}
		fam := New(minField, k)
		ev := NewEvaluator(fam)
		x := base
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x
		}
		seeds := make([][]uint64, S)
		for s := range seeds {
			seeds[s] = make([]uint64, k)
			for i := range seeds[s] {
				seeds[s][i] = next()
			}
		}
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = next() % fam.P()
		}
		want := make([][]uint64, S)
		for s := 0; s < S; s++ {
			want[s] = make([]uint64, n)
		}
		ev.EvalSeedsBlocked(seeds, keys, want)

		blockLen := n
		if blockLen > BlockKeyGrain {
			blockLen = BlockKeyGrain
		}
		tile := make([][]uint64, S)
		got := make([][]uint64, S)
		for s := 0; s < S; s++ {
			tile[s] = make([]uint64, blockLen)
			got[s] = make([]uint64, n)
			for i := range tile[s] {
				tile[s][i] = base // dirty
			}
		}
		ev.EvalSeedsBlockedFold(seeds, keys, tile, func(lo, hi int) {
			for s := 0; s < S; s++ {
				copy(got[s][lo:hi], tile[s][:hi-lo])
			}
		})
		for s := 0; s < S; s++ {
			for i := 0; i < n; i++ {
				if got[s][i] != want[s][i] {
					t.Fatalf("p=%d k=%d S=%d n=%d: seed %d key %d: fold %d, two-pass %d",
						fam.P(), k, S, n, s, i, got[s][i], want[s][i])
				}
			}
		}
	})
}
