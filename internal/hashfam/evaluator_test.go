package hashfam

import (
	"math/rand"
	"testing"
)

// evaluatorFamilies covers both reducer regimes (field below and above 2^32)
// and both family shapes the algorithms use (pairwise, 4-wise), plus k = 1
// and a degree large enough to spill the Evaluator's stack coefficients.
var evaluatorFamilies = []struct {
	minField uint64
	k        int
}{
	{2, 1},
	{97, 2},
	{1 << 20, 2},
	{1 << 20, 4},
	{(1 << 32) + 1, 2}, // wide reducer path
	{(1 << 33) + 5, 4},
	{1 << 10, 9}, // k beyond the stack coefficient buffer
}

// TestEvaluatorMatchesEval is the kernel's contract: EvalKeys over a dirty
// output buffer is byte-identical to per-key Family.Eval.
func TestEvaluatorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range evaluatorFamilies {
		f := New(tc.minField, tc.k)
		ev := NewEvaluator(f)
		if ev.Family() != f {
			t.Fatalf("Family() mismatch")
		}
		seed := make([]uint64, f.SeedLen())
		keys := make([]uint64, 513)
		out := make([]uint64, len(keys))
		for trial := 0; trial < 20; trial++ {
			for i := range seed {
				seed[i] = rng.Uint64() % f.P()
			}
			for i := range keys {
				keys[i] = rng.Uint64() % f.P()
			}
			keys[0], keys[1] = 0, f.P()-1
			for i := range out {
				out[i] = ^uint64(0) // dirty prior contents must not leak
			}
			got := ev.EvalKeys(seed, keys, out)
			if len(got) != len(keys) {
				t.Fatalf("p=%d k=%d: EvalKeys returned %d values, want %d", f.P(), f.K(), len(got), len(keys))
			}
			for i, x := range keys {
				want := f.Eval(seed, x)
				if got[i] != want {
					t.Fatalf("p=%d k=%d: key %d: EvalKeys = %d, Eval = %d", f.P(), f.K(), x, got[i], want)
				}
				if s := ev.Eval(seed, x); s != want {
					t.Fatalf("p=%d k=%d: key %d: Evaluator.Eval = %d, Family.Eval = %d", f.P(), f.K(), x, s, want)
				}
			}
		}
	}
}

// TestEvaluatorUnreducedSeed pins the seed-reduction semantics: EvalKeys
// reduces coefficients mod p exactly like Eval does, so out-of-range seeds
// (legal for Eval) agree too.
func TestEvaluatorUnreducedSeed(t *testing.T) {
	f := New(1<<20, 4)
	ev := NewEvaluator(f)
	seed := []uint64{^uint64(0), f.P(), f.P() + 1, 3*f.P() + 17}
	keys := []uint64{0, 1, 12345, f.P() - 1}
	out := make([]uint64, len(keys))
	ev.EvalKeys(seed, keys, out)
	for i, x := range keys {
		if want := f.Eval(seed, x); out[i] != want {
			t.Fatalf("key %d: EvalKeys = %d, Eval = %d", x, out[i], want)
		}
	}
}

func TestEvalKeysPanics(t *testing.T) {
	f := New(97, 2)
	ev := NewEvaluator(f)
	for name, fn := range map[string]func(){
		"short seed":   func() { ev.EvalKeys([]uint64{1}, []uint64{0}, make([]uint64, 1)) },
		"short output": func() { ev.EvalKeys([]uint64{1, 2}, []uint64{0, 1}, make([]uint64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzEvalKeysMatchesEval drives random families, seeds and keys through
// both paths; any byte difference between the scalar fallback and the
// batched kernel fails.
func FuzzEvalKeysMatchesEval(f *testing.F) {
	f.Add(uint64(1024), 2, uint64(12345), uint64(99))
	f.Add(uint64(1)<<33, 4, uint64(1)<<40, ^uint64(0))
	f.Add(uint64(2), 1, uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, minField uint64, k int, seedBase, keyBase uint64) {
		if k < 1 || k > 12 {
			return
		}
		if minField > 1<<40 {
			minField = 1 << 40
		}
		fam := New(minField, k)
		ev := NewEvaluator(fam)
		seed := make([]uint64, k)
		for i := range seed {
			seed[i] = (seedBase*uint64(2*i+1) + 0x9E3779B9) % fam.P()
		}
		keys := make([]uint64, 64)
		for i := range keys {
			keys[i] = (keyBase*uint64(i+1) + uint64(i)*seedBase) % fam.P()
		}
		out := make([]uint64, len(keys))
		for i := range out {
			out[i] = keyBase // dirty
		}
		ev.EvalKeys(seed, keys, out)
		for i, x := range keys {
			if want := fam.Eval(seed, x); out[i] != want {
				t.Fatalf("p=%d k=%d key=%d: kernel %d, scalar %d", fam.P(), k, x, out[i], want)
			}
		}
	})
}

// TestEvalSeedsBlockedMatchesEvalKeys is the blocked kernel's contract:
// evaluating the whole seed matrix block-major over dirty tile rows is
// byte-identical to S independent seed-major EvalKeys sweeps. Key counts
// straddle the block grain (empty, below, exact multiple, ragged tail) and
// S covers the EvalPoly2x4 groups plus remainders.
func TestEvalSeedsBlockedMatchesEvalKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range evaluatorFamilies {
		f := New(tc.minField, tc.k)
		ev := NewEvaluator(f)
		for _, S := range []int{0, 1, 3, 4, 8, 11} {
			for _, n := range []int{0, 1, 7, 511, 512, 513, 1400} {
				seeds := make([][]uint64, S)
				for s := range seeds {
					seeds[s] = make([]uint64, f.SeedLen())
					for i := range seeds[s] {
						seeds[s][i] = rng.Uint64() // unreduced: Mod'd like EvalKeys
					}
				}
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Uint64() % f.P()
				}
				if n > 1 {
					keys[0], keys[1] = 0, f.P()-1
				}
				got := make([][]uint64, S)
				want := make([][]uint64, S)
				for s := 0; s < S; s++ {
					got[s] = make([]uint64, n)
					want[s] = make([]uint64, n)
					for i := 0; i < n; i++ {
						got[s][i] = ^uint64(0) // dirty prior contents must not leak
					}
					ev.EvalKeys(seeds[s], keys, want[s])
				}
				ev.EvalSeedsBlocked(seeds, keys, got)
				for s := 0; s < S; s++ {
					for i := 0; i < n; i++ {
						if got[s][i] != want[s][i] {
							t.Fatalf("p=%d k=%d S=%d n=%d: seed %d key %d: blocked = %d, EvalKeys = %d",
								f.P(), f.K(), S, n, s, i, got[s][i], want[s][i])
						}
					}
				}
			}
		}
	}
}

func TestEvalSeedsBlockedPanics(t *testing.T) {
	f := New(97, 2)
	ev := NewEvaluator(f)
	keys := []uint64{0, 1, 2}
	for name, fn := range map[string]func(){
		"short seed": func() {
			ev.EvalSeedsBlocked([][]uint64{{1}}, keys, [][]uint64{make([]uint64, 3)})
		},
		"missing row": func() {
			ev.EvalSeedsBlocked([][]uint64{{1, 2}, {3, 4}}, keys, [][]uint64{make([]uint64, 3)})
		},
		"short row": func() {
			ev.EvalSeedsBlocked([][]uint64{{1, 2}}, keys, [][]uint64{make([]uint64, 2)})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzEvalSeedsBlockedMatchesEvalKeys drives the blocked kernel with
// arbitrary fields (pinned to the reducer's boundary regimes: near 1, near
// 2^32, near 2^63, near 2^64), S in {1, 3, 8}, and ragged key counts that
// leave partial tail blocks; any byte difference from the per-seed kernel
// fails. Buffers start dirty.
func FuzzEvalSeedsBlockedMatchesEvalKeys(f *testing.F) {
	f.Add(uint64(1), 2, 1, uint64(12345), 513)
	f.Add((uint64(1)<<32)-1, 2, 8, uint64(99), 1025)
	f.Add((uint64(1)<<32)+1, 4, 3, uint64(7), 70)
	f.Add((uint64(1)<<63)+29, 2, 8, ^uint64(0), 512)
	f.Add(^uint64(0)-58, 9, 3, uint64(424242), 600)
	f.Fuzz(func(t *testing.T, minField uint64, k, S int, base uint64, n int) {
		if k < 1 || k > 12 {
			return
		}
		switch S {
		case 1, 3, 8:
		default:
			return
		}
		if n < 0 || n > 2048 {
			return
		}
		if minField > ^uint64(0)-58 {
			minField = ^uint64(0) - 58 // 2^64-59 is the largest uint64 prime
		}
		fam := New(minField, k)
		ev := NewEvaluator(fam)
		x := base
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x
		}
		seeds := make([][]uint64, S)
		for s := range seeds {
			seeds[s] = make([]uint64, k)
			for i := range seeds[s] {
				seeds[s][i] = next()
			}
		}
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = next() % fam.P()
		}
		got := make([][]uint64, S)
		want := make([][]uint64, S)
		for s := 0; s < S; s++ {
			got[s] = make([]uint64, n)
			want[s] = make([]uint64, n)
			for i := 0; i < n; i++ {
				got[s][i] = base // dirty
			}
			ev.EvalKeys(seeds[s], keys, want[s])
		}
		ev.EvalSeedsBlocked(seeds, keys, got)
		for s := 0; s < S; s++ {
			for i := 0; i < n; i++ {
				if got[s][i] != want[s][i] {
					t.Fatalf("p=%d k=%d S=%d n=%d: seed %d key %d: blocked %d, per-seed %d",
						fam.P(), k, S, n, s, i, got[s][i], want[s][i])
				}
			}
		}
	})
}

func BenchmarkEvalScalar(b *testing.B) {
	f := New(1<<28, 2)
	seed := []uint64{12345, 67890}
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i) * 65537 % f.P()
	}
	out := make([]uint64, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range keys {
			out[j] = f.Eval(seed, x)
		}
	}
	sink = out[0]
}

func BenchmarkEvalKeysKernel(b *testing.B) {
	f := New(1<<28, 2)
	ev := NewEvaluator(f)
	seed := []uint64{12345, 67890}
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i) * 65537 % f.P()
	}
	out := make([]uint64, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvalKeys(seed, keys, out)
	}
	sink = out[0]
}

// BenchmarkEvalSeedsBlocked is the blocked kernel under the production
// shape: condexp.BlockSeeds pairwise seeds over a T7-sized key vector.
// Compare against 8x BenchmarkEvalKeysKernel for the seed-major baseline.
func BenchmarkEvalSeedsBlocked(b *testing.B) {
	f := New(1<<28, 2)
	ev := NewEvaluator(f)
	const S = 8
	seeds := make([][]uint64, S)
	for s := range seeds {
		seeds[s] = []uint64{uint64(s)*12345 + 1, uint64(s)*67890 + 3}
	}
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i) * 65537 % f.P()
	}
	out := make([][]uint64, S)
	for s := range out {
		out[s] = make([]uint64, len(keys))
	}
	b.SetBytes(int64(S * len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvalSeedsBlocked(seeds, keys, out)
	}
	sink = out[0][0]
}

var sink uint64
