package hashfam

import (
	"testing"
	"testing/quick"

	"repro/internal/intmath"
)

func TestNewPicksPrimeField(t *testing.T) {
	for _, min := range []uint64{2, 10, 100, 1 << 20} {
		f := New(min, 2)
		if f.P() < min || !intmath.IsPrime(f.P()) {
			t.Errorf("New(%d): field %d not a prime >= min", min, f.P())
		}
	}
}

func TestEvalMatchesDirectPolynomial(t *testing.T) {
	f := New(101, 3)
	p := f.P()
	seed := []uint64{5, 7, 11}
	for x := uint64(0); x < p; x++ {
		want := (5 + 7*x + 11*x*x) % p
		if got := f.Eval(seed, x); got != want {
			t.Fatalf("Eval(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestEvalPanicsOnBadSeedLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval with wrong seed length did not panic")
		}
	}()
	New(17, 2).Eval([]uint64{1, 2, 3}, 0)
}

// TestExactKWiseIndependence verifies, by full enumeration, that for small
// fields the polynomial family is exactly k-wise independent: for any k
// distinct points, the joint distribution of hash values over a uniformly
// random seed is uniform over [p]^k.
func TestExactKWiseIndependence(t *testing.T) {
	for _, tc := range []struct {
		p uint64
		k int
	}{{5, 2}, {7, 2}, {5, 3}} {
		f := Family{p: tc.p, k: tc.k}
		numSeeds, ok := f.NumSeeds()
		if !ok {
			t.Fatalf("family too large for test")
		}
		// Points 0,1,...,k-1 (any distinct points work; independence is
		// invariant under the choice).
		points := make([]uint64, tc.k)
		for i := range points {
			points[i] = uint64(i)
		}
		counts := map[string]int{}
		seed := make([]uint64, tc.k)
		key := make([]byte, tc.k)
		for idx := uint64(0); idx < numSeeds; idx++ {
			f.SeedFromIndex(idx, seed)
			for i, x := range points {
				key[i] = byte(f.Eval(seed, x))
			}
			counts[string(key)]++
		}
		tuples, _ := intmath.SatPow(tc.p, tc.k)
		if len(counts) != int(tuples) {
			t.Fatalf("p=%d k=%d: saw %d distinct tuples, want %d", tc.p, tc.k, len(counts), tuples)
		}
		want := int(numSeeds / tuples)
		for k, c := range counts {
			if c != want {
				t.Fatalf("p=%d k=%d: tuple %x occurs %d times, want %d", tc.p, tc.k, k, c, want)
			}
		}
	}
}

// TestPairwiseIndependenceOfHigherDegree checks the 2-dimensional marginals
// of a k=4 family: any pair of distinct points must be uniformly jointly
// distributed (k-wise independence implies all j-wise for j <= k).
func TestPairwiseIndependenceOfHigherDegree(t *testing.T) {
	f := Family{p: 5, k: 4}
	numSeeds, _ := f.NumSeeds()
	counts := map[[2]uint64]int{}
	seed := make([]uint64, 4)
	for idx := uint64(0); idx < numSeeds; idx++ {
		f.SeedFromIndex(idx, seed)
		counts[[2]uint64{f.Eval(seed, 1), f.Eval(seed, 3)}]++
	}
	want := int(numSeeds / 25)
	for k, c := range counts {
		if c != want {
			t.Fatalf("pair %v occurs %d times, want %d", k, c, want)
		}
	}
}

func TestSeedFromIndexRoundTrip(t *testing.T) {
	f := Family{p: 7, k: 3}
	seen := map[[3]uint64]bool{}
	seed := make([]uint64, 3)
	numSeeds, _ := f.NumSeeds()
	for idx := uint64(0); idx < numSeeds; idx++ {
		f.SeedFromIndex(idx, seed)
		var key [3]uint64
		copy(key[:], seed)
		if seen[key] {
			t.Fatalf("seed %v repeated at index %d", seed, idx)
		}
		seen[key] = true
	}
	if len(seen) != int(numSeeds) {
		t.Fatalf("enumerated %d seeds, want %d", len(seen), numSeeds)
	}
}

func TestEnumVisitsWholeFamilyOnce(t *testing.T) {
	f := New(11, 2)
	e := f.Enumerate()
	numSeeds, _ := f.NumSeeds()
	seen := map[[2]uint64]bool{}
	for e.Next() {
		var key [2]uint64
		copy(key[:], e.Seed())
		if seen[key] {
			t.Fatalf("enumerator repeated seed %v", key)
		}
		seen[key] = true
	}
	if uint64(len(seen)) != numSeeds {
		t.Fatalf("enumerator visited %d seeds, want %d", len(seen), numSeeds)
	}
	if e.Next() {
		t.Error("enumerator yielded a seed after exhaustion")
	}
}

func TestEnumDeterministicAndResettable(t *testing.T) {
	f := New(101, 3)
	a, b := f.Enumerate(), f.Enumerate()
	var first [][3]uint64
	for i := 0; i < 50; i++ {
		if !a.Next() || !b.Next() {
			t.Fatal("enumerator exhausted too early")
		}
		var ka, kb [3]uint64
		copy(ka[:], a.Seed())
		copy(kb[:], b.Seed())
		if ka != kb {
			t.Fatalf("step %d: enumerators disagree: %v vs %v", i, ka, kb)
		}
		first = append(first, ka)
	}
	a.Reset()
	for i := 0; i < 50; i++ {
		if !a.Next() {
			t.Fatal("reset enumerator exhausted early")
		}
		var k [3]uint64
		copy(k[:], a.Seed())
		if k != first[i] {
			t.Fatalf("after Reset, step %d differs", i)
		}
	}
}

func TestEnumPrefixIsGeneric(t *testing.T) {
	// The first few seeds must not all be degenerate (e.g. zero leading
	// coefficient => constant/low-degree polynomial). This is the property
	// the early-exit search depends on.
	f := New(1009, 2)
	e := f.Enumerate()
	degenerate := 0
	for i := 0; i < 20 && e.Next(); i++ {
		if e.Seed()[1] == 0 {
			degenerate++
		}
	}
	if degenerate > 2 {
		t.Errorf("%d of the first 20 seeds are degenerate", degenerate)
	}
}

func TestThreshold(t *testing.T) {
	cases := []struct{ p, num, den, want uint64 }{
		{100, 1, 2, 50},
		{101, 1, 2, 50},
		{97, 1, 3, 32},
		{97, 2, 1, 97}, // probability >= 1 clamps to p
		{1000003, 1, 1000, 1000},
	}
	for _, c := range cases {
		if got := Threshold(c.p, c.num, c.den); got != c.want {
			t.Errorf("Threshold(%d,%d,%d) = %d, want %d", c.p, c.num, c.den, got, c.want)
		}
	}
}

func TestThresholdProbabilityExact(t *testing.T) {
	// For a 1-wise family (uniform single value), the fraction of seeds with
	// value < Threshold(p, num, den) must be exactly floor(p*num/den)/p.
	f := Family{p: 101, k: 1}
	th := Threshold(f.p, 1, 4) // ~1/4
	count := 0
	seed := make([]uint64, 1)
	for idx := uint64(0); idx < f.p; idx++ {
		f.SeedFromIndex(idx, seed)
		if f.Eval(seed, 42) < th {
			count++
		}
	}
	if uint64(count) != th {
		t.Errorf("sampled fraction %d/%d, want %d/%d", count, f.p, th, f.p)
	}
}

func TestSeedBits(t *testing.T) {
	f := New(1<<20, 2)
	if f.SeedBits() < 40 || f.SeedBits() > 44 {
		t.Errorf("SeedBits = %d, want ~2*20", f.SeedBits())
	}
}

func TestNumSeedsOverflow(t *testing.T) {
	f := New(1<<40, 2) // p^2 ~ 2^80 overflows
	if _, ok := f.NumSeeds(); ok {
		t.Error("NumSeeds should report overflow for p~2^40, k=2")
	}
	g := New(1<<16, 2)
	if n, ok := g.NumSeeds(); !ok || n < 1<<32 {
		t.Errorf("NumSeeds = %d,%v for p~2^16 k=2", n, ok)
	}
}

func TestEvalStaysInRangeQuick(t *testing.T) {
	f := New(1<<24, 4)
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(c0, c1, c2, c3, x uint64) bool {
		seed := []uint64{c0 % f.P(), c1 % f.P(), c2 % f.P(), c3 % f.P()}
		return f.Eval(seed, x%f.P()) < f.P()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalK2(b *testing.B) {
	f := New(1<<30, 2)
	seed := []uint64{123456789, 987654321}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.Eval(seed, uint64(i))
	}
	_ = sink
}

func BenchmarkEvalK8(b *testing.B) {
	f := New(1<<30, 8)
	seed := make([]uint64, 8)
	for i := range seed {
		seed[i] = uint64(i)*7919 + 13
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.Eval(seed, uint64(i))
	}
	_ = sink
}
