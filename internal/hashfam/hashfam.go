// Package hashfam implements the k-wise independent hash function families of
// Section 2.3 of the paper (cf. Lemma 6 / Vadhan Corollary 3.34).
//
// A family is the set of degree-(k-1) polynomials over the prime field F_p,
//
//	h_c(x) = c_0 + c_1·x + ... + c_{k-1}·x^{k-1}  (mod p),
//
// which is exactly k-wise independent on domain and range [p]. A "seed" is
// the coefficient vector c. The paper chooses p ≈ n³ so that the z-values it
// assigns to nodes and edges rarely collide; we keep the same construction
// with p the least prime at least the caller's requested size, and the
// algorithms break the rare remaining ties by id (documented in DESIGN.md).
//
// Derandomization needs a fixed deterministic enumeration order of the
// family. Enumerating coefficient vectors in plain counting order would
// front-load degenerate seeds (e.g. all the constant functions come first),
// so Enum visits each digit in an affinely scrambled order while an odometer
// walks the full p^k family. The order is deterministic, has full period, and
// its prefix looks "generic", which is what the early-exit seed searches in
// internal/condexp rely on.
package hashfam

import (
	"fmt"
	"math/bits"

	"repro/internal/intmath"
)

// Family is a k-wise independent polynomial hash family over F_p.
// The zero value is not usable; construct with New.
type Family struct {
	p uint64 // field size (prime)
	k int    // independence (= number of coefficients)
}

// New returns the family of degree-(k-1) polynomials over F_p where p is the
// least prime >= minField. k must be at least 1. The domain and range are
// both [p); callers must ensure their keys are below p.
func New(minField uint64, k int) Family {
	if k < 1 {
		panic("hashfam: k must be >= 1")
	}
	if minField < 2 {
		minField = 2
	}
	return Family{p: intmath.NextPrime(minField), k: k}
}

// P returns the field size (prime), which is both domain and range bound.
func (f Family) P() uint64 { return f.p }

// K returns the independence of the family.
func (f Family) K() int { return f.k }

// SeedLen returns the number of field elements in a seed.
func (f Family) SeedLen() int { return f.k }

// SeedBits returns the seed length in bits, k*ceil(log2 p), matching the
// O(k·log n) seed length of Lemma 6.
func (f Family) SeedBits() int { return f.k * intmath.CeilLog2(f.p) }

// NumSeeds returns the family size p^k, with ok=false if it overflows uint64
// (the enumerator still works in that case; only direct indexing is lost).
func (f Family) NumSeeds() (uint64, bool) {
	n, overflow := intmath.SatPow(f.p, f.k)
	return n, !overflow
}

// Eval evaluates the polynomial with the given coefficient seed at point x,
// by Horner's rule. len(seed) must equal SeedLen and x must be < P. Each
// input is reduced exactly once (x hoisted out of the coefficient loop, each
// coefficient as it is consumed); the hot seed searches use the batched
// Evaluator kernel instead, which also removes the per-step division.
func (f Family) Eval(seed []uint64, x uint64) uint64 {
	if len(seed) != f.k {
		panic(fmt.Sprintf("hashfam: seed length %d, want %d", len(seed), f.k))
	}
	if x >= f.p {
		x %= f.p
	}
	acc := seed[f.k-1] % f.p
	for i := f.k - 2; i >= 0; i-- {
		acc = intmath.AddMod(intmath.MulMod(acc, x, f.p), seed[i]%f.p, f.p)
	}
	return acc
}

// SeedFromIndex writes into dst the seed with the given index in the
// *unscrambled* base-p digit order (digit j = coefficient j). It is used by
// the exact conditional-expectations search on small families, where indexing
// must be arithmetic. It panics if the family size overflows uint64.
func (f Family) SeedFromIndex(index uint64, dst []uint64) {
	if _, ok := f.NumSeeds(); !ok {
		panic("hashfam: SeedFromIndex on family larger than uint64")
	}
	if len(dst) != f.k {
		panic("hashfam: bad dst length")
	}
	for j := 0; j < f.k; j++ {
		dst[j] = index % f.p
		index /= f.p
	}
}

// Threshold returns floor(p·num/den), the largest field value t such that a
// uniform z in [p) satisfies z < t with probability floor(p·num/den)/p ≈
// num/den. It is how "sample with probability n^-δ" is expressed in field
// terms (paper: h(e) ≤ n^{3-δ} with range n³).
func Threshold(p, num, den uint64) uint64 {
	if den == 0 {
		panic("hashfam: Threshold with den = 0")
	}
	if num >= den {
		return p
	}
	hi, lo := bits.Mul64(p, num)
	if hi >= den {
		panic("hashfam: Threshold overflow")
	}
	q, _ := bits.Div64(hi, lo, den)
	return q
}

// Enum walks the whole family in a deterministic scrambled order with full
// period p^k. It never allocates after construction and is safe to copy
// before first use only.
type Enum struct {
	fam     Family
	counter []uint64 // odometer digits, each in [p)
	mult    []uint64 // per-digit scrambling multiplier (nonzero mod p)
	offset  []uint64 // per-digit scrambling offset
	seed    []uint64 // current scrambled seed
	started bool
	wrapped bool
}

// Enumerate returns a fresh enumerator over the family in its canonical
// scrambled order. Two enumerators over equal families visit seeds in the
// same order.
func (f Family) Enumerate() *Enum {
	e := &Enum{
		fam:     f,
		counter: make([]uint64, f.k),
		mult:    make([]uint64, f.k),
		offset:  make([]uint64, f.k),
		seed:    make([]uint64, f.k),
	}
	// Fixed mixing constants; any nonzero multiplier gives a digit
	// permutation since p is prime. Derived from the golden-ratio constant
	// so different digits use different permutations.
	const phi = 0x9E3779B97F4A7C15
	for j := range e.mult {
		m := (phi*uint64(2*j+1) + 0x7F4A7C15) % f.p
		if m == 0 {
			m = 1
		}
		e.mult[j] = m
		e.offset[j] = (phi >> uint(j%32)) % f.p
	}
	return e
}

// Next advances to the next seed and reports whether it is the first visit
// of a new seed (false once the family has been exhausted). The current seed
// is readable via Seed until the following call to Next.
func (e *Enum) Next() bool {
	if e.wrapped {
		return false
	}
	if !e.started {
		e.started = true
	} else {
		// Odometer increment.
		j := 0
		for ; j < len(e.counter); j++ {
			e.counter[j]++
			if e.counter[j] < e.fam.p {
				break
			}
			e.counter[j] = 0
		}
		if j == len(e.counter) {
			e.wrapped = true
			return false
		}
	}
	for j, c := range e.counter {
		e.seed[j] = intmath.AddMod(intmath.MulMod(c, e.mult[j], e.fam.p), e.offset[j], e.fam.p)
	}
	return true
}

// Seed returns the current seed. The returned slice is reused by Next; copy
// it if it must outlive the next call.
func (e *Enum) Seed() []uint64 { return e.seed }

// Reset rewinds the enumerator to the beginning of its order.
func (e *Enum) Reset() {
	for j := range e.counter {
		e.counter[j] = 0
	}
	e.started = false
	e.wrapped = false
}
