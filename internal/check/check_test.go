package check

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func path4() *graph.Graph { return gen.Path(4) } // 0-1-2-3

func TestIsMatching(t *testing.T) {
	g := path4()
	if ok, _ := IsMatching(g, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}); !ok {
		t.Error("valid matching rejected")
	}
	if ok, reason := IsMatching(g, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}); ok {
		t.Error("overlapping edges accepted")
	} else if reason == "" {
		t.Error("missing reason")
	}
	if ok, _ := IsMatching(g, []graph.Edge{{U: 0, V: 3}}); ok {
		t.Error("non-edge accepted")
	}
	if ok, _ := IsMatching(g, nil); !ok {
		t.Error("empty matching rejected")
	}
}

func TestIsMaximalMatching(t *testing.T) {
	g := path4()
	if ok, _ := IsMaximalMatching(g, []graph.Edge{{U: 1, V: 2}}); !ok {
		t.Error("maximal matching {1-2} rejected")
	}
	if ok, _ := IsMaximalMatching(g, []graph.Edge{{U: 0, V: 1}}); ok {
		t.Error("non-maximal matching accepted (2-3 addable)")
	}
	if ok, _ := IsMaximalMatching(gen.Complete(4), []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}); !ok {
		t.Error("perfect matching of K4 rejected")
	}
	// Empty graph: the empty matching is maximal.
	if ok, _ := IsMaximalMatching(graph.Empty(5), nil); !ok {
		t.Error("empty matching on empty graph rejected")
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := path4()
	if ok, _ := IsIndependentSet(g, []graph.NodeID{0, 2}); !ok {
		t.Error("valid IS rejected")
	}
	if ok, _ := IsIndependentSet(g, []graph.NodeID{0, 1}); ok {
		t.Error("adjacent pair accepted")
	}
	if ok, _ := IsIndependentSet(g, []graph.NodeID{0, 0}); ok {
		t.Error("duplicate accepted")
	}
	if ok, _ := IsIndependentSet(g, []graph.NodeID{9}); ok {
		t.Error("out-of-range accepted")
	}
}

func TestIsMaximalIS(t *testing.T) {
	g := path4()
	if ok, _ := IsMaximalIS(g, []graph.NodeID{0, 2}); !ok {
		t.Error("maximal IS {0,2} rejected")
	}
	if ok, _ := IsMaximalIS(g, []graph.NodeID{1}); ok {
		t.Error("non-maximal IS accepted (3 addable)")
	}
	if ok, _ := IsMaximalIS(gen.Star(6), []graph.NodeID{0}); !ok {
		t.Error("star centre alone is maximal, rejected")
	}
	// All nodes of an empty graph must be present for maximality.
	if ok, _ := IsMaximalIS(graph.Empty(3), []graph.NodeID{0, 1}); ok {
		t.Error("missing isolated node accepted as maximal")
	}
	if ok, _ := IsMaximalIS(graph.Empty(3), []graph.NodeID{0, 1, 2}); !ok {
		t.Error("full vertex set of empty graph rejected")
	}
}

func TestCoveredEdges(t *testing.T) {
	g := path4()
	if got := CoveredEdges(g, []graph.NodeID{1}); got != 2 {
		t.Errorf("CoveredEdges({1}) = %d, want 2", got)
	}
	if got := CoveredEdges(g, []graph.NodeID{0, 3}); got != 2 {
		t.Errorf("CoveredEdges({0,3}) = %d, want 2", got)
	}
	if got := CoveredEdges(g, nil); got != 0 {
		t.Errorf("CoveredEdges(nil) = %d", got)
	}
	if got := CoveredEdges(g, []graph.NodeID{0, 1, 2, 3}); got != g.M() {
		t.Errorf("all nodes cover %d edges, want %d", got, g.M())
	}
}
