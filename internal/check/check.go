// Package check provides the correctness validators used by tests, examples
// and the experiment harness: matching validity and maximality, independent
// set validity and maximality. All validators run against the original input
// graph, so they catch any bookkeeping error the iterative algorithms might
// make while shrinking their working copies.
package check

import (
	"fmt"

	"repro/internal/graph"
)

// IsMatching reports whether edges form a matching of g: every edge present
// in g and no two edges sharing an endpoint. A descriptive reason is
// returned on failure.
func IsMatching(g *graph.Graph, edges []graph.Edge) (bool, string) {
	used := make([]bool, g.N())
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			return false, fmt.Sprintf("edge %v not in graph", e)
		}
		if used[e.U] {
			return false, fmt.Sprintf("node %d matched twice", e.U)
		}
		if used[e.V] {
			return false, fmt.Sprintf("node %d matched twice", e.V)
		}
		used[e.U] = true
		used[e.V] = true
	}
	return true, ""
}

// IsMaximalMatching reports whether edges form a maximal matching of g:
// a matching such that every edge of g has a matched endpoint.
func IsMaximalMatching(g *graph.Graph, edges []graph.Edge) (bool, string) {
	ok, reason := IsMatching(g, edges)
	if !ok {
		return false, reason
	}
	matched := make([]bool, g.N())
	for _, e := range edges {
		matched[e.U] = true
		matched[e.V] = true
	}
	for u := 0; u < g.N(); u++ {
		if matched[u] {
			continue
		}
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if !matched[v] {
				return false, fmt.Sprintf("edge {%d,%d} could be added", u, v)
			}
		}
	}
	return true, ""
}

// IsIndependentSet reports whether nodes form an independent set of g.
func IsIndependentSet(g *graph.Graph, nodes []graph.NodeID) (bool, string) {
	in := make([]bool, g.N())
	for _, v := range nodes {
		if int(v) < 0 || int(v) >= g.N() {
			return false, fmt.Sprintf("node %d out of range", v)
		}
		if in[v] {
			return false, fmt.Sprintf("node %d listed twice", v)
		}
		in[v] = true
	}
	for _, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if in[u] {
				return false, fmt.Sprintf("adjacent nodes %d and %d both in set", v, u)
			}
		}
	}
	return true, ""
}

// IsMaximalIS reports whether nodes form a maximal independent set of g:
// independent, and every node outside has a neighbour inside.
func IsMaximalIS(g *graph.Graph, nodes []graph.NodeID) (bool, string) {
	ok, reason := IsIndependentSet(g, nodes)
	if !ok {
		return false, reason
	}
	in := make([]bool, g.N())
	for _, v := range nodes {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false, fmt.Sprintf("node %d could be added", v)
		}
	}
	return true, ""
}

// CoveredEdges returns how many edges of g have at least one endpoint in the
// node set (used by progress assertions: removing I ∪ N(I) removes exactly
// the edges counted here for I's closed neighbourhood).
func CoveredEdges(g *graph.Graph, nodes []graph.NodeID) int {
	in := make([]bool, g.N())
	for _, v := range nodes {
		in[v] = true
	}
	count := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v && (in[u] || in[v]) {
				count++
			}
		}
	}
	return count
}
