//go:build amd64

package intmath

import (
	"math/rand"
	"testing"
)

// TestEvalPoly2AVX2MatchesGo byte-compares the vector path against the
// portable loop on every small-regime boundary modulus, across lengths that
// exercise the below-threshold fallback, exact multiples of 4, and ragged
// tails. Skips (rather than silently passing vacuously) when the host has
// no AVX2.
func TestEvalPoly2AVX2MatchesGo(t *testing.T) {
	if !useAVX2 {
		t.Skip("host CPU has no AVX2; vector path untestable here (covered by the portable loop everywhere)")
	}
	rng := rand.New(rand.NewSource(5))
	for _, m := range reducerModuli {
		if m>>32 != 0 {
			continue // wide-regime moduli never reach the vector path
		}
		r := NewReducer(m)
		for _, n := range []int{1, 4, 7, 8, 9, 63, 64, 255, 512, 1021} {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64() % m
			}
			keys[0], keys[n-1] = 0, m-1
			c0 := rng.Uint64() % m
			c1 := rng.Uint64() % m
			got := make([]uint64, n)
			want := make([]uint64, n)
			for i := 0; i < n; i++ {
				got[i] = ^uint64(0)
				want[i] = 0xDEADBEEF
			}
			evalPoly2SmallGo(c0, c1, m, r.rec, keys, want)
			r.evalPoly2Small(c0, c1, keys, got)
			for i := 0; i < n; i++ {
				if got[i] != want[i] {
					t.Fatalf("m=%d n=%d key[%d]=%d: AVX2 path = %d, portable = %d",
						m, n, i, keys[i], got[i], want[i])
				}
			}
		}
	}
}

// FuzzEvalPoly2AVX2MatchesGo drives the vector path with arbitrary
// small-regime moduli and coefficient/key material, byte-comparing against
// the portable loop. The dispatcher's m < 2^32 gate and tail handling are
// inside the fuzzed surface.
func FuzzEvalPoly2AVX2MatchesGo(f *testing.F) {
	f.Add(uint64(97), uint64(3), uint64(5), uint64(11), 37)
	f.Add(uint64(1)<<32, uint64(1), uint64(2), uint64(3), 64)
	f.Add((uint64(1)<<32)-1, uint64(0), (uint64(1)<<32)-2, uint64(12345), 9)
	f.Add(uint64(1), uint64(0), uint64(0), uint64(0), 8)
	f.Fuzz(func(t *testing.T, m, c0, c1, keyBase uint64, n int) {
		if !useAVX2 {
			t.Skip("no AVX2")
		}
		if m == 0 || m > 1<<32 {
			return
		}
		if n < 0 || n > 4096 {
			return
		}
		r := NewReducer(m)
		c0, c1 = c0%m, c1%m
		keys := make([]uint64, n)
		x := keyBase
		for i := range keys {
			x = x*6364136223846793005 + 1442695040888963407
			keys[i] = x % m
		}
		got := make([]uint64, n)
		want := make([]uint64, n)
		evalPoly2SmallGo(c0, c1, m, r.rec, keys, want)
		r.evalPoly2Small(c0, c1, keys, got)
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("m=%d n=%d i=%d key=%d: AVX2 = %d, portable = %d", m, n, i, keys[i], got[i], want[i])
			}
		}
	})
}

func BenchmarkEvalPoly2AVX2(b *testing.B) {
	const m = 1 << 28
	r := NewReducer(m)
	keys := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(6))
	for i := range keys {
		keys[i] = rng.Uint64() % m
	}
	out := make([]uint64, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.EvalPoly2(12345, 67890, keys, out)
	}
	sinkU64 = out[0]
}

func BenchmarkEvalPoly2PortableGo(b *testing.B) {
	const m = 1 << 28
	r := NewReducer(m)
	keys := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = rng.Uint64() % m
	}
	out := make([]uint64, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalPoly2SmallGo(12345, 67890, m, r.rec, keys, out)
	}
	sinkU64 = out[0]
}
