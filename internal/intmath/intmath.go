// Package intmath provides deterministic integer arithmetic used across the
// repository: primality testing, prime search, discrete logarithms and
// saturating powers. All functions are pure and allocation-free so they are
// safe to call from hot loops inside the MPC simulator.
package intmath

import (
	"math/big"
	"math/bits"
)

// MulMod returns (a*b) mod m using 128-bit intermediate arithmetic, so it is
// exact for any uint64 inputs with m > 0.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// AddMod returns (a+b) mod m without overflow for any a, b < m. The
// precondition is the caller's responsibility — no defensive reduction is
// performed, so the function is two compares and an add/sub on the hot path.
func AddMod(a, b, m uint64) uint64 {
	if b != 0 && a >= m-b {
		return a - (m - b)
	}
	return a + b
}

// PowMod returns a^e mod m by binary exponentiation.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, a, m)
		}
		a = MulMod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinBases is a deterministic witness set: testing against these
// seven bases decides primality exactly for all n < 3,317,044,064,679,887,385,961,981
// (Sorenson & Webster), which covers the whole uint64 range.
var millerRabinBases = [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime. It is deterministic for all uint64
// values (Miller-Rabin with a proven witness set).
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	// Write n-1 = d * 2^r with d odd.
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
witness:
	for _, a := range millerRabinBases {
		x := PowMod(a%n, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// NextPrime returns the least prime >= n. It panics if no prime fits in a
// uint64 (n beyond 2^64-59), which cannot happen for the graph sizes this
// repository handles.
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for {
		if IsPrime(n) {
			return n
		}
		if n > n+2 {
			panic("intmath: NextPrime overflow")
		}
		n += 2
	}
}

// CeilLog2 returns ceil(log2(n)) with CeilLog2(0) == 0 and CeilLog2(1) == 0.
func CeilLog2(n uint64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(n - 1)
}

// FloorLog2 returns floor(log2(n)) with FloorLog2(0) == 0.
func FloorLog2(n uint64) int {
	if n == 0 {
		return 0
	}
	return bits.Len64(n) - 1
}

// CeilDiv returns ceil(a/b) for b > 0.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// CeilPow returns the least integer k >= x^y for non-negative real exponent
// expressed as a rational y = num/den, i.e. ceil(x^(num/den)), computed by
// binary search on k^den >= x^num with exact big-integer comparison. It is
// used to evaluate thresholds such as n^{4δ} without floating-point drift.
// For num >= den the result may exceed uint64; CeilPow panics in that case
// rather than silently truncating.
func CeilPow(x uint64, num, den int) uint64 {
	if den <= 0 {
		panic("intmath: CeilPow requires den > 0")
	}
	if num < 0 {
		panic("intmath: CeilPow requires num >= 0")
	}
	if x == 0 {
		return 0
	}
	if x == 1 || num == 0 {
		return 1
	}
	target := new(big.Int).Exp(big.NewInt(0).SetUint64(x), big.NewInt(int64(num)), nil)
	// Upper bound for the answer: x^ceil(num/den), panicking on overflow.
	hiBound, overflow := SatPow(x, (num+den-1)/den)
	if overflow {
		panic("intmath: CeilPow result exceeds uint64")
	}
	lo, hi := uint64(1), hiBound
	tmp := new(big.Int)
	for lo < hi {
		mid := lo + (hi-lo)/2
		tmp.Exp(big.NewInt(0).SetUint64(mid), big.NewInt(int64(den)), nil)
		if tmp.Cmp(target) >= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// SatPow returns x^e and whether the computation overflowed uint64.
func SatPow(x uint64, e int) (uint64, bool) {
	result := uint64(1)
	base := x
	overflow := false
	for e > 0 {
		if e&1 == 1 {
			hi, lo := bits.Mul64(result, base)
			if hi != 0 {
				overflow = true
			}
			result = lo
		}
		e >>= 1
		if e > 0 {
			hi, lo := bits.Mul64(base, base)
			if hi != 0 && e > 0 {
				overflow = true
			}
			base = lo
		}
	}
	return result, overflow
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinU64 returns the smaller of a and b.
func MinU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ISqrt returns floor(sqrt(n)).
func ISqrt(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	x := uint64(1) << ((bits.Len64(n) + 1) / 2)
	for {
		y := (x + n/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}
