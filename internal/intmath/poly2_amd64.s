//go:build amd64

#include "textflag.h"

// func evalPoly2AVX2(c0, c1, m, rec uint64, keys, out *uint64, n int)
//
// Four keys per iteration of the small-path EvalPoly2 loop, one 64-bit lane
// per key. The arithmetic is exactly evalPoly2SmallGo's, so the stores are
// bit-identical to the portable loop:
//
//	p   = c1 * x                      // exact: c1, x < m < 2^32
//	q   = high64(p * rec)             // 64x64 high product from 32-bit parts
//	t   = p - q*m - m                 // wrapping; q < m < 2^32, so q*m exact
//	v   = t + (m & signmask(t))       // fold the Barrett overshoot
//	t   = v + (c0 - m)                // wrapping add of the broadcast c0-m
//	out = t + (m & signmask(t))       // fold the coefficient wrap
//
// The high product decomposes over 32-bit halves (pl = low32(p),
// ph = p>>32, rl = low32(rec), rh = rec>>32):
//
//	t1 = pl*rl  t2 = pl*rh  t3 = ph*rl  t4 = ph*rh
//	carry = ((t1>>32) + low32(t2) + low32(t3)) >> 32
//	q     = t4 + (t2>>32) + (t3>>32) + carry
//
// Every partial sum is < 2^34, so no lane overflows. signmask(t) is the
// all-ones-if-negative mask VPCMPGTQ(0, t) — |t| < 2^33 on both uses, far
// inside signed range.
//
// Constant registers: Y0=m, Y1=rl, Y2=rh, Y3=c1, Y4=c0-m, Y5=0,
// Y6=low-32 lane mask. Preconditions (dispatcher-enforced): m < 2^32,
// n > 0 and n%4 == 0.
TEXT ·evalPoly2AVX2(SB), NOSPLIT, $0-56
	MOVQ         m+16(FP), AX
	VMOVQ        AX, X0
	VPBROADCASTQ X0, Y0         // Y0 = m
	MOVQ         rec+24(FP), BX
	MOVL         BX, DX         // zero-extends: low 32 bits of rec
	VMOVQ        DX, X1
	VPBROADCASTQ X1, Y1         // Y1 = rl
	MOVQ         BX, DX
	SHRQ         $32, DX
	VMOVQ        DX, X2
	VPBROADCASTQ X2, Y2         // Y2 = rh
	MOVQ         c1+8(FP), DX
	VMOVQ        DX, X3
	VPBROADCASTQ X3, Y3         // Y3 = c1
	MOVQ         c0+0(FP), DX
	SUBQ         AX, DX         // c0 - m, wrapping like the Go loop
	VMOVQ        DX, X4
	VPBROADCASTQ X4, Y4         // Y4 = c0 - m
	VPXOR        Y5, Y5, Y5     // Y5 = 0
	VPCMPEQQ     Y6, Y6, Y6
	VPSRLQ       $32, Y6, Y6    // Y6 = 0x00000000FFFFFFFF per lane
	MOVQ         keys+32(FP), SI
	MOVQ         out+40(FP), DI
	MOVQ         n+48(FP), CX

avx2loop:
	VMOVDQU  (SI), Y7           // x (4 keys)
	VPMULUDQ Y3, Y7, Y7         // p = c1*x (both < 2^32: exact)
	VPSRLQ   $32, Y7, Y8        // ph
	VPMULUDQ Y1, Y7, Y9         // t1 = pl*rl
	VPMULUDQ Y2, Y7, Y10        // t2 = pl*rh
	VPMULUDQ Y1, Y8, Y11        // t3 = ph*rl
	VPMULUDQ Y2, Y8, Y8         // t4 = ph*rh
	VPSRLQ   $32, Y9, Y9        // t1>>32
	VPAND    Y6, Y10, Y12       // low32(t2)
	VPADDQ   Y12, Y9, Y9
	VPAND    Y6, Y11, Y12       // low32(t3)
	VPADDQ   Y12, Y9, Y9
	VPSRLQ   $32, Y9, Y9        // carry
	VPSRLQ   $32, Y10, Y10      // t2>>32
	VPSRLQ   $32, Y11, Y11      // t3>>32
	VPADDQ   Y10, Y8, Y8
	VPADDQ   Y11, Y8, Y8
	VPADDQ   Y9, Y8, Y8         // q = high64(p*rec)
	VPMULUDQ Y0, Y8, Y8         // q*m (both < 2^32: exact)
	VPSUBQ   Y8, Y7, Y7         // p - q*m
	VPSUBQ   Y0, Y7, Y7         // t = p - q*m - m
	VPCMPGTQ Y7, Y5, Y8         // signmask(t): 0 > t, signed
	VPAND    Y0, Y8, Y8
	VPADDQ   Y8, Y7, Y7         // v
	VPADDQ   Y4, Y7, Y7         // t = v + (c0 - m)
	VPCMPGTQ Y7, Y5, Y8
	VPAND    Y0, Y8, Y8
	VPADDQ   Y8, Y7, Y7
	VMOVDQU  Y7, (DI)
	ADDQ     $32, SI
	ADDQ     $32, DI
	SUBQ     $4, CX
	JNE      avx2loop
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL  leaf+0(FP), AX
	MOVL  sub+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL    CX, CX
	XGETBV
	MOVL    AX, eax+0(FP)
	MOVL    DX, edx+4(FP)
	RET
