package intmath

import (
	"math/rand"
	"testing"
)

// TestEvalPoly2x4MatchesEvalPoly2 pins the four-seed blocked kernel to four
// independent EvalPoly2 sweeps on every boundary modulus, with dirty output
// buffers and ragged lengths that leave a non-multiple-of-4 tail for the
// vector path.
func TestEvalPoly2x4MatchesEvalPoly2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range reducerModuli {
		r := NewReducer(m)
		for _, n := range []int{0, 1, 3, 4, 7, 64, 257} {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64() % m
			}
			if n > 1 {
				keys[0], keys[n-1] = 0, m-1
			}
			var c0, c1 [4]uint64
			for s := 0; s < 4; s++ {
				c0[s] = rng.Uint64() % m
				c1[s] = rng.Uint64() % m
			}
			got := make([][]uint64, 4)
			want := make([][]uint64, 4)
			for s := 0; s < 4; s++ {
				got[s] = make([]uint64, n)
				want[s] = make([]uint64, n)
				for i := 0; i < n; i++ {
					got[s][i] = ^uint64(0) // dirty: every slot must be rewritten
				}
				r.EvalPoly2(c0[s], c1[s], keys, want[s])
			}
			r.EvalPoly2x4(&c0, &c1, keys, got[0], got[1], got[2], got[3])
			for s := 0; s < 4; s++ {
				for i := 0; i < n; i++ {
					if got[s][i] != want[s][i] {
						t.Fatalf("m=%d n=%d seed %d key %d: EvalPoly2x4 = %d, EvalPoly2 = %d",
							m, n, s, i, got[s][i], want[s][i])
					}
				}
			}
		}
	}
}
