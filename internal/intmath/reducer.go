package intmath

import "math/bits"

// Reducer performs modular arithmetic for one fixed modulus m using a
// precomputed reciprocal, replacing the per-call 128-by-64-bit division of
// MulMod with a handful of multiplications (Barrett-style reduction; the
// wide path is the 2-by-1 division of Möller & Granlund, "Improved division
// by invariant integers", and the narrow path is the classic single-word
// Barrett step popularised by Lemire's fastmod line of work).
//
// Two regimes, chosen at construction:
//
//   - m <= 2^32: products of reduced operands fit in a uint64, so MulMod is
//     one 64-bit multiply plus one Barrett step with rec = floor(2^64/m).
//     This is the common case — the hash fields of this repository are
//     ~SlotMax·n², below 2^32 for every laptop-scale n.
//   - m > 2^32: the 128-bit product is reduced with the normalized-divisor
//     reciprocal rec = floor((2^128-1)/d) - 2^64, d = m << shift.
//
// The batched EvalPoly2 loops additionally use a third, Montgomery-form
// regime for odd m in (2^32, 2^63) — every hash-field prime past the small
// boundary, since NextPrime output is odd. Transforming the multiplicative
// coefficient once per call (c̃1 = c1·2^64 mod m) turns each key into a
// single branchless REDC (three multiplies), replacing the wide path's
// longer, branchy Möller–Granlund chain; the per-call transform amortizes
// to nothing over a key block. MulMod/Mod stay on the wide path, where a
// one-shot call could not amortize the transform.
//
// Results are exactly (a·b) mod m and (a+b) mod m in every regime — the
// Reducer is a speed change only, which is what lets the seed-search kernel
// built on it keep the repository's bit-identical determinism contract.
//
// The zero value is not usable; construct with NewReducer. A Reducer is
// immutable and safe for concurrent use.
type Reducer struct {
	m      uint64 // modulus
	rec    uint64 // reciprocal (see regimes above)
	d      uint64 // wide path: m << shift, top bit set
	shift  uint   // wide path: leading zeros of m
	small  bool   // m <= 2^32
	medium bool   // odd m in (2^32, 2^63): Montgomery EvalPoly2 path
	minv   uint64 // medium: -m^{-1} mod 2^64
	r2     uint64 // medium: 2^128 mod m
}

// NewReducer returns a Reducer for modulus m > 0.
func NewReducer(m uint64) Reducer {
	if m == 0 {
		panic("intmath: NewReducer with m = 0")
	}
	r := Reducer{m: m}
	if m <= 1<<32 {
		r.small = true
		if m == 1 {
			// floor(2^64/1) overflows; 2^64-1 makes the Barrett step land
			// on a remainder in {0, 1} that the correction folds to 0.
			r.rec = ^uint64(0)
		} else {
			r.rec, _ = bits.Div64(1, 0, m)
		}
		return r
	}
	r.shift = uint(bits.LeadingZeros64(m))
	r.d = m << r.shift
	// rec = floor((2^128-1)/d) - 2^64: the top bit of d is set, so the
	// dividend high word 2^64-1-d is < d and Div64 cannot trap.
	r.rec, _ = bits.Div64(^r.d, ^uint64(0), r.d)
	if m&1 == 1 && m>>63 == 0 {
		r.medium = true
		// Newton–Hensel iteration for m^{-1} mod 2^64: inv = m is correct
		// to 3 bits (m·m ≡ 1 mod 8 for odd m), each step doubles the
		// correct-bit count, so five iterations reach 96 > 64 bits.
		inv := m
		for i := 0; i < 5; i++ {
			inv *= 2 - m*inv
		}
		r.minv = -inv
		// 2^128 mod m, via the already-initialized wide path: the
		// Montgomery transform constant (REDC(a·r2) = a·2^64 mod m).
		r64 := r.reduceWide(1, 0) // 2^64 mod m; hi = 1 < m on this path
		hi, lo := bits.Mul64(r64, r64)
		r.r2 = r.reduceWide(hi, lo)
	}
	return r
}

// montMul returns (a·b·2^-64) mod m for a, b < m on the medium path: one
// branchless Montgomery REDC. With b in Montgomery form (b = v·2^64 mod m)
// the result is exactly (a·v) mod m.
func (r Reducer) montMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	mm := lo * r.minv
	h2, l2 := bits.Mul64(mm, r.m)
	// lo + l2 ≡ 0 mod 2^64 by construction of mm; only its carry survives.
	_, carry := bits.Add64(lo, l2, 0)
	t := hi + h2 + carry // < 2m, and 2m < 2^64 on the medium path
	if t >= r.m {
		t -= r.m
	}
	return t
}

// M returns the modulus.
func (r Reducer) M() uint64 { return r.m }

// reduce64 returns n mod m for any n, on the small path (m <= 2^32):
// one high-multiply estimates the quotient within 1, one conditional
// subtraction corrects it.
func (r Reducer) reduce64(n uint64) uint64 {
	q, _ := bits.Mul64(n, r.rec)
	rem := n - q*r.m
	if rem >= r.m {
		rem -= r.m
	}
	return rem
}

// reduceWide returns (hi·2^64 + lo) mod m on the wide path, requiring
// hi < m. This is the remainder half of Möller–Granlund 2-by-1 division
// with the precomputed reciprocal of the normalized divisor.
func (r Reducer) reduceWide(hi, lo uint64) uint64 {
	u1, u0 := hi, lo
	if r.shift > 0 {
		u1 = hi<<r.shift | lo>>(64-r.shift)
		u0 = lo << r.shift
	}
	qh, ql := bits.Mul64(r.rec, u1)
	var carry uint64
	ql, carry = bits.Add64(ql, u0, 0)
	qh, _ = bits.Add64(qh, u1, carry)
	qh++
	rem := u0 - qh*r.d
	if rem > ql {
		rem += r.d
	}
	if rem >= r.d {
		rem -= r.d
	}
	return rem >> r.shift
}

// Mod returns n mod m for any n.
func (r Reducer) Mod(n uint64) uint64 {
	if r.small {
		return r.reduce64(n)
	}
	if n < r.m {
		return n
	}
	return r.reduceWide(0, n)
}

// MulMod returns (a·b) mod m. Both operands must already be < m (use Mod
// first otherwise); the precondition is what lets the small path skip the
// 128-bit product entirely.
func (r Reducer) MulMod(a, b uint64) uint64 {
	if r.small {
		return r.reduce64(a * b)
	}
	hi, lo := bits.Mul64(a, b)
	return r.reduceWide(hi, lo)
}

// AddMod returns (a+b) mod m for a, b < m, with no reduction at all — two
// compares and an add or subtract, exactly like the free AddMod.
func (r Reducer) AddMod(a, b uint64) uint64 {
	if b != 0 && a >= r.m-b {
		return a - (r.m - b)
	}
	return a + b
}

// EvalPoly2 writes out[i] = (c1·keys[i] + c0) mod m for every key: the
// unrolled-Horner batch loop of the pairwise (k = 2) hash families behind
// the matching/MIS selection steps. c0, c1 and all keys must be < m. The
// loop bodies spell the reduction out inline (rather than calling MulMod)
// because the per-key arithmetic is below Go's call overhead — math/bits
// intrinsics compile to single instructions either way, but method calls
// would not inline.
func (r Reducer) EvalPoly2(c0, c1 uint64, keys, out []uint64) {
	if r.small {
		r.evalPoly2Small(c0, c1, keys, out)
		return
	}
	if r.medium {
		evalPoly2MediumGo(c0, r.montMul(c1, r.r2), r.m, r.minv, keys, out)
		return
	}
	m, rec := r.m, r.rec
	d, shift := r.d, r.shift
	for i, x := range keys {
		hi, lo := bits.Mul64(c1, x)
		u1, u0 := hi, lo
		if shift > 0 {
			u1 = hi<<shift | lo>>(64-shift)
			u0 = lo << shift
		}
		qh, ql := bits.Mul64(rec, u1)
		var carry uint64
		ql, carry = bits.Add64(ql, u0, 0)
		qh, _ = bits.Add64(qh, u1, carry)
		qh++
		rem := u0 - qh*d
		if rem > ql {
			rem += d
		}
		if rem >= d {
			rem -= d
		}
		v := rem >> shift
		if c0 != 0 && v >= m-c0 {
			v -= m - c0
		} else {
			v += c0
		}
		out[i] = v
	}
}

// evalPoly2MediumGo is the medium-path (odd m in (2^32, 2^63)) loop behind
// EvalPoly2: c1t is the coefficient in Montgomery form (c1·2^64 mod m,
// computed once per call by montMul against r2), so each key costs one
// branchless REDC — Mul64(c1t, x) gives T = c1·x·2^64 mod-free, mm·m folds
// the low word to zero, and (T + mm·m)/2^64 lands in [0, 2m). Both
// corrections reuse the small path's sign-mask trick, valid because
// m < 2^63 here. The value written is exactly (c1·x + c0) mod m — the same
// bits the wide path produces — just without its data-dependent branches
// and long carry chain.
func evalPoly2MediumGo(c0, c1t, m, minv uint64, keys, out []uint64) {
	for i, x := range keys {
		hi, lo := bits.Mul64(c1t, x)
		mm := lo * minv
		h2, l2 := bits.Mul64(mm, m)
		_, carry := bits.Add64(lo, l2, 0)
		t := hi + h2 + carry - m
		v := t + (m & uint64(int64(t)>>63))
		t = v + c0 - m
		out[i] = t + (m & uint64(int64(t)>>63))
	}
}

// evalPoly2SmallGo is the portable small-path (m <= 2^32) loop behind
// EvalPoly2: the scalar reference the assembly path must match bit for bit,
// and the tail/fallback it defers to. Both corrections are branchless:
// whether the Barrett remainder needs its final subtraction and whether the
// coefficient add wraps both depend on the (effectively random) hash value,
// so a conditional branch here mispredicts about half the time per key.
// t = v - m is "negative" iff v < m, and m < 2^63 on this path, so the sign
// bit of t drives a mask that adds m back exactly when the subtraction
// overshot — the same value the branchy form computes.
func evalPoly2SmallGo(c0, c1, m, rec uint64, keys, out []uint64) {
	for i, x := range keys {
		p := c1 * x
		q, _ := bits.Mul64(p, rec)
		t := p - q*m - m
		v := t + (m & uint64(int64(t)>>63))
		t = v + c0 - m
		out[i] = t + (m & uint64(int64(t)>>63))
	}
}

// EvalPoly2x4 evaluates four degree-1 polynomials over one shared key block:
// outS[i] = (c1[S]·keys[i] + c0[S]) mod m for S in 0..3. It is the S-seed
// member of the blocked kernel family (hashfam.Evaluator.EvalSeedsBlocked
// feeds it groups of four candidate seeds per cache-resident key block): the
// four Barrett chains are independent, so on the portable path the inner
// loop keeps four multiplies in flight per key instead of serialising on
// one, and on AVX2 hardware each chain runs the four-key vector loop while
// the block stays cache-hot. Coefficients and keys must be < m; each out
// slice must have at least len(keys) entries. Results are bit-identical to
// four EvalPoly2 calls.
func (r Reducer) EvalPoly2x4(c0, c1 *[4]uint64, keys []uint64, out0, out1, out2, out3 []uint64) {
	if !r.small {
		if r.medium {
			// Montgomery-transform the four coefficients once, then run
			// four independent REDC chains per key: the multiplies of the
			// four seeds interleave instead of serialising on one
			// reduction's latency, exactly like the small path below.
			m, minv := r.m, r.minv
			t10 := r.montMul(c1[0], r.r2)
			t11 := r.montMul(c1[1], r.r2)
			t12 := r.montMul(c1[2], r.r2)
			t13 := r.montMul(c1[3], r.r2)
			c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
			for i, x := range keys {
				hi0, lo0 := bits.Mul64(t10, x)
				hi1, lo1 := bits.Mul64(t11, x)
				hi2, lo2 := bits.Mul64(t12, x)
				hi3, lo3 := bits.Mul64(t13, x)
				h20, l20 := bits.Mul64(lo0*minv, m)
				h21, l21 := bits.Mul64(lo1*minv, m)
				h22, l22 := bits.Mul64(lo2*minv, m)
				h23, l23 := bits.Mul64(lo3*minv, m)
				_, cy0 := bits.Add64(lo0, l20, 0)
				_, cy1 := bits.Add64(lo1, l21, 0)
				_, cy2 := bits.Add64(lo2, l22, 0)
				_, cy3 := bits.Add64(lo3, l23, 0)
				t0 := hi0 + h20 + cy0 - m
				t1 := hi1 + h21 + cy1 - m
				t2 := hi2 + h22 + cy2 - m
				t3 := hi3 + h23 + cy3 - m
				v0 := t0 + (m & uint64(int64(t0)>>63))
				v1 := t1 + (m & uint64(int64(t1)>>63))
				v2 := t2 + (m & uint64(int64(t2)>>63))
				v3 := t3 + (m & uint64(int64(t3)>>63))
				t0 = v0 + c00 - m
				t1 = v1 + c01 - m
				t2 = v2 + c02 - m
				t3 = v3 + c03 - m
				out0[i] = t0 + (m & uint64(int64(t0)>>63))
				out1[i] = t1 + (m & uint64(int64(t1)>>63))
				out2[i] = t2 + (m & uint64(int64(t2)>>63))
				out3[i] = t3 + (m & uint64(int64(t3)>>63))
			}
			return
		}
		r.EvalPoly2(c0[0], c1[0], keys, out0)
		r.EvalPoly2(c0[1], c1[1], keys, out1)
		r.EvalPoly2(c0[2], c1[2], keys, out2)
		r.EvalPoly2(c0[3], c1[3], keys, out3)
		return
	}
	if evalPoly2Accelerated(r.m) {
		r.evalPoly2Small(c0[0], c1[0], keys, out0)
		r.evalPoly2Small(c0[1], c1[1], keys, out1)
		r.evalPoly2Small(c0[2], c1[2], keys, out2)
		r.evalPoly2Small(c0[3], c1[3], keys, out3)
		return
	}
	m, rec := r.m, r.rec
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	for i, x := range keys {
		p0 := c10 * x
		p1 := c11 * x
		p2 := c12 * x
		p3 := c13 * x
		q0, _ := bits.Mul64(p0, rec)
		q1, _ := bits.Mul64(p1, rec)
		q2, _ := bits.Mul64(p2, rec)
		q3, _ := bits.Mul64(p3, rec)
		t0 := p0 - q0*m - m
		t1 := p1 - q1*m - m
		t2 := p2 - q2*m - m
		t3 := p3 - q3*m - m
		v0 := t0 + (m & uint64(int64(t0)>>63))
		v1 := t1 + (m & uint64(int64(t1)>>63))
		v2 := t2 + (m & uint64(int64(t2)>>63))
		v3 := t3 + (m & uint64(int64(t3)>>63))
		t0 = v0 + c00 - m
		t1 = v1 + c01 - m
		t2 = v2 + c02 - m
		t3 = v3 + c03 - m
		out0[i] = t0 + (m & uint64(int64(t0)>>63))
		out1[i] = t1 + (m & uint64(int64(t1)>>63))
		out2[i] = t2 + (m & uint64(int64(t2)>>63))
		out3[i] = t3 + (m & uint64(int64(t3)>>63))
	}
}

// EvalPoly writes out[i] = (c[k-1]·keys[i]^{k-1} + … + c[0]) mod m by
// Horner's rule for arbitrary degree: the batch loop of the KWise
// subsampling families. All coefficients and keys must be < m. k = 2
// callers should use EvalPoly2 (register-held coefficients); k < 2 is the
// caller's trivial case.
func (r Reducer) EvalPoly(c []uint64, keys, out []uint64) {
	k := len(c)
	m, rec := r.m, r.rec
	if r.small {
		// Branchless corrections, as in EvalPoly2.
		for i, x := range keys {
			acc := c[k-1]
			for j := k - 2; j >= 0; j-- {
				p := acc * x
				q, _ := bits.Mul64(p, rec)
				t := p - q*m - m
				acc = t + (m & uint64(int64(t)>>63))
				t = acc + c[j] - m
				acc = t + (m & uint64(int64(t)>>63))
			}
			out[i] = acc
		}
		return
	}
	d, shift := r.d, r.shift
	for i, x := range keys {
		acc := c[k-1]
		for j := k - 2; j >= 0; j-- {
			hi, lo := bits.Mul64(acc, x)
			u1, u0 := hi, lo
			if shift > 0 {
				u1 = hi<<shift | lo>>(64-shift)
				u0 = lo << shift
			}
			qh, ql := bits.Mul64(rec, u1)
			var carry uint64
			ql, carry = bits.Add64(ql, u0, 0)
			qh, _ = bits.Add64(qh, u1, carry)
			qh++
			rem := u0 - qh*d
			if rem > ql {
				rem += d
			}
			if rem >= d {
				rem -= d
			}
			acc = rem >> shift
			if cj := c[j]; cj != 0 && acc >= m-cj {
				acc -= m - cj
			} else {
				acc += cj
			}
		}
		out[i] = acc
	}
}
