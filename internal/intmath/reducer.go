package intmath

import "math/bits"

// Reducer performs modular arithmetic for one fixed modulus m using a
// precomputed reciprocal, replacing the per-call 128-by-64-bit division of
// MulMod with a handful of multiplications (Barrett-style reduction; the
// wide path is the 2-by-1 division of Möller & Granlund, "Improved division
// by invariant integers", and the narrow path is the classic single-word
// Barrett step popularised by Lemire's fastmod line of work).
//
// Two regimes, chosen at construction:
//
//   - m <= 2^32: products of reduced operands fit in a uint64, so MulMod is
//     one 64-bit multiply plus one Barrett step with rec = floor(2^64/m).
//     This is the common case — the hash fields of this repository are
//     ~SlotMax·n², below 2^32 for every laptop-scale n.
//   - m > 2^32: the 128-bit product is reduced with the normalized-divisor
//     reciprocal rec = floor((2^128-1)/d) - 2^64, d = m << shift.
//
// Results are exactly (a·b) mod m and (a+b) mod m — the Reducer is a speed
// change only, which is what lets the seed-search kernel built on it keep
// the repository's bit-identical determinism contract.
//
// The zero value is not usable; construct with NewReducer. A Reducer is
// immutable and safe for concurrent use.
type Reducer struct {
	m     uint64 // modulus
	rec   uint64 // reciprocal (see regimes above)
	d     uint64 // wide path: m << shift, top bit set
	shift uint   // wide path: leading zeros of m
	small bool   // m <= 2^32
}

// NewReducer returns a Reducer for modulus m > 0.
func NewReducer(m uint64) Reducer {
	if m == 0 {
		panic("intmath: NewReducer with m = 0")
	}
	r := Reducer{m: m}
	if m <= 1<<32 {
		r.small = true
		if m == 1 {
			// floor(2^64/1) overflows; 2^64-1 makes the Barrett step land
			// on a remainder in {0, 1} that the correction folds to 0.
			r.rec = ^uint64(0)
		} else {
			r.rec, _ = bits.Div64(1, 0, m)
		}
		return r
	}
	r.shift = uint(bits.LeadingZeros64(m))
	r.d = m << r.shift
	// rec = floor((2^128-1)/d) - 2^64: the top bit of d is set, so the
	// dividend high word 2^64-1-d is < d and Div64 cannot trap.
	r.rec, _ = bits.Div64(^r.d, ^uint64(0), r.d)
	return r
}

// M returns the modulus.
func (r Reducer) M() uint64 { return r.m }

// reduce64 returns n mod m for any n, on the small path (m <= 2^32):
// one high-multiply estimates the quotient within 1, one conditional
// subtraction corrects it.
func (r Reducer) reduce64(n uint64) uint64 {
	q, _ := bits.Mul64(n, r.rec)
	rem := n - q*r.m
	if rem >= r.m {
		rem -= r.m
	}
	return rem
}

// reduceWide returns (hi·2^64 + lo) mod m on the wide path, requiring
// hi < m. This is the remainder half of Möller–Granlund 2-by-1 division
// with the precomputed reciprocal of the normalized divisor.
func (r Reducer) reduceWide(hi, lo uint64) uint64 {
	u1, u0 := hi, lo
	if r.shift > 0 {
		u1 = hi<<r.shift | lo>>(64-r.shift)
		u0 = lo << r.shift
	}
	qh, ql := bits.Mul64(r.rec, u1)
	var carry uint64
	ql, carry = bits.Add64(ql, u0, 0)
	qh, _ = bits.Add64(qh, u1, carry)
	qh++
	rem := u0 - qh*r.d
	if rem > ql {
		rem += r.d
	}
	if rem >= r.d {
		rem -= r.d
	}
	return rem >> r.shift
}

// Mod returns n mod m for any n.
func (r Reducer) Mod(n uint64) uint64 {
	if r.small {
		return r.reduce64(n)
	}
	if n < r.m {
		return n
	}
	return r.reduceWide(0, n)
}

// MulMod returns (a·b) mod m. Both operands must already be < m (use Mod
// first otherwise); the precondition is what lets the small path skip the
// 128-bit product entirely.
func (r Reducer) MulMod(a, b uint64) uint64 {
	if r.small {
		return r.reduce64(a * b)
	}
	hi, lo := bits.Mul64(a, b)
	return r.reduceWide(hi, lo)
}

// AddMod returns (a+b) mod m for a, b < m, with no reduction at all — two
// compares and an add or subtract, exactly like the free AddMod.
func (r Reducer) AddMod(a, b uint64) uint64 {
	if b != 0 && a >= r.m-b {
		return a - (r.m - b)
	}
	return a + b
}

// EvalPoly2 writes out[i] = (c1·keys[i] + c0) mod m for every key: the
// unrolled-Horner batch loop of the pairwise (k = 2) hash families behind
// the matching/MIS selection steps. c0, c1 and all keys must be < m. The
// loop bodies spell the reduction out inline (rather than calling MulMod)
// because the per-key arithmetic is below Go's call overhead — math/bits
// intrinsics compile to single instructions either way, but method calls
// would not inline.
func (r Reducer) EvalPoly2(c0, c1 uint64, keys, out []uint64) {
	m, rec := r.m, r.rec
	if r.small {
		// Both corrections are branchless: whether the Barrett remainder
		// needs its final subtraction and whether the coefficient add wraps
		// both depend on the (effectively random) hash value, so a
		// conditional branch here mispredicts about half the time per key.
		// t = v - m is "negative" iff v < m, and m < 2^63 on this path, so
		// the sign bit of t drives a mask that adds m back exactly when the
		// subtraction overshot — the same value the branchy form computes.
		for i, x := range keys {
			p := c1 * x
			q, _ := bits.Mul64(p, rec)
			t := p - q*m - m
			v := t + (m & uint64(int64(t)>>63))
			t = v + c0 - m
			out[i] = t + (m & uint64(int64(t)>>63))
		}
		return
	}
	d, shift := r.d, r.shift
	for i, x := range keys {
		hi, lo := bits.Mul64(c1, x)
		u1, u0 := hi, lo
		if shift > 0 {
			u1 = hi<<shift | lo>>(64-shift)
			u0 = lo << shift
		}
		qh, ql := bits.Mul64(rec, u1)
		var carry uint64
		ql, carry = bits.Add64(ql, u0, 0)
		qh, _ = bits.Add64(qh, u1, carry)
		qh++
		rem := u0 - qh*d
		if rem > ql {
			rem += d
		}
		if rem >= d {
			rem -= d
		}
		v := rem >> shift
		if c0 != 0 && v >= m-c0 {
			v -= m - c0
		} else {
			v += c0
		}
		out[i] = v
	}
}

// EvalPoly writes out[i] = (c[k-1]·keys[i]^{k-1} + … + c[0]) mod m by
// Horner's rule for arbitrary degree: the batch loop of the KWise
// subsampling families. All coefficients and keys must be < m. k = 2
// callers should use EvalPoly2 (register-held coefficients); k < 2 is the
// caller's trivial case.
func (r Reducer) EvalPoly(c []uint64, keys, out []uint64) {
	k := len(c)
	m, rec := r.m, r.rec
	if r.small {
		// Branchless corrections, as in EvalPoly2.
		for i, x := range keys {
			acc := c[k-1]
			for j := k - 2; j >= 0; j-- {
				p := acc * x
				q, _ := bits.Mul64(p, rec)
				t := p - q*m - m
				acc = t + (m & uint64(int64(t)>>63))
				t = acc + c[j] - m
				acc = t + (m & uint64(int64(t)>>63))
			}
			out[i] = acc
		}
		return
	}
	d, shift := r.d, r.shift
	for i, x := range keys {
		acc := c[k-1]
		for j := k - 2; j >= 0; j-- {
			hi, lo := bits.Mul64(acc, x)
			u1, u0 := hi, lo
			if shift > 0 {
				u1 = hi<<shift | lo>>(64-shift)
				u0 = lo << shift
			}
			qh, ql := bits.Mul64(rec, u1)
			var carry uint64
			ql, carry = bits.Add64(ql, u0, 0)
			qh, _ = bits.Add64(qh, u1, carry)
			qh++
			rem := u0 - qh*d
			if rem > ql {
				rem += d
			}
			if rem >= d {
				rem -= d
			}
			acc = rem >> shift
			if cj := c[j]; cj != 0 && acc >= m-cj {
				acc -= m - cj
			} else {
				acc += cj
			}
		}
		out[i] = acc
	}
}
