//go:build amd64

package intmath

// useAVX2 gates the vector path of the small-modulus degree-1 kernel. It is
// a variable, not a constant, so the equivalence tests can force the
// portable loop on AVX2 hardware and byte-compare the two; nothing outside
// the tests writes it after init.
var useAVX2 = cpuHasAVX2()

// evalPoly2AsmMin is the key count below which the vector path is not worth
// the call + VZEROUPPER overhead. Small enough that every real block (the
// blocked kernel feeds 512-key blocks, the objectives feed full key vectors)
// takes the vector loop.
const evalPoly2AsmMin = 8

// evalPoly2AVX2 is the four-keys-per-iteration AVX2 body of the small-path
// EvalPoly2 loop, implemented in poly2_amd64.s. Preconditions, enforced by
// the dispatcher: m < 2^32 strictly (the q·m step is a 32x32 VPMULUDQ, and
// the quotient bound q < m needs headroom below 2^32), rec = floor(2^64/m)
// as built by NewReducer, c0, c1 and all keys < m, and n a positive
// multiple of 4 with n <= len(keys), len(out). It computes exactly the
// branchless arithmetic of evalPoly2SmallGo, lane by lane, so the results
// are bit-identical to the portable loop.
//
//go:noescape
func evalPoly2AVX2(c0, c1, m, rec uint64, keys, out *uint64, n int)

// cpuid executes CPUID for (leaf, sub); implemented in poly2_amd64.s. The
// module is dependency-free, so feature detection is hand-rolled rather
// than imported.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0; implemented in poly2_amd64.s. Only valid when CPUID
// reports OSXSAVE.
func xgetbv0() (eax, edx uint32)

// cpuHasAVX2 reports whether the CPU supports AVX2 and the OS saves YMM
// state across context switches (OSXSAVE set and XCR0 enabling both XMM and
// YMM): the full gate Intel documents for using VEX.256 instructions.
func cpuHasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM (bit 1) and YMM (bit 2) state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// evalPoly2Accelerated reports whether the vector path applies to modulus m
// on this machine (the blocked multi-seed kernel uses it to pick between
// per-seed vector sweeps and the four-chain portable loop).
func evalPoly2Accelerated(m uint64) bool {
	return useAVX2 && m>>32 == 0
}

// evalPoly2Small dispatches the small-path EvalPoly2 loop: the AVX2 body
// over the aligned prefix when the modulus and hardware qualify, the
// portable loop for the ragged tail and everything else.
func (r Reducer) evalPoly2Small(c0, c1 uint64, keys, out []uint64) {
	m, rec := r.m, r.rec
	if evalPoly2Accelerated(m) && len(keys) >= evalPoly2AsmMin {
		n := len(keys) &^ 3
		evalPoly2AVX2(c0, c1, m, rec, &keys[0], &out[0], n)
		keys, out = keys[n:], out[n:]
	}
	evalPoly2SmallGo(c0, c1, m, rec, keys, out)
}
