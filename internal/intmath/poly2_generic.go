//go:build !amd64

package intmath

// evalPoly2Accelerated reports whether a vector path applies to modulus m.
// Only amd64 has one; every other GOARCH builds the portable loops alone.
func evalPoly2Accelerated(uint64) bool { return false }

// evalPoly2Small is the small-path EvalPoly2 loop on architectures without
// a vector kernel: the portable branchless loop, nothing else.
func (r Reducer) evalPoly2Small(c0, c1 uint64, keys, out []uint64) {
	evalPoly2SmallGo(c0, c1, r.m, r.rec, keys, out)
}
