package intmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMulModSmall(t *testing.T) {
	cases := []struct{ a, b, m, want uint64 }{
		{0, 0, 1, 0},
		{3, 4, 5, 2},
		{7, 7, 7, 0},
		{10, 10, 3, 1},
		{1 << 32, 1 << 32, 97, (1 << 32 % 97) * (1 << 32 % 97) % 97},
	}
	for _, c := range cases {
		if got := MulMod(c.a, c.b, c.m); got != c.want {
			t.Errorf("MulMod(%d,%d,%d) = %d, want %d", c.a, c.b, c.m, got, c.want)
		}
	}
}

func TestMulModMatchesBigForSmallInputs(t *testing.T) {
	f := func(a, b uint32, m uint32) bool {
		if m == 0 {
			return true
		}
		want := (uint64(a) % uint64(m)) * (uint64(b) % uint64(m)) % uint64(m)
		return MulMod(uint64(a), uint64(b), uint64(m)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulModLargeOperands(t *testing.T) {
	// (2^63)*(2^63) mod (2^64-59): verify against PowMod which uses MulMod
	// only through already-tested paths, and against a slow double-and-add.
	const m = 18446744073709551557 // largest prime < 2^64
	a := uint64(1) << 63
	slow := func(a, b uint64) uint64 {
		var acc uint64
		for b > 0 {
			if b&1 == 1 {
				acc = AddMod(acc, a, m)
			}
			a = AddMod(a, a, m)
			b >>= 1
		}
		return acc
	}
	if got, want := MulMod(a, a, m), slow(a, a); got != want {
		t.Errorf("MulMod big = %d, want %d", got, want)
	}
}

func TestAddMod(t *testing.T) {
	const m = 1000000007
	f := func(a, b uint64) bool {
		// AddMod's contract requires reduced operands (it performs no
		// defensive reduction of its own).
		a, b = a%m, b%m
		return AddMod(a, b, m) == (a+b)%m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Overflow-prone case: a+b would wrap uint64.
	big := uint64(18446744073709551557)
	if got := AddMod(big-1, big-2, big); got != big-3 {
		t.Errorf("AddMod wrap = %d, want %d", got, big-3)
	}
}

func TestPowMod(t *testing.T) {
	if got := PowMod(2, 10, 1000); got != 24 {
		t.Errorf("2^10 mod 1000 = %d, want 24", got)
	}
	if got := PowMod(5, 0, 7); got != 1 {
		t.Errorf("5^0 mod 7 = %d, want 1", got)
	}
	if got := PowMod(5, 3, 1); got != 0 {
		t.Errorf("x mod 1 must be 0, got %d", got)
	}
	// Fermat: a^(p-1) = 1 mod p for prime p, a not divisible by p.
	const p = 1000003
	for _, a := range []uint64{2, 3, 999999, 12345} {
		if got := PowMod(a, p-1, p); got != 1 {
			t.Errorf("Fermat failed for a=%d: got %d", a, got)
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{}
	sieve := make([]bool, 10000)
	for i := 2; i < len(sieve); i++ {
		if !sieve[i] {
			primes[uint64(i)] = true
			for j := i * i; j < len(sieve); j += i {
				sieve[j] = true
			}
		}
	}
	for n := uint64(0); n < 10000; n++ {
		if got := IsPrime(n); got != primes[n] {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, primes[n])
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	knownPrime := []uint64{
		1000003, 32416190071, 2147483647, // 2^31-1 Mersenne
		18446744073709551557, // largest 64-bit prime
	}
	knownComposite := []uint64{
		32416190071 * 3, 2147483647 * 2, 1000003 * 1000003,
		3215031751, // strong pseudoprime to bases 2,3,5,7
	}
	for _, p := range knownPrime {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range knownComposite {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {1000000, 1000003},
		{1 << 30, 1073741827},
	}
	for _, c := range cases {
		if got := NextPrime(c.n); got != c.want {
			t.Errorf("NextPrime(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNextPrimeIsPrimeAndMinimal(t *testing.T) {
	f := func(n uint32) bool {
		p := NextPrime(uint64(n))
		if !IsPrime(p) || p < uint64(n) {
			return false
		}
		for q := uint64(n); q < p; q++ {
			if IsPrime(q) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}}
	for _, c := range cases {
		if got := FloorLog2(c.n); got != c.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCeilPowMatchesFloat(t *testing.T) {
	// CeilPow(x, num, den) should equal ceil(x^(num/den)) up to float
	// rounding; verify on a grid where float64 is exact enough.
	for _, x := range []uint64{2, 10, 100, 1000, 65536} {
		for _, frac := range [][2]int{{1, 2}, {1, 4}, {3, 4}, {1, 8}, {5, 8}, {1, 1}} {
			got := CeilPow(x, frac[0], frac[1])
			f := math.Pow(float64(x), float64(frac[0])/float64(frac[1]))
			want := uint64(math.Ceil(f - 1e-9))
			if got != want {
				t.Errorf("CeilPow(%d,%d/%d) = %d, want %d (float %f)", x, frac[0], frac[1], got, want, f)
			}
		}
	}
}

func TestCeilPowEdge(t *testing.T) {
	if got := CeilPow(0, 1, 2); got != 0 {
		t.Errorf("CeilPow(0) = %d, want 0", got)
	}
	if got := CeilPow(1, 3, 4); got != 1 {
		t.Errorf("CeilPow(1) = %d, want 1", got)
	}
	if got := CeilPow(7, 0, 3); got != 1 {
		t.Errorf("CeilPow(x,0,den) = %d, want 1", got)
	}
}

func TestSatPow(t *testing.T) {
	if v, ov := SatPow(2, 63); ov || v != 1<<63 {
		t.Errorf("SatPow(2,63) = %d,%v", v, ov)
	}
	if _, ov := SatPow(2, 64); !ov {
		t.Error("SatPow(2,64) should overflow")
	}
	if v, ov := SatPow(10, 0); ov || v != 1 {
		t.Errorf("SatPow(10,0) = %d,%v", v, ov)
	}
}

func TestISqrt(t *testing.T) {
	f := func(n uint64) bool {
		r := ISqrt(n)
		if r*r > n {
			return false
		}
		hi, lo := (r+1)*(r+1), n
		// Guard overflow of (r+1)^2 near max uint64.
		if r+1 != 0 && hi/(r+1) == r+1 && hi <= lo {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	for n := uint64(0); n < 2000; n++ {
		want := uint64(math.Sqrt(float64(n)))
		for want*want > n {
			want--
		}
		for (want+1)*(want+1) <= n {
			want++
		}
		if got := ISqrt(n); got != want {
			t.Fatalf("ISqrt(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Min/Max broken")
	}
	if MinU64(3, 5) != 3 || MinU64(5, 3) != 3 {
		t.Error("MinU64 broken")
	}
	if CeilDiv(7, 3) != 3 || CeilDiv(6, 3) != 2 || CeilDiv(1, 3) != 1 {
		t.Error("CeilDiv broken")
	}
}
