package intmath

import "testing"

func TestFill64(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 511, 513} {
		dst := make([]uint64, n+3)
		for i := range dst {
			dst[i] = uint64(i) * 0x9e3779b97f4a7c15
		}
		Fill64(dst[:n], ^uint64(0))
		for i := 0; i < n; i++ {
			if dst[i] != ^uint64(0) {
				t.Fatalf("n=%d: dst[%d] = %#x, want all-ones", n, i, dst[i])
			}
		}
		// Slots beyond the fill length must be untouched.
		for i := n; i < len(dst); i++ {
			if dst[i] != uint64(i)*0x9e3779b97f4a7c15 {
				t.Fatalf("n=%d: dst[%d] clobbered beyond fill length", n, i)
			}
		}
	}
}
