package intmath

// Fill64 sets every element of dst to v. The Go compiler only recognises
// zero-fills as memclr, so the non-zero sentinel wipes of the dense selection
// tables (core.EdgeFold/NodeFold, LocalMinEdgesSel's dense branch) would
// otherwise run one store per iteration with full loop overhead; the 8-way
// unroll keeps the wipe at memory bandwidth without assembly.
func Fill64(dst []uint64, v uint64) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		d := dst[i : i+8 : i+8]
		d[0] = v
		d[1] = v
		d[2] = v
		d[3] = v
		d[4] = v
		d[5] = v
		d[6] = v
		d[7] = v
	}
	for ; i < len(dst); i++ {
		dst[i] = v
	}
}
