package intmath

import (
	"math/rand"
	"testing"
)

// reducerModuli is the boundary set the Reducer's two regimes pivot on: the
// small/wide switch at 2^32, the normalization shift hitting 0 at 2^63, and
// the extremes of the uint64 range.
var reducerModuli = []uint64{
	1, 2, 3, 5, 7, 1024,
	(1 << 32) - 5, (1 << 32) - 1, 1 << 32, (1 << 32) + 1, (1 << 32) + 15,
	(1 << 33) + 3,
	(1 << 63) - 259, (1 << 63) - 1, 1 << 63, (1 << 63) + 29,
	^uint64(0) - 58, ^uint64(0), // 2^64-59 is the largest uint64 prime
}

func TestReducerMulModMatchesMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range reducerModuli {
		r := NewReducer(m)
		if r.M() != m {
			t.Fatalf("m=%d: M() = %d", m, r.M())
		}
		check := func(a, b uint64) {
			t.Helper()
			if got, want := r.MulMod(a, b), MulMod(a, b, m); got != want {
				t.Fatalf("m=%d: Reducer.MulMod(%d, %d) = %d, want %d", m, a, b, got, want)
			}
			if got, want := r.AddMod(a, b), AddMod(a, b, m); got != want {
				t.Fatalf("m=%d: Reducer.AddMod(%d, %d) = %d, want %d", m, a, b, got, want)
			}
		}
		// Boundary operands: 0, 1, m-1, m/2 and neighbours.
		bounds := []uint64{0, 1, 2, m / 2, m - 1}
		if m == 1 {
			bounds = []uint64{0}
		}
		for _, a := range bounds {
			for _, b := range bounds {
				if a < m && b < m {
					check(a, b)
				}
			}
		}
		for i := 0; i < 2000; i++ {
			check(rng.Uint64()%m, rng.Uint64()%m)
		}
	}
}

func TestReducerModMatchesPercent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range reducerModuli {
		r := NewReducer(m)
		ns := []uint64{0, 1, m - 1, m, m + 1, 2*m - 1, 2 * m, ^uint64(0), ^uint64(0) - 1}
		for i := 0; i < 2000; i++ {
			ns = append(ns[:9], rng.Uint64())
			for _, n := range ns {
				if got, want := r.Mod(n), n%m; got != want {
					t.Fatalf("m=%d: Mod(%d) = %d, want %d", m, n, got, want)
				}
			}
		}
	}
}

// TestReducerEvalPolyMatchesScalar checks the batched Horner loops against
// the scalar MulMod/AddMod composition on every boundary modulus, for the
// degrees the repository uses (pairwise and 4-wise) plus an odd higher one.
func TestReducerEvalPolyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range reducerModuli {
		r := NewReducer(m)
		keys := make([]uint64, 257)
		for i := range keys {
			keys[i] = rng.Uint64() % m
		}
		keys[0], keys[len(keys)-1] = 0, m-1
		for _, k := range []int{2, 4, 5} {
			c := make([]uint64, k)
			for i := range c {
				c[i] = rng.Uint64() % m
			}
			out := make([]uint64, len(keys))
			for i := range out {
				out[i] = 0xDEADBEEF // dirty: every slot must be rewritten
			}
			if k == 2 {
				r.EvalPoly2(c[0], c[1], keys, out)
			} else {
				r.EvalPoly(c, keys, out)
			}
			for i, x := range keys {
				want := c[k-1]
				for j := k - 2; j >= 0; j-- {
					want = AddMod(MulMod(want, x, m), c[j], m)
				}
				if out[i] != want {
					t.Fatalf("m=%d k=%d: key %d: got %d, want %d", m, k, x, out[i], want)
				}
			}
		}
	}
}

func TestNewReducerZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReducer(0) did not panic")
		}
	}()
	NewReducer(0)
}

// FuzzReducer cross-checks both Reducer operations against the generic
// bits.Div64-based originals on arbitrary (m, a, b).
func FuzzReducer(f *testing.F) {
	f.Add(uint64(3), uint64(1), uint64(2))
	f.Add(uint64(1)<<32, uint64(1<<31), uint64((1<<32)-1))
	f.Add((uint64(1)<<63)+29, uint64(1)<<62, (uint64(1)<<63)+28)
	f.Add(^uint64(0), ^uint64(0)-1, ^uint64(0)-2)
	f.Fuzz(func(t *testing.T, m, a, b uint64) {
		if m == 0 {
			return
		}
		a, b = a%m, b%m
		r := NewReducer(m)
		if got, want := r.MulMod(a, b), MulMod(a, b, m); got != want {
			t.Fatalf("m=%d: MulMod(%d, %d) = %d, want %d", m, a, b, got, want)
		}
		if got, want := r.AddMod(a, b), AddMod(a, b, m); got != want {
			t.Fatalf("m=%d: AddMod(%d, %d) = %d, want %d", m, a, b, got, want)
		}
		if got, want := r.Mod(a+b), (a+b)%m; a+b >= a && got != want {
			t.Fatalf("m=%d: Mod(%d) = %d, want %d", m, a+b, got, want)
		}
		// EvalPoly2 with c0 = a, c1 = b over keys derived from the inputs:
		// covers whichever of the three regimes (small Barrett, Montgomery
		// medium, wide Möller–Granlund) m selects.
		keys := []uint64{0, a, b, m - 1, (a ^ b) % m, (a + b) % m}
		out := make([]uint64, len(keys))
		r.EvalPoly2(a, b, keys, out)
		for i, x := range keys {
			if want := AddMod(MulMod(b, x, m), a, m); out[i] != want {
				t.Fatalf("m=%d: EvalPoly2 c0=%d c1=%d key %d = %d, want %d", m, a, b, x, out[i], want)
			}
		}
	})
}

func BenchmarkMulModDiv64(b *testing.B) {
	const m = 1<<63 - 259
	acc := uint64(12345)
	for i := 0; i < b.N; i++ {
		acc = MulMod(acc, acc|1, m)
	}
	sinkU64 = acc
}

func BenchmarkReducerMulModWide(b *testing.B) {
	r := NewReducer(1<<63 - 259)
	acc := uint64(12345)
	for i := 0; i < b.N; i++ {
		acc = r.MulMod(acc, acc|1)
	}
	sinkU64 = acc
}

func BenchmarkReducerMulModSmall(b *testing.B) {
	r := NewReducer(1<<31 - 1)
	acc := uint64(12345)
	for i := 0; i < b.N; i++ {
		acc = r.MulMod(acc, acc|1)
	}
	sinkU64 = acc
}

var sinkU64 uint64
