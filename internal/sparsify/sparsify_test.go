package sparsify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/simcost"
)

func params() core.Params {
	return core.DefaultParams()
}

// denseGraph has average degree ~64 at n=2048, putting the heavy class well
// above i=4 so the stage machinery actually runs.
func denseGraph() *graph.Graph {
	return gen.GNM(2048, 2048*32, 7)
}

func TestSparsifyEdgesCorollary8(t *testing.T) {
	g := denseGraph()
	p := params()
	res := SparsifyEdges(g, p, nil)
	// Corollary 8: Σ_{v∈B} d(v) >= δ/2 |E|.
	minW := int64(p.Delta() / 2 * float64(g.M()))
	if res.BWeight < minW {
		t.Errorf("BWeight = %d < δ|E|/2 = %d", res.BWeight, minW)
	}
	if res.ClassIndex < 1 || res.ClassIndex > p.InvDelta {
		t.Errorf("class index %d out of range", res.ClassIndex)
	}
}

func TestSparsifyEdgesE0Membership(t *testing.T) {
	g := denseGraph()
	res := SparsifyEdges(g, params(), nil)
	deg := g.Degrees()
	for _, e := range res.E0 {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("E0 edge %v not in G", e)
		}
		if !inE0(res.B, deg, e) {
			t.Fatalf("E0 edge %v fails the ∪X(v) membership", e)
		}
	}
	// Every B-node keeps its whole X(v) inside E0.
	for v := 0; v < g.N(); v++ {
		if !res.B[v] {
			continue
		}
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if deg[u] <= deg[v] {
				if !inE0(res.B, deg, graph.Edge{U: graph.NodeID(v), V: u}.Canon()) {
					t.Fatalf("X(%d) edge to %d missing from E0", v, u)
				}
			}
		}
	}
}

func TestSparsifyEdgesEStarSubsetAndStages(t *testing.T) {
	g := denseGraph()
	res := SparsifyEdges(g, params(), nil)
	if core.StageCount(res.ClassIndex) == 0 {
		t.Skip("workload landed in a low class; stage path not exercised")
	}
	if len(res.Stages) != core.StageCount(res.ClassIndex) {
		t.Errorf("ran %d stages, want %d", len(res.Stages), core.StageCount(res.ClassIndex))
	}
	if res.UsedFallback {
		t.Log("fallback used (acceptable at laptop scale)")
	}
	// E* ⊆ E0 ⊆ E and items shrink monotonically.
	e0set := map[graph.Edge]bool{}
	for _, e := range res.E0 {
		e0set[e] = true
	}
	for _, e := range res.EStar.Edges() {
		if !res.UsedFallback && !e0set[e] {
			t.Fatalf("E* edge %v not in E0", e)
		}
	}
	prev := len(res.E0)
	for _, st := range res.Stages {
		if st.ItemsBefore != prev {
			t.Errorf("stage %d starts at %d items, expected %d", st.Stage, st.ItemsBefore, prev)
		}
		if st.ItemsAfter > st.ItemsBefore {
			t.Errorf("stage %d grew the edge set", st.Stage)
		}
		prev = st.ItemsAfter
	}
}

func TestSparsifyEdgesAllGroupsGood(t *testing.T) {
	g := denseGraph()
	res := SparsifyEdges(g, params(), nil)
	for _, st := range res.Stages {
		if !st.SeedFound {
			t.Errorf("stage %d: all-good seed not found (%d/%d good, %d tried)",
				st.Stage, st.GoodGroups, st.Groups, st.SeedsTried)
		}
		if st.GoodGroups != st.Groups {
			t.Errorf("stage %d: %d/%d groups good under selected seed", st.Stage, st.GoodGroups, st.Groups)
		}
	}
}

func TestSparsifyEdgesInvariantsHold(t *testing.T) {
	g := denseGraph()
	res := SparsifyEdges(g, params(), nil)
	for _, st := range res.Stages {
		if !st.InvariantI.Ok() {
			t.Errorf("stage %d %s", st.Stage, st.InvariantI)
		}
		// The lower-bound invariant admits binomial-tail outliers at laptop
		// scale (the paper's union bound over them is asymptotic): tolerate
		// up to 1% of checked nodes.
		if allowed := st.InvariantII.Checked/100 + 1; st.InvariantII.Violated > allowed {
			t.Errorf("stage %d %s (> %d allowed)", st.Stage, st.InvariantII, allowed)
		}
	}
}

func TestSparsifyEdgesMaxDegree(t *testing.T) {
	g := denseGraph()
	p := params()
	res := SparsifyEdges(g, p, nil)
	if res.UsedFallback {
		t.Skip("fallback used; degree bound does not apply")
	}
	// §3.3 property (i): d_{E*}(v) <= 2n^{4δ}, checked with the slack factor.
	bound := int(p.Slack) * MaxDegreeBound(g.N(), p.InvDelta)
	if got := res.EStar.MaxDegree(); got > bound {
		t.Errorf("max E* degree %d > slack-adjusted bound %d", got, bound)
	}
}

func TestSparsifyEdgesLowClassSkipsStages(t *testing.T) {
	// Grid: Δ = 4, all degrees in class 1..4 ⇒ E* = E0 verbatim.
	g := gen.Grid2D(40, 40)
	res := SparsifyEdges(g, params(), nil)
	if len(res.Stages) != 0 {
		t.Errorf("low-degree graph ran %d stages", len(res.Stages))
	}
	if res.EStar.M() != len(res.E0) {
		t.Errorf("E* (%d edges) != E0 (%d edges)", res.EStar.M(), len(res.E0))
	}
}

func TestSparsifyEdgesDeterministic(t *testing.T) {
	g := denseGraph()
	a := SparsifyEdges(g, params(), nil)
	b := SparsifyEdges(g, params(), nil)
	if a.ClassIndex != b.ClassIndex || a.BWeight != b.BWeight || a.EStar.M() != b.EStar.M() {
		t.Fatalf("nondeterministic: %d/%d/%d vs %d/%d/%d",
			a.ClassIndex, a.BWeight, a.EStar.M(), b.ClassIndex, b.BWeight, b.EStar.M())
	}
	ea, eb := a.EStar.Edges(), b.EStar.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestSparsifyEdgesChargesModel(t *testing.T) {
	g := denseGraph()
	model := simcost.New(g.N(), g.M(), 0.5)
	SparsifyEdges(g, params(), model)
	st := model.Stats()
	if st.Rounds == 0 {
		t.Error("no rounds charged")
	}
	if st.RoundsByLabel["sparsify.degrees"] == 0 {
		t.Error("degree computation not charged")
	}
	if core.StageCount(5) > 0 && st.SeedBatches == 0 {
		t.Error("no seed batches charged")
	}
}

func TestSparsifyEdgesStarGraph(t *testing.T) {
	// Star: the centre is the only X∩C_K node; E0 = all edges. The many
	// stages shrink E0 aggressively; fallback may trigger, but the result
	// must never be empty.
	g := gen.Star(2048)
	res := SparsifyEdges(g, params(), nil)
	if res.EStar.M() == 0 {
		t.Error("E* empty on star")
	}
	if !res.B[0] {
		t.Error("star centre not in B")
	}
}

func TestSparsifyNodesCorollary16(t *testing.T) {
	g := denseGraph()
	p := params()
	res := SparsifyNodes(g, p, nil)
	minW := int64(p.Delta() / 2 * float64(g.M()))
	if res.BWeight < minW {
		t.Errorf("BWeight = %d < δ|E|/2 = %d", res.BWeight, minW)
	}
}

func TestSparsifyNodesQSubsetOfQ0(t *testing.T) {
	g := denseGraph()
	res := SparsifyNodes(g, params(), nil)
	for v := range res.Q {
		if res.Q[v] && !res.Q0[v] {
			t.Fatalf("node %d in Q' but not Q0", v)
		}
	}
	if CountMask(res.Q) == 0 {
		t.Error("Q' empty")
	}
}

func TestSparsifyNodesStagesShrink(t *testing.T) {
	g := denseGraph()
	res := SparsifyNodes(g, params(), nil)
	prev := CountMask(res.Q0)
	for _, st := range res.Stages {
		if st.ItemsBefore != prev {
			t.Errorf("stage %d begins with %d, expected %d", st.Stage, st.ItemsBefore, prev)
		}
		if st.ItemsAfter > st.ItemsBefore {
			t.Errorf("stage %d grew Q", st.Stage)
		}
		if !st.SeedFound {
			t.Errorf("stage %d all-good seed not found (%d/%d)", st.Stage, st.GoodGroups, st.Groups)
		}
		prev = st.ItemsAfter
	}
}

func TestSparsifyNodesInvariants(t *testing.T) {
	g := denseGraph()
	res := SparsifyNodes(g, params(), nil)
	for _, st := range res.Stages {
		if !st.InvariantI.Ok() {
			t.Errorf("stage %d %s", st.Stage, st.InvariantI)
		}
		if allowed := st.InvariantII.Checked/100 + 1; st.InvariantII.Violated > allowed {
			t.Errorf("stage %d %s (> %d allowed)", st.Stage, st.InvariantII, allowed)
		}
	}
}

func TestSparsifyNodesInducedDegreeBound(t *testing.T) {
	g := denseGraph()
	p := params()
	res := SparsifyNodes(g, p, nil)
	if res.UsedFallback || len(res.Stages) == 0 {
		t.Skip("stage path not exercised")
	}
	bound := int(p.Slack) * MaxDegreeBound(g.N(), p.InvDelta)
	if got := res.QGraph.MaxDegree(); got > bound {
		t.Errorf("max Q' induced degree %d > %d", got, bound)
	}
}

func TestSparsifyNodesDeterministic(t *testing.T) {
	g := denseGraph()
	a := SparsifyNodes(g, params(), nil)
	b := SparsifyNodes(g, params(), nil)
	if a.ClassIndex != b.ClassIndex || CountMask(a.Q) != CountMask(b.Q) {
		t.Fatal("nondeterministic node sparsification")
	}
	for v := range a.Q {
		if a.Q[v] != b.Q[v] {
			t.Fatalf("Q' differs at node %d", v)
		}
	}
}

func TestSparsifyNodesLowDegreeGraph(t *testing.T) {
	g := gen.Grid2D(30, 30)
	res := SparsifyNodes(g, params(), nil)
	if len(res.Stages) != 0 {
		t.Errorf("grid ran %d node stages", len(res.Stages))
	}
	for v := range res.Q {
		if res.Q[v] != res.Q0[v] {
			t.Fatal("Q' != Q0 despite no stages")
		}
	}
}

func TestSparsifyNodesPowerLaw(t *testing.T) {
	g := gen.PowerLaw(2048, 2048*8, 2.5, 3)
	p := params()
	res := SparsifyNodes(g, p, nil)
	if res.BWeight <= 0 {
		t.Error("empty B on power-law graph")
	}
	if CountMask(res.Q) == 0 {
		t.Error("empty Q' on power-law graph")
	}
}

func TestInvariantCheckObserve(t *testing.T) {
	var c InvariantCheck
	c.observe(0.5)
	c.observe(1.5)
	c.observe(0.9)
	if c.Checked != 3 || c.Violated != 1 {
		t.Errorf("check = %+v", c)
	}
	if c.WorstRatio != 1.5 {
		t.Errorf("worst = %f", c.WorstRatio)
	}
	if c.Ok() {
		t.Error("Ok with a violation")
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkSparsifyEdges(b *testing.B) {
	g := denseGraph()
	p := params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SparsifyEdges(g, p, nil)
	}
}

func BenchmarkSparsifyNodes(b *testing.B) {
	g := denseGraph()
	p := params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SparsifyNodes(g, p, nil)
	}
}
