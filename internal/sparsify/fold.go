package sparsify

import (
	"math/bits"

	"repro/internal/scratch"
)

// groupCursor carries one seed's in-progress goodness accumulation across
// evaluated key blocks: the index of the group the scan is inside, the
// partial count / weight sums of that group, and the finished-group tally.
// Because the flattened groups tile [0, len(keys)) contiguously in order
// (appendGroups invariant), a left-to-right walk over key blocks visits every
// group's keys in exactly the order the two-pass countGood does — including
// the float additions of weighted groups — so the fold is bit-identical to
// scoring a full z row.
type groupCursor struct {
	gi   int     // group currently being accumulated
	zc   int     // sub-threshold count of the open group
	zw   float64 // sub-threshold weight sum (weighted groups)
	good int64   // finished groups that passed the stage's goodness test
}

// stageFold scores evaluated key blocks against a stage's flattened groups
// without materialising a full z row per seed: absorb consumes one evaluated
// block at a time, closing (and judging) every group that ends inside it and
// carrying the partial sums of the group that straddles the boundary. A group
// passes when its statistic — the sub-threshold count, or for weighted groups
// the sub-threshold weight sum — lands in [lo[gi], hi[gi]]. The intervals are
// precomputed once per stage: every stage bound depends only on the group's
// fixed size (and, for weighted groups, its fixed total weight), so the
// math.Pow-heavy deviation terms are paid per group, not per group per seed.
// weightsOf is nil for stages whose type-B groups are also count-based (the
// edge stage).
type stageFold struct {
	groups    []edgeGroup
	th        uint64
	weightsOf []float64 // aligned with the key vector; nil = count all kinds
	lo, hi    []float64 // per-group acceptance interval on the statistic
}

// absorb folds the evaluated values z of keys[lo:hi] (z[t-lo] is key t's
// value) into c. Blocks must arrive left to right per cursor, which
// EvalSeedsBlockedFold guarantees. Whether a key clears the threshold is
// data-random, so both accumulations are branchless: the count adds the
// unsigned-compare borrow bit, the weighted sum multiplies the weight by it
// (w·1 = w and zw + w·0 = zw exactly — the weights are finite and the sum
// starts at +0 — so the float result is bit-identical to the branchy form).
func (f *stageFold) absorb(c *groupCursor, z []uint64, lo, hi int) {
	t := lo
	for t < hi {
		gr := f.groups[c.gi]
		end := gr.end
		if end > hi {
			end = hi
		}
		counted := f.weightsOf == nil || gr.kind == 0
		seg := z[t-lo : end-lo]
		if counted {
			zc := c.zc
			for _, v := range seg {
				_, below := bits.Sub64(v, f.th, 0)
				zc += int(below)
			}
			c.zc = zc
		} else {
			w := f.weightsOf[t:end]
			zw := c.zw
			for i, v := range seg {
				_, below := bits.Sub64(v, f.th, 0)
				zw += w[i] * float64(below)
			}
			c.zw = zw
		}
		t = end
		if t == gr.end {
			v := c.zw
			if counted {
				v = float64(c.zc)
			}
			if v >= f.lo[c.gi] && v <= f.hi[c.gi] {
				c.good++
			}
			c.gi++
			c.zc, c.zw = 0, 0
		}
	}
}

// stageEval is the per-worker pooled state of the stage objectives: the
// evaluation tile (full-width for the two-pass reference and apply-path
// recount, one block per seed row under the fold) and the per-seed group
// cursors of the fold path.
type stageEval struct {
	tile    scratch.Tile
	cursors []groupCursor
}

// cursorRows returns s zeroed cursors, reusing the backing array.
func (se *stageEval) cursorRows(s int) []groupCursor {
	if cap(se.cursors) < s {
		se.cursors = make([]groupCursor, s)
	}
	cs := se.cursors[:s]
	for i := range cs {
		cs[i] = groupCursor{}
	}
	return cs
}
