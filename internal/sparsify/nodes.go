package sparsify

import (
	"math"

	"repro/internal/condexp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashfam"
	"repro/internal/parallel"
	"repro/internal/scratch"
	"repro/internal/simcost"
)

// NodeResult is the outcome of the Section 4.2 sparsification: the chosen
// class Q0 = C_i, the good-node set B (Corollary 16) and the subsampled
// low-degree node set Q' (as a mask over g's nodes).
//
// Lifetime: when produced by SparsifyNodesIn, the slices (B, Deg, Q0, Q)
// are checked out of the caller's scratch context and QGraph lives in its
// stage CSR double-buffer, so the result is valid until the caller Resets
// the context or runs the next sparsification on it — one outer-loop round,
// which is how internal/mis consumes it. The allocating SparsifyNodes
// wrapper has no such constraint.
type NodeResult struct {
	ClassIndex int
	B          []bool // v ∈ B iff Σ_{u∈C_i∼v} 1/d(u) >= δ/3
	BWeight    int64  // Σ_{v∈B} d(v) >= δ|E|/2 by Corollary 16
	Deg        []int
	Q0         []bool
	Q          []bool // Q' mask
	// QList is Q as an ascending id list, built in the same pass that counts
	// the final candidate set: callers that need the candidates as a list
	// (core.NodeSel.InitList on the MIS path) take it directly instead of
	// re-scanning the O(n) mask every round. len(QList) == CountMask(Q).
	QList        []graph.NodeID
	QGraph       *graph.Graph // induced subgraph on Q' (same node ids)
	Stages       []StageReport
	UsedFallback bool
}

// SparsifyNodes runs the deterministic node sparsification of Section 4.2.
// It is SparsifyNodesIn with a private scratch context; repeated callers
// (the MIS round loop, the Engine) use SparsifyNodesIn.
func SparsifyNodes(g *graph.Graph, p core.Params, model *simcost.Model) *NodeResult {
	return SparsifyNodesIn(scratch.New(), g, p, model)
}

// SparsifyNodesIn is SparsifyNodes drawing every per-round buffer from sc
// instead of the heap. See NodeResult for the lifetime of the returned
// slices. Results are bit-identical to SparsifyNodes at any worker count
// and for any prior state of sc.
func SparsifyNodesIn(sc *scratch.Context, g *graph.Graph, p core.Params, model *simcost.Model) *NodeResult {
	p.Validate()
	n := g.N()
	deg := g.DegreesInto(sc.Ints(n))
	model.ChargeSort("sparsify.degrees")

	workers := p.Workers()
	dc := core.NewDegreeClasses(n, p.InvDelta)
	classOf := sc.Ints(n)
	parallel.ForEach(workers, n, func(v int) {
		classOf[v] = dc.Class(deg[v])
	})

	// B_i = {v : Σ_{u∈C_i∼v} 1/d(u) >= δ/3}; one pass accumulates all the
	// per-class reciprocal sums of every node. Each vertex owns its row and
	// folds its (fixed, sorted) neighbour list left to right, so the float
	// sums are bit-identical at any worker count.
	delta := p.Delta()
	sums := sc.Float64s(n * (dc.K + 1))
	parallel.ForEach(workers, n, func(v int) {
		row := sums[v*(dc.K+1):]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			row[classOf[u]] += 1 / float64(deg[u])
		}
	})
	model.ChargeSort("sparsify.classSums")

	weights := sc.Int64s(dc.K + 1)
	for v := 0; v < n; v++ {
		row := sums[v*(dc.K+1):]
		for c := 1; c <= dc.K; c++ {
			if row[c] >= delta/3-1e-12 {
				weights[c] += int64(deg[v])
			}
		}
	}
	model.ChargeScan("sparsify.classes")
	i := 1
	for c := 2; c <= dc.K; c++ {
		if weights[c] > weights[i] {
			i = c
		}
	}
	b := sc.Bools(n)
	q0 := sc.Bools(n)
	for v := 0; v < n; v++ {
		b[v] = sums[v*(dc.K+1)+i] >= delta/3-1e-12
		q0[v] = classOf[v] == i
	}

	res := &NodeResult{
		ClassIndex: i,
		B:          b,
		BWeight:    weights[i],
		Deg:        deg,
		Q0:         q0,
	}

	stages := core.StageCount(i)
	cur := sc.Bools(n)
	copy(cur, q0)
	// Stage boundaries are cancellation checkpoints, as in SparsifyEdgesIn.
	// A canceled chain returns immediately with only the pre-stage fields
	// set (Q holds the current mask, QList/QGraph are unset): the outer MIS
	// round re-checks Params.Done — monotone by contract — right after this
	// call and discards the result, so there is no point paying the Q' list
	// build or the induced-subgraph construction on the way out.
	for j := 1; j <= stages && CountMask(cur) > 0; j++ {
		if p.Canceled() {
			res.Q = cur
			return res
		}
		report, next, canceled := runNodeStage(sc, g, cur, b, deg, dc, p, i, j, model)
		if canceled {
			res.Q = cur
			return res
		}
		res.Stages = append(res.Stages, report)
		cur = next
	}
	if CountMask(cur) == 0 && CountMask(q0) > 0 {
		cur = sc.Bools(n)
		copy(cur, q0)
		res.UsedFallback = true
	}
	// One pass builds the Q' list for both the normal and fallback masks —
	// the round's candidates as data, so the MIS loop never re-scans the
	// mask (core.NodeSel.InitList).
	qlist := sc.NodeIDsCap(n)
	for v := 0; v < n; v++ {
		if cur[v] {
			qlist = append(qlist, graph.NodeID(v))
		}
	}
	res.Q = cur
	res.QList = qlist
	res.QGraph = g.InducedNodesInto(cur, workers, sc.Stage().Next())
	return res
}

// CountMask returns the number of set entries (shared by the node-stage
// loops here and the MIS round stats in internal/mis).
func CountMask(mask []bool) int {
	c := 0
	for _, m := range mask {
		if m {
			c++
		}
	}
	return c
}

func runNodeStage(sc *scratch.Context, g *graph.Graph, cur, b []bool, deg []int,
	dc *core.DegreeClasses, p core.Params, i, j int, model *simcost.Model) (StageReport, []bool, bool) {

	n := g.N()
	gamma := dc.GroupSize()
	fam := core.KWiseFamily(n, p.KWise)
	th := core.StageThreshold(fam.P(), n, dc.K)
	sampleProb := float64(th) / float64(fam.P())

	// Flattened groups over node keys. kind 0 = type Q (count upper bound),
	// kind 1 = type B (reciprocal-degree lower bound). Each of the two
	// passes contributes at most one key per half-edge of g.
	keys := sc.Uint64sCap(4 * g.M())
	weightsOf := sc.Float64sCap(4 * g.M()) // 1/d(u), used by type B groups
	var groups []edgeGroup
	appendGroups := func(ids []graph.NodeID, kind uint8) {
		for lo := 0; lo < len(ids); lo += gamma {
			hi := lo + gamma
			if hi > len(ids) {
				hi = len(ids)
			}
			groups = append(groups, edgeGroup{start: len(keys) + lo, end: len(keys) + hi, kind: kind})
		}
		for _, u := range ids {
			keys = append(keys, core.SlotKey(uint64(u), j, n))
			weightsOf = append(weightsOf, 1/float64(deg[u]))
		}
	}
	var flat []graph.NodeID
	curNeighbors := func(v int) []graph.NodeID {
		flat = flat[:0]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if cur[u] {
				flat = append(flat, u)
			}
		}
		return flat
	}
	for v := 0; v < n; v++ {
		if !cur[v] {
			continue
		}
		if ids := curNeighbors(v); len(ids) > 0 {
			appendGroups(ids, 0)
		}
	}
	for v := 0; v < n; v++ {
		if !b[v] {
			continue
		}
		if ids := curNeighbors(v); len(ids) > 0 {
			appendGroups(ids, 1)
		}
	}
	model.ChargeSort("sparsify.distribute")

	// Type-B deviation scale: the paper's n^{(0.9-i)δ}·√vx from the scaled
	// Bellare-Rompel application (variables Z_u = n^{(i-1)δ}/d(u)).
	devB := math.Pow(float64(n), (0.9-float64(i))/float64(dc.K))

	// Goodness objective through the blocked kernel: each BlockSeeds group
	// of candidates makes one block-major pass over the flattened key vector
	// and folds every evaluated block into per-seed group cursors while
	// cache-resident — bit-identical to scoring a full z row, because groups
	// tile the key vector in order and the carry preserves the weighted
	// groups' float-accumulation order exactly. The scalar reference path
	// calls fam.Eval once per key; single-seed evaluations (the apply-path
	// recount) keep the full-width tile row + countGood two-pass shape.
	evaluator := hashfam.NewEvaluator(fam)
	evalPool := scratch.NewPerWorker(func() *stageEval { return new(stageEval) })
	// Acceptance intervals hoisted out of the per-seed path: each bound
	// depends only on the group's fixed size — and for type-B groups its
	// fixed total weight, accumulated here in the same left-to-right order
	// every per-seed scan used, so the float result is bit-identical — which
	// moves DevTerm's math.Pow and the √ex scaling from once per group per
	// seed to once per group per stage. Type-Q groups bound the count from
	// above only, type-B the weight from below only; the open side is ±Inf.
	gLo := sc.Float64s(len(groups))
	gHi := sc.Float64s(len(groups))
	for gi, gr := range groups {
		ex := gr.end - gr.start
		if gr.kind == 0 {
			mu := float64(ex) * sampleProb
			dev := p.Slack * dc.DevTerm(ex)
			gLo[gi], gHi[gi] = math.Inf(-1), mu+dev
			continue
		}
		var total float64
		for t := gr.start; t < gr.end; t++ {
			total += weightsOf[t]
		}
		dev := p.Slack * devB * math.Sqrt(float64(ex))
		gLo[gi], gHi[gi] = sampleProb*total-dev, math.Inf(1)
	}
	fold := &stageFold{groups: groups, th: th, weightsOf: weightsOf, lo: gLo, hi: gHi}
	countGood := func(z []uint64) int64 {
		var good int64
		for gi, gr := range groups {
			if gr.kind == 0 {
				zc := 0
				for t := gr.start; t < gr.end; t++ {
					if z[t] < th {
						zc++
					}
				}
				if float64(zc) <= gHi[gi] {
					good++
				}
				continue
			}
			var zw float64
			for t := gr.start; t < gr.end; t++ {
				if z[t] < th {
					zw += weightsOf[t]
				}
			}
			if zw >= gLo[gi] {
				good++
			}
		}
		return good
	}
	goodGroups := func(seed []uint64, workers int) int64 {
		se := evalPool.Get()
		z := se.tile.Rows(1, len(keys))[0]
		if p.ScalarObjectives {
			for t, k := range keys {
				z[t] = fam.Eval(seed, k)
			}
		} else {
			evaluator.EvalKeysW(seed, keys, z, workers)
		}
		good := countGood(z)
		evalPool.Put(se)
		return good
	}
	objective := func(seeds [][]uint64, values []int64) {
		if p.ScalarObjectives {
			spare := condexp.SpareWorkers(p.Workers(), len(seeds))
			parallel.ForEach(p.Workers(), len(seeds), func(i int) {
				values[i] = goodGroups(seeds[i], spare)
			})
			return
		}
		// Fused fold path: the tile holds one hashfam.BlockKeyGrain block
		// per seed; each evaluated block is absorbed into the seeds' group
		// cursors before the next block overwrites it. Group boundaries
		// depend only on the batch length and each group writes only its own
		// value slots, so results are worker-count independent.
		condexp.ForEachSeedBlock(p.Workers(), len(seeds), func(lo, hi int) {
			se := evalPool.Get()
			S := hi - lo
			blockLen := len(keys)
			if blockLen > hashfam.BlockKeyGrain {
				blockLen = hashfam.BlockKeyGrain
			}
			tile := se.tile.Rows(S, blockLen)
			cursors := se.cursorRows(S)
			evaluator.EvalSeedsBlockedFold(seeds[lo:hi], keys, tile, func(blo, bhi int) {
				for s := 0; s < S; s++ {
					fold.absorb(&cursors[s], tile[s], blo, bhi)
				}
			})
			for s := 0; s < S; s++ {
				values[lo+s] = cursors[s].good
			}
			evalPool.Put(se)
		})
	}

	res, err := condexp.SearchAtLeastBatch(fam, objective, int64(len(groups)), condexp.Options{
		Model:     model,
		Label:     "sparsify.seed",
		MaxSeeds:  p.MaxSeedsPerSearch,
		Workers:   p.Workers(),
		BatchSize: batchSize(model),
		Done:      p.Done,
	})
	if err != nil {
		panic(err)
	}
	if res.Canceled {
		// res.Seed may be nil; abandon the stage, the caller discards.
		return StageReport{}, nil, true
	}

	// Apply the selected seed: one EvalKeys pass over this stage's node
	// keys, then a sharded mask update.
	workers := p.Workers()
	applyKeys := core.NodeSlotKeysInto(sc.Uint64sCap(n), j, n)
	applyZ := evaluator.EvalKeysW(res.Seed, applyKeys, sc.Uint64s(n), workers)
	next := sc.Bools(n)
	parallel.ForEach(workers, n, func(v int) {
		next[v] = cur[v] && applyZ[v] < th
	})
	model.ChargeScan("sparsify.apply")

	report := StageReport{
		Stage:       j,
		ItemsBefore: CountMask(cur),
		ItemsAfter:  CountMask(next),
		Groups:      len(groups),
		GoodGroups:  int(goodGroups(res.Seed, workers)),
		SeedsTried:  res.SeedsTried,
		SeedFound:   res.Found,
	}

	// Invariant (i), Lemma 17: for v ∈ Qj, d_{Qj}(v) <= (1+o(1)) n^{-jδ} d(v).
	// Both audits shard over vertex ranges with shard-ordered merges.
	nJD := math.Pow(float64(n), -float64(j)/float64(dc.K))
	n3d := math.Pow(float64(n), 3/float64(dc.K))
	invI := InvariantCheck{Name: "Lemma17: d_Qj(v) <= (1+o(1))n^{-jδ}d(v)"}
	invI.merge(parallel.MapReduce(workers, n, InvariantCheck{}, func(lo, hi int) InvariantCheck {
		var part InvariantCheck
		for v := lo; v < hi; v++ {
			if !next[v] {
				continue
			}
			dQ := 0
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if next[u] {
					dQ++
				}
			}
			// The additive n^{3δ} mirrors Lemma 10's small-degree regime (the
			// proof of Lemma 17 stops shrinking once degrees fall below n^{3δ}).
			bound := p.Slack * (nJD*float64(deg[v]) + n3d)
			part.observe(float64(dQ) / bound)
		}
		return part
	}, mergeChecks))
	delta := p.Delta()
	invII := InvariantCheck{Name: "Lemma18: Σ_{u∈Qj∼v}1/d(u) >= (δ-o(1))/(3n^{δj})"}
	invII.merge(parallel.MapReduce(workers, n, InvariantCheck{}, func(lo, hi int) InvariantCheck {
		var part InvariantCheck
		for v := lo; v < hi; v++ {
			if !b[v] {
				continue
			}
			var sum float64
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if next[u] {
					sum += 1 / float64(deg[u])
				}
			}
			bound := delta / (3 * math.Pow(float64(n), float64(j)/float64(dc.K)) * p.Slack)
			// +1/n absorbs integrality at laptop scale.
			part.observe(bound / (sum + 1/float64(n)))
		}
		return part
	}, mergeChecks))
	report.InvariantI = invI
	report.InvariantII = invII
	return report, next, false
}
