package sparsify

import (
	"math"

	"repro/internal/condexp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashfam"
	"repro/internal/parallel"
	"repro/internal/scratch"
	"repro/internal/simcost"
)

// EdgeResult is the outcome of the Section 3.2 sparsification: the chosen
// degree class, the good-node set B, the initial edge set E0 = ∪_{v∈B} X(v)
// and the final low-degree subgraph E*.
//
// Lifetime: when produced by SparsifyEdgesIn, the slices (B, Deg, E0) are
// checked out of the caller's scratch context and EStar lives in its stage
// CSR double-buffer, so the result is valid until the caller Resets the
// context or runs the next sparsification on it — i.e. for the enclosing
// outer-loop round, which is exactly how internal/matching consumes it. The
// allocating SparsifyEdges wrapper has no such constraint.
type EdgeResult struct {
	ClassIndex int    // i of Corollary 8
	B          []bool // good nodes B = C_i ∩ X
	BWeight    int64  // Σ_{v∈B} d(v) (Corollary 8 lower-bounds it by δ|E|/2)
	Deg        []int  // degrees in the input graph (the d(·) of the analysis)
	E0         []graph.Edge
	EStar      *graph.Graph // subgraph on the same node ids
	Stages     []StageReport
	// UsedFallback is set when subsampling emptied the candidate set and
	// E* was reset to E0 to preserve unconditional progress.
	UsedFallback bool
}

// MaxDegreeBound returns the paper's bound 2n^{4δ} on d_{E*}(v) (§3.3
// property (i)); the caller compares it with EStar.MaxDegree().
func MaxDegreeBound(n, invDelta int) int {
	dc := core.NewDegreeClasses(n, invDelta)
	return 2 * dc.GroupSize()
}

// inE0 reports whether the edge {a,b} belongs to E0 = ∪_{v∈B} X(v), where
// X(v) = {{u,v} ∈ E : d(u) <= d(v)}.
func inE0(b []bool, deg []int, e graph.Edge) bool {
	return (b[e.U] && deg[e.V] <= deg[e.U]) || (b[e.V] && deg[e.U] <= deg[e.V])
}

// inXof reports whether edge {v,u} (from v's perspective) lies in X(v).
func inXof(deg []int, v, u graph.NodeID) bool { return deg[u] <= deg[v] }

// SparsifyEdges runs the deterministic edge sparsification of Section 3.2 on
// g. The model (optional) is charged the Lemma 4 rounds and seed batches.
// g must have at least one edge. It is SparsifyEdgesIn with a private
// scratch context; repeated callers (the matching round loop, the Engine)
// use SparsifyEdgesIn to stay allocation-flat.
func SparsifyEdges(g *graph.Graph, p core.Params, model *simcost.Model) *EdgeResult {
	return SparsifyEdgesIn(scratch.New(), g, p, model)
}

// SparsifyEdgesIn is SparsifyEdges drawing every per-round buffer — masks,
// degree and class tables, the E0 edge list, and the stage-chain CSR
// rebuilds — from sc instead of the heap. See EdgeResult for the lifetime
// of the returned slices. Results are bit-identical to SparsifyEdges at any
// worker count and for any prior state of sc.
func SparsifyEdgesIn(sc *scratch.Context, g *graph.Graph, p core.Params, model *simcost.Model) *EdgeResult {
	p.Validate()
	n := g.N()
	deg := g.DegreesInto(sc.Ints(n))
	model.ChargeSort("sparsify.degrees") // nodes learn degrees (Lemma 4)

	workers := p.Workers()
	x := core.ComputeXInto(sc.Bools(n), g, deg, workers)
	model.ChargeSort("sparsify.X") // membership of X via sorted join

	dc := core.NewDegreeClasses(n, p.InvDelta)
	classOf := sc.Ints(n)
	parallel.ForEach(workers, n, func(v int) {
		classOf[v] = dc.Class(deg[v])
	})
	// Corollary 8: pick i maximising Σ_{v∈B_i} d(v), B_i = C_i ∩ X.
	weights := sc.Int64s(dc.K + 1)
	for v := 0; v < n; v++ {
		if x[v] {
			weights[classOf[v]] += int64(deg[v])
		}
	}
	model.ChargeScan("sparsify.classes")
	i := 1
	for c := 2; c <= dc.K; c++ {
		if weights[c] > weights[i] {
			i = c
		}
	}
	b := sc.Bools(n)
	for v := 0; v < n; v++ {
		b[v] = x[v] && classOf[v] == i
	}

	// E0 = ∪_{v∈B} X(v), collected straight off the CSR arrays in canonical
	// order (no intermediate full edge list).
	e0 := sc.EdgesCap(g.M())
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v {
				e := graph.Edge{U: graph.NodeID(u), V: v}
				if inE0(b, deg, e) {
					e0 = append(e0, e)
				}
			}
		}
	}
	res := &EdgeResult{
		ClassIndex: i,
		B:          b,
		BWeight:    weights[i],
		Deg:        deg,
		E0:         e0,
	}

	stages := core.StageCount(i)
	cur := e0
	curG := graph.FromEdgesInto(n, cur, sc.Stage().Next())
	dE0 := curG.DegreesInto(sc.Ints(n)) // d_{E0}(v), the invariant's reference degrees

	// Stage boundaries are cancellation checkpoints: an abandoned request
	// stops subsampling here and the (partial) result is discarded by the
	// canceled outer round loop, so the early exit can never reach output.
	for j := 1; j <= stages && len(cur) > 0 && !p.Canceled(); j++ {
		report := runEdgeStage(sc, g, curG, cur, b, deg, dE0, dc, p, j, model)
		if report.canceled {
			break
		}
		res.Stages = append(res.Stages, report.StageReport)
		cur = report.next
		curG = report.nextG
	}
	if len(cur) == 0 && len(e0) > 0 {
		// Subsampling emptied the set (possible at laptop scale); fall back
		// to E0 so the outer loop always makes progress. Note that when
		// this happens 2-hop balls may exceed S; the model records it.
		cur = e0
		curG = graph.FromEdgesInto(n, cur, sc.Stage().Next())
		res.UsedFallback = true
	}
	res.EStar = curG
	return res
}

// edgeStageOutcome bundles a stage report with the surviving edges and their
// graph (built once, in the stage double-buffer).
type edgeStageOutcome struct {
	StageReport
	next  []graph.Edge
	nextG *graph.Graph
	// canceled marks a stage whose seed search was stopped by Params.Done;
	// next/nextG are then unset and the caller abandons the stage chain.
	canceled bool
}

// edgeGroup is one logical machine: a contiguous run of the flattened
// incidence arrays. kind 0 = type A (two-sided concentration of the count),
// kind 1 = type B (two-sided as well, per §3.2's goodness definition).
type edgeGroup struct {
	start, end int
	kind       uint8
}

func runEdgeStage(sc *scratch.Context, g, curG *graph.Graph, cur []graph.Edge, b []bool, deg, dE0 []int,
	dc *core.DegreeClasses, p core.Params, j int, model *simcost.Model) edgeStageOutcome {

	n := g.N()
	gamma := dc.GroupSize()
	fam := core.KWiseFamily(n, p.KWise)
	th := core.StageThreshold(fam.P(), n, dc.K)
	sampleProb := float64(th) / float64(fam.P())

	// Flatten type-A groups (each node's incident cur-edges in chunks of γ)
	// and type-B groups (for v ∈ B, the X(v)∩cur edges in chunks of γ).
	// Type A contributes 2|cur| keys and type B at most that again.
	keys := sc.Uint64sCap(4 * len(cur))
	var groups []edgeGroup
	appendGroups := func(list []uint64, kind uint8) {
		for lo := 0; lo < len(list); lo += gamma {
			hi := lo + gamma
			if hi > len(list) {
				hi = len(list)
			}
			groups = append(groups, edgeGroup{start: len(keys) + lo, end: len(keys) + hi, kind: kind})
		}
		keys = append(keys, list...)
	}
	// Stage j hashes edges in domain-separation slot j so that every stage
	// sees fresh independent values (see core.SlotKey).
	edgeKey := func(v graph.NodeID, u graph.NodeID) uint64 {
		return core.SlotKey(graph.Edge{U: v, V: u}.Key(n), j, n)
	}
	var flat []uint64
	for v := 0; v < n; v++ {
		nbrs := curG.Neighbors(graph.NodeID(v))
		if len(nbrs) == 0 {
			continue
		}
		flat = flat[:0]
		for _, u := range nbrs {
			flat = append(flat, edgeKey(graph.NodeID(v), u))
		}
		appendGroups(flat, 0)
	}
	for v := 0; v < n; v++ {
		if !b[v] {
			continue
		}
		flat = flat[:0]
		for _, u := range curG.Neighbors(graph.NodeID(v)) {
			if inXof(deg, graph.NodeID(v), u) {
				flat = append(flat, edgeKey(graph.NodeID(v), u))
			}
		}
		if len(flat) > 0 {
			appendGroups(flat, 1)
		}
	}
	model.ChargeSort("sparsify.distribute") // spread incident edges over machines

	// Goodness objective: number of good groups under the seed. The blocked
	// kernel path evaluates each BlockSeeds group of candidates block-major
	// over the flattened key vector and folds every evaluated block into
	// per-seed group cursors while cache-resident (bit-identical to scoring a
	// full z row: groups tile the key vector in order, so the fold closes
	// them in the same left-to-right scan countGood performs); the scalar
	// reference path calls fam.Eval once per key. Single-seed evaluations
	// (the apply-path recount) keep the full-width tile row + countGood
	// two-pass shape.
	evaluator := hashfam.NewEvaluator(fam)
	evalPool := scratch.NewPerWorker(func() *stageEval { return new(stageEval) })
	// Acceptance intervals hoisted out of the per-seed path: the Chernoff
	// window μ±dev depends only on the group's size, so DevTerm's math.Pow
	// runs once per group per stage instead of once per group per seed.
	gLo := sc.Float64s(len(groups))
	gHi := sc.Float64s(len(groups))
	for gi, gr := range groups {
		ex := gr.end - gr.start
		mu := float64(ex) * sampleProb
		dev := p.Slack * dc.DevTerm(ex)
		gLo[gi], gHi[gi] = mu-dev, mu+dev
	}
	fold := &stageFold{groups: groups, th: th, lo: gLo, hi: gHi}
	countGood := func(z []uint64) int64 {
		var good int64
		for gi, gr := range groups {
			zc := 0
			for t := gr.start; t < gr.end; t++ {
				if z[t] < th {
					zc++
				}
			}
			if float64(zc) >= gLo[gi] && float64(zc) <= gHi[gi] {
				good++
			}
		}
		return good
	}
	goodGroups := func(seed []uint64, workers int) int64 {
		se := evalPool.Get()
		z := se.tile.Rows(1, len(keys))[0]
		if p.ScalarObjectives {
			for t, k := range keys {
				z[t] = fam.Eval(seed, k)
			}
		} else {
			evaluator.EvalKeysW(seed, keys, z, workers)
		}
		good := countGood(z)
		evalPool.Put(se)
		return good
	}
	objective := func(seeds [][]uint64, values []int64) {
		if p.ScalarObjectives {
			spare := condexp.SpareWorkers(p.Workers(), len(seeds))
			parallel.ForEach(p.Workers(), len(seeds), func(i int) {
				values[i] = goodGroups(seeds[i], spare)
			})
			return
		}
		// Fused fold path: the tile holds one hashfam.BlockKeyGrain block
		// per seed; each evaluated block is absorbed into the seeds' group
		// cursors before the next block overwrites it. Group boundaries
		// depend only on the batch length and each group writes only its own
		// value slots, so results are worker-count independent.
		condexp.ForEachSeedBlock(p.Workers(), len(seeds), func(lo, hi int) {
			se := evalPool.Get()
			S := hi - lo
			blockLen := len(keys)
			if blockLen > hashfam.BlockKeyGrain {
				blockLen = hashfam.BlockKeyGrain
			}
			tile := se.tile.Rows(S, blockLen)
			cursors := se.cursorRows(S)
			evaluator.EvalSeedsBlockedFold(seeds[lo:hi], keys, tile, func(blo, bhi int) {
				for s := 0; s < S; s++ {
					fold.absorb(&cursors[s], tile[s], blo, bhi)
				}
			})
			for s := 0; s < S; s++ {
				values[lo+s] = cursors[s].good
			}
			evalPool.Put(se)
		})
	}

	res, err := condexp.SearchAtLeastBatch(fam, objective, int64(len(groups)), condexp.Options{
		Model:     model,
		Label:     "sparsify.seed",
		MaxSeeds:  p.MaxSeedsPerSearch,
		Workers:   p.Workers(),
		BatchSize: batchSize(model),
		Done:      p.Done,
	})
	if err != nil {
		// Only possible for an empty family, which cannot happen (p >= 2).
		panic(err)
	}
	if res.Canceled {
		// Abandoned mid-search: res.Seed may be nil (no batch evaluated), so
		// there is nothing safe to apply — hand the cancellation up instead.
		return edgeStageOutcome{canceled: true}
	}

	// Apply the selected seed: E_j = {e ∈ E_{j-1} : h(e) < th}, one sharded
	// EvalKeys pass over this stage's per-edge keys (a single seed over the
	// whole round — exactly the shape EvalKeysW exists for). Shards filter
	// independent edge ranges; concatenation in shard order keeps the
	// canonical edge order of the serial scan.
	curKeys := core.SlotKeysInto(sc.Uint64sCap(len(cur)), cur, j, n)
	curZ := evaluator.EvalKeysW(res.Seed, curKeys, sc.Uint64s(len(cur)), p.Workers())
	next := parallel.Collect(p.Workers(), len(cur), func(lo, hi int) []graph.Edge {
		var part []graph.Edge
		for idx := lo; idx < hi; idx++ {
			if curZ[idx] < th {
				part = append(part, cur[idx])
			}
		}
		return part
	})
	model.ChargeScan("sparsify.apply")

	out := edgeStageOutcome{next: next}
	out.Stage = j
	out.ItemsBefore = len(cur)
	out.ItemsAfter = len(next)
	out.Groups = len(groups)
	out.GoodGroups = int(goodGroups(res.Seed, p.Workers()))
	out.SeedsTried = res.SeedsTried
	out.SeedFound = res.Found

	// Invariant (i), Lemma 10: d_{Ej}(v) <= (1+o(1)) n^{-jδ} d_E0(v) + n^{3δ},
	// checked with the slack as the (1+o(1)) factor. Both audits shard over
	// vertex ranges; per-shard partials merge in shard order. The stage
	// graph is built once, into the other half of the stage double-buffer,
	// and handed back as the next round's source.
	nextG := graph.FromEdgesInto(n, next, sc.Stage().Next())
	nJD := math.Pow(float64(n), -float64(j)/float64(dc.K))
	n3d := math.Pow(float64(n), 3/float64(dc.K))
	workers := p.Workers()
	invI := InvariantCheck{Name: "Lemma10: d_Ej(v) <= (1+o(1))n^{-jδ}d_E0(v)+n^{3δ}"}
	invI.merge(parallel.MapReduce(workers, n, InvariantCheck{}, func(lo, hi int) InvariantCheck {
		var part InvariantCheck
		for v := lo; v < hi; v++ {
			if dE0[v] == 0 {
				continue
			}
			bound := p.Slack * (nJD*float64(dE0[v]) + n3d)
			part.observe(float64(nextG.Degree(graph.NodeID(v))) / bound)
		}
		return part
	}, mergeChecks))
	// Invariant (ii), Lemma 11, for v ∈ B against |X(v)| in E0.
	invII := InvariantCheck{Name: "Lemma11: |X(v)∩Ej| >= (1-o(1))n^{-jδ}|X(v)|"}
	invII.merge(parallel.MapReduce(workers, n, InvariantCheck{}, func(lo, hi int) InvariantCheck {
		var part InvariantCheck
		for v := lo; v < hi; v++ {
			if !b[v] {
				continue
			}
			xv := 0
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if inXof(deg, graph.NodeID(v), u) && inE0(b, deg, graph.Edge{U: graph.NodeID(v), V: u}.Canon()) {
					xv++
				}
			}
			if xv == 0 {
				continue
			}
			kept := 0
			for _, u := range nextG.Neighbors(graph.NodeID(v)) {
				if inXof(deg, graph.NodeID(v), u) {
					kept++
				}
			}
			// Lower-bound invariant: ratio = bound / measured, with the slack
			// dividing the bound and an additive +1 absorbing integrality.
			bound := nJD * float64(xv) / p.Slack
			part.observe(bound / (float64(kept) + 1))
		}
		return part
	}, mergeChecks))
	out.InvariantI = invI
	out.InvariantII = invII
	out.nextG = nextG
	return out
}

// batchSize picks the per-batch seed count: the model's S when present.
func batchSize(model *simcost.Model) int {
	if s := model.S(); s > 0 {
		return s
	}
	return 64
}
