// Package sparsify implements the paper's central contribution: the
// deterministic graph sparsification of Sections 3.2 (edges, for maximal
// matching) and 4.2 (nodes, for MIS).
//
// Both variants follow the same scheme. Fix the degree class C_i whose good
// nodes B are incident to a δ/2 fraction of the edges (Corollaries 8/16);
// then, for i >= 5, run i-4 stages, each derandomizing the subsampling of
// edges (resp. nodes) with probability n^{-δ}: incident items are spread
// over logical "machines" (groups of γ = ceil(n^{4δ}) items), a machine is
// good for a hash function h when the sampled count concentrates as Lemma 9
// predicts, and the method of conditional expectations (internal/condexp)
// finds a seed making all machines good in O(1) charged MPC rounds. The
// invariants of Lemmas 10/11 (resp. 17/18) then hold and the final
// subsampled object E* (resp. Q') has maximum degree O(n^{4δ}), so 2-hop
// neighbourhoods fit in a machine of S = O(n^{8δ}) = O(n^ε) words.
package sparsify

import "fmt"

// InvariantCheck summarises one invariant over all checked nodes of a stage:
// how many nodes were checked, how many violated the slack-adjusted bound,
// and the worst measured/bound ratio (ratios <= 1 satisfy the bound; for
// lower-bound invariants the ratio is bound/measured so the same reading
// applies).
type InvariantCheck struct {
	Name       string
	Checked    int
	Violated   int
	WorstRatio float64
}

// Ok reports whether no node violated the slack-adjusted bound.
func (c InvariantCheck) Ok() bool { return c.Violated == 0 }

func (c InvariantCheck) String() string {
	return fmt.Sprintf("%s: %d/%d violated (worst ratio %.3f)", c.Name, c.Violated, c.Checked, c.WorstRatio)
}

// StageReport records one derandomized subsampling stage.
type StageReport struct {
	Stage       int // 1-based stage index j
	ItemsBefore int // |E_{j-1}| or |Q_{j-1}|
	ItemsAfter  int // |E_j| or |Q_j|
	Groups      int // logical machines (type A/Q + type B)
	GoodGroups  int // groups good under the selected seed
	SeedsTried  int
	SeedFound   bool // all-groups-good threshold met
	InvariantI  InvariantCheck
	InvariantII InvariantCheck
}

// merge folds a per-shard partial into c. Counts add and WorstRatio is a
// max, so the sharded invariant audits produce the same summary as the
// serial scan regardless of worker count.
func (c *InvariantCheck) merge(part InvariantCheck) {
	c.Checked += part.Checked
	c.Violated += part.Violated
	if part.WorstRatio > c.WorstRatio {
		c.WorstRatio = part.WorstRatio
	}
}

// mergeChecks is merge as a fold function for parallel.MapReduce.
func mergeChecks(acc, part InvariantCheck) InvariantCheck {
	acc.merge(part)
	return acc
}

// observe folds a measured/bound comparison into an InvariantCheck; ratio
// is measured relative to the allowed bound (<= 1 passes).
func (c *InvariantCheck) observe(ratio float64) {
	c.Checked++
	if ratio > 1 {
		c.Violated++
	}
	if ratio > c.WorstRatio {
		c.WorstRatio = ratio
	}
}
