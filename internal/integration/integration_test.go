// Package integration_test cross-checks the algorithm implementations
// against each other through graph-theoretic identities: any two maximal
// matchings are within a factor two in size, an independent set never
// exceeds n minus any matching size, the complement of an MIS is a vertex
// cover, and all strategies agree on maximality. Workloads are sampled with
// testing/quick so the identities are exercised on arbitrary random graphs,
// not only the curated fixtures.
package integration_test

import (
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/detrand"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/lowdeg"
	"repro/internal/luby"
	"repro/internal/matching"
	"repro/internal/mis"
)

func params() core.Params { return core.DefaultParams() }

// randomGraph builds a graph from raw fuzz bytes: n in [2, 120], edges from
// byte pairs.
func randomGraph(raw []byte) *graph.Graph {
	n := 2 + int(uint(len(raw))%119)
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(raw); i += 2 {
		b.AddEdge(graph.NodeID(int(raw[i])%n), graph.NodeID(int(raw[i+1])%n))
	}
	return b.Build()
}

func TestMaximalMatchingsWithinFactorTwo(t *testing.T) {
	// For any graph, |M1| <= 2|M2| for maximal matchings M1, M2.
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		det := matching.Deterministic(g, params(), nil).Matching
		greedy := luby.GreedyMatching(g)
		rand := luby.MaximalMatching(g, detrand.New(7)).Matching
		sizes := []int{len(det), len(greedy), len(rand)}
		for _, a := range sizes {
			for _, b := range sizes {
				if a > 2*b {
					t.Logf("sizes %v on n=%d m=%d", sizes, g.N(), g.M())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestISNeverExceedsNMinusMatching(t *testing.T) {
	// Any independent set contains at most one endpoint per matching edge:
	// |I| <= n - |M|.
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		is := mis.Deterministic(g, params(), nil).IndependentSet
		mm := matching.Deterministic(g, params(), nil).Matching
		return len(is) <= g.N()-len(mm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMISComplementIsVertexCover(t *testing.T) {
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		is := mis.Deterministic(g, params(), nil).IndependentSet
		inIS := make([]bool, g.N())
		for _, v := range is {
			inIS[v] = true
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				if graph.NodeID(u) < v && inIS[u] && inIS[v] {
					return false // both endpoints inside: not independent
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMISSizeLowerBound(t *testing.T) {
	// |MIS| >= n / (Δ+1) for every maximal independent set.
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		is := mis.Deterministic(g, params(), nil).IndependentSet
		return len(is)*(g.MaxDegree()+1) >= g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBothStrategiesMaximalOnFuzzedGraphs(t *testing.T) {
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		a := matching.Deterministic(g, params(), nil).Matching
		bRes := lowdeg.MaximalMatching(g, params(), nil).Matching
		if ok, _ := check.IsMaximalMatching(g, a); !ok {
			return false
		}
		if ok, _ := check.IsMaximalMatching(g, bRes); !ok {
			return false
		}
		// Cross-strategy 2-approximation identity.
		return len(a) <= 2*len(bRes) && len(bRes) <= 2*len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBothMISStrategiesMaximalOnFuzzedGraphs(t *testing.T) {
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		a := mis.Deterministic(g, params(), nil).IndependentSet
		b := lowdeg.MIS(g, params(), nil).IndependentSet
		okA, _ := check.IsMaximalIS(g, a)
		okB, _ := check.IsMaximalIS(g, b)
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRegimeBoundaryGraphs(t *testing.T) {
	// Graphs engineered to sit at the dispatch boundaries: degrees
	// straddling the class-5 threshold n^{4δ}, stars inside sparse shells,
	// and disjoint unions of dense and sparse parts.
	p := params()
	n := 1024
	dc := core.NewDegreeClasses(n, p.InvDelta)
	gamma := dc.GroupSize()

	// Union: a clique on gamma*4 nodes plus a path on the rest.
	b := graph.NewBuilder(n)
	cliqueSize := 4 * gamma
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	for v := cliqueSize; v+1 < n; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	g := b.Build()

	mm := matching.Deterministic(g, p, nil)
	if ok, reason := check.IsMaximalMatching(g, mm.Matching); !ok {
		t.Errorf("boundary union matching: %s", reason)
	}
	is := mis.Deterministic(g, p, nil)
	if ok, reason := check.IsMaximalIS(g, is.IndependentSet); !ok {
		t.Errorf("boundary union MIS: %s", reason)
	}
}

func TestTinyGraphsAllAlgorithms(t *testing.T) {
	for n := 0; n <= 4; n++ {
		for _, density := range []int{0, 1, 2} {
			var g *graph.Graph
			switch density {
			case 0:
				g = graph.Empty(n)
			case 1:
				g = gen.Path(n)
			default:
				g = gen.Complete(n)
			}
			mm := matching.Deterministic(g, params(), nil).Matching
			if ok, reason := check.IsMaximalMatching(g, mm); !ok {
				t.Errorf("n=%d density=%d matching: %s", n, density, reason)
			}
			is := mis.Deterministic(g, params(), nil).IndependentSet
			if ok, reason := check.IsMaximalIS(g, is); !ok {
				t.Errorf("n=%d density=%d MIS: %s", n, density, reason)
			}
			ld := lowdeg.MIS(g, params(), nil).IndependentSet
			if ok, reason := check.IsMaximalIS(g, ld); !ok {
				t.Errorf("n=%d density=%d lowdeg: %s", n, density, reason)
			}
		}
	}
}

func TestDisconnectedComponentsIndependence(t *testing.T) {
	// Output on a disjoint union restricted to one component equals a valid
	// maximal solution of that component (no cross-component interference
	// beyond tie-break ids).
	a := gen.GNM(200, 800, 1)
	b := graph.NewBuilder(400)
	for _, e := range a.Edges() {
		b.AddEdge(e.U, e.V)         // component 1 on [0,200)
		b.AddEdge(e.U+200, e.V+200) // component 2 on [200,400)
	}
	g := b.Build()
	is := mis.Deterministic(g, params(), nil).IndependentSet
	if ok, reason := check.IsMaximalIS(g, is); !ok {
		t.Fatal(reason)
	}
	// Each component's restriction must be maximal within it.
	var left []graph.NodeID
	for _, v := range is {
		if v < 200 {
			left = append(left, v)
		}
	}
	if ok, reason := check.IsMaximalIS(a, left); !ok {
		t.Errorf("restriction to component 1 not maximal: %s", reason)
	}
}
