package repro

// Engine tests: the reusable-solver layer must (a) produce byte-identical
// results to the free functions, cold or warm, (b) be safe to share across
// goroutines, and (c) be allocation-flat once warm — a second solve on a
// warm Engine allocates a small constant number of objects, not O(n+m).

import (
	"fmt"
	"sync"
	"testing"
)

// engineOpts pins Parallelism to 1: AllocsPerRun demands a deterministic
// allocation count, and the serial path is the one with no goroutine
// bookkeeping. Cost tracking is off so the measurement sees only solver
// allocations. The determinism contract makes the outputs identical to any
// other Parallelism setting, so nothing is hidden by measuring serially.
func engineOpts(strat Strategy) *Options {
	return &Options{Strategy: strat, Parallelism: 1, SkipCostTracking: true}
}

// Allocation budgets for one warm re-solve. The cold working set of these
// workloads is tens of thousands of objects (n+m >= 8184); a warm engine
// re-solve measures in the hundreds — the remaining constant is result
// slices, per-search seed-batch state and shard descriptors. The budgets
// sit ~1.5x over the values measured WITH the epoch-stamped selection
// scratch in place (sparsify: ~1.4k/0.31k at both sizes; lowdeg:
// ~1.4k/0.5k at n=2048 and ~2.4k/0.78k at n=4096, dominated by the
// per-solve line-graph construction) — deliberately tight so that epoch
// state leaking out of the Reset-surviving Context slots (or any new
// per-round allocation) trips the assertion, while staying far below
// O(n+m) growth.
var warmAllocBudget = map[Strategy]struct{ mm, mis float64 }{
	StrategySparsify:  {mm: 2200, mis: 700},
	StrategyLowDegree: {mm: 3600, mis: 1200},
}

func TestEngineWarmReuseAllocsConstant(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression is slow")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts; budgets are enforced by the non-race run")
	}
	for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
		t.Run(string(strat), func(t *testing.T) {
			// The sparsify path gets a G(n,m) workload; the low-degree path
			// a bounded-degree one (its regime), whose line graph stays
			// affordable for the per-solve construction.
			family, avg := "gnm", 8
			if strat == StrategyLowDegree {
				family, avg = "regular", 6
			}
			g, err := Generate(family, 2048, avg, 1)
			if err != nil {
				t.Fatal(err)
			}
			budget := warmAllocBudget[strat]
			if float64(g.N()+g.M()) <= budget.mm {
				t.Fatalf("workload too small for the budget to mean anything: n+m=%d", g.N()+g.M())
			}

			eng := NewEngine(engineOpts(strat))
			if _, err := eng.MaximalMatching(g); err != nil {
				t.Fatal(err)
			}
			warm := testing.AllocsPerRun(2, func() {
				if _, err := eng.MaximalMatching(g); err != nil {
					t.Fatal(err)
				}
			})
			if warm > budget.mm {
				t.Errorf("warm MaximalMatching re-solve allocated %.0f objects, budget %.0f (n+m=%d)",
					warm, budget.mm, g.N()+g.M())
			}

			eng2 := NewEngine(engineOpts(strat))
			if _, err := eng2.MaximalIndependentSet(g); err != nil {
				t.Fatal(err)
			}
			warmIS := testing.AllocsPerRun(2, func() {
				if _, err := eng2.MaximalIndependentSet(g); err != nil {
					t.Fatal(err)
				}
			})
			if warmIS > budget.mis {
				t.Errorf("warm MaximalIndependentSet re-solve allocated %.0f objects, budget %.0f (n+m=%d)",
					warmIS, budget.mis, g.N()+g.M())
			}
		})
	}
}

// TestEngineWarmReuseAllocsFlatAcrossSizes doubles the workload and asserts
// the SAME fixed budgets still hold for every strategy × algorithm
// combination: the warm allocation count is a constant, not a fraction of
// n+m. At this size the budgets sit at 10-30% of n+m, so a regression that
// reintroduces even a fraction of an allocation per edge trips it.
func TestEngineWarmReuseAllocsFlatAcrossSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression is slow")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts; budgets are enforced by the non-race run")
	}
	for _, strat := range []Strategy{StrategySparsify, StrategyLowDegree} {
		t.Run(string(strat), func(t *testing.T) {
			family, avg := "gnm", 8
			if strat == StrategyLowDegree {
				family, avg = "regular", 6
			}
			g, err := Generate(family, 4096, avg, 1)
			if err != nil {
				t.Fatal(err)
			}
			budget := warmAllocBudget[strat]

			eng := NewEngine(engineOpts(strat))
			if _, err := eng.MaximalMatching(g); err != nil {
				t.Fatal(err)
			}
			warm := testing.AllocsPerRun(2, func() {
				if _, err := eng.MaximalMatching(g); err != nil {
					t.Fatal(err)
				}
			})
			if warm > budget.mm {
				t.Errorf("doubled workload: warm MaximalMatching re-solve allocated %.0f objects, budget %.0f (n+m=%d)",
					warm, budget.mm, g.N()+g.M())
			}

			eng2 := NewEngine(engineOpts(strat))
			if _, err := eng2.MaximalIndependentSet(g); err != nil {
				t.Fatal(err)
			}
			warmIS := testing.AllocsPerRun(2, func() {
				if _, err := eng2.MaximalIndependentSet(g); err != nil {
					t.Fatal(err)
				}
			})
			if warmIS > budget.mis {
				t.Errorf("doubled workload: warm MaximalIndependentSet re-solve allocated %.0f objects, budget %.0f (n+m=%d)",
					warmIS, budget.mis, g.N()+g.M())
			}
		})
	}
}

func TestEngineMatchesFreeFunctions(t *testing.T) {
	for _, w := range []struct {
		family string
		n, avg int
		strat  Strategy
	}{
		{"gnm", 512, 8, StrategySparsify},
		{"regular", 384, 6, StrategyLowDegree},
		{"powerlaw", 512, 6, StrategyAuto},
	} {
		t.Run(fmt.Sprintf("%s/%s", w.family, w.strat), func(t *testing.T) {
			g, err := Generate(w.family, w.n, w.avg, 3)
			if err != nil {
				t.Fatal(err)
			}
			opts := &Options{Strategy: w.strat}
			eng := NewEngine(opts)
			// Warm the engine on a different graph first so the comparison
			// below exercises dirty-buffer reuse, then solve twice.
			warmup, err := Generate("gnm", 700, 10, 9)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.MaximalMatching(warmup); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.MaximalIndependentSet(warmup); err != nil {
				t.Fatal(err)
			}

			wantMM, err := MaximalMatching(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantIS, err := MaximalIndependentSet(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 2; round++ {
				gotMM, err := eng.MaximalMatching(g)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotMM.Edges) != len(wantMM.Edges) || gotMM.Iterations != wantMM.Iterations {
					t.Fatalf("round %d: engine matching differs: %d edges/%d iters, want %d/%d",
						round, len(gotMM.Edges), gotMM.Iterations, len(wantMM.Edges), wantMM.Iterations)
				}
				for i := range gotMM.Edges {
					if gotMM.Edges[i] != wantMM.Edges[i] {
						t.Fatalf("round %d: edge %d is %v, want %v", round, i, gotMM.Edges[i], wantMM.Edges[i])
					}
				}
				gotIS, err := eng.MaximalIndependentSet(g)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotIS.Nodes) != len(wantIS.Nodes) || gotIS.Iterations != wantIS.Iterations {
					t.Fatalf("round %d: engine MIS differs: %d nodes/%d iters, want %d/%d",
						round, len(gotIS.Nodes), gotIS.Iterations, len(wantIS.Nodes), wantIS.Iterations)
				}
				for i := range gotIS.Nodes {
					if gotIS.Nodes[i] != wantIS.Nodes[i] {
						t.Fatalf("round %d: node %d is %d, want %d", round, i, gotIS.Nodes[i], wantIS.Nodes[i])
					}
				}
			}
		})
	}
}

// TestEngineConcurrentSolves shares one Engine across goroutines solving
// different graphs repeatedly; every result must match the free function.
// Run under -race this also proves pool checkout isolates solve state.
func TestEngineConcurrentSolves(t *testing.T) {
	type workload struct {
		g    *Graph
		want *MISResult
	}
	var workloads []workload
	for i := 0; i < 4; i++ {
		g, err := Generate("gnm", 300+60*i, 8, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := MaximalIndependentSet(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, workload{g: g, want: want})
	}
	eng := NewEngine(nil)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				w := workloads[(i+rep)%len(workloads)]
				got, err := eng.MaximalIndependentSet(w.g)
				if err != nil {
					errs <- err
					return
				}
				if len(got.Nodes) != len(w.want.Nodes) {
					errs <- fmt.Errorf("goroutine %d rep %d: %d nodes, want %d", i, rep, len(got.Nodes), len(w.want.Nodes))
					return
				}
				for j := range got.Nodes {
					if got.Nodes[j] != w.want.Nodes[j] {
						errs <- fmt.Errorf("goroutine %d rep %d: node %d differs", i, rep, j)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineNilGraph(t *testing.T) {
	eng := NewEngine(nil)
	if _, err := eng.MaximalMatching(nil); err != ErrNilGraph {
		t.Fatalf("MaximalMatching(nil): err = %v, want ErrNilGraph", err)
	}
	if _, err := eng.MaximalIndependentSet(nil); err != ErrNilGraph {
		t.Fatalf("MaximalIndependentSet(nil): err = %v, want ErrNilGraph", err)
	}
}

// TestSerialParallelismPrecedence pins the satellite requirement that the
// Serial/Parallelism conflict is resolved in exactly one place: Serial wins,
// and the resolved value is what reaches core.Params.
func TestSerialParallelismPrecedence(t *testing.T) {
	cases := []struct {
		opts *Options
		want int
	}{
		{&Options{Serial: true, Parallelism: 8}, 1}, // the conflict: Serial wins
		{&Options{Serial: true}, 1},
		{&Options{Parallelism: 8}, 8},
		{&Options{}, 0},
		{nil, 0},
	}
	for _, c := range cases {
		if got := c.opts.params().Parallelism; got != c.want {
			t.Errorf("params().Parallelism = %d, want %d for %+v", got, c.want, c.opts)
		}
	}
	// The conflict case must also produce identical results to an explicit
	// Parallelism=1 run.
	g, err := Generate("gnm", 256, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MaximalIndependentSet(g, &Options{Serial: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximalIndependentSet(g, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("Serial+Parallelism=8 and Parallelism=1 disagree: %d vs %d nodes", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
}
