// Quickstart: build a small graph with the public API, compute a maximal
// matching and an MIS deterministically, and inspect the MPC cost report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A 6-node graph: a triangle joined to a path.
	//
	//   0 - 1        3 - 4 - 5
	//    \ /        /
	//     2 -------
	b := repro.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	fmt.Printf("graph: n=%d m=%d Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	mm, err := repro.MaximalMatching(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximal matching (%d edges, %d iterations, strategy %s):\n",
		len(mm.Edges), mm.Iterations, mm.Strategy)
	for _, e := range mm.Edges {
		fmt.Printf("  {%d, %d}\n", e.U, e.V)
	}

	is, err := repro.MaximalIndependentSet(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaximal independent set (%d nodes): %v\n", len(is.Nodes), is.Nodes)

	// The cost report shows what this run would have cost on a real MPC
	// cluster with S = n^ε words per machine.
	if c := is.Costs; c != nil {
		fmt.Printf("\nMPC accounting: %d rounds, %d machines × %d words, %d seed batches\n",
			c.Rounds, c.Machines, c.SpacePerMachine, c.SeedBatches)
	}

	// Scaling up: larger synthetic workloads through a reusable Engine.
	// The free functions above are one-shot wrappers; when solving
	// repeatedly (a service handling graph after graph), construct one
	// Engine and share it — every solve after the first reuses the pooled
	// per-solve buffers, so steady-state traffic is allocation-flat.
	// Results are bit-identical to the free functions either way.
	// A server shares ONE engine across all request shapes: solves are
	// request-scoped, so each call carries its own context (deadline /
	// cancellation, honoured at round boundaries) and per-solve option
	// overrides layered over the engine's base Options — bit-identical to a
	// dedicated engine constructed with those Options.
	eng := repro.NewEngine(nil)
	for seed := uint64(7); seed < 10; seed++ {
		big, err := repro.Generate("gnm", 4096, 12, seed)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := eng.MaximalIndependentSetCtx(ctx, big,
			repro.WithStrategy(repro.StrategySparsify))
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nG(4096, 24576) seed %d: MIS of %d nodes in %d iterations, %d charged MPC rounds\n",
			seed, len(res.Nodes), res.Iterations, res.Costs.Rounds)
	}
}
