// Derandomization walkthrough: the method of conditional expectations
// (Section 2.4 of the paper) made visible on a family small enough to
// enumerate. We take a toy objective — how many nodes of a graph hash below
// a sampling threshold — and find a seed achieving at least the family mean
// three ways:
//
//  1. exact chunk-by-chunk conditional expectations (the textbook method);
//  2. the batched deterministic scan the library uses at scale;
//  3. brute-force enumeration of the whole family (ground truth).
//
// Run with: go run ./examples/derandomization
package main

import (
	"fmt"

	"repro/internal/condexp"
	"repro/internal/graph/gen"
	"repro/internal/hashfam"
)

func main() {
	g := gen.Cycle(24)
	fam := hashfam.New(13, 2) // 13² = 169 seeds: fully enumerable
	th := hashfam.Threshold(fam.P(), 1, 2)
	fmt.Printf("family: degree-1 polynomials over F_%d (%d seeds), threshold %d (p≈1/2)\n",
		fam.P(), 169, th)

	// Objective: number of nodes sampled (hash value < threshold), the
	// shape of the paper's sub-sampling steps.
	obj := func(seed []uint64) int64 {
		var count int64
		for v := 0; v < g.N(); v++ {
			if fam.Eval(seed, uint64(v)) < th {
				count++
			}
		}
		return count
	}

	mean, err := condexp.FamilyMean(fam, obj)
	if err != nil {
		panic(err)
	}
	fmt.Printf("family mean of the objective: %.3f (exact, by full enumeration)\n\n", mean)

	// 1. The real method of conditional expectations: fix one coefficient
	// at a time, keeping the conditional expectation maximal.
	seed, condExp, err := condexp.SearchConditional(fam, obj)
	if err != nil {
		panic(err)
	}
	fmt.Printf("conditional expectations: seed %v -> objective %d (final cond. exp. %.3f)\n",
		seed, obj(seed), condExp)

	// 2. The batched scan (what runs inside the MPC algorithms): first
	// seed in enumeration order meeting the mean.
	res, err := condexp.SearchAtLeast(fam, obj, int64(mean), condexp.Options{BatchSize: 16})
	if err != nil {
		panic(err)
	}
	fmt.Printf("batched scan:             seed %v -> objective %d (%d seeds in %d batches)\n",
		res.Seed, res.Value, res.SeedsTried, res.Batches)

	// 3. Ground truth: the best seed in the family.
	e := fam.Enumerate()
	bestVal := int64(-1)
	var bestSeed []uint64
	for e.Next() {
		if v := obj(e.Seed()); v > bestVal {
			bestVal = v
			bestSeed = append(bestSeed[:0], e.Seed()...)
		}
	}
	fmt.Printf("exhaustive maximum:       seed %v -> objective %d\n\n", bestSeed, bestVal)

	fmt.Println("the probabilistic method guarantees max >= mean, so both deterministic")
	fmt.Println("procedures must land at or above the mean — and they do, in O(1) charged")
	fmt.Println("MPC rounds per batch. This is the engine inside every sparsification stage")
	fmt.Println("and every Luby-step selection of the paper's algorithms.")
}
