// Social-network example: the paper's introduction motivates MPC by graphs
// too large for one machine — social networks with power-law degree
// distributions. This example selects a "spokesperson set" (an MIS: no two
// spokespeople know each other, everyone knows a spokesperson) on a
// Chung-Lu power-law graph, and compares the deterministic algorithm
// against randomized Luby and greedy baselines: same maximality guarantee,
// deterministic output, comparable round counts.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/check"
	"repro/internal/detrand"
	"repro/internal/luby"
)

func main() {
	const n, avgDeg = 8192, 12
	g, err := repro.Generate("powerlaw", n, avgDeg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: n=%d m=%d Δ=%d (power-law)\n\n", g.N(), g.M(), g.MaxDegree())

	// Deterministic (this paper).
	det, err := repro.MaximalIndependentSet(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic MIS:  %5d spokespeople, %3d iterations, %5d MPC rounds (strategy %s)\n",
		len(det.Nodes), det.Iterations, det.Costs.Rounds, det.Strategy)

	// Randomized Luby baseline (three different coin flips).
	for seed := uint64(1); seed <= 3; seed++ {
		r := luby.MIS(g, detrand.New(seed))
		if ok, reason := check.IsMaximalIS(g, r.IndependentSet); !ok {
			log.Fatalf("luby output invalid: %s", reason)
		}
		fmt.Printf("randomized Luby #%d: %5d spokespeople, %3d rounds\n",
			seed, len(r.IndependentSet), len(r.Rounds))
	}

	// Greedy sequential reference.
	greedy := luby.GreedyMIS(g)
	fmt.Printf("greedy sequential:  %5d spokespeople (no parallel rounds: inherently sequential)\n\n", len(greedy))

	// Determinism pays where reruns must agree: same input, same output —
	// including on a warm reused Engine, the steady-state configuration of
	// a service re-solving as the social graph evolves (the warm re-solve
	// also skips the cold run's working-set allocations).
	eng := repro.NewEngine(nil)
	if _, err := eng.MaximalIndependentSet(g); err != nil { // warm the pooled buffers
		log.Fatal(err)
	}
	again, err := eng.MaximalIndependentSet(g)
	if err != nil {
		log.Fatal(err)
	}
	same := len(again.Nodes) == len(det.Nodes)
	for i := 0; same && i < len(det.Nodes); i++ {
		same = det.Nodes[i] == again.Nodes[i]
	}
	fmt.Printf("warm-engine rerun produces the identical spokesperson set: %v\n", same)

	// Request-scoped serving: the same engine under a deadline, with the
	// deterministic round observer as the telemetry seam. Events arrive in
	// round order at any Parallelism; the observer sees the solve shrink.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	traced, err := eng.MaximalIndependentSetCtx(ctx, g, repro.WithObserver(progressPrinter{}))
	if err != nil {
		if errors.Is(err, repro.ErrCanceled) {
			log.Fatalf("deadline hit before the solve finished: %v", err)
		}
		log.Fatal(err)
	}
	fmt.Printf("request-scoped rerun (with observer) agrees: %v\n", len(traced.Nodes) == len(det.Nodes))
}

// progressPrinter shows the deterministic observer stream: one line per
// derandomization round, emitted in round order.
type progressPrinter struct{}

func (progressPrinter) OnRound(ev repro.RoundEvent) {
	fmt.Printf("  round %2d: %6d live edges, %4d seeds tried, %4d nodes selected\n",
		ev.Round, ev.LiveEdges, ev.SeedsTried, ev.Selected)
}
