// CONGESTED CLIQUE example (Corollary 2): run the deterministic MIS in the
// CC model on bounded-degree graphs and compare its O(log Δ) round count
// against the prior state of the art, the O(log Δ·log n) derandomization of
// Censor-Hillel et al. [15] (round-accounting baseline; see DESIGN.md).
//
// Run with: go run ./examples/congestedclique
package main

import (
	"fmt"

	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/graph/gen"
)

func main() {
	p := core.DefaultParams()
	fmt.Println("CONGESTED CLIQUE deterministic MIS (Corollary 2) vs Censor-Hillel et al. [15]")
	fmt.Println()
	fmt.Printf("%6s %4s %7s %7s %11s %12s %8s\n",
		"n", "Δ", "stages", "phases", "rounds-det", "rounds-CH15", "speedup")
	for _, n := range []int{1 << 10, 1 << 12} {
		for _, d := range []int{4, 8, 16} {
			g := gen.RandomRegular(n, d, uint64(n+d))
			res := cclique.DetMIS(g, p)
			fmt.Printf("%6d %4d %7d %7d %11d %12d %7.1fx\n",
				n, g.MaxDegree(), res.Stages, res.Phases,
				res.RoundsDet, res.RoundsCH15,
				float64(res.RoundsCH15)/float64(res.RoundsDet))
		}
	}
	fmt.Println()
	fmt.Println("reading: rounds-det grows with log Δ but is nearly flat in n;")
	fmt.Println("rounds-CH15 carries an extra log n factor, so the speedup widens with n.")

	// Maximal matching through the same machinery (line graph simulation).
	g := gen.Grid2D(32, 32)
	mm := cclique.DetMatching(g, p)
	fmt.Printf("\nmatching on a 32x32 grid: %d edges, %d rounds (vs %d for CH15)\n",
		len(mm.Matching), mm.RoundsDet, mm.RoundsCH15)
}
