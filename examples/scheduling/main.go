// Scheduling example: maximal matching as a one-shot task-pairing round.
// Workers are nodes; an edge means two workers can share a shift. A maximal
// matching pairs as many compatible workers as possible such that no two
// unpaired compatible workers remain — and because the algorithm is
// deterministic, the schedule is reproducible from the compatibility graph
// alone (no coordinator coin flips to record).
//
// Compatibility here is synthetic: worker i is compatible with workers that
// share a skill bucket or sit within distance 2 on the org chart (a random
// tree), producing an irregular low-ish degree graph that exercises the
// Theorem 1 dispatcher.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/detrand"
)

func main() {
	const workers = 3000
	r := detrand.New(2026)

	b := repro.NewBuilder(workers)
	// Org chart: random tree; colleagues within distance <= 2 can pair.
	parent := make([]int, workers)
	for v := 1; v < workers; v++ {
		parent[v] = r.Intn(v)
		b.AddEdge(repro.NodeID(v), repro.NodeID(parent[v]))
		if parent[v] != 0 {
			b.AddEdge(repro.NodeID(v), repro.NodeID(parent[parent[v]]))
		}
	}
	// Skill buckets: a few hundred cliques of size ~6.
	const bucketSize = 6
	for start := 0; start+bucketSize <= workers; start += bucketSize * 3 {
		for i := start; i < start+bucketSize; i++ {
			for j := i + 1; j < start+bucketSize; j++ {
				b.AddEdge(repro.NodeID(i), repro.NodeID(j))
			}
		}
	}
	g := b.Build()
	fmt.Printf("compatibility graph: n=%d m=%d Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	res, err := repro.MaximalMatching(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	paired := 2 * len(res.Edges)
	fmt.Printf("schedule: %d pairs (%d of %d workers paired, %.1f%%)\n",
		len(res.Edges), paired, workers, 100*float64(paired)/float64(workers))
	fmt.Printf("computed in %d iterations / %d charged MPC rounds via strategy %q\n\n",
		res.Iterations, res.Costs.Rounds, res.Strategy)

	// Maximality in scheduling terms: every unpaired worker has no
	// unpaired compatible colleague (the API verifies this; recount here
	// for the narrative).
	pairedMask := make([]bool, workers)
	for _, e := range res.Edges {
		pairedMask[e.U] = true
		pairedMask[e.V] = true
	}
	wasted := 0
	for v := 0; v < workers; v++ {
		if pairedMask[v] {
			continue
		}
		for _, u := range g.Neighbors(repro.NodeID(v)) {
			if !pairedMask[u] {
				wasted++
				break
			}
		}
	}
	fmt.Printf("unpaired workers with an unpaired compatible colleague: %d (maximality => 0)\n", wasted)

	fmt.Println("\nfirst five pairs:")
	for i, e := range res.Edges {
		if i == 5 {
			break
		}
		fmt.Printf("  worker %4d <-> worker %4d\n", e.U, e.V)
	}
}
